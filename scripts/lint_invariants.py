#!/usr/bin/env python3
"""Compatibility shim: the invariant linter grew into the nadlint
package (scripts/nadlint/ — C++-aware tokenizer, scope model, and the
arena-escape / lock-order / tsa-coverage passes on top of the original
five rules; DESIGN.md §15 is the rule catalog).

This entry point keeps the historical CLI stable for ctest
(lint_invariants_tree / lint_invariants_fixtures), scripts/run_all.sh
and muscle memory:

    python3 scripts/lint_invariants.py [--root DIR] [--fixtures DIR]
                                       [--sarif OUT.sarif]

is exactly `python3 -m nadlint ...` with scripts/ on sys.path.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from nadlint.engine import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
