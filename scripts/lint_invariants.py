#!/usr/bin/env python3
"""Repo-invariant linter: mechanical concurrency/robustness rules that the
compiler cannot (or does not) enforce on every toolchain.

Rules
-----
  raw-mutex      No std:: mutex/lock/condvar primitives outside src/common/.
                 Everything else must use nadreg::Mutex / MutexLock / CondVar
                 (common/sync.h) so Clang thread-safety analysis sees every
                 lock in the tree.
  no-sleep       No sleep_for / sleep_until / system_clock inside src/sim/,
                 src/core/, src/faults/ and the client transport
                 (src/nad/retry.*, src/nad/client.*, src/nad/event_loop.*,
                 src/nad/timer_wheel.*): simulated time must come from the
                 farm's logical clock (determinism), and algorithm /
                 backoff / injector code must use the monotonic
                 steady_clock with interruptible CondVar waits — a raw
                 sleep cannot be cancelled by shutdown. An event loop
                 sleeps only inside epoll_wait (timed by its timer wheel);
                 a raw sleep on the loop thread would stall every
                 connection the loop owns.
  ignored-status Calls to Decode* / Encode*Checked / ParseEndpoint used as a
                 bare statement silently swallow a failure. Assign the
                 result or cast to (void) with a reason.
  opcode-switch  A switch over nad::MsgType inside src/nad/ must name every
                 enumerator (a default: alone would hide new opcodes from
                 the exhaustiveness check when the protocol grows).
  hot-alloc      Inside a marked hot section — between  // hot-path-begin(name)
                 and  // hot-path-end  — no heap-allocating construction:
                 std::string / std::vector / std::deque / Value(...) /
                 std::to_string / new, and no materializing codec calls
                 (EncodeMessage*/DecodeMessage). The zero-copy RPC pipeline
                 (arena-backed FrameWriter/MessageView, DESIGN.md §14) exists
                 so the steady state allocates nothing; an alloc that sneaks
                 into a marked section silently regresses allocations/op. The
                 one deliberate copy (materializing a read's Value for its
                 handler) carries a lint-allow escape. A hot-path-begin
                 without its hot-path-end is itself flagged.

Suppression: append  // lint-allow(<rule>): <reason>  to the offending line
(or the line directly above it). Exception: the schedule explorer
(src/sim/explorer.cc) is *strictly* sleep-free — its quiescence detection
is event-driven by design (DetFarm scheduler hooks), so a wall-clock wait
there is always a bug and lint-allow(no-sleep) is not honoured.

Fixture mode (--fixtures DIR) self-tests the linter: each fixture file
declares its virtual tree location with  // lint-path: <path>  and marks the
lines the linter MUST flag with  lint-expect(<rule>). The run fails if any
expected line is missed or any unexpected line is flagged. tests/ wires this
into ctest next to a clean run over the real tree.

Exit status: 0 = clean / all fixtures behave, 1 = findings / fixture
mismatch, 2 = usage or I/O error.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

SOURCE_EXTS = {".h", ".cc", ".cpp", ".hpp"}
SKIP_DIR_NAMES = {"build", "third_party", ".git"}
FIXTURE_DIR = Path("tests/lint_fixtures")
# Files where no-sleep may not be suppressed: event-driven by design.
STRICT_NO_SLEEP = {"src/sim/explorer.cc"}

RAW_MUTEX_RE = re.compile(
    r"\bstd::(?:recursive_|shared_|timed_)*mutex\b"
    r"|\bstd::(?:lock_guard|unique_lock|scoped_lock|shared_lock)\b"
    r"|\bstd::condition_variable(?:_any)?\b"
)
SLEEP_RE = re.compile(r"\b(?:sleep_for|sleep_until|system_clock)\b")
# A statement line that begins with a must-check call: nothing consumes the
# result. Assignments ("auto x = Decode..."), returns, conditions and
# explicit "(void)Decode..." discards all fail this anchor on purpose.
IGNORED_STATUS_RE = re.compile(
    r"^\s*(?:[\w]+(?:::[\w]+)*::)?"
    r"(?:Decode[A-Z]\w*|Encode\w*Checked|ParseEndpoint)\s*\("
)
# Heap-allocating constructions and materializing codec calls that must not
# appear inside a marked hot section. std::string_view is NOT matched (\b
# fails before the _); DecodeMessageView is NOT matched (the paren must
# follow immediately). Value( catches the repo's Value = std::string alias.
HOT_ALLOC_RE = re.compile(
    r"\bstd::string\b"
    r"|\bstd::vector\s*<"
    r"|\bstd::deque\b"
    r"|\bstd::to_string\b"
    r"|\bnew\s+[A-Za-z_]"
    r"|\bValue\s*\("
    r"|\bEncodeMessage\w*\s*\("
    r"|\bDecodeMessage\s*\("
)
HOT_BEGIN_RE = re.compile(r"//\s*hot-path-begin\((?P<name>[\w-]+)\)")
HOT_END_RE = re.compile(r"//\s*hot-path-end\b")
ALLOW_RE = re.compile(r"lint-allow\((?P<rule>[\w-]+)\)")
EXPECT_RE = re.compile(r"lint-expect\((?P<rule>[\w-]+)\)")
LINT_PATH_RE = re.compile(r"^//\s*lint-path:\s*(?P<path>\S+)")
CASE_RE = re.compile(r"\bcase\s+(?:nad::)?MsgType::(\w+)")
ENUMERATOR_RE = re.compile(r"^\s*(k\w+)\s*=?")


class Finding:
    def __init__(self, path: str, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def msgtype_enumerators(root: Path) -> list[str]:
    """Parses the MsgType enumerator list out of src/nad/protocol.h."""
    proto = root / "src" / "nad" / "protocol.h"
    try:
        text = proto.read_text()
    except OSError:
        return []
    m = re.search(r"enum class MsgType[^{]*\{(?P<body>[^}]*)\}", text)
    if not m:
        return []
    names = []
    for line in m.group("body").splitlines():
        em = ENUMERATOR_RE.match(line)
        if em:
            names.append(em.group(1))
    return names


def strip_comment(line: str) -> str:
    """Drops a trailing // comment (good enough for these rules: none of the
    patterns legitimately appear inside string literals in this tree)."""
    idx = line.find("//")
    return line if idx < 0 else line[:idx]


def allowed(lines: list[str], i: int, rule: str) -> bool:
    """True if line i (0-based) or the line above carries lint-allow(rule)."""
    for j in (i, i - 1):
        if 0 <= j < len(lines):
            for m in ALLOW_RE.finditer(lines[j]):
                if m.group("rule") == rule:
                    return True
    return False


def switch_spans(lines: list[str]):
    """Yields (start_line_0based, body_text) for each switch statement."""
    text = "\n".join(lines)
    for m in re.finditer(r"\bswitch\s*\(", text):
        start_line = text.count("\n", 0, m.start())
        brace = text.find("{", m.end())
        if brace < 0:
            continue
        depth = 0
        for k in range(brace, len(text)):
            if text[k] == "{":
                depth += 1
            elif text[k] == "}":
                depth -= 1
                if depth == 0:
                    yield start_line, text[brace : k + 1]
                    break


def check_file(virtual_path: str, lines: list[str], enumerators: list[str],
               expect_markers: bool) -> list[Finding]:
    """Runs every applicable rule; returns the findings.

    expect_markers: in fixture mode the lint-expect markers live in trailing
    comments, which must not hide the code the rules look at — rules already
    run on the comment-stripped line, so nothing special is needed; the flag
    only exists to document the call site.
    """
    del expect_markers
    p = virtual_path.replace("\\", "/")
    in_common = p.startswith("src/common/")
    # The retry/backoff path may never raw-sleep: a sleeping thread cannot
    # be interrupted by shutdown, while a CondVar deadline wait can.
    in_no_sleep_scope = (
        p.startswith(("src/sim/", "src/core/", "src/faults/"))
        or re.fullmatch(
            r"src/nad/(?:retry|client|event_loop|timer_wheel)"
            r"\.(?:h|cc|cpp|hpp)", p)
        is not None
    )
    in_nad = p.startswith("src/nad/")
    findings: list[Finding] = []
    hot_since = None  # 0-based line of the currently open hot-path-begin

    for i, raw in enumerate(lines):
        if HOT_BEGIN_RE.search(raw):
            if hot_since is not None:
                findings.append(Finding(
                    virtual_path, i + 1, "hot-alloc",
                    "nested hot-path-begin (previous section opened at line "
                    f"{hot_since + 1} is still open)"))
            hot_since = i
        elif HOT_END_RE.search(raw):
            hot_since = None
        code = strip_comment(raw)
        if not code.strip():
            continue
        if hot_since is not None and HOT_ALLOC_RE.search(code):
            if not allowed(lines, i, "hot-alloc"):
                findings.append(Finding(
                    virtual_path, i + 1, "hot-alloc",
                    "heap-allocating construction or materializing codec "
                    "call inside a hot-path section; use the arena / "
                    "FrameWriter / MessageView machinery (DESIGN.md §14)"))
        if not in_common and RAW_MUTEX_RE.search(code):
            if not allowed(lines, i, "raw-mutex"):
                findings.append(Finding(
                    virtual_path, i + 1, "raw-mutex",
                    "raw std:: sync primitive; use nadreg::Mutex/MutexLock/"
                    "CondVar from common/sync.h"))
        if in_no_sleep_scope and SLEEP_RE.search(code):
            strict = p in STRICT_NO_SLEEP
            if strict and allowed(lines, i, "no-sleep"):
                findings.append(Finding(
                    virtual_path, i + 1, "no-sleep",
                    "lint-allow(no-sleep) is not honoured here: the "
                    "explorer's quiescence detection is event-driven "
                    "(DetFarm scheduler hooks); a wall-clock wait would "
                    "make branching nondeterministic"))
            elif strict or not allowed(lines, i, "no-sleep"):
                findings.append(Finding(
                    virtual_path, i + 1, "no-sleep",
                    "wall-clock sleep/clock in simulation, algorithm or "
                    "retry code; use the farm's logical time or "
                    "steady_clock with interruptible CondVar waits"))
        if IGNORED_STATUS_RE.match(code):
            if not allowed(lines, i, "ignored-status"):
                findings.append(Finding(
                    virtual_path, i + 1, "ignored-status",
                    "result of a must-check call is dropped; assign it or "
                    "cast to (void) with a reason"))

    if hot_since is not None:
        findings.append(Finding(
            virtual_path, hot_since + 1, "hot-alloc",
            "hot-path-begin without a matching hot-path-end"))

    if in_nad and enumerators:
        for start, body in switch_spans(lines):
            cases = set(CASE_RE.findall(body))
            if not cases:
                continue  # not a MsgType switch
            missing = [e for e in enumerators if e not in cases]
            if missing and not allowed(lines, start, "opcode-switch"):
                findings.append(Finding(
                    virtual_path, start + 1, "opcode-switch",
                    "switch over MsgType does not name: "
                    + ", ".join(missing)))
    return findings


def iter_tree(root: Path):
    for sub in ("src", "tests", "bench", "examples"):
        base = root / sub
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in SOURCE_EXTS or not path.is_file():
                continue
            rel = path.relative_to(root)
            if any(part in SKIP_DIR_NAMES for part in rel.parts):
                continue
            if rel.is_relative_to(FIXTURE_DIR):
                continue  # known-bad snippets, scanned only by --fixtures
            yield rel, path


def run_tree(root: Path) -> int:
    enumerators = msgtype_enumerators(root)
    if not enumerators:
        print("lint_invariants: warning: could not parse MsgType "
              "enumerators; opcode-switch rule disabled", file=sys.stderr)
    findings: list[Finding] = []
    nfiles = 0
    for rel, path in iter_tree(root):
        nfiles += 1
        lines = path.read_text(errors="replace").splitlines()
        findings.extend(check_file(str(rel), lines, enumerators, False))
    for f in findings:
        print(f)
    print(f"lint_invariants: {nfiles} files, {len(findings)} finding(s)",
          file=sys.stderr)
    return 1 if findings else 0


def run_fixtures(root: Path, fixtures: Path) -> int:
    enumerators = msgtype_enumerators(root)
    failures = 0
    nfix = 0
    for path in sorted(fixtures.glob("*")):
        if path.suffix not in SOURCE_EXTS:
            continue
        nfix += 1
        lines = path.read_text(errors="replace").splitlines()
        m = LINT_PATH_RE.match(lines[0]) if lines else None
        if not m:
            print(f"{path}: fixture missing '// lint-path:' header")
            failures += 1
            continue
        virtual = m.group("path")
        expected = set()
        for i, line in enumerate(lines):
            for em in EXPECT_RE.finditer(line):
                expected.add((i + 1, em.group("rule")))
        got = {(f.line, f.rule)
               for f in check_file(virtual, lines, enumerators, True)}
        for line_no, rule in sorted(expected - got):
            print(f"{path}:{line_no}: fixture expected [{rule}] "
                  "but the linter stayed quiet")
            failures += 1
        for line_no, rule in sorted(got - expected):
            print(f"{path}:{line_no}: linter flagged unexpected [{rule}]")
            failures += 1
    print(f"lint_invariants: {nfix} fixture(s), {failures} mismatch(es)",
          file=sys.stderr)
    if nfix == 0:
        print(f"lint_invariants: no fixtures found in {fixtures}",
              file=sys.stderr)
        return 2
    return 1 if failures else 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", type=Path, default=Path(__file__).resolve().parent.parent,
                    help="repository root (default: the checkout containing this script)")
    ap.add_argument("--fixtures", type=Path, default=None,
                    help="run in self-test mode over known-bad fixture files")
    args = ap.parse_args()
    root = args.root.resolve()
    if not (root / "src").is_dir():
        print(f"lint_invariants: {root} does not look like the repo root",
              file=sys.stderr)
        return 2
    if args.fixtures:
        return run_fixtures(root, args.fixtures.resolve())
    return run_tree(root)


if __name__ == "__main__":
    sys.exit(main())
