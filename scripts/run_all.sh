#!/usr/bin/env bash
# Builds everything, runs the full test suite, every reproduction harness
# and every microbenchmark — the one-command verification of the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build -j"$(nproc)"

for b in build/bench/*; do
  [ -x "$b" ] && [ -f "$b" ] || continue
  echo
  echo "================================================================"
  echo ">>> $(basename "$b")"
  echo "================================================================"
  "$b"
done
