#!/usr/bin/env bash
# Runs the tier-1 test suite under sanitizers: once with ASan+UBSan, once
# with TSan. Each sanitizer gets its own build tree (build-asan/,
# build-tsan/) so the default build/ is never disturbed.
#
#   $ scripts/sanitize_tests.sh           # both sanitizers
#   $ scripts/sanitize_tests.sh asan      # just address+undefined
#   $ scripts/sanitize_tests.sh tsan      # just thread
set -euo pipefail
cd "$(dirname "$0")/.."

which="${1:-all}"

run_one() {
  local preset="$1"
  echo "================================================================"
  echo ">>> tier-1 tests under preset '$preset'"
  echo "================================================================"
  cmake --preset "$preset"
  cmake --build --preset "$preset" -j"$(nproc)"
  ctest --preset "$preset" -j"$(nproc)"
}

case "$which" in
  asan) run_one asan-ubsan ;;
  tsan) run_one tsan ;;
  all)
    run_one asan-ubsan
    run_one tsan
    ;;
  *)
    echo "usage: $0 [asan|tsan|all]" >&2
    exit 2
    ;;
esac
