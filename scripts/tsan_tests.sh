#!/usr/bin/env bash
# Focused ThreadSanitizer pass over the concurrency-heavy suites: the NAD
# wire protocol, the network client/server (sender + reader threads,
# striped store), and the RegisterSet quorum engine. Uses the `tsan`
# CMake preset (build-tsan/) so the default build/ is never disturbed.
#
#   $ scripts/tsan_tests.sh
#
# For the full suite under TSan (and ASan) use scripts/sanitize_tests.sh.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake --preset tsan
cmake --build --preset tsan -j"$(nproc)" --target \
  test_nad_protocol test_nad_network test_nad_robustness test_register_set

ctest --test-dir build-tsan --output-on-failure -j"$(nproc)" \
  -R '^(Protocol|NadNetwork|NadRobustness|RegisterSet)\.'
