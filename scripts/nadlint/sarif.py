"""SARIF 2.1.0 emission so nadlint findings land as GitHub
code-scanning annotations (the CI nadlint job uploads the file via
codeql-action/upload-sarif; locally `--sarif out.sarif` writes the same
document for editor integrations)."""

from __future__ import annotations

import json
from pathlib import Path

from .base import Finding

_RULE_HELP = {
    "raw-mutex": "Raw std:: sync primitive outside src/common/; use the "
                 "annotated nadreg::Mutex/MutexLock/CondVar (common/sync.h).",
    "no-sleep": "Wall-clock sleep/clock in simulation, algorithm or retry "
                "code; use logical time or interruptible CondVar waits.",
    "ignored-status": "Result of a must-check Decode*/Encode*Checked/"
                      "ParseEndpoint call is dropped.",
    "opcode-switch": "A switch over nad::MsgType must name every "
                     "enumerator.",
    "hot-alloc": "Heap-allocating construction or materializing codec call "
                 "inside a marked hot-path section (DESIGN.md §14).",
    "arena-escape": "A view tied to an arena/rx-buffer/pending-table epoch "
                    "escapes into storage that outlives its Reset point "
                    "(DESIGN.md §14).",
    "lock-order": "Nested MutexLock acquisition violates the DESIGN.md §12 "
                  "hierarchy (scripts/nadlint/lock_order.json).",
    "tsa-coverage": "Mutable field of a mutex-owning class without "
                    "GUARDED_BY: invisible to Clang Thread Safety "
                    "Analysis.",
    "lock-manifest": "lock_order.json and the DESIGN.md §12 hierarchy "
                     "table disagree.",
}


def write_sarif(findings: list[Finding], out_path: Path,
                version: str) -> None:
    rule_ids = sorted({f.rule for f in findings} | set(_RULE_HELP))
    doc = {
        "$schema": "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                   "master/Schemata/sarif-schema-2.1.0.json",
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": "nadlint",
                    "version": version,
                    "rules": [{
                        "id": rid,
                        "shortDescription": {"text": _RULE_HELP.get(
                            rid, rid)},
                        "defaultConfiguration": {"level": "error"},
                    } for rid in rule_ids],
                }
            },
            "results": [{
                "ruleId": f.rule,
                "level": "error",
                "message": {"text": f.message},
                "locations": [{
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": f.path,
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {"startLine": max(1, f.line)},
                    }
                }],
            } for f in findings],
        }],
    }
    out_path.write_text(json.dumps(doc, indent=2) + "\n")
