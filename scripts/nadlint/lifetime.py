"""arena-escape: flags views tied to an arena / rx-buffer / pending-
table epoch escaping into storage that outlives their reset point —
the exact shape of the PR 8 SSO-aliasing bug that survived the
compiler, ASan, TSan and the regex linter.

The model (DESIGN.md §14): MessageView, WireChunk and string_views
derived from an rx buffer, an Arena, or a PendingTable entry die at a
well-defined reset point inside the current frame/cycle. Storing one
where it can be read after that point is silent corruption, never a
crash. Intra-procedurally we can catch the storing shapes:

  E1  member store        view_member_ = v;   this->m_ = v;
  E2  member container    pending_.push_back(v);  wire_.emplace_back(v)
  E3  deferred capture    [v]{...} / [&v]{...} / [=]{... v ...} — a
      lambda owns (or references) the view past the frame unless it is
      invoked immediately
  E4  SSO alias + move    a WireChunk / PutBytesRef / string_view
      references a local std::string's bytes and the string object is
      later std::move'd — if the value is SSO-small the referenced
      bytes live *inside* the moved-from object (PR 8's bug)

Receivers that are locals or parameters are exempt: lifetimes of
caller-owned sinks are the caller's contract (FrameWriter's out_ /
CompactWire's wire param are the designed, epoch-preserving channels),
and a local container dies with the frame anyway. The rule is therefore
conservative by design — unknown structure suppresses, never invents.

Scope: src/ only. tests/test_arena.cc deliberately constructs stale
views to pin the failure mode; the production tree is where escape is
always a bug. Suppress a justified store (one whose sink provably dies
at the same reset point) with
`lint-allow(arena-escape): <which §14 reset covers the sink>`.
"""

from __future__ import annotations

import re

from .base import Finding, RuleContext
from .model import Scope, local_types

# Types that are always epoch-tied, wherever their bytes came from.
VIEW_TYPES = {"MessageView", "WireChunk"}
# string_view locals are tied only when initialized from an epoch
# source; plain string_views over owned strings are fine.
_ARENA_SOURCE_RE = re.compile(
    r"DecodeMessageView|MessageView|WireChunk|\bArena\b|arena"
    r"|\brx_|\brx\b|RxBuffer|\.Head\(\)|PendingTable|pending_?\w*\.Find"
    r"|\bmsg\.|\bmsg->|\bsub\.|\bsub->|\bview\.|\bview->")

_STRING_VIEW_DECL_RE = re.compile(
    r"\b(?:std::)?string_view\s+([A-Za-z_]\w*)\s*(=|\{|\()")
_AUTO_VIEW_DECL_RE = re.compile(
    r"\bauto&?\s+([A-Za-z_]\w*)\s*=\s*(.+)")
_STRING_DECL_RE = re.compile(
    r"(?<![\w:])(?:std::)?string\s+([A-Za-z_]\w*)\s*[=;({]")

_MEMBER_ASSIGN_RE = re.compile(
    r"(?:^|[;{(]|\bthis->)\s*([A-Za-z_]\w*)\s*=\s*(?:std::move\s*\(\s*)?"
    r"([A-Za-z_]\w*)\s*[;)]")
_CONTAINER_STORE_RE = re.compile(
    r"\b([A-Za-z_]\w*(?:\s*(?:\.|->)\s*[A-Za-z_]\w*)*)\s*\.\s*"
    r"(?:push_back|emplace_back|push_front|emplace|insert|assign)\s*\(([^;]*)\)")
_MOVE_RE = re.compile(r"std::move\s*\(\s*([A-Za-z_]\w*)\s*\)")
_PUTBYTESREF_RE = re.compile(r"\bPutBytesRef\s*\(\s*([A-Za-z_]\w*)\b")
_DATA_REF_RE = re.compile(r"\b([A-Za-z_]\w*)\s*\.\s*data\s*\(\s*\)")


def _function_lines(ctx: RuleContext, scope: Scope,
                    include_lambdas: bool):
    end = scope.end_line if scope.end_line >= 0 else ctx.ft.nlines() - 1
    skip = [] if include_lambdas else [
        (c.start_line, c.end_line if c.end_line >= 0 else end)
        for c in scope.children if c.kind in ("lambda", "class", "function")]
    for ln in range(scope.start_line, end + 1):
        if ctx.ft.is_pp[ln]:
            continue
        if any(a <= ln <= b for a, b in skip):
            continue
        yield ln, ctx.ft.code[ln]


def _tracked_views(ctx: RuleContext, scope: Scope) -> dict[str, int]:
    """name → 0-based declaration line of epoch-tied view locals (and
    view-typed parameters, from the scope head)."""
    views: dict[str, int] = {}
    for name, tname in local_types(ctx.ft, scope, VIEW_TYPES).items():
        views.setdefault(name, scope.start_line)
        del tname
    for ln, code in _function_lines(ctx, scope, include_lambdas=False):
        for m in _STRING_VIEW_DECL_RE.finditer(code):
            init = code[m.end():]
            if _ARENA_SOURCE_RE.search(init) or m.group(2) == "=" and \
                    _ARENA_SOURCE_RE.search(code[m.end(1):]):
                views.setdefault(m.group(1), ln)
        for m in _AUTO_VIEW_DECL_RE.finditer(code):
            if re.match(r"\s*DecodeMessageView\s*\(", m.group(2)):
                views.setdefault(m.group(1), ln)
    return views


def _locals_and_params(ctx: RuleContext, scope: Scope) -> set[str]:
    """Names declared inside the function or in its parameter list —
    receivers with these bases are caller/frame-owned, not members.
    Lambdas see the enclosing function's locals too (captured or
    reference-accessible names are still frame-owned, not members)."""
    names: set[str] = set()
    decl = re.compile(r"[&*>\w]\s+([A-Za-z_]\w*)\s*(?:[=;,){:\[]|$)")
    s: Scope | None = scope
    while s is not None and s.kind in ("function", "lambda", "block"):
        texts = [s.head]
        texts.extend(code for _, code in
                     _function_lines(ctx, s, include_lambdas=False))
        for text in texts:
            for m in decl.finditer(text):
                names.add(m.group(1))
        s = s.parent
    return names


def _check_function(ctx: RuleContext, scope: Scope) -> list[Finding]:
    findings: list[Finding] = []
    views = _tracked_views(ctx, scope)
    owned = _locals_and_params(ctx, scope)

    # E4 state: local std::string declarations, and view references into
    # them ({name: first-reference line}).
    strings: dict[str, int] = {}
    referenced: dict[str, int] = {}
    for ln, code in _function_lines(ctx, scope, include_lambdas=False):
        for m in _STRING_DECL_RE.finditer(code):
            strings[m.group(1)] = ln
    for ln, code in _function_lines(ctx, scope, include_lambdas=False):
        for m in _PUTBYTESREF_RE.finditer(code):
            if m.group(1) in strings:
                referenced.setdefault(m.group(1), ln)
        if re.search(r"\bWireChunk\b|\bstring_view\b|\bMessageView\b",
                     code):
            for m in _DATA_REF_RE.finditer(code):
                if m.group(1) in strings:
                    referenced.setdefault(m.group(1), ln)

    for ln, code in _function_lines(ctx, scope, include_lambdas=False):
        # E1: member store of a tracked view.
        for m in _MEMBER_ASSIGN_RE.finditer(code):
            lhs, rhs = m.group(1), m.group(2)
            if rhs in views and lhs not in owned and lhs not in views:
                if not ctx.allowed(ln, "arena-escape"):
                    findings.append(ctx.finding(
                        ln, "arena-escape",
                        f"'{rhs}' is a view into an arena/rx/pending epoch "
                        f"but is stored into member '{lhs}', which "
                        "outlives the epoch's Reset point (DESIGN.md §14); "
                        "copy the bytes at the ownership edge instead"))
        # E2: member-container store of a tracked view.
        for m in _CONTAINER_STORE_RE.finditer(code):
            recv, args = m.group(1), m.group(2)
            base = re.match(r"[A-Za-z_]\w*", recv).group(0)
            if base in owned:
                continue
            arg_ids = set(re.findall(r"[A-Za-z_]\w*", args))
            escaping = sorted(arg_ids & set(views))
            if escaping and not ctx.allowed(ln, "arena-escape"):
                findings.append(ctx.finding(
                    ln, "arena-escape",
                    f"view '{escaping[0]}' is stored into member "
                    f"container '{recv}', which outlives the view's "
                    "arena/frame epoch (DESIGN.md §14); copy at the "
                    "ownership edge or justify with lint-allow"))
        # E4: the string object a queued reference aliases is moved.
        for m in _MOVE_RE.finditer(code):
            name = m.group(1)
            ref_ln = referenced.get(name)
            if ref_ln is not None and ref_ln <= ln:
                if not ctx.allowed(ln, "arena-escape"):
                    findings.append(ctx.finding(
                        ln, "arena-escape",
                        f"'{name}' was referenced by a wire chunk / view "
                        f"(line {ref_ln + 1}) and is std::move'd here: a "
                        "small string stores its bytes inline (SSO), so "
                        "the move relocates the referenced bytes and the "
                        "queued chunk transmits garbage — the PR 8 bug "
                        "shape; copy values <= kSmallValueCopyBytes into "
                        "the arena (DESIGN.md §14 rule 3)"))

    # E3: deferred lambda captures of tracked views.
    for child in scope.children:
        if child.kind != "lambda":
            continue
        cap = child.captures
        cap_ids = set(re.findall(r"[A-Za-z_]\w*", cap))
        body_end = child.end_line if child.end_line >= 0 else ctx.ft.nlines() - 1
        body_text = "\n".join(ctx.ft.code[child.start_line:body_end + 1])
        for name in sorted(views):
            by_name = name in cap_ids
            by_default = ("=" in cap or "&" in cap) and \
                re.search(rf"\b{re.escape(name)}\b", body_text)
            if not (by_name or by_default):
                continue
            # Immediately-invoked lambdas die in the statement: `}()`.
            tail = ctx.ft.code[body_end][ctx.ft.code[body_end].rfind("}") + 1:]
            if re.match(r"\s*\(\s*\)", tail):
                continue
            if not ctx.allowed(child.start_line, "arena-escape"):
                findings.append(ctx.finding(
                    child.start_line, "arena-escape",
                    f"lambda captures epoch-tied view '{name}'; if the "
                    "lambda runs after the frame is consumed or the arena "
                    "reset, the view reads recycled bytes (DESIGN.md "
                    "§14); copy the bytes into the capture instead"))
    return findings


def check_arena_escape(ctx: RuleContext) -> list[Finding]:
    if not ctx.path.startswith("src/"):
        return []
    findings: list[Finding] = []
    for scope in ctx.scopes.walk():
        if scope.kind not in ("function", "lambda"):
            continue
        findings.extend(_check_function(ctx, scope))
    return findings
