"""lock-order: statically checks every nested scoped `MutexLock`
acquisition sequence against the DESIGN.md §12 hierarchy, which lives
in machine-readable form in lock_order.json.

Why this exists: Clang Thread Safety Analysis proves lock *pairing* and
GUARDED_BY access, but the repo's acquisition *order* was prose — and
the GCC half of the CI matrix compiles the annotations to nothing, so a
§12 inversion introduced on a GCC-only branch reaches TSan (maybe) or
production (definitely). This pass needs no compiler: within each
function body it tracks the brace scopes of scoped MutexLock guards and
resolves each locked expression to a manifest rank — bare fields
resolve through the enclosing class (in-class bodies and out-of-line
`Class::Method` definitions alike), `obj.mu` / `obj->mu` through the
declared type of the local or parameter when the scope model knows it.
Acquiring a lock of rank <= an already-held known rank is an inversion
finding. Unknown locks (ad-hoc waiter/test mutexes) have no rank and
are ignored; lambda bodies are separate execution contexts and start
with an empty held set.

Deliberately out of scope: explicit Lock()/Unlock() pairs (one site,
`QuiesceGuard`, the documented NO_THREAD_SAFETY_ANALYSIS island whose
ascending-stripe order a runtime assert checks) and inter-procedural
holds (a REQUIRES-annotated callee is the TSA side's job).

The companion pass `lock-manifest` keeps the manifest honest against
DESIGN.md §12: every hierarchy-table row must have a manifest entry of
the same rank, and every manifest rank must appear in the table.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from pathlib import Path

from .base import Finding, RuleContext
from .model import Scope, local_types

MUTEXLOCK_RE = re.compile(r"\bMutexLock\s+\w+\s*[({]\s*([^;]*?)\s*[)}]\s*;")


@dataclass(frozen=True)
class LockEntry:
    rank: int
    name: str
    classes: tuple[str, ...]  # empty = any owner
    design: str


class LockManifest:
    def __init__(self, entries: list[LockEntry]):
        self.entries = entries
        self.interesting_classes = {c for e in entries for c in e.classes}

    @staticmethod
    def load(path: Path) -> "LockManifest":
        data = json.loads(path.read_text())
        entries = [
            LockEntry(rank=int(e["rank"]), name=e["name"],
                      classes=tuple(e.get("classes", [])),
                      design=e.get("design", e["name"]))
            for e in data["locks"]
        ]
        return LockManifest(entries)

    def resolve(self, field: str, owner_class: str) -> LockEntry | None:
        """Rank of mutex field `field` owned by `owner_class` ('' if
        unknown). A class-constrained entry only matches its classes; an
        unconstrained entry matches any owner."""
        for e in self.entries:
            if e.name != field:
                continue
            if not e.classes or owner_class in e.classes:
                return e
        return None


def _lock_field_and_owner(expr: str, enclosing_class: str,
                          locals_map: dict[str, str]) -> tuple[str, str]:
    """Splits a MutexLock argument into (field name, owner class name).

    `mu_`            → (mu_, <enclosing class>)
    `this->mu_`      → (mu_, <enclosing class>)
    `s.mu`/`s->mu`   → (mu, type of local `s` if declared, else '')
    `a[i].mu`        → (mu, element type of `a` if declared, else '')
    """
    expr = expr.strip()
    expr = re.sub(r"^\*", "", expr)  # MutexLock l(*pmu) — rare
    m = re.match(r"^(?:this\s*->\s*)?([A-Za-z_]\w*)$", expr)
    if m:
        return m.group(1), enclosing_class
    m = re.match(r"^([A-Za-z_]\w*)\s*(?:\[[^\]]*\])?\s*(?:\.|->)\s*"
                 r"([A-Za-z_]\w*)$", expr)
    if m:
        base, field = m.group(1), m.group(2)
        return field, locals_map.get(base, "")
    # Longer chains (a->b.mu): resolve by the last component only, owner
    # unknown — matches only unconstrained manifest entries.
    m = re.search(r"([A-Za-z_]\w*)$", expr)
    return (m.group(1) if m else expr), ""


def _scan_function(ctx: RuleContext, scope: Scope,
                   manifest: LockManifest) -> list[Finding]:
    findings: list[Finding] = []
    ft = ctx.ft
    end = scope.end_line if scope.end_line >= 0 else ft.nlines() - 1
    # Child lambdas/classes/functions are separate contexts.
    barriers = [(c.start_line, c.end_line if c.end_line >= 0 else end, c)
                for c in scope.children
                if c.kind in ("lambda", "class", "function")]
    locals_map = local_types(ctx.ft, scope, manifest.interesting_classes)

    held: list[tuple[int, LockEntry, int]] = []  # (depth, entry, line0)
    depth = 0
    ln = scope.start_line
    col = 0
    while ln <= end:
        inner = next((b for b in barriers if b[0] <= ln <= b[1]), None)
        if inner is not None and ln > scope.start_line:
            ln = inner[1] + 1
            col = 0
            continue
        line = ft.code[ln]
        if ft.is_pp[ln]:
            ln += 1
            continue
        # Acquisitions declared on this line (the guard lives until the
        # closing brace of the *current* depth).
        for m in MUTEXLOCK_RE.finditer(line):
            field, owner = _lock_field_and_owner(
                m.group(1), scope.class_name, locals_map)
            entry = manifest.resolve(field, owner)
            if entry is None:
                continue  # ad-hoc lock outside the hierarchy
            for (_, held_entry, held_ln) in held:
                if held_entry.rank >= entry.rank and \
                        not ctx.allowed(ln, "lock-order"):
                    findings.append(ctx.finding(
                        ln, "lock-order",
                        f"acquires '{entry.design}' (rank {entry.rank}) "
                        f"while holding '{held_entry.design}' (rank "
                        f"{held_entry.rank}, line {held_ln + 1}); the §12 "
                        "hierarchy only allows strictly descending "
                        "acquisition (lock_order.json)"))
                    break
            held.append((depth, entry, ln))
        # Brace tracking after recording (a `{ MutexLock...` on one line
        # puts the guard inside that brace: count opens first).
        for c in line[col:]:
            if c == "{":
                depth += 1
            elif c == "}":
                depth -= 1
                held = [h for h in held if h[0] < depth + 1]
                if depth <= 0 and ln > scope.start_line:
                    break
        ln += 1
        col = 0
    return findings


def check_lock_order(ctx: RuleContext) -> list[Finding]:
    manifest = ctx.manifest
    if manifest is None:
        return []
    findings: list[Finding] = []
    for scope in ctx.scopes.walk():
        if scope.kind not in ("function", "lambda"):
            continue
        findings.extend(_scan_function(ctx, scope, manifest))
    return findings


# --- manifest ↔ DESIGN.md §12 coverage -------------------------------

_ROW_RE = re.compile(r"^\|\s*(\d+)\s*\|(.+?)\|")
_SPAN_RE = re.compile(r"`([^`]+)`")


def check_manifest_coverage(design_md: Path,
                            manifest: LockManifest) -> list[Finding]:
    """Tree-mode pass: every §12 hierarchy row must map to a manifest
    entry of the same rank, and every manifest rank must exist in the
    table. Reported against DESIGN.md / lock_order.json."""
    findings: list[Finding] = []
    try:
        text = design_md.read_text(errors="replace")
    except OSError:
        return [Finding(str(design_md), 1, "lock-manifest",
                        "cannot read DESIGN.md to cross-check the lock "
                        "manifest")]
    rows: dict[int, tuple[int, list[str]]] = {}  # rank → (line, spans)
    in_section = False
    for i, line in enumerate(text.splitlines()):
        if line.startswith("## "):
            in_section = line.startswith("## 12.")
        if not in_section:
            continue
        m = _ROW_RE.match(line.strip())
        if not m:
            continue
        rank = int(m.group(1))
        spans = [s for s in _SPAN_RE.findall(m.group(2))
                 if re.search(r"mu_?\b|Mutex", s)]
        if spans:
            rows[rank] = (i + 1, spans)
    if not rows:
        return [Finding("DESIGN.md", 1, "lock-manifest",
                        "could not locate the §12 lock-hierarchy table; "
                        "the lock-order manifest cannot be cross-checked")]
    by_rank: dict[int, list[LockEntry]] = {}
    for e in manifest.entries:
        by_rank.setdefault(e.rank, []).append(e)
    for rank, (line, spans) in sorted(rows.items()):
        entries = by_rank.get(rank, [])
        if not entries:
            findings.append(Finding(
                "DESIGN.md", line, "lock-manifest",
                f"§12 hierarchy row rank {rank} ({', '.join(spans)}) has "
                "no entry in scripts/nadlint/lock_order.json"))
            continue
        names = {e.name for e in entries}
        covered = any(
            span.split("::")[-1].strip() in names for span in spans)
        if not covered:
            findings.append(Finding(
                "DESIGN.md", line, "lock-manifest",
                f"no lock_order.json entry of rank {rank} matches the §12 "
                f"row's lock name(s) {', '.join(spans)}"))
    for rank in sorted(by_rank):
        if rank not in rows:
            findings.append(Finding(
                "scripts/nadlint/lock_order.json", 1, "lock-manifest",
                f"manifest entry rank {rank} "
                f"({by_rank[rank][0].design}) does not appear in the "
                "DESIGN.md §12 hierarchy table"))
    return findings
