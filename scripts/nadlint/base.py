"""Shared rule-pass plumbing: findings, per-file context, suppression.

A rule pass is a function `(RuleContext) -> list[Finding]`. The context
carries the tokenized file (FileText), the lazily built scope tree, the
virtual path the file is checked under (fixtures re-home themselves via
`// lint-path:`), and cross-file inputs (MsgType enumerators, the lock
manifest). Suppression and expectation markers live in comments only:

  // lint-allow(<rule>): <reason>   on the line or the line above
  lint-expect(<rule>)               fixture mode ground truth
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from functools import cached_property

from .model import Scope, build_scopes
from .tokenizer import FileText

ALLOW_RE = re.compile(r"lint-allow\((?P<rule>[\w-]+)\)")
EXPECT_RE = re.compile(r"lint-expect\((?P<rule>[\w-]+)\)")
LINT_PATH_RE = re.compile(r"^\s*lint-path:\s*(?P<path>\S+)")


@dataclass
class Finding:
    path: str
    line: int  # 1-based
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


class RuleContext:
    def __init__(self, path: str, ft: FileText,
                 enumerators: list[str] | None = None,
                 manifest=None):
        self.path = path.replace("\\", "/")
        self.ft = ft
        self.enumerators = enumerators or []
        self.manifest = manifest

    @cached_property
    def scopes(self) -> Scope:
        return build_scopes(self.ft)

    def allowed(self, line0: int, rule: str) -> bool:
        """True if line line0 (0-based) or the line above carries
        lint-allow(rule) in a comment."""
        for j in (line0, line0 - 1):
            if 0 <= j < self.ft.nlines():
                for m in ALLOW_RE.finditer(self.ft.comment[j]):
                    if m.group("rule") == rule:
                        return True
        return False

    def allowed_range(self, first0: int, last0: int, rule: str) -> bool:
        """Suppression for multi-line statements: any line of the
        statement, or the line above its first line."""
        for j in range(max(0, first0 - 1), min(last0, self.ft.nlines() - 1) + 1):
            for m in ALLOW_RE.finditer(self.ft.comment[j]):
                if m.group("rule") == rule:
                    return True
        return False

    def finding(self, line0: int, rule: str, message: str) -> Finding:
        return Finding(self.path, line0 + 1, rule, message)
