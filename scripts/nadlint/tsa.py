"""tsa-coverage: every mutable field of a class that declares a
nadreg::Mutex must carry GUARDED_BY (or an explicit, reasoned
lint-allow) — so the Clang Thread Safety build actually *covers* the
class instead of silently proving nothing about its unannotated fields.

Why: TSA only checks accesses to fields that are annotated. A class
that takes the trouble to own a Mutex but leaves half its fields bare
gets a green -Wthread-safety build in which precisely the unannotated
half — the part most likely to grow a data race — is invisible. And on
the GCC side of the CI matrix the macros expand to nothing, so the gap
never even has a chance to be noticed. This pass makes the coverage
hole a finding: annotate the field, or document why it needs no lock.

Exempt by construction (the analysis could never bind them to a mutex,
or they synchronize some other way):
  * const / constexpr / static fields and reference members — immutable
    or rebindable-never either way;
  * std::atomic fields — their synchronization story is the atomic
    itself (§12's cross-thread gauges);
  * Mutex / CondVar members — the lock is not guarded by itself;
  * fields already GUARDED_BY / PT_GUARDED_BY.

Scope: src/ only. Test/bench scratch structs park a waiter on an ad-hoc
mutex for one assertion; annotating those teaches TSA nothing the test
does not already assert, and the real discipline (common/sync.h users
in the shipped tree) is what the §12 table governs.

Suppression: `lint-allow(tsa-coverage): <why no lock is needed>` on the
field's line (trailing), any line of a multi-line declaration, or the
line above it.
"""

from __future__ import annotations

from .base import Finding, RuleContext


def check_tsa_coverage(ctx: RuleContext) -> list[Finding]:
    if not ctx.path.startswith("src/"):
        return []
    findings: list[Finding] = []
    for scope in ctx.scopes.walk():
        if scope.kind != "class" or not scope.has_mutex:
            continue
        for f in scope.fields:
            if (f.guarded or f.is_const or f.is_static or f.is_reference
                    or f.is_atomic or f.is_mutex or f.is_condvar):
                continue
            if ctx.allowed_range(f.first_line, f.line, "tsa-coverage"):
                continue
            findings.append(ctx.finding(
                f.line, "tsa-coverage",
                f"'{scope.name}::{f.name}' is a mutable field of a "
                "mutex-owning class but carries no GUARDED_BY; annotate "
                "it (common/thread_annotations.h) or lint-allow with the "
                "reason it needs no lock (DESIGN.md §15)"))
    return findings
