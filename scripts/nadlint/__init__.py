"""nadlint: the repo's C++-aware invariant linter (DESIGN.md §15).

Grown out of scripts/lint_invariants.py (which remains as a thin CLI
shim): a comment/string/raw-string/preprocessor-aware tokenizer
(tokenizer.py) and a lightweight per-file scope + symbol model
(model.py) feed rule passes that plain regexes fundamentally cannot
express — arena-escape (lifetime.py), lock-order against the
machine-readable DESIGN.md §12 manifest lock_order.json (locks.py),
and tsa-coverage (tsa.py) — alongside the five original mechanical
rules migrated onto the token stream (rules.py). Findings can be
emitted as SARIF 2.1.0 for GitHub code scanning (sarif.py).

Entry point: engine.main() (also `python3 -m nadlint`).
"""

__version__ = "2.0"
