"""nadlint driver: file iteration, rule dispatch, fixture self-test,
SARIF emission, CLI.

Rules (DESIGN.md §15 is the human catalog):
  raw-mutex, no-sleep, ignored-status, opcode-switch, hot-alloc
      the original mechanical rules, on the token stream (rules.py)
  arena-escape   epoch-tied views escaping their reset point (lifetime.py)
  lock-order     nested MutexLock vs the §12 manifest (locks.py)
  tsa-coverage   unannotated mutable fields of mutex-owning classes (tsa.py)
  lock-manifest  lock_order.json ↔ DESIGN.md §12 drift (tree mode only)

Suppression: append  // lint-allow(<rule>): <reason>  to the offending
line (or the line directly above it). Exception: the schedule explorer
(src/sim/explorer.cc) is *strictly* sleep-free — lint-allow(no-sleep)
is not honoured there.

Fixture mode (--fixtures DIR) self-tests the linter: each fixture file
declares its virtual tree location with  // lint-path: <path>  and marks
the lines the linter MUST flag with  lint-expect(<rule>). The run fails
if any expected line is missed or any unexpected line is flagged.

Exit status: 0 = clean / all fixtures behave, 1 = findings / fixture
mismatch, 2 = usage or I/O error.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

from . import __version__
from .base import EXPECT_RE, Finding, LINT_PATH_RE, RuleContext
from .tokenizer import lex_file

SOURCE_EXTS = {".h", ".cc", ".cpp", ".hpp"}
SKIP_DIR_NAMES = {"build", "third_party", ".git"}
FIXTURE_DIR = Path("tests/lint_fixtures")

ENUMERATOR_RE = re.compile(r"^\s*(k\w+)\s*=?")


def msgtype_enumerators(root: Path) -> list[str]:
    """Parses the MsgType enumerator list out of src/nad/protocol.h
    (code channel: a commented-out enumerator does not count)."""
    proto = root / "src" / "nad" / "protocol.h"
    try:
        ft = lex_file(proto)
    except OSError:
        return []
    text = "\n".join(ft.code)
    m = re.search(r"enum class MsgType[^{]*\{(?P<body>[^}]*)\}", text)
    if not m:
        return []
    names = []
    for line in m.group("body").splitlines():
        em = ENUMERATOR_RE.match(line)
        if em:
            names.append(em.group(1))
    return names


def load_manifest(root: Path):
    from .locks import LockManifest
    path = Path(__file__).resolve().parent / "lock_order.json"
    try:
        return LockManifest.load(path)
    except (OSError, ValueError, KeyError) as e:
        print(f"nadlint: warning: cannot load {path}: {e}; "
              "lock-order rule disabled", file=sys.stderr)
        return None


def check_file(virtual_path: str, ft, enumerators, manifest) -> list[Finding]:
    from .lifetime import check_arena_escape
    from .locks import check_lock_order
    from .rules import check_basic
    from .tsa import check_tsa_coverage

    ctx = RuleContext(virtual_path, ft, enumerators, manifest)
    findings: list[Finding] = []
    findings.extend(check_basic(ctx))
    findings.extend(check_arena_escape(ctx))
    findings.extend(check_lock_order(ctx))
    findings.extend(check_tsa_coverage(ctx))
    return findings


def iter_tree(root: Path):
    for sub in ("src", "tests", "bench", "examples"):
        base = root / sub
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in SOURCE_EXTS or not path.is_file():
                continue
            rel = path.relative_to(root)
            if any(part in SKIP_DIR_NAMES for part in rel.parts):
                continue
            if rel.is_relative_to(FIXTURE_DIR):
                continue  # known-bad snippets, scanned only by --fixtures
            yield rel, path


def run_tree(root: Path, sarif_out: Path | None) -> int:
    from .locks import check_manifest_coverage

    enumerators = msgtype_enumerators(root)
    if not enumerators:
        print("nadlint: warning: could not parse MsgType enumerators; "
              "opcode-switch rule disabled", file=sys.stderr)
    manifest = load_manifest(root)
    findings: list[Finding] = []
    nfiles = 0
    for rel, path in iter_tree(root):
        nfiles += 1
        findings.extend(
            check_file(str(rel), lex_file(path), enumerators, manifest))
    if manifest is not None:
        findings.extend(check_manifest_coverage(root / "DESIGN.md", manifest))
    for f in findings:
        print(f)
    if sarif_out is not None:
        from .sarif import write_sarif
        write_sarif(findings, sarif_out, __version__)
        print(f"nadlint: SARIF written to {sarif_out}", file=sys.stderr)
    print(f"nadlint: {nfiles} files, {len(findings)} finding(s)",
          file=sys.stderr)
    return 1 if findings else 0


def run_fixtures(root: Path, fixtures: Path,
                 sarif_out: Path | None) -> int:
    enumerators = msgtype_enumerators(root)
    manifest = load_manifest(root)
    failures = 0
    nfix = 0
    all_findings: list[Finding] = []
    for path in sorted(fixtures.glob("*")):
        if path.suffix not in SOURCE_EXTS:
            continue
        nfix += 1
        ft = lex_file(path)
        m = LINT_PATH_RE.match(ft.comment[0]) if ft.nlines() else None
        if not m:
            print(f"{path}: fixture missing '// lint-path:' header")
            failures += 1
            continue
        virtual = m.group("path")
        expected = set()
        for i in range(ft.nlines()):
            for em in EXPECT_RE.finditer(ft.comment[i]):
                expected.add((i + 1, em.group("rule")))
        findings = check_file(virtual, ft, enumerators, manifest)
        all_findings.extend(findings)
        got = {(f.line, f.rule) for f in findings}
        for line_no, rule in sorted(expected - got):
            print(f"{path}:{line_no}: fixture expected [{rule}] "
                  "but the linter stayed quiet")
            failures += 1
        for line_no, rule in sorted(got - expected):
            print(f"{path}:{line_no}: linter flagged unexpected [{rule}]")
            failures += 1
    if sarif_out is not None:
        from .sarif import write_sarif
        write_sarif(all_findings, sarif_out, __version__)
    print(f"nadlint: {nfix} fixture(s), {failures} mismatch(es)",
          file=sys.stderr)
    if nfix == 0:
        print(f"nadlint: no fixtures found in {fixtures}", file=sys.stderr)
        return 2
    return 1 if failures else 0


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="nadlint",
        description="C++-aware repo-invariant linter (DESIGN.md §15)")
    ap.add_argument("--root", type=Path,
                    default=Path(__file__).resolve().parent.parent.parent,
                    help="repository root (default: the checkout containing "
                         "this script)")
    ap.add_argument("--fixtures", type=Path, default=None,
                    help="run in self-test mode over known-bad fixture files")
    ap.add_argument("--sarif", type=Path, default=None,
                    help="also write findings as SARIF 2.1.0 (GitHub code "
                         "scanning)")
    args = ap.parse_args(argv)
    root = args.root.resolve()
    if not (root / "src").is_dir():
        print(f"nadlint: {root} does not look like the repo root",
              file=sys.stderr)
        return 2
    if args.fixtures:
        return run_fixtures(root, args.fixtures.resolve(), args.sarif)
    return run_tree(root, args.sarif)
