"""Lightweight per-file scope and symbol model.

Built on the tokenizer's code channel only — comments and literal
contents are already blanked, so brace counting and declaration
scanning cannot be derailed by a `{` in a string or a commented-out
line. This is deliberately NOT a C++ parser: it recovers just enough
structure for the scope-sensitive rules —

  * a brace-matched scope tree (namespace / class / function / lambda /
    plain block), each scope knowing its line span, its head text (the
    statement fragment that opened it) and, for functions, the class it
    belongs to (both in-class definitions and out-of-line
    `Type Class::Method(...)` bodies);
  * per class scope, the member *field* declarations with their
    qualifiers (const/static/mutable/reference/atomic), their type
    text, and whether they carry GUARDED_BY / PT_GUARDED_BY;
  * per function scope, a map of interesting local/parameter names to
    their declared type (only for the handful of type names a rule
    registers interest in — lock owners and view types).

Heuristics over grammar: a scope-opening `{` is classified by the
statement head preceding it. Annotation macros (GUARDED_BY(...) et al.)
look like function declarators, so they are stripped before
classification. When the model is unsure it says 'block', which every
rule treats as transparent — unknown structure can suppress a finding
but never invent one.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from .tokenizer import FileText

# Thread-safety annotation macros (common/thread_annotations.h): these
# read as `NAME(args)` and must not be mistaken for function heads.
ANNOTATION_MACROS = (
    "GUARDED_BY", "PT_GUARDED_BY", "REQUIRES", "REQUIRES_SHARED",
    "ACQUIRE", "ACQUIRE_SHARED", "RELEASE", "RELEASE_SHARED",
    "TRY_ACQUIRE", "TRY_ACQUIRE_SHARED", "EXCLUDES", "ASSERT_CAPABILITY",
    "ASSERT_SHARED_CAPABILITY", "RETURN_CAPABILITY",
    "NO_THREAD_SAFETY_ANALYSIS", "CAPABILITY", "SCOPED_CAPABILITY",
)
_ANNOTATION_RE = re.compile(
    r"\b(?:" + "|".join(ANNOTATION_MACROS) + r")\s*(\([^()]*\))?")

_CLASS_HEAD_RE = re.compile(
    r"\b(?:class|struct)\s+(?:CAPABILITY\s*\([^)]*\)\s*|SCOPED_CAPABILITY\s+)?"
    r"((?:[A-Za-z_]\w*\s*::\s*)*[A-Za-z_]\w*)\s*(?:final\b)?\s*(?::(?!:)|$)?")
_ENUM_HEAD_RE = re.compile(r"\benum\b")
_NAMESPACE_HEAD_RE = re.compile(r"\bnamespace\b")
_LAMBDA_TAIL_RE = re.compile(
    r"\[(?P<captures>[^\[\]]*)\]\s*(?:\([^()]*\))?\s*"
    r"(?:mutable\b|noexcept\b|->\s*[\w:<>&*,\s]+)*\s*$")
_OUT_OF_LINE_RE = re.compile(r"([A-Za-z_]\w*)\s*::\s*~?[A-Za-z_]\w*\s*\($")
_FUNC_TAIL_RE = re.compile(
    r"\)\s*(?:const\b|noexcept\b|override\b|final\b|mutable\b|&&?|"
    r"->\s*[\w:<>&*,\s]+|\btry\b)*\s*$")
_CTOR_INIT_RE = re.compile(r"\)\s*(?:noexcept\s*)?:\s*[^;{]*$")
_ACCESS_SPEC_RE = re.compile(r"\b(?:public|private|protected)\s*:")
_CONTROL_RE = re.compile(r"\b(?:if|for|while|switch|catch|do|else|return)\b")

_MUTEX_TYPE_RE = re.compile(r"\b(?:nadreg::)?Mutex\b")
_CONDVAR_TYPE_RE = re.compile(r"\b(?:nadreg::)?CondVar\b")
_ATOMIC_TYPE_RE = re.compile(r"\bstd::atomic\b|\batomic_flag\b")


@dataclass
class Field:
    name: str
    type_text: str
    line: int  # 0-based line of the statement's end (the `;`)
    first_line: int  # 0-based line where the statement started
    guarded: bool
    is_const: bool
    is_static: bool
    is_reference: bool
    is_atomic: bool
    is_mutex: bool
    is_condvar: bool


@dataclass
class Scope:
    kind: str  # 'top' | 'namespace' | 'class' | 'function' | 'lambda' | 'block' | 'enum'
    name: str  # class or namespace name; '' otherwise
    head: str  # statement head that opened the scope
    start_line: int  # 0-based, line of the opening '{'
    end_line: int = -1  # 0-based, line of the closing '}' (or EOF)
    class_name: str = ""  # for functions: the owning class, '' if free
    captures: str = ""  # for lambdas: the capture-list text
    parent: "Scope | None" = None
    children: list["Scope"] = field(default_factory=list)
    fields: list[Field] = field(default_factory=list)  # class scopes
    has_mutex: bool = False  # class scopes: declares a nadreg::Mutex

    def walk(self):
        yield self
        for c in self.children:
            yield from c.walk()

    def enclosing_class(self) -> "Scope | None":
        s = self.parent
        while s is not None:
            if s.kind == "class":
                return s
            s = s.parent
        return None


def _field_name(stmt: str) -> str | None:
    """Extracts the declared member name from a field statement (the
    annotations have already been stripped)."""
    # Cut any initializer.
    cut = len(stmt)
    depth = 0
    for i, c in enumerate(stmt):
        if c in "<([":
            depth += 1
        elif c in ">)]":
            depth -= 1
        elif c in "={" and depth <= 0:
            cut = i
            break
    head = stmt[:cut].rstrip()
    # Drop a trailing array extent.
    head = re.sub(r"\[[^\]]*\]\s*$", "", head).rstrip()
    m = re.search(r"([A-Za-z_]\w*)\s*$", head)
    if not m:
        return None
    name = m.group(1)
    # `std::vector<Task> inbox_` → inbox_; a lone type name (e.g. an
    # unnamed bitfield or a stray macro) has no preceding type tokens.
    before = head[: m.start()].strip()
    if not before:
        return None
    return name


_NOT_A_FIELD_RE = re.compile(
    r"^\s*(?:using\b|typedef\b|friend\b|static_assert\b|template\b|"
    r"class\b|struct\b|enum\b|explicit\b.*\(|operator\b)")


def _classify_field(stmt: str, end_line: int, first_line: int) -> Field | None:
    """Decides whether a class-body statement is a data member and, if
    so, describes it. Returns None for methods and non-member noise."""
    text = _ACCESS_SPEC_RE.sub(" ", stmt).strip()
    if not text or text in ("{}",):
        return None
    guarded = bool(re.search(r"\b(?:PT_)?GUARDED_BY\s*\(", text))
    text = _ANNOTATION_RE.sub(" ", text).strip()
    if not text:
        return None
    if _NOT_A_FIELD_RE.match(text):
        return None
    if re.search(r"\)\s*(?:const\b|noexcept\b|override\b|final\b|\s)*"
                 r"=\s*(?:default|delete|0)\s*$", text):
        return None  # defaulted/deleted/pure method (a ')' must precede;
        #               `int x = 0;` is a field, not pure-virtual)
    # Method vs field: a parenthesis at angle-bracket depth 0 that is not
    # part of an initializer (`= foo(...)` / brace-init) means declarator
    # parens, i.e. a function. Parens inside template args don't count.
    eq = None
    angle = paren = 0
    first_paren = None
    for i, c in enumerate(text):
        if c == "<":
            angle += 1
        elif c == ">":
            angle = max(0, angle - 1)
        elif c == "(":
            if angle == 0 and paren == 0 and first_paren is None:
                first_paren = i
            paren += 1
        elif c == ")":
            paren = max(0, paren - 1)
        elif c == "=" and angle == 0 and paren == 0 and eq is None:
            eq = i
    if first_paren is not None and (eq is None or first_paren < eq):
        # Constructor-style member init `Rng rng_(seed);` is rare in this
        # tree; treat name(args) with a known-type head conservatively as
        # a method and move on.
        return None
    name = _field_name(text)
    if name is None:
        return None
    type_text = text[: text.rfind(name)].strip() or text
    return Field(
        name=name,
        type_text=type_text,
        line=end_line,
        first_line=first_line,
        guarded=guarded,
        is_const=bool(re.match(r"(?:\s*(?:static|constexpr|inline|mutable)\b)*\s*const\b",
                               text)) or "constexpr" in text.split(),
        is_static=bool(re.match(r"\s*(?:static|constexpr)\b", text)),
        is_reference="&" in type_text,
        is_atomic=bool(_ATOMIC_TYPE_RE.search(type_text)),
        is_mutex=bool(_MUTEX_TYPE_RE.search(type_text)),
        is_condvar=bool(_CONDVAR_TYPE_RE.search(type_text)),
    )


def _classify_scope(head: str, parent: Scope) -> tuple[str, str, str, str]:
    """Returns (kind, name, class_name, captures) for the scope a `{`
    opens, given the preceding statement head."""
    stripped = _ANNOTATION_RE.sub(" ", head).strip()
    if _ENUM_HEAD_RE.search(stripped):
        return "enum", "", "", ""
    m = _LAMBDA_TAIL_RE.search(stripped)
    if m:
        # Owning class flows through: a lambda inside a method still
        # "sees" the class (it almost always captures this).
        return "lambda", "", _owner_class(parent), m.group("captures")
    if _CONTROL_RE.search(stripped):
        # if/for/while/switch/catch heads end with ')' like a function
        # declarator; they open transparent blocks, not bodies.
        return "block", "", _owner_class(parent), ""
    cm = None
    for cm_it in _CLASS_HEAD_RE.finditer(stripped):
        cm = cm_it  # last match wins (`struct X : public Base<Y>`)
    if cm and not re.search(r"\benum\s+(?:class|struct)\b", stripped):
        return "class", cm.group(1), "", ""
    if _NAMESPACE_HEAD_RE.search(stripped) and "(" not in stripped:
        return "namespace", "", "", ""
    if _FUNC_TAIL_RE.search(stripped) or _CTOR_INIT_RE.search(stripped):
        om = None
        for om_it in re.finditer(r"([A-Za-z_]\w*)\s*::\s*~?[A-Za-z_]\w*\s*\(",
                                 stripped):
            om = om_it
        if om and om.group(1) not in ("std", "nadreg", "nad", "sim", "obs",
                                      "core", "apps", "faults", "checker"):
            return "function", "", om.group(1), ""
        return "function", "", _owner_class(parent), ""
    return "block", "", _owner_class(parent), ""


def _owner_class(scope: Scope) -> str:
    s: Scope | None = scope
    while s is not None:
        if s.kind == "class":
            return s.name
        if s.kind in ("function", "lambda", "block") and s.class_name:
            return s.class_name
        s = s.parent
    return ""


def build_scopes(ft: FileText) -> Scope:
    """One pass over the code channel: a brace-matched scope tree plus
    class field tables."""
    root = Scope(kind="top", name="", head="", start_line=0)
    cur = root
    head_buf: list[str] = []  # statement text since the last ; { }
    head_start_line = 0
    stmt_start_line = 0

    def flush_class_stmt(end_line: int):
        nonlocal head_buf, stmt_start_line
        if cur.kind == "class":
            stmt = " ".join("".join(head_buf).split())
            f = _classify_field(stmt, end_line, stmt_start_line)
            if f is not None:
                cur.fields.append(f)
                if f.is_mutex:
                    cur.has_mutex = True
        head_buf = []
        stmt_start_line = end_line

    # Brace initializers inside a class body (`std::atomic<bool> x_{};`)
    # must not be mistaken for scopes, or the field statement would be
    # lost: depth > 0 means we are inside one and merely count braces.
    init_depth = 0
    paren_depth = 0
    saved_heads: list[tuple[list[str], int]] = []

    for ln, line in enumerate(ft.code):
        if ft.is_pp[ln]:
            continue
        i, n = 0, len(line)
        while i < n:
            c = line[i]
            if init_depth > 0:
                if c == "{":
                    init_depth += 1
                elif c == "}":
                    init_depth -= 1
                    if init_depth == 0:
                        head_buf, stmt_start_line = saved_heads.pop()
                        head_buf.append("{} ")
                elif c == ";" and init_depth == 0:
                    pass
                i += 1
                continue
            if c == "{":
                head = " ".join("".join(head_buf).split())
                kind, name, class_name, captures = _classify_scope(head, cur)
                if kind == "block" and cur.kind == "class" and head:
                    saved_heads.append((head_buf, stmt_start_line))
                    head_buf = []
                    init_depth = 1
                    i += 1
                    continue
                child = Scope(kind=kind, name=name, head=head, start_line=ln,
                              class_name=class_name, captures=captures,
                              parent=cur)
                cur.children.append(child)
                cur = child
                head_buf = []
                stmt_start_line = ln
                paren_depth = 0
            elif c == "}":
                cur.end_line = ln
                if cur.parent is not None:
                    cur = cur.parent
                head_buf = []
                stmt_start_line = ln
                paren_depth = 0
            elif c == ";":
                if paren_depth == 0:
                    head_buf.append(" ")
                    flush_class_stmt(ln)
                else:
                    head_buf.append(c)  # for(a; b; c) stays one head
            else:
                if c == "(":
                    paren_depth += 1
                elif c == ")":
                    paren_depth = max(0, paren_depth - 1)
                if not head_buf:
                    stmt_start_line = ln
                    head_start_line = ln
                head_buf.append(c)
            i += 1
        head_buf.append(" ")  # newline separates tokens

    while cur.parent is not None:  # unbalanced file: close what's open
        cur.end_line = ft.nlines() - 1
        cur = cur.parent
    root.end_line = ft.nlines() - 1
    del head_start_line
    return root


def local_types(ft: FileText, scope: Scope,
                interesting: set[str]) -> dict[str, str]:
    """Scans a function scope (and its nested plain blocks, but not
    nested lambdas/classes) for declarations `Type[&*] name` of the
    registered type names, including parameters on the head line.
    Returns name → bare type name."""
    out: dict[str, str] = {}
    if not interesting:
        return out
    pat = re.compile(
        r"\b(?:const\s+)?(" + "|".join(re.escape(t) for t in interesting) +
        r")\s*(?:<[^<>]*>)?\s*[&*]?\s+([A-Za-z_]\w*)\b")
    texts = [scope.head]
    skip: list[tuple[int, int]] = [
        (c.start_line, c.end_line) for c in scope.children
        if c.kind in ("lambda", "class", "function")]
    for ln in range(scope.start_line, (scope.end_line if scope.end_line >= 0
                                       else ft.nlines() - 1) + 1):
        if any(a <= ln <= b for a, b in skip):
            continue
        texts.append(ft.code[ln])
    for text in texts:
        for m in pat.finditer(text):
            out.setdefault(m.group(2), m.group(1))
    return out
