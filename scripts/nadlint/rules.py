"""The five original mechanical rules (raw-mutex, no-sleep,
ignored-status, opcode-switch, hot-alloc), migrated from raw-line
regexes onto the tokenizer's channels.

What migration buys: every pattern now matches on the code channel
(comments and literal contents blanked), and every directive
(lint-allow, hot-path-begin/end) is read from the comment channel — so
a `std::mutex` in a block comment, a "sleep_for" in a log string, or a
hot-path marker smuggled into a string literal can neither raise nor
suppress a finding. The rule semantics themselves are unchanged and the
original fixture corpus passes byte-for-byte.
"""

from __future__ import annotations

import re

from .base import Finding, RuleContext

RAW_MUTEX_RE = re.compile(
    r"\bstd::(?:recursive_|shared_|timed_)*mutex\b"
    r"|\bstd::(?:lock_guard|unique_lock|scoped_lock|shared_lock)\b"
    r"|\bstd::condition_variable(?:_any)?\b"
)
SLEEP_RE = re.compile(r"\b(?:sleep_for|sleep_until|system_clock)\b")
# A statement line that begins with a must-check call: nothing consumes
# the result. Assignments ("auto x = Decode..."), returns, conditions and
# explicit "(void)Decode..." discards all fail this anchor on purpose.
IGNORED_STATUS_RE = re.compile(
    r"^\s*(?:[\w]+(?:::[\w]+)*::)?"
    r"(?:Decode[A-Z]\w*|Encode\w*Checked|ParseEndpoint)\s*\("
)
# Heap-allocating constructions and materializing codec calls that must
# not appear inside a marked hot section. std::string_view is NOT matched
# (\b fails before the _); DecodeMessageView is NOT matched (the paren
# must follow immediately). Value( catches the Value = std::string alias.
HOT_ALLOC_RE = re.compile(
    r"\bstd::string\b"
    r"|\bstd::vector\s*<"
    r"|\bstd::deque\b"
    r"|\bstd::to_string\b"
    r"|\bnew\s+[A-Za-z_]"
    r"|\bValue\s*\("
    r"|\bEncodeMessage\w*\s*\("
    r"|\bDecodeMessage\s*\("
)
HOT_BEGIN_RE = re.compile(r"hot-path-begin\((?P<name>[\w-]+)\)")
HOT_END_RE = re.compile(r"hot-path-end\b")
CASE_RE = re.compile(r"\bcase\s+(?:nad::)?MsgType::(\w+)")

# Files where no-sleep may not be suppressed: event-driven by design.
STRICT_NO_SLEEP = {"src/sim/explorer.cc"}


def in_no_sleep_scope(p: str) -> bool:
    # The retry/backoff path may never raw-sleep: a sleeping thread
    # cannot be interrupted by shutdown, while a CondVar deadline wait
    # can; an event loop sleeps only inside epoll_wait.
    return (
        p.startswith(("src/sim/", "src/core/", "src/faults/"))
        or re.fullmatch(
            r"src/nad/(?:retry|client|event_loop|timer_wheel)"
            r"\.(?:h|cc|cpp|hpp)", p)
        is not None
    )


def switch_spans(code_lines: list[str]):
    """Yields (start_line_0based, body_text) for each switch statement,
    scanning the code channel only."""
    text = "\n".join(code_lines)
    for m in re.finditer(r"\bswitch\s*\(", text):
        start_line = text.count("\n", 0, m.start())
        brace = text.find("{", m.end())
        if brace < 0:
            continue
        depth = 0
        for k in range(brace, len(text)):
            if text[k] == "{":
                depth += 1
            elif text[k] == "}":
                depth -= 1
                if depth == 0:
                    yield start_line, text[brace : k + 1]
                    break


def check_basic(ctx: RuleContext) -> list[Finding]:
    p = ctx.path
    ft = ctx.ft
    findings: list[Finding] = []
    in_common = p.startswith("src/common/")
    no_sleep = in_no_sleep_scope(p)
    in_nad = p.startswith("src/nad/")
    hot_since: int | None = None

    for i in range(ft.nlines()):
        comment = ft.comment[i]
        if HOT_BEGIN_RE.search(comment):
            if hot_since is not None:
                findings.append(ctx.finding(
                    i, "hot-alloc",
                    "nested hot-path-begin (previous section opened at line "
                    f"{hot_since + 1} is still open)"))
            hot_since = i
        elif HOT_END_RE.search(comment):
            hot_since = None
        code = ft.code[i]
        if not code.strip():
            continue
        if hot_since is not None and not ft.is_pp[i] \
                and HOT_ALLOC_RE.search(code):
            if not ctx.allowed(i, "hot-alloc"):
                findings.append(ctx.finding(
                    i, "hot-alloc",
                    "heap-allocating construction or materializing codec "
                    "call inside a hot-path section; use the arena / "
                    "FrameWriter / MessageView machinery (DESIGN.md §14)"))
        if not in_common and not ft.is_pp[i] and RAW_MUTEX_RE.search(code):
            if not ctx.allowed(i, "raw-mutex"):
                findings.append(ctx.finding(
                    i, "raw-mutex",
                    "raw std:: sync primitive; use nadreg::Mutex/MutexLock/"
                    "CondVar from common/sync.h"))
        if no_sleep and not ft.is_pp[i] and SLEEP_RE.search(code):
            strict = p in STRICT_NO_SLEEP
            if strict and ctx.allowed(i, "no-sleep"):
                findings.append(ctx.finding(
                    i, "no-sleep",
                    "lint-allow(no-sleep) is not honoured here: the "
                    "explorer's quiescence detection is event-driven "
                    "(DetFarm scheduler hooks); a wall-clock wait would "
                    "make branching nondeterministic"))
            elif strict or not ctx.allowed(i, "no-sleep"):
                findings.append(ctx.finding(
                    i, "no-sleep",
                    "wall-clock sleep/clock in simulation, algorithm or "
                    "retry code; use the farm's logical time or "
                    "steady_clock with interruptible CondVar waits"))
        if IGNORED_STATUS_RE.match(code):
            if not ctx.allowed(i, "ignored-status"):
                findings.append(ctx.finding(
                    i, "ignored-status",
                    "result of a must-check call is dropped; assign it or "
                    "cast to (void) with a reason"))

    if hot_since is not None:
        findings.append(ctx.finding(
            hot_since, "hot-alloc",
            "hot-path-begin without a matching hot-path-end"))

    if in_nad and ctx.enumerators:
        for start, body in switch_spans(ft.code):
            cases = set(CASE_RE.findall(body))
            if not cases:
                continue  # not a MsgType switch
            missing = [e for e in ctx.enumerators if e not in cases]
            if missing and not ctx.allowed(start, "opcode-switch"):
                findings.append(ctx.finding(
                    start, "opcode-switch",
                    "switch over MsgType does not name: "
                    + ", ".join(missing)))
    return findings
