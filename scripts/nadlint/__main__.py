"""`python3 -m nadlint` (with scripts/ on sys.path) — same CLI as the
scripts/lint_invariants.py shim."""

import sys

from .engine import main

if __name__ == "__main__":
    sys.exit(main())
