"""C++-aware lexical pass: splits a translation unit into code, comment
and literal channels without ever parsing C++ proper.

The old regex linter ran on raw lines with a trailing-`//` chop, so a
pattern inside a block comment, a string literal, or a cleverly wrapped
comment produced false positives (and `lint-allow` markers existed only
to paper over them). This pass walks the file once with a small state
machine — line comments, block comments, ordinary/char literals with
escapes, raw strings with custom delimiters, preprocessor lines with
continuations — and produces a `FileText`:

  lines    the raw input lines (for reporting / directive echo)
  code     same shape, with comment text and literal *contents* blanked
           to spaces (delimiters kept), so column numbers survive and
           every rule regex runs on code and nothing but code
  comment  per line, the concatenated comment text (the only channel
           the directive scanners — lint-allow / lint-expect /
           hot-path-begin / lint-path — ever read)
  is_pp    per line, whether the line belongs to a preprocessor
           directive (including `\\` continuations)

Rules never see the raw text again: code patterns match on `code`,
directives match on `comment`, and the two cannot contaminate each
other.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class FileText:
    lines: list[str] = field(default_factory=list)
    code: list[str] = field(default_factory=list)
    comment: list[str] = field(default_factory=list)
    is_pp: list[bool] = field(default_factory=list)

    def nlines(self) -> int:
        return len(self.lines)


# Lexer states.
_CODE, _LINE_COMMENT, _BLOCK_COMMENT, _STRING, _CHAR, _RAW = range(6)

import re

_RAW_PREFIX_RE = re.compile(r"(?:^|[^\w])(?:u8|u|U|L)?R$")


def lex(text: str) -> FileText:
    """Single forward pass over the file; never throws on malformed
    input (an unterminated literal simply blanks to end of file, which
    is what the compiler would reject anyway)."""
    out = FileText()
    state = _CODE
    raw_delim = ""  # the )delim" terminator of the active raw string
    pp_active = False  # inside a preprocessor directive (continuations)

    for raw_line in text.splitlines():
        code_chars: list[str] = []
        comment_chars: list[str] = []
        line_is_pp = False

        if state == _LINE_COMMENT:
            state = _CODE  # a line comment never survives the newline
        if pp_active:
            line_is_pp = True

        i, n = 0, len(raw_line)
        # A fresh preprocessor directive: first non-blank char is '#'.
        if state == _CODE and not pp_active:
            stripped = raw_line.lstrip()
            if stripped.startswith("#"):
                line_is_pp = True

        while i < n:
            c = raw_line[i]
            nxt = raw_line[i + 1] if i + 1 < n else ""
            if state == _CODE:
                if c == "/" and nxt == "/":
                    state = _LINE_COMMENT
                    code_chars.append("  ")
                    i += 2
                    continue
                if c == "/" and nxt == "*":
                    state = _BLOCK_COMMENT
                    code_chars.append("  ")
                    i += 2
                    continue
                if c == '"':
                    # R"delim( ... )delim" — the prefix must directly
                    # abut the quote and be a whole token (not FooR").
                    before = "".join(code_chars)
                    if _RAW_PREFIX_RE.search(before):
                        close = raw_line.find("(", i + 1)
                        if close >= 0:
                            raw_delim = ")" + raw_line[i + 1 : close] + '"'
                            state = _RAW
                            code_chars.append('"')
                            code_chars.append(" " * (close - i))
                            i = close + 1
                            continue
                    state = _STRING
                    code_chars.append('"')
                    i += 1
                    continue
                if c == "'":
                    # Digit separators (1'000'000) are not char literals.
                    prev = code_chars[-1][-1:] if code_chars else ""
                    if prev.isdigit() and (nxt.isdigit() or nxt in "abcdefABCDEF"):
                        code_chars.append(c)
                        i += 1
                        continue
                    state = _CHAR
                    code_chars.append("'")
                    i += 1
                    continue
                code_chars.append(c)
                i += 1
            elif state == _LINE_COMMENT:
                comment_chars.append(c)
                code_chars.append(" ")
                i += 1
            elif state == _BLOCK_COMMENT:
                if c == "*" and nxt == "/":
                    state = _CODE
                    code_chars.append("  ")
                    i += 2
                else:
                    comment_chars.append(c)
                    code_chars.append(" ")
                    i += 1
            elif state in (_STRING, _CHAR):
                quote = '"' if state == _STRING else "'"
                if c == "\\" and nxt:
                    code_chars.append("  ")
                    i += 2
                elif c == quote:
                    state = _CODE
                    code_chars.append(quote)
                    i += 1
                else:
                    code_chars.append(" ")
                    i += 1
            else:  # _RAW
                end = raw_line.find(raw_delim, i)
                if end < 0:
                    code_chars.append(" " * (n - i))
                    i = n
                else:
                    code_chars.append(" " * (end - i))
                    code_chars.append('"')
                    i = end + len(raw_delim)
                    state = _CODE

        # An unterminated ordinary literal does not really span lines;
        # recover rather than blanking the rest of the file.
        if state in (_STRING, _CHAR):
            state = _CODE

        code_line = "".join(code_chars)
        if line_is_pp:
            pp_active = code_line.rstrip().endswith("\\")
        out.lines.append(raw_line)
        out.code.append(code_line)
        out.comment.append("".join(comment_chars))
        out.is_pp.append(line_is_pp)

    return out


def lex_file(path) -> FileText:
    return lex(path.read_text(errors="replace"))
