#!/usr/bin/env python3
"""Header documentation check: every public header in the enforced
directories must carry a Doxygen file-level doc block.

Rule: the first line of the header is exactly ``/// \\file`` and it is
followed by at least MIN_PROSE_LINES further ``///`` lines of prose (the
paper role / contract description). This is what the ``docs`` CMake target
renders, and what keeps "where does this file live in the paper" answers
one glance away.

Enforced directories: src/nad/, src/core/ (and src/core/coded/ with it),
src/common/, and src/sim/ — everything the emulations and their
substrates are built from. Remaining src/ headers are reported as
warnings only, so the doc pass can grow without blocking CI.

Exit status: 0 = clean, 1 = violations in enforced dirs, 2 = usage error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

ENFORCED = ("src/nad/", "src/core/", "src/common/", "src/sim/")
MIN_PROSE_LINES = 2


def check_header(path: Path, rel: str) -> str | None:
    """Returns a violation message, or None if the header is documented."""
    try:
        lines = path.read_text(errors="replace").splitlines()
    except OSError as e:
        return f"unreadable: {e}"
    if not lines:
        return "empty file"
    if lines[0].strip() != "/// \\file":
        return "first line is not '/// \\file'"
    prose = 0
    for line in lines[1:]:
        if not line.startswith("///"):
            break
        if line[3:].strip():
            prose += 1
    if prose < MIN_PROSE_LINES:
        return (f"file-level doc block has {prose} prose line(s); "
                f"need >= {MIN_PROSE_LINES}")
    return None


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", type=Path,
                    default=Path(__file__).resolve().parent.parent)
    args = ap.parse_args()
    root = args.root.resolve()
    if not (root / "src").is_dir():
        print(f"check_header_docs: {root} does not look like the repo root",
              file=sys.stderr)
        return 2

    failures = 0
    warnings = 0
    nchecked = 0
    for path in sorted((root / "src").rglob("*.h")):
        rel = path.relative_to(root).as_posix()
        nchecked += 1
        msg = check_header(path, rel)
        if msg is None:
            continue
        if rel.startswith(ENFORCED):
            print(f"{rel}: {msg}")
            failures += 1
        else:
            print(f"{rel}: warning: {msg}", file=sys.stderr)
            warnings += 1
    print(f"check_header_docs: {nchecked} headers, {failures} violation(s), "
          f"{warnings} warning(s)", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
