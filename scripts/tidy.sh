#!/usr/bin/env bash
# Runs clang-tidy (profile in .clang-tidy) over the library sources using
# the compile database from build/. Skips gracefully when clang-tidy is not
# installed (e.g. the gcc-only dev container) so callers can wire this into
# scripts unconditionally; CI's clang job runs it for real.
#
#   $ scripts/tidy.sh                 # whole src/ tree
#   $ scripts/tidy.sh src/nad        # one subtree
#   $ scripts/tidy.sh --diff REF     # only sources changed vs git REF
#                                    # (what CI's clang job runs per PR)
set -euo pipefail
cd "$(dirname "$0")/.."

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "tidy.sh: clang-tidy not installed; skipping (CI runs it)" >&2
  exit 0
fi

build_dir=build
if [ ! -f "$build_dir/compile_commands.json" ]; then
  cmake -B "$build_dir" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
fi

if [ "${1:-}" = "--diff" ]; then
  base="${2:?tidy.sh: --diff needs a git ref (e.g. origin/main)}"
  mapfile -t files < <(git diff --name-only --diff-filter=d "$base" -- \
    | grep -E '\.(cc|cpp)$' | grep -v '^tests/lint_fixtures/' || true)
  if [ "${#files[@]}" -eq 0 ]; then
    echo "tidy.sh: no sources changed vs $base; nothing to do" >&2
    exit 0
  fi
else
  target="${1:-src}"
  mapfile -t files < <(git ls-files "$target" | grep -E '\.(cc|cpp)$' \
    | grep -v '^tests/lint_fixtures/')
  if [ "${#files[@]}" -eq 0 ]; then
    echo "tidy.sh: no sources under '$target'" >&2
    exit 2
  fi
fi

clang-tidy -p "$build_dir" --quiet "${files[@]}"
