// Tests for the Figure 2 wait-free sequentially consistent MWSR register:
// per-writer freshness, wait-freedom under crashes, the reader's local
// serialization order, and the scripted schedule showing the register is
// sequentially consistent but NOT atomic (which is exactly what Fig. 2
// promises — and all that Table 3 allows).
#include "core/mwsr_seqcst.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "core/config.h"
#include "sim/det_farm.h"
#include "sim/sim_farm.h"

namespace nadreg::core {
namespace {

using namespace std::chrono_literals;
using sim::DetFarm;
using sim::SimFarm;

constexpr ProcessId kReaderId = 100;

struct Rig {
  FarmConfig farm_cfg{1};
  std::vector<RegisterId> regs = farm_cfg.Spread(0);
};

TEST(MwsrSeqCst, InitialValueIsEmpty) {
  Rig rig;
  SimFarm farm;
  MwsrReader reader(farm, rig.farm_cfg, rig.regs, kReaderId);
  EXPECT_EQ(reader.Read(), "");
}

TEST(MwsrSeqCst, SingleWriterBehavesLikeRegister) {
  Rig rig;
  SimFarm farm;
  MwsrWriter writer(farm, rig.farm_cfg, rig.regs, 1);
  MwsrReader reader(farm, rig.farm_cfg, rig.regs, kReaderId);
  for (int i = 0; i < 20; ++i) {
    writer.Write("v" + std::to_string(i));
    EXPECT_EQ(reader.Read(), "v" + std::to_string(i));
  }
}

TEST(MwsrSeqCst, ReadsStabilizeAfterWritersQuiesce) {
  // Liveness shape of Section 5.1: with finitely many WRITES, eventually
  // all READS return the last *serialized* write — which under sequential
  // consistency need not be the last real-time write, but must be one of
  // the written values and must become stable.
  Rig rig;
  SimFarm farm;
  MwsrReader reader(farm, rig.farm_cfg, rig.regs, kReaderId);
  std::vector<std::string> written;
  for (ProcessId q = 1; q <= 5; ++q) {
    MwsrWriter writer(farm, rig.farm_cfg, rig.regs, q);
    written.push_back("from-" + std::to_string(q));
    writer.Write(written.back());
  }
  // Let every pending base write land, so no new triples can appear.
  while (farm.InFlight() != 0) std::this_thread::sleep_for(1ms);

  // At most 5 reads can discover new writers; afterwards the value is
  // pinned forever.
  std::string settled;
  for (int i = 0; i < 6; ++i) settled = reader.Read();
  EXPECT_NE(std::find(written.begin(), written.end(), settled),
            written.end());
  for (int i = 0; i < 10; ++i) EXPECT_EQ(reader.Read(), settled);
}

TEST(MwsrSeqCst, ToleratesOneCrashedDisk) {
  Rig rig;
  SimFarm farm;
  farm.CrashDisk(1);
  MwsrWriter writer(farm, rig.farm_cfg, rig.regs, 1);
  MwsrReader reader(farm, rig.farm_cfg, rig.regs, kReaderId);
  writer.Write("v");
  EXPECT_EQ(reader.Read(), "v");
}

TEST(MwsrSeqCst, WaitFreeEvenWhenWriterCrashesMidWrite) {
  // A writer dies after reaching a single register. Reads stay wait-free
  // and never block (unlike the Section 4.2 atomic reader) — they are
  // allowed to keep returning the old value under sequential consistency.
  Rig rig;
  DetFarm farm;
  MwsrWriter w1(farm, rig.farm_cfg, rig.regs, 1);
  MwsrWriter w2(farm, rig.farm_cfg, rig.regs, 2);
  MwsrReader reader(farm, rig.farm_cfg, rig.regs, kReaderId);

  auto f1 = std::async(std::launch::async, [&] { w1.Write("complete"); });
  while (farm.Pending().size() < 3) std::this_thread::yield();
  farm.DeliverAll();
  f1.get();

  // w2 "crashes" mid-write: its value lands on disk 0 only, w2 never
  // finishes (we simply never deliver the rest and abandon the future).
  auto f2 = std::async(std::launch::async, [&] { w2.Write("torn"); });
  while (farm.PendingWhere([](const DetFarm::PendingOp& op) {
           return op.is_write;
         }).size() < 3) {
    std::this_thread::yield();
  }
  farm.DeliverWhere([](const DetFarm::PendingOp& op) {
    return op.is_write && op.r.disk == 0;
  });

  // Reads served from disks 1, 2 return "complete" forever; wait-free.
  for (int i = 0; i < 5; ++i) {
    auto r = std::async(std::launch::async, [&] { return reader.Read(); });
    while (farm.PendingWhere([](const DetFarm::PendingOp& op) {
             return !op.is_write && op.r.disk != 0;
           }).size() < 2) {
      std::this_thread::yield();
    }
    farm.DeliverWhere([](const DetFarm::PendingOp& op) {
      return !op.is_write && op.r.disk != 0;
    });
    EXPECT_EQ(r.get(), "complete");
  }
  // Cleanup: finish w2 so its future can be joined.
  farm.DeliverWhere([](const DetFarm::PendingOp& op) { return op.is_write; });
  f2.get();
}

TEST(MwsrSeqCst, NotAtomicButSequentiallyConsistent) {
  // The paper's separation, as a concrete schedule: WRITE(va) by writer a
  // completes on disks {0,1}; then WRITE(vb) by writer b completes on
  // {1,2}. READ#1 served from {1,2} returns vb. READ#2 served from {0,2}
  // finds a's triple fresher than seqs[a]=0 on disk 0 and returns va.
  //
  //   real-time: W(va) < W(vb) < R1=vb < R2=va   → NOT atomic
  //   serialization W(vb) R(vb) W(va) R(va)      → sequentially consistent
  Rig rig;
  DetFarm farm;
  MwsrWriter wa(farm, rig.farm_cfg, rig.regs, 1);
  MwsrWriter wb(farm, rig.farm_cfg, rig.regs, 2);
  MwsrReader reader(farm, rig.farm_cfg, rig.regs, kReaderId);

  auto fa = std::async(std::launch::async, [&] { wa.Write("va"); });
  while (farm.Pending().size() < 3) std::this_thread::yield();
  farm.DeliverWhere([](const DetFarm::PendingOp& op) { return op.r.disk != 2; });
  fa.get();  // va on {0,1}; pending write to disk 2

  auto fb = std::async(std::launch::async, [&] { wb.Write("vb"); });
  while (farm.PendingWhere([](const DetFarm::PendingOp& op) {
           return op.p == 2;
         }).size() < 3) {
    std::this_thread::yield();
  }
  farm.DeliverWhere([](const DetFarm::PendingOp& op) {
    return op.p == 2 && op.r.disk != 0;
  });
  fb.get();  // vb on {1,2}; disk 0 still holds va

  // READ #1 from disks {1,2} → vb.
  auto r1 = std::async(std::launch::async, [&] { return reader.Read(); });
  while (farm.PendingWhere([](const DetFarm::PendingOp& op) {
           return !op.is_write;
         }).size() < 3) {
    std::this_thread::yield();
  }
  farm.DeliverWhere([](const DetFarm::PendingOp& op) {
    return !op.is_write && op.r.disk != 0;
  });
  EXPECT_EQ(r1.get(), "vb");

  // READ #2 from disks {0,2} → the reader discovers writer a afresh on
  // disk 0 and returns va: a new-old inversion in real time. (Keep
  // delivering non-disk-1 reads: READ#1 left a stale read outstanding on
  // disk 0, behind which READ#2's read is chained.)
  auto r2 = std::async(std::launch::async, [&] { return reader.Read(); });
  while (r2.wait_for(1ms) != std::future_status::ready) {
    farm.DeliverWhere([](const DetFarm::PendingOp& op) {
      return !op.is_write && op.r.disk != 1;
    });
  }
  EXPECT_EQ(r2.get(), "va") << "expected the documented non-atomic behaviour";
}

TEST(MwsrSeqCst, ReaderIsMonotonePerWriter) {
  // seqs[] never regresses: re-reading an old triple of a known writer
  // does not change lastv.
  Rig rig;
  SimFarm farm;
  MwsrWriter writer(farm, rig.farm_cfg, rig.regs, 1);
  MwsrReader reader(farm, rig.farm_cfg, rig.regs, kReaderId);
  writer.Write("first");
  EXPECT_EQ(reader.Read(), "first");
  writer.Write("second");
  // Eventually the reader catches "second" and never goes back.
  std::string v;
  for (int i = 0; i < 10 && v != "second"; ++i) v = reader.Read();
  EXPECT_EQ(v, "second");
  for (int i = 0; i < 10; ++i) EXPECT_EQ(reader.Read(), "second");
}

TEST(MwsrSeqCst, RandomizedManyWriters) {
  for (std::uint64_t seed : {21u, 22u}) {
    Rig rig;
    SimFarm::Options o;
    o.seed = seed;
    o.max_delay_us = 50;
    SimFarm farm(o);
    MwsrReader reader(farm, rig.farm_cfg, rig.regs, kReaderId);

    std::vector<std::jthread> writers;
    for (ProcessId q = 1; q <= 4; ++q) {
      writers.emplace_back([&, q] {
        MwsrWriter w(farm, rig.farm_cfg, rig.regs, q);
        for (int i = 1; i <= 30; ++i) {
          w.Write(std::to_string(q) + ":" + std::to_string(i));
        }
      });
    }
    // Per-writer monotonicity at the reader: once the reader returned
    // q:i, it never later returns q:j with j < i.
    std::vector<int> high(5, 0);
    for (int i = 0; i < 150; ++i) {
      std::string v = reader.Read();
      if (v.empty()) continue;
      const auto colon = v.find(':');
      ASSERT_NE(colon, std::string::npos);
      int q = std::stoi(v.substr(0, colon));
      int n = std::stoi(v.substr(colon + 1));
      EXPECT_GE(n, high[q]) << "seed " << seed;
      high[q] = std::max(high[q], n);
    }
    writers.clear();
  }
}

}  // namespace
}  // namespace nadreg::core
