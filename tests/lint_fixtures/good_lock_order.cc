// lint-path: src/nad/good_lock_order.cc
// Known-good twin of bad_lock_order.cc: every nested acquisition here
// follows the DESIGN.md §12 hierarchy (rank strictly increasing inward:
// server mu_ 2 -> stripe mu 3 -> journal_mu_ 4), or releases one guard
// before taking the next, or involves an ad-hoc lock outside the
// hierarchy which the rule deliberately ignores. Zero lint-expect
// lines: the fixture self-test fails if the linter flags anything.
#include "common/sync.h"

namespace nadreg::nad {

struct Stripe {
  Mutex mu;
};

class NadServer {
 public:
  // Legal nesting: each inner lock has a strictly later rank.
  void GoodWritePath(Stripe& s) {
    MutexLock conns(mu_);
    MutexLock stripe(s.mu);
    MutexLock journal(journal_mu_);
  }

  // Sequential, not nested: the stripe guard dies before the journal
  // guard exists, then the next stripe is taken fresh.
  void GoodSequential(Stripe& a, Stripe& b) {
    {
      MutexLock stripe(a.mu);
    }
    {
      MutexLock journal(journal_mu_);
    }
    MutexLock stripe(b.mu);
  }

  // A waiter mutex outside the §12 hierarchy has no rank; nesting it
  // under a ranked lock is not an inversion.
  void GoodAdHoc() {
    MutexLock conns(mu_);
    MutexLock waiter(waiter_mu_);
  }

 private:
  Mutex mu_;
  Mutex journal_mu_;
  Mutex waiter_mu_;
};

}  // namespace nadreg::nad
