// lint-path: src/nad/good_unguarded_field.cc
// Known-good twin of bad_unguarded_field.cc: every field of this
// mutex-owning class is either GUARDED_BY, exempt by construction
// (const / static / reference / atomic / the synchronization members
// themselves), or carries a reasoned lint-allow. Zero lint-expect
// lines: the fixture self-test fails if the linter flags anything.
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/sync.h"

namespace nadreg::nad {

class GoodConnTable {
 public:
  explicit GoodConnTable(std::string name);
  void Add(int fd);

 private:
  static constexpr std::size_t kMaxConns = 64;

  const std::string name_;
  std::atomic<std::uint64_t> adds_{0};

  mutable Mutex mu_;
  CondVar cv_;
  std::vector<int> fds_ GUARDED_BY(mu_);
  std::size_t watermark_ GUARDED_BY(mu_) = 0;
  bool draining_ GUARDED_BY(mu_) = false;
  // Set in the ctor before any thread sees the object.
  // lint-allow(tsa-coverage): set pre-publication
  std::size_t capacity_ = kMaxConns;
};

}  // namespace nadreg::nad
