// lint-path: src/nad/bad_unguarded_field.cc
// Known-bad fixture: a class that owns a nadreg::Mutex but leaves
// mutable fields without GUARDED_BY. On clang the annotation is what
// makes TSA prove the locking; on GCC the macros compile away, so an
// unannotated field is invisible to every build in the matrix — the
// tsa-coverage rule makes the gap mechanical. Never compiled; the
// linter self-test asserts every lint-expect line below is flagged.
#include <cstddef>
#include <string>
#include <vector>

#include "common/sync.h"

namespace nadreg::nad {

class BadConnTable {
 public:
  void Add(int fd);

 private:
  mutable Mutex mu_;
  std::vector<int> fds_ GUARDED_BY(mu_);
  std::size_t watermark_ = 0;  // lint-expect(tsa-coverage)
  std::string last_peer_;  // lint-expect(tsa-coverage)
  bool draining_ = false;  // lint-expect(tsa-coverage)
};

}  // namespace nadreg::nad
