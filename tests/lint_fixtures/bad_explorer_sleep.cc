// lint-path: src/sim/explorer.cc
// Known-bad fixture: wall-clock waits in the schedule explorer. The
// explorer's quiescence detection is event-driven (DetFarm scheduler
// hooks), so no-sleep is STRICT here — even an explicit
// lint-allow(no-sleep) suppression must still be flagged. Never compiled;
// the linter self-test asserts every lint-expect line below is flagged.
#include <chrono>
#include <thread>

namespace nadreg::sim {

inline void BadSettlePoll() {
  // A plain sleep is flagged as everywhere else in src/sim/:
  std::this_thread::sleep_for(std::chrono::milliseconds(1));  // lint-expect(no-sleep)

  // ...and the suppression that would silence it elsewhere is NOT
  // honoured in this file (the old settle-poll heuristic must not creep
  // back in under a lint-allow):
  // lint-allow(no-sleep): settle heuristic
  std::this_thread::sleep_for(std::chrono::milliseconds(2));  // lint-expect(no-sleep)
}

}  // namespace nadreg::sim
