// lint-path: src/nad/bad_hotpath_alloc.cc
// Known-bad fixture: heap-allocating constructions and materializing
// codec calls inside a marked hot-path section. The zero-copy pipeline
// (arena-backed FrameWriter/MessageView, DESIGN.md §14) exists so the
// steady state allocates nothing; each line below is the regression the
// hot-alloc rule must catch. Never compiled; the linter self-test
// asserts every lint-expect line is flagged and nothing else is.
#include <string>
#include <vector>

#include "nad/protocol.h"

namespace nadreg::nad {

inline void BadHotLoop(const Message& msg, std::string_view payload) {
  // hot-path-begin(fixture-hot)
  std::string copy(payload);                   // lint-expect(hot-alloc)
  std::vector<char> staging(payload.size());   // lint-expect(hot-alloc)
  auto id_text = std::to_string(msg.request_id);  // lint-expect(hot-alloc)
  char* scratch = new char[16];                // lint-expect(hot-alloc)
  auto frame = EncodeMessage(msg);             // lint-expect(hot-alloc)
  auto parsed = DecodeMessage(payload);        // lint-expect(hot-alloc)
  auto tmp = Value(payload);                   // lint-expect(hot-alloc)

  // The one deliberate, documented copy is escapable:
  auto owned = Value(payload);  // lint-allow(hot-alloc): handler owns it

  // Views and the zero-copy decode are fine — std::string_view is not
  // std::string, and DecodeMessageView does not materialize:
  std::string_view view = payload;
  (void)view;
  (void)copy;
  (void)staging;
  (void)id_text;
  (void)scratch;
  (void)frame;
  (void)parsed;
  (void)tmp;
  (void)owned;
  // hot-path-end

  // Outside any section the rule does not apply:
  std::string cold(payload);
  (void)cold;
}

// A section left open is itself a finding (reported at the begin line):
inline void BadUnclosed() {
  // hot-path-begin(fixture-unclosed)  lint-expect(hot-alloc)
}

}  // namespace nadreg::nad
