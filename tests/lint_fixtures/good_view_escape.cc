// lint-path: src/nad/good_view_escape.cc
// Known-good twin of bad_view_escape.cc: every shape here handles an
// epoch-tied view correctly — deep-copying at the ownership edge,
// storing into frame-local or caller-owned sinks, or consuming the view
// inside the statement that made it. Zero lint-expect lines: the
// fixture self-test fails if the linter flags anything in this file.
#include <cstddef>
#include <string>
#include <vector>

#include "nad/protocol.h"

namespace nadreg::nad {

class GoodViewCache {
 public:
  // Deep copy at the ownership edge: the member owns its bytes.
  void OnFrame(const MessageView& msg) {
    last_value_ = std::string(msg.value);
  }

  // Frame-local sink: the vector dies with the frame, before Reset.
  void Gather(const MessageView& msg) {
    std::vector<WireChunk> iov;
    iov.push_back(WireChunk{msg.value.data(), msg.value.size()});
    Flush(iov);
  }

  // Caller-owned sink: the out-vector's lifetime is the caller's
  // contract (the CompactWire / FrameWriter channel shape).
  static void Emit(const MessageView& msg, std::vector<WireChunk>& out) {
    out.push_back(WireChunk{msg.value.data(), msg.value.size()});
  }

  // Immediately-invoked lambda: the capture dies in this statement.
  std::size_t Measure(const MessageView& msg) {
    return [&] { return msg.value.size(); }();
  }

 private:
  static void Flush(const std::vector<WireChunk>& iov);

  std::string last_value_;
};

}  // namespace nadreg::nad
