// lint-path: src/nad/bad_raw_mutex.cc
// Known-bad fixture for scripts/lint_invariants.py: raw std:: sync
// primitives outside src/common/. Never compiled; the linter self-test
// asserts every lint-expect line below is flagged.
#include <mutex>
#include <condition_variable>

namespace nadreg::nad {

struct BadConnState {
  std::mutex mu;               // lint-expect(raw-mutex)
  std::condition_variable cv;  // lint-expect(raw-mutex)
  int pending = 0;
};

inline void BadBump(BadConnState& s) {
  std::lock_guard lock(s.mu);  // lint-expect(raw-mutex)
  ++s.pending;
  s.cv.notify_all();
}

inline void BadWait(BadConnState& s) {
  std::unique_lock lock(s.mu);  // lint-expect(raw-mutex)
  s.cv.wait(lock, [&] { return s.pending > 0; });
}

}  // namespace nadreg::nad
