// lint-path: src/nad/bad_lock_order.cc
// Known-bad fixture: nested scoped MutexLock acquisitions that invert
// the DESIGN.md §12 hierarchy (machine-readable form:
// scripts/nadlint/lock_order.json). The hierarchy orders NadServer's
// mu_ (rank 2) before a store Stripe's mu (rank 3) before journal_mu_
// (rank 4); acquiring a lock of equal or earlier rank while holding a
// later one is the deadlock shape TSA cannot see (and GCC builds
// compile the annotations away entirely). Never compiled; the linter
// self-test asserts every lint-expect line below is flagged.
#include "common/sync.h"

namespace nadreg::nad {

struct Stripe {
  Mutex mu;
};

class NadServer {
 public:
  // Inversion: journal (rank 4) held while taking connection state
  // (rank 2).
  void BadCheckpoint() {
    MutexLock journal(journal_mu_);
    MutexLock conns(mu_);  // lint-expect(lock-order)
  }

  // Inversion: journal (rank 4) held while locking a stripe (rank 3);
  // the write path takes them in the opposite (legal) order.
  void BadJournalFirst(Stripe& s) {
    MutexLock journal(journal_mu_);
    MutexLock stripe(s.mu);  // lint-expect(lock-order)
  }

  // Same-rank nesting: two stripes under scoped guards. Only
  // QuiesceGuard may hold multiple stripes (explicit Lock() in
  // ascending index order, runtime-asserted).
  void BadTwoStripes(Stripe& a, Stripe& b) {
    MutexLock first(a.mu);
    MutexLock second(b.mu);  // lint-expect(lock-order)
  }

 private:
  Mutex mu_;
  Mutex journal_mu_;
};

}  // namespace nadreg::nad
