// lint-path: src/nad/bad_opcode_switch.cc
// Known-bad fixture: a switch over MsgType that names only some opcodes.
// A default: clause would hide new opcodes from -Wswitch, so the linter
// demands every enumerator be spelled out in src/nad/ switches.
#include "nad/protocol.h"

namespace nadreg::nad {

inline bool BadIsRequest(MsgType t) {
  switch (t) {  // lint-expect(opcode-switch)
    case MsgType::kReadReq:
    case MsgType::kWriteReq:
    case MsgType::kBatchReq:
      return true;
    default:
      return false;
  }
}

}  // namespace nadreg::nad
