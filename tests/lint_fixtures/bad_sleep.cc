// lint-path: src/sim/bad_sleep.cc
// Known-bad fixture: wall-clock time inside the simulation layer. The
// farms schedule by logical delivery order; real sleeps make schedules
// irreproducible, and system_clock makes timeouts jump with NTP.
#include <chrono>
#include <thread>

namespace nadreg::sim {

inline void BadSettle() {
  std::this_thread::sleep_for(std::chrono::milliseconds(1));  // lint-expect(no-sleep)
  auto now = std::chrono::system_clock::now();  // lint-expect(no-sleep)
  (void)now;
}

}  // namespace nadreg::sim
