// lint-path: src/nad/bad_sso_alias.cc
// Known-bad fixture: the PR 8 SSO-aliasing bug shape. A wire chunk (or
// a string_view feeding one) references a local std::string's bytes,
// and the string object is later std::move'd. A value at or below
// kSmallValueCopyBytes lives *inline* in the string object (SSO), so
// the move relocates the referenced bytes and the queued chunk
// transmits garbage — silently. This survived the compiler, ASan, TSan
// and the regex linter; the arena-escape rule's alias+move pass is the
// regression net. Never compiled; the linter self-test asserts every
// lint-expect line below is flagged and nothing else is.
#include <string>
#include <utility>
#include <vector>

#include "nad/protocol.h"

namespace nadreg::nad {

struct ParkedWrite {
  std::string payload;
};

void Park(ParkedWrite* park);

// PutBytesRef keeps a pointer into `value`; the move afterwards
// relocates SSO bytes out from under the queued chunk.
inline void BadParkAfterRef(FrameWriter& w, ParkedWrite* park) {
  std::string value = "ack";  // 3 bytes: always SSO
  w.PutBytesRef(value);
  park->payload = std::move(value);  // lint-expect(arena-escape)
  Park(park);
}

// Same bug through an explicit chunk: .data() is captured while the
// string still owns the bytes, then the object is moved away.
inline void BadChunkThenMove(std::vector<WireChunk>& iov,
                             ParkedWrite* park) {
  std::string tag = "v1";
  WireChunk c{tag.data(), tag.size()};
  iov.push_back(c);
  park->payload = std::move(tag);  // lint-expect(arena-escape)
  Park(park);
}

// The fix (DESIGN.md §14 rule 3): copy small values into the arena via
// PutBytesCopy, then moving the string is harmless. Not flagged.
inline void GoodCopyThenMove(FrameWriter& w, ParkedWrite* park) {
  std::string value = "ack";
  w.PutBytesCopy(value);
  park->payload = std::move(value);
  Park(park);
}

}  // namespace nadreg::nad
