// lint-path: src/nad/retry.cc
// Known-bad fixture: raw sleeps in the client retry/backoff path. A
// sleeping thread cannot be interrupted by shutdown — backoff must wait
// on a CondVar with a steady_clock deadline so the client destructor
// never blocks behind a full backoff interval.
#include <chrono>
#include <thread>

namespace nadreg::nad {

inline void BadBackoff(std::chrono::microseconds d) {
  std::this_thread::sleep_for(d);  // lint-expect(no-sleep)
}

inline void BadDeadline() {
  const auto t = std::chrono::system_clock::now();  // lint-expect(no-sleep)
  (void)t;
}

}  // namespace nadreg::nad
