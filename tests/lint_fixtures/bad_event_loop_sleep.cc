// lint-path: src/nad/event_loop.cc
// Known-bad fixture: a wall-clock sleep on an event-loop thread. The loop
// must block only inside epoll_wait (timed by its timer wheel); a raw
// sleep stalls every connection the loop owns and cannot be interrupted
// by Stop(), so shutdown would hang for the sleep's duration.
#include <chrono>
#include <thread>

namespace nadreg::nad {

inline void BadLoopPause() {
  std::this_thread::sleep_for(std::chrono::milliseconds(5));  // lint-expect(no-sleep)
  auto wall = std::chrono::system_clock::now();  // lint-expect(no-sleep)
  (void)wall;
}

}  // namespace nadreg::nad
