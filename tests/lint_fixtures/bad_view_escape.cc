// lint-path: src/nad/bad_view_escape.cc
// Known-bad fixture: epoch-tied views (MessageView / WireChunk /
// arena-derived string_view, DESIGN.md §14) escaping into storage that
// outlives their frame's Reset point — a member, a member container, a
// deferred lambda. Every escape reads recycled arena bytes on the next
// frame; none of them crashes. Never compiled; the linter self-test
// asserts every lint-expect line below is flagged and nothing else is.
#include <functional>
#include <string_view>
#include <vector>

#include "nad/protocol.h"

namespace nadreg::nad {

class BadViewCache {
 public:
  // E1: plain member store of a view parameter.
  void OnFrame(const MessageView& msg) {
    last_ = msg;  // lint-expect(arena-escape)
  }

  // E2: member container keeps a chunk aliasing this frame's arena.
  void OnChunk(WireChunk c) {
    queued_.push_back(c);  // lint-expect(arena-escape)
  }

  // E2 again, via a string_view derived from the view's payload.
  void OnPayload(const MessageView& msg) {
    std::string_view value = msg.value;
    index_.emplace_back(value);  // lint-expect(arena-escape)
  }

  // E3: the lambda owns the view past the dispatch that created it.
  void Defer(const MessageView& msg) {
    deferred_ = [msg] { Consume(msg); };  // lint-expect(arena-escape)
  }

 private:
  static void Consume(const MessageView& msg);

  MessageView last_;
  std::vector<WireChunk> queued_;
  std::vector<std::string_view> index_;
  std::function<void()> deferred_;
};

}  // namespace nadreg::nad
