// lint-path: src/harness/bad_ignored_status.cc
// Known-bad fixture: must-check results dropped on the floor. The linter
// flags bare-statement calls to Decode* / Encode*Checked / ParseEndpoint;
// assigning the result or casting to (void) with a reason is clean.
#include "nad/protocol.h"

namespace nadreg::nad {

inline void BadCaller(const Message& m, std::string_view wire) {
  DecodeMessage(wire);          // lint-expect(ignored-status)
  EncodeMessageChecked(m);      // lint-expect(ignored-status)
  ParseEndpoint("host:1234");   // lint-expect(ignored-status)

  // Consumed results are fine:
  auto decoded = DecodeMessage(wire);
  if (!decoded.ok()) return;
  // Explicit discard with a reason is fine:
  (void)EncodeMessageChecked(m);  // size probed elsewhere
}

}  // namespace nadreg::nad
