// Tests for the Section 4.2 atomic SWMR register (reliable processes):
// two-phase read semantics, multi-reader atomicity (no new-old inversion),
// the wait phase actually blocking on half-written values, and randomized
// concurrent runs.
#include "core/swmr_atomic.h"

#include <gtest/gtest.h>

#include <future>
#include <string>
#include <thread>
#include <vector>

#include "core/config.h"
#include "sim/det_farm.h"
#include "sim/sim_farm.h"

namespace nadreg::core {
namespace {

using namespace std::chrono_literals;
using sim::DetFarm;
using sim::SimFarm;

constexpr ProcessId kWriter = 1;

struct Rig {
  FarmConfig farm_cfg{1};
  std::vector<RegisterId> regs = farm_cfg.Spread(0);
};

TEST(SwmrAtomic, InitialValueReadsEmpty) {
  Rig rig;
  SimFarm farm;
  SwmrAtomicReader reader(farm, rig.farm_cfg, rig.regs, 2);
  EXPECT_EQ(reader.Read(), "");
}

TEST(SwmrAtomic, ManyReadersSeeCompletedWrite) {
  Rig rig;
  SimFarm farm;
  SwmrAtomicWriter writer(farm, rig.farm_cfg, rig.regs, kWriter);
  writer.Write("shared");
  for (ProcessId p = 2; p < 12; ++p) {
    SwmrAtomicReader reader(farm, rig.farm_cfg, rig.regs, p);
    EXPECT_EQ(reader.Read(), "shared");
  }
}

TEST(SwmrAtomic, ToleratesOneCrashedDisk) {
  Rig rig;
  SimFarm farm;
  farm.CrashDisk(2);
  SwmrAtomicWriter writer(farm, rig.farm_cfg, rig.regs, kWriter);
  SwmrAtomicReader reader(farm, rig.farm_cfg, rig.regs, 2);
  writer.Write("v");
  EXPECT_EQ(reader.Read(), "v");
}

TEST(SwmrAtomic, WaitPhaseBlocksOnHalfWrittenValue) {
  // The writer's value reached only ONE register (a minority) — the write
  // is still in progress. A wait-free reader would have to choose between
  // returning the new value (risking new-old inversion at another reader)
  // or the old one (risking staleness). The Section 4.2 reader WAITS —
  // this is exactly why Table 2's SWMR entry is "Yes" only without
  // wait-freedom.
  Rig rig;
  DetFarm farm;
  SwmrAtomicWriter writer(farm, rig.farm_cfg, rig.regs, kWriter);
  SwmrAtomicReader reader(farm, rig.farm_cfg, rig.regs, 2);

  auto w = std::async(std::launch::async, [&] { writer.Write("v1"); });
  while (farm.Pending().size() < 3) std::this_thread::yield();
  // v1 lands on disk 0 only.
  farm.DeliverWhere([](const DetFarm::PendingOp& op) { return op.r.disk == 0; });

  // Reader: phase 1 must see v1 (quorum {0,1}), then phase 2 cannot find
  // a majority with seq >= 1 while disks 1 and 2 are stale.
  std::atomic<bool> read_returned{false};
  auto r = std::async(std::launch::async, [&] {
    auto v = reader.ReadWithDeadline(300ms);
    read_returned = true;
    return v;
  });
  // Drive the reader's read rounds on disks 0 and 1 only; disk 2 unserved.
  auto driver = std::async(std::launch::async, [&] {
    while (!read_returned.load()) {
      farm.DeliverWhere([](const DetFarm::PendingOp& op) {
        return !op.is_write && op.r.disk != 2;
      });
      std::this_thread::sleep_for(1ms);
    }
  });
  auto v = r.get();
  driver.get();
  EXPECT_FALSE(v.has_value()) << "read should have blocked, got " << *v;

  // Now let the write finish: the next READ terminates and returns v1.
  farm.DeliverWhere([](const DetFarm::PendingOp& op) { return op.is_write; });
  w.get();
  auto r2 = std::async(std::launch::async, [&] {
    return reader.ReadWithDeadline(2000ms);
  });
  std::atomic<bool> done2{false};
  auto driver2 = std::async(std::launch::async, [&] {
    while (!done2.load()) {
      farm.DeliverAll();
      std::this_thread::sleep_for(1ms);
    }
  });
  auto v2 = r2.get();
  done2 = true;
  driver2.get();
  ASSERT_TRUE(v2.has_value());
  EXPECT_EQ(*v2, "v1");
}

TEST(SwmrAtomic, NoNewOldInversionAcrossReaders) {
  // The Theorem 1 scenario that kills wait-free candidates: v1 sits on a
  // minority; reader A sees it, reader B is steered to stale disks. With
  // the two-phase reader, A's read does not RETURN until v1 is on a
  // majority — so once A returned v1, B must also return v1.
  Rig rig;
  DetFarm farm;
  SwmrAtomicWriter writer(farm, rig.farm_cfg, rig.regs, kWriter);
  SwmrAtomicReader reader_a(farm, rig.farm_cfg, rig.regs, 2);
  SwmrAtomicReader reader_b(farm, rig.farm_cfg, rig.regs, 3);

  auto w = std::async(std::launch::async, [&] { writer.Write("v1"); });
  while (farm.Pending().size() < 3) std::this_thread::yield();
  farm.DeliverWhere([](const DetFarm::PendingOp& op) { return op.r.disk == 0; });

  // Reader A starts; steer its phase 1 to quorum {0,1} so it sees v1.
  auto ra = std::async(std::launch::async, [&] { return reader_a.Read(); });
  while (farm.PendingWhere([](const DetFarm::PendingOp& op) {
           return !op.is_write;
         }).size() < 3) {
    std::this_thread::yield();
  }
  farm.DeliverWhere([](const DetFarm::PendingOp& op) {
    return !op.is_write && op.r.disk != 2;
  });

  // A is now in its wait phase with s0 = 1. Serve it only stale disks for
  // a while: it must not return (v1 is still on a minority).
  for (int i = 0; i < 20; ++i) {
    farm.DeliverWhere([](const DetFarm::PendingOp& op) {
      return !op.is_write && op.r.disk != 0;
    });
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_EQ(ra.wait_for(0ms), std::future_status::timeout)
      << "reader A returned while v1 was on a minority";

  // Let the write finish everywhere; A's wait phase can now terminate.
  farm.DeliverWhere([](const DetFarm::PendingOp& op) { return op.is_write; });
  w.get();
  std::atomic<bool> a_done{false};
  auto driver = std::async(std::launch::async, [&] {
    while (!a_done.load()) {
      farm.DeliverAll();
      std::this_thread::sleep_for(1ms);
    }
  });
  EXPECT_EQ(ra.get(), "v1");
  a_done = true;
  driver.get();

  // B reads after A returned: must see v1 (no inversion).
  auto rb = std::async(std::launch::async, [&] { return reader_b.Read(); });
  std::atomic<bool> b_done{false};
  auto driver_b = std::async(std::launch::async, [&] {
    while (!b_done.load()) {
      farm.DeliverAll();
      std::this_thread::sleep_for(1ms);
    }
  });
  EXPECT_EQ(rb.get(), "v1");
  b_done = true;
  driver_b.get();
}

TEST(SwmrAtomic, RandomizedMultiReaderMonotonicity) {
  for (std::uint64_t seed : {5u, 6u}) {
    Rig rig;
    SimFarm::Options o;
    o.seed = seed;
    o.max_delay_us = 50;
    SimFarm farm(o);
    SwmrAtomicWriter writer(farm, rig.farm_cfg, rig.regs, kWriter);

    std::jthread wt([&] {
      for (int i = 1; i <= 60; ++i) writer.Write(std::to_string(i));
    });
    std::vector<std::jthread> readers;
    for (ProcessId p = 2; p <= 5; ++p) {
      readers.emplace_back([&, p] {
        SwmrAtomicReader reader(farm, rig.farm_cfg, rig.regs, p);
        int last = 0;
        for (int i = 0; i < 60; ++i) {
          std::string v = reader.Read();
          int cur = v.empty() ? 0 : std::stoi(v);
          EXPECT_GE(cur, last) << "seed " << seed << " reader " << p;
          last = cur;
        }
      });
    }
    readers.clear();
    wt.join();
    SwmrAtomicReader reader(farm, rig.farm_cfg, rig.regs, 99);
    EXPECT_EQ(reader.Read(), "60");
  }
}

}  // namespace
}  // namespace nadreg::core
