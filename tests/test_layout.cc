// Tests for the static layout facade: deterministic name->id mapping,
// independence of named objects, cross-process agreement, and that every
// endpoint factory produces a working emulation.
#include "core/layout.h"

#include <gtest/gtest.h>

#include "sim/sim_farm.h"

namespace nadreg::core {
namespace {

using sim::SimFarm;

TEST(StaticLayout, SameConfigSameIdsEverywhere) {
  FarmConfig cfg{1};
  StaticLayout a(cfg, {"alpha", "beta", "gamma"});
  StaticLayout b(cfg, {"alpha", "beta", "gamma"});
  EXPECT_EQ(a.ObjectId("alpha"), b.ObjectId("alpha"));
  EXPECT_EQ(a.ObjectId("gamma"), b.ObjectId("gamma"));
  EXPECT_EQ(a.Registers("beta"), b.Registers("beta"));
}

TEST(StaticLayout, DistinctNamesDistinctIds) {
  FarmConfig cfg{1};
  StaticLayout layout(cfg, {"x", "y", "z"});
  EXPECT_NE(layout.ObjectId("x"), layout.ObjectId("y"));
  EXPECT_NE(layout.ObjectId("y"), layout.ObjectId("z"));
  EXPECT_TRUE(layout.Has("x"));
  EXPECT_FALSE(layout.Has("unknown"));
}

TEST(StaticLayout, LayoutIdsAvoidAdHocIdSpace) {
  FarmConfig cfg{1};
  StaticLayout layout(cfg, {"a"});
  EXPECT_GE(layout.ObjectId("a"), 512u);  // small manual ids are safe
}

TEST(StaticLayout, RegistersSpanAllDisks) {
  FarmConfig cfg{2};
  StaticLayout layout(cfg, {"wide"});
  auto regs = layout.Registers("wide");
  ASSERT_EQ(regs.size(), 5u);
  for (DiskId d = 0; d < 5; ++d) EXPECT_EQ(regs[d].disk, d);
}

TEST(StaticLayout, SwsrEndpointsWork) {
  FarmConfig cfg{1};
  SimFarm farm;
  StaticLayout layout(cfg, {"counter"});
  auto writer = layout.SwsrWriter(farm, "counter", 1);
  auto reader = layout.SwsrReader(farm, "counter", 2);
  writer->Write("42");
  EXPECT_EQ(reader->Read(), "42");
}

TEST(StaticLayout, MwmrEndpointsShareStateByName) {
  FarmConfig cfg{1};
  SimFarm farm;
  StaticLayout layout(cfg, {"shared", "other"});
  auto a = layout.MwmrRegister(farm, "shared", 1);
  auto b = layout.MwmrRegister(farm, "shared", 2);
  auto c = layout.MwmrRegister(farm, "other", 3);
  a->Write("from-a");
  auto v = b->Read();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, "from-a");
  EXPECT_FALSE(c->Read().has_value());  // different name: different object
}

TEST(StaticLayout, MixedTypesOnDistinctNamesCoexist) {
  FarmConfig cfg{1};
  SimFarm farm;
  StaticLayout layout(cfg, {"flag", "once", "reg"});
  auto sticky = layout.Sticky(farm, "flag", 1);
  auto oneshot = layout.OneShot(farm, "once", 1);
  auto mwsr_w = layout.MwsrRegisterWriter(farm, "reg", 1);
  auto mwsr_r = layout.MwsrRegisterReader(farm, "reg", 2);

  sticky->Set();
  EXPECT_TRUE(oneshot->Write("one").ok());
  mwsr_w->Write("value");

  EXPECT_TRUE(layout.Sticky(farm, "flag", 9)->IsSet());
  EXPECT_EQ(*layout.OneShot(farm, "once", 9)->Read(), "one");
  EXPECT_EQ(mwsr_r->Read(), "value");
}

TEST(StaticLayout, SwmrReaderWorksThroughFacade) {
  FarmConfig cfg{1};
  SimFarm farm;
  StaticLayout layout(cfg, {"doc"});
  auto writer = layout.SwsrWriter(farm, "doc", 1);  // same writer algorithm
  auto reader1 = layout.SwmrReader(farm, "doc", 2);
  auto reader2 = layout.SwmrReader(farm, "doc", 3);
  writer->Write("multi-reader");
  EXPECT_EQ(reader1->Read(), "multi-reader");
  EXPECT_EQ(reader2->Read(), "multi-reader");
}

}  // namespace
}  // namespace nadreg::core
