// Tests for the fault-injection subsystem (src/faults): plan parsing,
// round-tripping, error reporting, crash-plan generation, deterministic
// injector replay with metrics, and the SimFarm transport-fault sinks
// (delay override, probabilistic drop, heal).
#include "common/sync.h"
#include "faults/fault_plan.h"
#include "faults/injector.h"

#include <gtest/gtest.h>

#include <chrono>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "obs/metrics.h"
#include "sim/sim_farm.h"

namespace nadreg::faults {
namespace {

using namespace std::chrono_literals;

TEST(FaultPlan, ParsesEveryEventKind) {
  const char* kText =
      "# adversary for run 7\n"
      "at 0us crash-register 2:9\n"
      "at 10us crash-disk 1\n"
      "at 250ms delay 0 50us 200us\n"
      "at 1s drop 2 300\n"
      "at 2s disconnect 0\n"
      "at 3s stall 1 5ms\n"
      "at 4s partition 0 2\n"
      "at 5s heal 0 2\n";
  auto plan = FaultPlan::Parse(kText);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ(plan->events().size(), 8u);
  const auto& ev = plan->events();
  EXPECT_EQ(ev[0].kind, FaultKind::kCrashRegister);
  EXPECT_EQ(ev[0].disks, std::vector<DiskId>{2});
  EXPECT_EQ(ev[0].block, 9u);
  EXPECT_EQ(ev[1].kind, FaultKind::kCrashDisk);
  EXPECT_EQ(ev[2].kind, FaultKind::kDelay);
  EXPECT_EQ(ev[2].at, std::chrono::microseconds(250ms));
  EXPECT_EQ(ev[2].min_delay_us, 50u);
  EXPECT_EQ(ev[2].max_delay_us, 200u);
  EXPECT_EQ(ev[3].kind, FaultKind::kDrop);
  EXPECT_EQ(ev[3].permille, 300u);
  EXPECT_EQ(ev[4].kind, FaultKind::kDisconnect);
  EXPECT_EQ(ev[5].kind, FaultKind::kStall);
  EXPECT_EQ(ev[5].stall, std::chrono::microseconds(5ms));
  EXPECT_EQ(ev[6].kind, FaultKind::kPartition);
  EXPECT_EQ(ev[6].disks, (std::vector<DiskId>{0, 2}));
  EXPECT_EQ(ev[7].kind, FaultKind::kHeal);
}

TEST(FaultPlan, RoundTripsThroughToString) {
  const char* kText =
      "at 5us crash-disk 0\n"
      "at 100us delay 1 10us 90us\n"
      "at 2ms partition 1 2\n"
      "at 1s heal 1 2\n";
  auto plan = FaultPlan::Parse(kText);
  ASSERT_TRUE(plan.ok());
  auto again = FaultPlan::Parse(plan->ToString());
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(again->ToString(), plan->ToString());
  ASSERT_EQ(again->events().size(), plan->events().size());
  for (std::size_t i = 0; i < plan->events().size(); ++i) {
    EXPECT_EQ(again->events()[i].ToLine(), plan->events()[i].ToLine());
  }
}

TEST(FaultPlan, SortsEventsByTimeKeepingTextualOrderForTies) {
  auto plan = FaultPlan::Parse(
      "at 3ms crash-disk 2\n"
      "at 1ms crash-disk 0\n"
      "at 1ms crash-disk 1\n");
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->events().size(), 3u);
  EXPECT_EQ(plan->events()[0].disks, std::vector<DiskId>{0});
  EXPECT_EQ(plan->events()[1].disks, std::vector<DiskId>{1});
  EXPECT_EQ(plan->events()[2].disks, std::vector<DiskId>{2});
}

TEST(FaultPlan, RejectsMalformedLinesWithLineNumbers) {
  struct Case {
    const char* text;
    const char* why;
  };
  const Case cases[] = {
      {"crash-disk 0\n", "missing 'at <time>'"},
      {"at 5 crash-disk 0\n", "time without a unit"},
      {"at 5us explode 0\n", "unknown keyword"},
      {"at 5us crash-register 3\n", "crash-register wants disk:block"},
      {"at 5us delay 0 200us 100us\n", "max below min"},
      {"at 5us drop 0 1001\n", "permille above 1000"},
      {"at 5us stall 0\n", "stall without a duration"},
      {"at 5us partition\n", "partition without disks"},
  };
  for (const Case& c : cases) {
    auto plan = FaultPlan::Parse(c.text);
    EXPECT_FALSE(plan.ok()) << c.why;
    if (!plan.ok()) {
      EXPECT_EQ(plan.status().code(), StatusCode::kInvalid) << c.why;
      EXPECT_NE(plan.status().ToString().find("line 1"), std::string::npos)
          << "diagnostic should carry the line number: "
          << plan.status().ToString();
    }
  }
  // The line number tracks the offending line, not just "1".
  auto plan = FaultPlan::Parse("at 1us crash-disk 0\nat bogus crash-disk 1\n");
  ASSERT_FALSE(plan.ok());
  EXPECT_NE(plan.status().ToString().find("line 2"), std::string::npos);
}

TEST(FaultPlan, GeneratedCrashPlanRespectsTheBudget) {
  Rng rng(1234);
  for (int trial = 0; trial < 20; ++trial) {
    auto plan = FaultPlan::GenerateCrashPlan(rng, /*n_disks=*/5,
                                             /*crashes=*/2, 1000us);
    EXPECT_EQ(plan.events().size(), 2u);
    EXPECT_EQ(plan.CrashedDisks().size(), 2u);  // distinct victims
    for (const FaultEvent& ev : plan.events()) {
      EXPECT_EQ(ev.kind, FaultKind::kCrashDisk);
      ASSERT_EQ(ev.disks.size(), 1u);
      EXPECT_LT(ev.disks[0], 5u);
      EXPECT_LE(ev.at, std::chrono::microseconds(1000us));
    }
    // Generated plans are valid spec text.
    EXPECT_TRUE(FaultPlan::Parse(plan.ToString()).ok());
  }
}

TEST(FaultPlan, CrashedDisksCountsOnlyWholeDiskCrashes) {
  auto plan = FaultPlan::Parse(
      "at 0us crash-register 0:1\n"
      "at 1us crash-disk 1\n"
      "at 2us crash-disk 1\n"  // duplicate: one distinct victim
      "at 3us drop 2 500\n");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->CrashedDisks(), std::set<DiskId>{1});
}

/// Records every sink call, for deterministic replay assertions.
struct RecordingSink : FaultSink {
  std::vector<std::string> calls;
  void CrashRegister(const RegisterId& r) override {
    calls.push_back("crash-register " + std::to_string(r.disk) + ":" +
                    std::to_string(r.block));
  }
  void CrashDisk(DiskId d) override {
    calls.push_back("crash-disk " + std::to_string(d));
  }
  void DelayDisk(DiskId d, std::uint64_t mn, std::uint64_t mx) override {
    calls.push_back("delay " + std::to_string(d) + " " + std::to_string(mn) +
                    " " + std::to_string(mx));
  }
  void DropRequests(DiskId d, std::uint32_t pm) override {
    calls.push_back("drop " + std::to_string(d) + " " + std::to_string(pm));
  }
  void DisconnectDisk(DiskId d) override {
    calls.push_back("disconnect " + std::to_string(d));
  }
  void StallDisk(DiskId d, std::chrono::milliseconds dur) override {
    calls.push_back("stall " + std::to_string(d) + " " +
                    std::to_string(dur.count()) + "ms");
  }
  void Heal(DiskId d) override { calls.push_back("heal " + std::to_string(d)); }
};

TEST(FaultInjector, DeterministicReplayFiresInScheduleOrder) {
  auto plan = FaultPlan::Parse(
      "at 10us crash-register 0:7\n"
      "at 20us delay 1 5us 9us\n"
      "at 30us crash-disk 2\n"
      "at 40us heal 1\n");
  ASSERT_TRUE(plan.ok());
  RecordingSink sink;
  obs::Registry reg;
  FaultInjector inj(std::move(*plan), sink, &reg);
  EXPECT_FALSE(inj.done());

  inj.ApplyThrough(9us);
  EXPECT_TRUE(sink.calls.empty());
  inj.ApplyThrough(25us);
  EXPECT_EQ(sink.calls,
            (std::vector<std::string>{"crash-register 0:7", "delay 1 5 9"}));
  inj.ApplyThrough(25us);  // monotonic re-poll: nothing re-fires
  EXPECT_EQ(sink.calls.size(), 2u);
  inj.ApplyThrough(1000us);
  EXPECT_EQ(sink.calls,
            (std::vector<std::string>{"crash-register 0:7", "delay 1 5 9",
                                      "crash-disk 2", "heal 1"}));
  EXPECT_TRUE(inj.done());
  EXPECT_EQ(inj.injected_count(), 4u);
  EXPECT_EQ(reg.GetCounter("faults.injected").Get(), 4u);
  EXPECT_EQ(reg.GetCounter("faults.injected.crash-disk").Get(), 1u);
  EXPECT_EQ(reg.GetCounter("faults.injected.delay").Get(), 1u);
}

TEST(FaultInjector, PartitionExpandsToDropAndDisconnectPerDisk) {
  auto plan = FaultPlan::Parse("at 0us partition 0 2\n");
  ASSERT_TRUE(plan.ok());
  RecordingSink sink;
  obs::Registry reg;
  FaultInjector inj(std::move(*plan), sink, &reg);
  inj.ApplyThrough(0us);
  EXPECT_EQ(sink.calls,
            (std::vector<std::string>{"drop 0 1000", "disconnect 0",
                                      "drop 2 1000", "disconnect 2"}));
  EXPECT_EQ(reg.GetCounter("faults.injected.partition").Get(), 1u);
}

TEST(FaultInjector, RealTimeReplayFiresEverythingAndStops) {
  auto plan = FaultPlan::Parse(
      "at 0us crash-disk 0\n"
      "at 1ms crash-disk 1\n");
  ASSERT_TRUE(plan.ok());
  RecordingSink sink;
  obs::Registry reg;
  FaultInjector inj(std::move(*plan), sink, &reg);
  inj.Start();
  // Bounded wait for completion (the schedule spans 1ms of real time).
  for (int i = 0; i < 500 && !inj.done(); ++i) {
    std::this_thread::sleep_for(1ms);
  }
  inj.Stop();
  EXPECT_TRUE(inj.done());
  EXPECT_EQ(sink.calls,
            (std::vector<std::string>{"crash-disk 0", "crash-disk 1"}));
}

TEST(FaultInjector, StopInterruptsPendingEventsImmediately) {
  auto plan = FaultPlan::Parse("at 3600s crash-disk 0\n");  // far future
  ASSERT_TRUE(plan.ok());
  RecordingSink sink;
  obs::Registry reg;
  FaultInjector inj(std::move(*plan), sink, &reg);
  const auto start = std::chrono::steady_clock::now();
  inj.Start();
  inj.Stop();  // must not wait out the hour
  const auto took = std::chrono::steady_clock::now() - start;
  EXPECT_LT(took, 5s);
  EXPECT_TRUE(sink.calls.empty());
  EXPECT_FALSE(inj.done());
}

// --- SimFarm as a FaultSink -----------------------------------------------

class Latch {
 public:
  void Bump() {
    MutexLock lock(mu_);
    ++n_;
    cv_.NotifyAll();
  }
  bool WaitFor(int target, std::chrono::milliseconds d = 2000ms) {
    MutexLock lock(mu_);
    return cv_.WaitFor(mu_, d, [&] { return n_ >= target; });
  }

 private:
  Mutex mu_;
  CondVar cv_;
  int n_ = 0;
};

TEST(SimFarmFaults, FullDropSwallowsRequestsAndHealRestoresService) {
  sim::SimFarm::Options o;
  o.seed = 9;
  o.max_delay_us = 10;
  sim::SimFarm farm(o);
  FaultSink& sink = farm;

  sink.DropRequests(0, 1000);  // every request to disk 0 is swallowed
  Latch dropped;
  farm.IssueWrite(1, RegisterId{0, 1}, "lost", [&] { dropped.Bump(); });
  EXPECT_FALSE(dropped.WaitFor(1, 100ms));  // handler must never run

  sink.Heal(0);
  Latch healed;
  farm.IssueWrite(1, RegisterId{0, 2}, "kept", [&] { healed.Bump(); });
  EXPECT_TRUE(healed.WaitFor(1));
}

TEST(SimFarmFaults, PartialDropIsProbabilisticPerRequest) {
  sim::SimFarm::Options o;
  o.seed = 11;
  o.max_delay_us = 5;
  sim::SimFarm farm(o);
  FaultSink& sink = farm;
  sink.DropRequests(0, 500);  // ~half the requests vanish

  Latch done;
  constexpr int kOps = 200;
  std::atomic<int> completed{0};
  for (int i = 0; i < kOps; ++i) {
    farm.IssueWrite(1, RegisterId{0, static_cast<BlockId>(i)}, "v", [&] {
      completed.fetch_add(1, std::memory_order_relaxed);
      done.Bump();
    });
  }
  // Some must survive and some must be dropped — both extremes would
  // mean the permille arithmetic is broken (P < 1e-50 at 200 trials).
  EXPECT_FALSE(done.WaitFor(kOps, 500ms));
  EXPECT_GT(completed.load(), 0);
  EXPECT_LT(completed.load(), kOps);
}

TEST(SimFarmFaults, DelayOverrideSlowsDeliveryAndHealClearsIt) {
  sim::SimFarm::Options o;
  o.seed = 13;
  o.min_delay_us = 0;
  o.max_delay_us = 1;  // near-instant by default
  sim::SimFarm farm(o);
  FaultSink& sink = farm;
  sink.DelayDisk(0, 20'000, 30'000);  // 20–30ms per request

  Latch slow;
  const auto start = std::chrono::steady_clock::now();
  farm.IssueWrite(1, RegisterId{0, 1}, "v", [&] { slow.Bump(); });
  ASSERT_TRUE(slow.WaitFor(1));
  EXPECT_GE(std::chrono::steady_clock::now() - start, 15ms);

  sink.Heal(0);
  Latch fast;
  const auto start2 = std::chrono::steady_clock::now();
  farm.IssueWrite(1, RegisterId{0, 2}, "v", [&] { fast.Bump(); });
  ASSERT_TRUE(fast.WaitFor(1));
  EXPECT_LT(std::chrono::steady_clock::now() - start2, 15ms);
}

TEST(SimFarmFaults, CrashFaultsAreNotHealable) {
  sim::SimFarm::Options o;
  o.seed = 17;
  o.max_delay_us = 5;
  sim::SimFarm farm(o);
  FaultSink& sink = farm;
  sink.CrashDisk(0);
  sink.Heal(0);  // heals transport faults only; a crash is forever
  Latch done;
  farm.IssueWrite(1, RegisterId{0, 1}, "v", [&] { done.Bump(); });
  EXPECT_FALSE(done.WaitFor(1, 100ms));
}

}  // namespace
}  // namespace nadreg::faults
