// Unit tests for the on-disk address layout and farm configuration: name
// packing bounds, heap-trie encoding, block composition uniqueness, and
// the quorum arithmetic every emulation relies on.
#include "core/address.h"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "core/config.h"

namespace nadreg::core {
namespace {

TEST(FarmConfig, QuorumArithmetic) {
  for (std::uint32_t t : {1u, 2u, 3u, 5u}) {
    FarmConfig cfg{t};
    EXPECT_EQ(cfg.num_disks(), 2 * t + 1);
    EXPECT_EQ(cfg.quorum(), t + 1);
    // Two quorums always intersect: 2(t+1) > 2t+1.
    EXPECT_GT(2 * cfg.quorum(), cfg.num_disks());
  }
}

TEST(FarmConfig, SpreadPlacesOneBlockPerDisk) {
  FarmConfig cfg{2};
  auto regs = cfg.Spread(77);
  ASSERT_EQ(regs.size(), 5u);
  std::set<DiskId> disks;
  for (const auto& r : regs) {
    EXPECT_EQ(r.block, 77u);
    disks.insert(r.disk);
  }
  EXPECT_EQ(disks.size(), 5u);
}

TEST(PackName, RoundtripAcrossTheAddressableSpace) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    Name n{rng.Below(1ULL << 32), rng.Below(1ULL << 16)};
    EXPECT_EQ(UnpackName(PackName(n)), n);
  }
}

TEST(PackName, DistinctNamesDistinctPackings) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t pid = 0; pid < 50; ++pid) {
    for (std::uint64_t idx = 0; idx < 50; ++idx) {
      EXPECT_TRUE(seen.insert(PackName(Name{pid, idx})).second);
    }
  }
}

TEST(TrieEncoding, RootAndChildrenAreHeapIndexed) {
  EXPECT_EQ(TrieRoot(), 1u);
  EXPECT_EQ(TrieChild(TrieRoot(), 0), 2u);
  EXPECT_EQ(TrieChild(TrieRoot(), 1), 3u);
  EXPECT_EQ(TrieChild(2, 1), 5u);
}

TEST(TrieEncoding, DepthFortyEightLeafRecoversPath) {
  // Walking a packed name's bits from the root must land on 2^48 + path.
  const Name n{0xDEADBEEFu, 0x1234u};
  const std::uint64_t packed = PackName(n);
  std::uint64_t node = TrieRoot();
  for (int d = 0; d < 48; ++d) {
    node = TrieChild(node, (packed >> (47 - d)) & 1);
  }
  EXPECT_EQ(node, (1ULL << 48) + packed);
  EXPECT_EQ(UnpackName(node - (1ULL << 48)), n);
}

TEST(TrieEncoding, DistinctPathsDistinctLeaves) {
  std::set<std::uint64_t> leaves;
  Rng rng(2);
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t packed = rng.Below(1ULL << 48);
    std::uint64_t node = TrieRoot();
    for (int d = 0; d < 48; ++d) node = TrieChild(node, (packed >> (47 - d)) & 1);
    leaves.insert(node);
  }
  EXPECT_GT(leaves.size(), 495u);  // collisions would mean broken encoding
}

TEST(MakeBlock, FieldsDoNotOverlap) {
  // Distinct (object, component, key) triples must give distinct blocks.
  std::set<BlockId> blocks;
  for (std::uint32_t object : {0u, 1u, 511u, 1023u}) {
    for (Component c : {Component::kFixed, Component::kTrieMark,
                        Component::kView, Component::kValue}) {
      for (std::uint64_t key : {0ull, 1ull, (1ull << 49), (1ull << 50) - 1}) {
        EXPECT_TRUE(blocks.insert(MakeBlock(object, c, key)).second)
            << "collision at object=" << object << " key=" << key;
      }
    }
  }
}

TEST(MakeBlock, KeyOccupiesLowBits) {
  const BlockId b = MakeBlock(3, Component::kValue, 0x1234);
  EXPECT_EQ(b & ((1ULL << 50) - 1), 0x1234u);
}

}  // namespace
}  // namespace nadreg::core
