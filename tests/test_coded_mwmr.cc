// Tests for the erasure-coded atomic MWMR emulation: sequential
// semantics over a simulated farm, storage accounting (each disk holds a
// fragment, never a full copy), and multi-writer multi-reader behaviour
// under random schedules and quorum-minority disk crashes — every
// concurrent history certified atomic by the linearizability checker.
#include "core/coded/coded_mwmr.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "checker/consistency.h"
#include "checker/history.h"
#include "common/coded_cell.h"
#include "core/address.h"
#include "harness/workload.h"
#include "sim/sim_farm.h"

namespace nadreg::core {
namespace {

using checker::CheckAtomic;
using checker::HistoryRecorder;
using sim::SimFarm;

CodedMwmr MakeReg(SimFarm& farm, ProcessId self,
                  CodedOptions opts = CodedOptions{}) {
  auto reg = CodedMwmr::Make(farm, 1, self, opts);
  EXPECT_TRUE(reg.ok()) << reg.status().ToString();
  return std::move(*reg);
}

TEST(CodedMwmr, RejectsBadGeometryAndSubstrate) {
  SimFarm farm;
  EXPECT_FALSE(CodedMwmr::Make(farm, 1, 1, CodedOptions{4, 0}).ok());
  EXPECT_FALSE(CodedMwmr::Make(farm, 1, 1, CodedOptions{4, 5}).ok());
  EXPECT_TRUE(CodedMwmr::Make(farm, 1, 1, CodedOptions{5, 5}).ok());  // f=0
}

TEST(CodedMwmr, InitialValueIsNullopt) {
  SimFarm farm;
  auto reg = MakeReg(farm, 1);
  EXPECT_FALSE(reg.Read().has_value());
}

TEST(CodedMwmr, WriteThenReadSameProcess) {
  SimFarm farm;
  auto reg = MakeReg(farm, 1);
  reg.Write("hello coded world");
  auto v = reg.Read();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, "hello coded world");
}

TEST(CodedMwmr, WriteThenReadAcrossProcesses) {
  SimFarm farm;
  auto writer = MakeReg(farm, 1);
  auto reader = MakeReg(farm, 2);
  const std::string big(10000, 'x');
  writer.Write(big);
  auto v = reader.Read();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, big);
}

TEST(CodedMwmr, MultipleWritesLastOneWins) {
  SimFarm farm;
  auto w1 = MakeReg(farm, 1);
  auto w2 = MakeReg(farm, 2);
  auto reader = MakeReg(farm, 3);
  w1.Write("first");
  w2.Write("second");
  w1.Write("third");
  auto v = reader.Read();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, "third");
}

TEST(CodedMwmr, EmptyValueRoundTrips) {
  SimFarm farm;
  auto reg = MakeReg(farm, 1);
  reg.Write("");
  auto v = reg.Read();
  ASSERT_TRUE(v.has_value());
  EXPECT_TRUE(v->empty());
}

TEST(CodedMwmr, DisksStoreFragmentsNotCopies) {
  SimFarm farm;
  CodedOptions opts{8, 5};
  auto reg = MakeReg(farm, 1, opts);
  const std::string value(5000, 'v');
  reg.Write(value);
  // Every disk's cell holds one fragment of ceil(5000/5) = 1000 bytes
  // (plus bounded metadata), never the 5000-byte value.
  const std::size_t frag = 1000;
  for (DiskId d = 0; d < opts.n; ++d) {
    RegisterId r{d, MakeBlock(1, Component::kCodedCell, 0)};
    const Value cell_bytes = farm.Peek(r);
    ASSERT_FALSE(cell_bytes.empty()) << "disk " << d;
    EXPECT_LT(cell_bytes.size(), 2 * frag) << "disk " << d;
    auto cell = DecodeCodedCell(cell_bytes);
    ASSERT_TRUE(cell.ok());
    ASSERT_EQ(cell->frags.size(), 1u);
    EXPECT_EQ(cell->frags[0].bytes.size(), frag);
    EXPECT_EQ(cell->frags[0].index, d);
  }
}

TEST(CodedMwmr, SurvivesQuorumMinorityCrash) {
  SimFarm farm;
  CodedOptions opts{8, 5};  // f = 1
  auto writer = MakeReg(farm, 1, opts);
  auto reader = MakeReg(farm, 2, opts);
  writer.Write("before crash");
  farm.CrashDisk(3);
  auto v = reader.Read();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, "before crash");
  writer.Write("after crash");
  v = reader.Read();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, "after crash");
}

// Concurrent histories over random schedules, certified by the exact
// linearizability checker — the coded analogue of the MwmrAtomic sweeps.
void RunConcurrent(int writers, int readers, int ops, std::uint64_t seed,
                   int crash_disks) {
  harness::WorkloadOptions opts;
  opts.algorithm = harness::Algorithm::kCodedMwmr;
  opts.coded_n = 8;
  opts.coded_k = 5;
  opts.writers = writers;
  opts.readers = readers;
  opts.ops_per_process = ops;
  opts.seed = seed;
  opts.crash_disks = crash_disks;
  opts.payload_bytes = 64;
  auto result = harness::RunWorkload(opts);
  EXPECT_TRUE(result.check.ok) << result.check.explanation;
}

TEST(CodedMwmr, ConcurrentHistoriesAreAtomicNoCrash) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    RunConcurrent(3, 3, 6, seed, /*crash_disks=*/0);
  }
}

TEST(CodedMwmr, ConcurrentHistoriesAreAtomicWithCrash) {
  for (std::uint64_t seed = 10; seed <= 15; ++seed) {
    RunConcurrent(3, 3, 6, seed, /*crash_disks=*/1);
  }
}

TEST(CodedMwmr, TornWriteNeverSurfaces) {
  // A writer that crashes mid-put leaves fragments of an uncommitted tag
  // on a minority of disks. No commit ever reaches a quorum for that
  // tag, so readers must keep returning the last committed value — never
  // a decode of the torn write's fragments.
  SimFarm farm;
  CodedOptions opts{8, 5};
  auto writer = MakeReg(farm, 1, opts);
  auto reader = MakeReg(farm, 2, opts);
  writer.Write("stable");

  // Simulate the crash: hand-deliver tag-2 Puts to 3 < k disks, no commit.
  auto rs = RsCode::Make(opts.n, opts.k);
  ASSERT_TRUE(rs.ok());
  const std::string torn(100, 'T');
  auto frags = rs->Encode(torn);
  for (DiskId d = 0; d < 3; ++d) {
    CodedFragment f;
    f.tag = CodedTag{2, 9};
    f.index = static_cast<std::uint8_t>(d);
    f.n = static_cast<std::uint8_t>(opts.n);
    f.k = static_cast<std::uint8_t>(opts.k);
    f.value_size = static_cast<std::uint32_t>(torn.size());
    f.crc = Crc32(frags[d]);
    f.bytes = frags[d];
    RegisterId r{d, MakeBlock(1, Component::kCodedCell, 0)};
    bool done = false;
    farm.IssueMerge(9, r, EncodeCodedPut(f), [&done] { done = true; });
    while (!done) std::this_thread::yield();
  }

  for (int i = 0; i < 5; ++i) {
    auto v = reader.Read();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, "stable");
  }
}

TEST(CodedMwmr, HelpCommitRepropagatesInFlightFragments) {
  // The dangerous torn-write regime: a writer crashes mid-put having
  // reached exactly k disks — no commit anywhere, but a reader CAN
  // assemble the tag. Help-committing it is only sound if the reader
  // re-propagates the decoded fragments to a write quorum first;
  // committing the bare tag would make it the global max committed tag
  // while its fragments sit on k < q disks, and a later read quorum can
  // intersect the holders in as few as k - f < k disks — permanent
  // read unavailability with zero disk crashes.
  SimFarm farm;
  CodedOptions opts{8, 5};  // q = 7
  auto writer = MakeReg(farm, 1, opts);
  writer.Write("stable");

  // Hand-deliver tag-2 Puts to exactly k = 5 disks, no commit.
  auto rs = RsCode::Make(opts.n, opts.k);
  ASSERT_TRUE(rs.ok());
  const std::string torn(100, 'T');
  auto frags = rs->Encode(torn);
  for (DiskId d = 0; d < opts.k; ++d) {
    CodedFragment f;
    f.tag = CodedTag{2, 9};
    f.index = static_cast<std::uint8_t>(d);
    f.n = static_cast<std::uint8_t>(opts.n);
    f.k = static_cast<std::uint8_t>(opts.k);
    f.value_size = static_cast<std::uint32_t>(torn.size());
    f.crc = Crc32(frags[d]);
    f.bytes = frags[d];
    RegisterId r{d, MakeBlock(1, Component::kCodedCell, 0)};
    bool done = false;
    farm.IssueMerge(9, r, EncodeCodedPut(f), [&done] { done = true; });
    while (!done) std::this_thread::yield();
  }
  // Crash a non-holder (within f = 1) so every 7-disk quorum contains
  // all 5 fragment holders: the reader deterministically decodes tag 2.
  farm.CrashDisk(7);

  auto r1 = MakeReg(farm, 2, opts);
  auto v1 = r1.Read();
  ASSERT_TRUE(v1.has_value());
  EXPECT_EQ(*v1, torn);  // assembled the in-flight tag...

  // ...and its help-commit re-installed fragments beyond the original
  // holders: every live disk now holds committed = tag 2 AND its
  // fragment of tag 2.
  for (DiskId d = 0; d < opts.n - 1; ++d) {
    RegisterId r{d, MakeBlock(1, Component::kCodedCell, 0)};
    auto cell = DecodeCodedCell(farm.Peek(r));
    ASSERT_TRUE(cell.ok()) << "disk " << d;
    EXPECT_EQ(cell->committed, (CodedTag{2, 9})) << "disk " << d;
    ASSERT_EQ(cell->frags.size(), 1u) << "disk " << d;
    EXPECT_EQ(cell->frags[0].tag, (CodedTag{2, 9})) << "disk " << d;
    EXPECT_EQ(cell->frags[0].index, d) << "disk " << d;
  }

  // A second reader (fresh endpoint, any quorum) completes and agrees.
  auto r2 = MakeReg(farm, 3, opts);
  auto v2 = r2.Read();
  ASSERT_TRUE(v2.has_value());
  EXPECT_EQ(*v2, torn);
}

TEST(CodedMwmr, WireAccountingGrowsWithTraffic) {
  SimFarm farm;
  auto reg = MakeReg(farm, 1);
  reg.Write(std::string(1024, 'w'));
  (void)reg.Read();
  EXPECT_GT(reg.WireBytesOut(), 0u);
  EXPECT_GT(reg.WireBytesIn(), 0u);
  // Fragments, not copies: one write moves ~n/k of the value (plus
  // metadata and commit deltas), well under n full copies.
  EXPECT_LT(reg.WireBytesOut(), 8u * 1024u);
  const auto m = reg.op_metrics();
  EXPECT_EQ(m.writes, 1u);
  EXPECT_EQ(m.reads, 1u);
}

}  // namespace
}  // namespace nadreg::core
