// Soak tests: longer histories and heavier concurrency than the unit
// sweeps, still checker-certified. These exercise the pending-write
// chains, read coalescing and caches over thousands of base operations.
#include <gtest/gtest.h>

#include <thread>

#include "checker/consistency.h"
#include "checker/history.h"
#include "core/config.h"
#include "core/mwmr_atomic.h"
#include "core/swsr_atomic.h"
#include "harness/workload.h"
#include "sim/sim_farm.h"

namespace nadreg {
namespace {

using core::FarmConfig;
using sim::SimFarm;

TEST(Soak, SwsrLongHistoryLinearizable) {
  // 120 writes + 240 reads, t=1, one crash: a long single-register life.
  harness::WorkloadOptions opts;
  opts.algorithm = harness::Algorithm::kSwsrAtomic;
  opts.seed = 424242;
  opts.ops_per_process = 120;
  opts.crash_disks = 1;
  auto result = harness::RunWorkload(opts);
  EXPECT_TRUE(result.ok()) << result.check.explanation;
  EXPECT_EQ(result.history.size(), 240u);
}

TEST(Soak, MwsrManyWritersLongRun) {
  harness::WorkloadOptions opts;
  opts.algorithm = harness::Algorithm::kMwsrSeqCst;
  opts.seed = 5150;
  opts.writers = 4;
  opts.ops_per_process = 20;
  opts.crash_disks = 1;
  auto result = harness::RunWorkload(opts);
  EXPECT_TRUE(result.ok()) << result.check.explanation;
  // 4 writers x 20 + 1 reader x 20.
  EXPECT_EQ(result.history.size(), 100u);
}

TEST(Soak, MwmrSustainedMixedLoad) {
  harness::WorkloadOptions opts;
  opts.algorithm = harness::Algorithm::kMwmrAtomic;
  opts.seed = 90125;
  opts.writers = 3;
  opts.readers = 3;
  opts.ops_per_process = 6;
  opts.crash_disks = 1;
  auto result = harness::RunWorkload(opts);
  EXPECT_TRUE(result.ok()) << result.check.explanation;
  EXPECT_EQ(result.history.size(), 36u);
}

TEST(Soak, RegisterChurnAcrossManyBlocks) {
  // Thousands of independent emulated registers on one farm: address-space
  // isolation and lazy materialization at scale.
  FarmConfig cfg{1};
  SimFarm::Options o;
  o.seed = 8;
  o.max_delay_us = 0;
  SimFarm farm(o);
  constexpr int kRegisters = 500;
  for (int i = 0; i < kRegisters; ++i) {
    const BlockId block = static_cast<BlockId>(i);
    core::SwsrAtomicWriter writer(farm, cfg, cfg.Spread(block), 1);
    writer.Write("v" + std::to_string(i));
  }
  for (int i = 0; i < kRegisters; ++i) {
    const BlockId block = static_cast<BlockId>(i);
    core::SwsrAtomicReader reader(farm, cfg, cfg.Spread(block), 2);
    ASSERT_EQ(reader.Read(), "v" + std::to_string(i)) << "register " << i;
  }
}

TEST(Soak, MwmrNameBudgetSustainedUse) {
  // A long-lived endpoint performing many hundreds of operations: the
  // caches must keep per-op cost flat and the name budget must hold.
  FarmConfig cfg{1};
  SimFarm::Options o;
  o.seed = 9;
  o.max_delay_us = 0;
  SimFarm farm(o);
  core::MwmrAtomic writer(farm, cfg, 1, 1);
  core::MwmrAtomic reader(farm, cfg, 1, 2);
  for (int i = 0; i < 300; ++i) {
    writer.Write("v" + std::to_string(i));
    if (i % 10 == 0) {
      auto v = reader.Read();
      ASSERT_TRUE(v.has_value());
      EXPECT_EQ(*v, "v" + std::to_string(i));
    }
  }
  // Amortized cost sanity: total base ops bounded well below the naive
  // (uncached) directory walk cost.
  const auto issued = farm.stats().TotalIssued();
  EXPECT_LT(issued, 600u * 330u) << "per-op cost did not amortize";
}

}  // namespace
}  // namespace nadreg
