// Tests for Disk Paxos on the NAD substrate: codec, single-proposer
// decisions, agreement & validity under concurrent proposers, disk
// crashes, and runs over random schedules.
#include "common/sync.h"
#include "apps/disk_paxos.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/config.h"
#include "sim/sim_farm.h"

namespace nadreg::apps {
namespace {

using core::FarmConfig;
using sim::SimFarm;

TEST(DiskBlockCodec, Roundtrip) {
  DiskBlock b{42, 17, "proposal"};
  auto decoded = DecodeDiskBlock(EncodeDiskBlock(b));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, b);
}

TEST(DiskBlockCodec, EmptyBytesIsVirginBlock) {
  auto decoded = DecodeDiskBlock("");
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->mbal, 0u);
  EXPECT_EQ(decoded->bal, 0u);
  EXPECT_TRUE(decoded->inp.empty());
}

TEST(DiskBlockCodec, TruncationRejected) {
  std::string bytes = EncodeDiskBlock(DiskBlock{1, 2, "v"});
  EXPECT_FALSE(DecodeDiskBlock(bytes.substr(0, bytes.size() - 2)).ok());
}

TEST(DiskPaxos, SoloProposerDecidesOwnValue) {
  FarmConfig cfg{1};
  SimFarm farm;
  DiskPaxos paxos(farm, cfg, 1, /*n=*/3, /*pid=*/0);
  auto chosen = paxos.TryPropose("alpha");
  ASSERT_TRUE(chosen.has_value());
  EXPECT_EQ(*chosen, "alpha");
}

TEST(DiskPaxos, SingleProcessConsensus) {
  FarmConfig cfg{1};
  SimFarm farm;
  DiskPaxos paxos(farm, cfg, 1, /*n=*/1, /*pid=*/0);
  auto chosen = paxos.TryPropose("solo");
  ASSERT_TRUE(chosen.has_value());
  EXPECT_EQ(*chosen, "solo");
}

TEST(DiskPaxos, SecondProposerAdoptsChosenValue) {
  FarmConfig cfg{1};
  SimFarm farm;
  DiskPaxos p0(farm, cfg, 1, 2, 0);
  DiskPaxos p1(farm, cfg, 1, 2, 1);
  auto first = p0.TryPropose("first");
  ASSERT_TRUE(first.has_value());
  // Consensus: once chosen, later ballots must decide the same value.
  Rng rng(1);
  EXPECT_EQ(p1.Propose("second", rng), "first");
}

TEST(DiskPaxos, ToleratesDiskCrash) {
  FarmConfig cfg{1};
  SimFarm farm;
  farm.CrashDisk(2);
  DiskPaxos paxos(farm, cfg, 1, 2, 0);
  auto chosen = paxos.TryPropose("resilient");
  ASSERT_TRUE(chosen.has_value());
  EXPECT_EQ(*chosen, "resilient");
}

TEST(DiskPaxos, ToleratesTwoCrashesWithFiveDisks) {
  FarmConfig cfg{2};
  SimFarm farm;
  farm.CrashDisk(0);
  farm.CrashDisk(3);
  DiskPaxos paxos(farm, cfg, 1, 2, 1);
  auto chosen = paxos.TryPropose("five-disks");
  ASSERT_TRUE(chosen.has_value());
  EXPECT_EQ(*chosen, "five-disks");
}

TEST(DiskPaxos, DistinctObjectsAreIndependentInstances) {
  FarmConfig cfg{1};
  SimFarm farm;
  DiskPaxos a(farm, cfg, 1, 2, 0);
  DiskPaxos b(farm, cfg, 2, 2, 0);
  EXPECT_EQ(*a.TryPropose("for-a"), "for-a");
  EXPECT_EQ(*b.TryPropose("for-b"), "for-b");
}

// Agreement under concurrency: all proposers decide the same value, and
// that value is someone's proposal (validity).
class DiskPaxosRace : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DiskPaxosRace, ConcurrentProposersAgree) {
  FarmConfig cfg{1};
  SimFarm::Options o;
  o.seed = GetParam();
  o.max_delay_us = 50;
  SimFarm farm(o);

  constexpr int kProposers = 4;
  Mutex mu;
  std::vector<std::string> decisions;
  {
    std::vector<std::jthread> threads;
    for (int p = 0; p < kProposers; ++p) {
      threads.emplace_back([&, p] {
        DiskPaxos paxos(farm, cfg, 1, kProposers, p);
        Rng rng(GetParam() * 100 + p);
        std::string v = paxos.Propose("value-" + std::to_string(p), rng);
        MutexLock lock(mu);
        decisions.push_back(std::move(v));
      });
    }
  }
  ASSERT_EQ(decisions.size(), static_cast<std::size_t>(kProposers));
  for (const auto& d : decisions) {
    EXPECT_EQ(d, decisions[0]) << "agreement violated";
    EXPECT_EQ(d.rfind("value-", 0), 0u) << "validity violated";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DiskPaxosRace,
                         ::testing::Values(11, 22, 33, 44, 55));

TEST(DiskPaxos, AgreementUnderCrashAndConcurrency) {
  FarmConfig cfg{1};
  SimFarm::Options o;
  o.seed = 77;
  o.max_delay_us = 50;
  SimFarm farm(o);

  Mutex mu;
  std::vector<std::string> decisions;
  {
    std::vector<std::jthread> threads;
    for (int p = 0; p < 3; ++p) {
      threads.emplace_back([&, p] {
        DiskPaxos paxos(farm, cfg, 1, 3, p);
        Rng rng(500 + p);
        std::string v = paxos.Propose("v" + std::to_string(p), rng);
        MutexLock lock(mu);
        decisions.push_back(std::move(v));
      });
    }
    threads.emplace_back([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      farm.CrashDisk(1);
    });
  }
  ASSERT_EQ(decisions.size(), 3u);
  EXPECT_EQ(decisions[1], decisions[0]);
  EXPECT_EQ(decisions[2], decisions[0]);
}

}  // namespace
}  // namespace nadreg::apps
