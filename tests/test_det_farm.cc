// Unit tests for the deterministic adversary-controlled farm: pending
// operations, selective delivery (flushing), drops, crashes, and the
// covering gates used by the impossibility-proof schedules.
#include "sim/det_farm.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>

namespace nadreg::sim {
namespace {

TEST(DetFarm, NothingHappensUntilDeliver) {
  DetFarm farm;
  std::atomic<bool> responded{false};
  farm.IssueWrite(1, RegisterId{0, 0}, "x", [&] { responded = true; });
  EXPECT_FALSE(responded.load());
  EXPECT_TRUE(farm.Peek(RegisterId{0, 0}).empty());

  auto pending = farm.Pending();
  ASSERT_EQ(pending.size(), 1u);
  EXPECT_TRUE(pending[0].is_write);
  EXPECT_EQ(pending[0].value, "x");

  EXPECT_TRUE(farm.Deliver(pending[0].id));
  EXPECT_TRUE(responded.load());
  EXPECT_EQ(farm.Peek(RegisterId{0, 0}), "x");
}

TEST(DetFarm, DeliverTwiceFails) {
  DetFarm farm;
  farm.IssueWrite(1, RegisterId{0, 0}, "x", nullptr);
  auto id = farm.Pending()[0].id;
  EXPECT_TRUE(farm.Deliver(id));
  EXPECT_FALSE(farm.Deliver(id));
}

TEST(DetFarm, ReadsCaptureValueAtDeliveryTime) {
  // A read issued BEFORE a write can return the written value if the
  // adversary delivers the write first — base ops linearize at response.
  DetFarm farm;
  RegisterId r{0, 0};
  std::string got = "unset";
  farm.IssueRead(1, r, [&](Value v) { got = std::move(v); });
  farm.IssueWrite(2, r, "late-write", nullptr);

  auto ops = farm.Pending();
  ASSERT_EQ(ops.size(), 2u);
  EXPECT_TRUE(farm.Deliver(ops[1].id));  // write first
  EXPECT_TRUE(farm.Deliver(ops[0].id));  // then the earlier-issued read
  EXPECT_EQ(got, "late-write");
}

TEST(DetFarm, FlushingAPendingWriteOverwritesLaterState) {
  // The Fig. 1 / Theorem 2 phenomenon: an old pending write flushed late
  // clobbers a newer value.
  DetFarm farm;
  RegisterId r{0, 0};
  farm.IssueWrite(1, r, "old", nullptr);
  auto old_id = farm.Pending()[0].id;
  farm.IssueWrite(2, r, "new", nullptr);
  auto new_id = farm.Pending()[1].id;

  EXPECT_TRUE(farm.Deliver(new_id));
  EXPECT_EQ(farm.Peek(r), "new");
  EXPECT_TRUE(farm.Deliver(old_id));  // flush the old pending write
  EXPECT_EQ(farm.Peek(r), "old");     // the WRITE of "new" has been hidden
}

TEST(DetFarm, DroppedOpNeverTakesEffect) {
  DetFarm farm;
  RegisterId r{0, 0};
  std::atomic<bool> responded{false};
  farm.IssueWrite(1, r, "x", [&] { responded = true; });
  auto id = farm.Pending()[0].id;
  EXPECT_TRUE(farm.Drop(id));
  EXPECT_FALSE(farm.Deliver(id));
  EXPECT_FALSE(responded.load());
  EXPECT_TRUE(farm.Peek(r).empty());
}

TEST(DetFarm, CrashRegisterDropsPendingAndFutureOps) {
  DetFarm farm;
  RegisterId r{0, 0};
  farm.IssueWrite(1, r, "x", nullptr);
  farm.CrashRegister(r);
  EXPECT_TRUE(farm.Pending().empty());
  farm.IssueWrite(1, r, "y", nullptr);
  EXPECT_TRUE(farm.Pending().empty());
  EXPECT_EQ(farm.DeliverAll(), 0u);
}

TEST(DetFarm, CrashDiskDropsAllItsRegisters) {
  DetFarm farm;
  farm.IssueWrite(1, RegisterId{0, 0}, "a", nullptr);
  farm.IssueWrite(1, RegisterId{0, 1}, "b", nullptr);
  farm.IssueWrite(1, RegisterId{1, 0}, "c", nullptr);
  farm.CrashDisk(0);
  auto pending = farm.Pending();
  ASSERT_EQ(pending.size(), 1u);
  EXPECT_EQ(pending[0].r, (RegisterId{1, 0}));
}

TEST(DetFarm, DeliverAllHandlesHandlerReissues) {
  DetFarm farm;
  RegisterId r{0, 0};
  std::atomic<int> chain{0};
  farm.IssueWrite(1, r, "first", [&] {
    ++chain;
    farm.IssueWrite(1, r, "second", [&] { ++chain; });
  });
  EXPECT_EQ(farm.DeliverAll(), 2u);  // includes the re-issued op
  EXPECT_EQ(chain.load(), 2);
  EXPECT_EQ(farm.Peek(r), "second");
}

TEST(DetFarm, DeliverWhereFiltersByRegister) {
  DetFarm farm;
  farm.IssueWrite(1, RegisterId{0, 0}, "a", nullptr);
  farm.IssueWrite(1, RegisterId{0, 1}, "b", nullptr);
  farm.IssueWrite(1, RegisterId{0, 0}, "c", nullptr);
  auto n = farm.DeliverWhere(
      [](const DetFarm::PendingOp& op) { return op.r.block == 0; });
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(farm.Peek(RegisterId{0, 0}), "c");
  EXPECT_TRUE(farm.Peek(RegisterId{0, 1}).empty());
  EXPECT_EQ(farm.Pending().size(), 1u);
}

TEST(DetFarm, GateParksIssuerBeforeOpIsVisible) {
  DetFarm farm;
  farm.ArmGate(42);
  std::atomic<bool> issue_returned{false};
  std::jthread issuer([&] {
    farm.IssueWrite(42, RegisterId{0, 3}, "covered", nullptr);
    issue_returned = true;
  });

  // The adversary learns which register the process is about to write —
  // this is the covering information used by Lemma 2.1.
  auto op = farm.WaitGated(42);
  EXPECT_EQ(op.r, (RegisterId{0, 3}));
  EXPECT_TRUE(op.is_write);
  EXPECT_EQ(op.value, "covered");
  // While parked: not visible as pending, not applied, Issue not returned.
  EXPECT_TRUE(farm.Pending().empty());
  EXPECT_FALSE(issue_returned.load());

  farm.ReleaseGate(42);
  issuer.join();
  EXPECT_TRUE(issue_returned.load());
  ASSERT_EQ(farm.Pending().size(), 1u);  // now pending; still needs Deliver
  EXPECT_TRUE(farm.Peek(RegisterId{0, 3}).empty());
}

TEST(DetFarm, GateIsOneShot) {
  DetFarm farm;
  farm.ArmGate(7);
  std::jthread issuer([&] {
    farm.IssueWrite(7, RegisterId{0, 0}, "first", nullptr);
    // Second op must not park: the gate was one-shot.
    farm.IssueWrite(7, RegisterId{0, 1}, "second", nullptr);
  });
  farm.WaitGated(7);
  farm.ReleaseGate(7);
  issuer.join();
  EXPECT_EQ(farm.Pending().size(), 2u);
}

TEST(DetFarm, GatesOnDifferentProcessesAreIndependent) {
  DetFarm farm;
  farm.ArmGate(1);
  // Process 2 is unaffected by process 1's gate.
  farm.IssueWrite(2, RegisterId{0, 0}, "p2", nullptr);
  EXPECT_EQ(farm.Pending().size(), 1u);

  std::jthread issuer([&] { farm.IssueWrite(1, RegisterId{0, 1}, "p1", nullptr); });
  auto op = farm.WaitGated(1);
  EXPECT_EQ(op.p, 1u);
  farm.ReleaseGate(1);
  issuer.join();
  EXPECT_EQ(farm.Pending().size(), 2u);
}

TEST(DetFarm, StatsTrackIssueAndCompletion) {
  DetFarm farm;
  farm.IssueWrite(1, RegisterId{0, 0}, "x", nullptr);
  farm.IssueRead(1, RegisterId{0, 0}, nullptr);
  auto s0 = farm.stats();
  EXPECT_EQ(s0.writes_issued, 1u);
  EXPECT_EQ(s0.reads_issued, 1u);
  EXPECT_EQ(s0.writes_completed, 0u);
  farm.DeliverAll();
  auto s1 = farm.stats();
  EXPECT_EQ(s1.writes_completed, 1u);
  EXPECT_EQ(s1.reads_completed, 1u);
}

}  // namespace
}  // namespace nadreg::sim
