// Chaos smoke tests: small, checker-validated fault-injection runs wired
// into ctest — the tier-1 face of bench/chaos_harness.
//
//  * sim workloads under tolerated crash plans stay atomic;
//  * a malformed plan aborts the run instead of silently dropping the
//    adversary;
//  * an over-budget plan (crashes > t) finishes via per-op deadlines with
//    counted timeouts — never hangs;
//  * the TCP client rides out a daemon restart: reconnect + retransmit
//    completes an operation issued while the daemon was down.
#include "common/sync.h"
#include "harness/workload.h"

#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <memory>
#include <string>

#include "faults/fault_plan.h"
#include "nad/client.h"
#include "nad/server.h"

namespace nadreg {
namespace {

using namespace std::chrono_literals;
using harness::Algorithm;
using harness::RunWorkload;
using harness::WorkloadOptions;

TEST(ChaosSmoke, SimWorkloadUnderCrashPlanStaysAtomic) {
  WorkloadOptions w;
  w.algorithm = Algorithm::kSwmrAtomic;
  w.seed = 21;
  w.t = 1;
  w.readers = 2;
  w.ops_per_process = 6;
  w.fault_plan_text =
      "at 100us delay 1 20us 80us\n"
      "at 200us crash-disk 2\n"
      "at 500us heal 1\n";
  auto res = RunWorkload(w);
  EXPECT_TRUE(res.fault_plan_status.ok());
  EXPECT_TRUE(res.check.ok) << res.check.explanation;
  EXPECT_EQ(res.timeouts, 0u);  // within budget: every op terminates
}

TEST(ChaosSmoke, SequentialConsistencyHoldsUnderCrashPlan) {
  WorkloadOptions w;
  w.algorithm = Algorithm::kMwsrSeqCst;
  w.seed = 23;
  w.t = 1;
  w.writers = 2;
  w.ops_per_process = 5;
  w.fault_plan_text = "at 150us crash-disk 0\n";
  auto res = RunWorkload(w);
  EXPECT_TRUE(res.ok()) << res.check.explanation;
}

TEST(ChaosSmoke, MalformedPlanAbortsTheRun) {
  WorkloadOptions w;
  w.algorithm = Algorithm::kSwsrAtomic;
  w.fault_plan_text = "at soon crash-disk 0\n";
  auto res = RunWorkload(w);
  EXPECT_FALSE(res.ok());
  EXPECT_EQ(res.fault_plan_status.code(), StatusCode::kInvalid);
  EXPECT_TRUE(res.history.empty());  // nothing ran
}

TEST(ChaosSmoke, OverBudgetPlanTimesOutInsteadOfHanging) {
  WorkloadOptions w;
  w.algorithm = Algorithm::kSwsrAtomic;
  w.seed = 29;
  w.t = 1;
  w.ops_per_process = 2;
  w.fault_plan_text =
      "at 0us crash-disk 0\n"
      "at 0us crash-disk 1\n";  // 2 > t=1: over the paper's budget
  w.op_deadline = 100ms;
  auto res = RunWorkload(w);
  // Returning from RunWorkload at all is the point; the abandoned ops
  // are all counted and whatever completed is still consistent.
  EXPECT_GT(res.timeouts, 0u);
  EXPECT_TRUE(res.check.ok) << res.check.explanation;
  EXPECT_EQ(res.faults_injected, 2u);
}

TEST(ChaosSmoke, TcpWorkloadSurvivesDisconnects) {
  WorkloadOptions w;
  w.algorithm = Algorithm::kSwsrAtomic;
  w.seed = 31;
  w.t = 1;
  w.ops_per_process = 20;
  w.over_tcp = true;
  w.max_delay_us = 0;
  w.op_deadline = 5000ms;  // safety net so a bug fails instead of hanging
  w.fault_plan_text =
      "at 0us delay 0 50us 150us\n"
      "at 0us delay 1 50us 150us\n"
      "at 0us delay 2 50us 150us\n"
      "at 500us disconnect 0\n"
      "at 2ms disconnect 2\n";
  auto res = RunWorkload(w);
  EXPECT_TRUE(res.ok()) << res.check.explanation;
  EXPECT_EQ(res.timeouts, 0u);
}

TEST(ChaosSmoke, ClientReconnectsAfterServerRestart) {
  auto first = nad::NadServer::Start({});
  ASSERT_TRUE(first.ok());
  const std::uint16_t port = (*first)->port();

  std::map<DiskId, nad::NadClient::Endpoint> eps;
  eps[0] = nad::NadClient::Endpoint{"127.0.0.1", port};
  auto client = nad::NadClient::Connect(eps);  // reconnect on by default
  ASSERT_TRUE(client.ok());

  Mutex mu;
  CondVar cv;
  int done = 0;
  auto bump = [&] {
    MutexLock lock(mu);
    ++done;
    cv.NotifyAll();
  };
  auto wait_for = [&](int target, std::chrono::milliseconds d) {
    MutexLock lock(mu);
    return cv.WaitFor(mu, d, [&] { return done >= target; });
  };

  (*client)->IssueWrite(1, RegisterId{0, 1}, "before", [&] { bump(); });
  ASSERT_TRUE(wait_for(1, 2000ms));

  (*first)->Stop();  // daemon goes away; SO_REUSEADDR frees the port

  // Issued while the daemon is down: must be retransmitted after the
  // client's backoff loop reaches the restarted daemon.
  (*client)->IssueWrite(1, RegisterId{0, 2}, "during", [&] { bump(); });

  nad::NadServer::Options so;
  so.port = port;
  auto second = nad::NadServer::Start(so);
  ASSERT_TRUE(second.ok()) << second.status().ToString();

  EXPECT_TRUE(wait_for(2, 10000ms));

  // The restarted (volatile) daemon is fully usable afterwards.
  std::string got;
  (*client)->IssueRead(2, RegisterId{0, 2}, [&](Value v) {
    got = std::move(v);
    bump();
  });
  ASSERT_TRUE(wait_for(3, 2000ms));
  EXPECT_EQ(got, "during");
}

}  // namespace
}  // namespace nadreg
