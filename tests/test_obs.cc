// Observability layer: metric primitive semantics (including under
// concurrency), trace file format, endpoint parsing, and the unified
// OpOptions deadline across all four register emulations.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "common/op_options.h"
#include "core/config.h"
#include "core/mwmr_atomic.h"
#include "core/mwsr_seqcst.h"
#include "core/oneshot.h"
#include "core/swmr_atomic.h"
#include "core/swsr_atomic.h"
#include "nad/protocol.h"
#include "obs/instrumented.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/sim_farm.h"

namespace nadreg {
namespace {

using namespace std::chrono_literals;

// ---------------------------------------------------------------- metrics

TEST(Counter, StartsAtZeroAndAccumulates) {
  obs::Counter c;
  EXPECT_EQ(c.Get(), 0u);
  c.Inc();
  c.Inc(41);
  EXPECT_EQ(c.Get(), 42u);
}

TEST(Counter, ConcurrentIncrementsAreExact) {
  obs::Counter c;
  constexpr int kThreads = 8;
  constexpr int kIncs = 20000;
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&c] {
        for (int i = 0; i < kIncs; ++i) c.Inc();
      });
    }
  }
  EXPECT_EQ(c.Get(), static_cast<std::uint64_t>(kThreads) * kIncs);
}

TEST(Gauge, TracksLevelAndHighWatermark) {
  obs::Gauge g;
  g.Add(3);
  g.Add(4);
  g.Add(-5);
  EXPECT_EQ(g.Get(), 2);
  EXPECT_EQ(g.Max(), 7);
  g.Set(1);
  EXPECT_EQ(g.Get(), 1);
  EXPECT_EQ(g.Max(), 7);  // the watermark never regresses
}

TEST(Histogram, BucketIndexIsPowerOfTwoUpperBound) {
  EXPECT_EQ(obs::Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(obs::Histogram::BucketIndex(1), 0u);
  EXPECT_EQ(obs::Histogram::BucketIndex(2), 1u);
  EXPECT_EQ(obs::Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(obs::Histogram::BucketIndex(4), 2u);
  EXPECT_EQ(obs::Histogram::BucketIndex(5), 3u);
  // Far past the largest finite bucket: the overflow bucket.
  EXPECT_EQ(obs::Histogram::BucketIndex(~0ULL),
            obs::Histogram::kFiniteBuckets);
}

TEST(Histogram, CountSumMaxAndPercentiles) {
  obs::Histogram h;
  EXPECT_EQ(h.PercentileUs(50), 0u);  // empty
  for (std::uint64_t us : {1u, 2u, 4u, 8u, 1000u}) h.Observe(us);
  EXPECT_EQ(h.Count(), 5u);
  EXPECT_EQ(h.SumUs(), 1015u);
  EXPECT_EQ(h.MaxUs(), 1000u);
  // p50 lands in the bucket of the 3rd observation (value 4 -> le 4).
  EXPECT_EQ(h.PercentileUs(50), 4u);
  // p100 lands in the bucket holding 1000 (le 1024).
  EXPECT_EQ(h.PercentileUs(100), 1024u);
}

TEST(Histogram, ConcurrentObservationsKeepTotalsConsistent) {
  obs::Histogram h;
  constexpr int kThreads = 8;
  constexpr int kObs = 5000;
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&h] {
        for (int i = 0; i < kObs; ++i) h.Observe(7);
      });
    }
  }
  EXPECT_EQ(h.Count(), static_cast<std::uint64_t>(kThreads) * kObs);
  EXPECT_EQ(h.SumUs(), static_cast<std::uint64_t>(kThreads) * kObs * 7);
  std::uint64_t bucketed = 0;
  for (std::size_t i = 0; i < obs::Histogram::kBuckets; ++i) {
    bucketed += h.BucketCount(i);
  }
  EXPECT_EQ(bucketed, h.Count());
}

TEST(Registry, SameNameSameInstrument) {
  obs::Registry reg;
  obs::Counter& a = reg.GetCounter("x");
  obs::Counter& b = reg.GetCounter("x");
  EXPECT_EQ(&a, &b);
  a.Inc();
  EXPECT_EQ(b.Get(), 1u);
  // Kinds have independent namespaces.
  reg.GetGauge("x").Set(5);
  EXPECT_EQ(reg.GetCounter("x").Get(), 1u);
}

TEST(Registry, JsonAndTextContainAllInstruments) {
  obs::Registry reg;
  reg.GetCounter("ops.total").Inc(3);
  reg.GetGauge("depth").Set(2);
  reg.GetHistogram("lat_us").Observe(10);
  const std::string json = reg.ToJson();
  EXPECT_NE(json.find("\"ops.total\": 3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"depth\""), std::string::npos);
  EXPECT_NE(json.find("\"lat_us\""), std::string::npos);
  EXPECT_NE(json.find("\"buckets\""), std::string::npos);
  const std::string text = reg.ToText();
  EXPECT_NE(text.find("counter ops.total 3"), std::string::npos) << text;
  EXPECT_NE(text.find("gauge depth 2"), std::string::npos);
  EXPECT_NE(text.find("histogram lat_us count 1"), std::string::npos);
}

TEST(Registry, WriteJsonFileRoundTrips) {
  obs::Registry reg;
  reg.GetCounter("c").Inc();
  const auto path = std::filesystem::temp_directory_path() /
                    "nadreg_test_metrics.json";
  ASSERT_TRUE(reg.WriteJsonFile(path.string()).ok());
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), reg.ToJson());
  std::filesystem::remove(path);
}

TEST(PhaseCounters, ComposeByAdditionWithMaxDepth) {
  obs::PhaseCounters a;
  a.reads = 2;
  a.max_pending_depth = 3;
  obs::PhaseCounters b;
  b.reads = 1;
  b.writes = 4;
  b.max_pending_depth = 2;
  a += b;
  EXPECT_EQ(a.reads, 3u);
  EXPECT_EQ(a.writes, 4u);
  EXPECT_EQ(a.max_pending_depth, 3u);  // max, not sum
}

// ----------------------------------------------------------------- trace

TEST(Trace, FileIsAStrictJsonArrayOfCompleteEvents) {
  const auto path =
      std::filesystem::temp_directory_path() / "nadreg_test_trace.json";
  ASSERT_TRUE(obs::StartTrace(path.string()).ok());
  EXPECT_TRUE(obs::TraceActive());
  {
    obs::ScopedPhase phase(nullptr, "test", "span_one", "lbl");
    std::this_thread::sleep_for(1ms);
  }
  const auto now = std::chrono::steady_clock::now();
  obs::EmitSpan("test", "span_two", now - 5ms, now);
  obs::StopTrace();
  EXPECT_FALSE(obs::TraceActive());

  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string body = buf.str();
  EXPECT_EQ(body.front(), '[');
  EXPECT_NE(body.find("\"ph\":\"X\""), std::string::npos) << body;
  EXPECT_NE(body.find("\"name\":\"span_one:lbl\""), std::string::npos);
  EXPECT_NE(body.find("\"name\":\"span_two\""), std::string::npos);
  EXPECT_NE(body.find("\"cat\":\"test\""), std::string::npos);
  // Closed as valid JSON ("{}]" terminator after the trailing comma).
  EXPECT_NE(body.find("{}]"), std::string::npos);
  std::filesystem::remove(path);
}

TEST(Trace, SpansAreDroppedWhenInactive) {
  ASSERT_FALSE(obs::TraceActive());
  const auto now = std::chrono::steady_clock::now();
  obs::EmitSpan("test", "ignored", now - 1ms, now);  // must not crash
  obs::Histogram h;
  {
    obs::ScopedPhase phase(&h, "test", "timed");
  }
  EXPECT_EQ(h.Count(), 1u);  // histogram fed even without a trace
}

// -------------------------------------------------------------- endpoint

TEST(ParseEndpoint, AcceptsHostPortAndBarePort) {
  auto ep = nad::ParseEndpoint("10.0.0.7:7001");
  ASSERT_TRUE(ep.ok());
  EXPECT_EQ(ep->host, "10.0.0.7");
  EXPECT_EQ(ep->port, 7001);

  auto bare = nad::ParseEndpoint("7002");
  ASSERT_TRUE(bare.ok());
  EXPECT_EQ(bare->host, "127.0.0.1");
  EXPECT_EQ(bare->port, 7002);
}

TEST(ParseEndpoint, RejectsMalformedInputs) {
  EXPECT_FALSE(nad::ParseEndpoint("").ok());
  EXPECT_FALSE(nad::ParseEndpoint(":80").ok());
  EXPECT_FALSE(nad::ParseEndpoint("host:").ok());
  EXPECT_FALSE(nad::ParseEndpoint("host:abc").ok());
  EXPECT_FALSE(nad::ParseEndpoint("host:70000").ok());
  EXPECT_FALSE(nad::ParseEndpoint("host:-1").ok());
}

// ------------------------------------- unified OpOptions deadline + stats

struct Rig {
  core::FarmConfig cfg{1};
  std::vector<RegisterId> regs = cfg.Spread(0);
};

/// Crashes a majority so no quorum can ever complete: every deadline
/// op must time out instead of blocking forever.
void CrashMajority(sim::SimFarm& farm, const core::FarmConfig& cfg) {
  for (DiskId d = 0; d + 1 < cfg.num_disks(); ++d) farm.CrashDisk(d);
}

TEST(OpOptionsDeadline, SwsrAndSwmrTimeOutWithoutQuorum) {
  Rig rig;
  sim::SimFarm farm;
  CrashMajority(farm, rig.cfg);
  core::SwsrAtomicWriter writer(farm, rig.cfg, rig.regs, 1);
  Status w = writer.Write("v", OpOptions::WithDeadline(50ms));
  EXPECT_EQ(w.code(), StatusCode::kTimeout) << w.ToString();

  core::SwmrAtomicReader reader(farm, rig.cfg, rig.regs, 2);
  auto r = reader.Read(OpOptions::WithDeadline(50ms));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kTimeout);
  EXPECT_GE(reader.op_metrics().deadline_timeouts, 1u);
}

TEST(OpOptionsDeadline, MwsrTimesOutWithoutQuorum) {
  Rig rig;
  sim::SimFarm farm;
  CrashMajority(farm, rig.cfg);
  core::MwsrWriter writer(farm, rig.cfg, rig.regs, 1);
  EXPECT_EQ(writer.Write("v", OpOptions::WithDeadline(50ms)).code(),
            StatusCode::kTimeout);
  core::MwsrReader reader(farm, rig.cfg, rig.regs, 2);
  EXPECT_EQ(reader.Read(OpOptions::WithDeadline(50ms)).status().code(),
            StatusCode::kTimeout);
}

TEST(OpOptionsDeadline, StableRegisterTimesOutWithoutQuorum) {
  Rig rig;
  sim::SimFarm farm;
  CrashMajority(farm, rig.cfg);
  core::StableRegister reg(farm, rig.cfg, rig.regs, 1);
  EXPECT_EQ(reg.Write("v", OpOptions::WithDeadline(50ms)).code(),
            StatusCode::kTimeout);
  EXPECT_EQ(reg.Read(OpOptions::WithDeadline(50ms)).status().code(),
            StatusCode::kTimeout);
  EXPECT_GE(reg.op_metrics().deadline_timeouts, 2u);
}

TEST(OpOptionsDeadline, MwmrTimesOutWithoutQuorum) {
  Rig rig;
  sim::SimFarm farm;
  CrashMajority(farm, rig.cfg);
  core::MwmrAtomic reg(farm, rig.cfg, /*object=*/1, /*pid=*/1);
  EXPECT_EQ(reg.Write("v", OpOptions::WithDeadline(50ms)).code(),
            StatusCode::kTimeout);
  EXPECT_EQ(reg.Read(OpOptions::WithDeadline(50ms)).status().code(),
            StatusCode::kTimeout);
  EXPECT_GE(reg.op_metrics().deadline_timeouts, 2u);
}

TEST(OpOptionsDeadline, GenerousDeadlineSucceedsOnHealthyFarm) {
  Rig rig;
  sim::SimFarm farm;
  core::SwsrAtomicWriter writer(farm, rig.cfg, rig.regs, 1);
  core::SwmrAtomicReader reader(farm, rig.cfg, rig.regs, 2);
  ASSERT_TRUE(writer.Write("hello", OpOptions::WithDeadline(5000ms)).ok());
  auto v = reader.Read(OpOptions::WithDeadline(5000ms));
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(*v, "hello");

  core::MwmrAtomic mwmr(farm, rig.cfg, 2, 3);
  ASSERT_TRUE(mwmr.Write("mw", OpOptions::WithDeadline(5000ms)).ok());
  auto mv = mwmr.Read(OpOptions::WithDeadline(5000ms));
  ASSERT_TRUE(mv.ok());
  ASSERT_TRUE(mv->has_value());
  EXPECT_EQ(**mv, "mw");
}

TEST(InstrumentedAccessor, EveryEmulationAccountsForItsOps) {
  Rig rig;
  sim::SimFarm farm;
  core::SwsrAtomicWriter writer(farm, rig.cfg, rig.regs, 1);
  core::SwsrAtomicReader reader(farm, rig.cfg, rig.regs, 2);
  writer.Write("a");
  writer.Write("b");
  reader.Read();
  EXPECT_EQ(writer.op_metrics().writes, 2u);
  EXPECT_GE(writer.op_metrics().quorum_waits, 2u);
  EXPECT_EQ(reader.op_metrics().reads, 1u);

  core::MwmrAtomic mwmr(farm, rig.cfg, /*object=*/3, /*pid=*/4);
  mwmr.Write("v");
  mwmr.Read();
  const obs::PhaseCounters pc = mwmr.op_metrics();
  EXPECT_EQ(pc.writes, 1u);
  EXPECT_EQ(pc.reads, 1u);
  EXPECT_GE(pc.collects, 4u);  // >= one double-collect per operation
  EXPECT_GE(pc.sticky_sets, 1u);
  // The accessor agrees with the legacy snapshot_stats() surface.
  EXPECT_EQ(pc.collects, mwmr.snapshot_stats().collects);
  EXPECT_EQ(pc.adoptions, mwmr.snapshot_stats().adoptions);
}

}  // namespace
}  // namespace nadreg
