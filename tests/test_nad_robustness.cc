// Robustness tests for the TCP NAD daemon: malformed payloads, hostile
// frame lengths, raw-socket garbage, oversized values and many concurrent
// clients. The daemon must never crash and must keep serving well-formed
// traffic on other connections.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>

#include "common/sync.h"
#include "nad/client.h"
#include "nad/protocol.h"
#include "nad/server.h"
#include "nad/socket.h"

namespace nadreg::nad {
namespace {

using namespace std::chrono_literals;

struct OneDisk {
  std::unique_ptr<NadServer> server;
  OneDisk() {
    auto s = NadServer::Start({});
    EXPECT_TRUE(s.ok());
    server = std::move(*s);
  }
};

TEST(NadRobustness, GarbagePayloadIsIgnoredConnectionSurvives) {
  OneDisk disk;
  auto sock = Connect("127.0.0.1", disk.server->port());
  ASSERT_TRUE(sock.ok());
  // A well-framed but undecodable payload: server logs and continues.
  ASSERT_TRUE(SendFrame(*sock, "\xff\xff garbage \x01").ok());
  // The same connection still serves a valid request afterwards.
  Message req;
  req.type = MsgType::kReadReq;
  req.request_id = 7;
  req.reg = RegisterId{0, 0};
  ASSERT_TRUE(SendFrame(*sock, EncodeMessage(req)).ok());
  auto resp_payload = RecvFrame(*sock, kMaxFrameBytes);
  ASSERT_TRUE(resp_payload.ok());
  auto resp = DecodeMessage(*resp_payload);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->type, MsgType::kReadResp);
  EXPECT_EQ(resp->request_id, 7u);
}

TEST(NadRobustness, ResponseTypedMessageToServerIsDropped) {
  OneDisk disk;
  auto sock = Connect("127.0.0.1", disk.server->port());
  ASSERT_TRUE(sock.ok());
  Message bogus;
  bogus.type = MsgType::kReadResp;  // a response sent TO the server
  bogus.request_id = 1;
  bogus.value = "nonsense";
  ASSERT_TRUE(SendFrame(*sock, EncodeMessage(bogus)).ok());
  // Connection still alive and serving.
  Message req;
  req.type = MsgType::kWriteReq;
  req.request_id = 2;
  req.reg = RegisterId{0, 5};
  req.value = "after-bogus";
  ASSERT_TRUE(SendFrame(*sock, EncodeMessage(req)).ok());
  auto resp = RecvFrame(*sock, kMaxFrameBytes);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(disk.server->ServedCount(), 1u);
}

TEST(NadRobustness, HostileFrameLengthClosesOnlyThatConnection) {
  OneDisk disk;
  auto victim = Connect("127.0.0.1", disk.server->port());
  ASSERT_TRUE(victim.ok());
  // Claim a 1 GiB frame: the server must refuse rather than allocate.
  std::uint32_t huge = 1u << 30;
  char hdr[4];
  std::memcpy(hdr, &huge, 4);
  ASSERT_TRUE(SendAll(*victim, std::string_view(hdr, 4)).ok());
  // The hostile connection is dropped...
  auto dead = RecvFrame(*victim, kMaxFrameBytes);
  EXPECT_FALSE(dead.ok());
  // ...but a fresh connection works fine.
  auto healthy = Connect("127.0.0.1", disk.server->port());
  ASSERT_TRUE(healthy.ok());
  Message req;
  req.type = MsgType::kReadReq;
  req.request_id = 1;
  req.reg = RegisterId{0, 0};
  ASSERT_TRUE(SendFrame(*healthy, EncodeMessage(req)).ok());
  EXPECT_TRUE(RecvFrame(*healthy, kMaxFrameBytes).ok());
}

TEST(NadRobustness, OversizedValueRejectedClientSide) {
  OneDisk disk;
  auto client = NadClient::Connect(
      {{0, NadClient::Endpoint{"127.0.0.1", disk.server->port()}}});
  ASSERT_TRUE(client.ok());
  // Slightly under the frame cap: succeeds.
  Mutex mu;
  CondVar cv;
  bool ok_done = false;
  (*client)->IssueWrite(1, RegisterId{0, 0}, std::string(1 << 19, 'x'), [&] {
    MutexLock lock(mu);
    ok_done = true;
    cv.NotifyAll();
  });
  {
    MutexLock lock(mu);
    ASSERT_TRUE(cv.WaitFor(mu, 5000ms, [&] { return ok_done; }));
  }
  // Over the cap: rejected on the encode path before touching the wire —
  // the handler never runs, nothing is left in flight, and the same
  // connection keeps serving (no stream desync, no connection kill).
  std::atomic<bool> oversized_ran{false};
  (*client)->IssueWrite(1, RegisterId{0, 1}, std::string(kMaxFrameBytes, 'x'),
                        [&] { oversized_ran = true; });
  EXPECT_EQ((*client)->InFlight(), 0u);
  bool after_done = false;
  (*client)->IssueWrite(1, RegisterId{0, 2}, "still-alive", [&] {
    MutexLock lock(mu);
    after_done = true;
    cv.NotifyAll();
  });
  {
    MutexLock lock(mu);
    ASSERT_TRUE(cv.WaitFor(mu, 5000ms, [&] { return after_done; }));
  }
  EXPECT_FALSE(oversized_ran.load());
}

TEST(NadRobustness, ManyConcurrentClientsNoCrossTalk) {
  OneDisk disk;
  constexpr int kClients = 8;
  constexpr int kOps = 30;
  std::atomic<int> failures{0};
  std::vector<std::jthread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      auto client = NadClient::Connect(
          {{0, NadClient::Endpoint{"127.0.0.1", disk.server->port()}}});
      if (!client.ok()) {
        ++failures;
        return;
      }
      Mutex mu;
      CondVar cv;
      int done = 0;
      for (int i = 0; i < kOps; ++i) {
        // Each client owns its own block: values must never bleed across.
        (*client)->IssueWrite(static_cast<ProcessId>(c),
                              RegisterId{0, static_cast<BlockId>(c)},
                              "c" + std::to_string(c) + "." + std::to_string(i),
                              [&] {
                                MutexLock lock(mu);
                                ++done;
                                cv.NotifyAll();
                              });
      }
      MutexLock lock(mu);
      if (!cv.WaitFor(mu, 10000ms, [&] { return done == kOps; })) {
        ++failures;
        return;
      }
      std::string got;
      bool read_done = false;
      (*client)->IssueRead(static_cast<ProcessId>(c),
                           RegisterId{0, static_cast<BlockId>(c)},
                           [&](Value v) {
                             MutexLock lock2(mu);
                             got = std::move(v);
                             read_done = true;
                             cv.NotifyAll();
                           });
      if (!cv.WaitFor(mu, 10000ms, [&] { return read_done; })) {
        ++failures;
        return;
      }
      if (got != "c" + std::to_string(c) + "." + std::to_string(kOps - 1)) {
        ++failures;
      }
    });
  }
  threads.clear();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(disk.server->ServedCount(),
            static_cast<std::uint64_t>(kClients * (kOps + 1)));
}

}  // namespace
}  // namespace nadreg::nad
