// Tests for the Section 6 building blocks: one-shot registers, stable
// registers and sticky bits — including the reader write-back that makes
// them atomic, crash tolerance, and the single-write discipline.
#include "core/oneshot.h"

#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/config.h"
#include "sim/det_farm.h"
#include "sim/sim_farm.h"

namespace nadreg::core {
namespace {

using namespace std::chrono_literals;
using sim::DetFarm;
using sim::SimFarm;

struct Rig {
  FarmConfig farm_cfg{1};
  std::vector<RegisterId> regs = farm_cfg.Spread(7);
};

TEST(OneShot, InitialValueIsNullopt) {
  Rig rig;
  SimFarm farm;
  OneShotRegister reg(farm, rig.farm_cfg, rig.regs, 1);
  EXPECT_FALSE(reg.Read().has_value());
}

TEST(OneShot, WriteThenReadAcrossProcesses) {
  Rig rig;
  SimFarm farm;
  OneShotRegister writer(farm, rig.farm_cfg, rig.regs, 1);
  OneShotRegister reader(farm, rig.farm_cfg, rig.regs, 2);
  EXPECT_TRUE(writer.Write("once").ok());
  auto v = reader.Read();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, "once");
}

TEST(OneShot, SecondWriteRejectedLocally) {
  Rig rig;
  SimFarm farm;
  OneShotRegister reg(farm, rig.farm_cfg, rig.regs, 1);
  EXPECT_TRUE(reg.Write("v").ok());
  auto s = reg.Write("w");
  EXPECT_EQ(s.code(), StatusCode::kAlreadyWritten);
}

TEST(OneShot, EmptyValueRejected) {
  Rig rig;
  SimFarm farm;
  OneShotRegister reg(farm, rig.farm_cfg, rig.regs, 1);
  EXPECT_EQ(reg.Write("").code(), StatusCode::kInvalid);
}

TEST(OneShot, ToleratesOneCrashedDisk) {
  Rig rig;
  SimFarm farm;
  farm.CrashDisk(0);
  OneShotRegister writer(farm, rig.farm_cfg, rig.regs, 1);
  OneShotRegister reader(farm, rig.farm_cfg, rig.regs, 2);
  EXPECT_TRUE(writer.Write("survives").ok());
  auto v = reader.Read();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, "survives");
}

TEST(OneShot, GeneralizesToTEquals2) {
  FarmConfig cfg{2};
  auto regs = cfg.Spread(7);
  SimFarm farm;
  farm.CrashDisk(1);
  farm.CrashDisk(4);
  OneShotRegister writer(farm, cfg, regs, 1);
  OneShotRegister reader(farm, cfg, regs, 2);
  EXPECT_TRUE(writer.Write("t2").ok());
  auto v = reader.Read();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, "t2");
}

TEST(OneShot, ReaderWriteBackPinsTheValueForLaterReaders) {
  // The atomicity mechanism: a torn write (minority) observed by reader A
  // is written back by A before A returns, so reader B — even if steered
  // away from the writer's original copy — must still see it.
  Rig rig;
  DetFarm farm;
  OneShotRegister writer(farm, rig.farm_cfg, rig.regs, 1);
  OneShotRegister reader_a(farm, rig.farm_cfg, rig.regs, 2);
  OneShotRegister reader_b(farm, rig.farm_cfg, rig.regs, 3);

  // Writer reaches disk 0 only, then stalls (torn write).
  auto w = std::async(std::launch::async, [&] { return writer.Write("v"); });
  while (farm.Pending().size() < 3) std::this_thread::yield();
  farm.DeliverWhere([](const DetFarm::PendingOp& op) { return op.r.disk == 0; });

  // Reader A's quorum: disks {0,1} → sees v, writes back everywhere.
  auto ra = std::async(std::launch::async, [&] { return reader_a.Read(); });
  while (farm.PendingWhere([](const DetFarm::PendingOp& op) {
           return !op.is_write;
         }).size() < 3) {
    std::this_thread::yield();
  }
  farm.DeliverWhere([](const DetFarm::PendingOp& op) {
    return !op.is_write && op.r.disk != 2;
  });
  // A's write-back: let it land on disks 1 and 2 (NOT 0 — so B's evidence
  // can only come from the write-back, not the original write). A's disk-2
  // write-back is chained behind A's still-unserved disk-2 read, so keep
  // delivering A's non-disk-0 operations until A returns.
  while (ra.wait_for(1ms) != std::future_status::ready) {
    farm.DeliverWhere([](const DetFarm::PendingOp& op) {
      return op.p == 2 && op.r.disk != 0;
    });
  }
  auto va = ra.get();
  ASSERT_TRUE(va.has_value());
  EXPECT_EQ(*va, "v");

  // Reader B's quorum: disks {1,2} — both hold only A's write-back.
  auto rb = std::async(std::launch::async, [&] { return reader_b.Read(); });
  while (rb.wait_for(1ms) != std::future_status::ready) {
    farm.DeliverWhere([](const DetFarm::PendingOp& op) {
      return op.p == 3 && op.r.disk != 0;
    });
  }
  auto vb = rb.get();
  ASSERT_TRUE(vb.has_value());
  EXPECT_EQ(*vb, "v");

  // Cleanup: finish the writer.
  farm.DeliverAll();
  EXPECT_TRUE(w.get().ok());
}

TEST(OneShot, TornWriteMayReadAsInitialButNeverFlips) {
  // A reader whose quorum misses a torn write may return "initial" — that
  // is linearizable (the WRITE has not completed). But once ANY reader
  // returned v, no later reader may return initial. We exercise the first
  // half here; the second is ReaderWriteBackPinsTheValueForLaterReaders.
  Rig rig;
  DetFarm farm;
  OneShotRegister writer(farm, rig.farm_cfg, rig.regs, 1);
  OneShotRegister reader(farm, rig.farm_cfg, rig.regs, 2);

  auto w = std::async(std::launch::async, [&] { return writer.Write("v"); });
  while (farm.Pending().size() < 3) std::this_thread::yield();
  farm.DeliverWhere([](const DetFarm::PendingOp& op) { return op.r.disk == 0; });

  auto r = std::async(std::launch::async, [&] { return reader.Read(); });
  while (r.wait_for(1ms) != std::future_status::ready) {
    farm.DeliverWhere([](const DetFarm::PendingOp& op) {
      return !op.is_write && op.r.disk != 0;
    });
  }
  EXPECT_FALSE(r.get().has_value());
  farm.DeliverAll();
  EXPECT_TRUE(w.get().ok());
}

TEST(StableRegister, ManyWritersSameValue) {
  Rig rig;
  SimFarm farm;
  std::vector<std::jthread> writers;
  for (ProcessId p = 1; p <= 6; ++p) {
    writers.emplace_back([&, p] {
      StableRegister reg(farm, rig.farm_cfg, rig.regs, p);
      reg.Write("the-one-value");
    });
  }
  writers.clear();
  StableRegister reader(farm, rig.farm_cfg, rig.regs, 99);
  auto v = reader.Read();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, "the-one-value");
}

TEST(StableRegister, CachesOnceKnown) {
  Rig rig;
  SimFarm farm;
  StableRegister reg(farm, rig.farm_cfg, rig.regs, 1);
  reg.Write("v");
  auto issued_after_write = farm.stats().TotalIssued();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(*reg.Read(), "v");
  // No further base-register traffic: the value is stable.
  EXPECT_EQ(farm.stats().TotalIssued(), issued_after_write);
  // Redundant writes are also skipped.
  reg.Write("v");
  EXPECT_EQ(farm.stats().TotalIssued(), issued_after_write);
}

TEST(StickyBit, SetAndTest) {
  Rig rig;
  SimFarm farm;
  StickyBit bit_a(farm, rig.farm_cfg, rig.regs, 1);
  StickyBit bit_b(farm, rig.farm_cfg, rig.regs, 2);
  EXPECT_FALSE(bit_b.IsSet());
  bit_a.Set();
  EXPECT_TRUE(bit_b.IsSet());
  EXPECT_TRUE(bit_b.KnownSet());
  EXPECT_TRUE(bit_a.IsSet());
}

TEST(StickyBit, DistinctBlocksAreDistinctBits) {
  FarmConfig cfg{1};
  SimFarm farm;
  StickyBit a(farm, cfg, cfg.Spread(1), 1);
  StickyBit b(farm, cfg, cfg.Spread(2), 1);
  a.Set();
  EXPECT_TRUE(StickyBit(farm, cfg, cfg.Spread(1), 2).IsSet());
  EXPECT_FALSE(StickyBit(farm, cfg, cfg.Spread(2), 2).IsSet());
  (void)b;
}

TEST(StickyBit, SurvivesDiskCrashAfterSet) {
  Rig rig;
  SimFarm farm;
  StickyBit setter(farm, rig.farm_cfg, rig.regs, 1);
  setter.Set();
  farm.CrashDisk(2);
  StickyBit tester(farm, rig.farm_cfg, rig.regs, 2);
  EXPECT_TRUE(tester.IsSet());
}

TEST(StableRegister, SplitPhaseReadMatchesRead) {
  Rig rig;
  SimFarm farm;
  StableRegister writer(farm, rig.farm_cfg, rig.regs, 1);
  StableRegister reader(farm, rig.farm_cfg, rig.regs, 2);
  // Unwritten: split-phase read returns nullopt.
  auto r0 = reader.BeginRead();
  EXPECT_FALSE(reader.FinishRead(r0).has_value());
  writer.Write("v");
  auto r1 = reader.BeginRead();
  auto v1 = reader.FinishRead(r1);
  ASSERT_TRUE(v1.has_value());
  EXPECT_EQ(*v1, "v");
  // Cached afterwards: Begin/Finish short-circuit without base traffic.
  const auto issued = farm.stats().TotalIssued();
  auto r2 = reader.BeginRead();
  EXPECT_EQ(*reader.FinishRead(r2), "v");
  EXPECT_EQ(farm.stats().TotalIssued(), issued);
}

TEST(StableRegister, ManyConcurrentSplitPhaseReads) {
  // The pipelining pattern: begin N reads over distinct registers, then
  // finish them all — results identical to sequential reads.
  FarmConfig cfg{1};
  SimFarm farm;
  constexpr int kBits = 20;
  std::vector<std::unique_ptr<StableRegister>> regs;
  for (BlockId b = 0; b < kBits; ++b) {
    regs.push_back(
        std::make_unique<StableRegister>(farm, cfg, cfg.Spread(b), 1));
    if (b % 2 == 0) regs.back()->Write("set-" + std::to_string(b));
  }
  std::vector<std::unique_ptr<StableRegister>> readers;
  std::vector<StableRegister::InFlightRead> reads;
  for (BlockId b = 0; b < kBits; ++b) {
    readers.push_back(
        std::make_unique<StableRegister>(farm, cfg, cfg.Spread(b), 2));
    reads.push_back(readers.back()->BeginRead());
  }
  for (int b = 0; b < kBits; ++b) {
    auto v = readers[b]->FinishRead(reads[b]);
    if (b % 2 == 0) {
      ASSERT_TRUE(v.has_value());
      EXPECT_EQ(*v, "set-" + std::to_string(b));
    } else {
      EXPECT_FALSE(v.has_value());
    }
  }
}

TEST(StickyBit, SplitPhaseSetIsVisibleOnFinish) {
  Rig rig;
  SimFarm farm;
  StickyBit setter(farm, rig.farm_cfg, rig.regs, 1);
  auto w = setter.BeginSet();
  setter.FinishSet(w);
  StickyBit tester(farm, rig.farm_cfg, rig.regs, 2);
  EXPECT_TRUE(tester.IsSet());
}

TEST(StickyBit, ParallelSplitPhaseSetsAllLand) {
  FarmConfig cfg{1};
  SimFarm farm;
  constexpr int kBits = 30;
  std::vector<std::unique_ptr<StickyBit>> bits;
  std::vector<StickyBit::InFlightWrite> writes;
  for (BlockId b = 0; b < kBits; ++b) {
    bits.push_back(std::make_unique<StickyBit>(farm, cfg, cfg.Spread(b), 1));
    writes.push_back(bits.back()->BeginSet());
  }
  for (int b = 0; b < kBits; ++b) bits[b]->FinishSet(writes[b]);
  for (BlockId b = 0; b < kBits; ++b) {
    StickyBit t(farm, cfg, cfg.Spread(b), 2);
    EXPECT_TRUE(t.IsSet()) << "bit " << b;
  }
}

TEST(OneShot, ConcurrentReadersAgreeOnValue) {
  for (std::uint64_t seed : {31u, 32u, 33u}) {
    Rig rig;
    SimFarm::Options o;
    o.seed = seed;
    o.max_delay_us = 100;
    SimFarm farm(o);
    OneShotRegister writer(farm, rig.farm_cfg, rig.regs, 1);

    std::atomic<int> saw_value{0};
    std::vector<std::jthread> readers;
    for (ProcessId p = 2; p <= 9; ++p) {
      readers.emplace_back([&, p] {
        OneShotRegister r(farm, rig.farm_cfg, rig.regs, p);
        auto v = r.Read();
        if (v) {
          EXPECT_EQ(*v, "race");
          ++saw_value;
        }
      });
    }
    // A racing reader that adopted the torn value may complete the write
    // first; either way the value below must be pinned.
    (void)writer.Write("race");
    readers.clear();
    // After the write completed, every subsequent read must see it.
    OneShotRegister late(farm, rig.farm_cfg, rig.regs, 50);
    auto v = late.Read();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, "race");
  }
}

}  // namespace
}  // namespace nadreg::core
