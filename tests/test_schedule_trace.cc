// Tests for the persistent schedule-trace format: exact line rendering,
// text round-trips, file round-trips, and line-numbered parse errors.
#include "sim/schedule_trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

namespace nadreg::sim {
namespace {

Decision Deliver(ProcessId p, DiskId d, BlockId b, bool is_write) {
  Decision out;
  out.kind = Decision::Kind::kDeliver;
  out.p = p;
  out.r = RegisterId{d, b};
  out.is_write = is_write;
  return out;
}

Decision Drop(ProcessId p, DiskId d, BlockId b, bool is_write) {
  Decision out = Deliver(p, d, b, is_write);
  out.kind = Decision::Kind::kDrop;
  return out;
}

Decision Crash(DiskId d, BlockId b) {
  Decision out;
  out.kind = Decision::Kind::kCrash;
  out.r = RegisterId{d, b};
  return out;
}

TEST(ScheduleTrace, FormatsEachDecisionKind) {
  EXPECT_EQ(FormatDecision(Deliver(1, 0, 7, true)), "deliver p1 write 0:7");
  EXPECT_EQ(FormatDecision(Deliver(99, 2, 7, false)), "deliver p99 read 2:7");
  EXPECT_EQ(FormatDecision(Drop(2, 1, 7, true)), "drop p2 write 1:7");
  EXPECT_EQ(FormatDecision(Crash(1, 7)), "crash-register 1:7");
}

TEST(ScheduleTrace, FaultDecisionPredicate) {
  EXPECT_FALSE(IsFaultDecision(Deliver(1, 0, 7, true)));
  EXPECT_TRUE(IsFaultDecision(Drop(1, 0, 7, true)));
  EXPECT_TRUE(IsFaultDecision(Crash(0, 7)));
}

TEST(ScheduleTrace, TextRoundTripPreservesEverything) {
  ScheduleTrace trace;
  trace.scenario = "mwsr-as-atomic";
  trace.decisions = {Deliver(1, 0, 7, true), Crash(1, 7),
                     Drop(2, 2, 7, true), Deliver(99, 0, 7, false)};
  const std::string text = FormatTrace(trace);
  EXPECT_NE(text.find("# nadreg schedule trace v1"), std::string::npos);
  auto parsed = ParseTrace(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  EXPECT_EQ(parsed->scenario, trace.scenario);
  EXPECT_EQ(parsed->decisions, trace.decisions);
}

TEST(ScheduleTrace, ParsesCommentsBlanksAndNoScenario) {
  const std::string text =
      "# a comment\n"
      "\n"
      "deliver p1 write 0:7  # trailing comment\n"
      "crash-register 2:7\n";
  auto parsed = ParseTrace(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  EXPECT_TRUE(parsed->scenario.empty());
  const std::vector<Decision> want = {Deliver(1, 0, 7, true), Crash(2, 7)};
  EXPECT_EQ(parsed->decisions, want);
}

TEST(ScheduleTrace, RejectsMalformedLinesWithLineNumbers) {
  struct Case {
    const char* text;
    const char* needle;  // must appear in the error message
  };
  const Case cases[] = {
      {"bogus p1 write 0:7\n", "unknown decision"},
      {"deliver q1 write 0:7\n", "bad process token"},
      {"deliver p1 sideways 0:7\n", "bad direction"},
      {"deliver p1 write 07\n", "register"},
      {"deliver p1 write\n", "wants"},
      {"crash-register\n", "wants"},
      {"scenario a b\n", "scenario wants one name"},
  };
  for (const auto& c : cases) {
    auto parsed = ParseTrace(std::string("deliver p1 read 0:7\n") + c.text);
    ASSERT_FALSE(parsed.ok()) << c.text;
    EXPECT_NE(parsed.status().message().find(c.needle), std::string::npos)
        << "error for '" << c.text << "' was: " << parsed.status().message();
    // The offending line is line 2 of the assembled input.
    EXPECT_NE(parsed.status().message().find("line 2"), std::string::npos)
        << parsed.status().message();
  }
}

TEST(ScheduleTrace, RejectsDuplicateScenarioLine) {
  auto parsed = ParseTrace("scenario a\nscenario b\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("duplicate scenario"),
            std::string::npos)
      << parsed.status().message();
  EXPECT_NE(parsed.status().message().find("line 2"), std::string::npos);
}

TEST(ScheduleTrace, FileRoundTrip) {
  ScheduleTrace trace;
  trace.scenario = "swsr";
  trace.decisions = {Deliver(1, 0, 7, true), Deliver(2, 1, 7, false)};
  const std::string path = testing::TempDir() + "/trace_roundtrip.txt";
  ASSERT_TRUE(SaveTraceFile(trace, path).ok());
  auto loaded = LoadTraceFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  EXPECT_EQ(loaded->scenario, trace.scenario);
  EXPECT_EQ(loaded->decisions, trace.decisions);
  std::remove(path.c_str());
}

TEST(ScheduleTrace, LoadMissingFileIsUnavailable) {
  auto loaded = LoadTraceFile("/nonexistent/definitely/missing.trace");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kUnavailable);
}

}  // namespace
}  // namespace nadreg::sim
