// Unit tests for the NAD wire protocol: roundtrips of all four message
// types, rejection of malformed payloads, fuzz totality.
#include "nad/protocol.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace nadreg::nad {
namespace {

TEST(Protocol, ReadReqRoundtrip) {
  Message m;
  m.type = MsgType::kReadReq;
  m.request_id = 42;
  m.reg = RegisterId{3, 0x123456789abcULL};
  auto decoded = DecodeMessage(EncodeMessage(m));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, m);
}

TEST(Protocol, WriteReqRoundtrip) {
  Message m;
  m.type = MsgType::kWriteReq;
  m.request_id = 7;
  m.reg = RegisterId{0, 9};
  m.value = std::string("binary\0data", 11);
  auto decoded = DecodeMessage(EncodeMessage(m));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, m);
}

TEST(Protocol, ReadRespRoundtrip) {
  Message m;
  m.type = MsgType::kReadResp;
  m.request_id = 99;
  m.value = "the block contents";
  auto decoded = DecodeMessage(EncodeMessage(m));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, m);
}

TEST(Protocol, WriteRespRoundtrip) {
  Message m;
  m.type = MsgType::kWriteResp;
  m.request_id = 1;
  auto decoded = DecodeMessage(EncodeMessage(m));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, m);
}

TEST(Protocol, UnknownTypeRejected) {
  std::string payload = EncodeMessage(Message{});
  payload[0] = 0x7f;
  EXPECT_FALSE(DecodeMessage(payload).ok());
  payload[0] = 0;
  EXPECT_FALSE(DecodeMessage(payload).ok());
}

TEST(Protocol, TruncationRejected) {
  Message m;
  m.type = MsgType::kWriteReq;
  m.request_id = 7;
  m.reg = RegisterId{1, 2};
  m.value = "value";
  std::string payload = EncodeMessage(m);
  for (std::size_t cut = 0; cut < payload.size(); ++cut) {
    EXPECT_FALSE(DecodeMessage(payload.substr(0, cut)).ok())
        << "cut at " << cut;
  }
}

TEST(Protocol, TrailingBytesRejected) {
  std::string payload = EncodeMessage(Message{});
  payload += "x";
  EXPECT_FALSE(DecodeMessage(payload).ok());
}

TEST(Protocol, FuzzDecodeIsTotal) {
  Rng rng(777);
  for (int i = 0; i < 2000; ++i) {
    std::string garbage;
    const std::size_t len = rng.Below(40);
    for (std::size_t j = 0; j < len; ++j) {
      garbage.push_back(static_cast<char>(rng.Below(256)));
    }
    auto m = DecodeMessage(garbage);
    if (m.ok()) {
      EXPECT_EQ(EncodeMessage(*m), garbage);
    }
  }
}

}  // namespace
}  // namespace nadreg::nad
