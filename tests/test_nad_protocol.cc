// Unit tests for the NAD wire protocol: roundtrips of all four message
// types, rejection of malformed payloads, fuzz totality.
#include "nad/protocol.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace nadreg::nad {
namespace {

TEST(Protocol, ReadReqRoundtrip) {
  Message m;
  m.type = MsgType::kReadReq;
  m.request_id = 42;
  m.reg = RegisterId{3, 0x123456789abcULL};
  auto decoded = DecodeMessage(EncodeMessage(m));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, m);
}

TEST(Protocol, WriteReqRoundtrip) {
  Message m;
  m.type = MsgType::kWriteReq;
  m.request_id = 7;
  m.reg = RegisterId{0, 9};
  m.value = std::string("binary\0data", 11);
  auto decoded = DecodeMessage(EncodeMessage(m));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, m);
}

TEST(Protocol, ReadRespRoundtrip) {
  Message m;
  m.type = MsgType::kReadResp;
  m.request_id = 99;
  m.value = "the block contents";
  auto decoded = DecodeMessage(EncodeMessage(m));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, m);
}

TEST(Protocol, WriteRespRoundtrip) {
  Message m;
  m.type = MsgType::kWriteResp;
  m.request_id = 1;
  auto decoded = DecodeMessage(EncodeMessage(m));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, m);
}

TEST(Protocol, UnknownTypeRejected) {
  std::string payload = EncodeMessage(Message{});
  payload[0] = 0x7f;
  EXPECT_FALSE(DecodeMessage(payload).ok());
  payload[0] = 0;
  EXPECT_FALSE(DecodeMessage(payload).ok());
}

TEST(Protocol, TruncationRejected) {
  Message m;
  m.type = MsgType::kWriteReq;
  m.request_id = 7;
  m.reg = RegisterId{1, 2};
  m.value = "value";
  std::string payload = EncodeMessage(m);
  for (std::size_t cut = 0; cut < payload.size(); ++cut) {
    EXPECT_FALSE(DecodeMessage(payload.substr(0, cut)).ok())
        << "cut at " << cut;
  }
}

TEST(Protocol, TrailingBytesRejected) {
  std::string payload = EncodeMessage(Message{});
  payload += "x";
  EXPECT_FALSE(DecodeMessage(payload).ok());
}

Message MakeRead(std::uint64_t id, DiskId d, BlockId b) {
  Message m;
  m.type = MsgType::kReadReq;
  m.request_id = id;
  m.reg = RegisterId{d, b};
  return m;
}

Message MakeWrite(std::uint64_t id, DiskId d, BlockId b, std::string v) {
  Message m;
  m.type = MsgType::kWriteReq;
  m.request_id = id;
  m.reg = RegisterId{d, b};
  m.value = std::move(v);
  return m;
}

TEST(Protocol, BatchReqRoundtrip) {
  Message batch;
  batch.type = MsgType::kBatchReq;
  batch.subs.push_back(MakeRead(1, 0, 7));
  batch.subs.push_back(MakeWrite(2, 3, 9, std::string("mixed\0payload", 13)));
  batch.subs.push_back(MakeRead(3, 2, 0));
  auto decoded = DecodeMessage(EncodeMessage(batch));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(*decoded, batch);
}

TEST(Protocol, BatchRespRoundtrip) {
  Message batch;
  batch.type = MsgType::kBatchResp;
  Message r1;
  r1.type = MsgType::kReadResp;
  r1.request_id = 11;
  r1.value = "block contents";
  Message r2;
  r2.type = MsgType::kWriteResp;
  r2.request_id = 12;
  batch.subs = {r1, r2};
  auto decoded = DecodeMessage(EncodeMessage(batch));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, batch);
}

TEST(Protocol, EmptyBatchRoundtrips) {
  Message batch;
  batch.type = MsgType::kBatchReq;
  auto decoded = DecodeMessage(EncodeMessage(batch));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->subs.empty());
}

TEST(Protocol, BatchRejectsWrongSubTypes) {
  // A response inside a request batch.
  Message batch;
  batch.type = MsgType::kBatchReq;
  Message resp;
  resp.type = MsgType::kReadResp;
  resp.request_id = 1;
  batch.subs = {resp};
  EXPECT_FALSE(DecodeMessage(EncodeMessage(batch)).ok());
  // A request inside a response batch.
  batch.type = MsgType::kBatchResp;
  batch.subs = {MakeRead(1, 0, 0)};
  EXPECT_FALSE(DecodeMessage(EncodeMessage(batch)).ok());
  // STATS never rides in a batch.
  Message stats;
  stats.type = MsgType::kStatsReq;
  batch.type = MsgType::kBatchReq;
  batch.subs = {stats};
  EXPECT_FALSE(DecodeMessage(EncodeMessage(batch)).ok());
}

TEST(Protocol, NestedBatchRejected) {
  Message inner;
  inner.type = MsgType::kBatchReq;
  inner.subs.push_back(MakeRead(1, 0, 0));
  Message outer;
  outer.type = MsgType::kBatchReq;
  outer.subs.push_back(inner);
  EXPECT_FALSE(DecodeMessage(EncodeMessage(outer)).ok());
}

TEST(Protocol, BatchTruncationRejectedAtEveryCut) {
  Message batch;
  batch.type = MsgType::kBatchReq;
  batch.subs.push_back(MakeWrite(5, 1, 2, "vv"));
  batch.subs.push_back(MakeRead(6, 0, 3));
  std::string payload = EncodeMessage(batch);
  for (std::size_t cut = 0; cut < payload.size(); ++cut) {
    EXPECT_FALSE(DecodeMessage(payload.substr(0, cut)).ok()) << "cut " << cut;
  }
}

TEST(Protocol, BatchHostileCountRejected) {
  // A count far beyond what the payload can carry must fail cleanly
  // (never over-reserve, never read past the end).
  Message batch;
  batch.type = MsgType::kBatchReq;
  batch.subs.push_back(MakeRead(1, 0, 0));
  std::string payload = EncodeMessage(batch);
  // Count field sits right after type (1) + request id (8).
  payload[9] = '\xff';
  payload[10] = '\xff';
  payload[11] = '\xff';
  payload[12] = '\xff';
  EXPECT_FALSE(DecodeMessage(payload).ok());
}

TEST(Protocol, BatchFuzzDecodeIsTotalAndCanonical) {
  Rng rng(4242);
  for (int i = 0; i < 2000; ++i) {
    // Start from a valid batch, then flip random bytes: decode must stay
    // total, and anything accepted must re-encode identically.
    Message batch;
    batch.type = rng.Below(2) == 0 ? MsgType::kBatchReq : MsgType::kBatchResp;
    const std::size_t n = rng.Below(4);
    for (std::size_t j = 0; j < n; ++j) {
      Message sub;
      if (batch.type == MsgType::kBatchReq) {
        sub = rng.Below(2) == 0 ? MakeRead(j, 0, j) : MakeWrite(j, 1, j, "x");
      } else {
        sub.type = rng.Below(2) == 0 ? MsgType::kReadResp : MsgType::kWriteResp;
        sub.request_id = j;
        if (sub.type == MsgType::kReadResp) sub.value = "y";
      }
      batch.subs.push_back(std::move(sub));
    }
    std::string payload = EncodeMessage(batch);
    const std::size_t flips = 1 + rng.Below(4);
    for (std::size_t f = 0; f < flips && !payload.empty(); ++f) {
      payload[rng.Below(payload.size())] = static_cast<char>(rng.Below(256));
    }
    auto m = DecodeMessage(payload);
    if (m.ok()) {
      EXPECT_EQ(EncodeMessage(*m), payload);
    }
  }
}

TEST(Protocol, CheckedEncodeRejectsOversizedWrite) {
  // A write whose frame would blow the cap fails fast with kInvalid on
  // the encode path — it must never hit the wire and desynchronize or
  // kill the connection at the server's decode guard.
  Message big = MakeWrite(1, 0, 0, std::string(kMaxFrameBytes, 'x'));
  auto encoded = EncodeMessageChecked(big);
  ASSERT_FALSE(encoded.ok());
  EXPECT_EQ(encoded.status().code(), StatusCode::kInvalid);
}

TEST(Protocol, CheckedEncodeAcceptsLargestFramableWrite) {
  Message fits =
      MakeWrite(1, 0, 0, std::string(kMaxFrameBytes - kWriteReqOverhead, 'x'));
  auto encoded = EncodeMessageChecked(fits);
  ASSERT_TRUE(encoded.ok()) << encoded.status().ToString();
  EXPECT_EQ(encoded->size(), kMaxFrameBytes);
  // One byte more can never be framed.
  Message over = MakeWrite(
      1, 0, 0, std::string(kMaxFrameBytes - kWriteReqOverhead + 1, 'x'));
  EXPECT_FALSE(EncodeMessageChecked(over).ok());
}

TEST(Protocol, FuzzDecodeIsTotal) {
  Rng rng(777);
  for (int i = 0; i < 2000; ++i) {
    std::string garbage;
    const std::size_t len = rng.Below(40);
    for (std::size_t j = 0; j < len; ++j) {
      garbage.push_back(static_cast<char>(rng.Below(256)));
    }
    auto m = DecodeMessage(garbage);
    if (m.ok()) {
      EXPECT_EQ(EncodeMessage(*m), garbage);
    }
  }
}

}  // namespace
}  // namespace nadreg::nad
