// Unit tests for the NAD wire protocol: roundtrips of all message
// types, rejection of malformed payloads, fuzz totality — and the
// zero-copy surface (FrameWriter / DecodeMessageView) checked
// byte-for-byte against the materializing EncodeMessage/DecodeMessage
// golden pair.
#include "nad/protocol.h"

#include <gtest/gtest.h>

#include <cstring>
#include <utility>

#include "common/rng.h"
#include "nad/socket.h"

namespace nadreg::nad {
namespace {

TEST(Protocol, ReadReqRoundtrip) {
  Message m;
  m.type = MsgType::kReadReq;
  m.request_id = 42;
  m.reg = RegisterId{3, 0x123456789abcULL};
  auto decoded = DecodeMessage(EncodeMessage(m));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, m);
}

TEST(Protocol, WriteReqRoundtrip) {
  Message m;
  m.type = MsgType::kWriteReq;
  m.request_id = 7;
  m.reg = RegisterId{0, 9};
  m.value = std::string("binary\0data", 11);
  auto decoded = DecodeMessage(EncodeMessage(m));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, m);
}

TEST(Protocol, ReadRespRoundtrip) {
  Message m;
  m.type = MsgType::kReadResp;
  m.request_id = 99;
  m.value = "the block contents";
  auto decoded = DecodeMessage(EncodeMessage(m));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, m);
}

TEST(Protocol, WriteRespRoundtrip) {
  Message m;
  m.type = MsgType::kWriteResp;
  m.request_id = 1;
  auto decoded = DecodeMessage(EncodeMessage(m));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, m);
}

TEST(Protocol, MergeReqRoundtrip) {
  Message m;
  m.type = MsgType::kMergeReq;
  m.request_id = 21;
  m.reg = RegisterId{5, 0xbeefULL};
  m.value = std::string("coded\0delta", 11);
  auto decoded = DecodeMessage(EncodeMessage(m));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(*decoded, m);
}

TEST(Protocol, MergeRespRoundtrip) {
  Message m;
  m.type = MsgType::kMergeResp;
  m.request_id = 22;
  auto decoded = DecodeMessage(EncodeMessage(m));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, m);
}

TEST(Protocol, MergeIsBatchable) {
  Message batch;
  batch.type = MsgType::kBatchReq;
  Message merge;
  merge.type = MsgType::kMergeReq;
  merge.request_id = 4;
  merge.reg = RegisterId{1, 2};
  merge.value = "delta bytes";
  Message read;
  read.type = MsgType::kReadReq;
  read.request_id = 1;
  read.reg = RegisterId{0, 7};
  batch.subs.push_back(read);
  batch.subs.push_back(merge);
  auto decoded = DecodeMessage(EncodeMessage(batch));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(*decoded, batch);

  Message resp;
  resp.type = MsgType::kBatchResp;
  Message mr;
  mr.type = MsgType::kMergeResp;
  mr.request_id = 4;
  resp.subs = {mr};
  auto decoded_resp = DecodeMessage(EncodeMessage(resp));
  ASSERT_TRUE(decoded_resp.ok());
  EXPECT_EQ(*decoded_resp, resp);
}

TEST(Protocol, UnknownTypeRejected) {
  std::string payload = EncodeMessage(Message{});
  payload[0] = 0x7f;
  EXPECT_FALSE(DecodeMessage(payload).ok());
  payload[0] = 0;
  EXPECT_FALSE(DecodeMessage(payload).ok());
}

TEST(Protocol, TruncationRejected) {
  Message m;
  m.type = MsgType::kWriteReq;
  m.request_id = 7;
  m.reg = RegisterId{1, 2};
  m.value = "value";
  std::string payload = EncodeMessage(m);
  for (std::size_t cut = 0; cut < payload.size(); ++cut) {
    EXPECT_FALSE(DecodeMessage(payload.substr(0, cut)).ok())
        << "cut at " << cut;
  }
}

TEST(Protocol, TrailingBytesRejected) {
  std::string payload = EncodeMessage(Message{});
  payload += "x";
  EXPECT_FALSE(DecodeMessage(payload).ok());
}

Message MakeRead(std::uint64_t id, DiskId d, BlockId b) {
  Message m;
  m.type = MsgType::kReadReq;
  m.request_id = id;
  m.reg = RegisterId{d, b};
  return m;
}

Message MakeWrite(std::uint64_t id, DiskId d, BlockId b, std::string v) {
  Message m;
  m.type = MsgType::kWriteReq;
  m.request_id = id;
  m.reg = RegisterId{d, b};
  m.value = std::move(v);
  return m;
}

TEST(Protocol, BatchReqRoundtrip) {
  Message batch;
  batch.type = MsgType::kBatchReq;
  batch.subs.push_back(MakeRead(1, 0, 7));
  batch.subs.push_back(MakeWrite(2, 3, 9, std::string("mixed\0payload", 13)));
  batch.subs.push_back(MakeRead(3, 2, 0));
  auto decoded = DecodeMessage(EncodeMessage(batch));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(*decoded, batch);
}

TEST(Protocol, BatchRespRoundtrip) {
  Message batch;
  batch.type = MsgType::kBatchResp;
  Message r1;
  r1.type = MsgType::kReadResp;
  r1.request_id = 11;
  r1.value = "block contents";
  Message r2;
  r2.type = MsgType::kWriteResp;
  r2.request_id = 12;
  batch.subs = {r1, r2};
  auto decoded = DecodeMessage(EncodeMessage(batch));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, batch);
}

TEST(Protocol, EmptyBatchRoundtrips) {
  Message batch;
  batch.type = MsgType::kBatchReq;
  auto decoded = DecodeMessage(EncodeMessage(batch));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->subs.empty());
}

TEST(Protocol, BatchRejectsWrongSubTypes) {
  // A response inside a request batch.
  Message batch;
  batch.type = MsgType::kBatchReq;
  Message resp;
  resp.type = MsgType::kReadResp;
  resp.request_id = 1;
  batch.subs = {resp};
  EXPECT_FALSE(DecodeMessage(EncodeMessage(batch)).ok());
  // A request inside a response batch.
  batch.type = MsgType::kBatchResp;
  batch.subs = {MakeRead(1, 0, 0)};
  EXPECT_FALSE(DecodeMessage(EncodeMessage(batch)).ok());
  // STATS never rides in a batch.
  Message stats;
  stats.type = MsgType::kStatsReq;
  batch.type = MsgType::kBatchReq;
  batch.subs = {stats};
  EXPECT_FALSE(DecodeMessage(EncodeMessage(batch)).ok());
}

TEST(Protocol, NestedBatchRejected) {
  Message inner;
  inner.type = MsgType::kBatchReq;
  inner.subs.push_back(MakeRead(1, 0, 0));
  Message outer;
  outer.type = MsgType::kBatchReq;
  outer.subs.push_back(inner);
  EXPECT_FALSE(DecodeMessage(EncodeMessage(outer)).ok());
}

TEST(Protocol, BatchTruncationRejectedAtEveryCut) {
  Message batch;
  batch.type = MsgType::kBatchReq;
  batch.subs.push_back(MakeWrite(5, 1, 2, "vv"));
  batch.subs.push_back(MakeRead(6, 0, 3));
  std::string payload = EncodeMessage(batch);
  for (std::size_t cut = 0; cut < payload.size(); ++cut) {
    EXPECT_FALSE(DecodeMessage(payload.substr(0, cut)).ok()) << "cut " << cut;
  }
}

TEST(Protocol, BatchHostileCountRejected) {
  // A count far beyond what the payload can carry must fail cleanly
  // (never over-reserve, never read past the end).
  Message batch;
  batch.type = MsgType::kBatchReq;
  batch.subs.push_back(MakeRead(1, 0, 0));
  std::string payload = EncodeMessage(batch);
  // Count field sits right after type (1) + request id (8).
  payload[9] = '\xff';
  payload[10] = '\xff';
  payload[11] = '\xff';
  payload[12] = '\xff';
  EXPECT_FALSE(DecodeMessage(payload).ok());
}

TEST(Protocol, BatchFuzzDecodeIsTotalAndCanonical) {
  Rng rng(4242);
  for (int i = 0; i < 2000; ++i) {
    // Start from a valid batch, then flip random bytes: decode must stay
    // total, and anything accepted must re-encode identically.
    Message batch;
    batch.type = rng.Below(2) == 0 ? MsgType::kBatchReq : MsgType::kBatchResp;
    const std::size_t n = rng.Below(4);
    for (std::size_t j = 0; j < n; ++j) {
      Message sub;
      if (batch.type == MsgType::kBatchReq) {
        sub = rng.Below(2) == 0 ? MakeRead(j, 0, j) : MakeWrite(j, 1, j, "x");
      } else {
        sub.type = rng.Below(2) == 0 ? MsgType::kReadResp : MsgType::kWriteResp;
        sub.request_id = j;
        if (sub.type == MsgType::kReadResp) sub.value = "y";
      }
      batch.subs.push_back(std::move(sub));
    }
    std::string payload = EncodeMessage(batch);
    const std::size_t flips = 1 + rng.Below(4);
    for (std::size_t f = 0; f < flips && !payload.empty(); ++f) {
      payload[rng.Below(payload.size())] = static_cast<char>(rng.Below(256));
    }
    auto m = DecodeMessage(payload);
    if (m.ok()) {
      EXPECT_EQ(EncodeMessage(*m), payload);
    }
  }
}

TEST(Protocol, CheckedEncodeRejectsOversizedWrite) {
  // A write whose frame would blow the cap fails fast with kInvalid on
  // the encode path — it must never hit the wire and desynchronize or
  // kill the connection at the server's decode guard.
  Message big = MakeWrite(1, 0, 0, std::string(kMaxFrameBytes, 'x'));
  auto encoded = EncodeMessageChecked(big);
  ASSERT_FALSE(encoded.ok());
  EXPECT_EQ(encoded.status().code(), StatusCode::kInvalid);
}

TEST(Protocol, CheckedEncodeAcceptsLargestFramableWrite) {
  Message fits =
      MakeWrite(1, 0, 0, std::string(kMaxFrameBytes - kWriteReqOverhead, 'x'));
  auto encoded = EncodeMessageChecked(fits);
  ASSERT_TRUE(encoded.ok()) << encoded.status().ToString();
  EXPECT_EQ(encoded->size(), kMaxFrameBytes);
  // One byte more can never be framed.
  Message over = MakeWrite(
      1, 0, 0, std::string(kMaxFrameBytes - kWriteReqOverhead + 1, 'x'));
  EXPECT_FALSE(EncodeMessageChecked(over).ok());
}

TEST(Protocol, FuzzDecodeIsTotal) {
  Rng rng(777);
  for (int i = 0; i < 2000; ++i) {
    std::string garbage;
    const std::size_t len = rng.Below(40);
    for (std::size_t j = 0; j < len; ++j) {
      garbage.push_back(static_cast<char>(rng.Below(256)));
    }
    auto m = DecodeMessage(garbage);
    if (m.ok()) {
      EXPECT_EQ(EncodeMessage(*m), garbage);
    }
  }
}

// ---------------------------------------------------------------------------
// Zero-copy surface: FrameWriter / DecodeMessageView vs the golden pair.
// ---------------------------------------------------------------------------

std::string Flatten(const std::vector<WireChunk>& chunks) {
  std::string out;
  for (const WireChunk& c : chunks) out.append(c.data, c.len);
  return out;
}

// [u32 little-endian length][payload] — what a framed message looks like
// on the wire (matches AppendFrame / the writer's length prefix).
std::string FramePrefix(std::string_view payload) {
  std::string f;
  for (int i = 0; i < 4; ++i) {
    f.push_back(static_cast<char>((payload.size() >> (8 * i)) & 0xff));
  }
  f.append(payload);
  return f;
}

void ExpectViewEquals(const MessageView& v, const Message& m) {
  EXPECT_EQ(v.type, m.type);
  EXPECT_EQ(v.request_id, m.request_id);
  EXPECT_EQ(v.reg, m.reg);
  EXPECT_EQ(v.value, std::string_view(m.value));
  ASSERT_EQ(v.num_subs, m.subs.size());
  for (std::uint32_t i = 0; i < v.num_subs; ++i) {
    ExpectViewEquals(v.subs[i], m.subs[i]);
  }
}

TEST(FrameWriter, MatchesEncodeMessageForEveryNonBatchType) {
  std::vector<Message> cases;
  cases.push_back(MakeRead(42, 3, 0x123456789abcULL));
  cases.push_back(MakeWrite(7, 0, 9, std::string("binary\0data", 11)));
  Message rr;
  rr.type = MsgType::kReadResp;
  rr.request_id = 99;
  rr.value = "the block contents";
  cases.push_back(rr);
  Message wr;
  wr.type = MsgType::kWriteResp;
  wr.request_id = 1;
  cases.push_back(wr);
  Message sq;
  sq.type = MsgType::kStatsReq;
  sq.request_id = 5;
  cases.push_back(sq);
  Message sr;
  sr.type = MsgType::kStatsResp;
  sr.request_id = 5;
  sr.value = "metrics dump";
  cases.push_back(sr);
  Message mq;
  mq.type = MsgType::kMergeReq;
  mq.request_id = 6;
  mq.reg = RegisterId{2, 8};
  mq.value = "coded-cell delta";
  cases.push_back(mq);
  Message mr;
  mr.type = MsgType::kMergeResp;
  mr.request_id = 6;
  cases.push_back(mr);

  Arena arena;
  for (const Message& m : cases) {
    arena.Reset();
    std::vector<WireChunk> chunks;
    FrameWriter w(&arena, &chunks);
    w.BeginFrame();
    AppendPayload(w, m.type, m.request_id, m.reg, m.value);
    const std::size_t payload_len = w.EndFrame();
    const std::string golden = EncodeMessage(m);
    EXPECT_EQ(payload_len, golden.size());
    EXPECT_EQ(payload_len, EncodedMessageSize(m));
    EXPECT_EQ(payload_len, PayloadSize(m.type, m.value.size()));
    EXPECT_EQ(Flatten(chunks), FramePrefix(golden))
        << "type " << static_cast<int>(m.type);
  }
}

TEST(FrameWriter, BatchCompositionMatchesEncodeMessage) {
  Message batch;
  batch.type = MsgType::kBatchReq;
  batch.subs.push_back(MakeRead(1, 0, 7));
  batch.subs.push_back(MakeWrite(2, 3, 9, std::string("mixed\0payload", 13)));
  batch.subs.push_back(MakeRead(3, 2, 0));

  // Compose the batch the way the client's FlushRun does: batch header,
  // then per sub a u32 payload-size prefix + the sub's payload.
  Arena arena;
  std::vector<WireChunk> chunks;
  FrameWriter w(&arena, &chunks);
  w.BeginFrame();
  w.PutU8(static_cast<std::uint8_t>(MsgType::kBatchReq));
  w.PutU64(0);
  w.PutU32(static_cast<std::uint32_t>(batch.subs.size()));
  for (const Message& sub : batch.subs) {
    w.PutU32(
        static_cast<std::uint32_t>(PayloadSize(sub.type, sub.value.size())));
    AppendPayload(w, sub.type, sub.request_id, sub.reg, sub.value);
  }
  w.EndFrame();
  EXPECT_EQ(Flatten(chunks), FramePrefix(EncodeMessage(batch)));
}

TEST(FrameWriter, PutSlotU32BackpatchMatchesEagerCount) {
  // The server does not know a batch's surviving-sub count until it has
  // served every sub: the count is a reserved slot patched afterwards.
  Message batch;
  batch.type = MsgType::kBatchResp;
  Message r;
  r.type = MsgType::kReadResp;
  r.request_id = 11;
  r.value = "block contents";
  batch.subs = {r};

  Arena arena;
  std::vector<WireChunk> chunks;
  FrameWriter w(&arena, &chunks);
  w.BeginFrame();
  w.PutU8(static_cast<std::uint8_t>(MsgType::kBatchResp));
  w.PutU64(0);
  char* slot = w.PutSlotU32();
  std::uint32_t served = 0;
  for (const Message& sub : batch.subs) {
    w.PutU32(
        static_cast<std::uint32_t>(PayloadSize(sub.type, sub.value.size())));
    AppendPayload(w, sub.type, sub.request_id, sub.reg, sub.value);
    ++served;
  }
  w.EndFrame();
  FrameWriter::Patch32(slot, served);
  EXPECT_EQ(Flatten(chunks), FramePrefix(EncodeMessage(batch)));
}

TEST(FrameWriter, PutBytesRefIsZeroCopy) {
  const std::string value(1024, 'v');
  Arena arena;
  std::vector<WireChunk> chunks;
  FrameWriter w(&arena, &chunks);
  w.BeginFrame();
  AppendPayload(w, MsgType::kWriteReq, 1, RegisterId{0, 0}, value);
  w.EndFrame();
  // Exactly one chunk must point INTO the caller's value storage.
  bool referenced = false;
  for (const WireChunk& c : chunks) {
    if (c.data == value.data()) {
      EXPECT_EQ(c.len, value.size());
      referenced = true;
    }
  }
  EXPECT_TRUE(referenced) << "value bytes were copied, not referenced";
}

bool AnyChunkAliases(const std::vector<WireChunk>& chunks,
                     const std::string& value) {
  for (const WireChunk& c : chunks) {
    const char* lo = value.data();
    const char* hi = value.data() + value.size();
    if (c.data >= lo && c.data < hi) return true;
  }
  return false;
}

TEST(FrameWriter, SmallValuesAreCopiedNeverAliased) {
  // An SSO-sized std::string stores its bytes INSIDE the string object,
  // so a chunk referencing them dangles the moment the string is moved
  // (the client moves completed-but-unsent write values onto its zombie
  // list) or its slot is recycled. The writer must therefore copy every
  // value at or below kSmallValueCopyBytes into the arena — and may
  // only reference strictly larger (guaranteed heap-backed) ones.
  Arena arena;
  for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{15},
                        kSmallValueCopyBytes, kSmallValueCopyBytes + 1}) {
    arena.Reset();
    std::string value(n, 'z');
    std::vector<WireChunk> chunks;
    FrameWriter w(&arena, &chunks);
    w.BeginFrame();
    AppendPayload(w, MsgType::kWriteReq, 7, RegisterId{1, 2}, value);
    w.EndFrame();
    const bool aliased = AnyChunkAliases(chunks, value);
    if (n <= kSmallValueCopyBytes) {
      EXPECT_FALSE(aliased) << "size " << n << ": chunk aliases a "
                               "possibly-SSO string buffer";
    } else {
      EXPECT_TRUE(aliased) << "size " << n << ": large value was copied";
    }
    // The frame must survive the source string being moved from and the
    // moved-to string destroyed — exactly the zombie-park life cycle.
    const std::string golden =
        FramePrefix(EncodeMessage(MakeWrite(7, 1, 2, value)));
    if (n <= kSmallValueCopyBytes) {
      { std::string grave = std::move(value); }
      EXPECT_EQ(Flatten(chunks), golden) << "size " << n;
    } else {
      std::string parked = std::move(value);  // heap buffer address survives
      EXPECT_EQ(Flatten(chunks), golden) << "size " << n;
    }
  }
}

TEST(FrameWriter, ArenaResetRebuildIsByteIdentical) {
  // The steady-state cycle: frame, send, Reset, frame again. The second
  // cycle must produce identical bytes from the same (reused) memory.
  const Message m = MakeWrite(9, 1, 2, "steady-state payload");
  Arena arena;
  std::string first, second;
  for (std::string* out : {&first, &second}) {
    arena.Reset();
    std::vector<WireChunk> chunks;
    FrameWriter w(&arena, &chunks);
    w.BeginFrame();
    AppendPayload(w, m.type, m.request_id, m.reg, m.value);
    w.EndFrame();
    *out = Flatten(chunks);
  }
  EXPECT_EQ(first, second);
  EXPECT_EQ(first, FramePrefix(EncodeMessage(m)));
}

TEST(ProtocolView, EmptyValueRoundtrips) {
  Message m = MakeWrite(1, 0, 0, "");
  const std::string payload = EncodeMessage(m);
  Arena arena;
  auto view = DecodeMessageView(payload, &arena);
  ASSERT_TRUE(view.ok());
  ExpectViewEquals(*view, m);
  EXPECT_TRUE(view->value.empty());
}

TEST(ProtocolView, MaxSizeValueRoundtrips) {
  // The largest framable write: payload is exactly kMaxFrameBytes.
  Message m =
      MakeWrite(1, 0, 0, std::string(kMaxFrameBytes - kWriteReqOverhead, 'x'));
  const std::string payload = EncodeMessage(m);
  ASSERT_EQ(payload.size(), kMaxFrameBytes);
  Arena arena;
  auto view = DecodeMessageView(payload, &arena);
  ASSERT_TRUE(view.ok());
  ExpectViewEquals(*view, m);
  // Zero-copy: the view aliases the payload buffer, no materialization.
  EXPECT_EQ(view->value.data(), payload.data() + kWriteReqOverhead);
}

TEST(ProtocolView, BatchSplitAtFrameCapBoundary) {
  // Two writes sized so the batch payload is EXACTLY kMaxFrameBytes:
  // frameable (checked encode accepts, view decode roundtrips); one more
  // byte of value and the frame can no longer be sent.
  constexpr std::size_t kBatchHeader = 1 + 8 + 4;
  constexpr std::size_t kPerSub = kBatchSubOverhead + kWriteReqOverhead;
  const std::size_t budget = kMaxFrameBytes - kBatchHeader - 2 * kPerSub;
  Message batch;
  batch.type = MsgType::kBatchReq;
  batch.subs.push_back(MakeWrite(1, 0, 0, std::string(budget / 2, 'a')));
  batch.subs.push_back(
      MakeWrite(2, 0, 1, std::string(budget - budget / 2, 'b')));
  auto encoded = EncodeMessageChecked(batch);
  ASSERT_TRUE(encoded.ok()) << encoded.status().ToString();
  ASSERT_EQ(encoded->size(), kMaxFrameBytes);
  Arena arena;
  auto view = DecodeMessageView(*encoded, &arena);
  ASSERT_TRUE(view.ok());
  ExpectViewEquals(*view, batch);
  // One byte over the cap is rejected on the encode path.
  batch.subs[1].value.push_back('b');
  EXPECT_FALSE(EncodeMessageChecked(batch).ok());
}

TEST(ProtocolView, DecodeFromPartialReadBuffer) {
  // The client's actual receive path: recv lands 1.5 frames in an
  // RxBuffer; the first frame is decodable NOW (views aliasing the
  // buffer), the second only after the rest arrives — and compaction
  // between cycles must not corrupt it.
  const Message m1 = MakeWrite(1, 0, 7, "first frame value");
  const Message m2 = MakeRead(2, 3, 9);
  const std::string f1 = FramePrefix(EncodeMessage(m1));
  const std::string f2 = FramePrefix(EncodeMessage(m2));

  RxBuffer rx;
  const std::size_t half = f2.size() / 2;
  rx.EnsureTail(f1.size() + half);
  std::memcpy(rx.Tail(), f1.data(), f1.size());
  std::memcpy(rx.Tail() + f1.size(), f2.data(), half);
  rx.Commit(f1.size() + half);

  // Frame 1 is complete: parse its length, decode the payload in place.
  ASSERT_GE(rx.Size(), 4u);
  std::uint32_t len = 0;
  std::memcpy(&len, rx.Head(), 4);
  ASSERT_EQ(len, f1.size() - 4);
  ASSERT_GE(rx.Size(), 4 + len);
  Arena arena;
  auto v1 = DecodeMessageView(std::string_view(rx.Head() + 4, len), &arena);
  ASSERT_TRUE(v1.ok());
  ExpectViewEquals(*v1, m1);
  // The value view aliases the receive buffer — zero-copy.
  EXPECT_GE(v1->value.data(), rx.Head());
  EXPECT_LT(v1->value.data(), rx.Head() + rx.Size());
  arena.Reset();
  rx.Consume(4 + len);

  // Frame 2 is incomplete: only half its bytes are in.
  std::memcpy(&len, rx.Head(), 4);
  EXPECT_LT(rx.Size(), 4 + len);

  // Grow/compact (moves the partial bytes), then the rest arrives.
  rx.EnsureTail(f2.size());
  std::memcpy(rx.Tail(), f2.data() + half, f2.size() - half);
  rx.Commit(f2.size() - half);
  std::memcpy(&len, rx.Head(), 4);
  ASSERT_EQ(rx.Size(), 4 + len);
  auto v2 = DecodeMessageView(std::string_view(rx.Head() + 4, len), &arena);
  ASSERT_TRUE(v2.ok());
  ExpectViewEquals(*v2, m2);
}

TEST(ProtocolView, RejectsWhatDecodeMessageRejects) {
  Arena arena;
  // Nested batch.
  Message inner;
  inner.type = MsgType::kBatchReq;
  inner.subs.push_back(MakeRead(1, 0, 0));
  Message outer;
  outer.type = MsgType::kBatchReq;
  outer.subs.push_back(inner);
  EXPECT_FALSE(DecodeMessageView(EncodeMessage(outer), &arena).ok());
  // Hostile count: must fail cleanly before allocating the sub array.
  Message batch;
  batch.type = MsgType::kBatchReq;
  batch.subs.push_back(MakeRead(1, 0, 0));
  std::string payload = EncodeMessage(batch);
  payload[9] = '\xff';
  payload[10] = '\xff';
  payload[11] = '\xff';
  payload[12] = '\xff';
  EXPECT_FALSE(DecodeMessageView(payload, &arena).ok());
  // Trailing bytes.
  std::string trailing = EncodeMessage(Message{});
  trailing += "x";
  EXPECT_FALSE(DecodeMessageView(trailing, &arena).ok());
  // Truncation at every cut.
  std::string whole = EncodeMessage(MakeWrite(7, 1, 2, "value"));
  for (std::size_t cut = 0; cut < whole.size(); ++cut) {
    EXPECT_FALSE(DecodeMessageView(whole.substr(0, cut), &arena).ok())
        << "cut at " << cut;
  }
}

TEST(ProtocolView, FuzzParityWithDecodeMessage) {
  // The two decoders must agree on EVERY input: same accept/reject
  // decision, same decoded fields. Anything else is a protocol fork.
  Rng rng(31337);
  Arena arena;
  for (int i = 0; i < 4000; ++i) {
    std::string payload;
    if (rng.Below(2) == 0) {
      // Pure garbage.
      const std::size_t len = rng.Below(60);
      for (std::size_t j = 0; j < len; ++j) {
        payload.push_back(static_cast<char>(rng.Below(256)));
      }
    } else {
      // A valid message with a few byte flips — explores the deep
      // rejection branches garbage rarely reaches.
      Message batch;
      batch.type = MsgType::kBatchReq;
      const std::size_t n = rng.Below(3);
      for (std::size_t j = 0; j < n; ++j) {
        batch.subs.push_back(rng.Below(2) == 0 ? MakeRead(j, 0, j)
                                               : MakeWrite(j, 1, j, "xy"));
      }
      payload = EncodeMessage(batch);
      const std::size_t flips = rng.Below(3);
      for (std::size_t f = 0; f < flips && !payload.empty(); ++f) {
        payload[rng.Below(payload.size())] =
            static_cast<char>(rng.Below(256));
      }
    }
    arena.Reset();
    auto owned = DecodeMessage(payload);
    auto view = DecodeMessageView(payload, &arena);
    ASSERT_EQ(owned.ok(), view.ok()) << "decoders disagree at iter " << i;
    if (owned.ok()) ExpectViewEquals(*view, *owned);
  }
}

TEST(ProtocolView, InflatedBatchCountRejectedBeforeAllocating) {
  // A hostile count that clears the old length-prefix-only bound (4
  // bytes/sub) but not the real minimum sub size must be rejected
  // BEFORE the sub-view array is reserved: each claimed sub costs at
  // least its prefix plus the smallest legal payload (9 bytes for a
  // response batch), and over-reserving is exactly how a 1MB frame used
  // to pin ~18MB of arena.
  std::string payload;
  payload.push_back(static_cast<char>(MsgType::kBatchResp));
  payload.append(8, '\0');  // request id
  const std::uint32_t count = 100;
  for (int i = 0; i < 4; ++i) {
    payload.push_back(static_cast<char>((count >> (8 * i)) & 0xff));
  }
  payload.append(987, '\0');  // room for 246 prefixes but only 75 subs
  Arena arena;
  auto view = DecodeMessageView(payload, &arena);
  EXPECT_FALSE(view.ok());
  EXPECT_EQ(arena.bytes_used(), 0u) << "decoder allocated before the bound";
  EXPECT_FALSE(DecodeMessage(payload).ok());
}

TEST(ProtocolView, MinimalSubBatchAtTightBoundStillDecodes) {
  // The tightened count bound must not reject a legitimate batch built
  // entirely from the smallest possible subs (WriteResp: 9 bytes + the
  // 4-byte prefix) — the densest frame an honest server can send.
  Message batch;
  batch.type = MsgType::kBatchResp;
  for (std::uint64_t id = 0; id < 200; ++id) {
    Message sub;
    sub.type = MsgType::kWriteResp;
    sub.request_id = id;
    batch.subs.push_back(sub);
  }
  const std::string payload = EncodeMessage(batch);
  Arena arena;
  auto view = DecodeMessageView(payload, &arena);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  ExpectViewEquals(*view, batch);
  auto owned = DecodeMessage(payload);
  ASSERT_TRUE(owned.ok());
  EXPECT_EQ(*owned, batch);
}

TEST(CompactWire, DropsSentPrefixAndDetachesFromValueStorage) {
  // Queue two write frames, pretend the kernel accepted the first frame
  // and part of the second, then compact: the unsent remainder must be
  // byte-identical, live entirely in the arena (one chunk, head/off
  // rewound), and no longer reference the caller's value storage — so
  // the values (and any zombies) can be freed mid-queue.
  Arena arena;
  std::vector<WireChunk> wire;
  std::string v1(512, 'a');
  std::string v2(512, 'b');
  FrameWriter w(&arena, &wire);
  w.BeginFrame();
  AppendPayload(w, MsgType::kWriteReq, 1, RegisterId{0, 0}, v1);
  w.EndFrame();
  w.BeginFrame();
  AppendPayload(w, MsgType::kWriteReq, 2, RegisterId{0, 1}, v2);
  w.EndFrame();
  const std::string all = Flatten(wire);

  // Frame 1 is 3 chunks (header run, value, trailing header run of
  // frame 2's begin may merge — compute the split by bytes instead):
  // mark 2 whole chunks + 10 bytes of the third as sent.
  ASSERT_GE(wire.size(), 3u);
  std::size_t head = 2;
  std::size_t off = 10;
  std::size_t sent_bytes = wire[0].len + wire[1].len + off;
  const std::string expect_rest = all.substr(sent_bytes);

  std::string scratch;
  CompactWire(&wire, &head, &off, &arena, &scratch);
  EXPECT_EQ(head, 0u);
  EXPECT_EQ(off, 0u);
  ASSERT_EQ(wire.size(), 1u);
  EXPECT_EQ(Flatten(wire), expect_rest);
  EXPECT_FALSE(AnyChunkAliases(wire, v1));
  EXPECT_FALSE(AnyChunkAliases(wire, v2));
  // The values may now die; the compacted bytes must not change.
  v1.assign(512, 'X');
  v2.clear();
  v2.shrink_to_fit();
  EXPECT_EQ(Flatten(wire), expect_rest);
}

TEST(CompactWire, FullySentQueueCompactsToEmpty) {
  Arena arena;
  std::vector<WireChunk> wire;
  FrameWriter w(&arena, &wire);
  w.BeginFrame();
  AppendPayload(w, MsgType::kReadReq, 1, RegisterId{0, 0}, {});
  w.EndFrame();
  std::size_t head = wire.size();
  std::size_t off = 0;
  std::string scratch;
  CompactWire(&wire, &head, &off, &arena, &scratch);
  EXPECT_TRUE(wire.empty());
  EXPECT_EQ(head, 0u);
  EXPECT_EQ(off, 0u);
}

TEST(CompactWire, CompactedQueueKeepsFramingAfterMoreAppends) {
  // The steady sequence under backpressure: frame, partial send,
  // compact, frame more. The new frames append after the compacted
  // chunk and the whole stream stays byte-identical to an uncompacted
  // encode.
  Arena arena;
  std::vector<WireChunk> wire;
  const std::string v1(64, 'p');
  const std::string v2(64, 'q');
  {
    FrameWriter w(&arena, &wire);
    w.BeginFrame();
    AppendPayload(w, MsgType::kWriteReq, 1, RegisterId{0, 0}, v1);
    w.EndFrame();
  }
  const std::string f1 = Flatten(wire);
  std::size_t head = 0;
  std::size_t off = 7;  // mid-length-prefix partial send
  std::string scratch;
  CompactWire(&wire, &head, &off, &arena, &scratch);
  {
    FrameWriter w(&arena, &wire);
    w.BeginFrame();
    AppendPayload(w, MsgType::kWriteReq, 2, RegisterId{0, 1}, v2);
    w.EndFrame();
  }
  const std::string f2 =
      FramePrefix(EncodeMessage(MakeWrite(2, 0, 1, v2)));
  EXPECT_EQ(Flatten(wire), f1.substr(7) + f2);
}

TEST(Protocol, EncodedMessageSizeMatchesEncodeMessage) {
  std::vector<Message> cases;
  cases.push_back(MakeRead(1, 0, 2));
  cases.push_back(MakeWrite(2, 1, 3, "value bytes"));
  Message stats;
  stats.type = MsgType::kStatsResp;
  stats.request_id = 9;
  stats.value = "text";
  cases.push_back(stats);
  Message batch;
  batch.type = MsgType::kBatchReq;
  batch.subs.push_back(MakeRead(1, 0, 0));
  batch.subs.push_back(MakeWrite(2, 0, 1, "vv"));
  cases.push_back(batch);
  cases.push_back(Message{});
  for (const Message& m : cases) {
    EXPECT_EQ(EncodedMessageSize(m), EncodeMessage(m).size())
        << "type " << static_cast<int>(m.type);
  }
}

}  // namespace
}  // namespace nadreg::nad
