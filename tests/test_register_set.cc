// Unit tests for the quorum engine: ticket completion counting, quorum
// waits, the pending-write chaining discipline (paper footnotes 3/6/7),
// read coalescing, and crash tolerance.
#include "core/register_set.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "core/config.h"
#include "sim/det_farm.h"
#include "sim/sim_farm.h"

namespace nadreg::core {
namespace {

using namespace std::chrono_literals;
using sim::DetFarm;
using sim::SimFarm;

std::vector<RegisterId> ThreeRegs() {
  return FarmConfig{1}.Spread(0);  // one block across 3 disks
}

TEST(RegisterSet, WriteAllReachesEveryRegisterWhenDelivered) {
  DetFarm farm;
  RegisterSet set(farm, 1, ThreeRegs());
  auto t = set.WriteAll("v");
  EXPECT_EQ(farm.Pending().size(), 3u);
  farm.DeliverAll();
  EXPECT_EQ(t.Completed(), 3u);
  for (const auto& r : set.registers()) EXPECT_EQ(farm.Peek(r), "v");
}

TEST(RegisterSet, AwaitQuorumReturnsAfterTwoOfThree) {
  DetFarm farm;
  RegisterSet set(farm, 1, ThreeRegs());
  auto t = set.WriteAll("v");
  auto ops = farm.Pending();
  farm.Deliver(ops[0].id);
  farm.Deliver(ops[1].id);
  EXPECT_TRUE(set.Await(t, 2, 100ms));
  EXPECT_EQ(t.Completed(), 2u);
}

TEST(RegisterSet, AwaitTimesOutWithoutQuorum) {
  DetFarm farm;
  RegisterSet set(farm, 1, ThreeRegs());
  auto t = set.WriteAll("v");
  farm.Deliver(farm.Pending()[0].id);
  EXPECT_FALSE(set.Await(t, 2, 50ms));
}

TEST(RegisterSet, AwaitBlocksUntilDeliveryFromAnotherThread) {
  DetFarm farm;
  RegisterSet set(farm, 1, ThreeRegs());
  auto t = set.WriteAll("v");
  std::jthread adversary([&] {
    std::this_thread::sleep_for(20ms);
    farm.DeliverAll();
  });
  EXPECT_TRUE(set.Await(t, 3));
}

TEST(RegisterSet, ReadAllReturnsPerRegisterValues) {
  DetFarm farm;
  auto regs = ThreeRegs();
  RegisterSet set(farm, 1, regs);
  // Pre-populate registers with distinct values.
  for (std::size_t i = 0; i < regs.size(); ++i) {
    farm.IssueWrite(99, regs[i], "v" + std::to_string(i), nullptr);
  }
  farm.DeliverAll();

  auto t = set.ReadAll();
  farm.DeliverAll();
  ASSERT_TRUE(set.Await(t, 3, 100ms));
  auto results = t.Results();
  ASSERT_EQ(results.size(), 3u);
  for (const auto& [idx, v] : results) {
    EXPECT_EQ(v, "v" + std::to_string(idx));
  }
}

TEST(RegisterSet, PendingWriteChainsSecondWrite) {
  // Footnote 3: a WRITE to a register with a pending write from a previous
  // WRITE is deferred (forked in the background) until the previous write
  // finishes — the process never has two ops outstanding on one register.
  DetFarm farm;
  RegisterSet set(farm, 1, ThreeRegs());
  auto t1 = set.WriteAll("first");
  ASSERT_EQ(farm.Pending().size(), 3u);
  auto t2 = set.WriteAll("second");
  // The second WRITE's base writes are queued, not issued.
  EXPECT_EQ(farm.Pending().size(), 3u);

  // Deliver the first write on register 0: the chained second write is
  // then issued by the background continuation.
  auto ops = farm.Pending();
  farm.Deliver(ops[0].id);
  auto now = farm.Pending();
  ASSERT_EQ(now.size(), 3u);  // two firsts + one chained second
  EXPECT_EQ(t1.Completed(), 1u);
  EXPECT_EQ(t2.Completed(), 0u);

  farm.DeliverAll();
  EXPECT_EQ(t1.Completed(), 3u);
  EXPECT_EQ(t2.Completed(), 3u);
  for (const auto& r : set.registers()) EXPECT_EQ(farm.Peek(r), "second");
}

TEST(RegisterSet, ChainStalledForeverOnCrashedRegisterDoesNotBlockQuorum) {
  DetFarm farm;
  auto regs = ThreeRegs();
  RegisterSet set(farm, 1, regs);
  auto t1 = set.WriteAll("first");
  // Register 2's first write stays pending forever (register "slow").
  auto ops = farm.Pending();
  farm.Deliver(ops[0].id);
  farm.Deliver(ops[1].id);
  ASSERT_TRUE(set.Await(t1, 2, 100ms));

  // Second WRITE: register 2's write is queued behind the stalled one, but
  // registers 0 and 1 complete, so the quorum wait succeeds — wait-free.
  auto t2 = set.WriteAll("second");
  farm.DeliverWhere([&](const DetFarm::PendingOp& op) {
    return op.r != regs[2] && op.value == "second";
  });
  EXPECT_TRUE(set.Await(t2, 2, 100ms));
  // Register 2 still holds the initial value; its queue: [first, second].
  EXPECT_TRUE(farm.Peek(regs[2]).empty());
}

TEST(RegisterSet, QueuedReadsCoalesce) {
  DetFarm farm;
  auto regs = ThreeRegs();
  RegisterSet set(farm, 1, regs);
  auto t1 = set.ReadAll();  // issued
  auto t2 = set.ReadAll();  // queued
  auto t3 = set.ReadAll();  // coalesces with t2's queued reads
  EXPECT_EQ(farm.Pending().size(), 3u);

  farm.DeliverAll();  // delivers t1's reads, then the coalesced batch
  ASSERT_TRUE(set.Await(t1, 3, 100ms));
  ASSERT_TRUE(set.Await(t2, 3, 100ms));
  ASSERT_TRUE(set.Await(t3, 3, 100ms));
  // Exactly 6 reads reached the farm (3 + 3 coalesced), not 9.
  EXPECT_EQ(farm.stats().reads_issued, 6u);
}

TEST(RegisterSet, WritesDoNotCoalesce) {
  DetFarm farm;
  RegisterSet set(farm, 1, ThreeRegs());
  set.WriteAll("a");
  set.WriteAll("b");
  set.WriteAll("c");
  farm.DeliverAll();
  EXPECT_EQ(farm.stats().writes_issued, 9u);
}

TEST(RegisterSet, MixedQueueKeepsOrder) {
  DetFarm farm;
  auto regs = ThreeRegs();
  RegisterSet set(farm, 1, regs);
  set.WriteAll("w1");
  auto tr = set.ReadAll();   // queued behind w1
  set.WriteAll("w2");        // queued behind the read
  farm.DeliverAll();
  ASSERT_TRUE(set.Await(tr, 3, 100ms));
  // The read ran after w1 but before w2 on every register.
  for (const auto& [idx, v] : tr.Results()) EXPECT_EQ(v, "w1");
  for (const auto& r : regs) EXPECT_EQ(farm.Peek(r), "w2");
}

TEST(RegisterSet, TwoProcessesHaveIndependentChains) {
  DetFarm farm;
  auto regs = ThreeRegs();
  RegisterSet set_p(farm, 1, regs);
  RegisterSet set_q(farm, 2, regs);
  set_p.WriteAll("p");
  // q's write is NOT chained behind p's: the one-op-per-register rule is
  // per process (base registers are MWMR).
  set_q.WriteAll("q");
  EXPECT_EQ(farm.Pending().size(), 6u);
}

TEST(RegisterSet, WorksOnRandomizedFarmUnderCrash) {
  SimFarm::Options o;
  o.seed = 11;
  o.max_delay_us = 100;
  SimFarm farm(o);
  auto regs = ThreeRegs();
  farm.CrashDisk(2);  // one of three disks down: quorum 2 still reachable
  RegisterSet set(farm, 1, regs);
  for (int i = 0; i < 50; ++i) {
    auto t = set.WriteAll("v" + std::to_string(i));
    ASSERT_TRUE(set.Await(t, 2, 2000ms)) << "write " << i;
  }
  auto t = set.ReadAll();
  ASSERT_TRUE(set.Await(t, 2, 2000ms));
  for (const auto& [idx, v] : t.Results()) EXPECT_EQ(v, "v49");
}

}  // namespace
}  // namespace nadreg::core
