// Tests for the Figure 3 wait-free atomic MWMR register built from
// infinitely many base registers: sequential semantics, the one-WRITE-
// per-name discipline, multi-writer multi-reader behaviour under random
// schedules with full disk crashes — every concurrent history certified
// atomic by the linearizability checker (Theorem 4).
#include "core/mwmr_atomic.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "checker/consistency.h"
#include "checker/history.h"
#include "core/config.h"
#include "sim/sim_farm.h"

namespace nadreg::core {
namespace {

using checker::CheckAtomic;
using checker::HistoryRecorder;
using sim::SimFarm;

TEST(MwmrAtomic, InitialValueIsNullopt) {
  FarmConfig cfg{1};
  SimFarm farm;
  MwmrAtomic reg(farm, cfg, 1, 1);
  EXPECT_FALSE(reg.Read().has_value());
}

TEST(MwmrAtomic, WriteThenReadSameProcess) {
  FarmConfig cfg{1};
  SimFarm farm;
  MwmrAtomic reg(farm, cfg, 1, 1);
  reg.Write("hello");
  auto v = reg.Read();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, "hello");
}

TEST(MwmrAtomic, WriteThenReadAcrossProcesses) {
  FarmConfig cfg{1};
  SimFarm farm;
  MwmrAtomic writer(farm, cfg, 1, 1);
  MwmrAtomic reader(farm, cfg, 1, 2);
  writer.Write("cross");
  auto v = reader.Read();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, "cross");
}

TEST(MwmrAtomic, MultipleWritesLastOneWins) {
  FarmConfig cfg{1};
  SimFarm farm;
  MwmrAtomic w1(farm, cfg, 1, 1);
  MwmrAtomic w2(farm, cfg, 1, 2);
  MwmrAtomic reader(farm, cfg, 1, 3);
  w1.Write("first");
  w2.Write("second");
  w1.Write("third");
  auto v = reader.Read();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, "third");
}

TEST(MwmrAtomic, ExplicitNamesOneShotDiscipline) {
  FarmConfig cfg{1};
  SimFarm farm;
  MwmrAtomic reg(farm, cfg, 1, 1);
  reg.WriteAs(Name{1, 100}, "named");
  auto v = reg.ReadAs(Name{1, 101});
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, "named");
}

TEST(MwmrAtomic, ReadersDoNotDisturbValue) {
  FarmConfig cfg{1};
  SimFarm farm;
  MwmrAtomic writer(farm, cfg, 1, 1);
  MwmrAtomic reader(farm, cfg, 1, 2);
  writer.Write("stable");
  for (int i = 0; i < 5; ++i) {
    auto v = reader.Read();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, "stable");
  }
}

TEST(MwmrAtomic, ToleratesFullDiskCrash) {
  FarmConfig cfg{1};
  SimFarm farm;
  farm.CrashDisk(1);
  MwmrAtomic writer(farm, cfg, 1, 1);
  MwmrAtomic reader(farm, cfg, 1, 2);
  writer.Write("resilient");
  auto v = reader.Read();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, "resilient");
}

TEST(MwmrAtomic, ToleratesTwoFullDiskCrashesWithT2) {
  FarmConfig cfg{2};
  SimFarm farm;
  farm.CrashDisk(0);
  farm.CrashDisk(4);
  MwmrAtomic writer(farm, cfg, 1, 1);
  MwmrAtomic reader(farm, cfg, 1, 2);
  writer.Write("t2");
  auto v = reader.Read();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, "t2");
}

TEST(NameLayout, PackUnpackRoundTrip) {
  const NameLayout layouts[] = {{48, 16}, {4, 2}, {8, 3}};
  for (const NameLayout& layout : layouts) {
    const std::uint64_t max_index = 1ULL << layout.index_bits;
    const std::uint64_t max_pid =
        1ULL << (layout.name_bits - layout.index_bits);
    for (std::uint64_t pid : {std::uint64_t{0}, max_pid - 1}) {
      for (std::uint64_t index : {std::uint64_t{0}, max_index - 1}) {
        const Name n{pid, index};
        EXPECT_EQ(layout.Unpack(layout.Pack(n)), n)
            << "layout " << layout.name_bits << "/" << layout.index_bits;
        EXPECT_LT(layout.Pack(n), 1ULL << layout.name_bits);
      }
    }
  }
  // The default layout IS the deployment format.
  EXPECT_EQ(NameLayout{}.Pack(Name{3, 7}), PackName(Name{3, 7}));
}

TEST(NameLayout, DistinctNamesPackDistinctly) {
  const NameLayout layout{4, 2};
  std::vector<std::uint64_t> packed;
  for (std::uint64_t pid = 0; pid < 4; ++pid) {
    for (std::uint64_t index = 0; index < 4; ++index) {
      packed.push_back(layout.Pack(Name{pid, index}));
    }
  }
  std::sort(packed.begin(), packed.end());
  EXPECT_EQ(std::unique(packed.begin(), packed.end()), packed.end());
}

// The bounded layout used by the model checker must run the same Fig. 3
// protocol: multi-writer exchange over a 4-bit trie, endpoints agreeing
// on the layout as part of the on-disk format.
TEST(MwmrAtomic, BoundedNameLayoutExchanges) {
  const NameLayout layout{4, 2};
  FarmConfig cfg{1};
  SimFarm farm;
  MwmrAtomic w1(farm, cfg, 1, 1, layout);
  MwmrAtomic w2(farm, cfg, 1, 2, layout);
  MwmrAtomic reader(farm, cfg, 1, 3, layout);
  w1.Write("a");
  w2.Write("b");
  auto v = reader.Read();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, "b");
  // The snapshot layer really walked the short trie: a 4-bit announce
  // touches at most 4 sticky bits per path, far under the 48 of the
  // deployment layout.
  EXPECT_GT(reader.snapshot_stats().collects, 0u);
}

TEST(MwmrAtomic, DistinctObjectsAreIndependentRegisters) {
  FarmConfig cfg{1};
  SimFarm farm;
  MwmrAtomic a(farm, cfg, 1, 1);
  MwmrAtomic b(farm, cfg, 2, 1);
  a.Write("for-a");
  EXPECT_FALSE(b.Read().has_value());
  auto v = MwmrAtomic(farm, cfg, 1, 2).Read();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, "for-a");
}

TEST(MwmrAtomic, InterleavedWritersReadersSequential) {
  FarmConfig cfg{1};
  SimFarm farm;
  std::string last;
  for (int round = 0; round < 3; ++round) {
    for (ProcessId p = 1; p <= 3; ++p) {
      MwmrAtomic reg(farm, cfg, 1, p * 100 + round);
      last = "r" + std::to_string(round) + "p" + std::to_string(p);
      reg.Write(last);
      auto v = MwmrAtomic(farm, cfg, 1, 999).Read();
      ASSERT_TRUE(v.has_value());
      EXPECT_EQ(*v, last);
    }
  }
}

// The headline property: concurrent histories over random schedules, with
// up to t full disk crashes injected mid-run, are atomic (Theorem 4).
struct MwmrParam {
  std::uint64_t seed;
  int writers;
  int readers;
  int ops_per_process;
  int crash_disks;  // crashed mid-run
  std::uint32_t t = 1;
};

class MwmrAtomicSweep : public ::testing::TestWithParam<MwmrParam> {};

TEST_P(MwmrAtomicSweep, ConcurrentHistoriesAreLinearizable) {
  const auto param = GetParam();
  FarmConfig cfg{param.t};
  SimFarm::Options o;
  o.seed = param.seed;
  o.max_delay_us = 20;
  SimFarm farm(o);
  HistoryRecorder history;

  std::vector<std::jthread> threads;
  for (int w = 0; w < param.writers; ++w) {
    threads.emplace_back([&, w] {
      MwmrAtomic reg(farm, cfg, 1, static_cast<ProcessId>(w + 1));
      for (int i = 0; i < param.ops_per_process; ++i) {
        const std::string v =
            "w" + std::to_string(w + 1) + "." + std::to_string(i);
        auto h = history.BeginWrite(static_cast<ProcessId>(w + 1), v);
        reg.Write(v);
        history.EndWrite(h);
      }
    });
  }
  for (int r = 0; r < param.readers; ++r) {
    threads.emplace_back([&, r] {
      const ProcessId pid = static_cast<ProcessId>(100 + r);
      MwmrAtomic reg(farm, cfg, 1, pid);
      for (int i = 0; i < param.ops_per_process; ++i) {
        auto h = history.BeginRead(pid);
        auto v = reg.Read();
        history.EndRead(h, v.value_or(""));
      }
    });
  }
  if (param.crash_disks > 0) {
    threads.emplace_back([&] {
      for (int d = 0; d < param.crash_disks; ++d) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2 + d * 3));
        farm.CrashDisk(static_cast<DiskId>(d));
      }
    });
  }
  threads.clear();

  auto result = CheckAtomic(history.CheckableHistory());
  EXPECT_TRUE(result.ok) << result.explanation;
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, MwmrAtomicSweep,
    ::testing::Values(MwmrParam{301, 2, 2, 4, 0},
                      MwmrParam{302, 3, 3, 3, 0},
                      MwmrParam{303, 2, 2, 4, 1},
                      MwmrParam{304, 4, 2, 3, 1},
                      MwmrParam{305, 2, 4, 3, 0},
                      MwmrParam{306, 3, 3, 3, 2, 2},
                      MwmrParam{307, 1, 5, 4, 1},
                      MwmrParam{308, 5, 1, 3, 0}));

}  // namespace
}  // namespace nadreg::core
