// Unit tests for the binary codec: roundtrips, bounds checking, and
// robustness of every decode path against truncated/garbage input.
#include "common/codec.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"

namespace nadreg {
namespace {

TEST(EncoderDecoder, PrimitivesRoundtrip) {
  std::string buf;
  Encoder e(&buf);
  e.PutU8(0xab);
  e.PutU32(0xdeadbeef);
  e.PutU64(0x0123456789abcdefULL);
  e.PutBytes("hello");

  Decoder d(buf);
  auto u8 = d.GetU8();
  ASSERT_TRUE(u8.ok());
  EXPECT_EQ(*u8, 0xab);
  auto u32 = d.GetU32();
  ASSERT_TRUE(u32.ok());
  EXPECT_EQ(*u32, 0xdeadbeefu);
  auto u64 = d.GetU64();
  ASSERT_TRUE(u64.ok());
  EXPECT_EQ(*u64, 0x0123456789abcdefULL);
  auto bytes = d.GetBytes();
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(*bytes, "hello");
  EXPECT_TRUE(d.AtEnd());
}

TEST(EncoderDecoder, EmptyBytesRoundtrip) {
  std::string buf;
  Encoder e(&buf);
  e.PutBytes("");
  Decoder d(buf);
  auto bytes = d.GetBytes();
  ASSERT_TRUE(bytes.ok());
  EXPECT_TRUE(bytes->empty());
  EXPECT_TRUE(d.AtEnd());
}

TEST(EncoderDecoder, TruncatedReadsFail) {
  Decoder d0("");
  EXPECT_FALSE(d0.GetU8().ok());

  Decoder d1("abc");
  EXPECT_FALSE(d1.GetU32().ok());

  Decoder d2("abcdefg");
  EXPECT_FALSE(d2.GetU64().ok());

  // Length prefix claims more bytes than available.
  std::string buf;
  Encoder e(&buf);
  e.PutU32(100);
  buf += "short";
  Decoder d3(buf);
  EXPECT_FALSE(d3.GetBytes().ok());
}

TEST(TaggedValue, Roundtrip) {
  TaggedValue tv{42, 7, "payload with \0 byte inside"};
  tv.payload = std::string("a\0b", 3);
  auto decoded = DecodeTaggedValue(EncodeTaggedValue(tv));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, tv);
}

TEST(TaggedValue, EmptyBytesIsInitialValue) {
  auto decoded = DecodeTaggedValue("");
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->seq, 0u);
  EXPECT_EQ(decoded->writer, kNoProcess);
  EXPECT_TRUE(decoded->payload.empty());
}

TEST(TaggedValue, TrailingBytesRejected) {
  std::string buf = EncodeTaggedValue(TaggedValue{1, 2, "x"});
  buf += "junk";
  EXPECT_FALSE(DecodeTaggedValue(buf).ok());
}

TEST(TaggedValue, FresherThanComparesSeq) {
  TaggedValue older{1, 3, "a"};
  TaggedValue newer{2, 4, "b"};
  EXPECT_TRUE(newer.FresherThan(older));
  EXPECT_FALSE(older.FresherThan(newer));
  EXPECT_FALSE(older.FresherThan(older));
}

TEST(NameCodec, Roundtrip) {
  Name n{0x12345678u, 0x9abcu};
  auto decoded = DecodeName(EncodeName(n));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, n);
}

TEST(NameSetCodec, Roundtrip) {
  std::vector<Name> names{{1, 0}, {1, 1}, {7, 3}, {1000000, 65535}};
  auto decoded = DecodeNameSet(EncodeNameSet(names));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, names);
}

TEST(NameSetCodec, EmptySetRoundtrip) {
  auto decoded = DecodeNameSet(EncodeNameSet({}));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->empty());
}

TEST(SnapRecordCodec, Roundtrip) {
  SnapRecord rec;
  rec.value = "the written value";
  rec.snapshot = {{1, 0}, {2, 5}, {3, 1}};
  auto decoded = DecodeSnapRecord(EncodeSnapRecord(rec));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, rec);
}

TEST(SnapRecordCodec, TruncatedSnapshotFails) {
  SnapRecord rec;
  rec.value = "v";
  rec.snapshot = {{1, 0}, {2, 5}};
  std::string buf = EncodeSnapRecord(rec);
  buf.resize(buf.size() - 3);
  EXPECT_FALSE(DecodeSnapRecord(buf).ok());
}

// Property sweep: random garbage never crashes a decoder and either fails
// cleanly or decodes to something re-encodable.
class CodecFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CodecFuzz, RandomBytesDecodeTotally) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 200; ++iter) {
    std::string garbage;
    const std::size_t len = rng.Below(64);
    garbage.reserve(len);
    for (std::size_t i = 0; i < len; ++i) {
      garbage.push_back(static_cast<char>(rng.Below(256)));
    }
    auto tv = DecodeTaggedValue(garbage);
    if (tv.ok() && !garbage.empty()) {
      EXPECT_EQ(EncodeTaggedValue(*tv), garbage);
    }
    (void)DecodeSnapRecord(garbage);
    (void)DecodeNameSet(garbage);
    (void)DecodeName(garbage);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecFuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(TaggedValueFuzz, RandomValuesRoundtrip) {
  Rng rng(99);
  for (int iter = 0; iter < 500; ++iter) {
    TaggedValue tv;
    tv.writer = rng();
    tv.seq = rng();
    std::string payload;
    const std::size_t len = rng.Below(128);
    for (std::size_t i = 0; i < len; ++i) {
      payload.push_back(static_cast<char>(rng.Below(256)));
    }
    tv.payload = payload;
    auto decoded = DecodeTaggedValue(EncodeTaggedValue(tv));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(*decoded, tv);
  }
}

}  // namespace
}  // namespace nadreg
