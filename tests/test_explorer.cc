// Tests for the fault-aware schedule explorer: exhaustive verification of
// the SWSR emulation over all delivery orders (and fault placements within
// a budget), unguided rediscovery of the Fig. 2 candidate's non-atomicity,
// partial-order-reduction accounting, and the counterexample pipeline
// (serialize -> replay -> minimize).
#include "sim/explorer.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "checker/consistency.h"
#include "checker/history.h"
#include "core/config.h"
#include "core/mwsr_seqcst.h"
#include "core/oneshot.h"
#include "core/swsr_atomic.h"
#include "sim/scenario.h"
#include "sim/schedule_trace.h"

namespace nadreg::sim {
namespace {

using checker::CheckAtomic;
using checker::CheckSequentiallyConsistent;
using checker::HistoryRecorder;
using core::FarmConfig;

// Scenario: SWSR register, `writes` WRITEs concurrent with `reads` READs.
// Every delivery order must yield a linearizable history. Bare-API
// variant: only usable with crash_budget == 0 (the bare ops assert that
// their quorums complete).
ScheduleExplorer::RunFactory SwsrScenario(int writes, int reads) {
  return [writes, reads](DetFarm& farm) -> std::unique_ptr<ExplorationRun> {
    auto scenario = std::make_unique<ThreadedScenario>(farm);
    auto rec = std::make_shared<HistoryRecorder>();
    FarmConfig cfg{1};
    auto regs = cfg.Spread(0);
    scenario->Spawn([&farm, rec, cfg, regs, writes] {
      core::SwsrAtomicWriter writer(farm, cfg, regs, 1);
      for (int i = 1; i <= writes; ++i) {
        auto h = rec->BeginWrite(1, "v" + std::to_string(i));
        writer.Write("v" + std::to_string(i));
        rec->EndWrite(h);
      }
    });
    if (reads > 0) {
      scenario->Spawn([&farm, rec, cfg, regs, reads] {
        core::SwsrAtomicReader reader(farm, cfg, regs, 2);
        for (int i = 0; i < reads; ++i) {
          auto h = rec->BeginRead(2);
          rec->EndRead(h, reader.Read());
        }
      });
    }
    scenario->SetValidator([rec]() -> std::optional<std::string> {
      auto result = CheckAtomic(rec->CheckableHistory());
      if (result.ok) return std::nullopt;
      return result.explanation;
    });
    return scenario;
  };
}

// Fault-tolerant SWSR variant for crash_budget > 0: uses the OpOptions
// overloads (which report failure instead of asserting) and records only
// what actually happened — an op that failed because the farm was
// abandoned stays incomplete in the history, which is exactly what the
// checker expects of a crashed process.
ScheduleExplorer::RunFactory SwsrFaultScenario(int writes, int reads) {
  return [writes, reads](DetFarm& farm) -> std::unique_ptr<ExplorationRun> {
    auto scenario = std::make_unique<ThreadedScenario>(farm);
    auto rec = std::make_shared<HistoryRecorder>();
    FarmConfig cfg{1};
    auto regs = cfg.Spread(0);
    scenario->Spawn([&farm, rec, cfg, regs, writes] {
      core::SwsrAtomicWriter writer(farm, cfg, regs, 1);
      for (int i = 1; i <= writes; ++i) {
        auto h = rec->BeginWrite(1, "v" + std::to_string(i));
        if (!writer.Write("v" + std::to_string(i), OpOptions{}).ok()) return;
        rec->EndWrite(h);
      }
    });
    if (reads > 0) {
      scenario->Spawn([&farm, rec, cfg, regs, reads] {
        core::SwsrAtomicReader reader(farm, cfg, regs, 2);
        for (int i = 0; i < reads; ++i) {
          auto h = rec->BeginRead(2);
          auto v = reader.Read(OpOptions{});
          if (!v.ok()) return;  // incomplete READ: constrains nothing
          rec->EndRead(h, *v);
        }
      });
    }
    scenario->SetValidator([rec]() -> std::optional<std::string> {
      auto result = CheckAtomic(rec->CheckableHistory());
      if (result.ok) return std::nullopt;
      return result.explanation;
    });
    return scenario;
  };
}

// Scenario: the Fig. 2 MWSR register used as if it were atomic — two
// writers (driven sequentially by one thread, so the WRITEs are ordered
// in real time) and a reader doing two READs. `fault_tolerant` switches
// to the OpOptions API so the scenario also runs under a crash budget.
ScheduleExplorer::RunFactory MwsrAsAtomicScenario(bool fault_tolerant) {
  return [fault_tolerant](DetFarm& farm) -> std::unique_ptr<ExplorationRun> {
    auto scenario = std::make_unique<ThreadedScenario>(farm);
    auto rec = std::make_shared<HistoryRecorder>();
    FarmConfig cfg{1};
    auto regs = cfg.Spread(0);
    scenario->Spawn([&farm, rec, cfg, regs, fault_tolerant] {
      core::MwsrWriter wa(farm, cfg, regs, 1);
      core::MwsrWriter wb(farm, cfg, regs, 2);
      auto h1 = rec->BeginWrite(1, "va");
      if (fault_tolerant) {
        if (!wa.Write("va", OpOptions{}).ok()) return;
      } else {
        wa.Write("va");
      }
      rec->EndWrite(h1);
      auto h2 = rec->BeginWrite(2, "vb");
      if (fault_tolerant) {
        if (!wb.Write("vb", OpOptions{}).ok()) return;
      } else {
        wb.Write("vb");
      }
      rec->EndWrite(h2);
    });
    scenario->Spawn([&farm, rec, cfg, regs, fault_tolerant] {
      core::MwsrReader reader(farm, cfg, regs, 99);
      for (int i = 0; i < 2; ++i) {
        auto h = rec->BeginRead(99);
        if (fault_tolerant) {
          auto v = reader.Read(OpOptions{});
          if (!v.ok()) return;
          rec->EndRead(h, *v);
        } else {
          rec->EndRead(h, reader.Read());
        }
      }
    });
    scenario->SetValidator([rec]() -> std::optional<std::string> {
      auto history = rec->CheckableHistory();
      auto atomic = CheckAtomic(history);
      if (atomic.ok) return std::nullopt;
      // Sanity: any discovered violation must still be seq-consistent
      // (otherwise Fig. 2 itself would be broken, not just its misuse).
      auto seq = CheckSequentiallyConsistent(history);
      if (!seq.ok) return "seq-cst ALSO violated (bug!):\n" + seq.explanation;
      return atomic.explanation;
    });
    return scenario;
  };
}

TEST(Explorer, SwsrSingleWriteSingleReadExhaustivelyAtomic) {
  ScheduleExplorer explorer;
  ScheduleExplorer::Options opts;
  opts.max_schedules = 0;  // unlimited: exhaust the space
  auto outcome = explorer.Explore(SwsrScenario(1, 1), opts);
  EXPECT_EQ(outcome.violations, 0u) << outcome.FirstViolation();
  EXPECT_FALSE(outcome.truncated);
  EXPECT_EQ(outcome.replay_divergences, 0u);
  EXPECT_EQ(outcome.stuck, 0u);
  // 6 base ops (3 writes + 3 reads) interleave in many ways; even with
  // partial-order reduction the explorer must see a real space.
  EXPECT_GE(outcome.schedules, 10u);
}

TEST(Explorer, PartialOrderReductionPrunesAndPreservesVerdict) {
  ScheduleExplorer explorer;
  ScheduleExplorer::Options opts;
  opts.max_schedules = 0;
  opts.partial_order_reduction = false;
  auto full = explorer.Explore(SwsrScenario(1, 1), opts);
  opts.partial_order_reduction = true;
  auto reduced = explorer.Explore(SwsrScenario(1, 1), opts);
  EXPECT_EQ(full.violations, 0u) << full.FirstViolation();
  EXPECT_EQ(reduced.violations, 0u) << reduced.FirstViolation();
  EXPECT_EQ(full.pruned, 0u);
  EXPECT_GT(reduced.pruned, 0u);
  EXPECT_LT(reduced.schedules, full.schedules)
      << "sleep sets pruned " << reduced.pruned
      << " branches but did not shrink the schedule count";
}

TEST(Explorer, SwsrTwoWritesOneReadCappedStillClean) {
  ScheduleExplorer explorer;
  ScheduleExplorer::Options opts;
  opts.max_schedules = 400;  // bounded slice of a bigger space
  auto outcome = explorer.Explore(SwsrScenario(2, 1), opts);
  EXPECT_EQ(outcome.violations, 0u) << outcome.FirstViolation();
}

TEST(Explorer, SwsrSurvivesEveryPlacementOfOneFault) {
  // Crash branching within the paper's budget: t = 1, so any single
  // faulty disk (drops or a crashed register) must leave the emulation
  // atomic AND wait-free — no stuck schedule is acceptable.
  ScheduleExplorer explorer;
  ScheduleExplorer::Options opts;
  opts.max_schedules = 20000;
  opts.stop_at_first_violation = false;
  opts.crash_budget = 1;
  opts.tolerated_crashed_disks = 1;
  auto outcome = explorer.Explore(SwsrFaultScenario(1, 1), opts);
  EXPECT_EQ(outcome.violations, 0u) << outcome.FirstViolation();
  EXPECT_EQ(outcome.over_budget, 0u);
  EXPECT_EQ(outcome.stuck, 0u);
  // Fault branches (drops and register crashes) were really explored.
  EXPECT_GT(outcome.schedules, 50u);
}

TEST(Explorer, OverBudgetFaultsAreDetectedNotViolating) {
  // Budget 2 on a t=1 farm: schedules faulting two distinct disks starve
  // the t+1 quorum. Those must surface as over_budget (the documented
  // degradation: safety holds, wait-freedom does not) — never as a
  // violation, and never as a within-budget stuck run.
  ScheduleExplorer explorer;
  ScheduleExplorer::Options opts;
  opts.max_schedules = 0;
  opts.stop_at_first_violation = false;
  opts.crash_budget = 2;
  opts.tolerated_crashed_disks = 1;
  auto outcome = explorer.Explore(SwsrFaultScenario(1, 0), opts);
  EXPECT_EQ(outcome.violations, 0u) << outcome.FirstViolation();
  EXPECT_GT(outcome.over_budget, 0u);
  EXPECT_GE(outcome.stuck, outcome.over_budget);
}

TEST(Explorer, DiscoversMwsrNonAtomicityUnguided) {
  ScheduleExplorer explorer;
  ScheduleExplorer::Options opts;
  opts.max_schedules = 5000;
  opts.stop_at_first_violation = true;
  auto outcome = explorer.Explore(MwsrAsAtomicScenario(false), opts);
  EXPECT_GE(outcome.violations, 1u)
      << "the explorer failed to find the Fig. 2 non-atomicity within "
      << outcome.schedules << " schedules";
  ASSERT_FALSE(outcome.counterexamples.empty());
  EXPECT_FALSE(outcome.counterexamples.front().schedule.empty());
  // The violation must come with a replayable schedule.
  EXPECT_NE(outcome.FirstViolation().find("schedule:"), std::string::npos);
}

TEST(Explorer, DiscoversMwsrNonAtomicityUnderCrashBudget) {
  // The same unguided discovery with fault branching enabled: the
  // delivery-order counterexample must still be found among the larger
  // fault-aware tree.
  ScheduleExplorer explorer;
  ScheduleExplorer::Options opts;
  opts.max_schedules = 20000;
  opts.stop_at_first_violation = true;
  opts.crash_budget = 1;
  opts.tolerated_crashed_disks = 1;
  auto outcome = explorer.Explore(MwsrAsAtomicScenario(true), opts);
  EXPECT_GE(outcome.violations, 1u)
      << "no Fig. 2 violation within " << outcome.schedules
      << " fault-aware schedules";
  ASSERT_FALSE(outcome.counterexamples.empty());
}

TEST(Explorer, CollectsMultipleCounterexamples) {
  ScheduleExplorer explorer;
  ScheduleExplorer::Options opts;
  opts.max_schedules = 5000;
  opts.stop_at_first_violation = false;
  opts.max_counterexamples = 4;
  auto outcome = explorer.Explore(MwsrAsAtomicScenario(false), opts);
  EXPECT_GE(outcome.violations, 2u);
  EXPECT_LE(outcome.counterexamples.size(), 4u);
  EXPECT_GE(outcome.counterexamples.size(), 2u);
  for (const auto& ce : outcome.counterexamples) {
    EXPECT_FALSE(ce.description.empty());
    EXPECT_FALSE(ce.schedule.empty());
  }
}

// Helper: the first counterexample of the Fig. 2 misuse scenario.
ScheduleExplorer::Violation FirstMwsrCounterexample(ScheduleExplorer& ex) {
  ScheduleExplorer::Options opts;
  opts.max_schedules = 5000;
  opts.stop_at_first_violation = true;
  auto outcome = ex.Explore(MwsrAsAtomicScenario(false), opts);
  EXPECT_GE(outcome.violations, 1u);
  EXPECT_FALSE(outcome.counterexamples.empty());
  return outcome.counterexamples.front();
}

TEST(ExplorerReplay, TraceRoundTripReproducesViolationDeterministically) {
  ScheduleExplorer explorer;
  auto ce = FirstMwsrCounterexample(explorer);
  ASSERT_FALSE(ce.schedule.empty());

  // Serialize, parse back: the decision sequence must survive unchanged.
  ScheduleTrace trace;
  trace.scenario = "mwsr-as-atomic";
  trace.decisions = ce.schedule;
  const std::string text = FormatTrace(trace);
  auto parsed = ParseTrace(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  EXPECT_EQ(parsed->scenario, "mwsr-as-atomic");
  ASSERT_EQ(parsed->decisions, ce.schedule);

  // Replaying the parsed schedule reproduces the identical violation,
  // twice (determinism).
  ScheduleExplorer::Options opts;
  auto r1 = explorer.ReplaySchedule(MwsrAsAtomicScenario(false),
                                    parsed->decisions, opts);
  auto r2 = explorer.ReplaySchedule(MwsrAsAtomicScenario(false),
                                    parsed->decisions, opts);
  EXPECT_FALSE(r1.diverged);
  EXPECT_FALSE(r2.diverged);
  ASSERT_TRUE(r1.violation.has_value());
  ASSERT_TRUE(r2.violation.has_value());
  EXPECT_EQ(*r1.violation, *r2.violation);
  EXPECT_EQ(*r1.violation, ce.description);
}

TEST(ExplorerReplay, DivergenceIsDetected) {
  ScheduleExplorer explorer;
  auto ce = FirstMwsrCounterexample(explorer);
  ASSERT_FALSE(ce.schedule.empty());
  // Corrupt the trace: point the first delivery at a process that never
  // issues operations. Replay must flag divergence, not guess.
  auto corrupted = ce.schedule;
  corrupted.front().p = 77;
  ScheduleExplorer::Options opts;
  auto r = explorer.ReplaySchedule(MwsrAsAtomicScenario(false), corrupted,
                                   opts);
  EXPECT_TRUE(r.diverged);
  EXPECT_EQ(r.applied, 0u);
  EXPECT_FALSE(r.violation.has_value());
}

TEST(ExplorerReplay, MinimizationShrinksWhilePreservingViolation) {
  ScheduleExplorer explorer;
  auto ce = FirstMwsrCounterexample(explorer);
  ASSERT_FALSE(ce.schedule.empty());
  ScheduleExplorer::Options opts;
  auto minimized = explorer.MinimizeSchedule(MwsrAsAtomicScenario(false),
                                             ce.schedule, opts);
  EXPECT_LE(minimized.size(), ce.schedule.size());
  auto r = explorer.ReplaySchedule(MwsrAsAtomicScenario(false), minimized,
                                   opts);
  EXPECT_FALSE(r.diverged);
  EXPECT_TRUE(r.violation.has_value())
      << "minimized schedule no longer violates:\n"
      << FormatSchedule(minimized);
}

TEST(ExplorerRandom, PlayoutsOfSwsrScenarioStayAtomic) {
  ScheduleExplorer explorer;
  ScheduleExplorer::Options opts;
  auto outcome =
      explorer.ExploreRandom(SwsrScenario(2, 2), /*playouts=*/60, 1234, opts);
  EXPECT_EQ(outcome.schedules, 60u);
  EXPECT_EQ(outcome.violations, 0u) << outcome.FirstViolation();
}

TEST(ExplorerRandom, PlayoutsFindMwsrNonAtomicity) {
  // Random playouts reorder deliveries arbitrarily; the Fig. 2 misuse
  // should fall within a modest number of them.
  ScheduleExplorer explorer;
  ScheduleExplorer::Options opts;
  opts.stop_at_first_violation = true;
  auto outcome = explorer.ExploreRandom(MwsrAsAtomicScenario(false),
                                        /*playouts=*/300, 99, opts);
  EXPECT_GE(outcome.violations, 1u)
      << "no violation in " << outcome.schedules << " random playouts";
}

TEST(ExplorerRandom, FaultBudgetPlayoutsStaySafeAndLive) {
  // Random fault placement within the tolerated budget: every playout
  // must stay atomic and wait-free.
  ScheduleExplorer explorer;
  ScheduleExplorer::Options opts;
  opts.crash_budget = 1;
  opts.tolerated_crashed_disks = 1;
  auto outcome = explorer.ExploreRandom(SwsrFaultScenario(1, 1),
                                        /*playouts=*/100, 7, opts);
  EXPECT_EQ(outcome.schedules, 100u);
  EXPECT_EQ(outcome.violations, 0u) << outcome.FirstViolation();
  EXPECT_EQ(outcome.stuck, 0u);
}

// Scenario: a one-shot register — one WRITE racing two readers whose
// write-backs are themselves schedulable operations. This exercises the
// subtlest positive-path mechanism (reader write-back) under adversarial
// delivery orders.
ScheduleExplorer::RunFactory OneShotScenario() {
  return [](DetFarm& farm) -> std::unique_ptr<ExplorationRun> {
    auto scenario = std::make_unique<ThreadedScenario>(farm);
    auto rec = std::make_shared<HistoryRecorder>();
    FarmConfig cfg{1};
    auto regs = cfg.Spread(0);
    scenario->Spawn([&farm, rec, cfg, regs] {
      core::OneShotRegister writer(farm, cfg, regs, 1);
      auto h = rec->BeginWrite(1, "v");
      // The recorded history, not the status, is what the checker judges.
      (void)writer.Write("v");
      rec->EndWrite(h);
    });
    for (ProcessId pid : {2u, 3u}) {
      scenario->Spawn([&farm, rec, cfg, regs, pid] {
        core::OneShotRegister reader(farm, cfg, regs, pid);
        auto h = rec->BeginRead(pid);
        auto v = reader.Read();
        rec->EndRead(h, v.value_or(""));
      });
    }
    scenario->SetValidator([rec]() -> std::optional<std::string> {
      auto result = CheckAtomic(rec->CheckableHistory());
      if (result.ok) return std::nullopt;
      return result.explanation;
    });
    return scenario;
  };
}

TEST(Explorer, OneShotWriteBackSurvivesBoundedSweep) {
  ScheduleExplorer explorer;
  ScheduleExplorer::Options opts;
  opts.max_schedules = 800;  // bounded slice of a large space
  auto outcome = explorer.Explore(OneShotScenario(), opts);
  EXPECT_EQ(outcome.violations, 0u) << outcome.FirstViolation();
  EXPECT_GE(outcome.schedules, 100u);
}

TEST(ExplorerRandom, OneShotWriteBackSurvivesPlayouts) {
  ScheduleExplorer explorer;
  ScheduleExplorer::Options opts;
  auto outcome =
      explorer.ExploreRandom(OneShotScenario(), /*playouts=*/80, 4321, opts);
  EXPECT_EQ(outcome.schedules, 80u);
  EXPECT_EQ(outcome.violations, 0u) << outcome.FirstViolation();
}

TEST(Explorer, ScheduleCountIsStable) {
  // Event-driven quiescence makes branching deterministic: two exhaustive
  // runs must see byte-identical trees — exactly the same schedule,
  // node, and pruning counts. (The old wall-clock settle heuristic only
  // supported an approximate comparison here.)
  ScheduleExplorer explorer;
  ScheduleExplorer::Options opts;
  opts.max_schedules = 0;
  auto a = explorer.Explore(SwsrScenario(1, 1), opts);
  auto b = explorer.Explore(SwsrScenario(1, 1), opts);
  EXPECT_EQ(a.violations, 0u);
  EXPECT_EQ(b.violations, 0u);
  EXPECT_EQ(a.schedules, b.schedules);
  EXPECT_EQ(a.nodes, b.nodes);
  EXPECT_EQ(a.pruned, b.pruned);
}

}  // namespace
}  // namespace nadreg::sim
