// Tests for the schedule explorer: exhaustive verification of the SWSR
// emulation over all delivery orders of small scenarios, and automatic
// (unguided) discovery of the Fig. 2 candidate's non-atomicity.
#include "sim/explorer.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "checker/consistency.h"
#include "checker/history.h"
#include "core/config.h"
#include "core/mwsr_seqcst.h"
#include "core/oneshot.h"
#include "core/swsr_atomic.h"
#include "sim/scenario.h"

namespace nadreg::sim {
namespace {

using checker::CheckAtomic;
using checker::CheckSequentiallyConsistent;
using checker::HistoryRecorder;
using core::FarmConfig;

// Scenario: SWSR register, one WRITE("v") concurrent with one READ.
// Every delivery order must yield a linearizable history.
ScheduleExplorer::RunFactory SwsrScenario(int writes, int reads) {
  return [writes, reads](DetFarm& farm) -> std::unique_ptr<ExplorationRun> {
    auto scenario = std::make_unique<ThreadedScenario>();
    auto rec = std::make_shared<HistoryRecorder>();
    FarmConfig cfg{1};
    auto regs = cfg.Spread(0);
    scenario->Spawn([&farm, rec, cfg, regs, writes] {
      core::SwsrAtomicWriter writer(farm, cfg, regs, 1);
      for (int i = 1; i <= writes; ++i) {
        auto h = rec->BeginWrite(1, "v" + std::to_string(i));
        writer.Write("v" + std::to_string(i));
        rec->EndWrite(h);
      }
    });
    scenario->Spawn([&farm, rec, cfg, regs, reads] {
      core::SwsrAtomicReader reader(farm, cfg, regs, 2);
      for (int i = 0; i < reads; ++i) {
        auto h = rec->BeginRead(2);
        rec->EndRead(h, reader.Read());
      }
    });
    scenario->SetValidator([rec]() -> std::optional<std::string> {
      auto result = CheckAtomic(rec->CheckableHistory());
      if (result.ok) return std::nullopt;
      return result.explanation;
    });
    return scenario;
  };
}

// Scenario: the Fig. 2 MWSR register used as if it were atomic — two
// writers (driven sequentially by one thread, so the WRITEs are ordered
// in real time) and a reader doing two READs.
ScheduleExplorer::RunFactory MwsrAsAtomicScenario() {
  return [](DetFarm& farm) -> std::unique_ptr<ExplorationRun> {
    auto scenario = std::make_unique<ThreadedScenario>();
    auto rec = std::make_shared<HistoryRecorder>();
    FarmConfig cfg{1};
    auto regs = cfg.Spread(0);
    scenario->Spawn([&farm, rec, cfg, regs] {
      core::MwsrWriter wa(farm, cfg, regs, 1);
      core::MwsrWriter wb(farm, cfg, regs, 2);
      auto h1 = rec->BeginWrite(1, "va");
      wa.Write("va");
      rec->EndWrite(h1);
      auto h2 = rec->BeginWrite(2, "vb");
      wb.Write("vb");
      rec->EndWrite(h2);
    });
    scenario->Spawn([&farm, rec, cfg, regs] {
      core::MwsrReader reader(farm, cfg, regs, 99);
      for (int i = 0; i < 2; ++i) {
        auto h = rec->BeginRead(99);
        rec->EndRead(h, reader.Read());
      }
    });
    scenario->SetValidator([rec]() -> std::optional<std::string> {
      auto history = rec->CheckableHistory();
      auto atomic = CheckAtomic(history);
      if (atomic.ok) return std::nullopt;
      // Sanity: any discovered violation must still be seq-consistent
      // (otherwise Fig. 2 itself would be broken, not just its misuse).
      auto seq = CheckSequentiallyConsistent(history);
      if (!seq.ok) return "seq-cst ALSO violated (bug!):\n" + seq.explanation;
      return atomic.explanation;
    });
    return scenario;
  };
}

TEST(Explorer, SwsrSingleWriteSingleReadExhaustivelyAtomic) {
  ScheduleExplorer explorer;
  ScheduleExplorer::Options opts;
  opts.max_schedules = 0;  // unlimited: exhaust the space
  auto outcome = explorer.Explore(SwsrScenario(1, 1), opts);
  EXPECT_EQ(outcome.violations, 0u) << outcome.first_violation;
  EXPECT_FALSE(outcome.truncated);
  EXPECT_EQ(outcome.replay_divergences, 0u);
  // 6 base ops (3 writes + 3 reads) interleave in many ways; the explorer
  // must have seen a real space, not a degenerate handful.
  EXPECT_GE(outcome.schedules, 100u);
}

TEST(Explorer, SwsrTwoWritesOneReadCappedStillClean) {
  ScheduleExplorer explorer;
  ScheduleExplorer::Options opts;
  opts.max_schedules = 400;  // bounded slice of a bigger space
  auto outcome = explorer.Explore(SwsrScenario(2, 1), opts);
  EXPECT_EQ(outcome.violations, 0u) << outcome.first_violation;
  EXPECT_GE(outcome.schedules, 400u * (outcome.truncated ? 1 : 0));
}

TEST(Explorer, DiscoversMwsrNonAtomicityUnguided) {
  ScheduleExplorer explorer;
  ScheduleExplorer::Options opts;
  opts.max_schedules = 5000;
  opts.stop_at_first_violation = true;
  auto outcome = explorer.Explore(MwsrAsAtomicScenario(), opts);
  EXPECT_GE(outcome.violations, 1u)
      << "the explorer failed to find the Fig. 2 non-atomicity within "
      << outcome.schedules << " schedules";
  EXPECT_FALSE(outcome.first_violation.empty());
  // The violation must come with a replayable schedule.
  EXPECT_NE(outcome.first_violation.find("schedule:"), std::string::npos);
}

TEST(ExplorerRandom, PlayoutsOfSwsrScenarioStayAtomic) {
  ScheduleExplorer explorer;
  ScheduleExplorer::Options opts;
  auto outcome =
      explorer.ExploreRandom(SwsrScenario(2, 2), /*playouts=*/60, 1234, opts);
  EXPECT_EQ(outcome.schedules, 60u);
  EXPECT_EQ(outcome.violations, 0u) << outcome.first_violation;
}

TEST(ExplorerRandom, PlayoutsFindMwsrNonAtomicity) {
  // Random playouts reorder deliveries arbitrarily; the Fig. 2 misuse
  // should fall within a modest number of them.
  ScheduleExplorer explorer;
  ScheduleExplorer::Options opts;
  opts.stop_at_first_violation = true;
  auto outcome =
      explorer.ExploreRandom(MwsrAsAtomicScenario(), /*playouts=*/300, 99, opts);
  EXPECT_GE(outcome.violations, 1u)
      << "no violation in " << outcome.schedules << " random playouts";
}

// Scenario: a one-shot register — one WRITE racing two readers whose
// write-backs are themselves schedulable operations. This exercises the
// subtlest positive-path mechanism (reader write-back) under adversarial
// delivery orders.
ScheduleExplorer::RunFactory OneShotScenario() {
  return [](DetFarm& farm) -> std::unique_ptr<ExplorationRun> {
    auto scenario = std::make_unique<ThreadedScenario>();
    auto rec = std::make_shared<HistoryRecorder>();
    FarmConfig cfg{1};
    auto regs = cfg.Spread(0);
    scenario->Spawn([&farm, rec, cfg, regs] {
      core::OneShotRegister writer(farm, cfg, regs, 1);
      auto h = rec->BeginWrite(1, "v");
      // The recorded history, not the status, is what the checker judges.
      (void)writer.Write("v");
      rec->EndWrite(h);
    });
    for (ProcessId pid : {2u, 3u}) {
      scenario->Spawn([&farm, rec, cfg, regs, pid] {
        core::OneShotRegister reader(farm, cfg, regs, pid);
        auto h = rec->BeginRead(pid);
        auto v = reader.Read();
        rec->EndRead(h, v.value_or(""));
      });
    }
    scenario->SetValidator([rec]() -> std::optional<std::string> {
      auto result = CheckAtomic(rec->CheckableHistory());
      if (result.ok) return std::nullopt;
      return result.explanation;
    });
    return scenario;
  };
}

TEST(Explorer, OneShotWriteBackSurvivesBoundedSweep) {
  ScheduleExplorer explorer;
  ScheduleExplorer::Options opts;
  opts.max_schedules = 800;  // bounded slice of a large space
  auto outcome = explorer.Explore(OneShotScenario(), opts);
  EXPECT_EQ(outcome.violations, 0u) << outcome.first_violation;
  EXPECT_GE(outcome.schedules, 100u);
}

TEST(ExplorerRandom, OneShotWriteBackSurvivesPlayouts) {
  ScheduleExplorer explorer;
  ScheduleExplorer::Options opts;
  auto outcome =
      explorer.ExploreRandom(OneShotScenario(), /*playouts=*/80, 4321, opts);
  EXPECT_EQ(outcome.schedules, 80u);
  EXPECT_EQ(outcome.violations, 0u) << outcome.first_violation;
}

TEST(Explorer, ScheduleCountIsStable) {
  // The schedule space is a property of the scenario, so two exhaustive
  // runs should see (nearly) the same count. Under heavy CPU load the
  // settle heuristic can occasionally branch a little earlier or later,
  // so we use generous settle options and allow a small tolerance rather
  // than strict equality; both runs must be violation-free regardless.
  ScheduleExplorer explorer;
  ScheduleExplorer::Options opts;
  opts.max_schedules = 0;
  opts.settle_stable_polls = 5;
  auto a = explorer.Explore(SwsrScenario(1, 1), opts);
  auto b = explorer.Explore(SwsrScenario(1, 1), opts);
  EXPECT_EQ(a.violations, 0u);
  EXPECT_EQ(b.violations, 0u);
  const double lo = static_cast<double>(std::min(a.schedules, b.schedules));
  const double hi = static_cast<double>(std::max(a.schedules, b.schedules));
  EXPECT_GE(lo, hi * 0.8) << "schedule counts diverged: " << a.schedules
                          << " vs " << b.schedules;
}

}  // namespace
}  // namespace nadreg::sim
