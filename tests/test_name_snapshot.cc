// Tests for the name snapshot (Section 6): the three defining properties —
// Validity, Total Ordering, Integrity — under sequential use, concurrent
// use, random schedules and disk crashes; plus announce/collect mechanics
// and the adoption path.
#include "common/sync.h"
#include "core/name_snapshot.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <thread>
#include <vector>

#include "core/config.h"
#include "sim/sim_farm.h"

namespace nadreg::core {
namespace {

using sim::SimFarm;

bool IsSubset(const std::vector<Name>& a, const std::vector<Name>& b) {
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

bool ChainOrdered(std::vector<std::vector<Name>> snaps) {
  std::sort(snaps.begin(), snaps.end(),
            [](const auto& a, const auto& b) { return a.size() < b.size(); });
  for (std::size_t i = 0; i + 1 < snaps.size(); ++i) {
    if (!IsSubset(snaps[i], snaps[i + 1])) return false;
  }
  return true;
}

TEST(NameSnapshot, FirstSnapshotContainsOnlySelf) {
  FarmConfig cfg{1};
  SimFarm farm;
  NameSnapshot snap(farm, cfg, /*object=*/1, /*self=*/1);
  auto s = snap.Snapshot(Name{1, 0});
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s[0], (Name{1, 0}));
}

TEST(NameSnapshot, SequentialSnapshotsGrow) {
  FarmConfig cfg{1};
  SimFarm farm;
  NameSnapshot p1(farm, cfg, 1, 1);
  NameSnapshot p2(farm, cfg, 1, 2);
  NameSnapshot p3(farm, cfg, 1, 3);

  auto s1 = p1.Snapshot(Name{1, 0});
  auto s2 = p2.Snapshot(Name{2, 0});
  auto s3 = p3.Snapshot(Name{3, 0});
  EXPECT_EQ(s1.size(), 1u);
  EXPECT_EQ(s2.size(), 2u);
  EXPECT_EQ(s3.size(), 3u);
  // A later snapshot contains every earlier terminated name (Validity +
  // Integrity + Total Ordering combined, as the paper notes).
  EXPECT_TRUE(IsSubset(s1, s2));
  EXPECT_TRUE(IsSubset(s2, s3));
}

TEST(NameSnapshot, ValidityHoldsForEveryCaller) {
  FarmConfig cfg{1};
  SimFarm farm;
  for (ProcessId p = 1; p <= 8; ++p) {
    NameSnapshot snap(farm, cfg, 1, p);
    Name n{p, 0};
    auto s = snap.Snapshot(n);
    EXPECT_TRUE(std::binary_search(s.begin(), s.end(), n));
  }
}

TEST(NameSnapshot, IntegrityExcludesUnstartedNames) {
  FarmConfig cfg{1};
  SimFarm farm;
  NameSnapshot p1(farm, cfg, 1, 1);
  auto s = p1.Snapshot(Name{1, 0});
  // Name {2,0} has not started: it must not appear.
  EXPECT_FALSE(std::binary_search(s.begin(), s.end(), Name{2, 0}));
}

TEST(NameSnapshot, SameProcessMultipleNames) {
  FarmConfig cfg{1};
  SimFarm farm;
  NameSnapshot snap(farm, cfg, 1, 7);
  auto s0 = snap.Snapshot(Name{7, 0});
  auto s1 = snap.Snapshot(Name{7, 1});
  auto s2 = snap.Snapshot(Name{7, 2});
  EXPECT_EQ(s0.size(), 1u);
  EXPECT_EQ(s1.size(), 2u);
  EXPECT_EQ(s2.size(), 3u);
  EXPECT_TRUE(IsSubset(s0, s1));
  EXPECT_TRUE(IsSubset(s1, s2));
}

TEST(NameSnapshot, AnnounceThenCollectFindsName) {
  FarmConfig cfg{1};
  SimFarm farm;
  NameSnapshot a(farm, cfg, 1, 1);
  NameSnapshot b(farm, cfg, 1, 2);
  a.Announce(Name{1, 5});
  auto c = b.Collect();
  ASSERT_EQ(c.size(), 1u);
  EXPECT_EQ(c[0], (Name{1, 5}));
}

TEST(NameSnapshot, CollectOnEmptyDirectoryIsEmpty) {
  FarmConfig cfg{1};
  SimFarm farm;
  NameSnapshot a(farm, cfg, 1, 1);
  EXPECT_TRUE(a.Collect().empty());
}

TEST(NameSnapshot, DistinctObjectsAreIndependent) {
  FarmConfig cfg{1};
  SimFarm farm;
  NameSnapshot obj1(farm, cfg, 1, 1);
  NameSnapshot obj2(farm, cfg, 2, 1);
  obj1.Announce(Name{1, 0});
  EXPECT_EQ(obj1.Collect().size(), 1u);
  EXPECT_TRUE(obj2.Collect().empty());
}

TEST(NameSnapshot, ToleratesDiskCrash) {
  FarmConfig cfg{1};
  SimFarm farm;
  farm.CrashDisk(0);  // full disk crash: infinitely many registers die
  NameSnapshot p1(farm, cfg, 1, 1);
  NameSnapshot p2(farm, cfg, 1, 2);
  auto s1 = p1.Snapshot(Name{1, 0});
  auto s2 = p2.Snapshot(Name{2, 0});
  EXPECT_EQ(s1.size(), 1u);
  EXPECT_EQ(s2.size(), 2u);
  EXPECT_TRUE(IsSubset(s1, s2));
}

TEST(NameSnapshot, ToleratesTwoCrashesWithT2) {
  FarmConfig cfg{2};  // 5 disks
  SimFarm farm;
  farm.CrashDisk(1);
  farm.CrashDisk(3);
  NameSnapshot p1(farm, cfg, 1, 1);
  NameSnapshot p2(farm, cfg, 1, 2);
  EXPECT_EQ(p1.Snapshot(Name{1, 0}).size(), 1u);
  EXPECT_EQ(p2.Snapshot(Name{2, 0}).size(), 2u);
}

TEST(NameSnapshot, StatsAccumulate) {
  FarmConfig cfg{1};
  SimFarm farm;
  NameSnapshot snap(farm, cfg, 1, 1);
  snap.Snapshot(Name{1, 0});
  const auto& st = snap.stats();
  EXPECT_GE(st.collects, 2u);      // at least one double collect
  EXPECT_EQ(st.sticky_sets, 48u);  // one announce: 48 path bits
  EXPECT_GT(st.sticky_reads, 0u);
}

TEST(NameSnapshot, AdoptionPathFiresUnderInterference) {
  // Under real concurrency some double collects fail and resolve via
  // adoption of a committed view. Run rounds until observed (the property
  // sweeps verify adopted snapshots obey all three properties; this test
  // ensures the path is actually exercised).
  FarmConfig cfg{1};
  std::uint64_t adoptions = 0;
  for (std::uint64_t round = 0; round < 40 && adoptions == 0; ++round) {
    SimFarm::Options o;
    o.seed = 900 + round;
    o.max_delay_us = 10;
    SimFarm farm(o);
    std::vector<std::jthread> threads;
    Mutex mu;
    for (ProcessId p = 1; p <= 6; ++p) {
      threads.emplace_back([&, p] {
        NameSnapshot snap(farm, cfg, 1, p);
        for (std::uint64_t i = 0; i < 4; ++i) {
          snap.Snapshot(Name{p, i});
        }
        MutexLock lock(mu);
        adoptions += snap.stats().adoptions;
      });
    }
  }
  EXPECT_GT(adoptions, 0u)
      << "no snapshot ever resolved via adoption in 40 contended rounds";
}

// Concurrent property sweep: run many processes concurrently (each with a
// few names) over random schedules, some with a crashed disk, and verify
// Validity + Total Ordering + Integrity over the full outcome set.
struct SweepParam {
  std::uint64_t seed;
  int processes;
  int names_per_process;
  bool crash_disk;
};

class NameSnapshotSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(NameSnapshotSweep, PropertiesHoldUnderConcurrency) {
  const auto param = GetParam();
  FarmConfig cfg{1};
  SimFarm::Options o;
  o.seed = param.seed;
  o.max_delay_us = 30;
  SimFarm farm(o);
  if (param.crash_disk) farm.CrashDisk(2);

  Mutex mu;
  std::vector<std::pair<Name, std::vector<Name>>> results;
  // Integrity bookkeeping: logical start/stop order via a shared counter.
  std::atomic<std::uint64_t> clock{0};
  std::vector<std::tuple<Name, std::uint64_t, std::uint64_t>> spans;

  {
    std::vector<std::jthread> threads;
    for (int p = 1; p <= param.processes; ++p) {
      threads.emplace_back([&, p] {
        NameSnapshot snap(farm, cfg, 1, static_cast<ProcessId>(p));
        for (int i = 0; i < param.names_per_process; ++i) {
          Name n{static_cast<ProcessId>(p), static_cast<std::uint64_t>(i)};
          const std::uint64_t started = ++clock;
          auto s = snap.Snapshot(n);
          const std::uint64_t ended = ++clock;
          MutexLock lock(mu);
          results.emplace_back(n, std::move(s));
          spans.emplace_back(n, started, ended);
        }
      });
    }
  }

  // Validity.
  for (const auto& [n, s] : results) {
    EXPECT_TRUE(std::binary_search(s.begin(), s.end(), n))
        << "Validity violated for (" << n.pid << "," << n.index << ")";
  }
  // Total Ordering.
  std::vector<std::vector<Name>> snaps;
  snaps.reserve(results.size());
  for (const auto& [n, s] : results) snaps.push_back(s);
  EXPECT_TRUE(ChainOrdered(snaps)) << "Total Ordering violated";
  // Integrity: if m started after n's snapshot ended, m ∉ S_n.
  for (const auto& [n, s] : results) {
    std::uint64_t n_end = 0;
    for (const auto& [m, st, en] : spans) {
      if (m == n) n_end = en;
    }
    for (const Name& member : s) {
      for (const auto& [m, st, en] : spans) {
        if (m == member) {
          EXPECT_LT(st, n_end) << "Integrity violated: (" << m.pid << ","
                               << m.index << ") started after snapshot of ("
                               << n.pid << "," << n.index << ") ended";
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, NameSnapshotSweep,
    ::testing::Values(SweepParam{201, 2, 2, false}, SweepParam{202, 4, 2, false},
                      SweepParam{203, 4, 3, true}, SweepParam{204, 6, 2, false},
                      SweepParam{205, 3, 4, true}, SweepParam{206, 8, 1, false}));

}  // namespace
}  // namespace nadreg::core
