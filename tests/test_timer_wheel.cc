// TimerWheel unit tests: deterministic synthetic time (no sleeps, no
// clock reads beyond one anchor) driving schedule/cancel/advance through
// slot collisions, multi-revolution deadlines, and callback reentrancy —
// the behaviours the client event loops depend on for expiry sweeps and
// reconnect backoff timers.
#include "nad/timer_wheel.h"

#include <gtest/gtest.h>

#include <chrono>
#include <vector>

namespace nadreg::nad {
namespace {

using namespace std::chrono_literals;
using Clock = TimerWheel::Clock;

class TimerWheelTest : public ::testing::Test {
 protected:
  const Clock::time_point origin_ = Clock::time_point(1000s);
  TimerWheel wheel_{origin_, 1ms, 256};

  Clock::time_point At(std::chrono::microseconds us) { return origin_ + us; }
};

TEST_F(TimerWheelTest, FiresAtOrAfterDeadlineNeverBefore) {
  bool fired = false;
  wheel_.Schedule(At(2500us), [&] { fired = true; });
  EXPECT_EQ(wheel_.Advance(At(2400us)), 0u);
  EXPECT_FALSE(fired);
  EXPECT_EQ(wheel_.Advance(At(3000us)), 1u);
  EXPECT_TRUE(fired);
  EXPECT_TRUE(wheel_.empty());
}

TEST_F(TimerWheelTest, FiresInDeadlineOrderAcrossTicks) {
  std::vector<int> order;
  wheel_.Schedule(At(30ms), [&] { order.push_back(3); });
  wheel_.Schedule(At(10ms), [&] { order.push_back(1); });
  wheel_.Schedule(At(20ms), [&] { order.push_back(2); });
  EXPECT_EQ(wheel_.Advance(At(100ms)), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST_F(TimerWheelTest, InsertionOrderWithinOneTick) {
  std::vector<int> order;
  wheel_.Schedule(At(5ms), [&] { order.push_back(1); });
  wheel_.Schedule(At(5ms), [&] { order.push_back(2); });
  wheel_.Schedule(At(5ms), [&] { order.push_back(3); });
  EXPECT_EQ(wheel_.Advance(At(5ms)), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST_F(TimerWheelTest, CancelPreventsFiring) {
  bool fired = false;
  const std::uint64_t id = wheel_.Schedule(At(5ms), [&] { fired = true; });
  EXPECT_TRUE(wheel_.Cancel(id));
  EXPECT_FALSE(wheel_.Cancel(id));  // already gone
  EXPECT_EQ(wheel_.Advance(At(1s)), 0u);
  EXPECT_FALSE(fired);
  EXPECT_TRUE(wheel_.empty());
}

TEST_F(TimerWheelTest, CancelAfterFiringReturnsFalse) {
  const std::uint64_t id = wheel_.Schedule(At(1ms), [] {});
  EXPECT_EQ(wheel_.Advance(At(2ms)), 1u);
  EXPECT_FALSE(wheel_.Cancel(id));
}

TEST_F(TimerWheelTest, SlotCollisionAcrossRevolutionsDoesNotFireEarly) {
  // 1ms ticks, 256 slots: deadlines 2ms and 2ms + 256ms share a slot.
  int fired = 0;
  wheel_.Schedule(At(2ms), [&] { ++fired; });
  wheel_.Schedule(At(2ms + 256ms), [&] { ++fired; });
  EXPECT_EQ(wheel_.Advance(At(2ms)), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(wheel_.size(), 1u);
  EXPECT_EQ(wheel_.Advance(At(2ms + 255ms)), 0u);
  EXPECT_EQ(wheel_.Advance(At(2ms + 256ms)), 1u);
  EXPECT_EQ(fired, 2);
}

TEST_F(TimerWheelTest, MultiRevolutionDeadlineSurvivesIdleFastForward) {
  bool fired = false;
  wheel_.Schedule(At(3000ms), [&] { fired = true; });  // ~12 revolutions out
  EXPECT_EQ(wheel_.Advance(At(2999ms)), 0u);
  EXPECT_FALSE(fired);
  EXPECT_EQ(wheel_.Advance(At(3001ms)), 1u);
  EXPECT_TRUE(fired);
}

TEST_F(TimerWheelTest, PastDeadlineFiresOnNextAdvance) {
  wheel_.Advance(At(50ms));  // cursor well past the origin
  bool fired = false;
  wheel_.Schedule(At(10ms), [&] { fired = true; });  // already overdue
  EXPECT_EQ(wheel_.Advance(At(51ms)), 1u);
  EXPECT_TRUE(fired);
}

TEST_F(TimerWheelTest, CallbackMayRescheduleWithoutRefiringSameAdvance) {
  int fires = 0;
  std::function<void()> rearm = [&] {
    ++fires;
    // Re-arms for "now": must land on a later tick, not loop forever
    // inside the Advance that is firing us.
    wheel_.Schedule(At(5ms), rearm);
  };
  wheel_.Schedule(At(5ms), rearm);
  EXPECT_EQ(wheel_.Advance(At(5ms)), 1u);
  EXPECT_EQ(fires, 1);
  EXPECT_EQ(wheel_.size(), 1u);
  EXPECT_EQ(wheel_.Advance(At(6ms)), 1u);
  EXPECT_EQ(fires, 2);
}

TEST_F(TimerWheelTest, CallbackMayCancelAPeer) {
  bool peer_fired = false;
  std::uint64_t peer = 0;
  wheel_.Schedule(At(5ms), [&] { wheel_.Cancel(peer); });
  peer = wheel_.Schedule(At(6ms), [&] { peer_fired = true; });
  EXPECT_EQ(wheel_.Advance(At(10ms)), 1u);
  EXPECT_FALSE(peer_fired);
  EXPECT_TRUE(wheel_.empty());
}

TEST_F(TimerWheelTest, NextDeadlineTracksEarliestLiveTimer) {
  EXPECT_EQ(wheel_.NextDeadline(), Clock::time_point::max());
  const std::uint64_t early = wheel_.Schedule(At(10ms), [] {});
  wheel_.Schedule(At(20ms), [] {});
  EXPECT_LE(wheel_.NextDeadline(), At(10ms));
  EXPECT_GT(wheel_.NextDeadline(), At(9ms));
  EXPECT_TRUE(wheel_.Cancel(early));
  EXPECT_LE(wheel_.NextDeadline(), At(20ms));
  EXPECT_GT(wheel_.NextDeadline(), At(19ms));
  EXPECT_EQ(wheel_.Advance(At(30ms)), 1u);
  EXPECT_EQ(wheel_.NextDeadline(), Clock::time_point::max());
}

TEST_F(TimerWheelTest, AdvanceIsMonotoneAndIdempotent) {
  int fires = 0;
  wheel_.Schedule(At(5ms), [&] { ++fires; });
  EXPECT_EQ(wheel_.Advance(At(10ms)), 1u);
  EXPECT_EQ(wheel_.Advance(At(10ms)), 0u);  // same instant again
  EXPECT_EQ(wheel_.Advance(At(8ms)), 0u);   // time never runs backwards
  EXPECT_EQ(fires, 1);
}

}  // namespace
}  // namespace nadreg::nad
