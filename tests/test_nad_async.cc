// Tests for the event-loop client core and its unified Submit API:
// mixed-kind batches, STATS riding the same pending-op map as reads and
// writes (deadline expiry, unmapped-disk fail-fast), the num_event_loops
// knob, the InFlight()/gauge consistency contract, and a 1k-client
// concurrency smoke over real loopback sockets.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/sync.h"
#include "nad/client.h"
#include "nad/event_loop.h"
#include "nad/server.h"
#include "nad/socket.h"
#include "obs/metrics.h"

namespace nadreg::nad {
namespace {

using namespace std::chrono_literals;

struct Cluster {
  std::vector<std::unique_ptr<NadServer>> servers;
  std::unique_ptr<NadClient> client;

  static Cluster Start(std::uint32_t disks = 3,
                       NadClient::Options opts = {}) {
    Cluster c;
    auto client = NadClient::Connect(c.StartServers(disks), opts);
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    c.client = std::move(*client);
    return c;
  }

  std::map<DiskId, NadClient::Endpoint> StartServers(std::uint32_t disks) {
    std::map<DiskId, NadClient::Endpoint> endpoints;
    for (DiskId d = 0; d < disks; ++d) {
      auto server = NadServer::Start({});
      EXPECT_TRUE(server.ok()) << server.status().ToString();
      endpoints[d] = NadClient::Endpoint{"127.0.0.1", (*server)->port()};
      servers.push_back(std::move(*server));
    }
    return endpoints;
  }
};

class Waiter {
 public:
  void Done() {
    MutexLock lock(mu_);
    ++n_;
    cv_.NotifyAll();
  }
  bool WaitFor(int target, std::chrono::milliseconds d = 10000ms) {
    MutexLock lock(mu_);
    return cv_.WaitFor(mu_, d, [&] { return n_ >= target; });
  }

 private:
  Mutex mu_;
  CondVar cv_;
  int n_ = 0;
};

std::int64_t InFlightGauge() {
  return obs::Registry::Global().GetGauge("nad.client.in_flight").Get();
}

TEST(EventLoopWakeup, PostFromLoopTaskIsNotLost) {
  // Regression for a lost-wakeup race: Run() used to drain the wake
  // eventfd AFTER swapping the inbox, so a Post landing between the two
  // had its wake signal consumed while its task stayed queued — with an
  // empty timer wheel (op_timeout=0 arms none) the next epoll_wait then
  // blocked forever on the queued task. A task posting another task
  // reproduces it deterministically: the inner Post's signal was eaten
  // by the same drain that covered the outer one.
  auto loop = EventLoop::Create();
  ASSERT_TRUE(loop.ok());
  (*loop)->Start();
  Waiter w;
  (*loop)->Post([&] { (*loop)->Post([&] { w.Done(); }); });
  EXPECT_TRUE(w.WaitFor(1, 5000ms)) << "inner posted task never ran";
}

TEST(EventLoopWakeup, RepostChainRunsToCompletion) {
  // Same race, exercised repeatedly: each task posts the next, so every
  // link of the chain crosses the swap-vs-drain window once.
  auto loop = EventLoop::Create();
  ASSERT_TRUE(loop.ok());
  (*loop)->Start();
  constexpr int kDepth = 200;
  Waiter w;
  std::function<void(int)> step = [&](int remaining) {
    if (remaining == 0) {
      w.Done();
      return;
    }
    (*loop)->Post([&, remaining] { step(remaining - 1); });
  };
  step(kDepth);
  EXPECT_TRUE(w.WaitFor(1, 10000ms)) << "repost chain stalled";
  EXPECT_FALSE((*loop)->dead());
}

TEST(NadAsync, SubmitMixedBatchCompletes) {
  auto cluster = Cluster::Start();
  Waiter w;
  std::string read_back = "sentinel";
  std::string stats_text;
  std::vector<NadClient::Op> ops;
  ops.push_back(NadClient::Op::Write(RegisterId{0, 7}, "mixed", [&] {
    // The write and the read target the same register and ride the same
    // batch frame; the server serves sub-ops in order, so the read
    // observes the write.
    w.Done();
  }));
  ops.push_back(NadClient::Op::Read(RegisterId{0, 7}, [&](Value v) {
    read_back = std::move(v);
    w.Done();
  }));
  ops.push_back(
      NadClient::Op::Stats(1, [&](Expected<std::string> s) {
        ASSERT_TRUE(s.ok()) << s.status().ToString();
        stats_text = std::move(*s);
        w.Done();
      }));
  cluster.client->Submit(1, std::move(ops));
  ASSERT_TRUE(w.WaitFor(3));
  EXPECT_EQ(read_back, "mixed");
  EXPECT_NE(stats_text.find("counter nad.server.reads"),
            std::string::npos)
      << stats_text;
  EXPECT_EQ(cluster.client->InFlight(), 0u);
}

TEST(NadAsync, StatsViaSubmitSharesPendingPath) {
  // A peer that accepts but never answers (the server replies to STATS
  // even on a crashed disk — it is a control-plane probe, so silence
  // needs a dead peer): the op sits in the same pending map as reads and
  // writes and the deadline sweep completes it with kTimeout.
  auto listener = Listener::Bind(0);
  ASSERT_TRUE(listener.ok());
  std::jthread acceptor([&] {
    auto s = listener->Accept();  // held open, never served
    if (s.ok()) std::this_thread::sleep_for(2s);
  });
  auto client = NadClient::Connect(
      {{0, NadClient::Endpoint{"127.0.0.1", listener->port()}}});
  ASSERT_TRUE(client.ok());
  Waiter w;
  Status got = Status::Ok();
  std::vector<NadClient::Op> ops;
  ops.push_back(NadClient::Op::Stats(0, [&](Expected<std::string> s) {
    got = s.status();
    w.Done();
  }));
  (*client)->Submit(1, std::move(ops), OpOptions::WithDeadline(100ms));
  EXPECT_EQ((*client)->InFlight(), 1u);  // STATS is counted in flight
  ASSERT_TRUE(w.WaitFor(1));
  EXPECT_EQ(got.code(), StatusCode::kTimeout) << got.ToString();
  EXPECT_EQ((*client)->InFlight(), 0u);
}

TEST(NadAsync, StatsOnUnmappedDiskFailsFast) {
  auto cluster = Cluster::Start();
  Waiter w;
  Status got = Status::Ok();
  std::vector<NadClient::Op> ops;
  ops.push_back(NadClient::Op::Stats(99, [&](Expected<std::string> s) {
    got = s.status();
    w.Done();
  }));
  cluster.client->Submit(1, std::move(ops));
  ASSERT_TRUE(w.WaitFor(1));
  EXPECT_EQ(got.code(), StatusCode::kUnavailable) << got.ToString();
  EXPECT_EQ(cluster.client->InFlight(), 0u);
}

TEST(NadAsync, StatsWhileLinkDownFailsUnavailable) {
  // Regression: a STATS op admitted while its link was reconnecting used
  // to be parked in the pending-stats map, but the redial rebuild
  // retransmits only reads/writes — with no deadline the op stayed
  // counted in flight forever and its handler never ran. Per the header
  // contract it must complete kUnavailable when the connection is down.
  auto server = NadServer::Start({});
  ASSERT_TRUE(server.ok());
  NadClient::Options opts;
  opts.retry.breaker_threshold = 1;  // first failed redial → suspected
  auto client = NadClient::Connect(
      {{0, NadClient::Endpoint{"127.0.0.1", (*server)->port()}}}, opts);
  ASSERT_TRUE(client.ok());
  (*server)->Stop();
  // Suspicion (published on the first failed redial) is proof the loop
  // has seen the break: the link has left kUp and cannot return while
  // the port stays closed.
  const auto deadline = std::chrono::steady_clock::now() + 10s;
  while (!(*client)->IsSuspectedCrashed(0) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(5ms);
  }
  ASSERT_TRUE((*client)->IsSuspectedCrashed(0));
  Waiter w;
  Status got = Status::Ok();
  std::vector<NadClient::Op> ops;
  ops.push_back(NadClient::Op::Stats(0, [&](Expected<std::string> s) {
    got = s.status();
    w.Done();
  }));
  (*client)->Submit(1, std::move(ops));  // no deadline: must still resolve
  ASSERT_TRUE(w.WaitFor(1));
  EXPECT_EQ(got.code(), StatusCode::kUnavailable) << got.ToString();
  EXPECT_EQ((*client)->InFlight(), 0u);
}

TEST(NadAsync, QueryStatsReturnsServerText) {
  // The blocking shim over the STATS Submit path.
  auto cluster = Cluster::Start();
  auto stats = cluster.client->QueryStats(2, 2000ms);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_NE(stats->find("counter nad.server.writes"),
            std::string::npos)
      << *stats;
}

TEST(NadAsync, NumEventLoopsValidatedAtConnect) {
  Cluster cluster;
  auto endpoints = cluster.StartServers(3);

  NadClient::Options too_many;
  too_many.num_event_loops = NadClient::kMaxEventLoops + 1;
  auto bad = NadClient::Connect(endpoints, too_many);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalid);

  NadClient::Options two;
  two.num_event_loops = 2;
  auto client = NadClient::Connect(endpoints, two);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  EXPECT_EQ((*client)->NumEventLoops(), 2u);

  NadClient::Options defaulted;  // 0 = hardware concurrency, clamped
  auto client2 = NadClient::Connect(endpoints, defaulted);
  ASSERT_TRUE(client2.ok());
  EXPECT_GE((*client2)->NumEventLoops(), 1u);
  EXPECT_LE((*client2)->NumEventLoops(), 3u);

  // Both clients work: write through one, read through the other.
  Waiter w;
  (*client)->IssueWrite(1, RegisterId{1, 3}, "loops", [&] { w.Done(); });
  ASSERT_TRUE(w.WaitFor(1));
  std::string got;
  Waiter r;
  (*client2)->IssueRead(1, RegisterId{1, 3}, [&](Value v) {
    got = std::move(v);
    r.Done();
  });
  ASSERT_TRUE(r.WaitFor(1));
  EXPECT_EQ(got, "loops");
}

TEST(NadAsync, InFlightGaugeStaysConsistentAfterExpiry) {
  // Regression: expiry sweeps used to decrement the gauge but not the
  // InFlight() map (or vice versa). Both now read one atomic, so they
  // agree at every instant. The registry is global across the binary, so
  // assert on deltas.
  NadClient::Options opts;
  opts.op_timeout = 100ms;
  auto cluster = Cluster::Start(3, opts);
  const std::int64_t gauge_before = InFlightGauge();

  cluster.servers[0]->CrashDisk(0);
  constexpr int kOps = 8;
  for (int i = 0; i < kOps; ++i) {
    cluster.client->IssueWrite(1, RegisterId{0, static_cast<BlockId>(i)},
                               "doomed", [] {});
  }
  EXPECT_EQ(cluster.client->InFlight(), static_cast<std::size_t>(kOps));
  EXPECT_EQ(InFlightGauge() - gauge_before, kOps);

  // Wait for the sweep to expire everything.
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (cluster.client->InFlight() != 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(10ms);
  }
  EXPECT_EQ(cluster.client->InFlight(), 0u);
  EXPECT_EQ(InFlightGauge() - gauge_before, 0);
}

TEST(NadAsync, ThousandClientSmoke) {
  // 1000 emulated client sessions multiplexed over the event loops: each
  // session writes then reads its own register and verifies round-trip.
  auto cluster = Cluster::Start();
  constexpr int kSessions = 1000;
  Waiter w;
  std::atomic<int> mismatches{0};
  for (int k = 0; k < kSessions; ++k) {
    const RegisterId reg{static_cast<DiskId>(k % 3),
                         static_cast<BlockId>(k)};
    const std::string payload = "s" + std::to_string(k);
    cluster.client->IssueWrite(k, reg, payload, [&, reg, payload, k] {
      cluster.client->IssueRead(k, reg, [&, payload](Value v) {
        if (v != payload) ++mismatches;
        w.Done();
      });
    });
  }
  ASSERT_TRUE(w.WaitFor(kSessions, 30000ms));
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(cluster.client->InFlight(), 0u);
}

}  // namespace
}  // namespace nadreg::nad
