// Unit tests for the randomized threaded disk-farm simulator: delivery,
// crash (unresponsive) semantics, lazy register materialization, stats.
#include "common/sync.h"
#include "sim/sim_farm.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

namespace nadreg::sim {
namespace {

using namespace std::chrono_literals;

SimFarm::Options Fast(std::uint64_t seed = 1) {
  SimFarm::Options o;
  o.seed = seed;
  o.min_delay_us = 0;
  o.max_delay_us = 100;
  return o;
}

// Small helper: block until a counter reaches a target or a deadline.
class Counter {
 public:
  void Bump() {
    // Notify under the lock: the waiter may destroy this object as soon
    // as its predicate holds.
    MutexLock lock(mu_);
    ++n_;
    cv_.NotifyAll();
  }
  bool WaitFor(int target, std::chrono::milliseconds d = 2000ms) {
    MutexLock lock(mu_);
    return cv_.WaitFor(mu_, d, [&] { return n_ >= target; });
  }
  int value() {
    MutexLock lock(mu_);
    return n_;
  }

 private:
  Mutex mu_;
  CondVar cv_;
  int n_ = 0;
};

TEST(SimFarm, WriteThenReadRoundtrip) {
  SimFarm farm(Fast());
  RegisterId r{0, 5};
  Counter done;
  farm.IssueWrite(1, r, "hello", [&] { done.Bump(); });
  ASSERT_TRUE(done.WaitFor(1));

  std::string got;
  Counter read_done;
  farm.IssueRead(2, r, [&](Value v) {
    got = std::move(v);
    read_done.Bump();
  });
  ASSERT_TRUE(read_done.WaitFor(1));
  EXPECT_EQ(got, "hello");
}

TEST(SimFarm, UnwrittenRegisterReadsInitialValue) {
  SimFarm farm(Fast());
  std::string got = "sentinel";
  Counter done;
  farm.IssueRead(1, RegisterId{3, 999}, [&](Value v) {
    got = std::move(v);
    done.Bump();
  });
  ASSERT_TRUE(done.WaitFor(1));
  EXPECT_TRUE(got.empty());
}

TEST(SimFarm, DistinctRegistersAreIndependent) {
  SimFarm farm(Fast());
  Counter done;
  farm.IssueWrite(1, RegisterId{0, 1}, "a", [&] { done.Bump(); });
  farm.IssueWrite(1, RegisterId{0, 2}, "b", [&] { done.Bump(); });
  farm.IssueWrite(1, RegisterId{1, 1}, "c", [&] { done.Bump(); });
  ASSERT_TRUE(done.WaitFor(3));
  EXPECT_EQ(farm.Peek(RegisterId{0, 1}), "a");
  EXPECT_EQ(farm.Peek(RegisterId{0, 2}), "b");
  EXPECT_EQ(farm.Peek(RegisterId{1, 1}), "c");
}

TEST(SimFarm, CrashedRegisterNeverResponds) {
  SimFarm farm(Fast());
  RegisterId r{0, 1};
  farm.CrashRegister(r);
  std::atomic<bool> responded{false};
  farm.IssueWrite(1, r, "x", [&] { responded = true; });
  farm.IssueRead(1, r, [&](Value) { responded = true; });
  std::this_thread::sleep_for(50ms);
  EXPECT_FALSE(responded.load());
  // The crashed register's state never changed.
  EXPECT_TRUE(farm.Peek(r).empty());
}

TEST(SimFarm, FullDiskCrashSilencesEveryBlock) {
  SimFarm farm(Fast());
  farm.CrashDisk(2);
  std::atomic<int> responses{0};
  for (BlockId b = 0; b < 10; ++b) {
    farm.IssueRead(1, RegisterId{2, b}, [&](Value) { ++responses; });
  }
  // A different disk still works.
  Counter ok;
  farm.IssueRead(1, RegisterId{0, 0}, [&](Value) { ok.Bump(); });
  ASSERT_TRUE(ok.WaitFor(1));
  std::this_thread::sleep_for(50ms);
  EXPECT_EQ(responses.load(), 0);
}

TEST(SimFarm, CrashAfterIssueDropsQueuedOps) {
  // Long delays so the crash lands while ops are still queued.
  SimFarm::Options o;
  o.min_delay_us = 200000;
  o.max_delay_us = 300000;
  SimFarm farm(o);
  RegisterId r{0, 7};
  std::atomic<bool> responded{false};
  farm.IssueWrite(1, r, "x", [&] { responded = true; });
  farm.CrashRegister(r);
  std::this_thread::sleep_for(400ms);
  EXPECT_FALSE(responded.load());
  EXPECT_TRUE(farm.Peek(r).empty());  // the write never took effect
}

TEST(SimFarm, LastDeliveredWriteWins) {
  SimFarm farm(Fast(7));
  RegisterId r{0, 0};
  Counter done;
  for (int i = 0; i < 20; ++i) {
    farm.IssueWrite(1, r, "v" + std::to_string(i), [&] { done.Bump(); });
  }
  ASSERT_TRUE(done.WaitFor(20));
  // Some write was delivered last; the register holds one of them.
  std::string v = farm.Peek(r);
  EXPECT_EQ(v.rfind("v", 0), 0u);
}

TEST(SimFarm, StatsCountIssuedAndCompleted) {
  SimFarm farm(Fast());
  Counter done;
  farm.IssueWrite(1, RegisterId{0, 0}, "x", [&] { done.Bump(); });
  farm.IssueRead(1, RegisterId{0, 0}, [&](Value) { done.Bump(); });
  ASSERT_TRUE(done.WaitFor(2));
  auto s = farm.stats();
  EXPECT_EQ(s.writes_issued, 1u);
  EXPECT_EQ(s.reads_issued, 1u);
  EXPECT_EQ(s.writes_completed, 1u);
  EXPECT_EQ(s.reads_completed, 1u);
  EXPECT_EQ(farm.InFlight(), 0u);
}

TEST(SimFarm, HandlerMayIssueFollowUpOps) {
  SimFarm farm(Fast());
  RegisterId r{0, 0};
  Counter done;
  farm.IssueWrite(1, r, "first", [&] {
    farm.IssueRead(1, r, [&](Value v) {
      EXPECT_EQ(v, "first");
      done.Bump();
    });
  });
  ASSERT_TRUE(done.WaitFor(1));
}

TEST(SimFarm, ManyConcurrentIssuersAllComplete) {
  SimFarm farm(Fast(3));
  Counter done;
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 50;
  std::vector<std::jthread> threads;
  threads.reserve(kThreads);
  for (int tid = 0; tid < kThreads; ++tid) {
    threads.emplace_back([&, tid] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        farm.IssueWrite(static_cast<ProcessId>(tid),
                        RegisterId{0, static_cast<BlockId>(i % 5)}, "x",
                        [&] { done.Bump(); });
      }
    });
  }
  threads.clear();  // join
  ASSERT_TRUE(done.WaitFor(kThreads * kOpsPerThread, 5000ms));
  auto s = farm.stats();
  EXPECT_EQ(s.writes_issued, static_cast<std::uint64_t>(kThreads * kOpsPerThread));
  EXPECT_EQ(s.writes_completed, s.writes_issued);
}

// Parameterized over seeds: whatever the (racy, seed-influenced) delivery
// order, every issued write completes and each register's final value is
// one of the values written to that register.
class SimFarmSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimFarmSeeds, FinalStateIsSomeWrittenValue) {
  SimFarm farm(Fast(GetParam()));
  Counter done;
  for (int i = 0; i < 30; ++i) {
    farm.IssueWrite(1, RegisterId{0, static_cast<BlockId>(i % 3)},
                    "v" + std::to_string(i), [&] { done.Bump(); });
  }
  ASSERT_TRUE(done.WaitFor(30));
  for (BlockId b = 0; b < 3; ++b) {
    const std::string v = farm.Peek(RegisterId{0, b});
    ASSERT_EQ(v.rfind("v", 0), 0u);
    const int i = std::stoi(v.substr(1));
    EXPECT_EQ(static_cast<BlockId>(i % 3), b)
        << "register holds a value written to a different register";
  }
  EXPECT_EQ(farm.stats().writes_completed, 30u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimFarmSeeds,
                         ::testing::Values(1, 17, 99, 12345));

}  // namespace
}  // namespace nadreg::sim
