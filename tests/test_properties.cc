// Broad property sweeps: every register emulation, driven by the shared
// workload harness across resilience levels, crash patterns, payload
// sizes and seeds — each run's history certified by the exact checker for
// the algorithm's claimed consistency level.
#include <gtest/gtest.h>

#include "harness/workload.h"

namespace nadreg::harness {
namespace {

struct Param {
  Algorithm algorithm;
  std::uint64_t seed;
  std::uint32_t t;
  int writers;
  int readers;
  int ops;
  int crash_disks;
  std::size_t payload = 8;
  bool over_tcp = false;
};

std::string ParamName(const ::testing::TestParamInfo<Param>& info) {
  const Param& p = info.param;
  return AlgorithmName(p.algorithm) + "_t" + std::to_string(p.t) + "_w" +
         std::to_string(p.writers) + "r" + std::to_string(p.readers) + "_c" +
         std::to_string(p.crash_disks) + "_s" + std::to_string(p.seed) + "_p" +
         std::to_string(p.payload) + (p.over_tcp ? "_tcp" : "");
}

class WorkloadSweep : public ::testing::TestWithParam<Param> {};

TEST_P(WorkloadSweep, ClaimedConsistencyHolds) {
  const Param& p = GetParam();
  WorkloadOptions opts;
  opts.algorithm = p.algorithm;
  opts.seed = p.seed;
  opts.t = p.t;
  opts.writers = p.writers;
  opts.readers = p.readers;
  opts.ops_per_process = p.ops;
  opts.crash_disks = p.crash_disks;
  opts.payload_bytes = p.payload;
  opts.over_tcp = p.over_tcp;
  auto result = RunWorkload(opts);
  EXPECT_TRUE(result.ok()) << result.check.explanation;
  EXPECT_GE(result.history.size(),
            static_cast<std::size_t>(p.ops));  // something actually ran
}

INSTANTIATE_TEST_SUITE_P(
    SwsrAtomic, WorkloadSweep,
    ::testing::Values(
        Param{Algorithm::kSwsrAtomic, 1, 1, 1, 1, 6, 0},
        Param{Algorithm::kSwsrAtomic, 2, 1, 1, 1, 6, 1},
        Param{Algorithm::kSwsrAtomic, 3, 1, 1, 1, 10, 1},
        Param{Algorithm::kSwsrAtomic, 4, 2, 1, 1, 6, 2},
        Param{Algorithm::kSwsrAtomic, 5, 3, 1, 1, 5, 3},
        Param{Algorithm::kSwsrAtomic, 6, 1, 1, 1, 5, 1, 0},     // empty payload pad
        Param{Algorithm::kSwsrAtomic, 7, 1, 1, 1, 5, 1, 2048},  // 2 KiB values
        Param{Algorithm::kSwsrAtomic, 8, 2, 1, 1, 8, 1}),
    ParamName);

INSTANTIATE_TEST_SUITE_P(
    SwmrAtomic, WorkloadSweep,
    ::testing::Values(
        Param{Algorithm::kSwmrAtomic, 11, 1, 1, 2, 5, 0},
        Param{Algorithm::kSwmrAtomic, 12, 1, 1, 3, 5, 1},
        Param{Algorithm::kSwmrAtomic, 13, 1, 1, 4, 4, 1},
        Param{Algorithm::kSwmrAtomic, 14, 2, 1, 3, 4, 2},
        Param{Algorithm::kSwmrAtomic, 15, 2, 1, 2, 6, 1},
        Param{Algorithm::kSwmrAtomic, 16, 1, 1, 2, 5, 1, 1024},
        Param{Algorithm::kSwmrAtomic, 17, 1, 1, 5, 3, 1},
        Param{Algorithm::kSwmrAtomic, 18, 3, 1, 2, 4, 3}),
    ParamName);

INSTANTIATE_TEST_SUITE_P(
    MwsrSeqCst, WorkloadSweep,
    ::testing::Values(
        Param{Algorithm::kMwsrSeqCst, 21, 1, 2, 1, 5, 0},
        Param{Algorithm::kMwsrSeqCst, 22, 1, 3, 1, 5, 1},
        Param{Algorithm::kMwsrSeqCst, 23, 1, 4, 1, 4, 1},
        Param{Algorithm::kMwsrSeqCst, 24, 2, 3, 1, 4, 2},
        Param{Algorithm::kMwsrSeqCst, 25, 1, 2, 1, 8, 1},
        Param{Algorithm::kMwsrSeqCst, 26, 1, 3, 1, 5, 1, 512},
        Param{Algorithm::kMwsrSeqCst, 27, 2, 2, 1, 6, 0},
        Param{Algorithm::kMwsrSeqCst, 28, 3, 2, 1, 4, 3}),
    ParamName);

INSTANTIATE_TEST_SUITE_P(
    MwmrAtomic, WorkloadSweep,
    ::testing::Values(
        Param{Algorithm::kMwmrAtomic, 31, 1, 2, 2, 4, 0},
        Param{Algorithm::kMwmrAtomic, 32, 1, 3, 2, 3, 1},
        Param{Algorithm::kMwmrAtomic, 33, 1, 2, 3, 3, 1},
        Param{Algorithm::kMwmrAtomic, 34, 2, 2, 2, 3, 2},
        Param{Algorithm::kMwmrAtomic, 35, 1, 1, 4, 3, 1},
        Param{Algorithm::kMwmrAtomic, 36, 1, 4, 1, 3, 1},
        Param{Algorithm::kMwmrAtomic, 37, 1, 2, 2, 3, 1, 256},
        Param{Algorithm::kMwmrAtomic, 38, 2, 3, 3, 2, 1}),
    ParamName);

// The memo-less regular reader: only regularity is claimed (atomicity may
// genuinely fail under adversarial-enough schedules; the regular claim
// must always hold).
INSTANTIATE_TEST_SUITE_P(
    SwsrRegular, WorkloadSweep,
    ::testing::Values(
        Param{Algorithm::kSwsrRegular, 51, 1, 1, 1, 8, 0},
        Param{Algorithm::kSwsrRegular, 52, 1, 1, 1, 8, 1},
        Param{Algorithm::kSwsrRegular, 53, 2, 1, 1, 6, 2},
        Param{Algorithm::kSwsrRegular, 54, 1, 1, 1, 12, 1}),
    ParamName);

// The same workloads over REAL TCP disk daemons (loopback), including
// hard server kills mid-run — the deployment the paper targets.
INSTANTIATE_TEST_SUITE_P(
    OverTcp, WorkloadSweep,
    ::testing::Values(
        Param{Algorithm::kSwsrAtomic, 41, 1, 1, 1, 5, 0, 8, true},
        Param{Algorithm::kSwsrAtomic, 42, 1, 1, 1, 5, 1, 8, true},
        Param{Algorithm::kSwmrAtomic, 43, 1, 1, 2, 4, 1, 8, true},
        Param{Algorithm::kMwsrSeqCst, 44, 1, 2, 1, 4, 1, 8, true},
        Param{Algorithm::kMwmrAtomic, 45, 1, 2, 2, 3, 1, 8, true},
        Param{Algorithm::kMwmrAtomic, 46, 1, 2, 2, 3, 0, 512, true}),
    ParamName);

// Determinism guard: the workload harness itself must not be the source
// of flakiness — same options, same claim verdict (histories differ by
// thread timing, but the verdict must be stable success).
TEST(WorkloadHarness, RepeatedRunsStayGreen) {
  for (int round = 0; round < 5; ++round) {
    WorkloadOptions opts;
    opts.algorithm = Algorithm::kMwmrAtomic;
    opts.seed = 77 + round;
    opts.writers = 2;
    opts.readers = 2;
    opts.ops_per_process = 3;
    opts.crash_disks = 1;
    auto result = RunWorkload(opts);
    EXPECT_TRUE(result.ok()) << "round " << round << "\n"
                             << result.check.explanation;
  }
}

// The harness's global op counters must only ever grow, and each run's
// deltas must equal exactly the operations its history recorded.
TEST(WorkloadHarness, OpCountersMonotoneAndConsistentWithHistory) {
  WorkloadOptions opts;
  opts.algorithm = Algorithm::kSwmrAtomic;
  opts.seed = 91;
  opts.writers = 1;
  opts.readers = 2;
  opts.ops_per_process = 4;
  auto r1 = RunWorkload(opts);
  ASSERT_TRUE(r1.ok());
  EXPECT_GE(r1.writes_after, r1.writes_before);
  EXPECT_GE(r1.reads_after, r1.reads_before);
  EXPECT_EQ(r1.writes_after - r1.writes_before, 4u);  // 1 writer x 4 ops
  EXPECT_EQ(r1.reads_after - r1.reads_before, 8u);    // 2 readers x 4 ops
  EXPECT_EQ((r1.writes_after - r1.writes_before) +
                (r1.reads_after - r1.reads_before),
            r1.history.size());

  // A second run resumes from where the first left the global counters.
  opts.seed = 92;
  auto r2 = RunWorkload(opts);
  ASSERT_TRUE(r2.ok());
  EXPECT_GE(r2.writes_before, r1.writes_after);
  EXPECT_GE(r2.reads_before, r1.reads_after);
  EXPECT_EQ(r2.writes_after - r2.writes_before, 4u);
  EXPECT_EQ(r2.reads_after - r2.reads_before, 8u);
}

TEST(WorkloadHarness, ClampsRolesToAlgorithmLimits) {
  WorkloadOptions opts;
  opts.algorithm = Algorithm::kSwsrAtomic;
  opts.writers = 5;  // clamped to 1
  opts.readers = 5;  // clamped to 1
  opts.ops_per_process = 3;
  auto result = RunWorkload(opts);
  EXPECT_TRUE(result.ok());
  // 1 writer + 1 reader, 3 ops each.
  EXPECT_EQ(result.history.size(), 6u);
}

}  // namespace
}  // namespace nadreg::harness
