// Tests for the shared-memory applications translated onto NADs: Lamport's
// fast mutual exclusion (mutual exclusion + fast path + crash tolerance)
// and the totally ordered shared log.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/sync.h"
#include "apps/fast_mutex.h"
#include "apps/shared_log.h"
#include "core/config.h"
#include "sim/sim_farm.h"

namespace nadreg::apps {
namespace {

using core::FarmConfig;
using sim::SimFarm;

TEST(FastMutex, UncontendedLockTakesFastPath) {
  FarmConfig cfg{1};
  SimFarm farm;
  FastMutex mtx(farm, cfg, 100, /*n=*/3, /*pid=*/1);
  mtx.Lock();
  EXPECT_TRUE(mtx.LastAcquireWasFast());
  mtx.Unlock();
  mtx.Lock();
  EXPECT_TRUE(mtx.LastAcquireWasFast());
  mtx.Unlock();
}

TEST(FastMutex, SequentialHandoffBetweenProcesses) {
  FarmConfig cfg{1};
  SimFarm farm;
  FastMutex m1(farm, cfg, 100, 2, 1);
  FastMutex m2(farm, cfg, 100, 2, 2);
  m1.Lock();
  m1.Unlock();
  m2.Lock();
  EXPECT_TRUE(m2.LastAcquireWasFast());
  m2.Unlock();
}

TEST(FastMutex, MutualExclusionUnderContention) {
  FarmConfig cfg{1};
  SimFarm::Options o;
  o.seed = 9;
  o.max_delay_us = 20;
  SimFarm farm(o);

  constexpr int kProcs = 3;
  constexpr int kRounds = 4;
  std::atomic<int> in_cs{0};
  std::atomic<int> max_in_cs{0};
  int counter = 0;  // protected by the distributed mutex

  std::vector<std::jthread> threads;
  for (int p = 1; p <= kProcs; ++p) {
    threads.emplace_back([&, p] {
      FastMutex mtx(farm, cfg, 100, kProcs, p);
      for (int r = 0; r < kRounds; ++r) {
        mtx.Lock();
        int now = ++in_cs;
        int prev_max = max_in_cs.load();
        while (now > prev_max && !max_in_cs.compare_exchange_weak(prev_max, now)) {
        }
        ++counter;  // would be a data race if exclusion failed
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        --in_cs;
        mtx.Unlock();
      }
    });
  }
  threads.clear();
  EXPECT_EQ(max_in_cs.load(), 1) << "two processes were in the CS at once";
  EXPECT_EQ(counter, kProcs * kRounds);
}

TEST(FastMutex, SurvivesDiskCrash) {
  FarmConfig cfg{1};
  SimFarm farm;
  farm.CrashDisk(0);
  FastMutex mtx(farm, cfg, 100, 2, 1);
  mtx.Lock();
  mtx.Unlock();
  mtx.Lock();
  mtx.Unlock();
}

TEST(SharedLog, EmptyLogReadsEmpty) {
  FarmConfig cfg{1};
  SimFarm farm;
  SharedLog log(farm, cfg, 200, 1);
  EXPECT_TRUE(log.Read().empty());
}

TEST(SharedLog, AppendsAppearInOrder) {
  FarmConfig cfg{1};
  SimFarm farm;
  SharedLog log(farm, cfg, 200, 1);
  log.Append("one");
  log.Append("two");
  log.Append("three");
  auto entries = log.Read();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].payload, "one");
  EXPECT_EQ(entries[1].payload, "two");
  EXPECT_EQ(entries[2].payload, "three");
}

TEST(SharedLog, ReadersAgreeOnGlobalOrder) {
  FarmConfig cfg{1};
  SimFarm::Options o;
  o.seed = 13;
  o.max_delay_us = 20;
  SimFarm farm(o);

  // Concurrent appenders.
  {
    std::vector<std::jthread> threads;
    for (ProcessId p = 1; p <= 3; ++p) {
      threads.emplace_back([&, p] {
        SharedLog log(farm, cfg, 200, p);
        for (int i = 0; i < 3; ++i) {
          log.Append(std::to_string(p) + ":" + std::to_string(i));
        }
      });
    }
  }
  SharedLog r1(farm, cfg, 200, 50);
  SharedLog r2(farm, cfg, 200, 51);
  auto e1 = r1.Read();
  auto e2 = r2.Read();
  ASSERT_EQ(e1.size(), 9u);
  ASSERT_EQ(e2.size(), 9u);
  for (std::size_t i = 0; i < e1.size(); ++i) {
    EXPECT_EQ(e1[i].payload, e2[i].payload) << "divergent order at " << i;
  }
  // Per-author subsequences respect append order.
  for (ProcessId p = 1; p <= 3; ++p) {
    std::vector<std::string> mine;
    for (const auto& e : e1) {
      if (e.author == p) mine.push_back(e.payload);
    }
    ASSERT_EQ(mine.size(), 3u);
    for (int i = 0; i < 3; ++i) {
      EXPECT_EQ(mine[i], std::to_string(p) + ":" + std::to_string(i));
    }
  }
}

TEST(SharedLog, CompletedAppendVisibleToLaterRead) {
  FarmConfig cfg{1};
  SimFarm farm;
  SharedLog writer(farm, cfg, 200, 1);
  SharedLog reader(farm, cfg, 200, 2);
  writer.Append("durable");
  auto entries = reader.Read();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].payload, "durable");
  EXPECT_EQ(entries[0].author, 1u);
}

TEST(SharedLog, SurvivesDiskCrashBetweenAppendAndRead) {
  FarmConfig cfg{1};
  SimFarm farm;
  SharedLog writer(farm, cfg, 200, 1);
  writer.Append("persisted");
  farm.CrashDisk(1);
  SharedLog reader(farm, cfg, 200, 2);
  auto entries = reader.Read();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].payload, "persisted");
}

TEST(SharedLog, LogIsPrefixStableAcrossReads) {
  FarmConfig cfg{1};
  SimFarm farm;
  SharedLog log(farm, cfg, 200, 1);
  log.Append("a");
  auto before = log.Read();
  log.Append("b");
  auto after = log.Read();
  ASSERT_EQ(before.size(), 1u);
  ASSERT_EQ(after.size(), 2u);
  EXPECT_EQ(after[0].payload, before[0].payload);
}

}  // namespace
}  // namespace nadreg::apps
