// Tests for the config store: last-writer-wins over the global log order,
// erase/tombstones, cross-client visibility and agreement, crash
// tolerance, and concurrent mixed workloads.
#include "apps/config_store.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "core/config.h"
#include "sim/sim_farm.h"

namespace nadreg::apps {
namespace {

using core::FarmConfig;
using sim::SimFarm;

TEST(ConfigStore, GetOfUnsetKeyIsNullopt) {
  FarmConfig cfg{1};
  SimFarm farm;
  ConfigStore store(farm, cfg, 300, 1);
  EXPECT_FALSE(store.Get("missing").has_value());
}

TEST(ConfigStore, SetThenGet) {
  FarmConfig cfg{1};
  SimFarm farm;
  ConfigStore store(farm, cfg, 300, 1);
  store.Set("color", "blue");
  auto v = store.Get("color");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, "blue");
}

TEST(ConfigStore, LastWriterWinsInLogOrder) {
  FarmConfig cfg{1};
  SimFarm farm;
  ConfigStore store(farm, cfg, 300, 1);
  store.Set("k", "v1");
  store.Set("k", "v2");
  store.Set("k", "v3");
  EXPECT_EQ(*store.Get("k"), "v3");
  EXPECT_EQ(store.UpdateCount(), 3u);
}

TEST(ConfigStore, EraseTombstones) {
  FarmConfig cfg{1};
  SimFarm farm;
  ConfigStore store(farm, cfg, 300, 1);
  store.Set("k", "v");
  store.Erase("k");
  EXPECT_FALSE(store.Get("k").has_value());
  store.Set("k", "back");
  EXPECT_EQ(*store.Get("k"), "back");
}

TEST(ConfigStore, CrossClientVisibility) {
  FarmConfig cfg{1};
  SimFarm farm;
  ConfigStore alice(farm, cfg, 300, 1);
  ConfigStore bob(farm, cfg, 300, 2);
  alice.Set("owner", "alice");
  auto v = bob.Get("owner");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, "alice");
}

TEST(ConfigStore, SnapshotIsConsistentMap) {
  FarmConfig cfg{1};
  SimFarm farm;
  ConfigStore store(farm, cfg, 300, 1);
  store.Set("a", "1");
  store.Set("b", "2");
  store.Set("a", "3");
  store.Erase("b");
  auto snap = store.Snapshot();
  EXPECT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap.at("a"), "3");
}

TEST(ConfigStore, SurvivesDiskCrash) {
  FarmConfig cfg{1};
  SimFarm farm;
  ConfigStore store(farm, cfg, 300, 1);
  store.Set("durable", "yes");
  farm.CrashDisk(0);
  ConfigStore reader(farm, cfg, 300, 2);
  auto v = reader.Get("durable");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, "yes");
}

TEST(ConfigStore, ConcurrentClientsAgreeOnFinalState) {
  FarmConfig cfg{1};
  SimFarm::Options o;
  o.seed = 17;
  o.max_delay_us = 20;
  SimFarm farm(o);
  {
    std::vector<std::jthread> clients;
    for (ProcessId p = 1; p <= 3; ++p) {
      clients.emplace_back([&, p] {
        ConfigStore store(farm, cfg, 300, p);
        for (int i = 0; i < 3; ++i) {
          store.Set("key-" + std::to_string(p), std::to_string(i));
          store.Set("shared", std::to_string(p * 100 + i));
        }
      });
    }
  }
  ConfigStore r1(farm, cfg, 300, 50);
  ConfigStore r2(farm, cfg, 300, 51);
  auto s1 = r1.Snapshot();
  auto s2 = r2.Snapshot();
  EXPECT_EQ(s1, s2) << "two readers disagree on the final state";
  // Per-client keys reflect each client's last write.
  for (ProcessId p = 1; p <= 3; ++p) {
    EXPECT_EQ(s1.at("key-" + std::to_string(p)), "2");
  }
  // "shared" holds SOMEONE's final write (global order decides whose).
  EXPECT_TRUE(s1.contains("shared"));
}

TEST(ConfigStore, DistinctObjectsIndependent) {
  FarmConfig cfg{1};
  SimFarm farm;
  ConfigStore a(farm, cfg, 300, 1);
  ConfigStore b(farm, cfg, 301, 1);
  a.Set("k", "for-a");
  EXPECT_FALSE(b.Get("k").has_value());
}

}  // namespace
}  // namespace nadreg::apps
