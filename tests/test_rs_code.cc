// Unit tests for the Reed–Solomon fragment codec and the coded-cell
// semilattice: round-trips over an (n, k) grid, every erasure pattern up
// to n-k losses, corrupted-fragment rejection, and the merge laws
// (commutativity, idempotence, commit pruning, pending-tag cap) that make
// retransmitted deltas harmless.
#include "core/coded/rs_code.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "common/coded_cell.h"
#include "common/rng.h"

namespace nadreg::core {
namespace {

std::string RandomValue(Rng& rng, std::size_t size) {
  std::string v(size, '\0');
  for (char& c : v) c = static_cast<char>(rng.Below(256));
  return v;
}

std::vector<std::pair<unsigned, std::string_view>> Pick(
    const std::vector<std::string>& frags, const std::vector<unsigned>& idx) {
  std::vector<std::pair<unsigned, std::string_view>> out;
  for (unsigned i : idx) out.emplace_back(i, frags[i]);
  return out;
}

TEST(RsCode, RejectsBadGeometry) {
  EXPECT_FALSE(RsCode::Make(4, 0).ok());
  EXPECT_FALSE(RsCode::Make(4, 5).ok());
  EXPECT_FALSE(RsCode::Make(300, 5).ok());
  EXPECT_TRUE(RsCode::Make(1, 1).ok());
  EXPECT_TRUE(RsCode::Make(255, 100).ok());
}

TEST(RsCode, SystematicPrefix) {
  auto rs = RsCode::Make(8, 5);
  ASSERT_TRUE(rs.ok());
  Rng rng(42);
  const std::string value = RandomValue(rng, 1000);
  auto frags = rs->Encode(value);
  ASSERT_EQ(frags.size(), 8u);
  const std::size_t fs = rs->FragmentSize(value.size());
  EXPECT_EQ(fs, 200u);
  // Fragments 0..k-1 are verbatim (zero-padded) slices of the value.
  for (unsigned i = 0; i < 5; ++i) {
    ASSERT_EQ(frags[i].size(), fs);
    const std::size_t off = i * fs;
    for (std::size_t b = 0; b < fs; ++b) {
      const char expect = off + b < value.size() ? value[off + b] : '\0';
      ASSERT_EQ(frags[i][b], expect) << "fragment " << i << " byte " << b;
    }
  }
}

TEST(RsCode, RoundTripGrid) {
  Rng rng(7);
  const std::vector<std::pair<unsigned, unsigned>> grid = {
      {1, 1}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {6, 4}, {8, 5}, {12, 8}};
  const std::vector<std::size_t> sizes = {0, 1, 4, 16, 63, 64, 65, 1000};
  for (auto [n, k] : grid) {
    auto rs = RsCode::Make(n, k);
    ASSERT_TRUE(rs.ok()) << n << "/" << k;
    for (std::size_t size : sizes) {
      const std::string value = RandomValue(rng, size);
      auto frags = rs->Encode(value);
      ASSERT_EQ(frags.size(), n);
      // Decode from the first k fragments and from the last k fragments.
      std::vector<unsigned> first, last;
      for (unsigned i = 0; i < k; ++i) first.push_back(i);
      for (unsigned i = n - k; i < n; ++i) last.push_back(i);
      for (const auto& idx : {first, last}) {
        auto decoded = rs->Decode(Pick(frags, idx), size);
        ASSERT_TRUE(decoded.ok()) << n << "/" << k << " size " << size;
        EXPECT_EQ(*decoded, value);
      }
    }
  }
}

TEST(RsCode, EveryErasurePatternUpToNMinusKLosses) {
  auto rs = RsCode::Make(8, 5);
  ASSERT_TRUE(rs.ok());
  Rng rng(99);
  const std::string value = RandomValue(rng, 333);
  auto frags = rs->Encode(value);
  // Every 5-of-8 subset (= every erasure pattern of up to 3 losses) must
  // reconstruct: C(8,5) = 56 subsets.
  std::vector<unsigned> idx = {0, 1, 2, 3, 4};
  int subsets = 0;
  std::vector<bool> mask(8, false);
  std::fill(mask.begin(), mask.begin() + 5, true);
  std::sort(mask.begin(), mask.end());
  do {
    idx.clear();
    for (unsigned i = 0; i < 8; ++i) {
      if (mask[i]) idx.push_back(i);
    }
    auto decoded = rs->Decode(Pick(frags, idx), value.size());
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(*decoded, value);
    ++subsets;
  } while (std::next_permutation(mask.begin(), mask.end()));
  EXPECT_EQ(subsets, 56);
}

TEST(RsCode, DecodeRejectsMalformedInput) {
  auto rs = RsCode::Make(6, 4);
  ASSERT_TRUE(rs.ok());
  Rng rng(5);
  const std::string value = RandomValue(rng, 100);
  auto frags = rs->Encode(value);

  // Too few fragments.
  EXPECT_FALSE(rs->Decode(Pick(frags, {0, 1, 2}), value.size()).ok());
  // Duplicate indices do not count twice.
  EXPECT_FALSE(rs->Decode({{0, frags[0]}, {0, frags[0]}, {1, frags[1]},
                           {2, frags[2]}},
                          value.size())
                   .ok());
  // Out-of-range index.
  EXPECT_FALSE(rs->Decode({{0, frags[0]}, {1, frags[1]}, {2, frags[2]},
                           {9, frags[3]}},
                          value.size())
                   .ok());
  // Fragment size inconsistent with value_size.
  std::string runt = frags[3].substr(1);
  EXPECT_FALSE(rs->Decode({{0, frags[0]}, {1, frags[1]}, {2, frags[2]},
                           {3, runt}},
                          value.size())
                   .ok());
}

TEST(RsCode, CorruptedFragmentIsCaughtByCrc) {
  // The RS decoder reconstructs *some* value from any k fragments — a
  // silently flipped bit yields a wrong value, which is why CodedMwmr
  // checks each fragment's CRC before it may enter a decode set.
  auto rs = RsCode::Make(8, 5);
  ASSERT_TRUE(rs.ok());
  Rng rng(13);
  const std::string value = RandomValue(rng, 500);
  auto frags = rs->Encode(value);
  const std::uint32_t good_crc = Crc32(frags[6]);
  frags[6][10] ^= 0x40;
  EXPECT_NE(Crc32(frags[6]), good_crc);
  auto decoded = rs->Decode(Pick(frags, {2, 3, 4, 5, 6}), value.size());
  ASSERT_TRUE(decoded.ok());
  EXPECT_NE(*decoded, value);  // garbage in, garbage out — CRC's job
}

// --- Coded-cell semilattice laws -------------------------------------------

CodedFragment MakeFrag(SeqNum seq, ProcessId writer, std::uint8_t index,
                       std::string bytes) {
  CodedFragment f;
  f.tag = CodedTag{seq, writer};
  f.index = index;
  f.n = 8;
  f.k = 5;
  f.value_size = 100;
  f.crc = Crc32(bytes);
  f.bytes = std::move(bytes);
  return f;
}

TEST(CodedCell, MergeIsCommutativeAndIdempotent) {
  const std::string put_a = EncodeCodedPut(MakeFrag(1, 1, 0, "aaaa"));
  const std::string put_b = EncodeCodedPut(MakeFrag(2, 2, 0, "bbbb"));
  const std::string commit = EncodeCodedCommit(CodedTag{1, 1});

  const Value ab = MergeCodedCell(MergeCodedCell("", put_a), put_b);
  const Value ba = MergeCodedCell(MergeCodedCell("", put_b), put_a);
  EXPECT_EQ(ab, ba);

  const Value twice = MergeCodedCell(ab, put_a);
  EXPECT_EQ(twice, ab);  // replaying a delta is a no-op

  const Value c1 = MergeCodedCell(ab, commit);
  const Value c2 = MergeCodedCell(c1, commit);
  EXPECT_EQ(c1, c2);
}

TEST(CodedCell, CommitPrunesOlderFragmentsOnly) {
  Value cell;
  cell = MergeCodedCell(cell, EncodeCodedPut(MakeFrag(1, 1, 0, "old")));
  cell = MergeCodedCell(cell, EncodeCodedPut(MakeFrag(2, 1, 0, "new")));
  cell = MergeCodedCell(cell, EncodeCodedCommit(CodedTag{2, 1}));
  auto decoded = DecodeCodedCell(cell);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->committed, (CodedTag{2, 1}));
  // Tag 1's fragment is pruned (a higher tag committed); tag 2's stays.
  ASSERT_EQ(decoded->frags.size(), 1u);
  EXPECT_EQ(decoded->frags[0].tag, (CodedTag{2, 1}));
  EXPECT_EQ(decoded->frags[0].bytes, "new");
  // A late Put below the committed tag is rejected outright.
  cell = MergeCodedCell(cell, EncodeCodedPut(MakeFrag(1, 9, 0, "late")));
  auto after = DecodeCodedCell(cell);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->frags.size(), 1u);
}

TEST(CodedCell, PendingTagsAreBounded) {
  Value cell;
  for (SeqNum s = 1; s <= 3 * CodedCell::kMaxPendingTags; ++s) {
    cell = MergeCodedCell(cell, EncodeCodedPut(MakeFrag(s, 1, 0, "x")));
  }
  auto decoded = DecodeCodedCell(cell);
  ASSERT_TRUE(decoded.ok());
  EXPECT_LE(decoded->frags.size(), CodedCell::kMaxPendingTags);
  // The surviving tags are the highest ones (lowest-evicted policy).
  EXPECT_EQ(decoded->frags.back().tag.seq, 3 * CodedCell::kMaxPendingTags);
}

TEST(CodedCell, FragmentCarryingCommitObeysMergeLaws) {
  // The protocol's commits always carry the destination's fragment; the
  // join laws must hold for them exactly as for Puts and bare commits.
  const std::string put_b = EncodeCodedPut(MakeFrag(2, 2, 0, "bbbb"));
  const std::string commit_a = EncodeCodedCommit(MakeFrag(1, 1, 0, "aaaa"));

  const Value ab = MergeCodedCell(MergeCodedCell("", commit_a), put_b);
  const Value ba = MergeCodedCell(MergeCodedCell("", put_b), commit_a);
  EXPECT_EQ(ab, ba);
  EXPECT_EQ(MergeCodedCell(ab, commit_a), ab);  // idempotent

  auto decoded = DecodeCodedCell(ab);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->committed, (CodedTag{1, 1}));
  ASSERT_EQ(decoded->frags.size(), 2u);  // committed's own frag + pending
  EXPECT_EQ(decoded->frags[0].bytes, "aaaa");
  EXPECT_EQ(decoded->frags[1].bytes, "bbbb");
}

TEST(CodedCell, CommitReinstallsEvictedFragment) {
  // Regression (REVIEW finding 2): >kMaxPendingTags concurrent writers
  // can evict the fragment of a tag whose Put already reached a write
  // quorum, before its Commit lands here. The commit carries the
  // fragment, so the committed tag is decodable at this disk again.
  Value cell = MergeCodedCell("", EncodeCodedPut(MakeFrag(1, 1, 0, "mine")));
  for (SeqNum s = 2; s <= 2 + CodedCell::kMaxPendingTags; ++s) {
    cell = MergeCodedCell(cell, EncodeCodedPut(MakeFrag(s, 7, 0, "race")));
  }
  auto flooded = DecodeCodedCell(cell);
  ASSERT_TRUE(flooded.ok());
  ASSERT_FALSE(flooded->frags.empty());
  EXPECT_GT(flooded->frags.front().tag.seq, 1u);  // tag 1 evicted

  cell = MergeCodedCell(cell, EncodeCodedCommit(MakeFrag(1, 1, 0, "mine")));
  auto committed = DecodeCodedCell(cell);
  ASSERT_TRUE(committed.ok());
  EXPECT_EQ(committed->committed, (CodedTag{1, 1}));
  ASSERT_FALSE(committed->frags.empty());
  EXPECT_EQ(committed->frags.front().tag, (CodedTag{1, 1}));
  EXPECT_EQ(committed->frags.front().bytes, "mine");
}

TEST(CodedCell, StaleFragmentCarryingCommitDoesNotResurrect) {
  // A commit below the cell's committed tag must neither lower it nor
  // re-install its (pruned) fragment.
  Value cell = MergeCodedCell("", EncodeCodedCommit(MakeFrag(5, 1, 0, "new")));
  cell = MergeCodedCell(cell, EncodeCodedCommit(MakeFrag(3, 2, 0, "old")));
  auto decoded = DecodeCodedCell(cell);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->committed, (CodedTag{5, 1}));
  ASSERT_EQ(decoded->frags.size(), 1u);
  EXPECT_EQ(decoded->frags[0].tag, (CodedTag{5, 1}));
}

TEST(CodedCell, EmptyFragmentCellRoundTrips) {
  // Regression: a zero-byte value encodes to zero-byte fragments, whose
  // cell entries are exactly the 31-byte wire minimum — the hostile-count
  // bound must not reject the cell's own encoding.
  const Value cell = MergeCodedCell("", EncodeCodedPut(MakeFrag(1, 1, 0, "")));
  auto decoded = DecodeCodedCell(cell);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->frags.size(), 1u);
  EXPECT_TRUE(decoded->frags[0].bytes.empty());
}

TEST(CodedCell, MergeToleratesGarbage) {
  const std::string put = EncodeCodedPut(MakeFrag(1, 1, 0, "abc"));
  // Garbage current resets to empty-then-merge; garbage delta is ignored.
  const Value from_garbage = MergeCodedCell("!!not a cell!!", put);
  EXPECT_EQ(from_garbage, MergeCodedCell("", put));
  const Value kept = MergeCodedCell(from_garbage, "?? junk ??");
  EXPECT_EQ(kept, from_garbage);
}

}  // namespace
}  // namespace nadreg::core
