// Tests for the consistency checkers themselves: hand-built histories with
// known verdicts, including the paper's separating examples (atomic vs
// sequentially consistent), incomplete writes, and randomized
// sanity sweeps against a reference sequential executor.
#include "checker/consistency.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "checker/history.h"
#include "common/rng.h"

namespace nadreg::checker {
namespace {

// History-building helper with explicit timestamps.
struct H {
  std::vector<Operation> ops;

  H& W(ProcessId p, std::string v, std::uint64_t inv, std::uint64_t res) {
    Operation op;
    op.id = ops.size();
    op.process = p;
    op.kind = OpKind::kWrite;
    op.value = std::move(v);
    op.invoke = inv;
    op.respond = res;
    op.completed = true;
    ops.push_back(std::move(op));
    return *this;
  }
  H& R(ProcessId p, std::string v, std::uint64_t inv, std::uint64_t res) {
    Operation op;
    op.id = ops.size();
    op.process = p;
    op.kind = OpKind::kRead;
    op.value = std::move(v);
    op.invoke = inv;
    op.respond = res;
    op.completed = true;
    ops.push_back(std::move(op));
    return *this;
  }
  /// Incomplete (crashed) write: may take effect at any later time or never.
  H& Wpend(ProcessId p, std::string v, std::uint64_t inv) {
    Operation op;
    op.id = ops.size();
    op.process = p;
    op.kind = OpKind::kWrite;
    op.value = std::move(v);
    op.invoke = inv;
    op.respond = std::numeric_limits<std::uint64_t>::max();
    op.completed = false;
    ops.push_back(std::move(op));
    return *this;
  }
};

TEST(CheckAtomic, EmptyHistoryIsAtomic) {
  EXPECT_TRUE(CheckAtomic({}).ok);
}

TEST(CheckAtomic, SequentialReadsAndWrites) {
  H h;
  h.W(1, "a", 1, 2).R(2, "a", 3, 4).W(1, "b", 5, 6).R(2, "b", 7, 8);
  EXPECT_TRUE(CheckAtomic(h.ops).ok);
}

TEST(CheckAtomic, ReadOfInitialValue) {
  H h;
  h.R(1, "", 1, 2).W(2, "x", 3, 4).R(1, "x", 5, 6);
  EXPECT_TRUE(CheckAtomic(h.ops).ok);
  EXPECT_TRUE(CheckAtomic(h.ops, "").ok);
}

TEST(CheckAtomic, CustomInitialValue) {
  H h;
  h.R(1, "init", 1, 2);
  EXPECT_TRUE(CheckAtomic(h.ops, "init").ok);
  EXPECT_FALSE(CheckAtomic(h.ops, "other").ok);
}

TEST(CheckAtomic, StaleReadAfterCompletedWriteFails) {
  // W(b) completed strictly before the read; read returns the older "a".
  H h;
  h.W(1, "a", 1, 2).W(1, "b", 3, 4).R(2, "a", 5, 6);
  auto result = CheckAtomic(h.ops);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.explanation.find("NOT atomic"), std::string::npos);
}

TEST(CheckAtomic, ConcurrentWriteMayLinearizeEitherWay) {
  // Read overlaps the write: both old and new values are acceptable.
  H h1;
  h1.W(1, "a", 1, 10).R(2, "a", 2, 3);
  EXPECT_TRUE(CheckAtomic(h1.ops).ok);
  H h2;
  h2.W(1, "a", 1, 10).R(2, "", 2, 3);
  EXPECT_TRUE(CheckAtomic(h2.ops).ok);
}

TEST(CheckAtomic, NewOldInversionFails) {
  // Two sequential reads of different readers: new then old — the classic
  // atomicity violation (fine for regular registers, fatal for atomic).
  H h;
  h.W(1, "new", 1, 20)      // write concurrent with both reads
      .R(2, "new", 2, 3)    // reader A sees the new value
      .R(3, "", 4, 5);      // reader B then reads the initial value
  EXPECT_FALSE(CheckAtomic(h.ops).ok);
}

TEST(CheckAtomic, PendingWriteMayTakeEffectLate) {
  // W(x) never completes; a much later read may still return x (the
  // pending write took effect in between).
  H h;
  h.Wpend(1, "x", 1).R(2, "", 2, 3).R(2, "x", 10, 11);
  EXPECT_TRUE(CheckAtomic(h.ops).ok);
}

TEST(CheckAtomic, PendingWriteMayNeverTakeEffect) {
  H h;
  h.Wpend(1, "x", 1).R(2, "", 2, 3).R(2, "", 10, 11);
  EXPECT_TRUE(CheckAtomic(h.ops).ok);
}

TEST(CheckAtomic, PendingWriteCannotUnhappen) {
  // Once a read returned x, a later read may not return the initial value
  // again — even though the write never completed.
  H h;
  h.Wpend(1, "x", 1).R(2, "x", 2, 3).R(2, "", 10, 11);
  EXPECT_FALSE(CheckAtomic(h.ops).ok);
}

TEST(CheckAtomic, WitnessIsAValidLinearization) {
  H h;
  h.W(1, "a", 1, 4).R(2, "a", 2, 6).W(1, "b", 7, 9).R(2, "b", 8, 12);
  auto result = CheckAtomic(h.ops);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.witness.size(), 4u);
  // Replay the witness: reads must return the then-current value.
  std::string value;
  for (std::size_t id : result.witness) {
    const Operation& op = h.ops[id];
    if (op.kind == OpKind::kWrite) {
      value = op.value;
    } else {
      EXPECT_EQ(op.value, value);
    }
  }
}

TEST(CheckSeqCst, AtomicHistoriesAreAlsoSequentiallyConsistent) {
  H h;
  h.W(1, "a", 1, 2).R(2, "a", 3, 4).W(1, "b", 5, 6).R(2, "b", 7, 8);
  EXPECT_TRUE(CheckSequentiallyConsistent(h.ops).ok);
}

TEST(CheckSeqCst, NewOldInversionAcrossProcessesIsAllowed) {
  // The Fig. 2 separating example: not atomic, but serializable by
  // reordering across processes.
  H h;
  h.W(1, "va", 1, 2)
      .W(2, "vb", 3, 4)
      .R(3, "vb", 5, 6)
      .R(3, "va", 7, 8);
  EXPECT_FALSE(CheckAtomic(h.ops).ok);
  EXPECT_TRUE(CheckSequentiallyConsistent(h.ops).ok);
}

TEST(CheckSeqCst, ProgramOrderViolationFails) {
  // One process reads b then a, where the same single process wrote a
  // then b: no serialization can respect its own program order.
  H h;
  h.W(1, "a", 1, 2).W(1, "b", 3, 4).R(2, "b", 5, 6).R(2, "a", 7, 8);
  EXPECT_FALSE(CheckSequentiallyConsistent(h.ops).ok);
}

TEST(CheckSeqCst, StaleReadIsAllowed) {
  // Sequentially consistent registers may return arbitrarily stale values
  // (Section 5: READ 0 after WRITE 0, WRITE 1 is serializable).
  H h;
  h.W(1, "0", 1, 2).W(1, "1", 3, 4).R(2, "0", 5, 6);
  EXPECT_FALSE(CheckAtomic(h.ops).ok);
  EXPECT_TRUE(CheckSequentiallyConsistent(h.ops).ok);
}

TEST(CheckSeqCst, ValueNeverWrittenFails) {
  H h;
  h.W(1, "a", 1, 2).R(2, "ghost", 3, 4);
  EXPECT_FALSE(CheckSequentiallyConsistent(h.ops).ok);
}

TEST(CheckSeqCst, ReadBeforeAnyWriteOfThatValueByItsOwnProcess) {
  // p reads "b" before writing it itself; q never writes. Serialization
  // must place some write of "b" before the read — impossible.
  H h;
  h.R(1, "b", 1, 2).W(1, "b", 3, 4);
  EXPECT_FALSE(CheckSequentiallyConsistent(h.ops).ok);
}

TEST(CheckRegular, SequentialHistoryIsRegular) {
  H h;
  h.W(1, "a", 1, 2).R(2, "a", 3, 4).W(1, "b", 5, 6).R(2, "b", 7, 8);
  EXPECT_TRUE(CheckRegular(h.ops).ok);
}

TEST(CheckRegular, ConcurrentWriteAllowsEitherValue) {
  H h1;
  h1.W(1, "a", 1, 10).R(2, "a", 2, 3);
  EXPECT_TRUE(CheckRegular(h1.ops).ok);
  H h2;
  h2.W(1, "a", 1, 10).R(2, "", 2, 3);
  EXPECT_TRUE(CheckRegular(h2.ops).ok);
}

TEST(CheckRegular, NewOldInversionIsRegularButNotAtomic) {
  // The separation between regular and atomic: both reads overlap the
  // write, first sees new, second sees old.
  H h;
  h.W(1, "new", 1, 20).R(2, "new", 2, 3).R(3, "", 4, 5);
  EXPECT_TRUE(CheckRegular(h.ops).ok);
  EXPECT_FALSE(CheckAtomic(h.ops).ok);
}

TEST(CheckRegular, StaleReadAfterCompletedWriteFails) {
  H h;
  h.W(1, "a", 1, 2).W(1, "b", 3, 4).R(2, "a", 5, 6);
  auto result = CheckRegular(h.ops);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.explanation.find("NOT regular"), std::string::npos);
}

TEST(CheckRegular, NeverWrittenValueFails) {
  H h;
  h.W(1, "a", 1, 2).R(2, "ghost", 3, 4);
  EXPECT_FALSE(CheckRegular(h.ops).ok);
}

TEST(CheckRegular, PendingWriteIsForeverConcurrent) {
  H h;
  h.Wpend(1, "x", 1).R(2, "x", 10, 11).R(2, "", 20, 21);
  // Both allowed: the torn write is concurrent with every later read —
  // regular permits the un-happening that atomicity forbids.
  EXPECT_TRUE(CheckRegular(h.ops).ok);
  EXPECT_FALSE(CheckAtomic(h.ops).ok);
}

TEST(CheckRegular, InitialValueBeforeAnyWrite) {
  H h;
  h.R(2, "", 1, 2).W(1, "a", 3, 4);
  EXPECT_TRUE(CheckRegular(h.ops).ok);
  H bad;
  bad.R(2, "a", 1, 2).W(1, "a", 3, 4);
  EXPECT_FALSE(CheckRegular(bad.ops).ok);
}

TEST(CheckRegular, RejectsMultiWriterHistories) {
  H h;
  h.W(1, "a", 1, 2).W(2, "b", 3, 4);
  auto result = CheckRegular(h.ops);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.explanation.find("single writer"), std::string::npos);
}

TEST(CheckRegular, AtomicHistoriesAreAlwaysRegular) {
  // atomic ⊂ regular on single-writer histories.
  Rng rng(321);
  for (int round = 0; round < 50; ++round) {
    H h;
    std::uint64_t clock = 0;
    std::string value;
    int wcount = 0;
    for (int s = 0; s < 12; ++s) {
      const std::uint64_t inv = ++clock;
      const std::uint64_t res = ++clock;
      if (rng.Chance(1, 2)) {
        value = "v" + std::to_string(++wcount);
        h.W(1, value, inv, res);
      } else {
        h.R(2 + rng.Below(2), value, inv, res);
      }
    }
    ASSERT_TRUE(CheckAtomic(h.ops).ok);
    EXPECT_TRUE(CheckRegular(h.ops).ok);
  }
}

// Randomized cross-validation: histories generated by an actual sequential
// execution (interleaving per-process scripts) must always pass both
// checkers; mutating one read to a wrong value must fail atomicity.
class CheckerRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CheckerRandom, SequentialExecutionsAlwaysPass) {
  Rng rng(GetParam());
  for (int round = 0; round < 30; ++round) {
    const int procs = 2 + static_cast<int>(rng.Below(3));
    const int steps = 4 + static_cast<int>(rng.Below(10));
    std::vector<Operation> ops;
    std::string value;
    std::uint64_t clock = 0;
    int wcount = 0;
    for (int s = 0; s < steps; ++s) {
      Operation op;
      op.id = ops.size();
      op.process = rng.Below(procs);
      op.invoke = ++clock;
      if (rng.Chance(1, 2)) {
        op.kind = OpKind::kWrite;
        op.value = "v" + std::to_string(++wcount);
        value = op.value;
      } else {
        op.kind = OpKind::kRead;
        op.value = value;
      }
      op.respond = ++clock;
      op.completed = true;
      ops.push_back(std::move(op));
    }
    EXPECT_TRUE(CheckAtomic(ops).ok);
    EXPECT_TRUE(CheckSequentiallyConsistent(ops).ok);

    // Mutate one read to a never-written value: both checkers must fail.
    for (auto& op : ops) {
      if (op.kind == OpKind::kRead) {
        op.value = "never-written";
        EXPECT_FALSE(CheckAtomic(ops).ok);
        EXPECT_FALSE(CheckSequentiallyConsistent(ops).ok);
        break;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CheckerRandom,
                         ::testing::Values(101, 102, 103, 104));

TEST(CheckAtomic, HandlesWiderConcurrencyEfficiently) {
  // 60 ops, 6 processes, heavy overlap: the memoized search must finish
  // fast. All reads return the last completed write before their invoke —
  // a valid linearization exists.
  std::vector<Operation> ops;
  std::uint64_t clock = 0;
  std::string last;
  for (int round = 0; round < 10; ++round) {
    std::string v = "v" + std::to_string(round);
    for (ProcessId p = 0; p < 3; ++p) {
      Operation w;
      w.id = ops.size();
      w.process = p;
      w.kind = OpKind::kWrite;
      w.value = v;  // same value from several writers keeps state space big
      w.invoke = clock + 1;
      w.respond = clock + 10;
      w.completed = true;
      ops.push_back(w);
    }
    clock += 10;
    for (ProcessId p = 3; p < 6; ++p) {
      Operation r;
      r.id = ops.size();
      r.process = p;
      r.kind = OpKind::kRead;
      r.value = v;
      r.invoke = clock + 1;
      r.respond = clock + 5;
      r.completed = true;
      ops.push_back(r);
    }
    clock += 5;
  }
  EXPECT_TRUE(CheckAtomic(ops).ok);
  EXPECT_TRUE(CheckSequentiallyConsistent(ops).ok);
}

}  // namespace
}  // namespace nadreg::checker
