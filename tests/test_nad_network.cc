// Integration tests for the real TCP NAD: server + client over loopback,
// crash (unresponsive) semantics over the wire, and the full register
// emulation stack (core/ algorithms) running unchanged on real sockets —
// the deployment the paper targets.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "core/config.h"
#include "core/mwmr_atomic.h"
#include "core/oneshot.h"
#include "core/swsr_atomic.h"
#include "nad/client.h"
#include "nad/server.h"

namespace nadreg::nad {
namespace {

using namespace std::chrono_literals;

struct Cluster {
  // One server process per disk, like a real SAN with 2t+1 disks.
  std::vector<std::unique_ptr<NadServer>> servers;
  std::unique_ptr<NadClient> client;
  core::FarmConfig cfg{1};

  static Cluster Start(std::uint32_t t = 1, std::uint64_t max_delay_us = 0) {
    Cluster c;
    c.cfg = core::FarmConfig{t};
    std::map<DiskId, NadClient::Endpoint> endpoints;
    for (DiskId d = 0; d < c.cfg.num_disks(); ++d) {
      NadServer::Options o;
      o.max_delay_us = max_delay_us;
      o.seed = 1000 + d;
      auto server = NadServer::Start(o);
      EXPECT_TRUE(server.ok()) << server.status().ToString();
      endpoints[d] = NadClient::Endpoint{"127.0.0.1", (*server)->port()};
      c.servers.push_back(std::move(*server));
    }
    auto client = NadClient::Connect(endpoints);
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    c.client = std::move(*client);
    return c;
  }
};

class Waiter {
 public:
  void Done() {
    // Notify under the lock: the waiter may destroy this object as soon
    // as its predicate holds.
    std::lock_guard lock(mu_);
    ++n_;
    cv_.notify_all();
  }
  bool WaitFor(int target, std::chrono::milliseconds d = 5000ms) {
    std::unique_lock lock(mu_);
    return cv_.wait_for(lock, d, [&] { return n_ >= target; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int n_ = 0;
};

TEST(NadNetwork, WriteThenReadOverTheWire) {
  auto cluster = Cluster::Start();
  Waiter w;
  cluster.client->IssueWrite(1, RegisterId{0, 5}, "over-tcp",
                             [&] { w.Done(); });
  ASSERT_TRUE(w.WaitFor(1));

  std::string got;
  Waiter r;
  cluster.client->IssueRead(1, RegisterId{0, 5}, [&](Value v) {
    got = std::move(v);
    r.Done();
  });
  ASSERT_TRUE(r.WaitFor(1));
  EXPECT_EQ(got, "over-tcp");
}

TEST(NadNetwork, UnwrittenBlockReadsInitial) {
  auto cluster = Cluster::Start();
  std::string got = "sentinel";
  Waiter r;
  cluster.client->IssueRead(1, RegisterId{1, 12345}, [&](Value v) {
    got = std::move(v);
    r.Done();
  });
  ASSERT_TRUE(r.WaitFor(1));
  EXPECT_TRUE(got.empty());
}

TEST(NadNetwork, CrashedRegisterNeverAnswers) {
  auto cluster = Cluster::Start();
  cluster.servers[0]->CrashRegister(RegisterId{0, 1});
  std::atomic<bool> answered{false};
  cluster.client->IssueWrite(1, RegisterId{0, 1}, "x",
                             [&] { answered = true; });
  std::this_thread::sleep_for(100ms);
  EXPECT_FALSE(answered.load());
  EXPECT_EQ(cluster.client->InFlight(), 1u);
}

TEST(NadNetwork, CrashedDiskSilencesWholeServer) {
  auto cluster = Cluster::Start();
  cluster.servers[2]->CrashDisk(2);
  std::atomic<int> answers{0};
  for (BlockId b = 0; b < 5; ++b) {
    cluster.client->IssueRead(1, RegisterId{2, b}, [&](Value) { ++answers; });
  }
  Waiter ok;
  cluster.client->IssueRead(1, RegisterId{0, 0}, [&](Value) { ok.Done(); });
  ASSERT_TRUE(ok.WaitFor(1));
  std::this_thread::sleep_for(100ms);
  EXPECT_EQ(answers.load(), 0);
}

TEST(NadNetwork, KilledServerBehavesAsCrashedDisk) {
  auto cluster = Cluster::Start();
  cluster.servers[1]->Stop();  // hard kill: connection drops
  std::atomic<bool> answered{false};
  cluster.client->IssueWrite(1, RegisterId{1, 0}, "x", [&] { answered = true; });
  std::this_thread::sleep_for(100ms);
  EXPECT_FALSE(answered.load());
}

TEST(NadNetwork, ManyOutstandingRequestsMultiplexed) {
  auto cluster = Cluster::Start(1, /*max_delay_us=*/200);
  Waiter w;
  constexpr int kOps = 100;
  for (int i = 0; i < kOps; ++i) {
    cluster.client->IssueWrite(1, RegisterId{0, static_cast<BlockId>(i)},
                               "v" + std::to_string(i), [&] { w.Done(); });
  }
  ASSERT_TRUE(w.WaitFor(kOps));
  EXPECT_EQ(cluster.client->InFlight(), 0u);
  EXPECT_EQ(cluster.servers[0]->ServedCount(), static_cast<std::uint64_t>(kOps));
}

TEST(NadNetwork, SwsrAtomicRegisterOverTcp) {
  auto cluster = Cluster::Start();
  core::SwsrAtomicWriter writer(*cluster.client, cluster.cfg,
                                cluster.cfg.Spread(0), 1);
  core::SwsrAtomicReader reader(*cluster.client, cluster.cfg,
                                cluster.cfg.Spread(0), 2);
  for (int i = 0; i < 10; ++i) {
    writer.Write("net" + std::to_string(i));
    EXPECT_EQ(reader.Read(), "net" + std::to_string(i));
  }
}

TEST(NadNetwork, SwsrSurvivesServerFailure) {
  auto cluster = Cluster::Start();
  core::SwsrAtomicWriter writer(*cluster.client, cluster.cfg,
                                cluster.cfg.Spread(0), 1);
  core::SwsrAtomicReader reader(*cluster.client, cluster.cfg,
                                cluster.cfg.Spread(0), 2);
  writer.Write("before-crash");
  EXPECT_EQ(reader.Read(), "before-crash");
  cluster.servers[0]->Stop();  // lose one of three disks
  writer.Write("after-crash");
  EXPECT_EQ(reader.Read(), "after-crash");
}

TEST(NadNetwork, OneShotRegisterOverTcp) {
  auto cluster = Cluster::Start();
  core::OneShotRegister w(*cluster.client, cluster.cfg, cluster.cfg.Spread(9), 1);
  core::OneShotRegister r(*cluster.client, cluster.cfg, cluster.cfg.Spread(9), 2);
  EXPECT_FALSE(r.Read().has_value());
  EXPECT_TRUE(w.Write("network-one-shot").ok());
  auto v = r.Read();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, "network-one-shot");
}

TEST(NadNetwork, MwmrAtomicOverTcpWithServerLoss) {
  // The full Section 6 construction — name snapshot, one-shot registers,
  // Fig. 3 — over real sockets, with one disk server killed mid-run.
  auto cluster = Cluster::Start();
  core::MwmrAtomic w1(*cluster.client, cluster.cfg, 1, 1);
  core::MwmrAtomic w2(*cluster.client, cluster.cfg, 1, 2);
  core::MwmrAtomic reader(*cluster.client, cluster.cfg, 1, 3);

  w1.Write("alpha");
  auto v1 = reader.Read();
  ASSERT_TRUE(v1.has_value());
  EXPECT_EQ(*v1, "alpha");

  cluster.servers[1]->Stop();

  w2.Write("beta");
  auto v2 = reader.Read();
  ASSERT_TRUE(v2.has_value());
  EXPECT_EQ(*v2, "beta");
}

TEST(NadNetwork, TwoClientsShareState) {
  auto cluster = Cluster::Start();
  std::map<DiskId, NadClient::Endpoint> endpoints;
  for (DiskId d = 0; d < cluster.cfg.num_disks(); ++d) {
    endpoints[d] = NadClient::Endpoint{"127.0.0.1", cluster.servers[d]->port()};
  }
  auto second = NadClient::Connect(endpoints);
  ASSERT_TRUE(second.ok());

  core::SwsrAtomicWriter writer(*cluster.client, cluster.cfg,
                                cluster.cfg.Spread(0), 1);
  core::SwsrAtomicReader reader(**second, cluster.cfg, cluster.cfg.Spread(0),
                                2);
  writer.Write("shared-state");
  EXPECT_EQ(reader.Read(), "shared-state");
}

}  // namespace
}  // namespace nadreg::nad
