// Integration tests for the real TCP NAD: server + client over loopback,
// crash (unresponsive) semantics over the wire, and the full register
// emulation stack (core/ algorithms) running unchanged on real sockets —
// the deployment the paper targets.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "common/sync.h"
#include "core/config.h"
#include "core/mwmr_atomic.h"
#include "core/oneshot.h"
#include "core/register_set.h"
#include "core/swsr_atomic.h"
#include "nad/client.h"
#include "nad/server.h"
#include "nad/socket.h"
#include "obs/metrics.h"

namespace nadreg::nad {
namespace {

using namespace std::chrono_literals;

struct Cluster {
  // One server process per disk, like a real SAN with 2t+1 disks.
  std::vector<std::unique_ptr<NadServer>> servers;
  std::unique_ptr<NadClient> client;
  core::FarmConfig cfg{1};

  static Cluster Start(std::uint32_t t = 1, std::uint64_t max_delay_us = 0) {
    Cluster c;
    c.cfg = core::FarmConfig{t};
    std::map<DiskId, NadClient::Endpoint> endpoints;
    for (DiskId d = 0; d < c.cfg.num_disks(); ++d) {
      NadServer::Options o;
      o.max_delay_us = max_delay_us;
      o.seed = 1000 + d;
      auto server = NadServer::Start(o);
      EXPECT_TRUE(server.ok()) << server.status().ToString();
      endpoints[d] = NadClient::Endpoint{"127.0.0.1", (*server)->port()};
      c.servers.push_back(std::move(*server));
    }
    auto client = NadClient::Connect(endpoints);
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    c.client = std::move(*client);
    return c;
  }
};

class Waiter {
 public:
  void Done() {
    // Notify under the lock: the waiter may destroy this object as soon
    // as its predicate holds.
    MutexLock lock(mu_);
    ++n_;
    cv_.NotifyAll();
  }
  bool WaitFor(int target, std::chrono::milliseconds d = 5000ms) {
    MutexLock lock(mu_);
    return cv_.WaitFor(mu_, d, [&] { return n_ >= target; });
  }

 private:
  Mutex mu_;
  CondVar cv_;
  int n_ = 0;
};

TEST(NadNetwork, WriteThenReadOverTheWire) {
  auto cluster = Cluster::Start();
  Waiter w;
  cluster.client->IssueWrite(1, RegisterId{0, 5}, "over-tcp",
                             [&] { w.Done(); });
  ASSERT_TRUE(w.WaitFor(1));

  std::string got;
  Waiter r;
  cluster.client->IssueRead(1, RegisterId{0, 5}, [&](Value v) {
    got = std::move(v);
    r.Done();
  });
  ASSERT_TRUE(r.WaitFor(1));
  EXPECT_EQ(got, "over-tcp");
}

TEST(NadNetwork, UnwrittenBlockReadsInitial) {
  auto cluster = Cluster::Start();
  std::string got = "sentinel";
  Waiter r;
  cluster.client->IssueRead(1, RegisterId{1, 12345}, [&](Value v) {
    got = std::move(v);
    r.Done();
  });
  ASSERT_TRUE(r.WaitFor(1));
  EXPECT_TRUE(got.empty());
}

TEST(NadNetwork, CrashedRegisterNeverAnswers) {
  auto cluster = Cluster::Start();
  cluster.servers[0]->CrashRegister(RegisterId{0, 1});
  std::atomic<bool> answered{false};
  cluster.client->IssueWrite(1, RegisterId{0, 1}, "x",
                             [&] { answered = true; });
  std::this_thread::sleep_for(100ms);
  EXPECT_FALSE(answered.load());
  EXPECT_EQ(cluster.client->InFlight(), 1u);
}

TEST(NadNetwork, CrashedDiskSilencesWholeServer) {
  auto cluster = Cluster::Start();
  cluster.servers[2]->CrashDisk(2);
  std::atomic<int> answers{0};
  for (BlockId b = 0; b < 5; ++b) {
    cluster.client->IssueRead(1, RegisterId{2, b}, [&](Value) { ++answers; });
  }
  Waiter ok;
  cluster.client->IssueRead(1, RegisterId{0, 0}, [&](Value) { ok.Done(); });
  ASSERT_TRUE(ok.WaitFor(1));
  std::this_thread::sleep_for(100ms);
  EXPECT_EQ(answers.load(), 0);
}

TEST(NadNetwork, KilledServerBehavesAsCrashedDisk) {
  auto cluster = Cluster::Start();
  cluster.servers[1]->Stop();  // hard kill: connection drops
  std::atomic<bool> answered{false};
  cluster.client->IssueWrite(1, RegisterId{1, 0}, "x", [&] { answered = true; });
  std::this_thread::sleep_for(100ms);
  EXPECT_FALSE(answered.load());
}

TEST(NadNetwork, ManyOutstandingRequestsMultiplexed) {
  auto cluster = Cluster::Start(1, /*max_delay_us=*/200);
  Waiter w;
  constexpr int kOps = 100;
  for (int i = 0; i < kOps; ++i) {
    cluster.client->IssueWrite(1, RegisterId{0, static_cast<BlockId>(i)},
                               "v" + std::to_string(i), [&] { w.Done(); });
  }
  ASSERT_TRUE(w.WaitFor(kOps));
  EXPECT_EQ(cluster.client->InFlight(), 0u);
  EXPECT_EQ(cluster.servers[0]->ServedCount(), static_cast<std::uint64_t>(kOps));
}

TEST(NadNetwork, SwsrAtomicRegisterOverTcp) {
  auto cluster = Cluster::Start();
  core::SwsrAtomicWriter writer(*cluster.client, cluster.cfg,
                                cluster.cfg.Spread(0), 1);
  core::SwsrAtomicReader reader(*cluster.client, cluster.cfg,
                                cluster.cfg.Spread(0), 2);
  for (int i = 0; i < 10; ++i) {
    writer.Write("net" + std::to_string(i));
    EXPECT_EQ(reader.Read(), "net" + std::to_string(i));
  }
}

TEST(NadNetwork, SwsrSurvivesServerFailure) {
  auto cluster = Cluster::Start();
  core::SwsrAtomicWriter writer(*cluster.client, cluster.cfg,
                                cluster.cfg.Spread(0), 1);
  core::SwsrAtomicReader reader(*cluster.client, cluster.cfg,
                                cluster.cfg.Spread(0), 2);
  writer.Write("before-crash");
  EXPECT_EQ(reader.Read(), "before-crash");
  cluster.servers[0]->Stop();  // lose one of three disks
  writer.Write("after-crash");
  EXPECT_EQ(reader.Read(), "after-crash");
}

TEST(NadNetwork, OneShotRegisterOverTcp) {
  auto cluster = Cluster::Start();
  core::OneShotRegister w(*cluster.client, cluster.cfg, cluster.cfg.Spread(9), 1);
  core::OneShotRegister r(*cluster.client, cluster.cfg, cluster.cfg.Spread(9), 2);
  EXPECT_FALSE(r.Read().has_value());
  EXPECT_TRUE(w.Write("network-one-shot").ok());
  auto v = r.Read();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, "network-one-shot");
}

TEST(NadNetwork, MwmrAtomicOverTcpWithServerLoss) {
  // The full Section 6 construction — name snapshot, one-shot registers,
  // Fig. 3 — over real sockets, with one disk server killed mid-run.
  auto cluster = Cluster::Start();
  core::MwmrAtomic w1(*cluster.client, cluster.cfg, 1, 1);
  core::MwmrAtomic w2(*cluster.client, cluster.cfg, 1, 2);
  core::MwmrAtomic reader(*cluster.client, cluster.cfg, 1, 3);

  w1.Write("alpha");
  auto v1 = reader.Read();
  ASSERT_TRUE(v1.has_value());
  EXPECT_EQ(*v1, "alpha");

  cluster.servers[1]->Stop();

  w2.Write("beta");
  auto v2 = reader.Read();
  ASSERT_TRUE(v2.has_value());
  EXPECT_EQ(*v2, "beta");
}

TEST(NadNetwork, IssueIsNonBlockingWhenPeerStopsDraining) {
  // Regression: IssueRead/IssueWrite used to SendFrame under a lock on
  // the caller's thread — a peer that stops draining its socket (send
  // buffer full) blocked the issuing process forever, violating the
  // Fig. 1 nonblocking-issue model. The sender thread owns the socket
  // now; issue only enqueues.
  auto listener = Listener::Bind(0);
  ASSERT_TRUE(listener.ok());
  Mutex mu;
  CondVar cv;
  Socket peer;  // held open and never read: the stalled server
  bool accepted = false;
  std::jthread acceptor([&] {
    auto s = listener->Accept();
    if (!s.ok()) return;
    MutexLock lock(mu);
    peer = std::move(*s);
    accepted = true;
    cv.NotifyAll();
  });
  auto client = NadClient::Connect({{0, Endpoint{"127.0.0.1", listener->port()}}});
  ASSERT_TRUE(client.ok());
  {
    MutexLock lock(mu);
    ASSERT_TRUE(cv.WaitFor(mu, 5000ms, [&] { return accepted; }));
  }
  // 64 MiB of writes — far beyond any socket buffer. Every issue call
  // must return promptly even though nothing is being drained.
  constexpr int kOps = 256;
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kOps; ++i) {
    (*client)->IssueWrite(1, RegisterId{0, static_cast<BlockId>(i)},
                          std::string(1 << 18, 'x'), [] {});
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(elapsed, 5000ms) << "issue blocked on a stalled peer";
  EXPECT_EQ((*client)->InFlight(), static_cast<std::size_t>(kOps));
  // Destruction must not hang either: shutdown unblocks the sender
  // stuck in send(). (Falls out of scope here; gtest would time out.)
}

TEST(NadNetwork, UnbatchedClientInterop) {
  // A client speaking only the pre-batch per-op opcodes works against
  // the batch-capable server, full stack included.
  auto cluster = Cluster::Start();
  NadClient::Options opts;
  opts.enable_batching = false;
  std::map<DiskId, NadClient::Endpoint> endpoints;
  for (DiskId d = 0; d < cluster.cfg.num_disks(); ++d) {
    endpoints[d] = NadClient::Endpoint{"127.0.0.1", cluster.servers[d]->port()};
  }
  auto old_style = NadClient::Connect(endpoints, opts);
  ASSERT_TRUE(old_style.ok());
  core::SwsrAtomicWriter writer(**old_style, cluster.cfg,
                                cluster.cfg.Spread(0), 1);
  core::SwsrAtomicReader reader(*cluster.client, cluster.cfg,
                                cluster.cfg.Spread(0), 2);
  // ...and the batch-capable client reads what the per-op client wrote.
  writer.Write("per-op-wire");
  EXPECT_EQ(reader.Read(), "per-op-wire");
}

TEST(NadNetwork, RawBatchFrameServedVectoredInOrder) {
  auto cluster = Cluster::Start();
  auto sock = nad::Connect("127.0.0.1", cluster.servers[0]->port());
  ASSERT_TRUE(sock.ok());
  Message batch;
  batch.type = MsgType::kBatchReq;
  Message w;
  w.type = MsgType::kWriteReq;
  w.request_id = 1;
  w.reg = RegisterId{0, 4};
  w.value = "vectored";
  Message r;
  r.type = MsgType::kReadReq;
  r.request_id = 2;
  r.reg = RegisterId{0, 4};
  batch.subs = {w, r};
  ASSERT_TRUE(SendFrame(*sock, EncodeMessage(batch)).ok());
  auto payload = RecvFrame(*sock, kMaxFrameBytes);
  ASSERT_TRUE(payload.ok());
  auto resp = DecodeMessage(*payload);
  ASSERT_TRUE(resp.ok());
  ASSERT_EQ(resp->type, MsgType::kBatchResp);
  ASSERT_EQ(resp->subs.size(), 2u);
  EXPECT_EQ(resp->subs[0].type, MsgType::kWriteResp);
  EXPECT_EQ(resp->subs[0].request_id, 1u);
  EXPECT_EQ(resp->subs[1].type, MsgType::kReadResp);
  EXPECT_EQ(resp->subs[1].request_id, 2u);
  // The write was served before the read of the same batch.
  EXPECT_EQ(resp->subs[1].value, "vectored");
  EXPECT_EQ(cluster.servers[0]->ServedCount(), 2u);
}

TEST(NadNetwork, CrashedRegisterOmittedFromBatchResponse) {
  // Per-register unresponsiveness inside a batch: the crashed register's
  // sub-response is silently missing; its neighbours still answer.
  auto cluster = Cluster::Start();
  cluster.servers[0]->CrashRegister(RegisterId{0, 1});
  auto sock = nad::Connect("127.0.0.1", cluster.servers[0]->port());
  ASSERT_TRUE(sock.ok());
  Message batch;
  batch.type = MsgType::kBatchReq;
  for (std::uint64_t id = 1; id <= 3; ++id) {
    Message w;
    w.type = MsgType::kWriteReq;
    w.request_id = id;
    w.reg = RegisterId{0, id - 1};  // blocks 0, 1 (crashed), 2
    w.value = "b" + std::to_string(id);
    batch.subs.push_back(std::move(w));
  }
  ASSERT_TRUE(SendFrame(*sock, EncodeMessage(batch)).ok());
  auto payload = RecvFrame(*sock, kMaxFrameBytes);
  ASSERT_TRUE(payload.ok());
  auto resp = DecodeMessage(*payload);
  ASSERT_TRUE(resp.ok());
  ASSERT_EQ(resp->type, MsgType::kBatchResp);
  ASSERT_EQ(resp->subs.size(), 2u);
  EXPECT_EQ(resp->subs[0].request_id, 1u);
  EXPECT_EQ(resp->subs[1].request_id, 3u);
}

TEST(NadNetwork, FullyCrashedBatchStaysSilent) {
  // Every sub-operation aimed at a crashed disk: the whole batch is
  // swallowed — no empty response frame betrays the crash.
  auto cluster = Cluster::Start();
  cluster.servers[1]->CrashDisk(1);
  std::atomic<int> answers{0};
  std::vector<NadClient::ReadOp> ops;
  for (BlockId b = 0; b < 4; ++b) {
    ops.push_back({RegisterId{1, b}, [&](Value) { ++answers; }});
  }
  cluster.client->IssueReads(1, std::move(ops));
  // A different disk still answers over its own connection.
  Waiter ok;
  cluster.client->IssueRead(1, RegisterId{0, 0}, [&](Value) { ok.Done(); });
  ASSERT_TRUE(ok.WaitFor(1));
  std::this_thread::sleep_for(100ms);
  EXPECT_EQ(answers.load(), 0);
}

TEST(NadNetwork, QuorumPhaseCoalescesIntoBatchFrames) {
  // An 8-registers-per-disk quorum phase issued through RegisterSet must
  // reach each disk as one vectored frame, visible in both batch-depth
  // histograms.
  auto cluster = Cluster::Start();
  std::vector<RegisterId> regs;
  for (DiskId d = 0; d < cluster.cfg.num_disks(); ++d) {
    for (BlockId b = 0; b < 8; ++b) regs.push_back(RegisterId{d, 100 + b});
  }
  core::RegisterSet set(*cluster.client, 1, regs);
  auto w = set.WriteAll("phase-payload");
  ASSERT_TRUE(set.Await(w, regs.size(), 5000ms));
  auto r = set.ReadAll();
  ASSERT_TRUE(set.Await(r, regs.size(), 5000ms));
  for (const auto& [idx, value] : r.Results()) {
    EXPECT_EQ(value, "phase-payload") << "register " << idx;
  }
  // Client side: some frame carried all 8 ops bound for one disk.
  EXPECT_GE(obs::Registry::Global()
                .GetHistogram("nad.client.batch_size")
                .MaxUs(),
            8u);
  // Server side: the per-instance registry saw at least one batch frame.
  const std::string stats = cluster.servers[0]->metrics().ToText();
  EXPECT_NE(stats.find("histogram nad.server.batch_size count "),
            std::string::npos);
  EXPECT_EQ(stats.find("histogram nad.server.batch_size count 0 "),
            std::string::npos)
      << stats;
}

TEST(NadNetwork, TwoClientsShareState) {
  auto cluster = Cluster::Start();
  std::map<DiskId, NadClient::Endpoint> endpoints;
  for (DiskId d = 0; d < cluster.cfg.num_disks(); ++d) {
    endpoints[d] = NadClient::Endpoint{"127.0.0.1", cluster.servers[d]->port()};
  }
  auto second = NadClient::Connect(endpoints);
  ASSERT_TRUE(second.ok());

  core::SwsrAtomicWriter writer(*cluster.client, cluster.cfg,
                                cluster.cfg.Spread(0), 1);
  core::SwsrAtomicReader reader(**second, cluster.cfg, cluster.cfg.Spread(0),
                                2);
  writer.Write("shared-state");
  EXPECT_EQ(reader.Read(), "shared-state");
}

}  // namespace
}  // namespace nadreg::nad
