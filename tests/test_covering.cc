// Tests for the generic hidden-write attack (the Theorem 2 construction
// parameterized over candidates): it must break every fault-tolerant
// candidate we have, flag the fragile one as blocked, and never declare a
// violation the checker would not certify.
#include "adversary/covering.h"

#include <gtest/gtest.h>

namespace nadreg::adversary {
namespace {

using core::FarmConfig;

TEST(HiddenWriteAttack, BreaksFig2Candidate) {
  auto result = HiddenWriteAttack(Fig2Candidate(), FarmConfig{1});
  EXPECT_EQ(result.kind, AttackResult::Kind::kViolationFound)
      << result.detail;
  EXPECT_FALSE(result.atomic.ok);
  // The damage is atomicity-specific — Fig. 2's real guarantee survives.
  EXPECT_TRUE(result.seqcst.ok) << result.seqcst.explanation;
}

TEST(HiddenWriteAttack, BreaksTimestampCandidate) {
  // The classic uniform timestamp construction is correct over reliable
  // base registers; the pending-write model kills it — exactly the
  // paper's point that "one needs to open the box".
  auto result = HiddenWriteAttack(TimestampCandidate(), FarmConfig{1});
  EXPECT_EQ(result.kind, AttackResult::Kind::kViolationFound)
      << result.detail;
  EXPECT_FALSE(result.atomic.ok);
  EXPECT_TRUE(result.seqcst.ok) << result.seqcst.explanation;
}

TEST(HiddenWriteAttack, BreaksTimestampCandidateAtT2) {
  auto result = HiddenWriteAttack(TimestampCandidate(), FarmConfig{2});
  EXPECT_EQ(result.kind, AttackResult::Kind::kViolationFound)
      << result.detail;
}

TEST(HiddenWriteAttack, DetectsNonFaultTolerantCandidate) {
  auto result = HiddenWriteAttack(FragileCandidate(), FarmConfig{1});
  EXPECT_EQ(result.kind, AttackResult::Kind::kCandidateBlocked);
  EXPECT_NE(result.detail.find("not 1-crash fault-tolerant"),
            std::string::npos);
}

TEST(HiddenWriteAttack, HistoriesAreCrashFreeAndComplete) {
  // Theorem 2's hypotheses: reliable processes, no register actually
  // crashes. The attack must honour them: every operation completes.
  auto result = HiddenWriteAttack(Fig2Candidate(), FarmConfig{1});
  ASSERT_EQ(result.kind, AttackResult::Kind::kViolationFound);
  for (const auto& op : result.history) {
    EXPECT_TRUE(op.completed);
  }
  // 3 covering WRITEs + solo + late + 4 READs.
  EXPECT_EQ(result.history.size(), 9u);
}

TEST(Lemma21Race, AddsAPendingWriteViaCoveringGates) {
  // The lemma executed literally: p frozen about to write (covering), q
  // completes over it leaving a pending write, p released and completes.
  auto result = RunLemma21Race(Fig2Candidate(), FarmConfig{1});
  ASSERT_TRUE(result.ok) << result.narrative;
  EXPECT_EQ(result.pending_before, 0u);
  EXPECT_GE(result.pending_after, 1u);
  EXPECT_NE(result.narrative.find("covering"), std::string::npos);
}

TEST(Lemma21Race, WorksOnTimestampCandidateWithReadPhase) {
  // The timestamp candidate READS before writing; the race machinery must
  // serve the read phase through the gate and still cover the first WRITE.
  auto result = RunLemma21Race(TimestampCandidate(), FarmConfig{1});
  ASSERT_TRUE(result.ok) << result.narrative;
  EXPECT_GE(result.pending_after, 1u);
}

TEST(Lemma21Race, WorksAtT2) {
  auto result = RunLemma21Race(Fig2Candidate(), FarmConfig{2});
  ASSERT_TRUE(result.ok) << result.narrative;
}

TEST(HiddenWriteAttack, NarrativeRecordsEveryPhase) {
  auto result = HiddenWriteAttack(Fig2Candidate(), FarmConfig{1});
  EXPECT_NE(result.detail.find("covered disk"), std::string::npos);
  EXPECT_NE(result.detail.find("solo WRITE"), std::string::npos);
  EXPECT_NE(result.detail.find("flushed"), std::string::npos);
  EXPECT_NE(result.detail.find("READ #4"), std::string::npos);
}

}  // namespace
}  // namespace nadreg::adversary
