// Tests for the Section 3.2 wait-free atomic SWSR register: basic
// semantics on controlled schedules, crash tolerance, regularity and
// monotonicity of reads, and randomized concurrent runs.
#include "core/swsr_atomic.h"

#include <gtest/gtest.h>

#include <future>
#include <string>
#include <thread>
#include <vector>

#include "core/config.h"
#include "sim/det_farm.h"
#include "sim/sim_farm.h"

namespace nadreg::core {
namespace {

using namespace std::chrono_literals;
using sim::DetFarm;
using sim::SimFarm;

constexpr ProcessId kWriter = 1;
constexpr ProcessId kReader = 2;

struct Rig {
  FarmConfig farm_cfg{1};  // t = 1, 3 disks
  std::vector<RegisterId> regs = farm_cfg.Spread(0);
};

TEST(SwsrAtomic, ReadOfUnwrittenRegisterReturnsInitial) {
  Rig rig;
  SimFarm farm;
  SwsrAtomicReader reader(farm, rig.farm_cfg, rig.regs, kReader);
  EXPECT_EQ(reader.Read(), "");
}

TEST(SwsrAtomic, ReadSeesCompletedWrite) {
  Rig rig;
  SimFarm farm;
  SwsrAtomicWriter writer(farm, rig.farm_cfg, rig.regs, kWriter);
  SwsrAtomicReader reader(farm, rig.farm_cfg, rig.regs, kReader);
  writer.Write("hello");
  EXPECT_EQ(reader.Read(), "hello");
}

TEST(SwsrAtomic, SequenceOfWritesReadInOrder) {
  Rig rig;
  SimFarm farm;
  SwsrAtomicWriter writer(farm, rig.farm_cfg, rig.regs, kWriter);
  SwsrAtomicReader reader(farm, rig.farm_cfg, rig.regs, kReader);
  for (int i = 0; i < 20; ++i) {
    writer.Write("v" + std::to_string(i));
    EXPECT_EQ(reader.Read(), "v" + std::to_string(i));
  }
}

TEST(SwsrAtomic, ToleratesOneCrashedDisk) {
  Rig rig;
  SimFarm farm;
  farm.CrashDisk(0);
  SwsrAtomicWriter writer(farm, rig.farm_cfg, rig.regs, kWriter);
  SwsrAtomicReader reader(farm, rig.farm_cfg, rig.regs, kReader);
  writer.Write("survives");
  EXPECT_EQ(reader.Read(), "survives");
}

TEST(SwsrAtomic, ToleratesCrashMidStream) {
  Rig rig;
  SimFarm farm;
  SwsrAtomicWriter writer(farm, rig.farm_cfg, rig.regs, kWriter);
  SwsrAtomicReader reader(farm, rig.farm_cfg, rig.regs, kReader);
  writer.Write("before");
  EXPECT_EQ(reader.Read(), "before");
  farm.CrashDisk(1);
  writer.Write("after");
  EXPECT_EQ(reader.Read(), "after");
}

TEST(SwsrAtomic, GeneralizesToFiveRegistersTwoCrashes) {
  FarmConfig cfg{2};  // t = 2, 5 disks
  auto regs = cfg.Spread(0);
  SimFarm farm;
  farm.CrashDisk(1);
  farm.CrashDisk(3);
  SwsrAtomicWriter writer(farm, cfg, regs, kWriter);
  SwsrAtomicReader reader(farm, cfg, regs, kReader);
  writer.Write("2-resilient");
  EXPECT_EQ(reader.Read(), "2-resilient");
}

TEST(SwsrAtomic, ReaderNeverGoesBackwards) {
  // Adversarial schedule: the reader's quorum is steered toward stale
  // registers after it has already seen a fresh value. The reader's memo
  // of the largest sequence number ever seen must prevent regression.
  Rig rig;
  DetFarm farm;
  SwsrAtomicWriter writer(farm, rig.farm_cfg, rig.regs, kWriter);
  SwsrAtomicReader reader(farm, rig.farm_cfg, rig.regs, kReader);

  // WRITE(v1) lands on disks 0 and 1 only; disk 2 write stays pending.
  auto w = std::async(std::launch::async, [&] { writer.Write("v1"); });
  for (;;) {
    auto ops = farm.PendingWhere(
        [](const DetFarm::PendingOp& op) { return op.is_write; });
    if (ops.size() == 3) break;
    std::this_thread::yield();
  }
  farm.DeliverWhere([&](const DetFarm::PendingOp& op) {
    return op.is_write && op.r.disk != 2;
  });
  w.get();

  // READ #1: quorum from disks 0, 1 → sees v1.
  auto r1 = std::async(std::launch::async, [&] { return reader.Read(); });
  for (;;) {
    if (farm.PendingWhere([](const DetFarm::PendingOp& op) {
          return !op.is_write;
        }).size() == 3) {
      break;
    }
    std::this_thread::yield();
  }
  farm.DeliverWhere([&](const DetFarm::PendingOp& op) {
    return !op.is_write && op.r.disk != 2;
  });
  EXPECT_EQ(r1.get(), "v1");

  // READ #2: the adversary feeds the reader disks 1 and 2 — disk 2 is
  // stale (the write to it is still pending). The memo must return v1.
  // (READ #2's disk-2 read is chained behind READ #1's unserved one, so
  // keep delivering until the read returns.)
  auto r2 = std::async(std::launch::async, [&] { return reader.Read(); });
  while (r2.wait_for(std::chrono::milliseconds(1)) !=
         std::future_status::ready) {
    farm.DeliverWhere([&](const DetFarm::PendingOp& op) {
      return !op.is_write && op.r.disk != 0;
    });
  }
  EXPECT_EQ(r2.get(), "v1");
}

TEST(SwsrAtomic, PendingWriteFromPreviousWriteDoesNotBlockNextWrite) {
  // Fig. 1: WRITE #1 completes with its write to disk 2 still pending;
  // WRITE #2 must still complete (footnote 3's background forking).
  Rig rig;
  DetFarm farm;
  SwsrAtomicWriter writer(farm, rig.farm_cfg, rig.regs, kWriter);

  auto w1 = std::async(std::launch::async, [&] { writer.Write("v1"); });
  while (farm.Pending().size() < 3) std::this_thread::yield();
  farm.DeliverWhere([](const DetFarm::PendingOp& op) { return op.r.disk != 2; });
  w1.get();  // completed; disk 2 write pending

  auto w2 = std::async(std::launch::async, [&] { writer.Write("v2"); });
  // Only disks 0,1 receive the new write immediately; deliver those.
  for (;;) {
    auto fresh = farm.PendingWhere([](const DetFarm::PendingOp& op) {
      return op.r.disk != 2 && op.is_write;
    });
    if (fresh.size() == 2) break;
    std::this_thread::yield();
  }
  farm.DeliverWhere([](const DetFarm::PendingOp& op) { return op.r.disk != 2; });
  w2.get();

  // Flush the stalled chain on disk 2: first v1, then the forked v2.
  EXPECT_EQ(farm.DeliverAll(), 2u);
  auto tv = DecodeTaggedValue(farm.Peek(rig.regs[2]));
  ASSERT_TRUE(tv.ok());
  EXPECT_EQ(tv->payload, "v2");
  EXPECT_EQ(tv->seq, 2u);
}

TEST(SwsrRegular, MemolessReaderSeesCompletedWrites) {
  Rig rig;
  SimFarm farm;
  SwsrAtomicWriter writer(farm, rig.farm_cfg, rig.regs, kWriter);
  SwsrRegularReader reader(farm, rig.farm_cfg, rig.regs, kReader);
  for (int i = 0; i < 10; ++i) {
    writer.Write("v" + std::to_string(i));
    EXPECT_EQ(reader.Read(), "v" + std::to_string(i));
  }
}

TEST(SwsrRegular, MemolessReaderMayRegressAcrossTornWrite) {
  // The exact separation the memo exists to close: READ#1 served {0,1}
  // sees a torn write; READ#2 served {1,2} regresses to the old value.
  // This is regular (both reads overlap the write) but not atomic.
  Rig rig;
  DetFarm farm;
  SwsrAtomicWriter writer(farm, rig.farm_cfg, rig.regs, kWriter);
  SwsrRegularReader reader(farm, rig.farm_cfg, rig.regs, kReader);

  auto w = std::async(std::launch::async, [&] { writer.Write("v1"); });
  while (farm.Pending().size() < 3) std::this_thread::yield();
  farm.DeliverWhere(
      [](const DetFarm::PendingOp& op) { return op.is_write && op.r.disk == 0; });

  auto read = [&](auto deliver) {
    auto fut = std::async(std::launch::async, [&] { return reader.Read(); });
    while (fut.wait_for(std::chrono::milliseconds(1)) !=
           std::future_status::ready) {
      farm.DeliverWhere(deliver);
    }
    return fut.get();
  };
  EXPECT_EQ(read([](const DetFarm::PendingOp& op) {
              return !op.is_write && op.r.disk != 2;
            }),
            "v1");
  EXPECT_EQ(read([](const DetFarm::PendingOp& op) {
              return !op.is_write && op.r.disk != 0;
            }),
            "");  // regression — permitted by regularity, not atomicity

  farm.DeliverAll();
  w.get();
}

TEST(SwsrAtomic, ConcurrentReaderAndWriterRandomized) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    Rig rig;
    SimFarm::Options o;
    o.seed = seed;
    o.max_delay_us = 50;
    SimFarm farm(o);
    SwsrAtomicWriter writer(farm, rig.farm_cfg, rig.regs, kWriter);
    SwsrAtomicReader reader(farm, rig.farm_cfg, rig.regs, kReader);

    std::jthread wt([&] {
      for (int i = 1; i <= 100; ++i) writer.Write(std::to_string(i));
    });
    int last = 0;
    for (int i = 0; i < 200; ++i) {
      std::string v = reader.Read();
      int cur = v.empty() ? 0 : std::stoi(v);
      // Reads never regress (the memo) — a core atomicity consequence.
      EXPECT_GE(cur, last) << "seed " << seed;
      last = cur;
    }
    wt.join();
    EXPECT_EQ(reader.Read(), "100");
  }
}

}  // namespace
}  // namespace nadreg::core
