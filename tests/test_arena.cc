// Unit tests for the hot-path memory machinery (DESIGN.md §14): the
// bump-pointer arena (slab reuse, reset-per-cycle, the reset-reuse
// aliasing rule) and the sharded pending-op table (stable entry
// addresses across growth, free-list recycling, backward-shift index
// deletion).
#include "common/arena.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "nad/pending_table.h"

namespace nadreg {
namespace {

TEST(Arena, AllocRespectsAlignment) {
  // Up to alignof(max_align_t) — what the underlying new[] guarantees
  // for the slab base, and all the hot path ever asks for.
  Arena arena;
  (void)arena.Alloc(1, 1);  // misalign the bump offset
  char* p8 = arena.Alloc(8, 8);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p8) % 8, 0u);
  char* pmax = arena.Alloc(16, alignof(std::max_align_t));
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(pmax) % alignof(std::max_align_t),
            0u);
}

TEST(Arena, ZeroByteAllocIsValid) {
  Arena arena;
  EXPECT_NE(arena.Alloc(0, 1), nullptr);
}

TEST(Arena, CopyRoundtrips) {
  Arena arena;
  const std::string src("bytes\0with\0nuls", 15);
  char* p = arena.Copy(src.data(), src.size());
  EXPECT_EQ(std::string_view(p, src.size()), std::string_view(src));
}

TEST(Arena, ResetRetainsSlabsAndReusesMemory) {
  Arena arena;
  char* first = arena.Alloc(100, 1);
  (void)arena.Alloc(500, 1);
  const std::size_t slabs = arena.slab_count();
  arena.Reset();
  // The steady-state contract: after warm-up a cycle allocates from the
  // same retained memory — same slab count, same addresses.
  char* again = arena.Alloc(100, 1);
  EXPECT_EQ(first, again);
  EXPECT_EQ(arena.slab_count(), slabs);
}

TEST(Arena, ResetReuseAliasesOldViews) {
  // THE ownership rule the rest of the tree relies on: a view into an
  // arena dies at Reset(). This test pins the mechanism — the next cycle
  // hands out the SAME bytes, so a stale view silently reads new data
  // (which is why rx views must not outlive their frame dispatch).
  Arena arena;
  char* a = arena.Copy("old payload", 11);
  std::string_view stale(a, 11);
  EXPECT_EQ(stale, "old payload");
  arena.Reset();
  char* b = arena.Copy("NEW-PAYLOAD", 11);
  ASSERT_EQ(static_cast<void*>(a), static_cast<void*>(b));  // aliased
  EXPECT_EQ(stale, "NEW-PAYLOAD");  // the stale view now reads new bytes
}

TEST(Arena, OversizedAllocationGetsDedicatedSlab) {
  Arena arena(/*slab_bytes=*/64);
  char* small = arena.Alloc(16, 1);
  char* big = arena.Alloc(1000, 1);  // cannot fit any 64-byte slab
  ASSERT_NE(small, nullptr);
  ASSERT_NE(big, nullptr);
  EXPECT_GE(arena.slab_count(), 2u);
  EXPECT_GE(arena.retained_bytes(), 1064u);
  std::memset(big, 'x', 1000);  // the whole span must be writable
  // After Reset the small slab is bumped first again.
  arena.Reset();
  EXPECT_EQ(arena.Alloc(16, 1), small);
}

TEST(Arena, ResetReleasesHugeOneOffSlabs) {
  // A single outlier allocation beyond kMaxRetainedSlabBytes — e.g. the
  // sub-view array a hostile maximum-count batch frame forces — gets a
  // dedicated slab that must NOT be retained: one malicious frame would
  // otherwise inflate the connection's footprint forever.
  Arena arena;
  (void)arena.Alloc(64, 1);  // a normal steady-state slab
  (void)arena.Alloc(Arena::kMaxRetainedSlabBytes + 1, 1);
  EXPECT_GT(arena.retained_bytes(), Arena::kMaxRetainedSlabBytes);
  arena.Reset();
  EXPECT_LE(arena.retained_bytes(), Arena::kMaxRetainedSlabBytes);
  // The steady-state slab survives and keeps being reused.
  char* a = arena.Alloc(64, 1);
  arena.Reset();
  EXPECT_EQ(arena.Alloc(64, 1), a);
}

TEST(Arena, ResetRetainsModeratelyOversizedSlabs) {
  // Oversized-but-reasonable dedicated slabs (at most the retention cap)
  // stay warm: a workload of legitimately large values must not pay a
  // malloc per cycle.
  Arena arena(/*slab_bytes=*/64);
  char* big = arena.Alloc(4096, 1);  // oversized for a 64-byte slab
  const std::size_t retained = arena.retained_bytes();
  arena.Reset();
  EXPECT_EQ(arena.retained_bytes(), retained);
  EXPECT_EQ(arena.Alloc(4096, 1), big);  // same dedicated slab, warm
}

TEST(Arena, AllocArrayValueInitializes) {
  Arena arena;
  int* arr = arena.AllocArray<int>(64);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(arr[i], 0) << i;
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(arr) % alignof(int), 0u);
}

TEST(Arena, StatsTrackUsageAndHighWater) {
  Arena arena;
  EXPECT_EQ(arena.bytes_used(), 0u);
  (void)arena.Alloc(100, 1);
  EXPECT_EQ(arena.bytes_used(), 100u);
  arena.Reset();
  EXPECT_EQ(arena.bytes_used(), 0u);
  EXPECT_EQ(arena.high_water(), 100u);
  (void)arena.Alloc(40, 1);
  arena.Reset();
  EXPECT_EQ(arena.high_water(), 100u);  // peak, not last
}

using nad::PendingTable;

TEST(PendingTable, InsertFindTakeErase) {
  PendingTable<std::string> table;
  EXPECT_TRUE(table.empty());
  *table.Insert(1) = "one";
  *table.Insert(2) = "two";
  EXPECT_EQ(table.size(), 2u);
  ASSERT_NE(table.Find(1), nullptr);
  EXPECT_EQ(*table.Find(1), "one");
  EXPECT_EQ(table.Find(3), nullptr);
  std::string out;
  ASSERT_TRUE(table.Take(2, &out));
  EXPECT_EQ(out, "two");
  EXPECT_FALSE(table.Take(2, &out));  // already taken
  EXPECT_TRUE(table.Erase(1));
  EXPECT_FALSE(table.Erase(1));
  EXPECT_TRUE(table.empty());
}

TEST(PendingTable, EntryAddressesStableAcrossGrowth) {
  // The zero-copy wire path references pending write values in place;
  // this is the guarantee that makes it sound.
  PendingTable<std::string> table;
  std::vector<std::string*> early;
  for (std::uint64_t id = 0; id < 100; ++id) {
    std::string* p = table.Insert(id);
    *p = "entry-" + std::to_string(id);
    early.push_back(p);
  }
  // Force many slab allocations and index rehashes.
  for (std::uint64_t id = 100; id < 5000; ++id) *table.Insert(id) = "x";
  for (std::uint64_t id = 0; id < 100; ++id) {
    EXPECT_EQ(table.Find(id), early[id]) << id;          // same address
    EXPECT_EQ(*early[id], "entry-" + std::to_string(id));  // same bytes
  }
}

TEST(PendingTable, FreeListRecyclesSlots) {
  PendingTable<int> table;
  *table.Insert(10) = 1;
  int* old_slot = table.Find(10);
  ASSERT_TRUE(table.Erase(10));
  *table.Insert(11) = 2;  // must reuse the freed slot, not grow
  EXPECT_EQ(table.Find(11), old_slot);
  EXPECT_EQ(table.Find(10), nullptr);
}

TEST(PendingTable, ForEachAndEraseIf) {
  PendingTable<int> table;
  for (std::uint64_t id = 0; id < 20; ++id) {
    *table.Insert(id) = static_cast<int>(id);
  }
  int sum = 0;
  table.ForEach([&](std::uint64_t, int& v) { sum += v; });
  EXPECT_EQ(sum, 190);
  table.EraseIf([](std::uint64_t, int& v) { return v % 2 == 0; });
  EXPECT_EQ(table.size(), 10u);
  for (std::uint64_t id = 0; id < 20; ++id) {
    EXPECT_EQ(table.Find(id) != nullptr, id % 2 == 1) << id;
  }
}

TEST(PendingTable, ClearEmptiesButKeepsWorking) {
  PendingTable<std::string> table;
  for (std::uint64_t id = 0; id < 1000; ++id) *table.Insert(id) = "v";
  table.Clear();
  EXPECT_TRUE(table.empty());
  for (std::uint64_t id = 0; id < 1000; ++id) {
    EXPECT_EQ(table.Find(id), nullptr);
  }
  *table.Insert(7) = "again";
  EXPECT_EQ(*table.Find(7), "again");
  EXPECT_EQ(table.size(), 1u);
}

TEST(PendingTable, RandomizedChurnAgainstReferenceModel) {
  // Backward-shift deletion and the free list under random interleaved
  // insert/erase/take, checked against a trivial reference map.
  PendingTable<std::uint64_t> table;
  std::vector<std::uint64_t> live;  // ids currently present
  Rng rng(0xfeed);
  std::uint64_t next_id = 0;
  for (int step = 0; step < 50'000; ++step) {
    const bool insert = live.empty() || rng.Below(100) < 55;
    if (insert) {
      const std::uint64_t id = next_id++;
      *table.Insert(id) = id * 3;
      live.push_back(id);
    } else {
      const std::size_t k = rng.Below(live.size());
      const std::uint64_t id = live[k];
      live[k] = live.back();
      live.pop_back();
      if (rng.Below(2) == 0) {
        std::uint64_t out = 0;
        ASSERT_TRUE(table.Take(id, &out));
        EXPECT_EQ(out, id * 3);
      } else {
        ASSERT_TRUE(table.Erase(id));
      }
    }
    if (step % 1000 == 0) {
      EXPECT_EQ(table.size(), live.size());
      for (std::size_t i = 0; i < live.size(); i += 17) {
        auto* p = table.Find(live[i]);
        ASSERT_NE(p, nullptr);
        EXPECT_EQ(*p, live[i] * 3);
      }
    }
  }
}

}  // namespace
}  // namespace nadreg
