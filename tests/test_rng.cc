// Unit tests for the seeded PRNG: determinism, bounds, fork independence.
#include "common/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace nadreg {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDifferentStreams) {
  Rng a(123), b(124);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Below(17), 17u);
    EXPECT_LT(rng.Below(1), 1u);
  }
}

TEST(Rng, BetweenIsInclusive) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 5000; ++i) {
    auto v = rng.Between(3, 6);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 6u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // all of 3,4,5,6 hit
}

TEST(Rng, BelowCoversAllResidues) {
  Rng rng(42);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) ++counts[rng.Below(10)];
  for (int c : counts) {
    EXPECT_GT(c, 1500);  // roughly uniform: expect ~2000 each
    EXPECT_LT(c, 2500);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Chance(0, 10));
    EXPECT_TRUE(rng.Chance(10, 10));
  }
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(9);
  Rng child = parent.Fork();
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (parent() == child()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(SplitMix64, KnownSequenceIsDeterministic) {
  std::uint64_t s1 = 0, s2 = 0;
  for (int i = 0; i < 100; ++i) EXPECT_EQ(SplitMix64(s1), SplitMix64(s2));
}

}  // namespace
}  // namespace nadreg
