// Deterministic tests for the client retry path (nad/retry.h): backoff
// growth/cap/jitter bounds with a seeded Rng, and the circuit breaker's
// closed → open → half-open → closed lifecycle driven by explicit
// time_points — no threads, no sleeps, no wall-clock dependence.
#include "nad/retry.h"

#include <gtest/gtest.h>

#include <chrono>

#include "common/rng.h"

namespace nadreg::nad {
namespace {

using namespace std::chrono_literals;
using std::chrono::microseconds;
using std::chrono::steady_clock;

RetryPolicy NoJitterPolicy() {
  RetryPolicy p;
  p.initial_backoff = 1ms;
  p.max_backoff = 16ms;
  p.jitter_permille = 0;
  return p;
}

TEST(Backoff, DoublesPerFailureUpToTheCap) {
  BackoffState b(NoJitterPolicy());
  Rng rng(1);
  EXPECT_EQ(b.Next(rng), microseconds(1ms));
  EXPECT_EQ(b.Next(rng), microseconds(2ms));
  EXPECT_EQ(b.Next(rng), microseconds(4ms));
  EXPECT_EQ(b.Next(rng), microseconds(8ms));
  EXPECT_EQ(b.Next(rng), microseconds(16ms));
  // Capped from here on, no matter how many more failures accrue.
  EXPECT_EQ(b.Next(rng), microseconds(16ms));
  EXPECT_EQ(b.Next(rng), microseconds(16ms));
  EXPECT_EQ(b.failures(), 7u);
}

TEST(Backoff, ResetReturnsToTheInitialDelay) {
  BackoffState b(NoJitterPolicy());
  Rng rng(2);
  (void)b.Next(rng);
  (void)b.Next(rng);
  (void)b.Next(rng);
  b.Reset();
  EXPECT_EQ(b.failures(), 0u);
  EXPECT_EQ(b.Next(rng), microseconds(1ms));
}

TEST(Backoff, JitterStaysWithinTheConfiguredPermille) {
  RetryPolicy p;
  p.initial_backoff = 10ms;
  p.max_backoff = 10ms;
  p.jitter_permille = 300;  // up to +30%
  BackoffState b(p);
  Rng rng(42);
  bool saw_jitter = false;
  for (int i = 0; i < 200; ++i) {
    const auto d = b.Next(rng);
    EXPECT_GE(d, microseconds(10ms));
    EXPECT_LE(d, microseconds(13ms));
    if (d > microseconds(10ms)) saw_jitter = true;
  }
  // With 200 samples of a 3ms span, a jitter-free run means the jitter
  // arithmetic broke, not that we got unlucky.
  EXPECT_TRUE(saw_jitter);
}

TEST(Backoff, SameSeedSameSchedule) {
  RetryPolicy p;
  p.jitter_permille = 500;
  BackoffState a(p), b(p);
  Rng ra(7), rb(7);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(a.Next(ra), b.Next(rb));
}

TEST(Breaker, StaysClosedBelowTheThreshold) {
  CircuitBreaker cb(NoJitterPolicy());  // threshold 4
  const auto t0 = steady_clock::time_point{};
  EXPECT_FALSE(cb.RecordFailure(t0));
  EXPECT_FALSE(cb.RecordFailure(t0));
  EXPECT_FALSE(cb.RecordFailure(t0));
  EXPECT_EQ(cb.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(cb.AllowRequest(t0));
}

TEST(Breaker, OpensAtTheThresholdAndReportsTheTransitionOnce) {
  CircuitBreaker cb(NoJitterPolicy());
  const auto t0 = steady_clock::time_point{};
  for (int i = 0; i < 3; ++i) EXPECT_FALSE(cb.RecordFailure(t0));
  EXPECT_TRUE(cb.RecordFailure(t0));  // 4th failure: the open transition
  EXPECT_EQ(cb.state(), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(cb.AllowRequest(t0));
  // Further failures while open are not new transitions.
  EXPECT_FALSE(cb.RecordFailure(t0 + 1ms));
}

TEST(Breaker, HalfOpensAfterTheCooldownThenClosesOnSuccess) {
  RetryPolicy p = NoJitterPolicy();
  p.breaker_cooldown = 250ms;
  CircuitBreaker cb(p);
  const auto t0 = steady_clock::time_point{};
  for (int i = 0; i < 4; ++i) (void)cb.RecordFailure(t0);
  ASSERT_EQ(cb.state(), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(cb.AllowRequest(t0 + 249ms));  // still cooling down
  EXPECT_TRUE(cb.AllowRequest(t0 + 250ms));   // admits a probe
  EXPECT_EQ(cb.state(), CircuitBreaker::State::kHalfOpen);
  cb.RecordSuccess();
  EXPECT_EQ(cb.state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(cb.consecutive_failures(), 0u);
  EXPECT_TRUE(cb.AllowRequest(t0 + 251ms));
}

TEST(Breaker, HalfOpenFailureReopensImmediately) {
  RetryPolicy p = NoJitterPolicy();
  p.breaker_cooldown = 100ms;
  CircuitBreaker cb(p);
  const auto t0 = steady_clock::time_point{};
  for (int i = 0; i < 4; ++i) (void)cb.RecordFailure(t0);
  ASSERT_TRUE(cb.AllowRequest(t0 + 100ms));  // half-open probe admitted
  // The probe fails: one failure reopens, and the cooldown restarts from
  // the failure time, not the original opening.
  EXPECT_TRUE(cb.RecordFailure(t0 + 101ms));
  EXPECT_EQ(cb.state(), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(cb.AllowRequest(t0 + 200ms));
  EXPECT_TRUE(cb.AllowRequest(t0 + 201ms));
}

TEST(Breaker, FailureWhileCoolingDownExtendsTheCooldown) {
  RetryPolicy p = NoJitterPolicy();
  p.breaker_cooldown = 100ms;
  CircuitBreaker cb(p);
  const auto t0 = steady_clock::time_point{};
  for (int i = 0; i < 4; ++i) (void)cb.RecordFailure(t0);
  // An expiry sweep reports another failure at t0+50ms while open: the
  // cooldown window restarts there.
  EXPECT_FALSE(cb.RecordFailure(t0 + 50ms));
  EXPECT_FALSE(cb.AllowRequest(t0 + 149ms));
  EXPECT_TRUE(cb.AllowRequest(t0 + 150ms));
}

}  // namespace
}  // namespace nadreg::nad
