// Tests for NAD daemon durability: journal replay, checkpoint + compaction,
// torn-tail tolerance, and full restart recovery over the wire.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/sync.h"
#include "nad/client.h"
#include "nad/persistence.h"
#include "nad/server.h"
#include "sim/register_store.h"

namespace nadreg::nad {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  fs::path path;
  TempDir() {
    path = fs::temp_directory_path() /
           ("nadreg_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter++));
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string Base(const std::string& name = "disk") const {
    return (path / name).string();
  }
  static inline int counter = 0;
};

TEST(Persistence, JournalRoundtrip) {
  TempDir dir;
  {
    Journal journal;
    ASSERT_TRUE(journal.Open(dir.Base() + ".log").ok());
    ASSERT_TRUE(journal.Append(RegisterId{0, 1}, "a").ok());
    ASSERT_TRUE(journal.Append(RegisterId{1, 2}, "b").ok());
    ASSERT_TRUE(journal.Append(RegisterId{0, 1}, "c").ok());  // overwrite
  }
  sim::RegisterStore store;
  auto n = RecoverState(dir.Base(), &store);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 3u);
  EXPECT_EQ(store.Get(RegisterId{0, 1}), "c");
  EXPECT_EQ(store.Get(RegisterId{1, 2}), "b");
}

TEST(Persistence, MissingFilesMeanFreshDisk) {
  TempDir dir;
  sim::RegisterStore store;
  auto n = RecoverState(dir.Base(), &store);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 0u);
  EXPECT_EQ(store.MaterializedCount(), 0u);
}

TEST(Persistence, TornJournalTailIsDiscarded) {
  TempDir dir;
  {
    Journal journal;
    ASSERT_TRUE(journal.Open(dir.Base() + ".log").ok());
    ASSERT_TRUE(journal.Append(RegisterId{0, 1}, "complete").ok());
  }
  // Simulate a crash mid-append: write half a record.
  {
    std::ofstream f(dir.Base() + ".log", std::ios::app | std::ios::binary);
    f.write("\x01\x00", 2);
  }
  sim::RegisterStore store;
  auto n = RecoverState(dir.Base(), &store);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 1u);  // the complete record survives, the torn one is gone
  EXPECT_EQ(store.Get(RegisterId{0, 1}), "complete");
}

TEST(Persistence, CheckpointThenJournalReplayOrder) {
  TempDir dir;
  sim::RegisterStore original;
  original.Apply(RegisterId{0, 1}, "snapped");
  original.Apply(RegisterId{0, 2}, "old");
  ASSERT_TRUE(WriteCheckpoint(dir.Base(), original).ok());
  {
    Journal journal;
    ASSERT_TRUE(journal.Open(dir.Base() + ".log").ok());
    ASSERT_TRUE(journal.Append(RegisterId{0, 2}, "newer").ok());
  }
  sim::RegisterStore recovered;
  auto n = RecoverState(dir.Base(), &recovered);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(recovered.Get(RegisterId{0, 1}), "snapped");
  EXPECT_EQ(recovered.Get(RegisterId{0, 2}), "newer");  // journal wins
}

// --- End-to-end through the daemon -----------------------------------------

struct SyncPoint {
  Mutex mu;
  CondVar cv;
  int n = 0;
  void Done() {
    MutexLock lock(mu);  // notify under the lock: destruction-safe
    ++n;
    cv.NotifyAll();
  }
  void Wait(int target) {
    MutexLock lock(mu);
    cv.Wait(mu, [&] { return n >= target; });
  }
};

TEST(Persistence, ServerRestartsWithAcknowledgedWrites) {
  TempDir dir;
  std::uint16_t port = 0;
  {
    NadServer::Options opts;
    opts.data_path = dir.Base();
    auto server = NadServer::Start(opts);
    ASSERT_TRUE(server.ok());
    port = (*server)->port();
    EXPECT_EQ((*server)->RecoveredCount(), 0u);

    auto client = NadClient::Connect(
        {{0, NadClient::Endpoint{"127.0.0.1", port}}});
    ASSERT_TRUE(client.ok());
    SyncPoint sync;
    (*client)->IssueWrite(1, RegisterId{0, 7}, "durable-1", [&] { sync.Done(); });
    (*client)->IssueWrite(1, RegisterId{0, 8}, "durable-2", [&] { sync.Done(); });
    sync.Wait(2);
    (*server)->Stop();
  }

  // Restart on the same data path; state must be back.
  NadServer::Options opts;
  opts.data_path = dir.Base();
  auto server = NadServer::Start(opts);
  ASSERT_TRUE(server.ok());
  EXPECT_EQ((*server)->RecoveredCount(), 2u);

  auto client = NadClient::Connect(
      {{0, NadClient::Endpoint{"127.0.0.1", (*server)->port()}}});
  ASSERT_TRUE(client.ok());
  SyncPoint sync;
  std::string v7, v8;
  (*client)->IssueRead(1, RegisterId{0, 7}, [&](Value v) {
    v7 = std::move(v);
    sync.Done();
  });
  (*client)->IssueRead(1, RegisterId{0, 8}, [&](Value v) {
    v8 = std::move(v);
    sync.Done();
  });
  sync.Wait(2);
  EXPECT_EQ(v7, "durable-1");
  EXPECT_EQ(v8, "durable-2");
}

TEST(Persistence, CheckpointCompactsAndSurvivesRestart) {
  TempDir dir;
  std::uint16_t port = 0;
  {
    NadServer::Options opts;
    opts.data_path = dir.Base();
    auto server = NadServer::Start(opts);
    ASSERT_TRUE(server.ok());
    port = (*server)->port();
    auto client = NadClient::Connect(
        {{0, NadClient::Endpoint{"127.0.0.1", port}}});
    ASSERT_TRUE(client.ok());
    SyncPoint sync;
    for (int i = 0; i < 10; ++i) {
      (*client)->IssueWrite(1, RegisterId{0, 1}, "v" + std::to_string(i),
                            [&] { sync.Done(); });
    }
    sync.Wait(10);
    ASSERT_TRUE((*server)->Checkpoint().ok());
    // After compaction the journal is empty and the snapshot holds 1 block.
    EXPECT_EQ(fs::file_size(dir.Base() + ".log"), 0u);
    EXPECT_GT(fs::file_size(dir.Base() + ".snap"), 0u);
    (*server)->Stop();
  }
  NadServer::Options opts;
  opts.data_path = dir.Base();
  auto server = NadServer::Start(opts);
  ASSERT_TRUE(server.ok());
  EXPECT_EQ((*server)->RecoveredCount(), 1u);  // 1 block from the snapshot
  auto client = NadClient::Connect(
      {{0, NadClient::Endpoint{"127.0.0.1", (*server)->port()}}});
  ASSERT_TRUE(client.ok());
  SyncPoint sync;
  std::string got;
  (*client)->IssueRead(1, RegisterId{0, 1}, [&](Value v) {
    got = std::move(v);
    sync.Done();
  });
  sync.Wait(1);
  EXPECT_EQ(got, "v9");
}

TEST(Persistence, VolatileServerHasNoFiles) {
  TempDir dir;
  auto server = NadServer::Start({});
  ASSERT_TRUE(server.ok());
  EXPECT_TRUE((*server)->Checkpoint().ok());  // no-op
  EXPECT_FALSE(fs::exists(dir.Base() + ".log"));
}

}  // namespace
}  // namespace nadreg::nad
