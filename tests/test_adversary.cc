// Tests for the executable impossibility-proof schedules: each must
// produce the violation its theorem predicts — certified by the exact
// checkers — and nothing more (e.g. Theorem 2's history must stay
// sequentially consistent, matching Fig. 2's actual guarantee).
#include "adversary/schedules.h"

#include <gtest/gtest.h>

namespace nadreg::adversary {
namespace {

TEST(Theorem1, WaitFreeSwmrCandidateViolatesAtomicity) {
  auto out = RunTheorem1WaitFreeSwmr();
  EXPECT_FALSE(out.atomic.ok)
      << "the schedule failed to break the candidate:\n"
      << checker::FormatHistory(out.history);
  // The violation is atomicity-specific: the same history serializes fine.
  EXPECT_TRUE(out.seqcst.ok);
  EXPECT_FALSE(out.narrative.empty());
  EXPECT_GE(out.history.size(), 3u);
}

TEST(Theorem1, WriteBackCandidateFallsToResurrection) {
  auto out = RunTheorem1WriteBackResurrection();
  EXPECT_FALSE(out.atomic.ok)
      << "resurrection schedule failed:\n"
      << checker::FormatHistory(out.history);
  EXPECT_TRUE(out.seqcst.ok);
  // All six operations completed (this schedule needs no crash at all).
  for (const auto& op : out.history) EXPECT_TRUE(op.completed);
}

TEST(Theorem2, HiddenWriteViolatesAtomicityOnly) {
  auto out = RunTheorem2HiddenWrite();
  EXPECT_FALSE(out.atomic.ok)
      << "hidden-write schedule failed:\n"
      << checker::FormatHistory(out.history);
  // Fig. 2 delivers exactly sequential consistency; the adversary must
  // not have broken that (otherwise our Table 3 'Yes' would be in doubt).
  EXPECT_TRUE(out.seqcst.ok) << out.seqcst.explanation;
  // Crash-free and complete: Theorem 2 is about reliable processes.
  for (const auto& op : out.history) EXPECT_TRUE(op.completed);
  EXPECT_EQ(out.history.size(), 7u);  // 4 WRITEs + 3 READs
}

TEST(Theorem2, ReaderReturnsSoloValueThenOlderValue) {
  auto out = RunTheorem2HiddenWrite();
  // Extract the single reader's (pid 99) read sequence.
  std::vector<std::string> reads;
  for (const auto& op : out.history) {
    if (op.kind == checker::OpKind::kRead) reads.push_back(op.value);
  }
  ASSERT_EQ(reads.size(), 3u);
  EXPECT_EQ(reads[0], "vz");
  EXPECT_EQ(reads[1], "vs");  // the solo WRITE was observed...
  EXPECT_EQ(reads[2], "vx");  // ...and then completely hidden.
}

TEST(Theorem3, FinitePrefixConsistentButLivenessViolated) {
  auto out = RunTheorem3SeqCstLiveness(25);
  // The trap: every finite prefix is sequentially consistent...
  EXPECT_TRUE(out.seqcst.ok) << out.seqcst.explanation;
  // ...but the liveness clause of Section 5.1 fails in the limit.
  EXPECT_TRUE(out.liveness_violated);
  EXPECT_FALSE(out.liveness_explanation.empty());
  // (The finite prefix is not atomic either — A read v1, B then read old.)
  EXPECT_FALSE(out.atomic.ok);
}

TEST(Theorem3, StaleReadCountScalesWithSchedule) {
  auto small = RunTheorem3SeqCstLiveness(5);
  auto large = RunTheorem3SeqCstLiveness(40);
  auto count_reads = [](const ScheduleOutcome& o) {
    std::size_t n = 0;
    for (const auto& op : o.history) {
      if (op.kind == checker::OpKind::kRead && op.value.empty()) ++n;
    }
    return n;
  };
  EXPECT_EQ(count_reads(small), 5u);
  EXPECT_EQ(count_reads(large), 40u);
  EXPECT_TRUE(small.liveness_violated);
  EXPECT_TRUE(large.liveness_violated);
}

TEST(Schedules, AreDeterministic) {
  auto a = RunTheorem2HiddenWrite();
  auto b = RunTheorem2HiddenWrite();
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_EQ(a.history[i].value, b.history[i].value);
    EXPECT_EQ(a.history[i].kind, b.history[i].kind);
  }
  EXPECT_EQ(a.narrative, b.narrative);
}

}  // namespace
}  // namespace nadreg::adversary
