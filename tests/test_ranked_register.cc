// Tests for the active-disk substrate, the ranked register, and Active
// Disk Paxos (the Chockler–Malkhi related-work baseline): RMW atomicity,
// ranked-register commit/abort semantics, crash tolerance, consensus
// agreement under concurrency, and uniformity (no process count anywhere).
#include "common/sync.h"
#include "apps/ranked_register.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/config.h"
#include "sim/active_farm.h"

namespace nadreg::apps {
namespace {

using core::FarmConfig;
using sim::ActiveDiskFarm;

ActiveDiskFarm::Options Fast(std::uint64_t seed = 1) {
  ActiveDiskFarm::Options o;
  o.seed = seed;
  o.max_delay_us = 50;
  return o;
}

TEST(ActiveDiskFarm, RmwIsAtomicIncrement) {
  ActiveDiskFarm farm(Fast());
  RegisterId r{0, 0};
  std::atomic<int> done{0};
  constexpr int kOps = 200;
  auto bump = [](const Value& v) {
    const int n = v.empty() ? 0 : std::stoi(v);
    return std::to_string(n + 1);
  };
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&] {
        for (int i = 0; i < kOps / 4; ++i) {
          farm.IssueRmw(1, r, bump, [&](Value) { ++done; });
        }
      });
    }
  }
  while (done.load() < kOps) std::this_thread::yield();
  // Atomic RMW: no lost updates despite 4 concurrent incrementers.
  EXPECT_EQ(farm.Peek(r), std::to_string(kOps));
}

TEST(ActiveDiskFarm, RmwReturnsPreviousValue) {
  ActiveDiskFarm farm(Fast());
  RegisterId r{0, 0};
  Mutex mu;
  CondVar cv;
  std::string prev = "unset";
  bool done = false;
  farm.IssueWrite(1, r, "old", nullptr);
  // Wait for the write to land, then RMW.
  while (farm.Peek(r) != "old") std::this_thread::yield();
  farm.IssueRmw(
      1, r, [](const Value&) { return std::string("new"); },
      [&](Value p) {
        MutexLock lock(mu);
        prev = std::move(p);
        done = true;
        cv.NotifyAll();
      });
  MutexLock lock(mu);
  cv.Wait(mu, [&] { return done; });
  EXPECT_EQ(prev, "old");
  EXPECT_EQ(farm.Peek(r), "new");
}

TEST(ActiveDiskFarm, CrashedBlockNeverRespondsToRmw) {
  ActiveDiskFarm farm(Fast());
  RegisterId r{0, 0};
  farm.CrashRegister(r);
  std::atomic<bool> responded{false};
  farm.IssueRmw(1, r, [](const Value& v) { return v; },
                [&](Value) { responded = true; });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(responded.load());
}

TEST(RankedBlockCodec, Roundtrip) {
  RankedBlock b{5, 3, "payload"};
  auto decoded = DecodeRankedBlock(EncodeRankedBlock(b));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, b);
}

TEST(RankedBlockCodec, EmptyIsVirgin) {
  auto decoded = DecodeRankedBlock("");
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->read_rank, 0u);
  EXPECT_EQ(decoded->write_rank, 0u);
}

TEST(RankedRegister, FirstWriteCommits) {
  ActiveDiskFarm farm(Fast());
  FarmConfig cfg{1};
  RankedRegister reg(farm, cfg, 1, 1);
  EXPECT_TRUE(reg.Write(10, "v"));
  auto r = reg.Read(11);
  EXPECT_EQ(r.write_rank, 10u);
  EXPECT_EQ(r.value, "v");
}

TEST(RankedRegister, HigherReadInvalidatesLowerWrite) {
  // The defining ranked-register property: after rr-read(20), a write
  // with rank 10 must abort.
  ActiveDiskFarm farm(Fast());
  FarmConfig cfg{1};
  RankedRegister reader(farm, cfg, 1, 1);
  RankedRegister writer(farm, cfg, 1, 2);
  reader.Read(20);
  EXPECT_FALSE(writer.Write(10, "late"));
  // A write at rank >= 20 still commits.
  EXPECT_TRUE(writer.Write(20, "on-time"));
}

TEST(RankedRegister, HigherWriteBeatsLowerWrite) {
  ActiveDiskFarm farm(Fast());
  FarmConfig cfg{1};
  RankedRegister a(farm, cfg, 1, 1);
  RankedRegister b(farm, cfg, 1, 2);
  EXPECT_TRUE(a.Write(30, "high"));
  EXPECT_FALSE(b.Write(10, "low"));
  auto r = a.Read(40);
  EXPECT_EQ(r.value, "high");
}

TEST(RankedRegister, ReadSeesCommittedWriteDespiteCrash) {
  ActiveDiskFarm farm(Fast());
  FarmConfig cfg{1};
  RankedRegister writer(farm, cfg, 1, 1);
  EXPECT_TRUE(writer.Write(5, "durable"));
  farm.CrashDisk(1);
  RankedRegister reader(farm, cfg, 1, 2);
  auto r = reader.Read(6);
  EXPECT_EQ(r.write_rank, 5u);
  EXPECT_EQ(r.value, "durable");
}

TEST(RankedRegister, DistinctObjectsIndependent) {
  ActiveDiskFarm farm(Fast());
  FarmConfig cfg{1};
  RankedRegister a(farm, cfg, 1, 1);
  RankedRegister b(farm, cfg, 2, 1);
  EXPECT_TRUE(a.Write(5, "for-a"));
  auto r = b.Read(6);
  EXPECT_EQ(r.write_rank, 0u);
}

TEST(ActiveDiskPaxos, SoloProposerDecides) {
  ActiveDiskFarm farm(Fast());
  FarmConfig cfg{1};
  ActiveDiskPaxos paxos(farm, cfg, 1, 42);
  Rng rng(1);
  EXPECT_EQ(paxos.Propose("mine", rng), "mine");
}

TEST(ActiveDiskPaxos, SecondProposerAdoptsDecision) {
  ActiveDiskFarm farm(Fast());
  FarmConfig cfg{1};
  ActiveDiskPaxos p1(farm, cfg, 1, 1);
  ActiveDiskPaxos p2(farm, cfg, 1, 2);
  Rng rng(2);
  EXPECT_EQ(p1.Propose("first", rng), "first");
  EXPECT_EQ(p2.Propose("second", rng), "first");
}

TEST(ActiveDiskPaxos, UniformityHugeSparseProcessIds) {
  // No process count anywhere: ids from a huge sparse space just work.
  ActiveDiskFarm farm(Fast());
  FarmConfig cfg{1};
  Rng rng(3);
  ActiveDiskPaxos p1(farm, cfg, 1, 0x9fffful);
  std::string first = p1.Propose("from-big-pid", rng);
  ActiveDiskPaxos p2(farm, cfg, 1, 7);
  EXPECT_EQ(p2.Propose("other", rng), first);
}

TEST(ActiveDiskPaxos, ToleratesDiskCrashMidRun) {
  ActiveDiskFarm farm(Fast());
  FarmConfig cfg{1};
  ActiveDiskPaxos p(farm, cfg, 1, 1);
  Rng rng(4);
  farm.CrashDisk(0);
  EXPECT_EQ(p.Propose("resilient", rng), "resilient");
}

class ActiveDiskPaxosRace : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ActiveDiskPaxosRace, ConcurrentProposersAgree) {
  ActiveDiskFarm farm(Fast(GetParam()));
  FarmConfig cfg{1};
  constexpr int kProposers = 5;
  Mutex mu;
  std::vector<std::string> decisions;
  {
    std::vector<std::jthread> threads;
    for (int p = 0; p < kProposers; ++p) {
      threads.emplace_back([&, p] {
        // Sparse pids: uniformity in action.
        ActiveDiskPaxos paxos(farm, cfg, 1,
                              static_cast<ProcessId>(1000 + 37 * p));
        Rng rng(GetParam() * 10 + p);
        std::string v = paxos.Propose("v" + std::to_string(p), rng);
        MutexLock lock(mu);
        decisions.push_back(std::move(v));
      });
    }
  }
  ASSERT_EQ(decisions.size(), static_cast<std::size_t>(kProposers));
  for (const auto& d : decisions) {
    EXPECT_EQ(d, decisions[0]) << "agreement violated";
    EXPECT_EQ(d.rfind("v", 0), 0u) << "validity violated";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ActiveDiskPaxosRace,
                         ::testing::Values(61, 62, 63, 64));

}  // namespace
}  // namespace nadreg::apps
