// Shared output helpers for the Table 1-4 reproduction harnesses.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "adversary/schedules.h"
#include "campaigns.h"
#include "obs/metrics.h"

namespace nadreg::bench {

/// Dumps the process-wide metrics registry (quorum-wait and per-phase
/// latency histograms, op counters) as `<bench>_metrics.json` next to the
/// binary's working directory — or into $NADREG_METRICS_DIR when set — so
/// every table/figure run leaves a machine-readable record of where the
/// time went.
inline void EmitMetricsArtifact(const std::string& bench_name) {
  std::string dir = ".";
  if (const char* env = std::getenv("NADREG_METRICS_DIR")) dir = env;
  const std::string path = dir + "/" + bench_name + "_metrics.json";
  Status s = obs::Registry::Global().WriteJsonFile(path);
  if (s.ok()) {
    std::printf("metrics artifact: %s\n", path.c_str());
  } else {
    std::printf("metrics artifact: NOT WRITTEN (%s)\n", s.ToString().c_str());
  }
}

struct Cell {
  std::string row;       // "Single-Writer" / "Multi-Writer"
  std::string col;       // "Single-Reader" / "Multi-Reader"
  bool paper_says_yes = false;
  bool measured_yes = false;
  std::string evidence;  // one-line summary of how it was established
};

inline void PrintHeader(const std::string& table, const std::string& title) {
  std::printf("==========================================================================\n");
  std::printf("%s — %s\n", table.c_str(), title.c_str());
  std::printf("Reproduction of: \"On using network attached disks as shared memory\",\n");
  std::printf("Aguilera, Englert & Gafni, PODC 2003.\n");
  std::printf("==========================================================================\n\n");
}

inline void PrintAdversaryOutcome(const adversary::ScheduleOutcome& out) {
  std::printf("    adversary schedule: %s\n", out.name.c_str());
  std::printf("%s", out.narrative.c_str());
  std::printf("    checker verdicts: atomic=%s, sequentially-consistent=%s\n",
              out.atomic.ok ? "YES" : "NO (violation certified)",
              out.seqcst.ok ? "YES" : "NO (violation certified)");
  if (out.liveness_violated) {
    std::printf("    liveness verdict: VIOLATED (see narrative)\n");
  }
  std::printf("    counterexample history:\n%s\n",
              checker::FormatHistory(out.history).c_str());
}

inline int PrintMatrixAndVerdict(const std::string& table,
                                 const std::vector<Cell>& cells) {
  std::printf("\n%s — reproduced matrix (paper / measured):\n\n", table.c_str());
  std::printf("  %-16s %-28s %-28s\n", "", "Single-Reader", "Multi-Reader");
  for (const std::string row : {"Single-Writer", "Multi-Writer"}) {
    std::string line = "  " + row;
    line.resize(18, ' ');
    for (const std::string col : {"Single-Reader", "Multi-Reader"}) {
      for (const Cell& c : cells) {
        if (c.row == row && c.col == col) {
          char buf[64];
          std::snprintf(buf, sizeof(buf), "%-3s / %-3s (%s)",
                        c.paper_says_yes ? "Yes" : "No",
                        c.measured_yes ? "Yes" : "No",
                        c.paper_says_yes == c.measured_yes ? "match"
                                                           : "MISMATCH");
          std::string f = buf;
          f.resize(29, ' ');
          line += f;
        }
      }
    }
    std::printf("%s\n", line.c_str());
  }
  bool all_match = true;
  std::printf("\n  evidence:\n");
  for (const Cell& c : cells) {
    std::printf("   - %s/%s: %s\n", c.row.c_str(), c.col.c_str(),
                c.evidence.c_str());
    if (c.paper_says_yes != c.measured_yes) all_match = false;
  }
  std::printf("\n%s: %s\n\n", table.c_str(),
              all_match ? "REPRODUCED (all four cells match the paper)"
                        : "MISMATCH — see above");
  return all_match ? 0 : 1;
}

}  // namespace nadreg::bench
