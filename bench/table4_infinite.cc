// Table 4 — Uniform WAIT-FREE implementability of ATOMIC registers using
// INFINITELY many fail-prone base registers spread across 2t+1 disks, up
// to t of which may fully crash.
//
//   paper:   SWSR = Yes, SWMR = Yes, MWSR = Yes, MWMR = Yes
//
// All four cells come from one construction (Fig. 3): the wait-free
// atomic MWMR register built from name snapshots and one-shot registers.
// We exercise the construction in all four writer/reader patterns, with
// full-disk crash injection, and have the linearizability checker certify
// every history. MWMR implies the rest; we still run each pattern.
#include <cstdio>

#include "campaigns.h"
#include "table_common.h"

int main() {
  using namespace nadreg::bench;

  PrintHeader("TABLE 4",
              "uniform wait-free implementability of atomic registers, "
              "infinitely many base registers on 2t+1 disks");

  std::vector<Cell> cells;

  CampaignOptions opts;
  opts.runs = 8;
  opts.ops_per_process = 4;

  struct Pattern {
    const char* row;
    const char* col;
    int writers;
    int readers;
  };
  const Pattern patterns[] = {
      {"Single-Writer", "Single-Reader", 1, 1},
      {"Single-Writer", "Multi-Reader", 1, 3},
      {"Multi-Writer", "Single-Reader", 3, 1},
      {"Multi-Writer", "Multi-Reader", 3, 3},
  };

  for (const Pattern& p : patterns) {
    std::printf("[%s/%s] paper says Yes — Fig. 3 construction\n", p.row, p.col);
    auto res = VerifyMwmrAtomic(opts, p.writers, p.readers);
    PrintCampaign(res);
    // Also at t=2 with two full disk crashes among five disks.
    CampaignOptions o2 = opts;
    o2.t = 2;
    o2.runs = 4;
    auto res2 = VerifyMwmrAtomic(o2, p.writers, p.readers);
    PrintCampaign(res2);
    cells.push_back(Cell{p.row, p.col, true,
                         res.AllPassed() && res2.AllPassed(),
                         "Fig. 3 emulation linearizable over " +
                             std::to_string(res.runs + res2.runs) +
                             " randomized full-disk-crash runs (t=1, t=2)"});
    std::printf("\n");
  }

  EmitMetricsArtifact("table4_infinite");
  return PrintMatrixAndVerdict("TABLE 4", cells);
}
