// Table 1 — Uniform WAIT-FREE implementability of ATOMIC registers using
// finitely many fail-prone base registers (processes may crash).
//
//   paper:   SWSR = Yes, SWMR = No, MWSR = No, MWMR = No
//
// Yes cell: the Section 3.2 algorithm, verified atomic by the exact
// linearizability checker over randomized crash schedules.
// No cells: the Theorem 1/2 proof schedules executed mechanically against
// the natural uniform candidates, producing checker-certified violations.
#include <cstdio>

#include "adversary/schedules.h"
#include "campaigns.h"
#include "table_common.h"

int main() {
  using namespace nadreg::bench;
  using namespace nadreg::adversary;

  PrintHeader("TABLE 1",
              "uniform wait-free implementability of atomic registers, "
              "finitely many base registers, processes may crash");

  std::vector<Cell> cells;

  // --- SWSR: Yes -----------------------------------------------------------
  std::printf("[SWSR] paper says Yes — Section 3.2 algorithm (2t+1 regs, seq numbers)\n");
  CampaignOptions opts;
  opts.runs = 15;
  opts.ops_per_process = 6;
  auto swsr = VerifySwsrAtomic(opts);
  PrintCampaign(swsr);
  CampaignOptions opts_t2 = opts;
  opts_t2.t = 2;
  opts_t2.runs = 8;
  auto swsr_t2 = VerifySwsrAtomic(opts_t2);
  PrintCampaign(swsr_t2);
  cells.push_back(Cell{"Single-Writer", "Single-Reader", true,
                       swsr.AllPassed() && swsr_t2.AllPassed(),
                       "Sec. 3.2 emulation linearizable over " +
                           std::to_string(swsr.runs + swsr_t2.runs) +
                           " randomized crash runs (t=1 and t=2)"});

  // --- SWMR: No (Theorem 1) ------------------------------------------------
  std::printf("\n[SWMR] paper says No — Theorem 1 (wait-free readers can be deceived)\n");
  auto t1 = RunTheorem1WaitFreeSwmr();
  PrintAdversaryOutcome(t1);
  std::printf("[SWMR] ablation — the write-back \"fix\" falls to pending-write resurrection\n");
  auto t1wb = RunTheorem1WriteBackResurrection();
  PrintAdversaryOutcome(t1wb);
  cells.push_back(Cell{"Single-Writer", "Multi-Reader", false,
                       t1.atomic.ok && t1wb.atomic.ok,
                       "Theorem 1 schedule breaks the natural candidate AND "
                       "its write-back repair (checker-certified)"});

  // --- MWSR: No (Theorem 2, a fortiori) --------------------------------------
  std::printf("[MWSR] paper says No — follows from Theorem 2 (holds even without wait-freedom)\n");
  auto t2 = RunTheorem2HiddenWrite();
  PrintAdversaryOutcome(t2);
  cells.push_back(Cell{"Multi-Writer", "Single-Reader", false, t2.atomic.ok,
                       "Theorem 2 hidden-WRITE schedule: a fully completed "
                       "WRITE erased by flushing pending writes"});

  // --- MWMR: No (a fortiori) --------------------------------------------------
  std::printf("[MWMR] paper says No — a fortiori from both SWMR and MWSR\n\n");
  cells.push_back(Cell{"Multi-Writer", "Multi-Reader", false,
                       t1.atomic.ok && t2.atomic.ok,
                       "a fortiori: a MWMR register would implement both "
                       "broken cells above"});

  EmitMetricsArtifact("table1_waitfree_atomic");
  return PrintMatrixAndVerdict("TABLE 1", cells);
}
