// Figure 1 — a process may complete its OPERATION while leaving a pending
// write on register r3.
//
// The harness replays the figure as a deterministic timeline: process p
// issues write(1) to r1, r2, r3; the adversary delivers r1 and r2; the
// OPERATION completes; much later the write to r3 takes effect. Every
// claim is asserted against the simulated disk state.
#include <cstdio>
#include <future>
#include <thread>

#include "common/codec.h"
#include "core/config.h"
#include "core/swsr_atomic.h"
#include "sim/det_farm.h"
#include "table_common.h"

int main() {
  using namespace nadreg;
  using namespace std::chrono_literals;
  using sim::DetFarm;

  std::printf("==========================================================================\n");
  std::printf("FIGURE 1 — an OPERATION completing with a pending write on r3\n");
  std::printf("==========================================================================\n\n");

  core::FarmConfig cfg{1};
  DetFarm farm;
  auto regs = cfg.Spread(0);
  core::SwsrAtomicWriter writer(farm, cfg, regs, /*pid=*/1);

  std::printf("t0  process p invokes OPERATION = WRITE(1) on the emulated register\n");
  auto op = std::async(std::launch::async, [&] { writer.Write("1"); });
  while (farm.Pending().size() < 3) std::this_thread::yield();
  std::printf("t1  p has issued concurrent base writes:   write(1)->r1, write(1)->r2, write(1)->r3\n");

  farm.DeliverWhere([](const DetFarm::PendingOp& o) { return o.r.disk == 0; });
  std::printf("t2  r1 responds                            [r1 done]\n");
  farm.DeliverWhere([](const DetFarm::PendingOp& o) { return o.r.disk == 1; });
  std::printf("t3  r2 responds                            [r2 done]\n");

  op.get();
  const bool r3_empty = farm.Peek(regs[2]).empty();
  std::printf("t4  OPERATION completes (quorum 2 of 3)    [write to r3 still PENDING: %s]\n",
              r3_empty ? "yes" : "NO?!");

  std::printf("t5  ... arbitrary time passes; r3 was merely slow, not crashed ...\n");
  const std::size_t flushed = farm.DeliverAll();
  auto tv = DecodeTaggedValue(farm.Peek(regs[2]));
  std::printf("t6  the pending write takes effect         [flushed %zu op(s); r3 now holds seq=%llu value=%s]\n",
              flushed, tv.ok() ? (unsigned long long)tv->seq : 0,
              tv.ok() ? tv->payload.c_str() : "?");

  const bool ok = r3_empty && tv.ok() && tv->payload == "1";
  std::printf("\nFIGURE 1: %s — the model's pending-write semantics hold exactly as drawn.\n",
              ok ? "REPRODUCED" : "MISMATCH");
  std::printf("This phenomenon is the engine of every impossibility proof in the paper\n");
  std::printf("(see table1/table2/table3 harnesses for the proofs run mechanically).\n\n");
  bench::EmitMetricsArtifact("fig1_pending_write");
  return ok ? 0 : 1;
}
