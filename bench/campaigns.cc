#include "campaigns.h"

#include <cstdio>
#include <thread>
#include <vector>

#include "checker/history.h"
#include "common/rng.h"
#include "core/config.h"
#include "core/mwmr_atomic.h"
#include "core/mwsr_seqcst.h"
#include "core/swmr_atomic.h"
#include "core/swsr_atomic.h"
#include "sim/sim_farm.h"

namespace nadreg::bench {
namespace {

using checker::CheckResult;
using checker::HistoryRecorder;
using core::FarmConfig;
using sim::SimFarm;

SimFarm::Options FarmOpts(std::uint64_t seed) {
  SimFarm::Options o;
  o.seed = seed;
  o.min_delay_us = 0;
  o.max_delay_us = 25;
  return o;
}

/// Crashes up to t distinct random disks at random times, concurrently
/// with the workload.
std::jthread CrashInjector(SimFarm& farm, const FarmConfig& cfg,
                           std::uint64_t seed, bool enabled) {
  return std::jthread([&farm, cfg, seed, enabled] {
    if (!enabled) return;
    Rng rng(seed ^ 0xc4a5);
    std::vector<DiskId> disks;
    for (DiskId d = 0; d < cfg.num_disks(); ++d) disks.push_back(d);
    for (std::uint32_t k = 0; k < cfg.t; ++k) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(rng.Between(200, 3000)));
      const std::size_t pick = rng.Below(disks.size());
      farm.CrashDisk(disks[pick]);
      disks.erase(disks.begin() + static_cast<std::ptrdiff_t>(pick));
    }
  });
}

void Accumulate(CampaignResult& result, std::uint64_t seed,
                const std::vector<checker::Operation>& history,
                const CheckResult& check) {
  ++result.runs;
  result.seeds_used.push_back(seed);
  result.ops_checked += history.size();
  if (check.ok) {
    ++result.passed;
  } else if (result.first_failure.empty()) {
    result.first_failure = check.explanation;
  }
}

}  // namespace

CampaignResult VerifySwsrAtomic(const CampaignOptions& opts) {
  CampaignResult result;
  result.name = "SWSR wait-free atomic (Sec. 3.2), random schedules + crashes";
  for (int run = 0; run < opts.runs; ++run) {
    const std::uint64_t seed = opts.seed_base + run;
    FarmConfig cfg{opts.t};
    SimFarm farm(FarmOpts(seed));
    auto regs = cfg.Spread(0);
    HistoryRecorder rec;
    {
      auto injector = CrashInjector(farm, cfg, seed, opts.inject_crashes);
      std::jthread writer_thread([&] {
        core::SwsrAtomicWriter writer(farm, cfg, regs, 1);
        for (int i = 1; i <= opts.ops_per_process; ++i) {
          auto h = rec.BeginWrite(1, std::to_string(i));
          writer.Write(std::to_string(i));
          rec.EndWrite(h);
        }
      });
      std::jthread reader_thread([&] {
        core::SwsrAtomicReader reader(farm, cfg, regs, 2);
        for (int i = 0; i < 2 * opts.ops_per_process; ++i) {
          auto h = rec.BeginRead(2);
          rec.EndRead(h, reader.Read());
        }
      });
    }
    auto check = checker::CheckAtomic(rec.CheckableHistory());
    Accumulate(result, seed, rec.CheckableHistory(), check);
  }
  return result;
}

CampaignResult VerifySwmrAtomic(const CampaignOptions& opts) {
  CampaignResult result;
  result.name = "SWMR atomic, reliable processes (Sec. 4.2), random schedules + crashes";
  for (int run = 0; run < opts.runs; ++run) {
    const std::uint64_t seed = opts.seed_base + 1000 + run;
    FarmConfig cfg{opts.t};
    SimFarm farm(FarmOpts(seed));
    auto regs = cfg.Spread(0);
    HistoryRecorder rec;
    {
      auto injector = CrashInjector(farm, cfg, seed, opts.inject_crashes);
      std::jthread writer_thread([&] {
        core::SwmrAtomicWriter writer(farm, cfg, regs, 1);
        for (int i = 1; i <= opts.ops_per_process; ++i) {
          auto h = rec.BeginWrite(1, std::to_string(i));
          writer.Write(std::to_string(i));
          rec.EndWrite(h);
        }
      });
      std::vector<std::jthread> readers;
      for (ProcessId p = 2; p <= 4; ++p) {
        readers.emplace_back([&, p] {
          core::SwmrAtomicReader reader(farm, cfg, regs, p);
          for (int i = 0; i < opts.ops_per_process; ++i) {
            auto h = rec.BeginRead(p);
            rec.EndRead(h, reader.Read());
          }
        });
      }
    }
    auto check = checker::CheckAtomic(rec.CheckableHistory());
    Accumulate(result, seed, rec.CheckableHistory(), check);
  }
  return result;
}

CampaignResult VerifyMwsrSeqCst(const CampaignOptions& opts) {
  CampaignResult result;
  result.name = "MWSR wait-free sequentially consistent (Fig. 2), random schedules + crashes";
  for (int run = 0; run < opts.runs; ++run) {
    const std::uint64_t seed = opts.seed_base + 2000 + run;
    FarmConfig cfg{opts.t};
    SimFarm farm(FarmOpts(seed));
    auto regs = cfg.Spread(0);
    HistoryRecorder rec;
    {
      auto injector = CrashInjector(farm, cfg, seed, opts.inject_crashes);
      std::vector<std::jthread> writers;
      for (ProcessId q = 1; q <= 3; ++q) {
        writers.emplace_back([&, q] {
          core::MwsrWriter writer(farm, cfg, regs, q);
          for (int i = 1; i <= opts.ops_per_process; ++i) {
            const std::string v =
                std::to_string(q) + ":" + std::to_string(i);
            auto h = rec.BeginWrite(q, v);
            writer.Write(v);
            rec.EndWrite(h);
          }
        });
      }
      std::jthread reader_thread([&] {
        core::MwsrReader reader(farm, cfg, regs, 99);
        for (int i = 0; i < 2 * opts.ops_per_process; ++i) {
          auto h = rec.BeginRead(99);
          rec.EndRead(h, reader.Read());
        }
      });
    }
    auto check = checker::CheckSequentiallyConsistent(rec.CheckableHistory());
    Accumulate(result, seed, rec.CheckableHistory(), check);
  }
  return result;
}

CampaignResult VerifySwsrSeqCst(const CampaignOptions& opts) {
  CampaignResult result;
  result.name = "SWSR wait-free seq. consistent (Sec. 3.2 a fortiori), random schedules + crashes";
  for (int run = 0; run < opts.runs; ++run) {
    const std::uint64_t seed = opts.seed_base + 3000 + run;
    FarmConfig cfg{opts.t};
    SimFarm farm(FarmOpts(seed));
    auto regs = cfg.Spread(0);
    HistoryRecorder rec;
    {
      auto injector = CrashInjector(farm, cfg, seed, opts.inject_crashes);
      std::jthread writer_thread([&] {
        core::SwsrAtomicWriter writer(farm, cfg, regs, 1);
        for (int i = 1; i <= opts.ops_per_process; ++i) {
          auto h = rec.BeginWrite(1, std::to_string(i));
          writer.Write(std::to_string(i));
          rec.EndWrite(h);
        }
      });
      std::jthread reader_thread([&] {
        core::SwsrAtomicReader reader(farm, cfg, regs, 2);
        for (int i = 0; i < 2 * opts.ops_per_process; ++i) {
          auto h = rec.BeginRead(2);
          rec.EndRead(h, reader.Read());
        }
      });
    }
    auto check = checker::CheckSequentiallyConsistent(rec.CheckableHistory());
    Accumulate(result, seed, rec.CheckableHistory(), check);
  }
  return result;
}

CampaignResult VerifyMwmrAtomic(const CampaignOptions& opts, int writers,
                                int readers) {
  CampaignResult result;
  result.name = "wait-free atomic via Fig. 3 over infinitely many registers (" +
                std::to_string(writers) + "W/" + std::to_string(readers) +
                "R), full-disk crashes";
  for (int run = 0; run < opts.runs; ++run) {
    const std::uint64_t seed = opts.seed_base + 4000 + run;
    FarmConfig cfg{opts.t};
    SimFarm farm(FarmOpts(seed));
    HistoryRecorder rec;
    {
      auto injector = CrashInjector(farm, cfg, seed, opts.inject_crashes);
      std::vector<std::jthread> threads;
      for (int w = 0; w < writers; ++w) {
        threads.emplace_back([&, w] {
          core::MwmrAtomic reg(farm, cfg, 1, static_cast<ProcessId>(w + 1));
          for (int i = 0; i < opts.ops_per_process; ++i) {
            const std::string v =
                "w" + std::to_string(w + 1) + "." + std::to_string(i);
            auto h = rec.BeginWrite(static_cast<ProcessId>(w + 1), v);
            reg.Write(v);
            rec.EndWrite(h);
          }
        });
      }
      for (int r = 0; r < readers; ++r) {
        const ProcessId pid = static_cast<ProcessId>(100 + r);
        threads.emplace_back([&, pid] {
          core::MwmrAtomic reg(farm, cfg, 1, pid);
          for (int i = 0; i < opts.ops_per_process; ++i) {
            auto h = rec.BeginRead(pid);
            auto v = reg.Read();
            rec.EndRead(h, v.value_or(""));
          }
        });
      }
    }
    auto check = checker::CheckAtomic(rec.CheckableHistory());
    Accumulate(result, seed, rec.CheckableHistory(), check);
  }
  return result;
}

void PrintCampaign(const CampaignResult& r) {
  std::printf("    verified: %-72s  %d/%d runs linearized OK, %llu ops checked\n",
              r.name.c_str(), r.passed, r.runs,
              static_cast<unsigned long long>(r.ops_checked));
  if (!r.AllPassed()) {
    std::printf("    FIRST FAILURE:\n%s\n", r.first_failure.c_str());
  }
}

}  // namespace nadreg::bench
