// Ablation: the Section 3.2 reader memo ("the largest sequence number
// ever seen before").
//
// The paper's SWSR reader takes the max over (a) the quorum it just read
// and (b) everything it has ever seen. Dropping (b) leaves Lamport's
// *regular* register: a torn WRITE can be observed and then un-observed
// by the same reader (new-old inversion). This harness runs the exact
// separating schedule against both readers and has three checkers grade
// the outcomes: the memo-less reader is regular-but-not-atomic; the full
// reader is atomic.
#include <cstdio>
#include <future>
#include <thread>

#include "checker/consistency.h"
#include "checker/history.h"
#include "core/config.h"
#include "core/swsr_atomic.h"
#include "sim/det_farm.h"

namespace {

using namespace nadreg;
using namespace std::chrono_literals;
using checker::HistoryRecorder;
using sim::DetFarm;

// Runs the separating schedule against a reader type; returns its history.
//   1. WRITE(v1) reaches disk 0 only (torn; writes to 1,2 stay pending).
//   2. READ#1 is served {disk0, disk1}: sees v1.
//   3. READ#2 is served {disk1, disk2}: sees only stale state.
template <typename Reader>
std::vector<checker::Operation> RunSchedule(const char* label) {
  core::FarmConfig cfg{1};
  DetFarm farm;
  auto regs = cfg.Spread(0);
  core::SwsrAtomicWriter writer(farm, cfg, regs, 1);
  Reader reader(farm, cfg, regs, 2);
  HistoryRecorder rec;

  auto hw = rec.BeginWrite(1, "v1");
  auto wfut = std::async(std::launch::async, [&] { writer.Write("v1"); });
  while (farm.Pending().size() < 3) std::this_thread::yield();
  farm.DeliverWhere(
      [](const DetFarm::PendingOp& op) { return op.is_write && op.r.disk == 0; });

  auto read = [&](auto deliver) {
    auto h = rec.BeginRead(2);
    auto fut = std::async(std::launch::async, [&] { return reader.Read(); });
    while (fut.wait_for(1ms) != std::future_status::ready) {
      farm.DeliverWhere(deliver);
    }
    std::string v = fut.get();
    rec.EndRead(h, v);
    return v;
  };
  std::string r1 = read([](const DetFarm::PendingOp& op) {
    return !op.is_write && op.r.disk != 2;
  });
  std::string r2 = read([](const DetFarm::PendingOp& op) {
    return !op.is_write && op.r.disk != 0;
  });
  std::printf("  %-28s READ#1 -> \"%s\", READ#2 -> \"%s\"\n", label, r1.c_str(),
              r2.empty() ? "<initial>" : r2.c_str());

  farm.DeliverAll();
  wfut.get();
  rec.EndWrite(hw);
  return rec.CheckableHistory();
}

const char* Verdict(bool ok) { return ok ? "holds" : "VIOLATED"; }

}  // namespace

int main() {
  std::printf("==========================================================================\n");
  std::printf("ABLATION — the Sec. 3.2 reader memo (atomic) vs no memo (regular)\n");
  std::printf("==========================================================================\n\n");
  std::printf("Schedule: torn WRITE(v1) on disk 0; READ#1 served {0,1}; READ#2 served {1,2}.\n\n");

  auto with_memo = RunSchedule<core::SwsrAtomicReader>("reader WITH memo:");
  auto without_memo = RunSchedule<core::SwsrRegularReader>("reader WITHOUT memo:");

  auto grade = [](const char* label,
                  const std::vector<checker::Operation>& history) {
    auto atomic = checker::CheckAtomic(history);
    auto regular = checker::CheckRegular(history);
    auto seqcst = checker::CheckSequentiallyConsistent(history);
    std::printf("  %-28s atomic: %-9s regular: %-9s seq-cst: %s\n", label,
                Verdict(atomic.ok), Verdict(regular.ok), Verdict(seqcst.ok));
    return std::make_pair(atomic.ok, regular.ok);
  };
  std::printf("\nChecker verdicts:\n");
  auto [memo_atomic, memo_regular] = grade("with memo:", with_memo);
  auto [nomemo_atomic, nomemo_regular] = grade("without memo:", without_memo);

  const bool ok =
      memo_atomic && memo_regular && !nomemo_atomic && nomemo_regular;
  std::printf("\nExpected separation: memo => atomic; no memo => regular only.\n");
  std::printf("ABLATION: %s\n\n", ok ? "REPRODUCED" : "MISMATCH");
  return ok ? 0 : 1;
}
