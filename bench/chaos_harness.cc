// chaos_harness — the fault-injection campaign runner.
//
// Replays declarative fault plans (src/faults) against the paper's
// register emulations and Disk Paxos, on the simulated farm and on a real
// TCP disk cluster, and has the consistency checkers certify every
// surviving history:
//
//   1. tolerated-minority crashes: every emulation (regular, atomic and
//      sequentially consistent; finite and infinite constructions) runs
//      under generated plans that crash exactly t of 2t+1 disks plus
//      transient delay faults — zero checker violations expected, no
//      deadlines needed (the algorithms stay wait-free inside the budget).
//   2. over-budget detection: a plan that crashes t+1 disks is flagged
//      up-front (FaultPlan::CrashedDisks() vs t) and the run completes
//      via per-op deadlines with counted timeouts instead of hanging —
//      safety still certified on the surviving history.
//   3. TCP chaos: disconnects, stalls, delays and frame drops against
//      live daemons; the client's reconnect/retry/circuit-breaker path
//      (nad/client.h) must recover with zero checker violations and at
//      least one observed reconnect.
//   4. Disk Paxos: concurrent proposers reach agreement while a disk
//      crashes mid-ballot.
//
// Results land in BENCH_faults.json together with the fault-path metric
// series (faults.injected, nad.client.retries / reconnects / expired /
// breaker_open, core.skipped_suspected).
//
// Flags: --quick (fewer seeds/ops; the CI smoke configuration),
//        --sim-only (skip the TCP scenarios).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "apps/disk_paxos.h"
#include "common/rng.h"
#include "core/config.h"
#include "faults/fault_plan.h"
#include "faults/injector.h"
#include "harness/workload.h"
#include "obs/metrics.h"
#include "sim/sim_farm.h"

namespace {

using namespace std::chrono_literals;
using nadreg::DiskId;
using nadreg::Rng;
using nadreg::faults::FaultEvent;
using nadreg::faults::FaultInjector;
using nadreg::faults::FaultKind;
using nadreg::faults::FaultPlan;
using nadreg::harness::Algorithm;
using nadreg::harness::RunWorkload;
using nadreg::harness::WorkloadOptions;

struct ScenarioResult {
  std::string name;
  bool pass = false;
  std::string detail;
  std::uint64_t faults_injected = 0;
  std::uint64_t timeouts = 0;
};

std::uint64_t GlobalCounter(const char* name) {
  return nadreg::obs::Registry::Global().GetCounter(name).Get();
}

/// Crash exactly `crashes` of `disks` disks at random times, and make one
/// surviving disk transiently slow (delay + heal) — the paper's adversary
/// plus a recoverable transport fault, all inside the tolerated budget.
FaultPlan ToleratedPlanFor(Rng& rng, std::uint32_t disks,
                           std::uint32_t crashes) {
  // Short horizon: sim runs complete in well under a millisecond, so a
  // longer schedule would mostly fire after the workload already ended.
  FaultPlan plan = FaultPlan::GenerateCrashPlan(rng, disks, crashes, 400us);
  const std::set<DiskId> crashed = plan.CrashedDisks();
  DiskId slow = 0;
  while (crashed.count(slow) != 0) ++slow;
  FaultEvent delay;
  delay.at = 100us;
  delay.kind = FaultKind::kDelay;
  delay.disks = {slow};
  delay.min_delay_us = 50;
  delay.max_delay_us = 200;
  plan.Add(delay);
  FaultEvent heal;
  heal.at = 600us;
  heal.kind = FaultKind::kHeal;
  heal.disks = {slow};
  plan.Add(heal);
  return plan;
}

FaultPlan ToleratedPlan(Rng& rng, std::uint32_t t) {
  return ToleratedPlanFor(rng, 2 * t + 1, t);
}

ScenarioResult RunToleratedScenario(Algorithm alg, std::uint32_t t,
                                    int seeds, int ops) {
  ScenarioResult r;
  r.name = "sim/tolerated/" + nadreg::harness::AlgorithmName(alg) + "/t" +
           std::to_string(t);
  r.pass = true;
  for (int s = 1; s <= seeds; ++s) {
    Rng rng(0xc4a05ULL * static_cast<std::uint64_t>(s) + t);
    FaultPlan plan = ToleratedPlan(rng, t);
    WorkloadOptions w;
    w.algorithm = alg;
    w.seed = 7000 + static_cast<std::uint64_t>(s);
    w.t = t;
    w.writers = 2;
    w.readers = 2;
    w.ops_per_process = ops;
    w.fault_plan_text = plan.ToString();
    auto res = RunWorkload(w);
    r.faults_injected += res.faults_injected;
    r.timeouts += res.timeouts;
    if (!res.ok()) {
      r.pass = false;
      r.detail = "seed " + std::to_string(s) + ": " +
                 (res.fault_plan_status.ok() ? res.check.explanation
                                             : res.fault_plan_status.ToString());
      return r;
    }
  }
  r.detail = std::to_string(seeds) + " seeds, histories certified";
  return r;
}

/// Coded MWMR (core/coded) under quorum-minority crashes: exactly
/// f = (n-k)/2 of the n fragment disks crash mid-run, plus transient
/// delays on a survivor. Every surviving history must certify atomic —
/// in particular no read may surface a torn decode of a write whose
/// fragments only partially propagated before its writer's puts raced
/// the crashes (the tag-completeness invariant, DESIGN.md §16).
ScenarioResult RunCodedScenario(std::uint32_t n, std::uint32_t k, int seeds,
                                int ops) {
  const std::uint32_t f = (n - k) / 2;
  ScenarioResult r;
  r.name = "sim/coded-tolerated/n" + std::to_string(n) + "k" +
           std::to_string(k) + "f" + std::to_string(f);
  r.pass = true;
  for (int s = 1; s <= seeds; ++s) {
    Rng rng(0xc0dedULL * static_cast<std::uint64_t>(s) + n);
    FaultPlan plan = ToleratedPlanFor(rng, n, f);
    WorkloadOptions w;
    w.algorithm = Algorithm::kCodedMwmr;
    w.coded_n = n;
    w.coded_k = k;
    w.seed = 8100 + static_cast<std::uint64_t>(s);
    w.writers = 2;
    w.readers = 2;
    w.ops_per_process = ops;
    w.payload_bytes = 256;  // big enough that fragments differ from values
    w.fault_plan_text = plan.ToString();
    auto res = RunWorkload(w);
    r.faults_injected += res.faults_injected;
    r.timeouts += res.timeouts;
    if (!res.ok()) {
      r.pass = false;
      r.detail = "seed " + std::to_string(s) + ": " +
                 (res.fault_plan_status.ok() ? res.check.explanation
                                             : res.fault_plan_status.ToString());
      return r;
    }
  }
  r.detail = std::to_string(seeds) + " seeds, histories certified";
  return r;
}

/// Crashes t+1 of 2t+1 disks at time zero: more than the paper's budget,
/// so quorum phases can legitimately never finish. The harness must (a)
/// flag the plan as over-budget before running it and (b) complete via
/// per-op deadlines with every op counted as timed out — never hang.
ScenarioResult RunOverBudgetScenario(std::uint32_t t, int ops) {
  ScenarioResult r;
  r.name = "sim/over-budget/t" + std::to_string(t);
  std::string text;
  for (std::uint32_t d = 0; d <= t; ++d) {
    text += "at 0us crash-disk " + std::to_string(d) + "\n";
  }
  auto plan = FaultPlan::Parse(text);
  if (!plan.ok()) {
    r.detail = "plan parse failed: " + plan.status().ToString();
    return r;
  }
  const std::size_t budget = plan->CrashedDisks().size();
  const bool flagged = budget > t;
  WorkloadOptions w;
  w.algorithm = Algorithm::kSwsrAtomic;
  w.seed = 99;
  w.t = t;
  w.ops_per_process = ops;
  w.fault_plan_text = text;
  w.op_deadline = 150ms;
  auto res = RunWorkload(w);
  r.faults_injected = res.faults_injected;
  r.timeouts = res.timeouts;
  // Reaching this line at all is the liveness half of the test; the
  // checker on whatever completed is the safety half.
  r.pass = flagged && res.check.ok && res.timeouts > 0;
  r.detail = "crashes " + std::to_string(budget) + " > t=" +
             std::to_string(t) + (flagged ? " (flagged)" : " (NOT flagged)") +
             ", " + std::to_string(res.timeouts) + " ops timed out, run returned";
  return r;
}

/// Live daemons under recoverable transport chaos: the client must ride
/// out disconnects (reconnect + retransmit), stalls and frame drops.
ScenarioResult RunTcpChaosScenario(Algorithm alg, int ops) {
  ScenarioResult r;
  r.name = "tcp/chaos/" + nadreg::harness::AlgorithmName(alg);
  const std::uint64_t reconnects_before = GlobalCounter("nad.client.reconnects");
  WorkloadOptions w;
  w.algorithm = alg;
  w.seed = 4242;
  w.t = 1;
  w.writers = 2;
  w.readers = 2;
  w.ops_per_process = ops;
  w.over_tcp = true;
  w.max_delay_us = 0;  // service delay comes from the plan, not Options
  w.client_op_timeout = 500ms;
  w.op_deadline = 5000ms;  // safety net: a stuck run fails, never hangs
  // The delays pace the run so it outlasts the fault schedule (loopback
  // RPCs alone would finish before the first disconnect fires).
  w.fault_plan_text =
      "at 0us delay 0 100us 300us\n"
      "at 0us delay 1 100us 300us\n"
      "at 0us delay 2 100us 300us\n"
      "at 500us disconnect 0\n"
      "at 2ms disconnect 1\n"
      "at 4ms stall 2 3ms\n"
      "at 6ms drop 0 300\n"
      "at 10ms heal 0\n";
  auto res = RunWorkload(w);
  const std::uint64_t reconnects =
      GlobalCounter("nad.client.reconnects") - reconnects_before;
  r.faults_injected = res.faults_injected;
  r.timeouts = res.timeouts;
  r.pass = res.ok() && reconnects >= 1;
  r.detail = std::to_string(reconnects) + " reconnects, " +
             std::to_string(res.timeouts) + " timeouts" +
             (res.ok() ? ", history certified" : ", FAILED: " +
              (res.fault_plan_status.ok() ? res.check.explanation
                                          : res.fault_plan_status.ToString()));
  return r;
}

/// Disk Paxos: three concurrent proposers, one disk crashing mid-run.
/// Consensus must still decide exactly one value.
ScenarioResult RunDiskPaxosScenario() {
  ScenarioResult r;
  r.name = "sim/disk-paxos/t1";
  nadreg::core::FarmConfig cfg{1};
  nadreg::sim::SimFarm farm;
  auto plan = FaultPlan::Parse("at 1ms crash-disk 1\n");
  if (!plan.ok()) {
    r.detail = "plan parse failed";
    return r;
  }
  FaultInjector injector(std::move(*plan), farm);
  injector.Start();
  constexpr int kProposers = 3;
  std::vector<std::string> chosen(kProposers);
  {
    std::vector<std::jthread> threads;
    for (int p = 0; p < kProposers; ++p) {
      threads.emplace_back([&, p] {
        nadreg::apps::DiskPaxos paxos(farm, cfg, /*object=*/9, kProposers,
                                      static_cast<std::uint32_t>(p));
        Rng rng(0xbadaULL + static_cast<std::uint64_t>(p));
        chosen[static_cast<std::size_t>(p)] =
            paxos.Propose("value-" + std::to_string(p), rng);
      });
    }
  }
  injector.Stop();
  r.faults_injected = injector.injected_count();
  r.pass = !chosen[0].empty();
  for (const std::string& c : chosen) {
    if (c != chosen[0]) r.pass = false;
  }
  r.detail = r.pass ? "3 proposers agreed on " + chosen[0]
                    : "proposers disagreed";
  return r;
}

void WriteArtifact(const std::vector<ScenarioResult>& results) {
  std::FILE* f = std::fopen("BENCH_faults.json", "w");
  if (f == nullptr) return;
  std::uint64_t injected = 0;
  for (const ScenarioResult& r : results) injected += r.faults_injected;
  std::fprintf(f, "{\n  \"scenarios\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ScenarioResult& r = results[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"pass\": %s, "
                 "\"faults_injected\": %llu, \"timeouts\": %llu, "
                 "\"detail\": \"%s\"}%s\n",
                 r.name.c_str(), r.pass ? "true" : "false",
                 static_cast<unsigned long long>(r.faults_injected),
                 static_cast<unsigned long long>(r.timeouts),
                 r.detail.c_str(), i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n"
               "  \"faults_injected_total\": %llu,\n"
               "  \"client_retries\": %llu,\n"
               "  \"client_reconnects\": %llu,\n"
               "  \"client_reconnect_failures\": %llu,\n"
               "  \"client_expired\": %llu,\n"
               "  \"client_breaker_open\": %llu,\n"
               "  \"core_skipped_suspected\": %llu\n"
               "}\n",
               static_cast<unsigned long long>(injected),
               static_cast<unsigned long long>(GlobalCounter("nad.client.retries")),
               static_cast<unsigned long long>(GlobalCounter("nad.client.reconnects")),
               static_cast<unsigned long long>(
                   GlobalCounter("nad.client.reconnect_failures")),
               static_cast<unsigned long long>(GlobalCounter("nad.client.expired")),
               static_cast<unsigned long long>(
                   GlobalCounter("nad.client.breaker_open")),
               static_cast<unsigned long long>(
                   GlobalCounter("core.skipped_suspected")));
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool sim_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--sim-only") == 0) sim_only = true;
  }
  const int seeds = quick ? 2 : 5;
  const int ops = quick ? 4 : 8;

  std::printf("CHAOS HARNESS — fault plans vs the paper's emulations%s\n\n",
              quick ? " (quick)" : "");

  std::vector<ScenarioResult> results;
  const Algorithm algs[] = {
      Algorithm::kSwsrRegular, Algorithm::kSwsrAtomic, Algorithm::kSwmrAtomic,
      Algorithm::kMwsrSeqCst, Algorithm::kMwmrAtomic,
  };
  for (Algorithm a : algs) {
    results.push_back(RunToleratedScenario(a, /*t=*/1, seeds, ops));
    if (!quick) {
      results.push_back(RunToleratedScenario(a, /*t=*/2, seeds, ops));
    }
  }
  // Coded MWMR: f = 0 (delays only) and f = 1 (one fragment disk down).
  results.push_back(RunCodedScenario(/*n=*/5, /*k=*/5, seeds, ops));
  results.push_back(RunCodedScenario(/*n=*/8, /*k=*/5, seeds, ops));
  results.push_back(RunOverBudgetScenario(/*t=*/1, /*ops=*/2));
  results.push_back(RunDiskPaxosScenario());
  if (!sim_only) {
    results.push_back(RunTcpChaosScenario(Algorithm::kSwmrAtomic,
                                          quick ? 40 : 120));
    results.push_back(RunTcpChaosScenario(Algorithm::kMwmrAtomic,
                                          quick ? 25 : 60));
    // Coded register over real daemons: merges (kMergeReq) must survive
    // disconnect/reconnect retransmission exactly like writes.
    results.push_back(RunTcpChaosScenario(Algorithm::kCodedMwmr,
                                          quick ? 15 : 40));
  }

  bool all_pass = true;
  for (const ScenarioResult& r : results) {
    std::printf("  [%s] %-40s %s\n", r.pass ? "PASS" : "FAIL", r.name.c_str(),
                r.detail.c_str());
    all_pass = all_pass && r.pass;
  }
  WriteArtifact(results);
  std::printf("\n%s — %zu scenarios, artifact: BENCH_faults.json\n",
              all_pass ? "ALL PASS" : "FAILURES", results.size());
  return all_pass ? 0 : 1;
}
