// Microbenchmarks for the TCP NAD path: raw block round-trips, emulated
// registers over real sockets, Disk Paxos decision latency, and the
// batched-vs-unbatched quorum-phase comparison (writes the
// BENCH_nad_batch.json artifact after the google-benchmark run).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <map>

#include "common/sync.h"
#include "apps/disk_paxos.h"
#include "core/config.h"
#include "core/register_set.h"
#include "core/swsr_atomic.h"
#include "nad/client.h"
#include "nad/server.h"
#include "sim/sim_farm.h"

namespace {

using namespace nadreg;
using core::FarmConfig;

struct Cluster {
  std::vector<std::unique_ptr<nad::NadServer>> servers;
  std::unique_ptr<nad::NadClient> client;
  FarmConfig cfg{1};

  explicit Cluster(std::uint32_t t = 1, bool enable_batching = true) : cfg{t} {
    std::map<DiskId, nad::NadClient::Endpoint> endpoints;
    for (DiskId d = 0; d < cfg.num_disks(); ++d) {
      auto server = nad::NadServer::Start({});
      endpoints[d] = nad::NadClient::Endpoint{"127.0.0.1", (*server)->port()};
      servers.push_back(std::move(*server));
    }
    nad::NadClient::Options opts;
    opts.enable_batching = enable_batching;
    client = std::move(*nad::NadClient::Connect(endpoints, opts));
  }
};

// The ISSUE/EXPERIMENTS workload: a quorum phase fanning out to 8
// registers on each of the 2t+1 disks, write phase + read phase — the
// shape of every emulation round in the paper.
constexpr BlockId kRegsPerDisk = 8;

core::RegisterSet MakeQuorumSet(Cluster& cluster) {
  std::vector<RegisterId> regs;
  for (DiskId d = 0; d < cluster.cfg.num_disks(); ++d) {
    for (BlockId b = 0; b < kRegsPerDisk; ++b) regs.push_back(RegisterId{d, b});
  }
  return core::RegisterSet(*cluster.client, 1, regs);
}

void RunQuorumPhases(core::RegisterSet& set, std::size_t phases) {
  for (std::size_t i = 0; i < phases; ++i) {
    auto w = set.WriteAll("quorum-payload");
    set.Await(w, set.size());
    auto r = set.ReadAll();
    set.Await(r, set.size());
  }
}

void BM_TcpWriteRoundtrip(benchmark::State& state) {
  Cluster cluster;
  Mutex mu;
  CondVar cv;
  bool done = false;
  for (auto _ : state) {
    done = false;
    cluster.client->IssueWrite(1, RegisterId{0, 0}, "payload", [&] {
      MutexLock lock(mu);
      done = true;
      cv.NotifyOne();
    });
    MutexLock lock(mu);
    cv.Wait(mu, [&] { return done; });
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TcpWriteRoundtrip);

void BM_TcpReadRoundtrip(benchmark::State& state) {
  Cluster cluster;
  Mutex mu;
  CondVar cv;
  bool done = false;
  for (auto _ : state) {
    done = false;
    cluster.client->IssueRead(1, RegisterId{0, 0}, [&](Value) {
      MutexLock lock(mu);
      done = true;
      cv.NotifyOne();
    });
    MutexLock lock(mu);
    cv.Wait(mu, [&] { return done; });
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TcpReadRoundtrip);

void BM_SwsrWriteOverTcp(benchmark::State& state) {
  Cluster cluster;
  core::SwsrAtomicWriter writer(*cluster.client, cluster.cfg,
                                cluster.cfg.Spread(0), 1);
  for (auto _ : state) writer.Write("payload");
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SwsrWriteOverTcp);

void BM_SwsrReadOverTcp(benchmark::State& state) {
  Cluster cluster;
  core::SwsrAtomicWriter writer(*cluster.client, cluster.cfg,
                                cluster.cfg.Spread(0), 1);
  core::SwsrAtomicReader reader(*cluster.client, cluster.cfg,
                                cluster.cfg.Spread(0), 2);
  writer.Write("payload");
  for (auto _ : state) benchmark::DoNotOptimize(reader.Read());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SwsrReadOverTcp);

void BM_DiskPaxosDecisionSim(benchmark::State& state) {
  // Uncontended Disk Paxos decision on the simulated farm (zero delay).
  FarmConfig cfg{1};
  sim::SimFarm::Options o;
  o.max_delay_us = 0;
  sim::SimFarm farm(o);
  std::uint32_t object = 1;
  for (auto _ : state) {
    apps::DiskPaxos paxos(farm, cfg, object++, /*n=*/3, /*pid=*/0);
    benchmark::DoNotOptimize(paxos.TryPropose("v"));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DiskPaxosDecisionSim)->Iterations(512);

void BM_DiskPaxosDecisionTcp(benchmark::State& state) {
  Cluster cluster;
  std::uint32_t object = 1;
  for (auto _ : state) {
    apps::DiskPaxos paxos(*cluster.client, cluster.cfg, object++, /*n=*/3,
                          /*pid=*/0);
    benchmark::DoNotOptimize(paxos.TryPropose("v"));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DiskPaxosDecisionTcp)->Iterations(128);

void BM_QuorumPhaseBatched(benchmark::State& state) {
  Cluster cluster(1, /*enable_batching=*/true);
  core::RegisterSet set = MakeQuorumSet(cluster);
  for (auto _ : state) RunQuorumPhases(set, 1);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QuorumPhaseBatched)->Iterations(256);

void BM_QuorumPhaseUnbatched(benchmark::State& state) {
  Cluster cluster(1, /*enable_batching=*/false);
  core::RegisterSet set = MakeQuorumSet(cluster);
  for (auto _ : state) RunQuorumPhases(set, 1);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QuorumPhaseUnbatched)->Iterations(256);

// Chrono-timed batched-vs-unbatched comparison, written as an artifact so
// EXPERIMENTS.md can point at a reproducible number. Run after the
// google-benchmark suite from main().
double MeasurePhasesPerSec(bool enable_batching, std::size_t phases) {
  Cluster cluster(1, enable_batching);
  core::RegisterSet set = MakeQuorumSet(cluster);
  RunQuorumPhases(set, 8);  // warm-up: TCP slow start, allocator, caches
  const auto t0 = std::chrono::steady_clock::now();
  RunQuorumPhases(set, phases);
  const auto t1 = std::chrono::steady_clock::now();
  const double secs = std::chrono::duration<double>(t1 - t0).count();
  return static_cast<double>(phases) / secs;
}

void WriteBatchArtifact() {
  constexpr std::size_t kPhases = 300;
  const double unbatched = MeasurePhasesPerSec(false, kPhases);
  const double batched = MeasurePhasesPerSec(true, kPhases);
  const double speedup = batched / unbatched;
  std::FILE* f = std::fopen("BENCH_nad_batch.json", "w");
  if (f != nullptr) {
    std::fprintf(f,
                 "{\n"
                 "  \"workload\": \"quorum write+read phase, %u regs/disk x "
                 "%u disks, awaited fully\",\n"
                 "  \"phases\": %zu,\n"
                 "  \"unbatched_phases_per_sec\": %.1f,\n"
                 "  \"batched_phases_per_sec\": %.1f,\n"
                 "  \"speedup\": %.2f\n"
                 "}\n",
                 static_cast<unsigned>(kRegsPerDisk), 3u, kPhases, unbatched,
                 batched, speedup);
    std::fclose(f);
  }
  std::printf(
      "\nnad batch comparison (8 regs/disk x 3 disks, full quorum phases)\n"
      "  unbatched: %8.1f phases/sec (one frame per register)\n"
      "  batched:   %8.1f phases/sec (one frame per disk)\n"
      "  speedup:   %.2fx %s\n",
      unbatched, batched, speedup,
      speedup >= 2.0 ? "(meets the >=2x target)"
                     : "(below the 2x target on this host)");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  WriteBatchArtifact();
  return 0;
}
