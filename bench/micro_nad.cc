// Microbenchmarks for the TCP NAD path: raw block round-trips, emulated
// registers over real sockets, and Disk Paxos decision latency.
#include <benchmark/benchmark.h>

#include <condition_variable>
#include <map>
#include <mutex>

#include "apps/disk_paxos.h"
#include "core/config.h"
#include "core/swsr_atomic.h"
#include "nad/client.h"
#include "nad/server.h"
#include "sim/sim_farm.h"

namespace {

using namespace nadreg;
using core::FarmConfig;

struct Cluster {
  std::vector<std::unique_ptr<nad::NadServer>> servers;
  std::unique_ptr<nad::NadClient> client;
  FarmConfig cfg{1};

  explicit Cluster(std::uint32_t t = 1) : cfg{t} {
    std::map<DiskId, nad::NadClient::Endpoint> endpoints;
    for (DiskId d = 0; d < cfg.num_disks(); ++d) {
      auto server = nad::NadServer::Start({});
      endpoints[d] = nad::NadClient::Endpoint{"127.0.0.1", (*server)->port()};
      servers.push_back(std::move(*server));
    }
    client = std::move(*nad::NadClient::Connect(endpoints));
  }
};

void BM_TcpWriteRoundtrip(benchmark::State& state) {
  Cluster cluster;
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  for (auto _ : state) {
    done = false;
    cluster.client->IssueWrite(1, RegisterId{0, 0}, "payload", [&] {
      std::lock_guard lock(mu);
      done = true;
      cv.notify_one();
    });
    std::unique_lock lock(mu);
    cv.wait(lock, [&] { return done; });
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TcpWriteRoundtrip);

void BM_TcpReadRoundtrip(benchmark::State& state) {
  Cluster cluster;
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  for (auto _ : state) {
    done = false;
    cluster.client->IssueRead(1, RegisterId{0, 0}, [&](Value) {
      std::lock_guard lock(mu);
      done = true;
      cv.notify_one();
    });
    std::unique_lock lock(mu);
    cv.wait(lock, [&] { return done; });
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TcpReadRoundtrip);

void BM_SwsrWriteOverTcp(benchmark::State& state) {
  Cluster cluster;
  core::SwsrAtomicWriter writer(*cluster.client, cluster.cfg,
                                cluster.cfg.Spread(0), 1);
  for (auto _ : state) writer.Write("payload");
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SwsrWriteOverTcp);

void BM_SwsrReadOverTcp(benchmark::State& state) {
  Cluster cluster;
  core::SwsrAtomicWriter writer(*cluster.client, cluster.cfg,
                                cluster.cfg.Spread(0), 1);
  core::SwsrAtomicReader reader(*cluster.client, cluster.cfg,
                                cluster.cfg.Spread(0), 2);
  writer.Write("payload");
  for (auto _ : state) benchmark::DoNotOptimize(reader.Read());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SwsrReadOverTcp);

void BM_DiskPaxosDecisionSim(benchmark::State& state) {
  // Uncontended Disk Paxos decision on the simulated farm (zero delay).
  FarmConfig cfg{1};
  sim::SimFarm::Options o;
  o.max_delay_us = 0;
  sim::SimFarm farm(o);
  std::uint32_t object = 1;
  for (auto _ : state) {
    apps::DiskPaxos paxos(farm, cfg, object++, /*n=*/3, /*pid=*/0);
    benchmark::DoNotOptimize(paxos.TryPropose("v"));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DiskPaxosDecisionSim)->Iterations(512);

void BM_DiskPaxosDecisionTcp(benchmark::State& state) {
  Cluster cluster;
  std::uint32_t object = 1;
  for (auto _ : state) {
    apps::DiskPaxos paxos(*cluster.client, cluster.cfg, object++, /*n=*/3,
                          /*pid=*/0);
    benchmark::DoNotOptimize(paxos.TryPropose("v"));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DiskPaxosDecisionTcp)->Iterations(128);

}  // namespace

BENCHMARK_MAIN();
