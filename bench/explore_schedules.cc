// Ablation: bounded model checking of the emulations — the explorer
// enumerates every delivery order of small scenarios and validates each
// outcome, complementing the randomized campaigns (sampling) and the
// hand-built proof schedules (adversary/).
//
//   * the Section 3.2 SWSR emulation is exhaustively atomic over the full
//     schedule space of a concurrent write/read scenario;
//   * the Fig. 2 algorithm misused as an atomic MWSR register is broken,
//     and the explorer finds the violating schedule on its own — an
//     automatic rediscovery of (the core of) Theorem 2.
#include <cstdio>

#include "checker/consistency.h"
#include "checker/history.h"
#include "core/config.h"
#include "core/mwsr_seqcst.h"
#include "core/swsr_atomic.h"
#include "sim/explorer.h"
#include "sim/scenario.h"

namespace {

using namespace nadreg;
using checker::CheckAtomic;
using checker::HistoryRecorder;
using core::FarmConfig;
using sim::DetFarm;
using sim::ExplorationRun;
using sim::ScheduleExplorer;
using sim::ThreadedScenario;

ScheduleExplorer::RunFactory SwsrScenario(int writes, int reads) {
  return [writes, reads](DetFarm& farm) -> std::unique_ptr<ExplorationRun> {
    auto scenario = std::make_unique<ThreadedScenario>();
    auto rec = std::make_shared<HistoryRecorder>();
    FarmConfig cfg{1};
    auto regs = cfg.Spread(0);
    scenario->Spawn([&farm, rec, cfg, regs, writes] {
      core::SwsrAtomicWriter writer(farm, cfg, regs, 1);
      for (int i = 1; i <= writes; ++i) {
        auto h = rec->BeginWrite(1, "v" + std::to_string(i));
        writer.Write("v" + std::to_string(i));
        rec->EndWrite(h);
      }
    });
    scenario->Spawn([&farm, rec, cfg, regs, reads] {
      core::SwsrAtomicReader reader(farm, cfg, regs, 2);
      for (int i = 0; i < reads; ++i) {
        auto h = rec->BeginRead(2);
        rec->EndRead(h, reader.Read());
      }
    });
    scenario->SetValidator([rec]() -> std::optional<std::string> {
      auto result = CheckAtomic(rec->CheckableHistory());
      if (result.ok) return std::nullopt;
      return result.explanation;
    });
    return scenario;
  };
}

ScheduleExplorer::RunFactory MwsrAsAtomicScenario() {
  return [](DetFarm& farm) -> std::unique_ptr<ExplorationRun> {
    auto scenario = std::make_unique<ThreadedScenario>();
    auto rec = std::make_shared<HistoryRecorder>();
    FarmConfig cfg{1};
    auto regs = cfg.Spread(0);
    scenario->Spawn([&farm, rec, cfg, regs] {
      core::MwsrWriter wa(farm, cfg, regs, 1);
      core::MwsrWriter wb(farm, cfg, regs, 2);
      auto h1 = rec->BeginWrite(1, "va");
      wa.Write("va");
      rec->EndWrite(h1);
      auto h2 = rec->BeginWrite(2, "vb");
      wb.Write("vb");
      rec->EndWrite(h2);
    });
    scenario->Spawn([&farm, rec, cfg, regs] {
      core::MwsrReader reader(farm, cfg, regs, 99);
      for (int i = 0; i < 2; ++i) {
        auto h = rec->BeginRead(99);
        rec->EndRead(h, reader.Read());
      }
    });
    scenario->SetValidator([rec]() -> std::optional<std::string> {
      auto result = CheckAtomic(rec->CheckableHistory());
      if (result.ok) return std::nullopt;
      return result.explanation;
    });
    return scenario;
  };
}

}  // namespace

int main() {
  std::printf("==========================================================================\n");
  std::printf("ABLATION — bounded model checking of the register emulations\n");
  std::printf("==========================================================================\n\n");

  ScheduleExplorer explorer;

  std::printf("A) Section 3.2 SWSR emulation, 1 WRITE || 1 READ: exhaustive sweep\n");
  {
    ScheduleExplorer::Options opts;
    opts.max_schedules = 0;
    auto out = explorer.Explore(SwsrScenario(1, 1), opts);
    std::printf("   schedules: %zu (exhaustive), nodes: %zu, violations: %zu\n\n",
                out.schedules, out.nodes, out.violations);
    if (out.violations > 0) {
      std::printf("%s\n", out.first_violation.c_str());
      return 1;
    }
  }

  std::printf("B) Fig. 2 algorithm misused as ATOMIC MWSR: unguided violation search\n");
  {
    ScheduleExplorer::Options opts;
    opts.max_schedules = 5000;
    opts.stop_at_first_violation = true;
    auto out = explorer.Explore(MwsrAsAtomicScenario(), opts);
    std::printf("   schedules examined: %zu, violations: %zu\n", out.schedules,
                out.violations);
    if (out.violations == 0) {
      std::printf("   FAILED to find the expected violation\n");
      return 1;
    }
    std::printf("   first violating schedule (found automatically):\n%s\n",
                out.first_violation.c_str());
  }

  std::printf("ABLATION: PASSED — the positive result survives exhaustive\n");
  std::printf("exploration; the impossible cell falls to an automatically\n");
  std::printf("discovered schedule.\n\n");
  return 0;
}
