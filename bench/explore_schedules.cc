// Fault-aware bounded model checking of the register emulations and the
// consensus layers — the explorer enumerates delivery orders AND fault
// placements (drops, register crashes) within a budget, validating every
// completed schedule. This complements the randomized campaigns
// (sampling) and the hand-built proof schedules (adversary/):
//
//   * certification sweep: SWSR / SWMR / MWSR(seq-cst) / MWMR / one-shot,
//     ranked-register (Active Disk) Paxos and classic Disk Paxos are run
//     bounded-exhaustively under crash budgets 0 and 1 — zero violations
//     required;
//   * partial-order reduction ablation: sleep sets must prune >= 30% of
//     the MWMR tree without changing the verdict;
//   * counterexample pipeline: the Fig. 2 algorithm misused as an atomic
//     MWSR register is broken; the explorer finds a violating schedule on
//     its own, serializes it, minimizes it, and re-replays the trace file
//     deterministically — the same path `--replay <file>` drives;
//   * over-budget demo: two faulty disks on a t=1 farm starve quorums —
//     detected as the documented degradation, never as a violation.
//
// Flags: --quick (default) / --deep set exploration caps; --json <path>
// writes machine-readable stats (BENCH_explore.json in CI); --trace-dir
// <dir> is where counterexample traces land; --por=off disables the
// reduction; --replay <file> re-executes one serialized trace and exits.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <system_error>
#include <vector>

#include "apps/disk_paxos.h"
#include "apps/ranked_register.h"
#include "checker/consistency.h"
#include "checker/history.h"
#include "common/sync.h"
#include "core/config.h"
#include "core/mwmr_atomic.h"
#include "core/mwsr_seqcst.h"
#include "core/oneshot.h"
#include "core/swmr_atomic.h"
#include "core/swsr_atomic.h"
#include "sim/explorer.h"
#include "sim/scenario.h"
#include "sim/schedule_trace.h"

namespace {

using namespace nadreg;
using checker::CheckAtomic;
using checker::CheckSequentiallyConsistent;
using checker::HistoryRecorder;
using core::FarmConfig;
using sim::DetFarm;
using sim::ExplorationRun;
using sim::ScheduleExplorer;
using sim::ScheduleTrace;
using sim::ThreadedScenario;

// All scenarios use the OpOptions (failure-reporting) API so they behave
// under fault budgets: an op that fails because the farm was abandoned
// stays incomplete in the history, exactly like a crashed process.

ScheduleExplorer::RunFactory SwsrScenario(int writes, int reads) {
  return [writes, reads](DetFarm& farm) -> std::unique_ptr<ExplorationRun> {
    auto scenario = std::make_unique<ThreadedScenario>(farm);
    auto rec = std::make_shared<HistoryRecorder>();
    FarmConfig cfg{1};
    auto regs = cfg.Spread(0);
    scenario->Spawn([&farm, rec, cfg, regs, writes] {
      core::SwsrAtomicWriter writer(farm, cfg, regs, 1);
      for (int i = 1; i <= writes; ++i) {
        auto h = rec->BeginWrite(1, "v" + std::to_string(i));
        if (!writer.Write("v" + std::to_string(i), OpOptions{}).ok()) return;
        rec->EndWrite(h);
      }
    });
    scenario->Spawn([&farm, rec, cfg, regs, reads] {
      core::SwsrAtomicReader reader(farm, cfg, regs, 2);
      for (int i = 0; i < reads; ++i) {
        auto h = rec->BeginRead(2);
        auto v = reader.Read(OpOptions{});
        if (!v.ok()) return;
        rec->EndRead(h, *v);
      }
    });
    scenario->SetValidator([rec]() -> std::optional<std::string> {
      auto result = CheckAtomic(rec->CheckableHistory());
      if (result.ok) return std::nullopt;
      return result.explanation;
    });
    return scenario;
  };
}

ScheduleExplorer::RunFactory SwmrScenario() {
  return [](DetFarm& farm) -> std::unique_ptr<ExplorationRun> {
    auto scenario = std::make_unique<ThreadedScenario>(farm);
    auto rec = std::make_shared<HistoryRecorder>();
    FarmConfig cfg{1};
    auto regs = cfg.Spread(0);
    scenario->Spawn([&farm, rec, cfg, regs] {
      core::SwmrAtomicWriter writer(farm, cfg, regs, 1);
      auto h = rec->BeginWrite(1, "v1");
      if (!writer.Write("v1", OpOptions{}).ok()) return;
      rec->EndWrite(h);
    });
    for (ProcessId pid : {2u, 3u}) {
      scenario->Spawn([&farm, rec, cfg, regs, pid] {
        core::SwmrAtomicReader reader(farm, cfg, regs, pid);
        auto h = rec->BeginRead(pid);
        auto v = reader.Read(OpOptions{});
        if (!v.ok()) return;
        rec->EndRead(h, *v);
      });
    }
    scenario->SetValidator([rec]() -> std::optional<std::string> {
      auto result = CheckAtomic(rec->CheckableHistory());
      if (result.ok) return std::nullopt;
      return result.explanation;
    });
    return scenario;
  };
}

// The Fig. 2 register checked against its OWN spec (sequential
// consistency): the certified-good use.
ScheduleExplorer::RunFactory MwsrSeqCstScenario() {
  return [](DetFarm& farm) -> std::unique_ptr<ExplorationRun> {
    auto scenario = std::make_unique<ThreadedScenario>(farm);
    auto rec = std::make_shared<HistoryRecorder>();
    FarmConfig cfg{1};
    auto regs = cfg.Spread(0);
    for (ProcessId pid : {1u, 2u}) {
      scenario->Spawn([&farm, rec, cfg, regs, pid] {
        core::MwsrWriter writer(farm, cfg, regs, pid);
        const std::string v = "w" + std::to_string(pid);
        auto h = rec->BeginWrite(pid, v);
        if (!writer.Write(v, OpOptions{}).ok()) return;
        rec->EndWrite(h);
      });
    }
    scenario->Spawn([&farm, rec, cfg, regs] {
      core::MwsrReader reader(farm, cfg, regs, 99);
      for (int i = 0; i < 2; ++i) {
        auto h = rec->BeginRead(99);
        auto v = reader.Read(OpOptions{});
        if (!v.ok()) return;
        rec->EndRead(h, *v);
      }
    });
    scenario->SetValidator([rec]() -> std::optional<std::string> {
      auto result = CheckSequentiallyConsistent(rec->CheckableHistory());
      if (result.ok) return std::nullopt;
      return result.explanation;
    });
    return scenario;
  };
}

// The Fig. 2 register misused as ATOMIC — the intentionally broken
// scenario driving the counterexample pipeline.
ScheduleExplorer::RunFactory MwsrAsAtomicScenario() {
  return [](DetFarm& farm) -> std::unique_ptr<ExplorationRun> {
    auto scenario = std::make_unique<ThreadedScenario>(farm);
    auto rec = std::make_shared<HistoryRecorder>();
    FarmConfig cfg{1};
    auto regs = cfg.Spread(0);
    scenario->Spawn([&farm, rec, cfg, regs] {
      core::MwsrWriter wa(farm, cfg, regs, 1);
      core::MwsrWriter wb(farm, cfg, regs, 2);
      auto h1 = rec->BeginWrite(1, "va");
      if (!wa.Write("va", OpOptions{}).ok()) return;
      rec->EndWrite(h1);
      auto h2 = rec->BeginWrite(2, "vb");
      if (!wb.Write("vb", OpOptions{}).ok()) return;
      rec->EndWrite(h2);
    });
    scenario->Spawn([&farm, rec, cfg, regs] {
      core::MwsrReader reader(farm, cfg, regs, 99);
      for (int i = 0; i < 2; ++i) {
        auto h = rec->BeginRead(99);
        auto v = reader.Read(OpOptions{});
        if (!v.ok()) return;
        rec->EndRead(h, *v);
      }
    });
    scenario->SetValidator([rec]() -> std::optional<std::string> {
      auto result = CheckAtomic(rec->CheckableHistory());
      if (result.ok) return std::nullopt;
      return result.explanation;
    });
    return scenario;
  };
}

ScheduleExplorer::RunFactory MwmrScenario() {
  return [](DetFarm& farm) -> std::unique_ptr<ExplorationRun> {
    auto scenario = std::make_unique<ThreadedScenario>(farm);
    auto rec = std::make_shared<HistoryRecorder>();
    FarmConfig cfg{1};
    // Bounded name universe: the deployment trie (48 levels) would make
    // every announce ~50 quorum ops deep and ~150 decisions wide — no
    // bounded sweep ever completes a schedule. The scenario uses 3 names
    // at most, so a 4-bit trie checks the same protocol at model-checking
    // scale (see core/address.h).
    core::NameLayout layout{/*name_bits=*/4, /*index_bits=*/2};
    for (ProcessId pid : {1u, 2u}) {
      scenario->Spawn([&farm, rec, cfg, layout, pid] {
        core::MwmrAtomic reg(farm, cfg, /*object=*/0, pid, layout);
        const std::string v = "w" + std::to_string(pid);
        auto h = rec->BeginWrite(pid, v);
        if (!reg.Write(v, OpOptions{}).ok()) return;
        rec->EndWrite(h);
      });
    }
    scenario->Spawn([&farm, rec, cfg, layout] {
      core::MwmrAtomic reg(farm, cfg, /*object=*/0, 3, layout);
      auto h = rec->BeginRead(3);
      auto v = reg.Read(OpOptions{});
      if (!v.ok()) return;
      rec->EndRead(h, v->value_or(""));
    });
    scenario->SetValidator([rec]() -> std::optional<std::string> {
      auto result = CheckAtomic(rec->CheckableHistory());
      if (result.ok) return std::nullopt;
      return result.explanation;
    });
    return scenario;
  };
}

ScheduleExplorer::RunFactory OneShotScenario() {
  return [](DetFarm& farm) -> std::unique_ptr<ExplorationRun> {
    auto scenario = std::make_unique<ThreadedScenario>(farm);
    auto rec = std::make_shared<HistoryRecorder>();
    FarmConfig cfg{1};
    auto regs = cfg.Spread(0);
    scenario->Spawn([&farm, rec, cfg, regs] {
      core::OneShotRegister writer(farm, cfg, regs, 1);
      auto h = rec->BeginWrite(1, "v");
      if (!writer.Write("v", OpOptions{}).ok()) return;
      rec->EndWrite(h);
    });
    for (ProcessId pid : {2u, 3u}) {
      scenario->Spawn([&farm, rec, cfg, regs, pid] {
        core::OneShotRegister reader(farm, cfg, regs, pid);
        auto h = rec->BeginRead(pid);
        auto v = reader.Read(OpOptions{});
        if (!v.ok()) return;
        rec->EndRead(h, v->value_or(""));
      });
    }
    scenario->SetValidator([rec]() -> std::optional<std::string> {
      auto result = CheckAtomic(rec->CheckableHistory());
      if (result.ok) return std::nullopt;
      return result.explanation;
    });
    return scenario;
  };
}

// Consensus agreement+validity state shared by the paxos scenarios.
struct ConsensusOutcome {
  Mutex mu;
  std::vector<std::string> decided GUARDED_BY(mu);

  void Record(const std::string& v) {
    MutexLock lock(mu);
    decided.push_back(v);
  }
  std::optional<std::string> Validate() {
    MutexLock lock(mu);
    for (const std::string& v : decided) {
      if (v != "a" && v != "b") {
        return "consensus validity violated: decided '" + v + "'";
      }
      if (v != decided.front()) {
        return "consensus agreement violated: '" + decided.front() +
               "' vs '" + v + "'";
      }
    }
    return std::nullopt;
  }
};

// One ballot per proposer over the ranked register (Active Disk Paxos).
// Committed values must agree; aborts (contention) are acceptable.
ScheduleExplorer::RunFactory ActivePaxosScenario() {
  return [](DetFarm& farm) -> std::unique_ptr<ExplorationRun> {
    auto scenario = std::make_unique<ThreadedScenario>(farm);
    auto out = std::make_shared<ConsensusOutcome>();
    FarmConfig cfg{1};
    for (ProcessId pid : {1u, 2u}) {
      scenario->Spawn([&farm, out, cfg, pid] {
        apps::ActiveDiskPaxos paxos(farm, cfg, /*object=*/0, pid);
        const std::string value = pid == 1 ? "a" : "b";
        if (auto chosen = paxos.TryPropose(value, (1u << 20) | pid)) {
          out->Record(*chosen);
        }
      });
    }
    scenario->SetValidator([out] { return out->Validate(); });
    return scenario;
  };
}

// One ballot per proposer of classic Disk Paxos (per-process blocks).
ScheduleExplorer::RunFactory DiskPaxosScenario() {
  return [](DetFarm& farm) -> std::unique_ptr<ExplorationRun> {
    auto scenario = std::make_unique<ThreadedScenario>(farm);
    auto out = std::make_shared<ConsensusOutcome>();
    FarmConfig cfg{1};
    for (std::uint32_t pid : {0u, 1u}) {
      scenario->Spawn([&farm, out, cfg, pid] {
        apps::DiskPaxos paxos(farm, cfg, /*object=*/0, /*n=*/2, pid);
        const std::string value = pid == 0 ? "a" : "b";
        if (auto chosen = paxos.TryPropose(value)) out->Record(*chosen);
      });
    }
    scenario->SetValidator([out] { return out->Validate(); });
    return scenario;
  };
}

// ---------------------------------------------------------------------------

struct ScenarioEntry {
  const char* name;
  const char* what;
  ScheduleExplorer::RunFactory factory;
  // Node budgets (quick / deep). The deep-prefix scenarios (MWMR's
  // snapshot layer, the paxos phases) cost ~1-10 ms per node — a replayed
  // prefix of 50+ decisions, each a scheduler round-trip — so they get
  // smaller trees than the ~20 us/node register scenarios.
  std::size_t quick_nodes = 50000;
  std::size_t deep_nodes = 500000;
  // Per-scenario schedule-depth cap (0 = the sweep default). MWMR runs
  // ~250 decisions end to end even with the bounded name layout, so the
  // default cap would truncate every path before its first leaf.
  std::size_t max_depth = 0;
};

std::vector<ScenarioEntry> Registry() {
  return {
      {"swsr", "SWSR atomic, 1 WRITE || 1 READ", SwsrScenario(1, 1)},
      {"swsr-2w1r", "SWSR atomic, 2 WRITEs || 1 READ", SwsrScenario(2, 1)},
      {"swmr", "SWMR atomic, 1 WRITE || 2 READers", SwmrScenario()},
      {"mwsr-seqcst", "Fig. 2 MWSR vs its seq-cst spec", MwsrSeqCstScenario()},
      {"mwmr", "Fig. 3 MWMR atomic, 2 WRITEs || 1 READ", MwmrScenario(),
       1500, 8000, 400},
      {"oneshot", "one-shot register, WRITE || 2 READers", OneShotScenario()},
      {"active-paxos", "Active Disk Paxos, 2 proposers", ActivePaxosScenario(),
       1500, 8000},
      {"disk-paxos", "classic Disk Paxos, 2 proposers", DiskPaxosScenario(),
       1500, 8000},
  };
}

const ScenarioEntry* FindScenario(const std::vector<ScenarioEntry>& reg,
                                  const std::string& name) {
  for (const auto& e : reg) {
    if (name == e.name) return &e;
  }
  if (name == "mwsr-as-atomic") {
    static ScenarioEntry broken{"mwsr-as-atomic",
                                "Fig. 2 MWSR misused as atomic",
                                MwsrAsAtomicScenario()};
    return &broken;
  }
  return nullptr;
}

struct RunStats {
  std::string name;
  std::uint32_t budget = 0;
  ScheduleExplorer::Outcome outcome;
  double wall_ms = 0;
};

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

void PrintCounterexamples(const ScheduleExplorer::Outcome& out) {
  for (std::size_t i = 0; i < out.counterexamples.size(); ++i) {
    const auto& ce = out.counterexamples[i];
    std::printf("   counterexample %zu/%zu: %s\n   schedule:\n%s",
                i + 1, out.counterexamples.size(), ce.description.c_str(),
                sim::FormatSchedule(ce.schedule).c_str());
  }
}

std::string TracePath(const std::string& dir, const std::string& stem) {
  return dir + "/" + stem + ".trace";
}

bool SaveCounterexample(const std::string& trace_dir, const std::string& name,
                        const std::string& stem,
                        const std::vector<sim::Decision>& schedule) {
  if (trace_dir.empty()) return false;
  std::error_code ec;
  std::filesystem::create_directories(trace_dir, ec);  // fresh CI checkout
  ScheduleTrace trace;
  trace.scenario = name;
  trace.decisions = schedule;
  const std::string path = TracePath(trace_dir, stem);
  auto st = sim::SaveTraceFile(trace, path);
  if (!st.ok()) {
    std::printf("   (could not save trace: %s)\n", st.message().c_str());
    return false;
  }
  std::printf("   trace saved: %s  (replay: explore_schedules --replay %s)\n",
              path.c_str(), path.c_str());
  return true;
}

void AppendRunJson(std::string& json, const RunStats& r, bool first) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "%s\n    {\"scenario\": \"%s\", \"crash_budget\": %u, "
      "\"schedules\": %zu, \"nodes\": %zu, \"pruned\": %zu, "
      "\"violations\": %zu, \"stuck\": %zu, \"over_budget\": %zu, "
      "\"truncated\": %s, \"wall_ms\": %.1f}",
      first ? "" : ",", r.name.c_str(), r.budget, r.outcome.schedules,
      r.outcome.nodes, r.outcome.pruned, r.outcome.violations,
      r.outcome.stuck, r.outcome.over_budget,
      r.outcome.truncated ? "true" : "false", r.wall_ms);
  json += buf;
}

int ReplayMain(const std::string& path) {
  auto trace = sim::LoadTraceFile(path);
  if (!trace.ok()) {
    std::printf("cannot load trace: %s\n", trace.status().message().c_str());
    return 2;
  }
  auto reg = Registry();
  const ScenarioEntry* entry = FindScenario(reg, trace->scenario);
  if (entry == nullptr) {
    std::printf("trace names unknown scenario '%s'\n",
                trace->scenario.c_str());
    return 2;
  }
  std::printf("replaying %zu decision(s) against scenario '%s'\n",
              trace->decisions.size(), entry->name);
  ScheduleExplorer explorer;
  ScheduleExplorer::Options opts;
  auto r = explorer.ReplaySchedule(entry->factory, trace->decisions, opts);
  if (r.diverged) {
    std::printf("DIVERGED after %zu decision(s): the trace does not match "
                "this scenario/build\n",
                r.applied);
    return 2;
  }
  if (r.violation) {
    std::printf("violation reproduced:\n%s\n", r.violation->c_str());
    return 0;
  }
  std::printf("clean run: no violation\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool deep = false;
  bool por = true;
  std::string json_path;
  std::string trace_dir;
  std::string replay_path;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--deep") {
      deep = true;
    } else if (a == "--quick") {
      deep = false;
    } else if (a == "--por=off") {
      por = false;
    } else if (a == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (a == "--trace-dir" && i + 1 < argc) {
      trace_dir = argv[++i];
    } else if (a == "--replay" && i + 1 < argc) {
      replay_path = argv[++i];
    } else {
      std::printf("usage: %s [--quick|--deep] [--por=off] [--json FILE] "
                  "[--trace-dir DIR] [--replay FILE]\n",
                  argv[0]);
      return 2;
    }
  }
  if (!replay_path.empty()) return ReplayMain(replay_path);

  std::printf("==========================================================================\n");
  std::printf("FAULT-AWARE MODEL CHECKING — bounded-exhaustive certification\n");
  std::printf("==========================================================================\n\n");

  ScheduleExplorer explorer;
  ScheduleExplorer::Options base;
  base.max_schedules = deep ? 20000 : 2000;
  base.max_nodes = deep ? 500000 : 50000;
  base.max_depth = 64;
  base.stop_at_first_violation = false;
  base.partial_order_reduction = por;
  int failures = 0;
  std::vector<RunStats> runs;

  std::printf("A) Certification sweep (caps: %zu schedules, %zu nodes, "
              "depth %zu)\n",
              base.max_schedules, base.max_nodes, base.max_depth);
  auto registry = Registry();
  for (const auto& entry : registry) {
    for (std::uint32_t budget : {0u, 1u}) {
      ScheduleExplorer::Options opts = base;
      opts.max_nodes = deep ? entry.deep_nodes : entry.quick_nodes;
      if (entry.max_depth != 0) opts.max_depth = entry.max_depth;
      opts.crash_budget = budget;
      opts.tolerated_crashed_disks = budget;
      const auto t0 = std::chrono::steady_clock::now();
      auto out = explorer.Explore(entry.factory, opts);
      RunStats r{entry.name, budget, out, MsSince(t0)};
      runs.push_back(r);
      std::printf(
          "   %-13s f=%u: %5zu schedules, %5zu nodes, %5zu pruned, "
          "%zu stuck, %zu over-budget%s — %s\n",
          entry.name, budget, out.schedules, out.nodes, out.pruned,
          out.stuck, out.over_budget, out.truncated ? " (truncated)" : "",
          out.violations == 0 ? "OK" : "VIOLATIONS");
      if (out.violations > 0) {
        ++failures;
        PrintCounterexamples(out);
        SaveCounterexample(trace_dir, entry.name,
                           std::string(entry.name) + "-f" +
                               std::to_string(budget),
                           out.counterexamples.front().schedule);
      }
    }
  }
  std::printf("\n");

  // POR ablation on the MWMR scenario (the acceptance target). Sleep sets
  // pay off where sibling subtrees are revisited, so the ablation explores
  // a bounded-depth slice of the tree exhaustively with POR off and on.
  // The slice sits in the announce phase, where every process is parked in
  // a fresh quorum wait — the independence-rich regime the reduction
  // targets. `pruned` counts sleep-filtered branches, and on a slice this
  // shallow nearly every filtered branch is one saved node, so the ratio
  // is a conservative lower bound on the node saving (the off run's node
  // count confirms it directly).
  std::printf("B) Partial-order reduction ablation (MWMR, depth-%d slice)\n",
              deep ? 3 : 2);
  double prune_ratio = 0;
  {
    ScheduleExplorer::Options opts = base;
    opts.max_depth = deep ? 3 : 2;
    opts.max_schedules = 0;
    opts.max_nodes = 60000;  // safety valve; the slice exhausts well below
    opts.partial_order_reduction = false;
    const auto t0 = std::chrono::steady_clock::now();
    auto off = explorer.Explore(MwmrScenario(), opts);
    const double off_ms = MsSince(t0);
    opts.partial_order_reduction = true;
    const auto t1 = std::chrono::steady_clock::now();
    auto on = explorer.Explore(MwmrScenario(), opts);
    const double on_ms = MsSince(t1);
    prune_ratio = on.nodes + on.pruned == 0
                      ? 0.0
                      : static_cast<double>(on.pruned) /
                            static_cast<double>(on.nodes + on.pruned);
    std::printf("   POR off: %zu nodes in %.0f ms;  POR on: %zu nodes + %zu "
                "pruned in %.0f ms  (prune ratio %.1f%%, node saving "
                "%.1f%%)\n",
                off.nodes, off_ms, on.nodes, on.pruned, on_ms,
                prune_ratio * 100.0,
                off.nodes == 0
                    ? 0.0
                    : 100.0 * (1.0 - static_cast<double>(on.nodes) /
                                         static_cast<double>(off.nodes)));
    if (off.violations != 0 || on.violations != 0) {
      std::printf("   FAILED: POR changed the verdict or MWMR violated\n");
      ++failures;
    }
    if (por && prune_ratio < 0.30) {
      std::printf("   FAILED: prune ratio %.1f%% < 30%%\n",
                  prune_ratio * 100.0);
      ++failures;
    }
  }
  std::printf("\n");

  // The counterexample pipeline on the intentionally broken scenario.
  std::printf("C) Counterexample pipeline (Fig. 2 misused as atomic)\n");
  std::size_t minimized_len = 0, original_len = 0;
  {
    ScheduleExplorer::Options opts = base;
    opts.max_schedules = 5000;
    opts.stop_at_first_violation = true;
    auto out = explorer.Explore(MwsrAsAtomicScenario(), opts);
    if (out.violations == 0 || out.counterexamples.empty()) {
      std::printf("   FAILED to find the expected Fig. 2 violation\n");
      ++failures;
    } else {
      const auto& ce = out.counterexamples.front();
      std::printf("   found after %zu schedules: %s\n", out.schedules,
                  ce.description.c_str());
      original_len = ce.schedule.size();
      auto minimized =
          explorer.MinimizeSchedule(MwsrAsAtomicScenario(), ce.schedule, opts);
      minimized_len = minimized.size();
      std::printf("   minimized %zu -> %zu decisions:\n%s", original_len,
                  minimized_len, sim::FormatSchedule(minimized).c_str());
      // Round-trip through the text format, replay twice: byte-identical.
      ScheduleTrace trace;
      trace.scenario = "mwsr-as-atomic";
      trace.decisions = minimized;
      auto parsed = sim::ParseTrace(sim::FormatTrace(trace));
      auto r1 = explorer.ReplaySchedule(MwsrAsAtomicScenario(),
                                        parsed->decisions, opts);
      auto r2 = explorer.ReplaySchedule(MwsrAsAtomicScenario(),
                                        parsed->decisions, opts);
      const bool deterministic = !r1.diverged && !r2.diverged &&
                                 r1.violation && r2.violation &&
                                 *r1.violation == *r2.violation;
      std::printf("   trace round-trip replayed twice: %s\n",
                  deterministic ? "identical violation (deterministic)"
                                : "MISMATCH");
      if (!deterministic) ++failures;
      SaveCounterexample(trace_dir, "mwsr-as-atomic", "mwsr-as-atomic-min",
                         minimized);
    }
  }
  std::printf("\n");

  std::printf("D) Over-budget detection (budget 2 faults on a t=1 farm)\n");
  std::size_t over_budget_seen = 0;
  {
    ScheduleExplorer::Options opts = base;
    opts.max_schedules = 0;
    opts.crash_budget = 2;
    opts.tolerated_crashed_disks = 1;
    auto out = explorer.Explore(SwsrScenario(1, 0), opts);
    over_budget_seen = out.over_budget;
    std::printf("   %zu schedules: %zu over-budget stuck runs, %zu "
                "violations — %s\n",
                out.schedules, out.over_budget, out.violations,
                out.violations == 0 && out.over_budget > 0 ? "OK" : "FAILED");
    if (out.violations != 0 || out.over_budget == 0) ++failures;
  }
  std::printf("\n");

  if (!json_path.empty()) {
    std::string json = "{\n  \"bench\": \"explore\",\n  \"mode\": \"";
    json += deep ? "deep" : "quick";
    json += "\",\n  \"runs\": [";
    for (std::size_t i = 0; i < runs.size(); ++i) {
      AppendRunJson(json, runs[i], i == 0);
    }
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "\n  ],\n  \"por_prune_ratio\": %.4f,\n"
                  "  \"minimized_counterexample\": {\"from\": %zu, "
                  "\"to\": %zu},\n  \"over_budget_detected\": %zu,\n"
                  "  \"failures\": %d\n}\n",
                  prune_ratio, original_len, minimized_len, over_budget_seen,
                  failures);
    json += buf;
    if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
      std::fwrite(json.data(), 1, json.size(), f);
      std::fclose(f);
      std::printf("stats written to %s\n", json_path.c_str());
    } else {
      std::printf("cannot write %s\n", json_path.c_str());
      ++failures;
    }
  }

  if (failures == 0) {
    std::printf("EXPLORE: PASSED — every emulation and both consensus layers "
                "certified\nunder every explored fault placement; POR sound "
                "and >= 30%% effective;\ncounterexample pipeline "
                "deterministic.\n");
  } else {
    std::printf("EXPLORE: FAILED (%d failure(s))\n", failures);
  }
  return failures == 0 ? 0 : 1;
}
