// Table 3 — Uniform WAIT-FREE implementability of SEQUENTIALLY CONSISTENT
// registers using finitely many fail-prone base registers.
//
//   paper:   SWSR = Yes, MWSR = Yes, SWMR = No, MWMR = No
//
// Yes cells: the Fig. 2 algorithm (MWSR) and its single-writer special
// case, verified sequentially consistent by the exact checker.
// No cells: Theorem 3 — the Section 5.1 infinite-execution liveness
// requirement is violated: a reader can be starved of a value another
// reader already returned, forever.
#include <cstdio>

#include "adversary/schedules.h"
#include "campaigns.h"
#include "table_common.h"

int main() {
  using namespace nadreg::bench;
  using namespace nadreg::adversary;

  PrintHeader("TABLE 3",
              "uniform wait-free implementability of sequentially "
              "consistent registers, finitely many base registers");

  std::vector<Cell> cells;

  CampaignOptions opts;
  opts.runs = 15;
  opts.ops_per_process = 6;

  // --- SWSR: Yes -------------------------------------------------------------
  std::printf("[SWSR] paper says Yes — Sec. 3.2 atomic implies sequentially consistent\n");
  auto swsr = VerifySwsrSeqCst(opts);
  PrintCampaign(swsr);
  cells.push_back(Cell{"Single-Writer", "Single-Reader", true,
                       swsr.AllPassed(),
                       "Sec. 3.2 emulation serializable over randomized "
                       "crash runs"});

  // --- MWSR: Yes (Fig. 2) ------------------------------------------------------
  std::printf("\n[MWSR] paper says Yes — the Figure 2 algorithm\n");
  auto mwsr = VerifyMwsrSeqCst(opts);
  PrintCampaign(mwsr);
  CampaignOptions opts_t2 = opts;
  opts_t2.t = 2;
  opts_t2.runs = 8;
  auto mwsr_t2 = VerifyMwsrSeqCst(opts_t2);
  PrintCampaign(mwsr_t2);
  cells.push_back(Cell{"Multi-Writer", "Single-Reader", true,
                       mwsr.AllPassed() && mwsr_t2.AllPassed(),
                       "Fig. 2 emulation serializable over " +
                           std::to_string(mwsr.runs + mwsr_t2.runs) +
                           " randomized multi-writer crash runs (t=1, t=2)"});

  // --- SWMR: No (Theorem 3) ------------------------------------------------------
  std::printf("\n[SWMR] paper says No — Theorem 3 (liveness of Section 5.1 fails)\n");
  auto t3 = RunTheorem3SeqCstLiveness(30);
  PrintAdversaryOutcome(t3);
  cells.push_back(Cell{"Single-Writer", "Multi-Reader", false,
                       !t3.liveness_violated,
                       "Theorem 3 schedule: reader B starved of v1 forever "
                       "while reader A returned it (finite prefixes remain "
                       "serializable — the violation is the liveness clause)"});

  // --- MWMR: No (a fortiori) --------------------------------------------------------
  std::printf("[MWMR] paper says No — a fortiori from SWMR\n\n");
  cells.push_back(Cell{"Multi-Writer", "Multi-Reader", false,
                       !t3.liveness_violated,
                       "a fortiori: a MWMR register restricted to one "
                       "writer is a SWMR register"});

  EmitMetricsArtifact("table3_seqcst");
  return PrintMatrixAndVerdict("TABLE 3", cells);
}
