// Table 2 — Uniform implementability of ATOMIC registers using finitely
// many fail-prone base registers when PROCESSES ARE RELIABLE (the
// implementation need not be wait-free).
//
//   paper:   SWSR = Yes, SWMR = Yes, MWSR = No, MWMR = No
//
// Yes cells: Section 3.2 (SWSR) and the two-phase Section 4.2 reader
// (SWMR), verified atomic over randomized crash schedules.
// No cells: the Theorem 2 covering/pending-write construction — its
// hidden-WRITE endgame erases a fully completed WRITE.
#include <cstdio>

#include "adversary/covering.h"
#include "adversary/schedules.h"
#include "campaigns.h"
#include "table_common.h"

int main() {
  using namespace nadreg::bench;
  using namespace nadreg::adversary;

  PrintHeader("TABLE 2",
              "uniform implementability of atomic registers, finitely many "
              "base registers, reliable processes");

  std::vector<Cell> cells;

  CampaignOptions opts;
  opts.runs = 15;
  opts.ops_per_process = 6;

  // --- SWSR: Yes -----------------------------------------------------------
  std::printf("[SWSR] paper says Yes — special case of Section 4.2 / Section 3.2\n");
  auto swsr = VerifySwsrAtomic(opts);
  PrintCampaign(swsr);
  cells.push_back(Cell{"Single-Writer", "Single-Reader", true,
                       swsr.AllPassed(),
                       "Sec. 3.2 emulation linearizable over randomized "
                       "crash runs"});

  // --- SWMR: Yes (Section 4.2) ----------------------------------------------
  std::printf("\n[SWMR] paper says Yes — Section 4.2 two-phase reader "
              "(choose-value, then wait)\n");
  auto swmr = VerifySwmrAtomic(opts);
  PrintCampaign(swmr);
  CampaignOptions opts_t2 = opts;
  opts_t2.t = 2;
  opts_t2.runs = 8;
  auto swmr_t2 = VerifySwmrAtomic(opts_t2);
  PrintCampaign(swmr_t2);
  cells.push_back(Cell{"Single-Writer", "Multi-Reader", true,
                       swmr.AllPassed() && swmr_t2.AllPassed(),
                       "Sec. 4.2 emulation linearizable over " +
                           std::to_string(swmr.runs + swmr_t2.runs) +
                           " randomized multi-reader crash runs (t=1, t=2)"});

  // --- MWSR: No (Theorem 2) ---------------------------------------------------
  std::printf("\n[MWSR] paper says No — Theorem 2 (covering + pending writes)\n");
  auto t2 = RunTheorem2HiddenWrite();
  PrintAdversaryOutcome(t2);

  // The same construction run GENERICALLY against two independent
  // candidates, including the classic uniform timestamp algorithm that is
  // correct over reliable base registers.
  std::printf("[MWSR] generic hidden-write attack against stock candidates:\n");
  auto fig2_attack = HiddenWriteAttack(Fig2Candidate(), nadreg::core::FarmConfig{1});
  std::printf("    Fig. 2 candidate:      %s\n",
              fig2_attack.kind == AttackResult::Kind::kViolationFound
                  ? "non-atomic history produced (checker-certified)"
                  : "UNEXPECTED");
  auto ts_attack = HiddenWriteAttack(TimestampCandidate(),
                                     nadreg::core::FarmConfig{1});
  std::printf("    timestamp candidate:   %s\n",
              ts_attack.kind == AttackResult::Kind::kViolationFound
                  ? "non-atomic history produced (checker-certified)"
                  : "UNEXPECTED");
  auto fragile_attack = HiddenWriteAttack(FragileCandidate(),
                                          nadreg::core::FarmConfig{1});
  std::printf("    all-acks candidate:    %s\n\n",
              fragile_attack.kind == AttackResult::Kind::kCandidateBlocked
                  ? "blocked on one slow disk (the dichotomy's other horn)"
                  : "UNEXPECTED");

  const bool mwsr_broken =
      !t2.atomic.ok &&
      fig2_attack.kind == AttackResult::Kind::kViolationFound &&
      ts_attack.kind == AttackResult::Kind::kViolationFound;
  cells.push_back(Cell{"Multi-Writer", "Single-Reader", false, !mwsr_broken,
                       "Theorem 2 hidden-WRITE schedule + generic attack "
                       "breaking two independent candidates (crash-free runs, "
                       "checker-certified non-atomic, still seq-consistent)"});

  // --- MWMR: No (a fortiori) ----------------------------------------------------
  std::printf("[MWMR] paper says No — a fortiori from MWSR\n\n");
  cells.push_back(Cell{"Multi-Writer", "Multi-Reader", false, t2.atomic.ok,
                       "a fortiori: a MWMR register restricted to one "
                       "reader is a MWSR register"});

  EmitMetricsArtifact("table2_atomic_reliable");
  return PrintMatrixAndVerdict("TABLE 2", cells);
}
