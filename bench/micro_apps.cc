// Microbenchmarks for the application layer: shared log, config store,
// mutex, and the ranked register / consensus baselines — all on zero-delay
// simulated farms (algorithmic overhead, not disk time).
#include <benchmark/benchmark.h>

#include "apps/config_store.h"
#include "apps/fast_mutex.h"
#include "apps/ranked_register.h"
#include "apps/shared_log.h"
#include "core/config.h"
#include "sim/active_farm.h"
#include "sim/sim_farm.h"

namespace {

using namespace nadreg;
using core::FarmConfig;

sim::SimFarm::Options ZeroDelay() {
  sim::SimFarm::Options o;
  o.seed = 1;
  o.max_delay_us = 0;
  return o;
}

void BM_SharedLogAppend(benchmark::State& state) {
  FarmConfig cfg{1};
  sim::SimFarm farm(ZeroDelay());
  apps::SharedLog log(farm, cfg, 200, 1);
  for (auto _ : state) log.Append("entry");
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SharedLogAppend)->Iterations(256);

void BM_SharedLogReadAtSize(benchmark::State& state) {
  FarmConfig cfg{1};
  sim::SimFarm farm(ZeroDelay());
  apps::SharedLog writer(farm, cfg, 200, 1);
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    writer.Append("entry-" + std::to_string(i));
  }
  apps::SharedLog reader(farm, cfg, 200, 2);
  for (auto _ : state) benchmark::DoNotOptimize(reader.Read());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SharedLogReadAtSize)->Arg(4)->Arg(16)->Arg(64)->Iterations(64);

void BM_ConfigStoreSet(benchmark::State& state) {
  FarmConfig cfg{1};
  sim::SimFarm farm(ZeroDelay());
  apps::ConfigStore store(farm, cfg, 300, 1);
  int i = 0;
  for (auto _ : state) store.Set("key", "value-" + std::to_string(i++));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ConfigStoreSet)->Iterations(256);

void BM_FastMutexUncontended(benchmark::State& state) {
  FarmConfig cfg{1};
  sim::SimFarm farm(ZeroDelay());
  apps::FastMutex mtx(farm, cfg, 100, /*n=*/4, /*pid=*/1);
  for (auto _ : state) {
    mtx.Lock();
    mtx.Unlock();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FastMutexUncontended)->Iterations(512);

void BM_RankedRegisterWrite(benchmark::State& state) {
  FarmConfig cfg{1};
  sim::ActiveDiskFarm::Options o;
  o.max_delay_us = 0;
  sim::ActiveDiskFarm farm(o);
  apps::RankedRegister reg(farm, cfg, 1, 1);
  std::uint64_t rank = 1;
  for (auto _ : state) benchmark::DoNotOptimize(reg.Write(rank++, "v"));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RankedRegisterWrite);

void BM_RankedRegisterRead(benchmark::State& state) {
  FarmConfig cfg{1};
  sim::ActiveDiskFarm::Options o;
  o.max_delay_us = 0;
  sim::ActiveDiskFarm farm(o);
  apps::RankedRegister reg(farm, cfg, 1, 1);
  reg.Write(1, "v");
  std::uint64_t rank = 2;
  for (auto _ : state) benchmark::DoNotOptimize(reg.Read(rank++));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RankedRegisterRead);

void BM_ActiveDiskPaxosDecision(benchmark::State& state) {
  FarmConfig cfg{1};
  sim::ActiveDiskFarm::Options o;
  o.max_delay_us = 0;
  sim::ActiveDiskFarm farm(o);
  std::uint32_t object = 1;
  for (auto _ : state) {
    apps::ActiveDiskPaxos paxos(farm, cfg, object++, /*pid=*/7);
    benchmark::DoNotOptimize(paxos.TryPropose("v", 1 << 20));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ActiveDiskPaxosDecision)->Iterations(512);

}  // namespace

BENCHMARK_MAIN();
