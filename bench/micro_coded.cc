// micro_coded — storage & wire-traffic gate for the erasure-coded MWMR
// emulation (core/coded/coded_mwmr.h).
//
// For each code geometry (n, k) and value size, runs a write/read loop
// through a CodedMwmr endpoint over a zero-delay SimFarm and measures:
//
//   bytes_at_rest        sum of the n coded-cell payloads after the loop
//                        (farm.Peek per disk) — steady state holds ONE
//                        committed fragment of ceil(size/k) bytes per disk
//                        plus bounded cell metadata, so the blowup over
//                        the raw value should track n/k, not n;
//   replicated_at_rest   the same value written verbatim to one register
//                        on each of the n disks — what any full-copy
//                        emulation stores, the n× baseline;
//   wire bytes           the endpoint's transport-independent accounting
//                        (delta payloads out, cell payloads in), split
//                        into write-phase and read-phase averages;
//   decode percentiles   the "core.coded.decode_us" histogram from the
//                        metrics registry, accumulated over every read.
//
// --check turns the storage claim into a CI gate: at n=8, k=5 the
// measured at-rest blowup must stay <= 1.1 x (n/k) for every value size
// >= 4096 bytes (below that the fixed ~52B/cell tag+geometry metadata
// dominates the fragment and the ratio is meaningless — the small sizes
// are still reported in the artifact, just not gated).
//
// Flags: --quick        CI shape (fewer ops per cell of the sweep)
//        --check        run --quick and exit 1 if a gated blowup exceeds
//                       1.1 x n/k at n=8, k=5
//        --ops N        writes (and reads) per sweep cell
//        --out FILE     output path (default BENCH_coded.json)
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "core/address.h"
#include "core/coded/coded_mwmr.h"
#include "obs/metrics.h"
#include "sim/sim_farm.h"

namespace {

using nadreg::DiskId;
using nadreg::RegisterId;
using nadreg::Rng;
using nadreg::core::CodedMwmr;
using nadreg::core::CodedOptions;
using nadreg::core::Component;
using nadreg::core::MakeBlock;
using nadreg::sim::SimFarm;

constexpr std::uint32_t kObject = 1;

struct CellResult {
  std::uint32_t n = 0, k = 0;
  std::size_t value_size = 0;
  std::uint64_t coded_at_rest = 0;       // bytes across all n disks
  std::uint64_t replicated_at_rest = 0;  // ditto, full-copy baseline
  double coded_blowup = 0;               // coded_at_rest / value_size
  double rate_bound = 0;                 // n/k — the coding-theoretic floor
  double write_wire_out = 0;             // bytes out per WRITE
  double read_wire_out = 0;              // bytes out per READ (write-back)
  double read_wire_in = 0;               // bytes in per READ (quorum cells)
  bool gated = false;
};

std::string RandomValue(Rng& rng, std::size_t size) {
  std::string v(size, '\0');
  for (char& c : v) c = static_cast<char>(rng.Below(256));
  return v;
}

/// Runs one sweep cell on a fresh farm. Returns false on setup failure.
bool RunCell(std::uint32_t n, std::uint32_t k, std::size_t value_size,
             std::size_t ops, std::uint64_t seed, CellResult* out) {
  SimFarm::Options farm_opts;
  farm_opts.seed = seed;
  farm_opts.min_delay_us = 0;
  farm_opts.max_delay_us = 0;  // storage accounting, not schedule stress
  SimFarm farm(farm_opts);
  auto reg = CodedMwmr::Make(farm, kObject, /*self=*/1, CodedOptions{n, k});
  if (!reg.ok()) {
    std::fprintf(stderr, "CodedMwmr::Make(%u, %u): %s\n", n, k,
                 reg.status().ToString().c_str());
    return false;
  }

  Rng rng(seed);
  for (std::size_t i = 0; i < ops; ++i) {
    reg->Write(RandomValue(rng, value_size));
  }
  const std::uint64_t out_after_writes = reg->WireBytesOut();
  const std::uint64_t in_after_writes = reg->WireBytesIn();
  for (std::size_t i = 0; i < ops; ++i) {
    auto v = reg->Read();
    if (!v.has_value() || v->size() != value_size) {
      std::fprintf(stderr, "read mismatch at n=%u k=%u size=%zu\n", n, k,
                   value_size);
      return false;
    }
  }

  out->n = n;
  out->k = k;
  out->value_size = value_size;
  out->rate_bound = static_cast<double>(n) / static_cast<double>(k);
  out->write_wire_out = static_cast<double>(out_after_writes) /
                        static_cast<double>(ops);
  out->read_wire_out =
      static_cast<double>(reg->WireBytesOut() - out_after_writes) /
      static_cast<double>(ops);
  out->read_wire_in =
      static_cast<double>(reg->WireBytesIn() - in_after_writes) /
      static_cast<double>(ops);

  // Steady state after the last write's commit round-tripped: each disk's
  // cell holds the committed fragment only.
  for (DiskId d = 0; d < n; ++d) {
    RegisterId r{d, MakeBlock(kObject, Component::kCodedCell, 0)};
    out->coded_at_rest += farm.Peek(r).size();
  }

  // Full-copy baseline on the same farm shape: one verbatim copy per
  // disk, which is exactly what the replicated emulations keep per value.
  const std::string value = RandomValue(rng, value_size);
  for (DiskId d = 0; d < n; ++d) {
    RegisterId r{d, MakeBlock(kObject + 1, Component::kCodedCell, 0)};
    std::atomic<bool> done{false};
    farm.IssueWrite(1, r, value, [&done] { done.store(true); });
    while (!done.load()) {
    }
    out->replicated_at_rest += farm.Peek(r).size();
  }

  out->coded_blowup = value_size == 0
                          ? 0
                          : static_cast<double>(out->coded_at_rest) /
                                static_cast<double>(value_size);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t ops = 16;
  bool check = false;
  const char* out_path = "BENCH_coded.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      ops = 4;
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
      ops = 4;
    } else if (std::strcmp(argv[i], "--ops") == 0 && i + 1 < argc) {
      ops = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--check] [--ops N] [--out FILE]\n",
                   argv[0]);
      return 2;
    }
  }

  const std::vector<std::pair<std::uint32_t, std::uint32_t>> geometries = {
      {4, 2}, {6, 4}, {8, 5}};
  const std::vector<std::size_t> sizes = {64, 1024, 4096, 16384, 65536};
  // The gate only bites where the fragment dwarfs the per-cell metadata.
  constexpr std::size_t kGateMinSize = 4096;
  constexpr double kGateSlack = 1.1;

  std::printf("micro_coded: %zu writes + %zu reads per cell, %zu geometries "
              "x %zu sizes\n",
              ops, ops, geometries.size(), sizes.size());

  std::vector<CellResult> results;
  bool gate_failed = false;
  std::uint64_t seed = 0xC0DED;
  for (auto [n, k] : geometries) {
    for (std::size_t size : sizes) {
      CellResult r;
      if (!RunCell(n, k, size, ops, seed++, &r)) return 1;
      r.gated = check && n == 8 && k == 5 && size >= kGateMinSize;
      const double limit = kGateSlack * r.rate_bound;
      std::printf(
          "  n=%u k=%u size=%6zu  at-rest %7llu B (%.2fx, bound %.2fx)  "
          "replicated %7llu B (%.0fx)  write-wire %8.0f B%s\n",
          n, k, size, static_cast<unsigned long long>(r.coded_at_rest),
          r.coded_blowup, r.rate_bound,
          static_cast<unsigned long long>(r.replicated_at_rest),
          static_cast<double>(n), r.write_wire_out,
          r.gated ? (r.coded_blowup <= limit ? "  [gate OK]" : "  [gate FAIL]")
                  : "");
      if (r.gated && r.coded_blowup > limit) gate_failed = true;
      results.push_back(r);
    }
  }

  const auto& decode =
      nadreg::obs::Registry::Global().GetHistogram("core.coded.decode_us");
  std::printf("  decode: %llu samples, p50 %lluus p90 %lluus p99 %lluus "
              "max %lluus\n",
              static_cast<unsigned long long>(decode.Count()),
              static_cast<unsigned long long>(decode.PercentileUs(50)),
              static_cast<unsigned long long>(decode.PercentileUs(90)),
              static_cast<unsigned long long>(decode.PercentileUs(99)),
              static_cast<unsigned long long>(decode.MaxUs()));

  std::FILE* f = std::fopen(out_path, "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n  \"bench\": \"micro_coded\",\n");
    std::fprintf(f, "  \"ops_per_cell\": %zu,\n", ops);
    std::fprintf(f, "  \"gate\": {\"n\": 8, \"k\": 5, \"min_value_size\": %zu, "
                    "\"max_blowup_over_rate\": %.2f},\n",
                 kGateMinSize, kGateSlack);
    std::fprintf(f, "  \"results\": [\n");
    for (std::size_t i = 0; i < results.size(); ++i) {
      const CellResult& r = results[i];
      std::fprintf(
          f,
          "    {\"n\": %u, \"k\": %u, \"value_size\": %zu, "
          "\"coded_at_rest_bytes\": %llu, \"replicated_at_rest_bytes\": %llu, "
          "\"coded_blowup\": %.3f, \"rate_bound\": %.3f, "
          "\"write_wire_out_bytes\": %.0f, \"read_wire_out_bytes\": %.0f, "
          "\"read_wire_in_bytes\": %.0f}%s\n",
          r.n, r.k, r.value_size,
          static_cast<unsigned long long>(r.coded_at_rest),
          static_cast<unsigned long long>(r.replicated_at_rest),
          r.coded_blowup, r.rate_bound, r.write_wire_out, r.read_wire_out,
          r.read_wire_in, i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f,
                 "  \"decode_us\": {\"count\": %llu, \"p50\": %llu, "
                 "\"p90\": %llu, \"p99\": %llu, \"max\": %llu}\n",
                 static_cast<unsigned long long>(decode.Count()),
                 static_cast<unsigned long long>(decode.PercentileUs(50)),
                 static_cast<unsigned long long>(decode.PercentileUs(90)),
                 static_cast<unsigned long long>(decode.PercentileUs(99)),
                 static_cast<unsigned long long>(decode.MaxUs()));
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("  artifact: %s\n", out_path);
  }

  if (gate_failed) {
    std::fprintf(stderr,
                 "check FAILED: coded at-rest blowup exceeded %.2f x n/k\n",
                 kGateSlack);
    return 1;
  }
  if (check) std::printf("  check: all gated blowups within %.2f x n/k\n",
                         kGateSlack);
  return 0;
}
