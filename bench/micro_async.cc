// micro_async — concurrency stress for the event-loop client core.
//
// Drives N emulated client sessions (default 10,000; --quick: 1,000)
// through one shared NadClient against a 3-disk TCP cluster on loopback.
// Each session is closed-loop: it alternates write and read on its own
// register, and each completion handler — running on the owning event
// loop — submits the session's next operation, so the outstanding-op
// count stays at exactly one per session and the client multiplexes
// 10k concurrent sessions over a handful of epoll loops.
//
// The whole workload is run once per event-loop count in {1, 2, 4} (an
// explicit Options::num_event_loops sweep — how much loop parallelism
// buys under this session count on this machine; the client clamps a
// request beyond its connection count, so 4 reports as 3 over 3 disks),
// and the results are folded into one BENCH_async.json: a "sweep" array
// with one entry per configuration, plus top-level fields from the
// 1-loop run (the stable reference shape for cross-commit comparison).
//
// Every operation's latency is recorded per session (no cross-session
// contention on the hot path); at the end all samples are merged and
// sorted for exact p50/p99/p999.
//
// Flags: --quick            1,000 sessions x 5 ops (the CI smoke shape)
//        --clients N        session count
//        --ops N            operations per session
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/sync.h"
#include "nad/client.h"
#include "nad/server.h"

namespace {

using namespace std::chrono_literals;
using nadreg::BlockId;
using nadreg::CondVar;
using nadreg::DiskId;
using nadreg::Mutex;
using nadreg::MutexLock;
using nadreg::RegisterId;
using nadreg::Value;
using Clock = std::chrono::steady_clock;

constexpr std::uint32_t kDisks = 3;
constexpr std::size_t kPayloadBytes = 64;
constexpr std::size_t kLoopSweep[] = {1, 2, 4};

struct Session {
  RegisterId reg{};
  std::size_t ops_done = 0;
  Clock::time_point issued{};
  std::vector<std::uint64_t> lat_us;  // preallocated, one slot per op
};

struct Bench {
  std::unique_ptr<nadreg::nad::NadClient> client;
  std::vector<Session> sessions;
  std::size_t ops_per_session = 0;
  std::string payload = std::string(kPayloadBytes, 'a');

  Mutex mu;
  CondVar cv;
  std::size_t sessions_done GUARDED_BY(mu) = 0;

  void IssueNext(Session* s);
  void OnComplete(Session* s);
};

void Bench::IssueNext(Session* s) {
  s->issued = Clock::now();
  // Even ops write, odd ops read back — a closed-loop ping-pong on the
  // session's own register.
  if (s->ops_done % 2 == 0) {
    client->IssueWrite(static_cast<nadreg::ProcessId>(s->reg.block), s->reg,
                       payload, [this, s] { OnComplete(s); });
  } else {
    client->IssueRead(static_cast<nadreg::ProcessId>(s->reg.block), s->reg,
                      [this, s](Value) { OnComplete(s); });
  }
}

void Bench::OnComplete(Session* s) {
  const auto now = Clock::now();
  s->lat_us[s->ops_done] =
      std::chrono::duration_cast<std::chrono::microseconds>(now - s->issued)
          .count();
  ++s->ops_done;
  if (s->ops_done < ops_per_session) {
    IssueNext(s);  // runs on the owning loop: admission is nonblocking
    return;
  }
  MutexLock lock(mu);
  ++sessions_done;
  if (sessions_done == sessions.size()) cv.NotifyAll();
}

std::uint64_t Percentile(const std::vector<std::uint64_t>& sorted, double p) {
  if (sorted.empty()) return 0;
  const std::size_t idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

struct RunResult {
  std::size_t event_loops = 0;
  double elapsed_sec = 0;
  double throughput = 0;
  std::uint64_t p50 = 0, p99 = 0, p999 = 0, max = 0;
};

/// Runs the full closed-loop workload once with `num_loops` event loops
/// against an already-running cluster. Fresh client, fresh sessions.
bool RunOne(const std::map<DiskId, nadreg::nad::NadClient::Endpoint>& endpoints,
            std::size_t clients, std::size_t ops, std::size_t num_loops,
            RunResult* out) {
  Bench bench;
  nadreg::nad::NadClient::Options options;
  options.num_event_loops = num_loops;
  auto client = nadreg::nad::NadClient::Connect(endpoints, options);
  if (!client.ok()) {
    std::fprintf(stderr, "connect: %s\n", client.status().ToString().c_str());
    return false;
  }
  bench.client = std::move(*client);
  bench.ops_per_session = ops;
  bench.sessions.resize(clients);
  for (std::size_t k = 0; k < clients; ++k) {
    Session& s = bench.sessions[k];
    s.reg = RegisterId{static_cast<DiskId>(k % kDisks),
                       static_cast<BlockId>(k)};
    s.lat_us.assign(ops, 0);
  }

  std::printf("micro_async: %zu sessions x %zu ops over %u disks, %zu loops\n",
              clients, ops, kDisks, bench.client->NumEventLoops());
  const auto t0 = Clock::now();
  for (Session& s : bench.sessions) bench.IssueNext(&s);
  {
    MutexLock lock(bench.mu);
    const bool all_done = bench.cv.WaitFor(bench.mu, 600000ms, [&] {
      bench.mu.AssertHeld();
      return bench.sessions_done == bench.sessions.size();
    });
    if (!all_done) {
      std::fprintf(stderr, "timed out: %zu/%zu sessions finished\n",
                   bench.sessions_done, bench.sessions.size());
      return false;
    }
  }
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - t0).count();

  std::vector<std::uint64_t> all;
  all.reserve(clients * ops);
  for (const Session& s : bench.sessions) {
    all.insert(all.end(), s.lat_us.begin(), s.lat_us.end());
  }
  std::sort(all.begin(), all.end());
  out->event_loops = bench.client->NumEventLoops();
  out->elapsed_sec = elapsed;
  out->throughput = static_cast<double>(clients * ops) / elapsed;
  out->p50 = Percentile(all, 0.50);
  out->p99 = Percentile(all, 0.99);
  out->p999 = Percentile(all, 0.999);
  out->max = all.back();
  std::printf(
      "  %zu loops: %.0f ops/sec  p50 %lluus  p99 %lluus  p999 %lluus  "
      "max %lluus\n",
      out->event_loops, out->throughput,
      static_cast<unsigned long long>(out->p50),
      static_cast<unsigned long long>(out->p99),
      static_cast<unsigned long long>(out->p999),
      static_cast<unsigned long long>(out->max));
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t clients = 10000;
  std::size_t ops = 20;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      clients = 1000;
      ops = 5;
    } else if (std::strcmp(argv[i], "--clients") == 0 && i + 1 < argc) {
      clients = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--ops") == 0 && i + 1 < argc) {
      ops = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--clients N] [--ops N]\n", argv[0]);
      return 2;
    }
  }

  std::vector<std::unique_ptr<nadreg::nad::NadServer>> servers;
  std::map<DiskId, nadreg::nad::NadClient::Endpoint> endpoints;
  for (DiskId d = 0; d < kDisks; ++d) {
    auto server = nadreg::nad::NadServer::Start({});
    if (!server.ok()) {
      std::fprintf(stderr, "server start: %s\n",
                   server.status().ToString().c_str());
      return 1;
    }
    endpoints[d] =
        nadreg::nad::NadClient::Endpoint{"127.0.0.1", (*server)->port()};
    servers.push_back(std::move(*server));
  }

  std::vector<RunResult> sweep;
  for (std::size_t loops : kLoopSweep) {
    RunResult r;
    if (!RunOne(endpoints, clients, ops, loops, &r)) return 1;
    sweep.push_back(r);
  }
  const RunResult& ref = sweep.front();  // 1-loop reference shape

  std::FILE* f = std::fopen("BENCH_async.json", "w");
  if (f != nullptr) {
    std::fprintf(f,
                 "{\n"
                 "  \"workload\": \"closed-loop write/read ping-pong, one "
                 "outstanding op per session\",\n"
                 "  \"clients\": %zu,\n"
                 "  \"ops_per_client\": %zu,\n"
                 "  \"disks\": %u,\n"
                 "  \"event_loops\": %zu,\n"
                 "  \"payload_bytes\": %zu,\n"
                 "  \"elapsed_sec\": %.3f,\n"
                 "  \"throughput_ops_per_sec\": %.1f,\n"
                 "  \"p50_us\": %llu,\n"
                 "  \"p99_us\": %llu,\n"
                 "  \"p999_us\": %llu,\n"
                 "  \"max_us\": %llu,\n"
                 "  \"sweep\": [",
                 clients, ops, kDisks, ref.event_loops, kPayloadBytes,
                 ref.elapsed_sec, ref.throughput,
                 static_cast<unsigned long long>(ref.p50),
                 static_cast<unsigned long long>(ref.p99),
                 static_cast<unsigned long long>(ref.p999),
                 static_cast<unsigned long long>(ref.max));
    for (std::size_t i = 0; i < sweep.size(); ++i) {
      const RunResult& r = sweep[i];
      std::fprintf(f,
                   "%s\n    {\"event_loops\": %zu, \"elapsed_sec\": %.3f, "
                   "\"throughput_ops_per_sec\": %.1f, \"p50_us\": %llu, "
                   "\"p99_us\": %llu, \"p999_us\": %llu, \"max_us\": %llu}",
                   i == 0 ? "" : ",", r.event_loops, r.elapsed_sec,
                   r.throughput, static_cast<unsigned long long>(r.p50),
                   static_cast<unsigned long long>(r.p99),
                   static_cast<unsigned long long>(r.p999),
                   static_cast<unsigned long long>(r.max));
    }
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
  }
  std::printf("  artifact: BENCH_async.json\n");
  return 0;
}
