// Ablation: pipelined vs sequential name-directory collects.
//
// A collect must probe the sticky-bit trie; with a real disk round-trip
// per probe, the sequential walk pays one RTT per node while the
// pipelined walk keeps a whole level outstanding at once (O(depth) RTTs).
// Both read the same bits with the same parent-before-child discipline,
// so the Section 6 correctness argument is unchanged — the sweeps verify
// the snapshot properties in both modes; this harness quantifies the
// latency gap that motivates the default.
#include <chrono>
#include <cstdio>

#include "core/config.h"
#include "core/name_snapshot.h"
#include "sim/sim_farm.h"

namespace {

using namespace nadreg;
using core::FarmConfig;
using core::NameSnapshot;
using sim::SimFarm;

double MeasureSnapshotMs(bool pipelined, int prior_names,
                         std::uint64_t delay_us) {
  FarmConfig cfg{1};
  SimFarm::Options o;
  o.seed = 5;
  o.min_delay_us = delay_us / 2;
  o.max_delay_us = delay_us;
  SimFarm farm(o);
  // Pre-announce the directory (fast mode regardless: not measured).
  {
    NameSnapshot seeder(farm, cfg, 1, 999, /*pipelined_collect=*/true);
    for (int i = 0; i < prior_names; ++i) {
      seeder.Announce(Name{static_cast<ProcessId>(500 + i), 0});
    }
  }
  // Measure one fresh process's full snapshot (announce + collects).
  NameSnapshot snap(farm, cfg, 1, 1, pipelined);
  const auto start = std::chrono::steady_clock::now();
  auto s = snap.Snapshot(Name{1, 0});
  const auto end = std::chrono::steady_clock::now();
  if (s.size() != static_cast<std::size_t>(prior_names) + 1) return -1;
  return std::chrono::duration<double, std::milli>(end - start).count();
}

}  // namespace

int main() {
  std::printf("==========================================================================\n");
  std::printf("ABLATION — name-directory collect: pipelined vs sequential probes\n");
  std::printf("(one fresh snapshot; simulated disk delay ~[d/2, d] us per request)\n");
  std::printf("==========================================================================\n\n");
  std::printf("  %-12s %-10s %-18s %-18s %-8s\n", "disk delay", "names",
              "sequential (ms)", "pipelined (ms)", "speedup");

  bool ok = true;
  for (std::uint64_t delay : {200ull, 1000ull}) {
    for (int names : {4, 16}) {
      const double seq = MeasureSnapshotMs(false, names, delay);
      const double pipe = MeasureSnapshotMs(true, names, delay);
      if (seq < 0 || pipe < 0) {
        std::printf("  measurement failed\n");
        return 1;
      }
      std::printf("  %-12llu %-10d %-18.1f %-18.1f %.1fx\n",
                  static_cast<unsigned long long>(delay), names, seq, pipe,
                  seq / pipe);
      if (names >= 16 && seq <= pipe) ok = false;
    }
  }

  std::printf("\nShape check: pipelining wins at every non-trivial directory "
              "size: %s\n", ok ? "yes" : "NO");
  std::printf("\nABLATION: %s\n\n",
              ok ? "REPRODUCED (latency O(depth) vs O(marked nodes))"
                 : "MISMATCH");
  return ok ? 0 : 1;
}
