// Baseline comparison (related work, [22] Chockler–Malkhi PODC 2002):
// classic Disk Paxos on plain NADs vs Active Disk Paxos on a ranked
// register over RMW-capable active disks.
//
// The reproducible shape: a classic Disk Paxos ballot reads every other
// process's block on every disk, so its per-decision base-op count grows
// LINEARLY with the (a priori fixed) process count n — and n must be
// known. Active Disk Paxos spends a CONSTANT 2 RMWs per disk per ballot
// and is uniform: no n anywhere, sparse process ids just work. This is
// the related-work answer to the paper's negative results: strengthen the
// disks (RMW) instead of multiplying the registers.
#include <cstdio>
#include <vector>

#include "apps/disk_paxos.h"
#include "apps/ranked_register.h"
#include "core/config.h"
#include "sim/active_farm.h"
#include "sim/sim_farm.h"

namespace {

using namespace nadreg;
using core::FarmConfig;

std::uint64_t ClassicOpsPerDecision(std::uint32_t n) {
  FarmConfig cfg{1};
  sim::SimFarm::Options o;
  o.max_delay_us = 0;
  sim::SimFarm farm(o);
  apps::DiskPaxos paxos(farm, cfg, 1, n, 0);
  auto chosen = paxos.TryPropose("v");
  if (!chosen) return 0;
  return farm.stats().TotalIssued();
}

std::uint64_t ActiveOpsPerDecision() {
  FarmConfig cfg{1};
  sim::ActiveDiskFarm::Options o;
  o.max_delay_us = 0;
  sim::ActiveDiskFarm farm(o);
  apps::ActiveDiskPaxos paxos(farm, cfg, 1, /*pid=*/12345);
  auto chosen = paxos.TryPropose("v", /*rank=*/1 << 20);
  if (!chosen) return 0;
  return farm.RmwIssued() + farm.stats().TotalIssued();
}

}  // namespace

int main() {
  std::printf("==========================================================================\n");
  std::printf("BASELINE — Disk Paxos (plain NADs) vs Active Disk Paxos (ranked register)\n");
  std::printf("==========================================================================\n\n");
  std::printf("Base-register/RMW operations per uncontended decision, 3 disks (t=1):\n\n");
  std::printf("  %-22s %-26s %-22s\n", "process count n", "Disk Paxos (needs n)",
              "Active Disk Paxos");

  const std::uint64_t active = ActiveOpsPerDecision();
  std::vector<std::uint64_t> classic;
  for (std::uint32_t n : {2u, 4u, 8u, 16u, 32u}) {
    classic.push_back(ClassicOpsPerDecision(n));
    std::printf("  %-22u %-26llu %-22llu\n", n,
                static_cast<unsigned long long>(classic.back()),
                static_cast<unsigned long long>(active));
  }

  std::printf("\n  Disk Paxos also requires n to be KNOWN (blocks are indexed by\n");
  std::printf("  process); Active Disk Paxos is uniform — the pid above is a\n");
  std::printf("  sparse 5-digit id and no count appears anywhere.\n");

  const bool classic_grows =
      classic.back() > 4 * classic.front() && classic.front() > 0;
  const bool active_flat = active > 0 && active <= classic.front();
  std::printf("\nShape checks: classic grows linearly in n: %s; active is constant\n",
              classic_grows ? "yes" : "NO");
  std::printf("and below classic at every n: %s\n", active_flat ? "yes" : "NO");
  std::printf("\nBASELINE: %s\n\n",
              classic_grows && active_flat
                  ? "REPRODUCED (who wins: active disks, at every n — at the "
                    "price of RMW hardware)"
                  : "MISMATCH");
  return classic_grows && active_flat ? 0 : 1;
}
