// Shared verification campaigns for the table harnesses: each runs an
// emulation under randomized schedules with crash injection, records the
// concurrent history, and has the exact checker certify the claimed
// consistency level. A campaign is the executable form of a "Yes" cell.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "checker/consistency.h"

namespace nadreg::bench {

struct CampaignResult {
  std::string name;
  int runs = 0;
  int passed = 0;
  std::uint64_t ops_checked = 0;
  std::vector<std::uint64_t> seeds_used;
  std::string first_failure;  // checker explanation, if any

  bool AllPassed() const { return runs > 0 && passed == runs; }
};

struct CampaignOptions {
  int runs = 20;                // randomized runs (seeds 1..runs scaled)
  std::uint64_t seed_base = 1;  // seed of run k is seed_base + k
  int ops_per_process = 6;
  bool inject_crashes = true;   // crash up to t disks mid-run
  std::uint32_t t = 1;          // farm resilience (2t+1 disks)
};

/// Section 3.2 SWSR wait-free atomic: 1 writer, 1 reader, register crashes.
CampaignResult VerifySwsrAtomic(const CampaignOptions& opts);

/// Section 4.2 SWMR atomic, reliable processes: 1 writer, many readers.
CampaignResult VerifySwmrAtomic(const CampaignOptions& opts);

/// Fig. 2 MWSR sequentially consistent: many writers, 1 reader.
CampaignResult VerifyMwsrSeqCst(const CampaignOptions& opts);

/// Fig. 2's SWSR specialisation checked for sequential consistency (the
/// Table 3 SWSR cell): single writer, single reader.
CampaignResult VerifySwsrSeqCst(const CampaignOptions& opts);

/// Fig. 3 MWMR wait-free atomic over infinitely many base registers,
/// full-disk crash injection. `writers`/`readers` select the usage
/// pattern, so the same campaign covers all four Table 4 cells.
CampaignResult VerifyMwmrAtomic(const CampaignOptions& opts, int writers,
                                int readers);

/// Prints a campaign result as one harness line.
void PrintCampaign(const CampaignResult& r);

}  // namespace nadreg::bench
