// micro_hotpath — memory & syscall diet gate for the batched RPC path.
//
// Drives P concurrent closed-loop pipelines through one NadClient against
// a kDisks-server loopback cluster. Each pipeline issues one Submit batch
// of B writes (spread round-robin over the disks, so the admission pass
// coalesces them into one kBatchReq frame per disk), waits for all B
// completions, and immediately issues the next batch — the quorum-phase
// shape of core::RegisterSet, stripped to the transport.
//
// Beyond ops/sec and exact p50/p99 batch latency, the bench reports the
// two diet metrics the arena/zero-copy work is gated on:
//
//   allocs_per_op        process-wide heap allocations per completed write,
//                        measured by the counting operator new hook below
//                        (covers client AND in-process server: both ends of
//                        the hot path must stay allocation-free);
//   bytes_copied_per_op  user-space payload bytes memcpy'd per write
//                        (common/hotpath_stats.h; excludes the kernel's
//                        socket copy).
//
// A warmup pass runs first so steady-state numbers exclude connection
// setup, slab growth, and first-touch rehashes; counters are snapshotted
// around the measured pass only.
//
// Flags: --quick             CI shape (8 pipelines x 32 ops x 40 iters)
//        --pipelines N       concurrent batches in flight
//        --batch N           writes per batch
//        --iters N           measured batches per pipeline
//        --payload N         write value size in bytes (default 1024)
//        --baseline FILE     embed FILE's JSON object as "baseline" in the
//                            output (the pre-change numbers)
//        --check FILE        run --quick and exit 1 if allocs_per_op
//                            regressed >10% vs FILE's current section
//        --out FILE          output path (default BENCH_hotpath.json)
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "common/hotpath_stats.h"
#include "common/sync.h"
#include "nad/client.h"
#include "nad/server.h"

// ---------------------------------------------------------------------------
// Counting allocator hook: every operator new in the process bumps one
// relaxed atomic. Replacing these globals is the standard-sanctioned way
// to observe allocation counts without an external tool.
// ---------------------------------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};

void* CountedAlloc(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace {

using namespace std::chrono_literals;
using nadreg::BlockId;
using nadreg::CondVar;
using nadreg::DiskId;
using nadreg::Mutex;
using nadreg::MutexLock;
using nadreg::RegisterId;
using Clock = std::chrono::steady_clock;

constexpr std::uint32_t kDisks = 4;

struct Pipeline {
  std::vector<RegisterId> regs;        // the batch targets, fixed per pipeline
  std::atomic<std::size_t> remaining{0};  // completions outstanding this batch
  std::size_t batches_done = 0;
  Clock::time_point issued{};
  std::vector<std::uint64_t> lat_us;  // preallocated, one slot per batch
};

struct Bench {
  std::unique_ptr<nadreg::nad::NadClient> client;
  std::vector<std::unique_ptr<Pipeline>> pipelines;
  std::size_t iters = 0;
  std::string payload;

  Mutex mu;
  CondVar cv;
  std::size_t pipelines_done GUARDED_BY(mu) = 0;

  void IssueBatch(Pipeline* pl);
  void OnWriteDone(Pipeline* pl);

  /// Runs every pipeline for `n` batches; blocks until all finish.
  bool RunRound(std::size_t n) {
    iters = n;
    {
      MutexLock lock(mu);
      pipelines_done = 0;
    }
    for (auto& pl : pipelines) {
      pl->batches_done = 0;
      pl->lat_us.assign(n, 0);
    }
    for (auto& pl : pipelines) IssueBatch(pl.get());
    MutexLock lock(mu);
    return cv.WaitFor(mu, 600000ms, [&] {
      mu.AssertHeld();
      return pipelines_done == pipelines.size();
    });
  }
};

void Bench::IssueBatch(Pipeline* pl) {
  pl->issued = Clock::now();
  pl->remaining.store(pl->regs.size(), std::memory_order_relaxed);
  std::vector<nadreg::nad::NadClient::Op> ops;
  ops.reserve(pl->regs.size());
  for (const RegisterId& reg : pl->regs) {
    ops.push_back(nadreg::nad::NadClient::Op::Write(
        reg, payload, [this, pl] { OnWriteDone(pl); }));
  }
  client->Submit(0, std::move(ops));
}

void Bench::OnWriteDone(Pipeline* pl) {
  // Completions for one batch arrive on up to kDisks loop threads; the
  // one that retires the last op records the batch and re-issues.
  if (pl->remaining.fetch_sub(1, std::memory_order_acq_rel) != 1) return;
  pl->lat_us[pl->batches_done] =
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            pl->issued)
          .count();
  ++pl->batches_done;
  if (pl->batches_done < iters) {
    IssueBatch(pl);
    return;
  }
  MutexLock lock(mu);
  ++pipelines_done;
  if (pipelines_done == pipelines.size()) cv.NotifyAll();
}

std::uint64_t Percentile(const std::vector<std::uint64_t>& sorted, double p) {
  if (sorted.empty()) return 0;
  const std::size_t idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

std::string ReadFile(const char* path) {
  std::FILE* f = std::fopen(path, "r");
  if (f == nullptr) return {};
  std::string out;
  char buf[4096];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, got);
  std::fclose(f);
  return out;
}

/// Pulls the LAST "key": <number> out of a JSON file — the current
/// section is printed after the embedded baseline, so the last match is
/// the post-change number the CI gate compares against.
double LastNumberFor(const std::string& json, const char* key) {
  const std::string needle = std::string("\"") + key + "\":";
  std::size_t pos = std::string::npos;
  for (std::size_t at = json.find(needle); at != std::string::npos;
       at = json.find(needle, at + 1)) {
    pos = at;
  }
  if (pos == std::string::npos) return -1.0;
  return std::atof(json.c_str() + pos + needle.size());
}

struct Results {
  double ops_per_sec = 0;
  std::uint64_t p50_us = 0, p99_us = 0;
  double allocs_per_op = 0;
  double bytes_copied_per_op = 0;
  double elapsed_sec = 0;
  std::size_t total_ops = 0;
};

}  // namespace

int main(int argc, char** argv) {
  std::size_t pipelines = 32;
  std::size_t batch = 32;
  std::size_t iters = 300;
  std::size_t payload_bytes = 1024;
  const char* baseline_path = nullptr;
  const char* check_path = nullptr;
  const char* out_path = "BENCH_hotpath.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      // Keep the full run's batch size: per-batch fixed allocations
      // amortize over the batch, so a smaller batch would inflate
      // allocs/op and the --check gate would compare unlike shapes.
      pipelines = 8;
      batch = 32;
      iters = 40;
    } else if (std::strcmp(argv[i], "--pipelines") == 0 && i + 1 < argc) {
      pipelines = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--batch") == 0 && i + 1 < argc) {
      batch = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--iters") == 0 && i + 1 < argc) {
      iters = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--payload") == 0 && i + 1 < argc) {
      payload_bytes = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (std::strcmp(argv[i], "--check") == 0 && i + 1 < argc) {
      check_path = argv[++i];
      pipelines = 8;
      batch = 32;
      iters = 40;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--pipelines N] [--batch N] "
                   "[--iters N] [--payload N] [--baseline FILE] "
                   "[--check FILE] [--out FILE]\n",
                   argv[0]);
      return 2;
    }
  }

  std::vector<std::unique_ptr<nadreg::nad::NadServer>> servers;
  std::map<DiskId, nadreg::nad::NadClient::Endpoint> endpoints;
  for (DiskId d = 0; d < kDisks; ++d) {
    auto server = nadreg::nad::NadServer::Start({});
    if (!server.ok()) {
      std::fprintf(stderr, "server start: %s\n",
                   server.status().ToString().c_str());
      return 1;
    }
    endpoints[d] =
        nadreg::nad::NadClient::Endpoint{"127.0.0.1", (*server)->port()};
    servers.push_back(std::move(*server));
  }

  Bench bench;
  auto client = nadreg::nad::NadClient::Connect(endpoints);
  if (!client.ok()) {
    std::fprintf(stderr, "connect: %s\n", client.status().ToString().c_str());
    return 1;
  }
  bench.client = std::move(*client);
  bench.payload.assign(payload_bytes, 'h');
  bench.pipelines.reserve(pipelines);
  for (std::size_t p = 0; p < pipelines; ++p) {
    auto pl = std::make_unique<Pipeline>();
    pl->regs.reserve(batch);
    for (std::size_t b = 0; b < batch; ++b) {
      pl->regs.push_back(RegisterId{static_cast<DiskId>(b % kDisks),
                                    static_cast<BlockId>(p * batch + b)});
    }
    bench.pipelines.push_back(std::move(pl));
  }

  std::printf(
      "micro_hotpath: %zu pipelines x %zu-write batches x %zu iters, "
      "%zuB payload, %u disks, %zu loops\n",
      pipelines, batch, iters, payload_bytes, kDisks,
      bench.client->NumEventLoops());

  // Warmup: populate every register, grow slabs/tables to steady state.
  if (!bench.RunRound(std::max<std::size_t>(4, iters / 10))) {
    std::fprintf(stderr, "warmup timed out\n");
    return 1;
  }

  const std::uint64_t allocs0 = g_alloc_count.load(std::memory_order_relaxed);
  const std::uint64_t copied0 = nadreg::hotpath::BytesCopied();
  const auto t0 = Clock::now();
  if (!bench.RunRound(iters)) {
    std::fprintf(stderr, "measured round timed out\n");
    return 1;
  }
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - t0).count();
  const std::uint64_t allocs1 = g_alloc_count.load(std::memory_order_relaxed);
  const std::uint64_t copied1 = nadreg::hotpath::BytesCopied();

  std::vector<std::uint64_t> all;
  all.reserve(pipelines * iters);
  for (const auto& pl : bench.pipelines) {
    all.insert(all.end(), pl->lat_us.begin(), pl->lat_us.end());
  }
  std::sort(all.begin(), all.end());

  Results r;
  r.total_ops = pipelines * batch * iters;
  r.elapsed_sec = elapsed;
  r.ops_per_sec = static_cast<double>(r.total_ops) / elapsed;
  r.p50_us = Percentile(all, 0.50);
  r.p99_us = Percentile(all, 0.99);
  r.allocs_per_op = static_cast<double>(allocs1 - allocs0) /
                    static_cast<double>(r.total_ops);
  r.bytes_copied_per_op = static_cast<double>(copied1 - copied0) /
                          static_cast<double>(r.total_ops);

  std::printf(
      "  %zu ops in %.2fs = %.0f ops/sec\n"
      "  batch latency p50 %lluus  p99 %lluus\n"
      "  allocs/op %.2f  bytes-copied/op %.1f\n",
      r.total_ops, r.elapsed_sec, r.ops_per_sec,
      static_cast<unsigned long long>(r.p50_us),
      static_cast<unsigned long long>(r.p99_us), r.allocs_per_op,
      r.bytes_copied_per_op);

  if (check_path != nullptr) {
    // CI regression gate: the committed BENCH_hotpath.json's current
    // section is the allocation budget; >10% more allocs/op fails.
    const std::string committed = ReadFile(check_path);
    const double budget = LastNumberFor(committed, "allocs_per_op");
    if (budget < 0) {
      std::fprintf(stderr, "check: no allocs_per_op in %s\n", check_path);
      return 2;
    }
    const double limit = budget * 1.10 + 0.05;  // absolute slack for ~0
    std::printf("  check: allocs/op %.3f vs budget %.3f (limit %.3f)\n",
                r.allocs_per_op, budget, limit);
    if (r.allocs_per_op > limit) {
      std::fprintf(stderr,
                   "check FAILED: allocs/op regressed >10%% (%.3f > %.3f)\n",
                   r.allocs_per_op, limit);
      return 1;
    }
    return 0;
  }

  std::string baseline;
  if (baseline_path != nullptr) {
    baseline = ReadFile(baseline_path);
    while (!baseline.empty() &&
           (baseline.back() == '\n' || baseline.back() == ' ')) {
      baseline.pop_back();
    }
  }

  std::FILE* f = std::fopen(out_path, "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n");
    std::fprintf(f,
                 "  \"workload\": \"closed-loop batched writes: %zu "
                 "pipelines x %zu-write batches over %u disks\",\n",
                 pipelines, batch, kDisks);
    std::fprintf(f, "  \"payload_bytes\": %zu,\n", payload_bytes);
    std::fprintf(f, "  \"iters\": %zu,\n", iters);
    if (!baseline.empty()) {
      std::fprintf(f, "  \"baseline\": %s,\n", baseline.c_str());
    }
    std::fprintf(f,
                 "  \"current\": {\n"
                 "    \"total_ops\": %zu,\n"
                 "    \"elapsed_sec\": %.3f,\n"
                 "    \"ops_per_sec\": %.1f,\n"
                 "    \"batch_p50_us\": %llu,\n"
                 "    \"batch_p99_us\": %llu,\n"
                 "    \"allocs_per_op\": %.3f,\n"
                 "    \"bytes_copied_per_op\": %.1f\n"
                 "  }",
                 r.total_ops, r.elapsed_sec, r.ops_per_sec,
                 static_cast<unsigned long long>(r.p50_us),
                 static_cast<unsigned long long>(r.p99_us), r.allocs_per_op,
                 r.bytes_copied_per_op);
    if (!baseline.empty()) {
      const double base_ops = LastNumberFor(baseline, "ops_per_sec");
      const double base_allocs = LastNumberFor(baseline, "allocs_per_op");
      if (base_ops > 0 && base_allocs > 0) {
        std::fprintf(f,
                     ",\n  \"speedup_ops_per_sec\": %.2f,\n"
                     "  \"alloc_reduction\": %.1f\n",
                     r.ops_per_sec / base_ops,
                     base_allocs / std::max(r.allocs_per_op, 0.001));
      } else {
        std::fprintf(f, "\n");
      }
    } else {
      std::fprintf(f, "\n");
    }
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("  artifact: %s\n", out_path);
  }
  return 0;
}
