// Figure 2 — the uniform wait-free MWSR sequentially consistent register:
// performance characterisation of the algorithm the figure specifies.
//
// The paper gives no measurements (PODC theory paper); the meaningful
// reproducible *shape* is the algorithm's cost model, which this harness
// measures on the simulated farm:
//
//   * per-operation base-register work is Θ(2t+1) issues / Θ(t+1) awaited
//     responses, independent of the number of writers (uniformity);
//   * operation latency tracks the (t+1)-th fastest disk, so it is flat
//     in the number of writers and grows mildly with t;
//   * writer throughput scales with the number of writers until the
//     simulated disks saturate.
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "core/config.h"
#include "core/mwsr_seqcst.h"
#include "sim/sim_farm.h"
#include "table_common.h"

namespace {

using namespace nadreg;
using core::FarmConfig;
using sim::SimFarm;

struct Row {
  std::uint32_t t;
  int writers;
  double write_us;
  double read_us;
  double ops_per_sec;
  double base_ops_per_op;
};

Row RunConfig(std::uint32_t t, int writers, int ops_per_writer) {
  FarmConfig cfg{t};
  SimFarm::Options o;
  o.seed = 42 + t * 10 + writers;
  o.min_delay_us = 20;
  o.max_delay_us = 120;
  SimFarm farm(o);
  auto regs = cfg.Spread(0);

  const auto start = std::chrono::steady_clock::now();
  std::vector<double> write_lat;
  {
    std::vector<std::jthread> threads;
    for (int w = 0; w < writers; ++w) {
      threads.emplace_back([&, w] {
        core::MwsrWriter writer(farm, cfg, regs, static_cast<ProcessId>(w + 1));
        for (int i = 0; i < ops_per_writer; ++i) {
          writer.Write("w" + std::to_string(w) + "." + std::to_string(i));
        }
      });
    }
  }
  const auto mid = std::chrono::steady_clock::now();

  core::MwsrReader reader(farm, cfg, regs, 999);
  const int reads = 200;
  for (int i = 0; i < reads; ++i) reader.Read();
  const auto end = std::chrono::steady_clock::now();

  const auto stats = farm.stats();
  Row row;
  row.t = t;
  row.writers = writers;
  const double write_total_us =
      std::chrono::duration<double, std::micro>(mid - start).count();
  row.write_us = write_total_us / ops_per_writer;  // per-writer latency
  row.read_us =
      std::chrono::duration<double, std::micro>(end - mid).count() / reads;
  row.ops_per_sec =
      (writers * ops_per_writer) / (write_total_us / 1e6);
  row.base_ops_per_op = static_cast<double>(stats.TotalIssued()) /
                        (writers * ops_per_writer + reads);
  return row;
}

}  // namespace

int main() {
  std::printf("==========================================================================\n");
  std::printf("FIGURE 2 — MWSR sequentially consistent register: cost characterisation\n");
  std::printf("(simulated farm, per-request disk delay uniform in [20,120] us)\n");
  std::printf("==========================================================================\n\n");

  std::printf("Sweep A: resilience t (2t+1 base registers), single writer\n");
  std::printf("  %-4s %-8s %-12s %-12s %-14s\n", "t", "disks", "WRITE us/op",
              "READ us/op", "base-ops/op");
  std::vector<Row> sweep_a;
  for (std::uint32_t t : {1u, 2u, 3u, 4u}) {
    Row r = RunConfig(t, /*writers=*/1, /*ops=*/150);
    sweep_a.push_back(r);
    std::printf("  %-4u %-8u %-12.1f %-12.1f %-14.2f\n", t, 2 * t + 1,
                r.write_us, r.read_us, r.base_ops_per_op);
  }

  std::printf("\nSweep B: number of WRITERS, t = 1 (uniformity: per-op cost flat)\n");
  std::printf("  %-8s %-12s %-12s %-16s %-14s\n", "writers", "WRITE us/op",
              "READ us/op", "total ops/sec", "base-ops/op");
  std::vector<Row> sweep_b;
  for (int w : {1, 2, 4, 8}) {
    Row r = RunConfig(1, w, /*ops=*/100);
    sweep_b.push_back(r);
    std::printf("  %-8d %-12.1f %-12.1f %-16.0f %-14.2f\n", r.writers,
                r.write_us, r.read_us, r.ops_per_sec, r.base_ops_per_op);
  }

  // Shape checks (the reproducible claims).
  bool ok = true;
  // base ops per op ~= 2t+1 for writes (+ reads issue 2t+1 too): linear in t.
  for (std::size_t i = 0; i + 1 < sweep_a.size(); ++i) {
    if (sweep_a[i + 1].base_ops_per_op <= sweep_a[i].base_ops_per_op) ok = false;
  }
  // uniformity: per-op base work must not grow with the number of writers.
  for (std::size_t i = 0; i + 1 < sweep_b.size(); ++i) {
    if (sweep_b[i + 1].base_ops_per_op > sweep_b[0].base_ops_per_op * 1.5) {
      ok = false;
    }
  }
  // throughput scales with writers (at least 2x from 1 to 8 writers).
  if (sweep_b.back().ops_per_sec < 2.0 * sweep_b.front().ops_per_sec) ok = false;

  std::printf("\nShape checks: per-op base work grows with t (Θ(2t+1)): %s;\n",
              ok ? "yes" : "NO");
  std::printf("per-op base work flat in #writers (uniformity) and throughput\n");
  std::printf("scales with writers: %s\n", ok ? "yes" : "NO");
  std::printf("\nFIGURE 2: %s\n\n", ok ? "REPRODUCED (cost model matches the algorithm)"
                                       : "MISMATCH");
  bench::EmitMetricsArtifact("fig2_mwsr_seqcst");
  return ok ? 0 : 1;
}
