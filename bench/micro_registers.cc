// Microbenchmarks (google-benchmark) for the register emulations, the
// Section 6 primitives and the consistency checkers, on a zero-delay
// simulated farm — measures algorithmic overhead, not simulated disks.
#include <benchmark/benchmark.h>

#include "checker/consistency.h"
#include "checker/history.h"
#include "core/config.h"
#include "core/mwmr_atomic.h"
#include "core/mwsr_seqcst.h"
#include "core/name_snapshot.h"
#include "core/oneshot.h"
#include "core/swmr_atomic.h"
#include "core/swsr_atomic.h"
#include "sim/sim_farm.h"

namespace {

using namespace nadreg;
using core::FarmConfig;
using sim::SimFarm;

SimFarm::Options ZeroDelay() {
  SimFarm::Options o;
  o.seed = 1;
  o.min_delay_us = 0;
  o.max_delay_us = 0;
  return o;
}

void BM_SwsrWrite(benchmark::State& state) {
  FarmConfig cfg{static_cast<std::uint32_t>(state.range(0))};
  SimFarm farm(ZeroDelay());
  core::SwsrAtomicWriter writer(farm, cfg, cfg.Spread(0), 1);
  for (auto _ : state) writer.Write("payload");
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SwsrWrite)->Arg(1)->Arg(2)->Arg(4);

void BM_SwsrRead(benchmark::State& state) {
  FarmConfig cfg{static_cast<std::uint32_t>(state.range(0))};
  SimFarm farm(ZeroDelay());
  core::SwsrAtomicWriter writer(farm, cfg, cfg.Spread(0), 1);
  core::SwsrAtomicReader reader(farm, cfg, cfg.Spread(0), 2);
  writer.Write("payload");
  for (auto _ : state) benchmark::DoNotOptimize(reader.Read());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SwsrRead)->Arg(1)->Arg(2)->Arg(4);

void BM_SwmrTwoPhaseRead(benchmark::State& state) {
  FarmConfig cfg{1};
  SimFarm farm(ZeroDelay());
  core::SwmrAtomicWriter writer(farm, cfg, cfg.Spread(0), 1);
  core::SwmrAtomicReader reader(farm, cfg, cfg.Spread(0), 2);
  writer.Write("payload");
  for (auto _ : state) benchmark::DoNotOptimize(reader.Read());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SwmrTwoPhaseRead);

void BM_MwsrWrite(benchmark::State& state) {
  FarmConfig cfg{1};
  SimFarm farm(ZeroDelay());
  core::MwsrWriter writer(farm, cfg, cfg.Spread(0), 1);
  for (auto _ : state) writer.Write("payload");
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MwsrWrite);

void BM_MwsrRead(benchmark::State& state) {
  FarmConfig cfg{1};
  SimFarm farm(ZeroDelay());
  core::MwsrWriter writer(farm, cfg, cfg.Spread(0), 1);
  core::MwsrReader reader(farm, cfg, cfg.Spread(0), 2);
  writer.Write("payload");
  for (auto _ : state) benchmark::DoNotOptimize(reader.Read());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MwsrRead);

void BM_OneShotWriteAndRead(benchmark::State& state) {
  FarmConfig cfg{1};
  SimFarm farm(ZeroDelay());
  BlockId block = 0;
  for (auto _ : state) {
    core::OneShotRegister w(farm, cfg, cfg.Spread(block), 1);
    core::OneShotRegister r(farm, cfg, cfg.Spread(block), 2);
    benchmark::DoNotOptimize(w.Write("v"));
    benchmark::DoNotOptimize(r.Read());
    ++block;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OneShotWriteAndRead);

void BM_StickyBitSet(benchmark::State& state) {
  FarmConfig cfg{1};
  SimFarm farm(ZeroDelay());
  BlockId block = 0;
  for (auto _ : state) {
    core::StickyBit bit(farm, cfg, cfg.Spread(block++), 1);
    bit.Set();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StickyBitSet);

void BM_NameSnapshot(benchmark::State& state) {
  // Snapshot cost at a directory size of `range(0)` pre-announced names.
  FarmConfig cfg{1};
  SimFarm farm(ZeroDelay());
  core::NameSnapshot snap(farm, cfg, 1, 1);
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    snap.Announce(Name{1, static_cast<std::uint64_t>(i)});
  }
  core::NameSnapshot collector(farm, cfg, 1, 2);
  std::uint64_t idx = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(collector.Snapshot(Name{2, idx++}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NameSnapshot)->Arg(1)->Arg(8)->Arg(32);

void BM_MwmrWrite(benchmark::State& state) {
  FarmConfig cfg{1};
  SimFarm farm(ZeroDelay());
  core::MwmrAtomic reg(farm, cfg, 1, 1);
  std::uint64_t i = 0;
  for (auto _ : state) reg.Write("v" + std::to_string(i++));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MwmrWrite)->Iterations(256);

void BM_MwmrRead(benchmark::State& state) {
  FarmConfig cfg{1};
  SimFarm farm(ZeroDelay());
  core::MwmrAtomic writer(farm, cfg, 1, 1);
  core::MwmrAtomic reader(farm, cfg, 1, 2);
  writer.Write("v");
  for (auto _ : state) benchmark::DoNotOptimize(reader.Read());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MwmrRead)->Iterations(256);

void BM_CheckAtomic(benchmark::State& state) {
  // A realistic concurrent history of `range(0)` operations.
  const int n = static_cast<int>(state.range(0));
  std::vector<checker::Operation> ops;
  std::uint64_t clock = 0;
  std::string value;
  for (int i = 0; i < n; ++i) {
    checker::Operation op;
    op.id = ops.size();
    op.process = i % 4;
    op.invoke = ++clock;
    if (i % 2 == 0) {
      op.kind = checker::OpKind::kWrite;
      op.value = "v" + std::to_string(i);
      value = op.value;
    } else {
      op.kind = checker::OpKind::kRead;
      op.value = value;
    }
    op.respond = ++clock + 3;  // small overlaps
    op.completed = true;
    ops.push_back(op);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(checker::CheckAtomic(ops));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_CheckAtomic)->Arg(16)->Arg(64)->Arg(128);

}  // namespace

BENCHMARK_MAIN();
