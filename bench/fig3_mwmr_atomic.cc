// Figure 3 — the uniform wait-free atomic MWMR register from infinitely
// many base registers: cost characterisation.
//
// The defining trade-off this harness exposes (and which the paper's
// open question about step complexity anticipates): every operation takes
// a name snapshot, whose collect walks the whole name directory, so the
// per-operation base-register work GROWS with the number of operations
// ever performed — in sharp contrast to the finite-register Fig. 2
// algorithm, whose per-op cost is a constant Θ(t). That is the measured
// price of circumventing Theorem 2 with infinitely many registers.
#include <cstdio>
#include <vector>

#include "core/config.h"
#include "core/mwmr_atomic.h"
#include "core/mwsr_seqcst.h"
#include "sim/sim_farm.h"
#include "table_common.h"

namespace {

using namespace nadreg;
using core::FarmConfig;
using sim::SimFarm;

SimFarm::Options FastFarm(std::uint64_t seed) {
  SimFarm::Options o;
  o.seed = seed;
  o.min_delay_us = 0;
  o.max_delay_us = 0;  // zero service delay: count base ops, not time
  return o;
}

}  // namespace

int main() {
  std::printf("==========================================================================\n");
  std::printf("FIGURE 3 — MWMR atomic register from infinitely many base registers\n");
  std::printf("==========================================================================\n\n");

  // Sweep A: the uniform-arrival cost — base-register work of the k-th
  // *newly arriving* process's WRITE as the name directory grows. A new
  // process has no caches: its snapshot must discover every name written
  // so far, so its cost grows with the participant count. (A long-lived
  // endpoint amortizes most of this via its sticky-bit caches — Sweep A'
  // shows that too.)
  bool arrivals_grow = false;
  std::printf("Sweep A: WRITE cost of the k-th newly arriving process (t=1)\n");
  std::printf("  %-10s %-26s\n", "arrival #", "base-ops for its WRITE");
  {
    FarmConfig cfg{1};
    SimFarm farm(FastFarm(7));
    std::vector<double> costs;
    std::uint64_t prev = 0;
    for (int k = 1; k <= 24; ++k) {
      core::MwmrAtomic fresh(farm, cfg, 1, static_cast<ProcessId>(k));
      fresh.Write("v" + std::to_string(k));
      const std::uint64_t now = farm.stats().TotalIssued();
      costs.push_back(static_cast<double>(now - prev));
      prev = now;
      if (k % 4 == 0 || k == 1) {
        std::printf("  %-10d %-26.0f\n", k, costs.back());
      }
    }
    arrivals_grow = costs.back() > 2.0 * costs.front();
    std::printf("  -> a new arrival's cost grows with the directory: %s\n",
                arrivals_grow
                    ? "yes (the paper's open step-complexity question, "
                      "measured)"
                    : "NO");
  }

  // Sweep A': a long-lived endpoint amortizes discovery via its caches of
  // stable facts (sticky bits never unset; one-shots never change).
  std::printf("\nSweep A': same workload through one long-lived endpoint (caches on)\n");
  std::printf("  %-10s %-26s\n", "op #", "base-ops for its WRITE");
  {
    FarmConfig cfg{1};
    SimFarm farm(FastFarm(8));
    core::MwmrAtomic writer(farm, cfg, 1, 1);
    std::uint64_t prev = 0;
    for (int i = 1; i <= 24; ++i) {
      writer.Write("v" + std::to_string(i));
      const std::uint64_t now = farm.stats().TotalIssued();
      if (i % 8 == 0 || i == 1) {
        std::printf("  %-10d %-26llu\n", i,
                    static_cast<unsigned long long>(now - prev));
      }
      prev = now;
    }
    std::printf("  -> amortized per-op cost stays near-flat: caching stable "
                "facts pays.\n\n");
  }

  // Sweep B: resilience t — every primitive spreads over 2t+1 disks.
  std::printf("Sweep B: base-register ops for a fixed workload vs t\n");
  std::printf("  %-4s %-8s %-22s\n", "t", "disks", "total base ops (8W+8R)");
  std::vector<std::uint64_t> totals;
  for (std::uint32_t t : {1u, 2u, 3u}) {
    FarmConfig cfg{t};
    SimFarm farm(FastFarm(11 + t));
    core::MwmrAtomic writer(farm, cfg, 1, 1);
    core::MwmrAtomic reader(farm, cfg, 1, 2);
    for (int i = 0; i < 8; ++i) {
      writer.Write("v" + std::to_string(i));
      reader.Read();
    }
    totals.push_back(farm.stats().TotalIssued());
    std::printf("  %-4u %-8u %-22llu\n", t, 2 * t + 1,
                static_cast<unsigned long long>(totals.back()));
  }
  const bool t_grows = totals[1] > totals[0] && totals[2] > totals[1];
  std::printf("  -> total work grows with t (each primitive is 2t+1-way "
              "replicated): %s\n\n", t_grows ? "yes" : "NO");

  // Sweep C: contrast with the finite-register Fig. 2 register.
  std::printf("Sweep C: contrast — Fig. 2 (finite regs) vs Fig. 3 (infinite regs), t=1\n");
  std::uint64_t fig2_ops = 0, fig3_ops = 0;
  {
    FarmConfig cfg{1};
    SimFarm farm(FastFarm(21));
    auto regs = cfg.Spread(0);
    core::MwsrWriter w(farm, cfg, regs, 1);
    core::MwsrReader r(farm, cfg, regs, 2);
    for (int i = 0; i < 16; ++i) {
      w.Write("v");
      r.Read();
    }
    fig2_ops = farm.stats().TotalIssued();
  }
  {
    FarmConfig cfg{1};
    SimFarm farm(FastFarm(22));
    core::MwmrAtomic w(farm, cfg, 1, 1);
    core::MwmrAtomic r(farm, cfg, 1, 2);
    for (int i = 0; i < 16; ++i) {
      w.Write("v");
      r.Read();
    }
    fig3_ops = farm.stats().TotalIssued();
  }
  std::printf("  Fig. 2 (seq-cst, MWSR):  %8llu base ops for 16W+16R  (Θ(t) per op)\n",
              static_cast<unsigned long long>(fig2_ops));
  std::printf("  Fig. 3 (atomic, MWMR):   %8llu base ops for 16W+16R  (grows per op)\n",
              static_cast<unsigned long long>(fig3_ops));
  const double factor = static_cast<double>(fig3_ops) / fig2_ops;
  std::printf("  -> atomicity + uniformity via infinitely many registers costs %.0fx\n",
              factor);
  std::printf("     here — who wins: Fig. 2 on cost, Fig. 3 on guarantees, exactly\n");
  std::printf("     the trade-off Tables 2-4 formalise.\n");

  const bool ok = arrivals_grow && t_grows && factor > 5.0;
  std::printf("\nFIGURE 3: %s\n\n",
              ok ? "REPRODUCED (cost model matches the construction)"
                 : "MISMATCH");
  bench::EmitMetricsArtifact("fig3_mwmr_atomic");
  return ok ? 0 : 1;
}
