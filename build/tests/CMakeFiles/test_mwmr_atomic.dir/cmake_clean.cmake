file(REMOVE_RECURSE
  "CMakeFiles/test_mwmr_atomic.dir/test_mwmr_atomic.cc.o"
  "CMakeFiles/test_mwmr_atomic.dir/test_mwmr_atomic.cc.o.d"
  "test_mwmr_atomic"
  "test_mwmr_atomic.pdb"
  "test_mwmr_atomic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mwmr_atomic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
