# Empty compiler generated dependencies file for test_det_farm.
# This may be replaced when dependencies are built.
