file(REMOVE_RECURSE
  "CMakeFiles/test_det_farm.dir/test_det_farm.cc.o"
  "CMakeFiles/test_det_farm.dir/test_det_farm.cc.o.d"
  "test_det_farm"
  "test_det_farm.pdb"
  "test_det_farm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_det_farm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
