file(REMOVE_RECURSE
  "CMakeFiles/test_name_snapshot.dir/test_name_snapshot.cc.o"
  "CMakeFiles/test_name_snapshot.dir/test_name_snapshot.cc.o.d"
  "test_name_snapshot"
  "test_name_snapshot.pdb"
  "test_name_snapshot[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_name_snapshot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
