# Empty compiler generated dependencies file for test_name_snapshot.
# This may be replaced when dependencies are built.
