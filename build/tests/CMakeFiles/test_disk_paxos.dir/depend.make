# Empty dependencies file for test_disk_paxos.
# This may be replaced when dependencies are built.
