file(REMOVE_RECURSE
  "CMakeFiles/test_disk_paxos.dir/test_disk_paxos.cc.o"
  "CMakeFiles/test_disk_paxos.dir/test_disk_paxos.cc.o.d"
  "test_disk_paxos"
  "test_disk_paxos.pdb"
  "test_disk_paxos[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_disk_paxos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
