file(REMOVE_RECURSE
  "CMakeFiles/test_nad_robustness.dir/test_nad_robustness.cc.o"
  "CMakeFiles/test_nad_robustness.dir/test_nad_robustness.cc.o.d"
  "test_nad_robustness"
  "test_nad_robustness.pdb"
  "test_nad_robustness[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nad_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
