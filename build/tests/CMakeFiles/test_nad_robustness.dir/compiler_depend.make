# Empty compiler generated dependencies file for test_nad_robustness.
# This may be replaced when dependencies are built.
