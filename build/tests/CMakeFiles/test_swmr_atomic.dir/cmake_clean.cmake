file(REMOVE_RECURSE
  "CMakeFiles/test_swmr_atomic.dir/test_swmr_atomic.cc.o"
  "CMakeFiles/test_swmr_atomic.dir/test_swmr_atomic.cc.o.d"
  "test_swmr_atomic"
  "test_swmr_atomic.pdb"
  "test_swmr_atomic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_swmr_atomic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
