# Empty compiler generated dependencies file for test_swmr_atomic.
# This may be replaced when dependencies are built.
