# Empty compiler generated dependencies file for test_oneshot.
# This may be replaced when dependencies are built.
