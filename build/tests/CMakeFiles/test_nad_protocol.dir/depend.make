# Empty dependencies file for test_nad_protocol.
# This may be replaced when dependencies are built.
