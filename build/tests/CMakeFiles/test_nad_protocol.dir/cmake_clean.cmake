file(REMOVE_RECURSE
  "CMakeFiles/test_nad_protocol.dir/test_nad_protocol.cc.o"
  "CMakeFiles/test_nad_protocol.dir/test_nad_protocol.cc.o.d"
  "test_nad_protocol"
  "test_nad_protocol.pdb"
  "test_nad_protocol[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nad_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
