# Empty dependencies file for test_mwsr_seqcst.
# This may be replaced when dependencies are built.
