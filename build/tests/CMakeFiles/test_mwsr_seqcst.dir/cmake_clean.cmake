file(REMOVE_RECURSE
  "CMakeFiles/test_mwsr_seqcst.dir/test_mwsr_seqcst.cc.o"
  "CMakeFiles/test_mwsr_seqcst.dir/test_mwsr_seqcst.cc.o.d"
  "test_mwsr_seqcst"
  "test_mwsr_seqcst.pdb"
  "test_mwsr_seqcst[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mwsr_seqcst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
