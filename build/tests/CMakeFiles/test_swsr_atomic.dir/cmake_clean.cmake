file(REMOVE_RECURSE
  "CMakeFiles/test_swsr_atomic.dir/test_swsr_atomic.cc.o"
  "CMakeFiles/test_swsr_atomic.dir/test_swsr_atomic.cc.o.d"
  "test_swsr_atomic"
  "test_swsr_atomic.pdb"
  "test_swsr_atomic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_swsr_atomic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
