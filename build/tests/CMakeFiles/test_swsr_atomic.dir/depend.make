# Empty dependencies file for test_swsr_atomic.
# This may be replaced when dependencies are built.
