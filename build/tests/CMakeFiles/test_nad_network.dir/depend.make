# Empty dependencies file for test_nad_network.
# This may be replaced when dependencies are built.
