file(REMOVE_RECURSE
  "CMakeFiles/test_nad_network.dir/test_nad_network.cc.o"
  "CMakeFiles/test_nad_network.dir/test_nad_network.cc.o.d"
  "test_nad_network"
  "test_nad_network.pdb"
  "test_nad_network[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nad_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
