file(REMOVE_RECURSE
  "CMakeFiles/test_ranked_register.dir/test_ranked_register.cc.o"
  "CMakeFiles/test_ranked_register.dir/test_ranked_register.cc.o.d"
  "test_ranked_register"
  "test_ranked_register.pdb"
  "test_ranked_register[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ranked_register.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
