file(REMOVE_RECURSE
  "CMakeFiles/test_register_set.dir/test_register_set.cc.o"
  "CMakeFiles/test_register_set.dir/test_register_set.cc.o.d"
  "test_register_set"
  "test_register_set.pdb"
  "test_register_set[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_register_set.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
