# Empty dependencies file for test_register_set.
# This may be replaced when dependencies are built.
