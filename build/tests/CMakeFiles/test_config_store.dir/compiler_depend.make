# Empty compiler generated dependencies file for test_config_store.
# This may be replaced when dependencies are built.
