file(REMOVE_RECURSE
  "CMakeFiles/test_config_store.dir/test_config_store.cc.o"
  "CMakeFiles/test_config_store.dir/test_config_store.cc.o.d"
  "test_config_store"
  "test_config_store.pdb"
  "test_config_store[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_config_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
