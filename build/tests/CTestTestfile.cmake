# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_codec[1]_include.cmake")
include("/root/repo/build/tests/test_rng[1]_include.cmake")
include("/root/repo/build/tests/test_sim_farm[1]_include.cmake")
include("/root/repo/build/tests/test_det_farm[1]_include.cmake")
include("/root/repo/build/tests/test_register_set[1]_include.cmake")
include("/root/repo/build/tests/test_swsr_atomic[1]_include.cmake")
include("/root/repo/build/tests/test_swmr_atomic[1]_include.cmake")
include("/root/repo/build/tests/test_mwsr_seqcst[1]_include.cmake")
include("/root/repo/build/tests/test_oneshot[1]_include.cmake")
include("/root/repo/build/tests/test_checker[1]_include.cmake")
include("/root/repo/build/tests/test_name_snapshot[1]_include.cmake")
include("/root/repo/build/tests/test_mwmr_atomic[1]_include.cmake")
include("/root/repo/build/tests/test_nad_protocol[1]_include.cmake")
include("/root/repo/build/tests/test_nad_network[1]_include.cmake")
include("/root/repo/build/tests/test_adversary[1]_include.cmake")
include("/root/repo/build/tests/test_disk_paxos[1]_include.cmake")
include("/root/repo/build/tests/test_apps[1]_include.cmake")
include("/root/repo/build/tests/test_explorer[1]_include.cmake")
include("/root/repo/build/tests/test_ranked_register[1]_include.cmake")
include("/root/repo/build/tests/test_persistence[1]_include.cmake")
include("/root/repo/build/tests/test_covering[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_config_store[1]_include.cmake")
include("/root/repo/build/tests/test_layout[1]_include.cmake")
include("/root/repo/build/tests/test_soak[1]_include.cmake")
include("/root/repo/build/tests/test_nad_robustness[1]_include.cmake")
include("/root/repo/build/tests/test_address[1]_include.cmake")
