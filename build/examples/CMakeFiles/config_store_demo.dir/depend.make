# Empty dependencies file for config_store_demo.
# This may be replaced when dependencies are built.
