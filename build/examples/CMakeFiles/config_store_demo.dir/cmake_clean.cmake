file(REMOVE_RECURSE
  "CMakeFiles/config_store_demo.dir/config_store_demo.cpp.o"
  "CMakeFiles/config_store_demo.dir/config_store_demo.cpp.o.d"
  "config_store_demo"
  "config_store_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/config_store_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
