file(REMOVE_RECURSE
  "CMakeFiles/shared_log_demo.dir/shared_log_demo.cpp.o"
  "CMakeFiles/shared_log_demo.dir/shared_log_demo.cpp.o.d"
  "shared_log_demo"
  "shared_log_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shared_log_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
