# Empty compiler generated dependencies file for shared_log_demo.
# This may be replaced when dependencies are built.
