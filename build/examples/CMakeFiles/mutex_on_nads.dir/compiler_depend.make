# Empty compiler generated dependencies file for mutex_on_nads.
# This may be replaced when dependencies are built.
