file(REMOVE_RECURSE
  "CMakeFiles/mutex_on_nads.dir/mutex_on_nads.cpp.o"
  "CMakeFiles/mutex_on_nads.dir/mutex_on_nads.cpp.o.d"
  "mutex_on_nads"
  "mutex_on_nads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mutex_on_nads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
