
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/nad_server_main.cpp" "examples/CMakeFiles/nad_server.dir/nad_server_main.cpp.o" "gcc" "examples/CMakeFiles/nad_server.dir/nad_server_main.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nad/CMakeFiles/nadreg_nad.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/nadreg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nadreg_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/nadreg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
