file(REMOVE_RECURSE
  "CMakeFiles/nad_server.dir/nad_server_main.cpp.o"
  "CMakeFiles/nad_server.dir/nad_server_main.cpp.o.d"
  "nad_server"
  "nad_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nad_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
