# Empty dependencies file for nad_server.
# This may be replaced when dependencies are built.
