file(REMOVE_RECURSE
  "CMakeFiles/disk_paxos_demo.dir/disk_paxos_demo.cpp.o"
  "CMakeFiles/disk_paxos_demo.dir/disk_paxos_demo.cpp.o.d"
  "disk_paxos_demo"
  "disk_paxos_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disk_paxos_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
