# Empty dependencies file for disk_paxos_demo.
# This may be replaced when dependencies are built.
