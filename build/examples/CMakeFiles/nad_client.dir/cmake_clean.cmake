file(REMOVE_RECURSE
  "CMakeFiles/nad_client.dir/nad_client_cli.cpp.o"
  "CMakeFiles/nad_client.dir/nad_client_cli.cpp.o.d"
  "nad_client"
  "nad_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nad_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
