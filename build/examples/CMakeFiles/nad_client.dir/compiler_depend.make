# Empty compiler generated dependencies file for nad_client.
# This may be replaced when dependencies are built.
