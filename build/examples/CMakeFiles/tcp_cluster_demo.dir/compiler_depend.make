# Empty compiler generated dependencies file for tcp_cluster_demo.
# This may be replaced when dependencies are built.
