file(REMOVE_RECURSE
  "CMakeFiles/tcp_cluster_demo.dir/tcp_cluster_demo.cpp.o"
  "CMakeFiles/tcp_cluster_demo.dir/tcp_cluster_demo.cpp.o.d"
  "tcp_cluster_demo"
  "tcp_cluster_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcp_cluster_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
