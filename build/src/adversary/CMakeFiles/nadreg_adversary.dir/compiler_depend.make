# Empty compiler generated dependencies file for nadreg_adversary.
# This may be replaced when dependencies are built.
