file(REMOVE_RECURSE
  "libnadreg_adversary.a"
)
