file(REMOVE_RECURSE
  "CMakeFiles/nadreg_adversary.dir/covering.cc.o"
  "CMakeFiles/nadreg_adversary.dir/covering.cc.o.d"
  "CMakeFiles/nadreg_adversary.dir/schedules.cc.o"
  "CMakeFiles/nadreg_adversary.dir/schedules.cc.o.d"
  "libnadreg_adversary.a"
  "libnadreg_adversary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nadreg_adversary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
