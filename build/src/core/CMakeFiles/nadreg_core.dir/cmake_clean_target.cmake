file(REMOVE_RECURSE
  "libnadreg_core.a"
)
