# Empty dependencies file for nadreg_core.
# This may be replaced when dependencies are built.
