
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/layout.cc" "src/core/CMakeFiles/nadreg_core.dir/layout.cc.o" "gcc" "src/core/CMakeFiles/nadreg_core.dir/layout.cc.o.d"
  "/root/repo/src/core/mwmr_atomic.cc" "src/core/CMakeFiles/nadreg_core.dir/mwmr_atomic.cc.o" "gcc" "src/core/CMakeFiles/nadreg_core.dir/mwmr_atomic.cc.o.d"
  "/root/repo/src/core/mwsr_seqcst.cc" "src/core/CMakeFiles/nadreg_core.dir/mwsr_seqcst.cc.o" "gcc" "src/core/CMakeFiles/nadreg_core.dir/mwsr_seqcst.cc.o.d"
  "/root/repo/src/core/name_snapshot.cc" "src/core/CMakeFiles/nadreg_core.dir/name_snapshot.cc.o" "gcc" "src/core/CMakeFiles/nadreg_core.dir/name_snapshot.cc.o.d"
  "/root/repo/src/core/oneshot.cc" "src/core/CMakeFiles/nadreg_core.dir/oneshot.cc.o" "gcc" "src/core/CMakeFiles/nadreg_core.dir/oneshot.cc.o.d"
  "/root/repo/src/core/register_set.cc" "src/core/CMakeFiles/nadreg_core.dir/register_set.cc.o" "gcc" "src/core/CMakeFiles/nadreg_core.dir/register_set.cc.o.d"
  "/root/repo/src/core/swmr_atomic.cc" "src/core/CMakeFiles/nadreg_core.dir/swmr_atomic.cc.o" "gcc" "src/core/CMakeFiles/nadreg_core.dir/swmr_atomic.cc.o.d"
  "/root/repo/src/core/swsr_atomic.cc" "src/core/CMakeFiles/nadreg_core.dir/swsr_atomic.cc.o" "gcc" "src/core/CMakeFiles/nadreg_core.dir/swsr_atomic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/nadreg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
