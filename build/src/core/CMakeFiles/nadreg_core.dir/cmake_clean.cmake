file(REMOVE_RECURSE
  "CMakeFiles/nadreg_core.dir/layout.cc.o"
  "CMakeFiles/nadreg_core.dir/layout.cc.o.d"
  "CMakeFiles/nadreg_core.dir/mwmr_atomic.cc.o"
  "CMakeFiles/nadreg_core.dir/mwmr_atomic.cc.o.d"
  "CMakeFiles/nadreg_core.dir/mwsr_seqcst.cc.o"
  "CMakeFiles/nadreg_core.dir/mwsr_seqcst.cc.o.d"
  "CMakeFiles/nadreg_core.dir/name_snapshot.cc.o"
  "CMakeFiles/nadreg_core.dir/name_snapshot.cc.o.d"
  "CMakeFiles/nadreg_core.dir/oneshot.cc.o"
  "CMakeFiles/nadreg_core.dir/oneshot.cc.o.d"
  "CMakeFiles/nadreg_core.dir/register_set.cc.o"
  "CMakeFiles/nadreg_core.dir/register_set.cc.o.d"
  "CMakeFiles/nadreg_core.dir/swmr_atomic.cc.o"
  "CMakeFiles/nadreg_core.dir/swmr_atomic.cc.o.d"
  "CMakeFiles/nadreg_core.dir/swsr_atomic.cc.o"
  "CMakeFiles/nadreg_core.dir/swsr_atomic.cc.o.d"
  "libnadreg_core.a"
  "libnadreg_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nadreg_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
