file(REMOVE_RECURSE
  "CMakeFiles/nadreg_common.dir/codec.cc.o"
  "CMakeFiles/nadreg_common.dir/codec.cc.o.d"
  "CMakeFiles/nadreg_common.dir/log.cc.o"
  "CMakeFiles/nadreg_common.dir/log.cc.o.d"
  "libnadreg_common.a"
  "libnadreg_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nadreg_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
