file(REMOVE_RECURSE
  "libnadreg_common.a"
)
