# Empty dependencies file for nadreg_common.
# This may be replaced when dependencies are built.
