file(REMOVE_RECURSE
  "libnadreg_harness_lib.a"
)
