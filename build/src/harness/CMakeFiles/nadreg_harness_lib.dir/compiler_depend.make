# Empty compiler generated dependencies file for nadreg_harness_lib.
# This may be replaced when dependencies are built.
