file(REMOVE_RECURSE
  "CMakeFiles/nadreg_harness_lib.dir/workload.cc.o"
  "CMakeFiles/nadreg_harness_lib.dir/workload.cc.o.d"
  "libnadreg_harness_lib.a"
  "libnadreg_harness_lib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nadreg_harness_lib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
