file(REMOVE_RECURSE
  "libnadreg_nad.a"
)
