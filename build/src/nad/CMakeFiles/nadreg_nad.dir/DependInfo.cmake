
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nad/client.cc" "src/nad/CMakeFiles/nadreg_nad.dir/client.cc.o" "gcc" "src/nad/CMakeFiles/nadreg_nad.dir/client.cc.o.d"
  "/root/repo/src/nad/persistence.cc" "src/nad/CMakeFiles/nadreg_nad.dir/persistence.cc.o" "gcc" "src/nad/CMakeFiles/nadreg_nad.dir/persistence.cc.o.d"
  "/root/repo/src/nad/protocol.cc" "src/nad/CMakeFiles/nadreg_nad.dir/protocol.cc.o" "gcc" "src/nad/CMakeFiles/nadreg_nad.dir/protocol.cc.o.d"
  "/root/repo/src/nad/server.cc" "src/nad/CMakeFiles/nadreg_nad.dir/server.cc.o" "gcc" "src/nad/CMakeFiles/nadreg_nad.dir/server.cc.o.d"
  "/root/repo/src/nad/socket.cc" "src/nad/CMakeFiles/nadreg_nad.dir/socket.cc.o" "gcc" "src/nad/CMakeFiles/nadreg_nad.dir/socket.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/nadreg_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nadreg_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
