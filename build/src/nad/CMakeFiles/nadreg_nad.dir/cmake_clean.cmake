file(REMOVE_RECURSE
  "CMakeFiles/nadreg_nad.dir/client.cc.o"
  "CMakeFiles/nadreg_nad.dir/client.cc.o.d"
  "CMakeFiles/nadreg_nad.dir/persistence.cc.o"
  "CMakeFiles/nadreg_nad.dir/persistence.cc.o.d"
  "CMakeFiles/nadreg_nad.dir/protocol.cc.o"
  "CMakeFiles/nadreg_nad.dir/protocol.cc.o.d"
  "CMakeFiles/nadreg_nad.dir/server.cc.o"
  "CMakeFiles/nadreg_nad.dir/server.cc.o.d"
  "CMakeFiles/nadreg_nad.dir/socket.cc.o"
  "CMakeFiles/nadreg_nad.dir/socket.cc.o.d"
  "libnadreg_nad.a"
  "libnadreg_nad.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nadreg_nad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
