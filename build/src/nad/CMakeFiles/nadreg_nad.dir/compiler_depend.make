# Empty compiler generated dependencies file for nadreg_nad.
# This may be replaced when dependencies are built.
