# Empty compiler generated dependencies file for nadreg_apps.
# This may be replaced when dependencies are built.
