
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/config_store.cc" "src/apps/CMakeFiles/nadreg_apps.dir/config_store.cc.o" "gcc" "src/apps/CMakeFiles/nadreg_apps.dir/config_store.cc.o.d"
  "/root/repo/src/apps/disk_paxos.cc" "src/apps/CMakeFiles/nadreg_apps.dir/disk_paxos.cc.o" "gcc" "src/apps/CMakeFiles/nadreg_apps.dir/disk_paxos.cc.o.d"
  "/root/repo/src/apps/fast_mutex.cc" "src/apps/CMakeFiles/nadreg_apps.dir/fast_mutex.cc.o" "gcc" "src/apps/CMakeFiles/nadreg_apps.dir/fast_mutex.cc.o.d"
  "/root/repo/src/apps/ranked_register.cc" "src/apps/CMakeFiles/nadreg_apps.dir/ranked_register.cc.o" "gcc" "src/apps/CMakeFiles/nadreg_apps.dir/ranked_register.cc.o.d"
  "/root/repo/src/apps/shared_log.cc" "src/apps/CMakeFiles/nadreg_apps.dir/shared_log.cc.o" "gcc" "src/apps/CMakeFiles/nadreg_apps.dir/shared_log.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/nadreg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nadreg_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/nadreg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
