file(REMOVE_RECURSE
  "libnadreg_apps.a"
)
