file(REMOVE_RECURSE
  "CMakeFiles/nadreg_apps.dir/config_store.cc.o"
  "CMakeFiles/nadreg_apps.dir/config_store.cc.o.d"
  "CMakeFiles/nadreg_apps.dir/disk_paxos.cc.o"
  "CMakeFiles/nadreg_apps.dir/disk_paxos.cc.o.d"
  "CMakeFiles/nadreg_apps.dir/fast_mutex.cc.o"
  "CMakeFiles/nadreg_apps.dir/fast_mutex.cc.o.d"
  "CMakeFiles/nadreg_apps.dir/ranked_register.cc.o"
  "CMakeFiles/nadreg_apps.dir/ranked_register.cc.o.d"
  "CMakeFiles/nadreg_apps.dir/shared_log.cc.o"
  "CMakeFiles/nadreg_apps.dir/shared_log.cc.o.d"
  "libnadreg_apps.a"
  "libnadreg_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nadreg_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
