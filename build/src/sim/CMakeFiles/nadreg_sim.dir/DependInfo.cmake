
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/active_farm.cc" "src/sim/CMakeFiles/nadreg_sim.dir/active_farm.cc.o" "gcc" "src/sim/CMakeFiles/nadreg_sim.dir/active_farm.cc.o.d"
  "/root/repo/src/sim/det_farm.cc" "src/sim/CMakeFiles/nadreg_sim.dir/det_farm.cc.o" "gcc" "src/sim/CMakeFiles/nadreg_sim.dir/det_farm.cc.o.d"
  "/root/repo/src/sim/explorer.cc" "src/sim/CMakeFiles/nadreg_sim.dir/explorer.cc.o" "gcc" "src/sim/CMakeFiles/nadreg_sim.dir/explorer.cc.o.d"
  "/root/repo/src/sim/sim_farm.cc" "src/sim/CMakeFiles/nadreg_sim.dir/sim_farm.cc.o" "gcc" "src/sim/CMakeFiles/nadreg_sim.dir/sim_farm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/nadreg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
