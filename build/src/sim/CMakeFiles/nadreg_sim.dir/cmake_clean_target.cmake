file(REMOVE_RECURSE
  "libnadreg_sim.a"
)
