# Empty dependencies file for nadreg_sim.
# This may be replaced when dependencies are built.
