file(REMOVE_RECURSE
  "CMakeFiles/nadreg_sim.dir/active_farm.cc.o"
  "CMakeFiles/nadreg_sim.dir/active_farm.cc.o.d"
  "CMakeFiles/nadreg_sim.dir/det_farm.cc.o"
  "CMakeFiles/nadreg_sim.dir/det_farm.cc.o.d"
  "CMakeFiles/nadreg_sim.dir/explorer.cc.o"
  "CMakeFiles/nadreg_sim.dir/explorer.cc.o.d"
  "CMakeFiles/nadreg_sim.dir/sim_farm.cc.o"
  "CMakeFiles/nadreg_sim.dir/sim_farm.cc.o.d"
  "libnadreg_sim.a"
  "libnadreg_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nadreg_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
