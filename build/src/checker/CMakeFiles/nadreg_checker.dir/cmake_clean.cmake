file(REMOVE_RECURSE
  "CMakeFiles/nadreg_checker.dir/consistency.cc.o"
  "CMakeFiles/nadreg_checker.dir/consistency.cc.o.d"
  "CMakeFiles/nadreg_checker.dir/history.cc.o"
  "CMakeFiles/nadreg_checker.dir/history.cc.o.d"
  "libnadreg_checker.a"
  "libnadreg_checker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nadreg_checker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
