file(REMOVE_RECURSE
  "libnadreg_checker.a"
)
