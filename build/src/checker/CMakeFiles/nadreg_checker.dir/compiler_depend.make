# Empty compiler generated dependencies file for nadreg_checker.
# This may be replaced when dependencies are built.
