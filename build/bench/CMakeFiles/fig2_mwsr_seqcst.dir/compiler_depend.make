# Empty compiler generated dependencies file for fig2_mwsr_seqcst.
# This may be replaced when dependencies are built.
