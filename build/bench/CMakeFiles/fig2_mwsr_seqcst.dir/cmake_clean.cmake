file(REMOVE_RECURSE
  "CMakeFiles/fig2_mwsr_seqcst.dir/fig2_mwsr_seqcst.cc.o"
  "CMakeFiles/fig2_mwsr_seqcst.dir/fig2_mwsr_seqcst.cc.o.d"
  "fig2_mwsr_seqcst"
  "fig2_mwsr_seqcst.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_mwsr_seqcst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
