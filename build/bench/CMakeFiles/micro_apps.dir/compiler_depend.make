# Empty compiler generated dependencies file for micro_apps.
# This may be replaced when dependencies are built.
