file(REMOVE_RECURSE
  "CMakeFiles/micro_apps.dir/micro_apps.cc.o"
  "CMakeFiles/micro_apps.dir/micro_apps.cc.o.d"
  "micro_apps"
  "micro_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
