# Empty dependencies file for table2_atomic_reliable.
# This may be replaced when dependencies are built.
