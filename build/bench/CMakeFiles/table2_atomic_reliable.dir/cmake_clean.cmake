file(REMOVE_RECURSE
  "CMakeFiles/table2_atomic_reliable.dir/table2_atomic_reliable.cc.o"
  "CMakeFiles/table2_atomic_reliable.dir/table2_atomic_reliable.cc.o.d"
  "table2_atomic_reliable"
  "table2_atomic_reliable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_atomic_reliable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
