# Empty compiler generated dependencies file for ablation_reader_memo.
# This may be replaced when dependencies are built.
