file(REMOVE_RECURSE
  "CMakeFiles/ablation_reader_memo.dir/ablation_reader_memo.cc.o"
  "CMakeFiles/ablation_reader_memo.dir/ablation_reader_memo.cc.o.d"
  "ablation_reader_memo"
  "ablation_reader_memo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_reader_memo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
