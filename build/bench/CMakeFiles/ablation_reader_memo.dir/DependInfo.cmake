
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_reader_memo.cc" "bench/CMakeFiles/ablation_reader_memo.dir/ablation_reader_memo.cc.o" "gcc" "bench/CMakeFiles/ablation_reader_memo.dir/ablation_reader_memo.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/nadreg_campaigns.dir/DependInfo.cmake"
  "/root/repo/build/src/adversary/CMakeFiles/nadreg_adversary.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/nadreg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nadreg_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/checker/CMakeFiles/nadreg_checker.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/nadreg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
