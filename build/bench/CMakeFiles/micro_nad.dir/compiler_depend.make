# Empty compiler generated dependencies file for micro_nad.
# This may be replaced when dependencies are built.
