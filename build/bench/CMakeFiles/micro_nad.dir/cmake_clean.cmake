file(REMOVE_RECURSE
  "CMakeFiles/micro_nad.dir/micro_nad.cc.o"
  "CMakeFiles/micro_nad.dir/micro_nad.cc.o.d"
  "micro_nad"
  "micro_nad.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_nad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
