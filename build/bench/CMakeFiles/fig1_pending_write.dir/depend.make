# Empty dependencies file for fig1_pending_write.
# This may be replaced when dependencies are built.
