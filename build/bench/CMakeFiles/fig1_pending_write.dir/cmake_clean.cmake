file(REMOVE_RECURSE
  "CMakeFiles/fig1_pending_write.dir/fig1_pending_write.cc.o"
  "CMakeFiles/fig1_pending_write.dir/fig1_pending_write.cc.o.d"
  "fig1_pending_write"
  "fig1_pending_write.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_pending_write.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
