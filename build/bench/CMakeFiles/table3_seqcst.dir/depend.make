# Empty dependencies file for table3_seqcst.
# This may be replaced when dependencies are built.
