file(REMOVE_RECURSE
  "CMakeFiles/table3_seqcst.dir/table3_seqcst.cc.o"
  "CMakeFiles/table3_seqcst.dir/table3_seqcst.cc.o.d"
  "table3_seqcst"
  "table3_seqcst.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_seqcst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
