file(REMOVE_RECURSE
  "CMakeFiles/table1_waitfree_atomic.dir/table1_waitfree_atomic.cc.o"
  "CMakeFiles/table1_waitfree_atomic.dir/table1_waitfree_atomic.cc.o.d"
  "table1_waitfree_atomic"
  "table1_waitfree_atomic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_waitfree_atomic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
