# Empty compiler generated dependencies file for table1_waitfree_atomic.
# This may be replaced when dependencies are built.
