# Empty compiler generated dependencies file for fig3_mwmr_atomic.
# This may be replaced when dependencies are built.
