file(REMOVE_RECURSE
  "CMakeFiles/fig3_mwmr_atomic.dir/fig3_mwmr_atomic.cc.o"
  "CMakeFiles/fig3_mwmr_atomic.dir/fig3_mwmr_atomic.cc.o.d"
  "fig3_mwmr_atomic"
  "fig3_mwmr_atomic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_mwmr_atomic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
