file(REMOVE_RECURSE
  "CMakeFiles/table4_infinite.dir/table4_infinite.cc.o"
  "CMakeFiles/table4_infinite.dir/table4_infinite.cc.o.d"
  "table4_infinite"
  "table4_infinite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_infinite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
