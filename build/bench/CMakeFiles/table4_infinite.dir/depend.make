# Empty dependencies file for table4_infinite.
# This may be replaced when dependencies are built.
