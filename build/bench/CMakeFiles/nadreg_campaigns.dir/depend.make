# Empty dependencies file for nadreg_campaigns.
# This may be replaced when dependencies are built.
