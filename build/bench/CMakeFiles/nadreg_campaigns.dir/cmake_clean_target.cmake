file(REMOVE_RECURSE
  "libnadreg_campaigns.a"
)
