file(REMOVE_RECURSE
  "CMakeFiles/nadreg_campaigns.dir/campaigns.cc.o"
  "CMakeFiles/nadreg_campaigns.dir/campaigns.cc.o.d"
  "libnadreg_campaigns.a"
  "libnadreg_campaigns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nadreg_campaigns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
