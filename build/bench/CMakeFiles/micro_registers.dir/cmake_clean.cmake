file(REMOVE_RECURSE
  "CMakeFiles/micro_registers.dir/micro_registers.cc.o"
  "CMakeFiles/micro_registers.dir/micro_registers.cc.o.d"
  "micro_registers"
  "micro_registers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_registers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
