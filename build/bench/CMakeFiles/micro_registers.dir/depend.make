# Empty dependencies file for micro_registers.
# This may be replaced when dependencies are built.
