file(REMOVE_RECURSE
  "CMakeFiles/ablation_collect_pipelining.dir/ablation_collect_pipelining.cc.o"
  "CMakeFiles/ablation_collect_pipelining.dir/ablation_collect_pipelining.cc.o.d"
  "ablation_collect_pipelining"
  "ablation_collect_pipelining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_collect_pipelining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
