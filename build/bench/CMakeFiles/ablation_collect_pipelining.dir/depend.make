# Empty dependencies file for ablation_collect_pipelining.
# This may be replaced when dependencies are built.
