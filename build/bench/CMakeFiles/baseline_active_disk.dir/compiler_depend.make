# Empty compiler generated dependencies file for baseline_active_disk.
# This may be replaced when dependencies are built.
