file(REMOVE_RECURSE
  "CMakeFiles/baseline_active_disk.dir/baseline_active_disk.cc.o"
  "CMakeFiles/baseline_active_disk.dir/baseline_active_disk.cc.o.d"
  "baseline_active_disk"
  "baseline_active_disk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_active_disk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
