#include "checker/history.h"

#include <algorithm>
#include <limits>
#include <sstream>

namespace nadreg::checker {

HistoryRecorder::OpHandle HistoryRecorder::BeginWrite(ProcessId p,
                                                      std::string value) {
  MutexLock lock(mu_);
  Operation op;
  op.id = ops_.size();
  op.process = p;
  op.kind = OpKind::kWrite;
  op.value = std::move(value);
  op.invoke = Tick();
  ops_.push_back(std::move(op));
  return ops_.back().id;
}

HistoryRecorder::OpHandle HistoryRecorder::BeginRead(ProcessId p) {
  MutexLock lock(mu_);
  Operation op;
  op.id = ops_.size();
  op.process = p;
  op.kind = OpKind::kRead;
  op.invoke = Tick();
  ops_.push_back(std::move(op));
  return ops_.back().id;
}

void HistoryRecorder::EndWrite(OpHandle h) {
  MutexLock lock(mu_);
  ops_.at(h).respond = Tick();
  ops_.at(h).completed = true;
}

void HistoryRecorder::EndRead(OpHandle h, std::string returned) {
  MutexLock lock(mu_);
  Operation& op = ops_.at(h);
  op.respond = Tick();
  op.completed = true;
  op.value = std::move(returned);
}

std::vector<Operation> HistoryRecorder::History() const {
  MutexLock lock(mu_);
  return ops_;
}

std::vector<Operation> HistoryRecorder::CheckableHistory() const {
  MutexLock lock(mu_);
  std::vector<Operation> out;
  out.reserve(ops_.size());
  for (const Operation& op : ops_) {
    if (op.completed) {
      out.push_back(op);
    } else if (op.kind == OpKind::kWrite) {
      // An incomplete WRITE may take effect at any time; model it as
      // allowed to linearize anywhere after its invocation.
      Operation w = op;
      w.respond = std::numeric_limits<std::uint64_t>::max();
      out.push_back(std::move(w));
    }
  }
  return out;
}

std::size_t HistoryRecorder::size() const {
  MutexLock lock(mu_);
  return ops_.size();
}

std::string FormatHistory(const std::vector<Operation>& ops) {
  std::vector<Operation> sorted = ops;
  std::sort(sorted.begin(), sorted.end(),
            [](const Operation& a, const Operation& b) {
              return a.invoke < b.invoke;
            });
  std::ostringstream os;
  for (const Operation& op : sorted) {
    os << "  [" << op.invoke << ",";
    if (op.respond == std::numeric_limits<std::uint64_t>::max()) {
      os << "inf";
    } else {
      os << op.respond;
    }
    os << "] p" << op.process << " "
       << (op.kind == OpKind::kWrite ? "WRITE(" : "READ -> ")
       << (op.value.empty() ? std::string("<initial>") : op.value)
       << (op.kind == OpKind::kWrite ? ")" : "") << "\n";
  }
  return os.str();
}

}  // namespace nadreg::checker
