/// \file
/// Register consistency checkers: atomicity (linearizability) and
/// sequential consistency, for single read/write register histories.
///
/// Both are exhaustive searches with memoization — exact decision
/// procedures, not heuristics:
///
///  * CheckAtomic: Wing–Gong style. A linearization is built left to right;
///    at each step any operation may be appended whose invocation precedes
///    the earliest response among the remaining operations (the real-time
///    constraint), and a READ may only be appended when it returns the
///    current register value. States (remaining-set, register value) are
///    memoized, which makes histories with bounded concurrency cheap.
///
///  * CheckSequentiallyConsistent: the same search without the real-time
///    constraint — candidates are each process's next operation in program
///    order. This decides serializability of the finite history; the
///    paper's Section 5.1 *infinite-execution liveness* requirement is
///    exercised separately by scenario tests (a finite checker cannot
///    refute it).
///
/// Histories may contain incomplete WRITEs (respond = +inf): they may
/// linearize anywhere after invocation or — if CheckAtomic's `allow_unused
/// pending writes` semantics apply — be omitted entirely, matching a write
/// that never took effect. Incomplete READs must be dropped before calling.
#pragma once

#include <string>
#include <vector>

#include "checker/history.h"

namespace nadreg::checker {

struct CheckResult {
  bool ok = false;
  /// On success: one witness serialization (op ids in order).
  std::vector<std::size_t> witness;
  /// On failure: a diagnostic with the formatted history.
  std::string explanation;
};

/// Decides whether `history` is atomic (linearizable) as a single
/// read/write register with the given initial value.
CheckResult CheckAtomic(const std::vector<Operation>& history,
                        const std::string& initial_value = "");

/// Decides whether `history` is sequentially consistent as a single
/// read/write register with the given initial value.
CheckResult CheckSequentiallyConsistent(
    const std::vector<Operation>& history,
    const std::string& initial_value = "");

/// Decides whether `history` is *regular* as a SINGLE-WRITER register:
/// every READ returns the value of the last WRITE that completed before
/// the READ began, or of some WRITE concurrent with it (Lamport).
/// Requires a single writer process and distinct written values;
/// incomplete WRITEs count as concurrent with everything after their
/// invocation. Atomic ⊂ regular: the gap is exactly new-old inversion,
/// which the Section 3.2 reader memo eliminates (see
/// core::SwsrRegularReader for the memo-less ablation).
CheckResult CheckRegular(const std::vector<Operation>& history,
                         const std::string& initial_value = "");

}  // namespace nadreg::checker
