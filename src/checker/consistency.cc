#include "checker/consistency.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <map>
#include <unordered_map>
#include <unordered_set>

namespace nadreg::checker {

namespace {

constexpr std::uint64_t kInf = std::numeric_limits<std::uint64_t>::max();

// Dictionary-encodes operation values so states hash compactly.
struct ValueTable {
  std::unordered_map<std::string, int> ids;
  int Intern(const std::string& v) {
    auto [it, inserted] = ids.emplace(v, static_cast<int>(ids.size()));
    return it->second;
  }
};

std::string KeyOf(const std::vector<std::uint64_t>& bits, int value_id) {
  std::string key;
  key.reserve(bits.size() * 8 + 4);
  for (std::uint64_t b : bits) key.append(reinterpret_cast<const char*>(&b), 8);
  key.append(reinterpret_cast<const char*>(&value_id), 4);
  return key;
}

// ---------------------------------------------------------------------------
// Atomicity (linearizability).
// ---------------------------------------------------------------------------

struct AtomicSearch {
  std::vector<Operation> ops;        // indexed by position
  std::vector<int> value_ids;        // interned op value
  std::vector<std::uint64_t> done;   // bitset of linearized ops
  std::size_t remaining_complete = 0;
  std::unordered_set<std::string> visited;
  std::vector<std::size_t> witness;  // op positions in linearization order
  ValueTable values;

  bool IsDone(std::size_t i) const {
    return (done[i / 64] >> (i % 64)) & 1;
  }
  void SetDone(std::size_t i) { done[i / 64] |= (1ULL << (i % 64)); }
  void ClearDone(std::size_t i) { done[i / 64] &= ~(1ULL << (i % 64)); }

  bool Dfs(int current_value_id) {
    if (remaining_complete == 0) return true;  // incomplete writes may drop
    const std::string key = KeyOf(done, current_value_id);
    if (!visited.insert(key).second) return false;

    // Earliest response among unlinearized operations: nothing invoked
    // after it may be linearized before it.
    std::uint64_t min_respond = kInf;
    for (std::size_t i = 0; i < ops.size(); ++i) {
      if (!IsDone(i)) min_respond = std::min(min_respond, ops[i].respond);
    }
    for (std::size_t i = 0; i < ops.size(); ++i) {
      if (IsDone(i)) continue;
      const Operation& op = ops[i];
      if (op.invoke > min_respond) continue;  // must come after min-respond op
      int next_value = current_value_id;
      if (op.kind == OpKind::kWrite) {
        next_value = value_ids[i];
      } else if (value_ids[i] != current_value_id) {
        continue;  // READ must return the current value
      }
      SetDone(i);
      if (op.completed) --remaining_complete;
      witness.push_back(i);
      if (Dfs(next_value)) return true;
      witness.pop_back();
      if (op.completed) ++remaining_complete;
      ClearDone(i);
    }
    return false;
  }
};

// ---------------------------------------------------------------------------
// Sequential consistency.
// ---------------------------------------------------------------------------

struct SeqSearch {
  // Per-process program-order queues of positions into `ops`.
  std::vector<Operation> ops;
  std::vector<int> value_ids;
  std::vector<std::vector<std::size_t>> queues;
  std::vector<std::size_t> pos;  // per-process progress
  std::size_t remaining_complete = 0;
  std::unordered_set<std::string> visited;
  std::vector<std::size_t> witness;
  ValueTable values;

  std::string Key(int value_id) const {
    std::string key;
    key.reserve(pos.size() * 4 + 4);
    for (std::size_t p : pos) {
      auto v = static_cast<std::uint32_t>(p);
      key.append(reinterpret_cast<const char*>(&v), 4);
    }
    key.append(reinterpret_cast<const char*>(&value_id), 4);
    return key;
  }

  bool Dfs(int current_value_id) {
    if (remaining_complete == 0) return true;
    const std::string key = Key(current_value_id);
    if (!visited.insert(key).second) return false;

    for (std::size_t q = 0; q < queues.size(); ++q) {
      if (pos[q] >= queues[q].size()) continue;
      const std::size_t i = queues[q][pos[q]];
      const Operation& op = ops[i];
      int next_value = current_value_id;
      if (op.kind == OpKind::kWrite) {
        next_value = value_ids[i];
      } else if (value_ids[i] != current_value_id) {
        continue;
      }
      ++pos[q];
      if (op.completed) --remaining_complete;
      witness.push_back(i);
      if (Dfs(next_value)) return true;
      witness.pop_back();
      if (op.completed) ++remaining_complete;
      --pos[q];
    }
    return false;
  }
};

}  // namespace

CheckResult CheckAtomic(const std::vector<Operation>& history,
                        const std::string& initial_value) {
  AtomicSearch search;
  search.ops = history;
  std::sort(search.ops.begin(), search.ops.end(),
            [](const Operation& a, const Operation& b) {
              return a.invoke < b.invoke;
            });
  const int initial_id = search.values.Intern(initial_value);
  search.value_ids.reserve(search.ops.size());
  for (const Operation& op : search.ops) {
    search.value_ids.push_back(search.values.Intern(op.value));
    if (op.completed) ++search.remaining_complete;
  }
  search.done.assign((search.ops.size() + 63) / 64, 0);

  CheckResult result;
  if (search.Dfs(initial_id)) {
    result.ok = true;
    result.witness.reserve(search.witness.size());
    for (std::size_t i : search.witness) {
      result.witness.push_back(search.ops[i].id);
    }
  } else {
    result.ok = false;
    result.explanation =
        "history is NOT atomic (no linearization exists):\n" +
        FormatHistory(history);
  }
  return result;
}

CheckResult CheckSequentiallyConsistent(const std::vector<Operation>& history,
                                        const std::string& initial_value) {
  SeqSearch search;
  search.ops = history;
  std::sort(search.ops.begin(), search.ops.end(),
            [](const Operation& a, const Operation& b) {
              return a.invoke < b.invoke;
            });
  const int initial_id = search.values.Intern(initial_value);
  std::map<ProcessId, std::size_t> queue_of;
  for (std::size_t i = 0; i < search.ops.size(); ++i) {
    const Operation& op = search.ops[i];
    search.value_ids.push_back(search.values.Intern(op.value));
    if (op.completed) ++search.remaining_complete;
    auto [it, inserted] = queue_of.emplace(op.process, search.queues.size());
    if (inserted) search.queues.emplace_back();
    search.queues[it->second].push_back(i);
  }
  search.pos.assign(search.queues.size(), 0);

  CheckResult result;
  if (search.Dfs(initial_id)) {
    result.ok = true;
    result.witness.reserve(search.witness.size());
    for (std::size_t i : search.witness) {
      result.witness.push_back(search.ops[i].id);
    }
  } else {
    result.ok = false;
    result.explanation =
        "history is NOT sequentially consistent (no serialization "
        "exists):\n" +
        FormatHistory(history);
  }
  return result;
}

CheckResult CheckRegular(const std::vector<Operation>& history,
                         const std::string& initial_value) {
  CheckResult result;

  std::vector<Operation> writes;
  std::vector<Operation> reads;
  ProcessId writer = kNoProcess;
  for (const Operation& op : history) {
    if (op.kind == OpKind::kWrite) {
      if (writer == kNoProcess) writer = op.process;
      if (op.process != writer) {
        result.ok = false;
        result.explanation = "CheckRegular requires a single writer";
        return result;
      }
      writes.push_back(op);
    } else {
      reads.push_back(op);
    }
  }
  // Single writer: writes are totally ordered by invocation.
  std::sort(writes.begin(), writes.end(),
            [](const Operation& a, const Operation& b) {
              return a.invoke < b.invoke;
            });

  for (const Operation& r : reads) {
    // The last write that completed before the read began (if any).
    const Operation* last_complete = nullptr;
    for (const Operation& w : writes) {
      if (w.completed && w.respond < r.invoke) last_complete = &w;
    }
    bool allowed = false;
    if (last_complete == nullptr) {
      allowed = (r.value == initial_value);
    } else {
      allowed = (r.value == last_complete->value);
    }
    if (!allowed) {
      // Any write concurrent with the read is also permitted.
      for (const Operation& w : writes) {
        const bool w_before_r = w.completed && w.respond < r.invoke;
        const bool r_before_w = r.respond < w.invoke;
        if (!w_before_r && !r_before_w && w.value == r.value) {
          allowed = true;
          break;
        }
      }
    }
    if (!allowed) {
      result.ok = false;
      result.explanation =
          "history is NOT regular: READ by p" + std::to_string(r.process) +
          " returned \"" + r.value +
          "\", which is neither the last completed WRITE before it nor a "
          "concurrent WRITE:\n" +
          FormatHistory(history);
      return result;
    }
  }
  result.ok = true;
  return result;
}

}  // namespace nadreg::checker
