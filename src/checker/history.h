/// \file
/// Concurrent-history recording for emulated registers.
///
/// Tests and the verification harness wrap every emulated READ/WRITE in
/// Begin*/End* calls; the recorder assigns logical invocation/response
/// timestamps from a global atomic counter. The resulting history is what
/// the checkers analyse for atomicity (linearizability) or sequential
/// consistency.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/sync.h"
#include "common/types.h"

namespace nadreg::checker {

enum class OpKind { kRead, kWrite };

struct Operation {
  std::size_t id = 0;
  ProcessId process = kNoProcess;
  OpKind kind = OpKind::kRead;
  // WRITE: the value written. READ: the value returned.
  std::string value;
  std::uint64_t invoke = 0;
  std::uint64_t respond = 0;
  bool completed = false;
};

/// Thread-safe recorder. Handles are indices into the history.
class HistoryRecorder {
 public:
  using OpHandle = std::size_t;

  OpHandle BeginWrite(ProcessId p, std::string value);
  OpHandle BeginRead(ProcessId p);
  /// Completes a WRITE.
  void EndWrite(OpHandle h);
  /// Completes a READ with the value it returned.
  void EndRead(OpHandle h, std::string returned);

  /// All operations recorded so far (completed and not).
  std::vector<Operation> History() const;
  /// Completed operations only — what the checkers consume. Incomplete
  /// WRITEs are kept (a crashed writer's WRITE may have taken effect and
  /// the checker must be allowed to linearize it); incomplete READs are
  /// dropped (they returned nothing, so they constrain nothing).
  std::vector<Operation> CheckableHistory() const;

  std::size_t size() const;

 private:
  std::uint64_t Tick() { return clock_.fetch_add(1, std::memory_order_relaxed) + 1; }

  mutable Mutex mu_;
  std::atomic<std::uint64_t> clock_{0};
  std::vector<Operation> ops_ GUARDED_BY(mu_);
};

/// Human-readable rendering of a history (for counterexample output).
std::string FormatHistory(const std::vector<Operation>& ops);

}  // namespace nadreg::checker
