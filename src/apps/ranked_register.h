/// \file
/// Ranked register and Active Disk Paxos (Chockler & Malkhi, PODC 2002) —
/// the related-work baseline the paper contrasts itself with ([22]).
///
/// A *ranked register* stores a (rank, value) pair and offers:
///   rr-read(k):     returns the current (write-rank, value) and ensures no
///                   write with rank < k can commit afterwards;
///   rr-write(k, v): either COMMITS (installing (k, v)) or ABORTS —
///                   aborting only if some operation with rank > k was seen.
///
/// It is implementable from fail-prone *read-modify-write* blocks (active
/// disks) but NOT from plain read/write blocks — which is precisely the
/// boundary this repository's main library lives on: the paper's plain
/// NADs support uniform registers only with infinitely many blocks,
/// whereas one RMW block per disk yields uniform consensus outright.
///
/// Per-disk implementation (one RMW block holding rR, wR, v):
///   rr-read(k):  RMW { rR := max(rR, k) }, return previous (wR, v).
///   rr-write(k): RMW { if rR <= k and wR <= k then (wR, v) := (k, val) },
///                committed iff the guard held.
/// Fault tolerance: 2t+1 disks; reads take the max write-rank over a
/// majority; writes commit iff every response in a majority committed.
///
/// ActiveDiskPaxos is the classic round-based consensus over one ranked
/// register: read with your rank, adopt any value found, try to write it;
/// commit decides. It is UNIFORM — no process count anywhere — unlike
/// apps::DiskPaxos, whose blocks are indexed by process. The baseline
/// bench (bench/baseline_active_disk) measures exactly that contrast.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/codec.h"
#include "common/rng.h"
#include "common/status.h"
#include "core/config.h"
#include "sim/rmw_client.h"

namespace nadreg::apps {

/// Contents of one ranked-register block on one disk.
struct RankedBlock {
  std::uint64_t read_rank = 0;   // rR: highest rank promised to a read
  std::uint64_t write_rank = 0;  // wR: rank of the current value
  std::string value;

  friend bool operator==(const RankedBlock&, const RankedBlock&) = default;
};

std::string EncodeRankedBlock(const RankedBlock& b);
[[nodiscard]] Expected<RankedBlock> DecodeRankedBlock(std::string_view bytes);

class RankedRegister {
 public:
  struct ReadResult {
    std::uint64_t write_rank = 0;
    std::string value;  // empty when write_rank == 0 (never written)
  };

  /// One endpoint per process; participants share `object`. Works against
  /// any RMW substrate — the real-time ActiveDiskFarm or the explorer's
  /// DetFarm.
  RankedRegister(sim::ActiveDiskClient& farm, const core::FarmConfig& cfg,
                 std::uint32_t object, ProcessId self);

  /// rr-read with rank k. Wait-free (majority of 2t+1 disks). On an
  /// abandoned farm the wait fails fast and the result may be stale (a
  /// subsequent Write at this rank will not commit).
  ReadResult Read(std::uint64_t rank);

  /// rr-write with rank k. Returns true iff the write committed.
  bool Write(std::uint64_t rank, const std::string& value);

 private:
  RegisterId BlockOn(DiskId d) const;

  sim::ActiveDiskClient& farm_;
  core::FarmConfig cfg_;
  std::uint32_t object_;
  ProcessId self_;
};

/// Uniform consensus for unboundedly many processes over active disks.
class ActiveDiskPaxos {
 public:
  ActiveDiskPaxos(sim::ActiveDiskClient& farm, const core::FarmConfig& cfg,
                  std::uint32_t object, ProcessId self);

  /// One ballot at the given rank; nullopt = aborted (contention).
  std::optional<std::string> TryPropose(const std::string& value,
                                        std::uint64_t rank);

  /// Retries with increasing ranks and randomized backoff until decided.
  std::string Propose(const std::string& value, Rng& rng);

  std::uint64_t BallotsTried() const { return ballots_; }

 private:
  std::uint64_t RankFor(std::uint64_t attempt) const;

  RankedRegister reg_;
  ProcessId self_;
  std::uint64_t attempt_ = 0;
  std::uint64_t ballots_ = 0;
};

}  // namespace nadreg::apps
