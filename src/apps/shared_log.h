/// \file
/// A totally ordered, fault-tolerant shared log built directly from the
/// Section 6 primitives — a derived application showing the name snapshot
/// is useful beyond register emulation.
///
/// Append(payload): take a name snapshot under a fresh name, then store
/// (payload, snapshot) in the one-shot register of that name — exactly a
/// Fig. 3 WRITE that is never overwritten logically.
///
/// Read(): take a snapshot, fetch every member's record, and order entries
/// by (stored snapshot, name). Total Ordering makes stored snapshots an
/// inclusion chain, so all readers agree on one global order, and Validity/
/// Integrity give the usual session guarantees: an append that completed
/// before a read started is always visible to that read, and entries never
/// disappear or reorder between reads.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/base_register.h"
#include "core/config.h"
#include "core/mwmr_atomic.h"

namespace nadreg::apps {

class SharedLog {
 public:
  struct Entry {
    ProcessId author = 0;
    std::string payload;
  };

  /// One endpoint per process; all participants share `object`.
  SharedLog(BaseRegisterClient& client, const core::FarmConfig& farm,
            std::uint32_t object, ProcessId self);

  /// Appends a payload. Wait-free; tolerates t full disk crashes.
  void Append(const std::string& payload);

  /// Returns the log in its global order. Entries appended concurrently
  /// with this read may or may not appear; completed ones always do.
  std::vector<Entry> Read();

 private:
  core::MwmrAtomic reg_;  // we reuse its name/snapshot/value machinery
  ProcessId self_;
};

}  // namespace nadreg::apps
