/// \file
/// Lamport's fast mutual exclusion (TOCS 1987) translated to run on
/// network-attached disks — the translation the paper's introduction asks
/// about: "Can we uniformly implement such registers with NADs? Such an
/// implementation would allow an automatic translation of these MX
/// algorithms, and many others, to use NADs."
///
/// The algorithm is verbatim Lamport: shared MWMR registers x and y and a
/// per-process flag array b[1..n], with the fast path taking O(1) register
/// operations in the absence of contention. Every shared register here is
/// an emulated register from core/ — the Fig. 3 wait-free atomic MWMR
/// construction over 2t+1 fail-prone disks — so the mutex tolerates t full
/// disk crashes with no change to Lamport's code.
///
/// Note the boundary the paper draws: the *registers* are uniform (any
/// process may touch x and y), but Lamport's algorithm itself indexes b by
/// process, so the lock is instantiated for n known processes. A uniform
/// MX (Attiya–Bortnikov) would need the uniform MWMR registers whose
/// finite-register implementation Theorem 2 rules out — which is exactly
/// why this demo runs on the infinitely-many-registers construction.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/base_register.h"
#include "core/config.h"
#include "core/mwmr_atomic.h"

namespace nadreg::apps {

class FastMutex {
 public:
  /// One endpoint per process. All participants use the same `object`
  /// base id; `pid` must be in [1, n] (0 is the algorithm's "free" value).
  FastMutex(BaseRegisterClient& client, const core::FarmConfig& farm,
            std::uint32_t object, std::uint32_t n, std::uint32_t pid);

  /// Acquires the lock (Lamport's entry protocol; may loop under
  /// contention, taking the slow path).
  void Lock();

  /// Releases the lock.
  void Unlock();

  /// True if the last Lock() used the contention-free fast path.
  bool LastAcquireWasFast() const { return last_fast_; }

 private:
  std::uint64_t ReadNum(core::MwmrAtomic& reg);
  void WriteNum(core::MwmrAtomic& reg, std::uint64_t v);

  std::uint32_t n_;
  std::uint32_t pid_;
  core::MwmrAtomic x_;
  core::MwmrAtomic y_;
  std::vector<std::unique_ptr<core::MwmrAtomic>> b_;  // b_[j], 0-based j = pid-1
  bool last_fast_ = false;
};

}  // namespace nadreg::apps
