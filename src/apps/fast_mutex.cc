#include "apps/fast_mutex.h"

#include <cassert>
#include <chrono>
#include <thread>

namespace nadreg::apps {

namespace {
// Distinct sub-objects for x, y and b[1..n] within the mutex's object id
// space. core/address.h gives each object 10 bits; we carve the mutex's
// registers out of consecutive object ids starting at `object`.
constexpr std::uint32_t kX = 0;
constexpr std::uint32_t kY = 1;
constexpr std::uint32_t kB0 = 2;

std::string Num(std::uint64_t v) { return std::to_string(v); }
}  // namespace

FastMutex::FastMutex(BaseRegisterClient& client, const core::FarmConfig& farm,
                     std::uint32_t object, std::uint32_t n, std::uint32_t pid)
    : n_(n),
      pid_(pid),
      x_(client, farm, object + kX, pid),
      y_(client, farm, object + kY, pid) {
  assert(pid >= 1 && pid <= n && "pid must be in [1, n]");
  b_.reserve(n);
  for (std::uint32_t j = 1; j <= n; ++j) {
    b_.push_back(std::make_unique<core::MwmrAtomic>(client, farm,
                                                    object + kB0 + j, pid));
  }
}

std::uint64_t FastMutex::ReadNum(core::MwmrAtomic& reg) {
  auto v = reg.Read();
  return v ? std::stoull(*v) : 0;
}

void FastMutex::WriteNum(core::MwmrAtomic& reg, std::uint64_t v) {
  reg.Write(Num(v));
}

void FastMutex::Lock() {
  // Lamport's fast mutual exclusion, entry protocol, verbatim — each
  // shared variable is an emulated fault-tolerant register on the disks.
  for (;;) {
    WriteNum(*b_[pid_ - 1], 1);  // b[i] := true
    WriteNum(x_, pid_);          // x := i
    if (ReadNum(y_) != 0) {      // contention: someone holds or races
      WriteNum(*b_[pid_ - 1], 0);
      while (ReadNum(y_) != 0) std::this_thread::sleep_for(std::chrono::microseconds(200));
      continue;
    }
    WriteNum(y_, pid_);  // y := i
    if (ReadNum(x_) != pid_) {
      // Slow path: another process wrote x after us.
      WriteNum(*b_[pid_ - 1], 0);
      for (std::uint32_t j = 1; j <= n_; ++j) {
        while (ReadNum(*b_[j - 1]) != 0) std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
      if (ReadNum(y_) != pid_) {
        while (ReadNum(y_) != 0) std::this_thread::sleep_for(std::chrono::microseconds(200));
        continue;
      }
      last_fast_ = false;
      return;  // y == i: we win the slow path
    }
    last_fast_ = true;
    return;  // fast path: x == i and y was free
  }
}

void FastMutex::Unlock() {
  WriteNum(y_, 0);
  WriteNum(*b_[pid_ - 1], 0);
}

}  // namespace nadreg::apps
