#include "apps/shared_log.h"

#include <algorithm>
#include <cassert>

namespace nadreg::apps {

SharedLog::SharedLog(BaseRegisterClient& client, const core::FarmConfig& farm,
                     std::uint32_t object, ProcessId self)
    : reg_(client, farm, object, self), self_(self) {}

void SharedLog::Append(const std::string& payload) {
  // A log entry is a Fig. 3 WRITE whose record is never superseded
  // logically — Read() collects all of them instead of taking the max.
  reg_.Write(payload);
}

std::vector<SharedLog::Entry> SharedLog::Read() {
  auto records = reg_.CollectAll();
  // Global order: by stored snapshot size (an inclusion chain, by Total
  // Ordering), then by author name for entries with identical snapshots.
  std::sort(records.begin(), records.end(), [](const auto& a, const auto& b) {
    if (a.second.snapshot.size() != b.second.snapshot.size()) {
      return a.second.snapshot.size() < b.second.snapshot.size();
    }
    return a.first < b.first;
  });
  std::vector<Entry> out;
  out.reserve(records.size());
  for (auto& [name, rec] : records) {
    out.push_back(Entry{name.pid, std::move(rec.value)});
  }
  return out;
}

}  // namespace nadreg::apps
