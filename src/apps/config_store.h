/// \file
/// A fault-tolerant configuration store on network-attached disks — the
/// kind of coordination-free building block the paper's model supports.
///
/// Semantics: a key/value map with totally ordered updates. Set(key, v)
/// appends an update record to the Section 6 shared log; Get/Snapshot
/// replay the log's global order (all readers agree on it, by the name
/// snapshot's Total Ordering). There is no leader, no consensus, and no
/// bound on the number of clients — writes are wait-free and survive up to
/// t full disk crashes.
///
/// Last-writer-wins is well-defined BECAUSE the log order is global: two
/// concurrent Set("k", ...) land in the same order for every observer,
/// which a plain register emulation per key could not guarantee across
/// keys (and a uniform finite-register MWMR emulation cannot exist at all
/// — Theorem 2; this store is the "larger module" route the paper's
/// introduction suggests: implement a coarser object directly instead of
/// translating register by register).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "apps/shared_log.h"
#include "common/base_register.h"
#include "core/config.h"

namespace nadreg::apps {

class ConfigStore {
 public:
  /// One endpoint per client process; all share `object`.
  ConfigStore(BaseRegisterClient& client, const core::FarmConfig& farm,
              std::uint32_t object, ProcessId self);

  /// Sets a key. Wait-free; visible to every later Get of any client.
  void Set(const std::string& key, const std::string& value);

  /// Deletes a key (a tombstone update).
  void Erase(const std::string& key);

  /// Reads one key. nullopt if unset (or erased).
  std::optional<std::string> Get(const std::string& key);

  /// A consistent snapshot of the whole map.
  std::map<std::string, std::string> Snapshot();

  /// Number of updates ever applied (for introspection/benches).
  std::size_t UpdateCount();

 private:
  std::map<std::string, std::string> Replay();

  SharedLog log_;
};

}  // namespace nadreg::apps
