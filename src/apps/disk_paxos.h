/// \file
/// Disk Paxos (Gafni & Lamport, DISC 2000) on the nadreg NAD substrate —
/// the system the paper cites as the motivation for network-attached-disk
/// shared memory (Section 1).
///
/// Consensus for n known processes over 2t+1 disks, of which t may crash.
/// Each process p owns one block per disk holding its disk-paxos record
/// (mbal, bal, inp). A ballot proceeds in two phases; in each phase the
/// process writes its record to its block on every disk and reads the
/// blocks of all other processes from a majority of disks. Seeing a higher
/// mbal aborts the ballot.
///
/// Unlike the registers library this application is *not* uniform — Disk
/// Paxos indexes blocks by process, so n must be known. That contrast is
/// the paper's point: Disk Paxos-style algorithms work on NADs, but a
/// uniform translation layer of MWMR registers cannot exist with finitely
/// many blocks (Theorem 2).
///
/// Note the model difference the paper highlights (Related work): Disk
/// Paxos was specified for a synchronous fail-detect model; here it runs in
/// the asynchronous model where a non-responding disk is indistinguishable
/// from a slow one — safety is unaffected (it never depended on timing),
/// and liveness holds once a single proposer runs alone with a majority of
/// disks responsive, which is the same partial-synchrony assumption Paxos
/// always needs.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/base_register.h"
#include "common/codec.h"
#include "common/rng.h"
#include "core/config.h"

namespace nadreg::apps {

/// One process's disk block contents.
struct DiskBlock {
  std::uint64_t mbal = 0;  // highest ballot this process has started
  std::uint64_t bal = 0;   // highest ballot for which inp was set
  std::string inp;         // value proposed at ballot `bal` (empty: none)

  friend bool operator==(const DiskBlock&, const DiskBlock&) = default;
};

std::string EncodeDiskBlock(const DiskBlock& b);
[[nodiscard]] Expected<DiskBlock> DecodeDiskBlock(std::string_view bytes);

class DiskPaxos {
 public:
  /// `object` scopes the on-disk block addresses; all participants of one
  /// consensus instance use the same object id. `pid` must be in [0, n).
  DiskPaxos(BaseRegisterClient& client, const core::FarmConfig& farm,
            std::uint32_t object, std::uint32_t n, std::uint32_t pid);

  /// Attempts one ballot for `value`. Returns the chosen value on success
  /// (which may be another process's value, per consensus semantics), or
  /// nullopt if the ballot was aborted by a competing higher ballot.
  std::optional<std::string> TryPropose(const std::string& value);

  /// Retries ballots with randomized backoff until a value is chosen.
  /// Lives under the usual Paxos assumption (eventually one proposer runs
  /// long enough alone); terminates in every test/bench configuration.
  std::string Propose(const std::string& value, Rng& rng);

  /// Ballots attempted so far (for the harness).
  std::uint64_t BallotsTried() const { return ballots_tried_; }

 private:
  enum class PhaseResult { kOk, kAborted };

  /// Writes own block to all disks, reads everyone's blocks from a
  /// majority of disks. On success fills `blocks_seen` with the freshest
  /// record per other process.
  PhaseResult RunPhase(std::vector<DiskBlock>* blocks_seen);

  RegisterId BlockOf(DiskId d, std::uint32_t pid) const;

  BaseRegisterClient& client_;
  core::FarmConfig farm_;
  std::uint32_t object_;
  std::uint32_t n_;
  std::uint32_t pid_;
  DiskBlock dblock_;
  std::uint64_t ballots_tried_ = 0;
};

}  // namespace nadreg::apps
