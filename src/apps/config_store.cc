#include "apps/config_store.h"

#include "common/codec.h"

namespace nadreg::apps {

namespace {

constexpr std::uint8_t kSet = 1;
constexpr std::uint8_t kErase = 2;

std::string EncodeUpdate(std::uint8_t op, const std::string& key,
                         const std::string& value) {
  std::string out;
  Encoder e(&out);
  e.PutU8(op);
  e.PutBytes(key);
  e.PutBytes(value);
  return out;
}

}  // namespace

ConfigStore::ConfigStore(BaseRegisterClient& client,
                         const core::FarmConfig& farm, std::uint32_t object,
                         ProcessId self)
    : log_(client, farm, object, self) {}

void ConfigStore::Set(const std::string& key, const std::string& value) {
  log_.Append(EncodeUpdate(kSet, key, value));
}

void ConfigStore::Erase(const std::string& key) {
  log_.Append(EncodeUpdate(kErase, key, ""));
}

std::map<std::string, std::string> ConfigStore::Replay() {
  std::map<std::string, std::string> state;
  for (const SharedLog::Entry& entry : log_.Read()) {
    Decoder d(entry.payload);
    auto op = d.GetU8();
    if (!op) continue;  // skip malformed (cannot happen via this API)
    auto key = d.GetBytes();
    if (!key) continue;
    auto value = d.GetBytes();
    if (!value) continue;
    if (*op == kSet) {
      state[*key] = std::move(*value);
    } else if (*op == kErase) {
      state.erase(*key);
    }
  }
  return state;
}

std::optional<std::string> ConfigStore::Get(const std::string& key) {
  auto state = Replay();
  auto it = state.find(key);
  if (it == state.end()) return std::nullopt;
  return it->second;
}

std::map<std::string, std::string> ConfigStore::Snapshot() { return Replay(); }

std::size_t ConfigStore::UpdateCount() { return log_.Read().size(); }

}  // namespace nadreg::apps
