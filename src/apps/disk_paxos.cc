#include "apps/disk_paxos.h"

#include <memory>
#include <thread>
#include <utility>

#include "common/quorum_wait.h"
#include "common/sync.h"
#include "core/address.h"

namespace nadreg::apps {

std::string EncodeDiskBlock(const DiskBlock& b) {
  std::string out;
  Encoder e(&out);
  e.PutU64(b.mbal);
  e.PutU64(b.bal);
  e.PutBytes(b.inp);
  return out;
}

Expected<DiskBlock> DecodeDiskBlock(std::string_view bytes) {
  if (bytes.empty()) return DiskBlock{};  // untouched block
  Decoder d(bytes);
  DiskBlock b;
  auto mbal = d.GetU64();
  if (!mbal) return mbal.status();
  auto bal = d.GetU64();
  if (!bal) return bal.status();
  auto inp = d.GetBytes();
  if (!inp) return inp.status();
  if (!d.AtEnd()) return Status::Invalid("DiskBlock: trailing bytes");
  b.mbal = *mbal;
  b.bal = *bal;
  b.inp = std::move(*inp);
  return b;
}

namespace {

/// Completion state of one two-phase round: per-disk progress plus the
/// freshest record seen for every process.
struct PhaseState {
  Mutex mu;
  CondVar cv;
  // set before any handler runs, read-only thereafter
  // lint-allow(tsa-coverage): written pre-publication
  std::uint32_t reads_needed_per_disk = 0;
  std::vector<std::uint32_t> reads_done GUARDED_BY(mu);  // per disk
  std::uint32_t disks_complete GUARDED_BY(mu) = 0;
  std::uint64_t max_mbal_seen GUARDED_BY(mu) = 0;
  // Per process, by max bal.
  std::vector<DiskBlock> freshest GUARDED_BY(mu);
};

}  // namespace

DiskPaxos::DiskPaxos(BaseRegisterClient& client, const core::FarmConfig& farm,
                     std::uint32_t object, std::uint32_t n, std::uint32_t pid)
    : client_(client), farm_(farm), object_(object), n_(n), pid_(pid) {}

RegisterId DiskPaxos::BlockOf(DiskId d, std::uint32_t pid) const {
  return RegisterId{d, core::MakeBlock(object_, core::Component::kScratch, pid)};
}

DiskPaxos::PhaseResult DiskPaxos::RunPhase(std::vector<DiskBlock>* blocks_seen) {
  auto state = std::make_shared<PhaseState>();
  state->reads_needed_per_disk = n_ - 1;
  state->reads_done.assign(farm_.num_disks(), 0);
  state->freshest.assign(n_, DiskBlock{});

  const std::string record = EncodeDiskBlock(dblock_);
  const ProcessId self = pid_;
  // Handlers capture only values and the shared state — a trailing
  // completion may run after this frame (and even *this*) are gone.
  BaseRegisterClient* client = &client_;

  for (DiskId d = 0; d < farm_.num_disks(); ++d) {
    // Disk Paxos discipline: on each disk, first write our block, then
    // read everyone else's. The read handlers fold results into the
    // phase state and count the disk as complete when all reads landed.
    std::vector<std::pair<std::uint32_t, RegisterId>> peers;
    for (std::uint32_t q = 0; q < n_; ++q) {
      if (q != pid_) peers.emplace_back(q, BlockOf(d, q));
    }
    client_.IssueWrite(
        self, BlockOf(d, pid_), record,
        [client, state, d, self, peers = std::move(peers)] {
          if (peers.empty()) {  // single proposer: nothing to read back
            {
              MutexLock lock(state->mu);
              ++state->disks_complete;
            }
            state->cv.NotifyAll();
            client->NoteCompletion(self);
            return;
          }
          for (const auto& [q, reg] : peers) {
            client->IssueRead(
                self, reg, [client, state, d, q, self](Value bytes) {
                  auto block = DecodeDiskBlock(bytes);
                  {
                    MutexLock lock(state->mu);
                    if (block.ok()) {
                      if (block->mbal > state->max_mbal_seen) {
                        state->max_mbal_seen = block->mbal;
                      }
                      if (block->bal > state->freshest[q].bal) {
                        state->freshest[q] = std::move(*block);
                      }
                    }
                    if (++state->reads_done[d] ==
                        state->reads_needed_per_disk) {
                      ++state->disks_complete;
                    }
                  }
                  state->cv.NotifyAll();
                  client->NoteCompletion(self);
                });
          }
          client->NoteCompletion(self);
        });
  }

  // Wait for a majority of disks, or an abort signal (a higher mbal).
  std::function<void()> wake = [state] {
    MutexLock lock(state->mu);
    state->cv.NotifyAll();
  };
  MutexLock lock(state->mu);
  const bool alive = BlockedQuorumWait(
      client_, self, state->mu, state->cv, wake, std::nullopt,
      // A single delivery may complete a disk (or raise max_mbal_seen),
      // so never report this wait as delivery-commutable.
      [] { return std::size_t{1}; },
      [&] {
        state->mu.AssertHeld();  // predicates run under the lock
        return state->disks_complete >= farm_.quorum() ||
               state->max_mbal_seen > dblock_.mbal;
      });
  if (!alive) return PhaseResult::kAborted;  // abandoned farm: give up
  if (state->max_mbal_seen > dblock_.mbal) return PhaseResult::kAborted;
  *blocks_seen = state->freshest;
  return PhaseResult::kOk;
}

std::optional<std::string> DiskPaxos::TryPropose(const std::string& value) {
  ++ballots_tried_;
  // Fresh ballot, unique to this process: next multiple-of-n slot + pid.
  const std::uint64_t round = dblock_.mbal / n_ + 1;
  dblock_.mbal = round * n_ + pid_;

  // Phase 1: learn whether an earlier ballot may have chosen a value.
  std::vector<DiskBlock> seen;
  if (RunPhase(&seen) == PhaseResult::kAborted) return std::nullopt;

  DiskBlock best;
  for (const DiskBlock& b : seen) {
    if (b.bal > best.bal) best = b;
  }
  if (dblock_.bal > best.bal) best = dblock_;
  const std::string chosen = (best.bal > 0) ? best.inp : value;

  // Phase 2: commit the ballot to `chosen`.
  dblock_.bal = dblock_.mbal;
  dblock_.inp = chosen;
  if (RunPhase(&seen) == PhaseResult::kAborted) return std::nullopt;
  return chosen;
}

std::string DiskPaxos::Propose(const std::string& value, Rng& rng) {
  for (;;) {
    if (auto chosen = TryPropose(value)) return *chosen;
    // Randomized backoff so one proposer eventually runs alone.
    std::this_thread::sleep_for(
        std::chrono::microseconds(rng.Between(100, 2000) * ballots_tried_));
  }
}

}  // namespace nadreg::apps
