#include "apps/ranked_register.h"

#include <memory>
#include <thread>
#include <vector>

#include "common/quorum_wait.h"
#include "common/sync.h"
#include "core/address.h"

namespace nadreg::apps {

std::string EncodeRankedBlock(const RankedBlock& b) {
  std::string out;
  Encoder e(&out);
  e.PutU64(b.read_rank);
  e.PutU64(b.write_rank);
  e.PutBytes(b.value);
  return out;
}

Expected<RankedBlock> DecodeRankedBlock(std::string_view bytes) {
  if (bytes.empty()) return RankedBlock{};
  Decoder d(bytes);
  RankedBlock b;
  auto rr = d.GetU64();
  if (!rr) return rr.status();
  auto wr = d.GetU64();
  if (!wr) return wr.status();
  auto value = d.GetBytes();
  if (!value) return value.status();
  if (!d.AtEnd()) return Status::Invalid("RankedBlock: trailing bytes");
  b.read_rank = *rr;
  b.write_rank = *wr;
  b.value = std::move(*value);
  return b;
}

namespace {

/// Majority-wait state shared with the per-disk RMW handlers.
struct QuorumState {
  Mutex mu;
  CondVar cv;
  std::uint32_t responses GUARDED_BY(mu) = 0;
  std::uint32_t commits GUARDED_BY(mu) = 0;  // writes only
  // Reads only: max write_rank seen.
  RankedBlock freshest GUARDED_BY(mu);
};

// Waits for a majority of RMW responses, reporting the blocked state to a
// deterministic scheduler. Returns false on an abandoned farm.
bool AwaitMajority(sim::ActiveDiskClient& farm, ProcessId self,
                   const std::shared_ptr<QuorumState>& state,
                   std::uint32_t quorum) {
  std::function<void()> wake = [state] {
    MutexLock lock(state->mu);
    state->cv.NotifyAll();
  };
  MutexLock lock(state->mu);
  return BlockedQuorumWait(
      farm, self, state->mu, state->cv, wake, std::nullopt,
      [&]() -> std::size_t {
        state->mu.AssertHeld();
        return state->responses < quorum ? quorum - state->responses
                                         : std::size_t{0};
      },
      [&] {
        state->mu.AssertHeld();
        return state->responses >= quorum;
      });
}

}  // namespace

RankedRegister::RankedRegister(sim::ActiveDiskClient& farm,
                               const core::FarmConfig& cfg,
                               std::uint32_t object, ProcessId self)
    : farm_(farm), cfg_(cfg), object_(object), self_(self) {}

RegisterId RankedRegister::BlockOn(DiskId d) const {
  return RegisterId{d, core::MakeBlock(object_, core::Component::kScratch, 0)};
}

RankedRegister::ReadResult RankedRegister::Read(std::uint64_t rank) {
  auto state = std::make_shared<QuorumState>();
  // Captured by value: trailing completions may run after *this* (and the
  // calling frame) are gone; only the farm and the state must stay alive.
  sim::ActiveDiskClient* farm = &farm_;
  const ProcessId self = self_;
  for (DiskId d = 0; d < cfg_.num_disks(); ++d) {
    farm_.IssueRmw(
        self_, BlockOn(d),
        [rank](const Value& current) {
          auto block = DecodeRankedBlock(current);
          RankedBlock b = block.ok() ? *block : RankedBlock{};
          if (rank > b.read_rank) b.read_rank = rank;  // the read promise
          return EncodeRankedBlock(b);
        },
        [state, farm, self](Value previous) {
          auto block = DecodeRankedBlock(previous);
          {
            MutexLock lock(state->mu);
            if (block.ok() && block->write_rank > state->freshest.write_rank) {
              state->freshest = std::move(*block);
            }
            ++state->responses;
          }
          state->cv.NotifyAll();
          farm->NoteCompletion(self);
        });
  }
  (void)AwaitMajority(farm_, self_, state, cfg_.quorum());
  MutexLock lock(state->mu);
  return ReadResult{state->freshest.write_rank, state->freshest.value};
}

bool RankedRegister::Write(std::uint64_t rank, const std::string& value) {
  auto state = std::make_shared<QuorumState>();
  sim::ActiveDiskClient* farm = &farm_;
  const ProcessId self = self_;
  for (DiskId d = 0; d < cfg_.num_disks(); ++d) {
    farm_.IssueRmw(
        self_, BlockOn(d),
        [rank, value](const Value& current) {
          auto block = DecodeRankedBlock(current);
          RankedBlock b = block.ok() ? *block : RankedBlock{};
          if (b.read_rank <= rank && b.write_rank <= rank) {
            b.write_rank = rank;  // commit on this disk
            b.value = value;
          }
          return EncodeRankedBlock(b);
        },
        [state, rank, farm, self](Value previous) {
          auto block = DecodeRankedBlock(previous);
          const RankedBlock b = block.ok() ? *block : RankedBlock{};
          {
            MutexLock lock(state->mu);
            // The guard is over the PRE-state: committed iff it held.
            if (b.read_rank <= rank && b.write_rank <= rank) ++state->commits;
            ++state->responses;
          }
          state->cv.NotifyAll();
          farm->NoteCompletion(self);
        });
  }
  if (!AwaitMajority(farm_, self_, state, cfg_.quorum())) return false;
  MutexLock lock(state->mu);
  // Commit iff every disk in the majority committed: any abort means a
  // higher-ranked operation got there first.
  return state->commits >= cfg_.quorum() &&
         state->commits == state->responses;
}

ActiveDiskPaxos::ActiveDiskPaxos(sim::ActiveDiskClient& farm,
                                 const core::FarmConfig& cfg,
                                 std::uint32_t object, ProcessId self)
    : reg_(farm, cfg, object, self), self_(self) {}

std::uint64_t ActiveDiskPaxos::RankFor(std::uint64_t attempt) const {
  // Unique per (attempt, process): attempts dominate, pid breaks ties.
  return (attempt << 20) | (self_ & 0xfffff);
}

std::optional<std::string> ActiveDiskPaxos::TryPropose(
    const std::string& value, std::uint64_t rank) {
  ++ballots_;
  auto read = reg_.Read(rank);
  const std::string& candidate = read.write_rank > 0 ? read.value : value;
  if (reg_.Write(rank, candidate)) return candidate;
  return std::nullopt;
}

std::string ActiveDiskPaxos::Propose(const std::string& value, Rng& rng) {
  for (;;) {
    ++attempt_;
    if (auto chosen = TryPropose(value, RankFor(attempt_))) return *chosen;
    std::this_thread::sleep_for(
        std::chrono::microseconds(rng.Between(100, 2000) * attempt_));
  }
}

}  // namespace nadreg::apps
