/// \file
/// The unified fault-injection interface every disk substrate implements.
///
/// The paper's subject is *fail-prone* base registers (Section 2): blocks
/// that crash (unresponsive mode), answer slowly, or sit behind a network
/// that delays, drops or severs connections. Before this interface each
/// backend grew its own ad-hoc crash entry points (SimFarm::CrashDisk,
/// NadServer::CrashDisk, ...); FaultSink unifies them so one FaultPlan
/// (fault_plan.h) driven by one FaultInjector (injector.h) can target the
/// randomized simulation, the adversary-controlled farm, the active-disk
/// farm, or a cluster of real TCP disk daemons interchangeably.
///
/// The two crash faults are the paper's model and every sink must
/// implement them. The transport faults (delay / drop / disconnect /
/// stall / heal) only make sense for substrates with a wire; they default
/// to no-ops so purely simulated farms remain valid sinks.
///
/// Ownership/threading contract: sinks outlive any FaultInjector driving
/// them, and every method must be safe to call from the injector's
/// scheduling thread while the substrate serves operations concurrently.
#pragma once

#include <chrono>
#include <cstdint>

#include "common/types.h"

namespace nadreg::faults {

/// Farm-level fault target. DiskId arguments address the disk within the
/// farm; a sink representing a single disk daemon may ignore them.
class FaultSink {
 public:
  virtual ~FaultSink() = default;

  /// Crashes one register: it stops responding to all operations, forever
  /// (the paper's unresponsive failure mode, Jayanti–Chandra–Toueg).
  virtual void CrashRegister(const RegisterId& r) = 0;

  /// Crashes a whole disk: all (infinitely many) registers of the disk
  /// stop responding, forever.
  virtual void CrashDisk(DiskId d) = 0;

  /// Sets the per-request service delay range for a disk (a slow disk —
  /// indistinguishable from a crashed one for any finite observation).
  virtual void DelayDisk(DiskId d, std::uint64_t min_us,
                         std::uint64_t max_us) {
    (void)d;
    (void)min_us;
    (void)max_us;
  }

  /// Drops each incoming request with probability permille/1000 (lossy
  /// link / flaky controller). Dropped requests are swallowed silently,
  /// like a crash that only afflicts some operations.
  virtual void DropRequests(DiskId d, std::uint32_t permille) {
    (void)d;
    (void)permille;
  }

  /// Severs every currently-established connection to the disk. Unlike a
  /// crash this is *recoverable*: the disk keeps listening and a client
  /// with reconnect support resumes (nad::NadClient's retry path).
  virtual void DisconnectDisk(DiskId d) { (void)d; }

  /// Stalls the disk completely for `d` — requests are held, not dropped,
  /// and served once the stall elapses (a long GC pause / controller
  /// brown-out).
  virtual void StallDisk(DiskId d, std::chrono::milliseconds dur) {
    (void)d;
    (void)dur;
  }

  /// Clears every *recoverable* fault (delay, drop, stall, partition) on
  /// the disk. Crashes are permanent by the model and are not healed.
  virtual void Heal(DiskId d) { (void)d; }
};

}  // namespace nadreg::faults
