#include "faults/fault_plan.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <utility>

namespace nadreg::faults {
namespace {

// Splits a line into whitespace-separated tokens, stripping `#` comments.
std::vector<std::string> Tokenize(std::string_view line) {
  if (auto hash = line.find('#'); hash != std::string_view::npos) {
    line = line.substr(0, hash);
  }
  std::vector<std::string> out;
  std::istringstream in{std::string(line)};
  std::string tok;
  while (in >> tok) out.push_back(tok);
  return out;
}

// Parses "250ms" / "10us" / "2s" into microseconds.
Expected<std::chrono::microseconds> ParseDuration(const std::string& s) {
  std::size_t pos = 0;
  unsigned long long n = 0;
  try {
    n = std::stoull(s, &pos);
  } catch (...) {
    return Status::Invalid("bad duration '" + s + "'");
  }
  std::string unit = s.substr(pos);
  std::uint64_t scale;
  if (unit == "us") {
    scale = 1;
  } else if (unit == "ms") {
    scale = 1000;
  } else if (unit == "s") {
    scale = 1000 * 1000;
  } else {
    return Status::Invalid("bad duration unit in '" + s +
                           "' (want us/ms/s)");
  }
  return std::chrono::microseconds(n * scale);
}

Expected<std::uint64_t> ParseUint(const std::string& s) {
  try {
    std::size_t pos = 0;
    unsigned long long n = std::stoull(s, &pos);
    if (pos != s.size()) return Status::Invalid("bad number '" + s + "'");
    return static_cast<std::uint64_t>(n);
  } catch (...) {
    return Status::Invalid("bad number '" + s + "'");
  }
}

std::string FormatDuration(std::chrono::microseconds d) {
  auto us = d.count();
  char buf[32];
  if (us % (1000 * 1000) == 0) {
    std::snprintf(buf, sizeof(buf), "%llds",
                  static_cast<long long>(us / (1000 * 1000)));
  } else if (us % 1000 == 0) {
    std::snprintf(buf, sizeof(buf), "%lldms",
                  static_cast<long long>(us / 1000));
  } else {
    std::snprintf(buf, sizeof(buf), "%lldus", static_cast<long long>(us));
  }
  return buf;
}

}  // namespace

std::string FormatRegisterToken(const RegisterId& r) {
  return std::to_string(r.disk) + ":" + std::to_string(r.block);
}

Expected<RegisterId> ParseRegisterToken(const std::string& tok) {
  auto colon = tok.find(':');
  if (colon == std::string::npos) {
    return Status::Invalid("bad register token '" + tok +
                           "' (want <disk>:<block>)");
  }
  auto d = ParseUint(tok.substr(0, colon));
  if (!d.ok()) return d.status();
  auto b = ParseUint(tok.substr(colon + 1));
  if (!b.ok()) return b.status();
  return RegisterId{static_cast<DiskId>(*d), *b};
}

const char* FaultKindName(FaultKind k) {
  switch (k) {
    case FaultKind::kCrashRegister:
      return "crash-register";
    case FaultKind::kCrashDisk:
      return "crash-disk";
    case FaultKind::kDelay:
      return "delay";
    case FaultKind::kDrop:
      return "drop";
    case FaultKind::kDisconnect:
      return "disconnect";
    case FaultKind::kStall:
      return "stall";
    case FaultKind::kPartition:
      return "partition";
    case FaultKind::kHeal:
      return "heal";
  }
  return "?";
}

std::string FaultEvent::ToLine() const {
  std::string out = "at " + FormatDuration(at) + " ";
  out += FaultKindName(kind);
  switch (kind) {
    case FaultKind::kCrashRegister:
      out += " " + FormatRegisterToken(
                       RegisterId{disks.empty() ? 0 : disks[0], block});
      break;
    case FaultKind::kDelay:
      out += " " + std::to_string(disks.empty() ? 0 : disks[0]) + " " +
             FormatDuration(std::chrono::microseconds(min_delay_us)) + " " +
             FormatDuration(std::chrono::microseconds(max_delay_us));
      break;
    case FaultKind::kDrop:
      out += " " + std::to_string(disks.empty() ? 0 : disks[0]) + " " +
             std::to_string(permille);
      break;
    case FaultKind::kStall:
      out += " " + std::to_string(disks.empty() ? 0 : disks[0]) + " " +
             FormatDuration(stall);
      break;
    case FaultKind::kCrashDisk:
    case FaultKind::kDisconnect:
    case FaultKind::kPartition:
    case FaultKind::kHeal:
      for (DiskId d : disks) out += " " + std::to_string(d);
      break;
  }
  return out;
}

Expected<FaultPlan> FaultPlan::Parse(std::string_view text) {
  FaultPlan plan;
  std::size_t lineno = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    std::string_view line = text.substr(
        start, end == std::string_view::npos ? text.size() - start
                                             : end - start);
    start = end == std::string_view::npos ? text.size() + 1 : end + 1;
    ++lineno;

    auto toks = Tokenize(line);
    if (toks.empty()) continue;
    auto fail = [&](const std::string& why) {
      return Status::Invalid("fault plan line " + std::to_string(lineno) +
                             ": " + why);
    };
    if (toks[0] != "at" || toks.size() < 3) {
      return fail("expected 'at <time> <kind> ...'");
    }
    auto at = ParseDuration(toks[1]);
    if (!at.ok()) return fail(at.status().message());

    FaultEvent ev;
    ev.at = *at;
    const std::string& kind = toks[2];
    auto need = [&](std::size_t n) { return toks.size() == 3 + n; };
    if (kind == "crash-register") {
      if (!need(1)) return fail("crash-register wants <disk>:<block>");
      auto reg = ParseRegisterToken(toks[3]);
      if (!reg.ok()) return fail(reg.status().message());
      ev.kind = FaultKind::kCrashRegister;
      ev.disks.push_back(reg->disk);
      ev.block = reg->block;
    } else if (kind == "crash-disk") {
      if (!need(1)) return fail("crash-disk wants <disk>");
      auto d = ParseUint(toks[3]);
      if (!d.ok()) return fail(d.status().message());
      ev.kind = FaultKind::kCrashDisk;
      ev.disks.push_back(static_cast<DiskId>(*d));
    } else if (kind == "delay") {
      if (!need(3)) return fail("delay wants <disk> <min-dur> <max-dur>");
      auto d = ParseUint(toks[3]);
      auto lo = ParseDuration(toks[4]);
      auto hi = ParseDuration(toks[5]);
      if (!d.ok()) return fail(d.status().message());
      if (!lo.ok()) return fail(lo.status().message());
      if (!hi.ok()) return fail(hi.status().message());
      if (*hi < *lo) return fail("delay max below min");
      ev.kind = FaultKind::kDelay;
      ev.disks.push_back(static_cast<DiskId>(*d));
      ev.min_delay_us = static_cast<std::uint64_t>(lo->count());
      ev.max_delay_us = static_cast<std::uint64_t>(hi->count());
    } else if (kind == "drop") {
      if (!need(2)) return fail("drop wants <disk> <permille>");
      auto d = ParseUint(toks[3]);
      auto p = ParseUint(toks[4]);
      if (!d.ok()) return fail(d.status().message());
      if (!p.ok()) return fail(p.status().message());
      if (*p > 1000) return fail("drop permille above 1000");
      ev.kind = FaultKind::kDrop;
      ev.disks.push_back(static_cast<DiskId>(*d));
      ev.permille = static_cast<std::uint32_t>(*p);
    } else if (kind == "disconnect") {
      if (!need(1)) return fail("disconnect wants <disk>");
      auto d = ParseUint(toks[3]);
      if (!d.ok()) return fail(d.status().message());
      ev.kind = FaultKind::kDisconnect;
      ev.disks.push_back(static_cast<DiskId>(*d));
    } else if (kind == "stall") {
      if (!need(2)) return fail("stall wants <disk> <dur>");
      auto d = ParseUint(toks[3]);
      auto dur = ParseDuration(toks[4]);
      if (!d.ok()) return fail(d.status().message());
      if (!dur.ok()) return fail(dur.status().message());
      ev.kind = FaultKind::kStall;
      ev.disks.push_back(static_cast<DiskId>(*d));
      ev.stall = *dur;
    } else if (kind == "partition" || kind == "heal") {
      if (toks.size() < 4) return fail(kind + " wants at least one <disk>");
      ev.kind = kind == "partition" ? FaultKind::kPartition : FaultKind::kHeal;
      for (std::size_t i = 3; i < toks.size(); ++i) {
        auto d = ParseUint(toks[i]);
        if (!d.ok()) return fail(d.status().message());
        ev.disks.push_back(static_cast<DiskId>(*d));
      }
    } else {
      return fail("unknown fault kind '" + kind + "'");
    }
    plan.events_.push_back(std::move(ev));
  }
  std::stable_sort(
      plan.events_.begin(), plan.events_.end(),
      [](const FaultEvent& a, const FaultEvent& b) { return a.at < b.at; });
  return plan;
}

Expected<FaultPlan> FaultPlan::LoadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::Unavailable("cannot open fault plan '" + path + "'");
  }
  std::string text;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  return Parse(text);
}

FaultPlan FaultPlan::GenerateCrashPlan(Rng& rng, std::uint32_t n_disks,
                                       std::uint32_t crashes,
                                       std::chrono::microseconds horizon) {
  FaultPlan plan;
  if (n_disks == 0) return plan;
  if (crashes > n_disks) crashes = n_disks;
  // Partial Fisher-Yates over the disk ids picks distinct victims.
  std::vector<DiskId> disks(n_disks);
  for (std::uint32_t i = 0; i < n_disks; ++i) disks[i] = i;
  for (std::uint32_t i = 0; i < crashes; ++i) {
    std::swap(disks[i], disks[i + rng.Below(n_disks - i)]);
    FaultEvent ev;
    ev.kind = FaultKind::kCrashDisk;
    ev.disks.push_back(disks[i]);
    ev.at = std::chrono::microseconds(
        rng.Below(static_cast<std::uint64_t>(horizon.count()) + 1));
    plan.Add(std::move(ev));
  }
  return plan;
}

void FaultPlan::Add(FaultEvent e) {
  auto it = std::upper_bound(
      events_.begin(), events_.end(), e,
      [](const FaultEvent& a, const FaultEvent& b) { return a.at < b.at; });
  events_.insert(it, std::move(e));
}

std::set<DiskId> FaultPlan::CrashedDisks() const {
  std::set<DiskId> out;
  for (const auto& ev : events_) {
    if (ev.kind == FaultKind::kCrashDisk) {
      out.insert(ev.disks.begin(), ev.disks.end());
    }
  }
  return out;
}

std::string FaultPlan::ToString() const {
  std::string out;
  for (const auto& ev : events_) {
    out += ev.ToLine();
    out += '\n';
  }
  return out;
}

}  // namespace nadreg::faults
