/// \file
/// FaultInjector: replays a FaultPlan against a FaultSink.
///
/// Two replay modes, matching the repo's two kinds of executions:
///
///   * Real time — Start() launches a scheduling thread that fires each
///     event when its offset from Start() elapses (steady_clock, CondVar
///     deadline waits — no raw sleeps, so Stop() interrupts immediately).
///     Used by the chaos harness against live farms and TCP clusters.
///   * Deterministic — no thread; the test calls ApplyThrough(elapsed)
///     and every event with `at <= elapsed` fires synchronously on the
///     caller's thread, in schedule order. Used with ManualClock-style
///     tests where wall time must not matter.
///
/// Every fired event increments the `faults.injected` counter plus a
/// per-kind `faults.injected.<kind>` counter in the obs registry, so a
/// chaos run's BENCH artifact records exactly which adversary actions the
/// histories survived.
///
/// Ownership/threading: the injector borrows the sink (caller keeps it
/// alive; see fault_sink.h) and the registry. All public methods are
/// thread-safe; sink methods are invoked with no injector lock held, so
/// sinks may call back into anything except the injector itself.
#pragma once

#include <chrono>
#include <cstddef>
#include <thread>

#include "common/sync.h"
#include "faults/fault_plan.h"
#include "faults/fault_sink.h"
#include "obs/metrics.h"

namespace nadreg::faults {

/// Replays a FaultPlan's events, in schedule order, exactly once each.
class FaultInjector {
 public:
  FaultInjector(FaultPlan plan, FaultSink& sink,
                obs::Registry* registry = &obs::Registry::Global());
  ~FaultInjector();

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Starts real-time replay: event times are offsets from this call.
  /// Call at most once, and not after ApplyThrough.
  void Start();

  /// Stops the replay thread (if any) without firing further events.
  /// Idempotent; also called by the destructor.
  void Stop();

  /// Deterministic replay: fires every not-yet-fired event with
  /// `at <= elapsed` on the calling thread. Monotonic: callers pass
  /// nondecreasing elapsed values. Must not race with Start().
  void ApplyThrough(std::chrono::microseconds elapsed);

  /// Number of events fired so far.
  std::size_t injected_count() const;

  /// True once every event in the plan has fired.
  bool done() const;

  const FaultPlan& plan() const { return plan_; }

 private:
  void ThreadMain(std::stop_token stop);
  void Apply(const FaultEvent& ev);  // fires one event, no lock held

  const FaultPlan plan_;
  FaultSink& sink_;
  obs::Counter& injected_total_;
  // Set in the ctor, read-only after; the Registry locks itself (§12
  // rank 5).
  // lint-allow(tsa-coverage): set once in the ctor
  obs::Registry* registry_;

  mutable Mutex mu_;
  CondVar cv_;
  std::size_t next_ GUARDED_BY(mu_) = 0;  // first event not yet fired
  bool stopped_ GUARDED_BY(mu_) = false;
  // set by Start(), joined by Stop()/dtor
  // lint-allow(tsa-coverage): lifecycle-serialized (Start/Stop contract)
  std::jthread thread_;
};

}  // namespace nadreg::faults
