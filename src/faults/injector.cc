#include "faults/injector.h"

#include <string>
#include <utility>

namespace nadreg::faults {

FaultInjector::FaultInjector(FaultPlan plan, FaultSink& sink,
                             obs::Registry* registry)
    : plan_(std::move(plan)),
      sink_(sink),
      injected_total_(registry->GetCounter("faults.injected")),
      registry_(registry) {}

FaultInjector::~FaultInjector() { Stop(); }

void FaultInjector::Start() {
  thread_ = std::jthread([this](std::stop_token st) { ThreadMain(st); });
}

void FaultInjector::Stop() {
  {
    MutexLock lock(mu_);
    stopped_ = true;
  }
  cv_.NotifyAll();
  if (thread_.joinable()) {
    thread_.request_stop();
    thread_.join();
  }
}

void FaultInjector::ThreadMain(std::stop_token stop) {
  const auto start = std::chrono::steady_clock::now();
  mu_.Lock();
  while (!stopped_ && !stop.stop_requested() &&
         next_ < plan_.events().size()) {
    const FaultEvent& ev = plan_.events()[next_];
    const auto due = start + ev.at;
    if (std::chrono::steady_clock::now() >= due) {
      ++next_;
      mu_.Unlock();
      Apply(ev);  // outside the lock: sinks may block or fan out
      mu_.Lock();
      continue;
    }
    cv_.WaitUntil(mu_, due, [&] {
      mu_.AssertHeld();  // CondVar::WaitUntil runs predicates under the lock
      return stopped_ || stop.stop_requested();
    });
  }
  mu_.Unlock();
}

void FaultInjector::ApplyThrough(std::chrono::microseconds elapsed) {
  for (;;) {
    mu_.Lock();
    if (next_ >= plan_.events().size() || plan_.events()[next_].at > elapsed) {
      mu_.Unlock();
      return;
    }
    const FaultEvent& ev = plan_.events()[next_++];
    mu_.Unlock();
    Apply(ev);
  }
}

std::size_t FaultInjector::injected_count() const {
  MutexLock lock(mu_);
  return next_;
}

bool FaultInjector::done() const {
  MutexLock lock(mu_);
  return next_ >= plan_.events().size();
}

void FaultInjector::Apply(const FaultEvent& ev) {
  switch (ev.kind) {
    case FaultKind::kCrashRegister:
      sink_.CrashRegister(
          RegisterId{ev.disks.empty() ? 0 : ev.disks[0], ev.block});
      break;
    case FaultKind::kCrashDisk:
      for (DiskId d : ev.disks) sink_.CrashDisk(d);
      break;
    case FaultKind::kDelay:
      for (DiskId d : ev.disks) {
        sink_.DelayDisk(d, ev.min_delay_us, ev.max_delay_us);
      }
      break;
    case FaultKind::kDrop:
      for (DiskId d : ev.disks) sink_.DropRequests(d, ev.permille);
      break;
    case FaultKind::kDisconnect:
      for (DiskId d : ev.disks) sink_.DisconnectDisk(d);
      break;
    case FaultKind::kStall:
      for (DiskId d : ev.disks) {
        sink_.StallDisk(
            d, std::chrono::duration_cast<std::chrono::milliseconds>(ev.stall));
      }
      break;
    case FaultKind::kPartition:
      // A partitioned disk is unreachable but alive: everything new is
      // dropped and established connections are severed. Heal undoes it.
      for (DiskId d : ev.disks) {
        sink_.DropRequests(d, 1000);
        sink_.DisconnectDisk(d);
      }
      break;
    case FaultKind::kHeal:
      for (DiskId d : ev.disks) sink_.Heal(d);
      break;
  }
  injected_total_.Inc();
  registry_->GetCounter(std::string("faults.injected.") + FaultKindName(ev.kind))
      .Inc();
}

}  // namespace nadreg::faults
