/// \file
/// FaultPlan: a declarative, loadable schedule of fault events.
///
/// The chaos harness (bench/chaos_harness.cc) and tests describe an
/// execution's adversary as data rather than code: a small line-oriented
/// text spec, one event per line, that a FaultInjector (injector.h)
/// replays against any FaultSink (fault_sink.h). Keeping the adversary
/// declarative means the same plan runs unchanged against the simulated
/// farms and the real TCP cluster, and a failing chaos run can be
/// reproduced from the plan text printed in its report.
///
/// Spec format (one event per line; `#` starts a comment):
///
///     at <time> crash-register <disk>:<block>
///     at <time> crash-disk <disk>
///     at <time> delay <disk> <min-dur> <max-dur>
///     at <time> drop <disk> <permille>
///     at <time> disconnect <disk>
///     at <time> stall <disk> <dur>
///     at <time> partition <disk> [<disk> ...]
///     at <time> heal <disk> [<disk> ...]
///
/// Times and durations take a us/ms/s suffix (e.g. `250ms`). `partition`
/// isolates the listed disks: full request drop plus a connection reset,
/// until a later `heal` lists them again. Events are replayed in event
/// order after a stable sort by time.
///
/// Ownership/threading: FaultPlan is a plain value type; parsing has no
/// side effects. Thread-compatible (const access is safe to share).
#pragma once

#include <chrono>
#include <cstdint>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/types.h"

namespace nadreg::faults {

/// The kind of a scheduled fault event, mirroring FaultSink's surface.
enum class FaultKind {
  kCrashRegister,  ///< one register becomes unresponsive forever
  kCrashDisk,      ///< a whole disk becomes unresponsive forever
  kDelay,          ///< per-request service delay range for a disk
  kDrop,           ///< probabilistic request drop (permille)
  kDisconnect,     ///< sever established connections once (recoverable)
  kStall,          ///< hold all requests for a fixed duration
  kPartition,      ///< isolate disks: full drop + disconnect, until heal
  kHeal            ///< clear recoverable faults on the listed disks
};

/// Printable lowercase keyword for a kind (as used in the spec format).
const char* FaultKindName(FaultKind k);

/// Renders a RegisterId as the `<disk>:<block>` token shared by fault
/// plans and explorer schedule traces (sim/schedule_trace.h).
std::string FormatRegisterToken(const RegisterId& r);

/// Parses a `<disk>:<block>` token (kInvalid on malformed input).
Expected<RegisterId> ParseRegisterToken(const std::string& tok);

/// One scheduled fault. Only the fields relevant to `kind` are meaningful.
struct FaultEvent {
  std::chrono::microseconds at{0};  ///< offset from plan start
  FaultKind kind = FaultKind::kCrashDisk;
  std::vector<DiskId> disks;     ///< targets (1 entry except partition/heal)
  BlockId block = 0;             ///< crash-register only
  std::uint64_t min_delay_us = 0;  ///< delay only
  std::uint64_t max_delay_us = 0;  ///< delay only
  std::uint32_t permille = 0;      ///< drop only
  std::chrono::microseconds stall{0};  ///< stall only

  /// Renders the event as one spec line (round-trips through Parse).
  std::string ToLine() const;
};

/// An ordered schedule of fault events plus crash-budget accounting.
class FaultPlan {
 public:
  /// Parses a plan from spec text. Returns kInvalid with a line-numbered
  /// message on the first malformed line. Events are stably sorted by
  /// time, so same-time events keep their textual order.
  static Expected<FaultPlan> Parse(std::string_view text);

  /// Reads and parses a plan file (kUnavailable if unreadable).
  static Expected<FaultPlan> LoadFile(const std::string& path);

  /// Generates a crash-only plan: `crashes` whole-disk crashes among
  /// `n_disks`, at Rng-chosen distinct disks and times within `horizon`.
  /// This is the paper's adversary — up to t of 2t+1 disks failing at
  /// arbitrary moments.
  static FaultPlan GenerateCrashPlan(Rng& rng, std::uint32_t n_disks,
                                     std::uint32_t crashes,
                                     std::chrono::microseconds horizon);

  const std::vector<FaultEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }

  /// Appends an event, keeping the schedule sorted.
  void Add(FaultEvent e);

  /// Distinct disks this plan crashes outright (crash-disk events).
  /// Compare against the emulation's tolerated t: a plan with
  /// CrashedDisks().size() > t exceeds the paper's fault budget and
  /// phases may legitimately never gather a quorum.
  std::set<DiskId> CrashedDisks() const;

  /// Renders the whole plan as spec text (round-trips through Parse).
  std::string ToString() const;

 private:
  std::vector<FaultEvent> events_;
};

}  // namespace nadreg::faults
