#include "sim/det_farm.h"

#include <cassert>
#include <utility>

namespace nadreg::sim {

void DetFarm::MaybePark(const PendingOp& op) {
  if (abandoned_.load(std::memory_order_acquire)) return;
  auto it = gates_.find(op.p);
  if (it == gates_.end() || !it->second.armed) return;
  GateState& gate = it->second;
  gate.armed = false;  // one-shot
  gate.parked = true;
  gate.released = false;
  gate.op = op;
  gate_cv_.NotifyAll();
  sched_cv_.NotifyAll();  // a parked process counts as blocked
  gate_cv_.Wait(mu_, [&gate] { return gate.released; });
  gate.parked = false;
  gate.released = false;
  gate_cv_.NotifyAll();
  sched_cv_.NotifyAll();
}

void DetFarm::Issue(OpRecord rec) {
  MutexLock lock(mu_);
  rec.desc.id = next_id_++;
  if (rec.desc.is_write) {
    ++stats_.writes_issued;
  } else {
    ++stats_.reads_issued;
  }
  MaybePark(rec.desc);
  if (store_.IsCrashed(rec.desc.r)) return;  // never responds
  pending_.emplace(rec.desc.id, std::move(rec));
  sched_cv_.NotifyAll();  // WaitPendingAtLeast watchers
}

void DetFarm::IssueRead(ProcessId p, RegisterId r, ReadHandler done) {
  OpRecord rec;
  rec.desc.p = p;
  rec.desc.r = r;
  rec.desc.is_write = false;
  rec.on_read = std::move(done);
  Issue(std::move(rec));
}

void DetFarm::IssueWrite(ProcessId p, RegisterId r, Value v,
                         WriteHandler done) {
  OpRecord rec;
  rec.desc.p = p;
  rec.desc.r = r;
  rec.desc.is_write = true;
  rec.desc.value = std::move(v);
  rec.on_write = std::move(done);
  Issue(std::move(rec));
}

void DetFarm::IssueRmw(ProcessId p, RegisterId r, RmwFunction fn,
                       RmwHandler done) {
  OpRecord rec;
  rec.desc.p = p;
  rec.desc.r = r;
  rec.desc.is_write = true;  // an RMW mutates the block
  rec.desc.is_rmw = true;
  rec.rmw = std::move(fn);
  rec.on_rmw = std::move(done);
  Issue(std::move(rec));
}

std::vector<DetFarm::PendingOp> DetFarm::Pending() const {
  return PendingWhere([](const PendingOp&) { return true; });
}

std::vector<DetFarm::PendingOp> DetFarm::PendingWhere(
    const std::function<bool(const PendingOp&)>& pred) const {
  MutexLock lock(mu_);
  std::vector<PendingOp> out;
  for (const auto& [id, rec] : pending_) {
    if (pred(rec.desc)) out.push_back(rec.desc);
  }
  return out;
}

std::optional<DetFarm::OpRecord> DetFarm::Take(OpId id) {
  MutexLock lock(mu_);
  auto it = pending_.find(id);
  if (it == pending_.end()) return std::nullopt;
  if (store_.IsCrashed(it->second.desc.r)) {
    pending_.erase(it);
    return std::nullopt;
  }
  OpRecord rec = std::move(it->second);
  pending_.erase(it);
  if (rec.desc.is_rmw) {
    // RMW linearization point: respond with the previous value, store the
    // transformed one. rmw is a pure value transform (rmw_client.h), so
    // running it under mu_ is safe.
    Value previous = store_.Get(rec.desc.r);
    store_.Apply(rec.desc.r, rec.rmw(previous));
    rec.desc.value = std::move(previous);
    ++stats_.writes_completed;
  } else if (rec.desc.is_write) {
    store_.Apply(rec.desc.r, rec.desc.value);  // linearization point
    ++stats_.writes_completed;
  } else {
    // Capture the read result at the linearization point.
    rec.desc.value = store_.Get(rec.desc.r);
    ++stats_.reads_completed;
  }
  return rec;
}

bool DetFarm::Deliver(OpId id) {
  auto rec = Take(id);
  if (!rec) return false;
  // Handler runs without the lock: it may issue further operations.
  if (rec->desc.is_rmw) {
    if (rec->on_rmw) rec->on_rmw(std::move(rec->desc.value));
  } else if (rec->desc.is_write) {
    if (rec->on_write) rec->on_write();
  } else {
    if (rec->on_read) rec->on_read(std::move(rec->desc.value));
  }
  return true;
}

std::size_t DetFarm::DeliverAll() {
  std::size_t delivered = 0;
  for (;;) {
    OpId id = 0;
    {
      MutexLock lock(mu_);
      if (pending_.empty()) break;
      id = pending_.begin()->first;
    }
    if (Deliver(id)) ++delivered;
  }
  return delivered;
}

std::size_t DetFarm::DeliverWhere(
    const std::function<bool(const PendingOp&)>& pred) {
  std::size_t delivered = 0;
  for (const PendingOp& op : PendingWhere(pred)) {
    if (Deliver(op.id)) ++delivered;
  }
  return delivered;
}

bool DetFarm::Drop(OpId id) {
  MutexLock lock(mu_);
  return pending_.erase(id) > 0;
}

void DetFarm::CrashRegister(const RegisterId& r) {
  MutexLock lock(mu_);
  store_.CrashRegister(r);
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (it->second.desc.r == r) {
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
}

void DetFarm::CrashDisk(DiskId d) {
  MutexLock lock(mu_);
  store_.CrashDisk(d);
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (it->second.desc.r.disk == d) {
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
}

void DetFarm::ArmGate(ProcessId p) {
  MutexLock lock(mu_);
  gates_[p].armed = true;
}

DetFarm::PendingOp DetFarm::WaitGated(ProcessId p) {
  MutexLock lock(mu_);
  gate_cv_.Wait(mu_, [&] {
    mu_.AssertHeld();  // CondVar::Wait runs predicates under the lock
    auto it = gates_.find(p);
    return it != gates_.end() && it->second.parked;
  });
  return gates_[p].op;
}

bool DetFarm::IsParked(ProcessId p) const {
  MutexLock lock(mu_);
  auto it = gates_.find(p);
  return it != gates_.end() && it->second.parked;
}

void DetFarm::ReleaseGate(ProcessId p) {
  MutexLock lock(mu_);
  auto it = gates_.find(p);
  assert(it != gates_.end() && it->second.parked &&
         "ReleaseGate: process is not parked");
  it->second.released = true;
  gate_cv_.NotifyAll();
  // Wait until the parked thread has actually resumed and enqueued its op,
  // so the adversary can rely on Pending() seeing it afterwards.
  gate_cv_.Wait(mu_, [&] {
    mu_.AssertHeld();
    return !gates_[p].parked;
  });
}

std::vector<DetFarm::PendingOp> DetFarm::WaitPendingAtLeast(
    const std::function<bool(const PendingOp&)>& pred, std::size_t n) {
  MutexLock lock(mu_);
  std::vector<PendingOp> out;
  sched_cv_.Wait(mu_, [&] {
    mu_.AssertHeld();
    out.clear();
    for (const auto& [id, rec] : pending_) {
      if (pred(rec.desc)) out.push_back(rec.desc);
    }
    return out.size() >= n || abandoned_.load(std::memory_order_acquire);
  });
  return out;
}

void DetFarm::BeginScenarioThread() {
  MutexLock lock(mu_);
  ++live_threads_;
  sched_cv_.NotifyAll();
}

void DetFarm::EndScenarioThread() {
  MutexLock lock(mu_);
  assert(live_threads_ > 0 && "EndScenarioThread without Begin");
  --live_threads_;
  sched_cv_.NotifyAll();
}

bool DetFarm::NoteBlocked(ProcessId p, std::size_t remaining,
                          std::function<void()> wake) {
  MutexLock lock(mu_);
  if (abandoned_.load(std::memory_order_acquire)) return false;
  BlockedEntry entry;
  entry.remaining = remaining;
  entry.wake = std::move(wake);
  blocked_.emplace(p, std::move(entry));
  sched_cv_.NotifyAll();
  return true;
}

void DetFarm::NoteRunnable(ProcessId p) {
  MutexLock lock(mu_);
  auto it = blocked_.find(p);
  if (it != blocked_.end()) blocked_.erase(it);
  sched_cv_.NotifyAll();
}

void DetFarm::NoteCompletion(ProcessId p) {
  MutexLock lock(mu_);
  auto [first, last] = blocked_.equal_range(p);
  for (auto it = first; it != last; ++it) it->second.poked = true;
  sched_cv_.NotifyAll();
}

std::size_t DetFarm::ParkedCountLocked() const {
  std::size_t parked = 0;
  for (const auto& [p, gate] : gates_) {
    if (gate.parked) ++parked;
  }
  return parked;
}

bool DetFarm::QuiescentLocked() const {
  if (live_threads_ == 0) return true;
  if (blocked_.size() + ParkedCountLocked() < live_threads_) return false;
  // A poked waiter may be about to wake (its completion just ran): not
  // quiescent until it cycled through its wait loop and re-registered.
  for (const auto& [p, entry] : blocked_) {
    if (entry.poked) return false;
  }
  return true;
}

DetFarm::Quiescence DetFarm::WaitQuiescent(std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  Quiescence q;
  for (;;) {
    // Kicks for poked waiters whose own condition variable was never
    // notified (the delivered completion belonged to an earlier phase).
    // Fired outside mu_ — each wake locks the waiter's mutex.
    std::vector<std::function<void()>> kicks;
    {
      MutexLock lock(mu_);
      const bool ok = sched_cv_.WaitUntil(mu_, deadline, [&] {
        mu_.AssertHeld();
        if (QuiescentLocked()) return true;
        for (const auto& [p, entry] : blocked_) {
          if (entry.poked && !entry.wake_sent) return true;
        }
        return false;
      });
      if (QuiescentLocked()) {
        q.all_done = live_threads_ == 0;
        for (const auto& [id, rec] : pending_) q.pending.push_back(rec.desc);
        for (const auto& [p, entry] : blocked_) {
          auto it = q.blocked_need.find(p);
          if (it == q.blocked_need.end()) {
            q.blocked_need.emplace(p, entry.remaining);
          } else if (entry.remaining < it->second) {
            it->second = entry.remaining;
          }
        }
        return q;
      }
      if (!ok) {
        q.timed_out = true;
        return q;
      }
      for (auto& [p, entry] : blocked_) {
        if (entry.poked && !entry.wake_sent) {
          entry.wake_sent = true;
          kicks.push_back(entry.wake);
        }
      }
    }
    for (const auto& kick : kicks) kick();
  }
}

void DetFarm::Abandon() {
  std::vector<std::function<void()>> wakes;
  {
    MutexLock lock(mu_);
    abandoned_.store(true, std::memory_order_release);
    for (auto& [p, entry] : blocked_) {
      if (!entry.wake_sent) {
        entry.wake_sent = true;
        wakes.push_back(entry.wake);
      }
    }
    for (auto& [p, gate] : gates_) {
      if (gate.parked) gate.released = true;
    }
    gate_cv_.NotifyAll();
    sched_cv_.NotifyAll();
  }
  // Wakes run outside mu_: each locks its waiter's mutex, and the waiter's
  // next NoteBlocked will be refused (Abandoned), failing the wait.
  for (const auto& wake : wakes) wake();
}

Value DetFarm::Peek(const RegisterId& r) const {
  MutexLock lock(mu_);
  return store_.Get(r);
}

OpStats DetFarm::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

}  // namespace nadreg::sim
