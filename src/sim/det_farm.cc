#include "sim/det_farm.h"

#include <cassert>
#include <utility>

namespace nadreg::sim {

void DetFarm::MaybePark(const PendingOp& op) {
  auto it = gates_.find(op.p);
  if (it == gates_.end() || !it->second.armed) return;
  GateState& gate = it->second;
  gate.armed = false;  // one-shot
  gate.parked = true;
  gate.released = false;
  gate.op = op;
  gate_cv_.NotifyAll();
  gate_cv_.Wait(mu_, [&gate] { return gate.released; });
  gate.parked = false;
  gate.released = false;
  gate_cv_.NotifyAll();
}

void DetFarm::Issue(OpRecord rec) {
  MutexLock lock(mu_);
  rec.desc.id = next_id_++;
  if (rec.desc.is_write) {
    ++stats_.writes_issued;
  } else {
    ++stats_.reads_issued;
  }
  MaybePark(rec.desc);
  if (store_.IsCrashed(rec.desc.r)) return;  // never responds
  pending_.emplace(rec.desc.id, std::move(rec));
}

void DetFarm::IssueRead(ProcessId p, RegisterId r, ReadHandler done) {
  OpRecord rec;
  rec.desc.p = p;
  rec.desc.r = r;
  rec.desc.is_write = false;
  rec.on_read = std::move(done);
  Issue(std::move(rec));
}

void DetFarm::IssueWrite(ProcessId p, RegisterId r, Value v,
                         WriteHandler done) {
  OpRecord rec;
  rec.desc.p = p;
  rec.desc.r = r;
  rec.desc.is_write = true;
  rec.desc.value = std::move(v);
  rec.on_write = std::move(done);
  Issue(std::move(rec));
}

std::vector<DetFarm::PendingOp> DetFarm::Pending() const {
  return PendingWhere([](const PendingOp&) { return true; });
}

std::vector<DetFarm::PendingOp> DetFarm::PendingWhere(
    const std::function<bool(const PendingOp&)>& pred) const {
  MutexLock lock(mu_);
  std::vector<PendingOp> out;
  for (const auto& [id, rec] : pending_) {
    if (pred(rec.desc)) out.push_back(rec.desc);
  }
  return out;
}

std::optional<DetFarm::OpRecord> DetFarm::Take(OpId id) {
  MutexLock lock(mu_);
  auto it = pending_.find(id);
  if (it == pending_.end()) return std::nullopt;
  if (store_.IsCrashed(it->second.desc.r)) {
    pending_.erase(it);
    return std::nullopt;
  }
  OpRecord rec = std::move(it->second);
  pending_.erase(it);
  if (rec.desc.is_write) {
    store_.Apply(rec.desc.r, rec.desc.value);  // linearization point
    ++stats_.writes_completed;
  } else {
    // Capture the read result at the linearization point.
    rec.desc.value = store_.Get(rec.desc.r);
    ++stats_.reads_completed;
  }
  return rec;
}

bool DetFarm::Deliver(OpId id) {
  auto rec = Take(id);
  if (!rec) return false;
  // Handler runs without the lock: it may issue further operations.
  if (rec->desc.is_write) {
    if (rec->on_write) rec->on_write();
  } else {
    if (rec->on_read) rec->on_read(std::move(rec->desc.value));
  }
  return true;
}

std::size_t DetFarm::DeliverAll() {
  std::size_t delivered = 0;
  for (;;) {
    OpId id = 0;
    {
      MutexLock lock(mu_);
      if (pending_.empty()) break;
      id = pending_.begin()->first;
    }
    if (Deliver(id)) ++delivered;
  }
  return delivered;
}

std::size_t DetFarm::DeliverWhere(
    const std::function<bool(const PendingOp&)>& pred) {
  std::size_t delivered = 0;
  for (const PendingOp& op : PendingWhere(pred)) {
    if (Deliver(op.id)) ++delivered;
  }
  return delivered;
}

bool DetFarm::Drop(OpId id) {
  MutexLock lock(mu_);
  return pending_.erase(id) > 0;
}

void DetFarm::CrashRegister(const RegisterId& r) {
  MutexLock lock(mu_);
  store_.CrashRegister(r);
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (it->second.desc.r == r) {
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
}

void DetFarm::CrashDisk(DiskId d) {
  MutexLock lock(mu_);
  store_.CrashDisk(d);
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (it->second.desc.r.disk == d) {
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
}

void DetFarm::ArmGate(ProcessId p) {
  MutexLock lock(mu_);
  gates_[p].armed = true;
}

DetFarm::PendingOp DetFarm::WaitGated(ProcessId p) {
  MutexLock lock(mu_);
  gate_cv_.Wait(mu_, [&] {
    mu_.AssertHeld();  // CondVar::Wait runs predicates under the lock
    auto it = gates_.find(p);
    return it != gates_.end() && it->second.parked;
  });
  return gates_[p].op;
}

bool DetFarm::IsParked(ProcessId p) const {
  MutexLock lock(mu_);
  auto it = gates_.find(p);
  return it != gates_.end() && it->second.parked;
}

void DetFarm::ReleaseGate(ProcessId p) {
  MutexLock lock(mu_);
  auto it = gates_.find(p);
  assert(it != gates_.end() && it->second.parked &&
         "ReleaseGate: process is not parked");
  it->second.released = true;
  gate_cv_.NotifyAll();
  // Wait until the parked thread has actually resumed and enqueued its op,
  // so the adversary can rely on Pending() seeing it afterwards.
  gate_cv_.Wait(mu_, [&] {
    mu_.AssertHeld();
    return !gates_[p].parked;
  });
}

Value DetFarm::Peek(const RegisterId& r) const {
  MutexLock lock(mu_);
  return store_.Get(r);
}

OpStats DetFarm::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

}  // namespace nadreg::sim
