/// \file
/// Deterministic, adversary-controlled farm of fail-prone base registers.
///
/// Nothing happens unless the adversary (the test or the proof-schedule
/// driver) makes it happen:
///
///  * An issued operation becomes *pending* and stays pending until the
///    adversary calls Deliver(op) — the paper's "flush" of a pending write —
///    or Drop(op)/CrashRegister(r), after which it never responds.
///  * A *gate* can be armed for a process: the process's next Issue* call
///    parks inside the call, before the operation becomes visible. This is
///    exactly a *covering write* (Burns–Lynch, used by Theorems 1–3): the
///    process is frozen "just about to write". The adversary observes which
///    register the process is covering (WaitGated) and later lets the
///    operation through (ReleaseGate).
///
/// Together these realize every move in the Section 4.1 run construction:
/// freezing a writer to cover a register, leaving writes pending after an
/// OPERATION completed (Fig. 1), flushing pending writes in any order, and
/// crashing a register so it appears merely slow.
///
/// For model checking, the farm additionally tracks *quiescence*: scenario
/// threads register via BeginScenarioThread/EndScenarioThread, quorum
/// engines report their blocked waits through the BaseRegisterClient
/// scheduler hooks (NoteBlocked/NoteRunnable/NoteCompletion), and
/// WaitQuiescent blocks — event-driven, no polling — until every live
/// scenario thread is parked in a quorum wait (or gone). At that point the
/// pending set and the waiters' remaining-counts are an exact snapshot of
/// the system state, which is what makes exploration deterministic.
/// Abandon() poisons the farm: pending ops are frozen forever, blocked
/// waiters are woken to fail fast (Abandoned() turns true), so the
/// explorer can discard a partially executed run without leaking threads.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/base_register.h"
#include "common/sync.h"
#include "common/types.h"
#include "faults/fault_sink.h"
#include "sim/register_store.h"
#include "sim/rmw_client.h"

namespace nadreg::sim {

class DetFarm : public ActiveDiskClient, public faults::FaultSink {
 public:
  using OpId = std::uint64_t;

  struct PendingOp {
    OpId id = 0;
    ProcessId p = kNoProcess;
    RegisterId r;
    bool is_write = false;
    bool is_rmw = false;  // implies is_write (an RMW mutates the block)
    Value value;          // writes only
  };

  DetFarm() = default;
  ~DetFarm() override = default;
  DetFarm(const DetFarm&) = delete;
  DetFarm& operator=(const DetFarm&) = delete;

  // --- BaseRegisterClient / ActiveDiskClient ------------------------------
  void IssueRead(ProcessId p, RegisterId r, ReadHandler done) override;
  void IssueWrite(ProcessId p, RegisterId r, Value v,
                  WriteHandler done) override;
  /// Deterministic RMW (Active Disk Paxos substrate): pending like any
  /// other op; fn runs at the Deliver() linearization point. Counted as a
  /// write in stats() and matched by is_write predicates.
  void IssueRmw(ProcessId p, RegisterId r, RmwFunction fn,
                RmwHandler done) override;

  // --- Adversary: delivery ------------------------------------------------

  /// Operations issued and not yet delivered/dropped, in issue order.
  std::vector<PendingOp> Pending() const;

  /// Pending operations matching a predicate, in issue order.
  std::vector<PendingOp> PendingWhere(
      const std::function<bool(const PendingOp&)>& pred) const;

  /// Blocks (event-driven) until at least `n` pending ops match `pred`,
  /// then returns them. Returns early with whatever matches if the farm
  /// is abandoned.
  std::vector<PendingOp> WaitPendingAtLeast(
      const std::function<bool(const PendingOp&)>& pred, std::size_t n);

  /// Delivers one operation: applies it to the register (its linearization
  /// point) and invokes its completion handler on the calling thread.
  /// Returns false if the op is unknown, already delivered, or dropped.
  bool Deliver(OpId id);

  /// Delivers every currently pending operation, in issue order, including
  /// operations issued by handlers run along the way. Returns the number
  /// delivered. Operations on crashed registers are skipped.
  std::size_t DeliverAll();

  /// Delivers pending ops matching `pred` (snapshot taken first; ops issued
  /// by handlers during delivery are not matched again). Returns count.
  std::size_t DeliverWhere(const std::function<bool(const PendingOp&)>& pred);

  /// Drops one operation: it will never respond and never take effect.
  bool Drop(OpId id);

  // --- Adversary: crashes -------------------------------------------------

  /// Crashes a register: all its pending ops are dropped and future ops on
  /// it never respond. (faults::FaultSink; transport faults stay no-ops —
  /// the adversary already controls every delivery explicitly.)
  void CrashRegister(const RegisterId& r) override;
  /// Crashes a whole disk (all its registers, including untouched ones).
  void CrashDisk(DiskId d) override;

  // --- Adversary: covering gates ------------------------------------------

  /// Arms the gate for process p: its next Issue* call parks before the
  /// operation becomes visible. One-shot (the call that parks disarms it).
  void ArmGate(ProcessId p);

  /// Blocks until process p is parked at its gate; returns the operation it
  /// is about to issue (the register it "covers").
  PendingOp WaitGated(ProcessId p);

  /// Non-blocking probe: is p currently parked at its gate?
  bool IsParked(ProcessId p) const;

  /// Releases a parked process: its operation becomes pending (it still
  /// needs Deliver to take effect) and the Issue* call returns.
  void ReleaseGate(ProcessId p);

  // --- Scheduler: quiescence and abandonment ------------------------------

  /// Registers the calling context as one scenario thread. Call before the
  /// thread starts issuing (ThreadedScenario does this on Spawn, from the
  /// factory, so the thread count is never under-reported).
  void BeginScenarioThread();
  /// The scenario thread finished its workload.
  void EndScenarioThread();

  // Scheduler hooks (BaseRegisterClient). Quorum engines call these via
  // BlockedQuorumWait; see the class comment for the protocol.
  bool NoteBlocked(ProcessId p, std::size_t remaining,
                   std::function<void()> wake) override;
  void NoteRunnable(ProcessId p) override;
  void NoteCompletion(ProcessId p) override;
  bool Abandoned() const override {
    return abandoned_.load(std::memory_order_acquire);
  }

  /// Snapshot taken at a quiescent point: every live scenario thread was
  /// simultaneously parked in a quorum wait (or at a covering gate).
  struct Quiescence {
    bool timed_out = false;  // never went quiescent within the timeout
    bool all_done = false;   // no live scenario threads remain
    /// Pending ops at the quiescent point, in issue order.
    std::vector<PendingOp> pending;
    /// Per blocked process: the smallest `remaining` count any of its
    /// waits reported — 1 means a single delivery may unblock it.
    std::map<ProcessId, std::size_t> blocked_need;
  };

  /// Blocks until the farm is quiescent (event-driven; the timeout is a
  /// safety valve for scenarios that block outside the hook protocol).
  Quiescence WaitQuiescent(std::chrono::milliseconds timeout);

  /// Poisons the farm: Abandoned() turns true, every blocked waiter is
  /// woken to fail its wait, parked gates are released. Pending ops stay
  /// deliverable (DeliverAll still drains them) but new issues on the
  /// abandoned farm no longer park at gates.
  void Abandon();

  // --- Introspection -------------------------------------------------------

  Value Peek(const RegisterId& r) const;
  OpStats stats() const;

 private:
  struct OpRecord {
    PendingOp desc;
    ReadHandler on_read;
    WriteHandler on_write;
    RmwFunction rmw;
    RmwHandler on_rmw;
  };
  struct GateState {
    bool armed = false;
    bool parked = false;
    bool released = false;
    PendingOp op;
  };
  struct BlockedEntry {
    std::size_t remaining = 0;
    std::function<void()> wake;
    // A completion for this process ran after the entry was registered;
    // the waiter may be about to wake (suppresses quiescence) or may need
    // a kick (its own condition variable was never notified — e.g. the
    // completion belonged to an earlier, already-satisfied phase).
    bool poked = false;
    bool wake_sent = false;  // kick already fired for this entry
  };

  // Parks at the gate if armed. Holds mu_ on entry and exit; the wait
  // inside releases it while parked (CondVar semantics).
  void MaybePark(const PendingOp& op) REQUIRES(mu_);
  void Issue(OpRecord rec);
  // Extracts the op record; returns nullopt if not deliverable.
  std::optional<OpRecord> Take(OpId id);
  std::size_t ParkedCountLocked() const REQUIRES(mu_);
  bool QuiescentLocked() const REQUIRES(mu_);

  mutable Mutex mu_;
  CondVar gate_cv_;
  // Notified on every event the scheduler waits for: new pending op,
  // blocked/runnable/completion transitions, thread begin/end, abandon.
  CondVar sched_cv_;
  RegisterStore store_ GUARDED_BY(mu_);
  // Ordered by id == issue order.
  std::map<OpId, OpRecord> pending_ GUARDED_BY(mu_);
  std::unordered_map<ProcessId, GateState> gates_ GUARDED_BY(mu_);
  std::multimap<ProcessId, BlockedEntry> blocked_ GUARDED_BY(mu_);
  std::size_t live_threads_ GUARDED_BY(mu_) = 0;
  std::atomic<bool> abandoned_{false};
  OpId next_id_ GUARDED_BY(mu_) = 1;
  OpStats stats_ GUARDED_BY(mu_);
};

}  // namespace nadreg::sim
