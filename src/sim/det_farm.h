/// \file
/// Deterministic, adversary-controlled farm of fail-prone base registers.
///
/// Nothing happens unless the adversary (the test or the proof-schedule
/// driver) makes it happen:
///
///  * An issued operation becomes *pending* and stays pending until the
///    adversary calls Deliver(op) — the paper's "flush" of a pending write —
///    or Drop(op)/CrashRegister(r), after which it never responds.
///  * A *gate* can be armed for a process: the process's next Issue* call
///    parks inside the call, before the operation becomes visible. This is
///    exactly a *covering write* (Burns–Lynch, used by Theorems 1–3): the
///    process is frozen "just about to write". The adversary observes which
///    register the process is covering (WaitGated) and later lets the
///    operation through (ReleaseGate).
///
/// Together these realize every move in the Section 4.1 run construction:
/// freezing a writer to cover a register, leaving writes pending after an
/// OPERATION completed (Fig. 1), flushing pending writes in any order, and
/// crashing a register so it appears merely slow.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/base_register.h"
#include "common/sync.h"
#include "common/types.h"
#include "faults/fault_sink.h"
#include "sim/register_store.h"

namespace nadreg::sim {

class DetFarm : public BaseRegisterClient, public faults::FaultSink {
 public:
  using OpId = std::uint64_t;

  struct PendingOp {
    OpId id = 0;
    ProcessId p = kNoProcess;
    RegisterId r;
    bool is_write = false;
    Value value;  // writes only
  };

  DetFarm() = default;
  ~DetFarm() override = default;
  DetFarm(const DetFarm&) = delete;
  DetFarm& operator=(const DetFarm&) = delete;

  // --- BaseRegisterClient -------------------------------------------------
  void IssueRead(ProcessId p, RegisterId r, ReadHandler done) override;
  void IssueWrite(ProcessId p, RegisterId r, Value v,
                  WriteHandler done) override;

  // --- Adversary: delivery ------------------------------------------------

  /// Operations issued and not yet delivered/dropped, in issue order.
  std::vector<PendingOp> Pending() const;

  /// Pending operations matching a predicate, in issue order.
  std::vector<PendingOp> PendingWhere(
      const std::function<bool(const PendingOp&)>& pred) const;

  /// Delivers one operation: applies it to the register (its linearization
  /// point) and invokes its completion handler on the calling thread.
  /// Returns false if the op is unknown, already delivered, or dropped.
  bool Deliver(OpId id);

  /// Delivers every currently pending operation, in issue order, including
  /// operations issued by handlers run along the way. Returns the number
  /// delivered. Operations on crashed registers are skipped.
  std::size_t DeliverAll();

  /// Delivers pending ops matching `pred` (snapshot taken first; ops issued
  /// by handlers during delivery are not matched again). Returns count.
  std::size_t DeliverWhere(const std::function<bool(const PendingOp&)>& pred);

  /// Drops one operation: it will never respond and never take effect.
  bool Drop(OpId id);

  // --- Adversary: crashes -------------------------------------------------

  /// Crashes a register: all its pending ops are dropped and future ops on
  /// it never respond. (faults::FaultSink; transport faults stay no-ops —
  /// the adversary already controls every delivery explicitly.)
  void CrashRegister(const RegisterId& r) override;
  /// Crashes a whole disk (all its registers, including untouched ones).
  void CrashDisk(DiskId d) override;

  // --- Adversary: covering gates ------------------------------------------

  /// Arms the gate for process p: its next Issue* call parks before the
  /// operation becomes visible. One-shot (the call that parks disarms it).
  void ArmGate(ProcessId p);

  /// Blocks until process p is parked at its gate; returns the operation it
  /// is about to issue (the register it "covers").
  PendingOp WaitGated(ProcessId p);

  /// Non-blocking probe: is p currently parked at its gate?
  bool IsParked(ProcessId p) const;

  /// Releases a parked process: its operation becomes pending (it still
  /// needs Deliver to take effect) and the Issue* call returns.
  void ReleaseGate(ProcessId p);

  // --- Introspection -------------------------------------------------------

  Value Peek(const RegisterId& r) const;
  OpStats stats() const;

 private:
  struct OpRecord {
    PendingOp desc;
    ReadHandler on_read;
    WriteHandler on_write;
  };
  struct GateState {
    bool armed = false;
    bool parked = false;
    bool released = false;
    PendingOp op;
  };

  // Parks at the gate if armed. Holds mu_ on entry and exit; the wait
  // inside releases it while parked (CondVar semantics).
  void MaybePark(const PendingOp& op) REQUIRES(mu_);
  void Issue(OpRecord rec);
  // Extracts the op record; returns nullopt if not deliverable.
  std::optional<OpRecord> Take(OpId id);

  mutable Mutex mu_;
  CondVar gate_cv_;
  RegisterStore store_ GUARDED_BY(mu_);
  // Ordered by id == issue order.
  std::map<OpId, OpRecord> pending_ GUARDED_BY(mu_);
  std::unordered_map<ProcessId, GateState> gates_ GUARDED_BY(mu_);
  OpId next_id_ GUARDED_BY(mu_) = 1;
  OpStats stats_ GUARDED_BY(mu_);
};

}  // namespace nadreg::sim
