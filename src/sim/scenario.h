/// \file
/// Helper for building explorer scenarios: runs workload threads and
/// reports completion; validation is a caller-supplied callback (typically
/// a consistency check over a HistoryRecorder).
#pragma once

#include <atomic>
#include <functional>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "sim/det_farm.h"
#include "sim/explorer.h"

namespace nadreg::sim {

class ThreadedScenario : public ExplorationRun {
 public:
  using Validator = std::function<std::optional<std::string>()>;

  /// Scenario threads register with `farm` so its quiescence accounting
  /// covers them (BeginScenarioThread on Spawn — synchronously, from the
  /// factory, so the count is never under-reported).
  explicit ThreadedScenario(DetFarm& farm) : farm_(&farm) {}

  /// Spawns a workload thread. Call from the RunFactory only.
  void Spawn(std::function<void()> fn) {
    ++total_;
    farm_->BeginScenarioThread();
    threads_.emplace_back([this, fn = std::move(fn)] {
      fn();
      done_.fetch_add(1, std::memory_order_release);
      farm_->EndScenarioThread();
    });
  }

  /// Sets the leaf validator (runs after all threads finished).
  void SetValidator(Validator v) { validator_ = std::move(v); }

  bool Done() const override {
    return done_.load(std::memory_order_acquire) == total_;
  }

  std::optional<std::string> Validate() override {
    return validator_ ? validator_() : std::nullopt;
  }

 private:
  DetFarm* farm_;
  std::atomic<int> done_{0};
  int total_ = 0;
  Validator validator_;
  std::vector<std::jthread> threads_;
};

}  // namespace nadreg::sim
