#include "sim/schedule_trace.h"

#include <cstdio>
#include <sstream>

#include "faults/fault_plan.h"

namespace nadreg::sim {
namespace {

// Splits a line into whitespace-separated tokens, stripping `#` comments.
std::vector<std::string> Tokenize(std::string_view line) {
  if (auto hash = line.find('#'); hash != std::string_view::npos) {
    line = line.substr(0, hash);
  }
  std::vector<std::string> out;
  std::istringstream in{std::string(line)};
  std::string tok;
  while (in >> tok) out.push_back(tok);
  return out;
}

Expected<ProcessId> ParseProcessToken(const std::string& tok) {
  if (tok.size() < 2 || tok[0] != 'p') {
    return Status::Invalid("bad process token '" + tok + "' (want p<pid>)");
  }
  try {
    std::size_t pos = 0;
    unsigned long long n = std::stoull(tok.substr(1), &pos);
    if (pos != tok.size() - 1) {
      return Status::Invalid("bad process token '" + tok + "'");
    }
    return static_cast<ProcessId>(n);
  } catch (...) {
    return Status::Invalid("bad process token '" + tok + "'");
  }
}

}  // namespace

std::string FormatDecision(const Decision& d) {
  const std::string reg = faults::FormatRegisterToken(d.r);
  switch (d.kind) {
    case Decision::Kind::kCrash:
      return "crash-register " + reg;
    case Decision::Kind::kDeliver:
    case Decision::Kind::kDrop:
      break;
  }
  std::string out = d.kind == Decision::Kind::kDeliver ? "deliver" : "drop";
  out += " p" + std::to_string(d.p);
  out += d.is_write ? " write " : " read ";
  out += reg;
  return out;
}

std::string FormatTrace(const ScheduleTrace& trace) {
  std::string out = "# nadreg schedule trace v1\n";
  if (!trace.scenario.empty()) out += "scenario " + trace.scenario + "\n";
  for (const Decision& d : trace.decisions) {
    out += FormatDecision(d);
    out += '\n';
  }
  return out;
}

Expected<ScheduleTrace> ParseTrace(std::string_view text) {
  ScheduleTrace trace;
  std::size_t lineno = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    std::string_view line = text.substr(
        start,
        end == std::string_view::npos ? text.size() - start : end - start);
    start = end == std::string_view::npos ? text.size() + 1 : end + 1;
    ++lineno;

    auto toks = Tokenize(line);
    if (toks.empty()) continue;
    auto fail = [&](const std::string& why) {
      return Status::Invalid("schedule trace line " + std::to_string(lineno) +
                             ": " + why);
    };

    if (toks[0] == "scenario") {
      if (toks.size() != 2) return fail("scenario wants one name");
      if (!trace.scenario.empty()) return fail("duplicate scenario line");
      trace.scenario = toks[1];
      continue;
    }

    Decision d;
    if (toks[0] == "crash-register") {
      if (toks.size() != 2) return fail("crash-register wants <disk>:<block>");
      auto reg = faults::ParseRegisterToken(toks[1]);
      if (!reg.ok()) return fail(reg.status().message());
      d.kind = Decision::Kind::kCrash;
      d.r = *reg;
    } else if (toks[0] == "deliver" || toks[0] == "drop") {
      if (toks.size() != 4) {
        return fail(toks[0] + " wants p<pid> read|write <disk>:<block>");
      }
      auto pid = ParseProcessToken(toks[1]);
      if (!pid.ok()) return fail(pid.status().message());
      if (toks[2] != "read" && toks[2] != "write") {
        return fail("bad direction '" + toks[2] + "' (want read|write)");
      }
      auto reg = faults::ParseRegisterToken(toks[3]);
      if (!reg.ok()) return fail(reg.status().message());
      d.kind = toks[0] == "deliver" ? Decision::Kind::kDeliver
                                    : Decision::Kind::kDrop;
      d.p = *pid;
      d.is_write = toks[2] == "write";
      d.r = *reg;
    } else {
      return fail("unknown decision '" + toks[0] + "'");
    }
    trace.decisions.push_back(d);
  }
  return trace;
}

Expected<ScheduleTrace> LoadTraceFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::Unavailable("cannot open schedule trace '" + path + "'");
  }
  std::string text;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  return ParseTrace(text);
}

Status SaveTraceFile(const ScheduleTrace& trace, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::Unavailable("cannot write schedule trace '" + path + "'");
  }
  const std::string text = FormatTrace(trace);
  const std::size_t written = std::fwrite(text.data(), 1, text.size(), f);
  const bool ok = written == text.size() && std::fclose(f) == 0;
  if (!ok) return Status::Unavailable("short write to '" + path + "'");
  return Status::Ok();
}

}  // namespace nadreg::sim
