/// \file
/// Fault-aware bounded model checking over the deterministic farm.
///
/// The adversary's power in the fail-prone register model is choosing
/// *when each issued base-register operation takes effect* — and whether
/// it ever does. The explorer enumerates those choices: it repeatedly
/// re-runs a scenario from scratch, replays a prefix of decisions, waits
/// for quiescence (event-driven — every live scenario thread parked in a
/// quorum wait; see DetFarm::WaitQuiescent), branches on every enabled
/// decision, and validates each completed schedule (leaf) with a
/// caller-supplied check — e.g. "is the recorded history linearizable?".
///
/// Decisions (sim/schedule_trace.h) are of three kinds:
///   * deliver a pending op — the paper's flush of a pending write;
///   * drop it — the register silently swallows the request;
///   * crash a register — it becomes unresponsive forever (JCT).
/// Drop/crash branching is bounded by Options::crash_budget, so a run
/// certifies an emulation under *every placement* of up-to-budget faults.
/// A schedule on which every surviving thread blocks forever is *stuck*:
/// within the paper's fault budget (≤ tolerated_crashed_disks distinct
/// disks faulted) that is a wait-freedom violation; beyond it, it is the
/// expected over-budget outcome — counted, and the partial history is
/// still checked for safety (the paper's guarantee degrades to safety
/// only, never to non-atomicity).
///
/// Partial-order reduction (sleep sets): two deliveries commute when they
/// target different registers (or are both reads of one register) *and*
/// neither can complete its issuer's current quorum wait (the waiter
/// still needs ≥ 2 completions — DetFarm reports each waiter's remaining
/// count at quiescence). Such pairs produce byte-identical recorded
/// histories in either order, so exploring one order suffices; pruned
/// branches are counted in Outcome::pruned. Deliveries that may unblock
/// a waiter change the real-time order of OPERATION begin/end events and
/// are never treated as independent — that conservatism is what keeps
/// the reduction sound for history-based validators.
///
/// This complements the two other verification layers:
///   * randomized campaigns (bench/campaigns.*) sample schedules;
///   * adversary/schedules.* replay the hand-built proof schedules;
///   * the explorer *enumerates* the decision tree of small scenarios,
///     finding violations (or certifying their absence) without human
///     guidance — it rediscovers the Fig. 2 non-atomicity on its own
///     (bench/explore_schedules) and serializes every counterexample as
///     a replayable trace.
///
/// Scope and guarantees: every explored schedule is a real execution
/// (soundness). Coverage is bounded: decisions are taken at *quiescent
/// points* only, scenarios must be deterministic given the decision
/// sequence, and at most one operation per (process, register, direction)
/// may be pending (the model's Section 2 discipline — RegisterSet
/// guarantees it), which is what makes replay keys stable across runs.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"
#include "sim/det_farm.h"
#include "sim/schedule_trace.h"

namespace nadreg::sim {

/// One (re-)execution of the scenario under exploration.
class ExplorationRun {
 public:
  virtual ~ExplorationRun() = default;
  /// True once every scenario thread has returned.
  virtual bool Done() const = 0;
  /// Called on a completed schedule after Done(); returns a violation
  /// description, or nullopt if the outcome is acceptable. Also called on
  /// stuck schedules after the farm was abandoned — the partial history
  /// must still be safe.
  virtual std::optional<std::string> Validate() = 0;
};

class ScheduleExplorer {
 public:
  struct Options {
    /// Stop after this many complete schedules (0 = unlimited).
    std::size_t max_schedules = 20000;
    /// Decisions per schedule (0 = unlimited). Needed for scenarios with
    /// retry loops (the SWMR wait phase, paxos ballots): an adversary
    /// that starves one process forever makes the decision tree
    /// infinitely deep, so a bounded-exhaustive run must cut it off.
    /// Deeper nodes mark the outcome truncated instead of recursing.
    std::size_t max_depth = 0;
    /// Tree nodes executed (0 = unlimited). The companion cap to
    /// max_depth: depth-truncated paths complete no schedule, so
    /// max_schedules alone cannot bound a sweep whose tree is infinitely
    /// deep — the node budget is what guarantees termination.
    std::size_t max_nodes = 0;
    /// Stop at the first violation.
    bool stop_at_first_violation = true;
    /// Counterexamples retained in Outcome::counterexamples; violations
    /// beyond the cap are still counted.
    std::size_t max_counterexamples = 8;
    /// Fault decisions (drop / crash-register) allowed per schedule.
    std::uint32_t crash_budget = 0;
    /// The paper's t: a stuck schedule whose fault decisions touched at
    /// most this many distinct disks is a wait-freedom violation; beyond
    /// it, the expected over-budget outcome.
    std::uint32_t tolerated_crashed_disks = 0;
    /// Sleep-set partial-order reduction (sound; see file comment).
    bool partial_order_reduction = true;
    /// Safety valve: how long WaitQuiescent may block before the run is
    /// declared divergent (a scenario thread blocking outside the
    /// scheduler-hook protocol would otherwise hang exploration).
    std::chrono::milliseconds quiesce_timeout{5000};
  };

  /// A violating schedule: what went wrong and how to get there again.
  struct Violation {
    std::string description;
    std::vector<Decision> schedule;
  };

  struct Outcome {
    std::size_t schedules = 0;  // complete schedules validated
    std::size_t nodes = 0;      // exploration tree nodes executed
    std::size_t violations = 0;
    std::size_t pruned = 0;       // branches skipped by sleep sets
    std::size_t stuck = 0;        // schedules that ended with blocked threads
    std::size_t over_budget = 0;  // stuck beyond tolerated_crashed_disks
    std::size_t replay_divergences = 0;
    bool truncated = false;  // hit max_schedules
    /// All violations found, capped at max_counterexamples, in discovery
    /// order.
    std::vector<Violation> counterexamples;
    /// Description + formatted schedule of the first violation (empty when
    /// clean) — the one-look diagnostic for test failure messages.
    std::string FirstViolation() const;
  };

  using RunFactory =
      std::function<std::unique_ptr<ExplorationRun>(DetFarm&)>;

  /// Explores the decision tree of the scenario (depth-first).
  Outcome Explore(const RunFactory& factory, const Options& opts);
  Outcome Explore(const RunFactory& factory) {
    return Explore(factory, Options{});
  }

  /// Monte-Carlo mode: `playouts` independent runs, each taking a
  /// uniformly random enabled decision at every quiescent point. Unlike
  /// SimFarm's delay-jitter randomness, a playout can reorder deliveries
  /// arbitrarily (old pending writes landing after many newer ones) and
  /// spend fault budget anywhere, which is adversary-grade coverage for
  /// scenarios too large to exhaust. Violations are validated exactly as
  /// in Explore.
  Outcome ExploreRandom(const RunFactory& factory, std::size_t playouts,
                        std::uint64_t seed, const Options& opts);

  /// Result of re-executing one serialized schedule.
  struct ReplayResult {
    /// A decision did not match any pending op at its quiescent point —
    /// the trace does not belong to this scenario/build.
    bool diverged = false;
    std::size_t applied = 0;  // decisions applied before divergence
    bool stuck = false;       // ended with surviving threads blocked
    /// The violation the schedule reproduces (nullopt = clean run).
    std::optional<std::string> violation;
  };

  /// Re-executes one schedule (e.g. a parsed counterexample trace). After
  /// the last decision the remaining run is drained deterministically in
  /// issue order, so a recorded counterexample reproduces its violation
  /// byte-for-byte and a shortened schedule still completes.
  ReplayResult ReplaySchedule(const RunFactory& factory,
                              const std::vector<Decision>& schedule,
                              const Options& opts);

  /// Greedy minimization: repeatedly deletes single decisions while the
  /// replay still (non-divergently) violates, to a fixpoint. Returns the
  /// shortest schedule found (the input if it does not violate).
  std::vector<Decision> MinimizeSchedule(const RunFactory& factory,
                                         const std::vector<Decision>& schedule,
                                         const Options& opts);
};

/// Formats a schedule for diagnostics: one numbered decision per line.
std::string FormatSchedule(const std::vector<Decision>& schedule);

}  // namespace nadreg::sim
