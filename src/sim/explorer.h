/// \file
/// Systematic schedule exploration over the deterministic farm — a bounded
/// model checker for the register emulations.
///
/// The adversary's only power in this model is choosing *when each issued
/// base-register operation takes effect*. The explorer enumerates those
/// choices: it repeatedly re-runs a scenario from scratch, replays a
/// prefix of delivery decisions, lets the system settle, branches on every
/// operation currently pending, and validates each completed schedule
/// (leaf) with a caller-supplied check — e.g. "is the recorded history
/// linearizable?".
///
/// This complements the two other verification layers:
///   * randomized campaigns (bench/campaigns.*) sample schedules;
///   * adversary/schedules.* replay the hand-built proof schedules;
///   * the explorer *enumerates* all delivery orders of small scenarios,
///     finding violations (or certifying their absence) without human
///     guidance — it rediscovers the Fig. 2 non-atomicity on its own
///     (bench/explore_schedules).
///
/// Scope and guarantees: every explored schedule is a real execution
/// (soundness). Coverage is bounded: schedules are delivery orders chosen
/// at *settle points* (states where no process can take a step without a
/// delivery), scenarios must be deterministic given the delivery order,
/// and at most one operation per (process, register) may be outstanding
/// (the model's Section 2 discipline — RegisterSet guarantees it), which
/// is what makes replay keys stable across runs.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"
#include "sim/det_farm.h"

namespace nadreg::sim {

/// One (re-)execution of the scenario under exploration.
class ExplorationRun {
 public:
  virtual ~ExplorationRun() = default;
  /// True once every scenario thread has returned.
  virtual bool Done() const = 0;
  /// Called on a completed schedule after Done(); returns a violation
  /// description, or nullopt if the outcome is acceptable.
  virtual std::optional<std::string> Validate() = 0;
};

class ScheduleExplorer {
 public:
  /// Stable identity of a pending operation for replay: at any settle
  /// point at most one op per (process, register, direction) is pending.
  struct OpKey {
    ProcessId p = kNoProcess;
    RegisterId r;
    bool is_write = false;

    friend auto operator<=>(const OpKey&, const OpKey&) = default;
  };

  struct Options {
    /// Stop after this many complete schedules (0 = unlimited).
    std::size_t max_schedules = 20000;
    /// Stop at the first violation.
    bool stop_at_first_violation = true;
    /// Settle detection: the issued-op counter must be stable across this
    /// many consecutive polls this far apart.
    std::chrono::microseconds settle_poll{150};
    int settle_stable_polls = 3;
    /// How long to wait for a replayed key to appear before declaring a
    /// replay divergence.
    std::chrono::milliseconds replay_timeout{2000};
  };

  struct Outcome {
    std::size_t schedules = 0;        // complete schedules validated
    std::size_t nodes = 0;            // exploration tree nodes executed
    std::size_t violations = 0;
    std::size_t replay_divergences = 0;
    bool truncated = false;           // hit max_schedules
    std::string first_violation;      // description + schedule
  };

  using RunFactory =
      std::function<std::unique_ptr<ExplorationRun>(DetFarm&)>;

  /// Explores all delivery orders of the scenario (depth-first).
  Outcome Explore(const RunFactory& factory, const Options& opts);
  Outcome Explore(const RunFactory& factory) {
    return Explore(factory, Options{});
  }

  /// Monte-Carlo mode: `playouts` independent runs, each delivering
  /// pending operations in a uniformly random order at every settle
  /// point. Unlike SimFarm's delay-jitter randomness, a playout can
  /// reorder deliveries arbitrarily (old pending writes landing after
  /// many newer ones), which is adversary-grade coverage for scenarios
  /// too large to exhaust. Violations are validated exactly as in
  /// Explore.
  Outcome ExploreRandom(const RunFactory& factory, std::size_t playouts,
                        std::uint64_t seed, const Options& opts);

 private:
  bool WaitAndDeliver(DetFarm& farm, const OpKey& key,
                      const Options& opts) const;
  void Settle(DetFarm& farm, const ExplorationRun& run,
              const Options& opts) const;
  void Drain(DetFarm& farm, const ExplorationRun& run) const;
  std::vector<OpKey> PendingKeys(DetFarm& farm) const;
};

/// Formats a schedule (sequence of delivery decisions) for diagnostics.
std::string FormatSchedule(const std::vector<ScheduleExplorer::OpKey>& keys);

}  // namespace nadreg::sim
