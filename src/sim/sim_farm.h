/// \file
/// Randomized threaded simulation of a farm of network-attached disks.
///
/// Each issued operation is assigned a random service delay drawn from a
/// seeded generator and is delivered (applied + handler invoked) by a
/// service thread when its deadline passes. Crashed registers stop
/// responding: their queued and future operations are silently dropped,
/// which is exactly the paper's unresponsive failure mode — the issuing
/// process can never distinguish "crashed" from "very slow".
///
/// This backend provides the asynchrony and crash behaviour needed to
/// validate the positive results under thousands of random schedules. For
/// proof-schedule control (covering writes, selective flushing) use
/// sim::DetFarm instead.
#pragma once

#include <chrono>
#include <cstdint>
#include <queue>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/base_register.h"
#include "common/sync.h"
#include "common/rng.h"
#include "common/types.h"
#include "faults/fault_sink.h"
#include "sim/register_store.h"

namespace nadreg::sim {

class SimFarm : public BaseRegisterClient, public faults::FaultSink {
 public:
  struct Options {
    std::uint64_t seed = 0x5eed;
    /// Service delay range, microseconds (uniform).
    std::uint64_t min_delay_us = 0;
    std::uint64_t max_delay_us = 300;
  };

  SimFarm() : SimFarm(Options{}) {}
  explicit SimFarm(Options opts);
  ~SimFarm() override;

  SimFarm(const SimFarm&) = delete;
  SimFarm& operator=(const SimFarm&) = delete;

  void IssueRead(ProcessId p, RegisterId r, ReadHandler done) override;
  void IssueWrite(ProcessId p, RegisterId r, Value v,
                  WriteHandler done) override;

  /// Coded-cell merges are served like writes, but the linearization point
  /// applies MergeCodedCell(current, delta) instead of overwriting.
  bool SupportsMerge() const override { return true; }
  void IssueMerge(ProcessId p, RegisterId r, Value delta,
                  WriteHandler done) override;

  // --- faults::FaultSink ---------------------------------------------------

  /// Crash a single register: it stops responding from now on.
  void CrashRegister(const RegisterId& r) override;
  /// Full disk crash: all (infinitely many) registers of the disk stop
  /// responding.
  void CrashDisk(DiskId d) override;
  /// Per-disk service-delay override (replaces Options' range for d).
  void DelayDisk(DiskId d, std::uint64_t min_us, std::uint64_t max_us) override;
  /// Silently swallows each new operation on d with probability
  /// permille/1000 (it counts as issued but never responds).
  void DropRequests(DiskId d, std::uint32_t permille) override;
  /// Clears the delay override and drop rate for d (crashes persist).
  void Heal(DiskId d) override;

  /// Counters of issued/completed base-register operations.
  OpStats stats() const;

  /// Number of operations issued but not yet delivered or dropped.
  std::size_t InFlight() const;

  /// Test/harness introspection: current register contents.
  Value Peek(const RegisterId& r) const;

 private:
  struct Event {
    std::chrono::steady_clock::time_point due;
    std::uint64_t seq = 0;  // tie-break, preserves issue order at equal due
    ProcessId p = kNoProcess;
    RegisterId r;
    bool is_write = false;
    bool is_merge = false;  // implies is_write; value holds the delta
    Value value;
    ReadHandler on_read;
    WriteHandler on_write;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.due != b.due) return a.due > b.due;
      return a.seq > b.seq;
    }
  };

  void Enqueue(Event ev);
  void ServiceLoop(std::stop_token stop);

  mutable Mutex mu_;
  CondVar cv_;
  std::priority_queue<Event, std::vector<Event>, EventLater> queue_
      GUARDED_BY(mu_);
  RegisterStore store_ GUARDED_BY(mu_);
  Rng rng_ GUARDED_BY(mu_);
  // lint-allow(tsa-coverage): immutable after construction
  Options opts_;
  // Recoverable (Heal-able) per-disk faults injected via FaultSink.
  std::unordered_map<DiskId, std::pair<std::uint64_t, std::uint64_t>>
      delay_override_ GUARDED_BY(mu_);
  std::unordered_map<DiskId, std::uint32_t> drop_permille_ GUARDED_BY(mu_);
  std::uint64_t next_seq_ GUARDED_BY(mu_) = 0;
  OpStats stats_ GUARDED_BY(mu_);
  std::size_t in_flight_ GUARDED_BY(mu_) = 0;
  // last member: joins before the rest is destroyed
  // lint-allow(tsa-coverage): set in the ctor, joined in the dtor
  std::jthread service_;
};

}  // namespace nadreg::sim
