#include "sim/active_farm.h"

#include <utility>

namespace nadreg::sim {

ActiveDiskFarm::ActiveDiskFarm(Options opts)
    : rng_(opts.seed),
      opts_(opts),
      service_([this](std::stop_token st) { ServiceLoop(st); }) {}

ActiveDiskFarm::~ActiveDiskFarm() {
  {
    MutexLock lock(mu_);
    service_.request_stop();
  }
  cv_.NotifyAll();
}

void ActiveDiskFarm::Enqueue(Event ev) {
  {
    MutexLock lock(mu_);
    const bool crashed = store_.IsCrashed(ev.r);
    switch (ev.kind) {
      case Event::Kind::kRead:
        ++stats_.reads_issued;
        break;
      case Event::Kind::kWrite:
        ++stats_.writes_issued;
        break;
      case Event::Kind::kRmw:
        ++rmw_issued_;
        break;
    }
    if (crashed) return;  // unresponsive
    const auto delay = std::chrono::microseconds(
        rng_.Between(opts_.min_delay_us, opts_.max_delay_us));
    ev.due = std::chrono::steady_clock::now() + delay;
    ev.seq = next_seq_++;
    queue_.push(std::move(ev));
  }
  cv_.NotifyAll();
}

void ActiveDiskFarm::IssueRead(ProcessId p, RegisterId r, ReadHandler done) {
  Event ev;
  ev.p = p;
  ev.r = r;
  ev.kind = Event::Kind::kRead;
  ev.on_read = std::move(done);
  Enqueue(std::move(ev));
}

void ActiveDiskFarm::IssueWrite(ProcessId p, RegisterId r, Value v,
                                WriteHandler done) {
  Event ev;
  ev.p = p;
  ev.r = r;
  ev.kind = Event::Kind::kWrite;
  ev.value = std::move(v);
  ev.on_write = std::move(done);
  Enqueue(std::move(ev));
}

void ActiveDiskFarm::IssueRmw(ProcessId p, RegisterId r, RmwFunction fn,
                              RmwHandler done) {
  Event ev;
  ev.p = p;
  ev.r = r;
  ev.kind = Event::Kind::kRmw;
  ev.rmw = std::move(fn);
  ev.on_rmw = std::move(done);
  Enqueue(std::move(ev));
}

void ActiveDiskFarm::CrashRegister(const RegisterId& r) {
  MutexLock lock(mu_);
  store_.CrashRegister(r);
}

void ActiveDiskFarm::CrashDisk(DiskId d) {
  MutexLock lock(mu_);
  store_.CrashDisk(d);
}

OpStats ActiveDiskFarm::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

std::uint64_t ActiveDiskFarm::RmwIssued() const {
  MutexLock lock(mu_);
  return rmw_issued_;
}

Value ActiveDiskFarm::Peek(const RegisterId& r) const {
  MutexLock lock(mu_);
  return store_.Get(r);
}

void ActiveDiskFarm::ServiceLoop(std::stop_token stop) {
  mu_.Lock();
  while (!stop.stop_requested()) {
    if (queue_.empty()) {
      cv_.Wait(mu_, [&] {
        mu_.AssertHeld();  // CondVar::Wait runs predicates under the lock
        return stop.stop_requested() || !queue_.empty();
      });
      continue;
    }
    const auto now = std::chrono::steady_clock::now();
    // Copy the deadline (wait_until retains its argument by reference and
    // Enqueue may reallocate the queue's storage meanwhile).
    const auto deadline = queue_.top().due;
    if (deadline > now) {
      cv_.WaitUntil(mu_, deadline, [&] {
        mu_.AssertHeld();
        return stop.stop_requested() ||
               (!queue_.empty() &&
                queue_.top().due <= std::chrono::steady_clock::now());
      });
      continue;
    }
    Event ev = queue_.top();
    queue_.pop();
    if (store_.IsCrashed(ev.r)) continue;

    Value previous;
    switch (ev.kind) {
      case Event::Kind::kRead:
        previous = store_.Get(ev.r);
        ++stats_.reads_completed;
        break;
      case Event::Kind::kWrite:
        store_.Apply(ev.r, std::move(ev.value));
        ++stats_.writes_completed;
        break;
      case Event::Kind::kRmw:
        previous = store_.Get(ev.r);
        store_.Apply(ev.r, ev.rmw(previous));  // atomic at this point
        ++rmw_completed_;
        break;
    }
    mu_.Unlock();
    switch (ev.kind) {
      case Event::Kind::kRead:
        if (ev.on_read) ev.on_read(std::move(previous));
        break;
      case Event::Kind::kWrite:
        if (ev.on_write) ev.on_write();
        break;
      case Event::Kind::kRmw:
        if (ev.on_rmw) ev.on_rmw(std::move(previous));
        break;
    }
    mu_.Lock();
  }
  mu_.Unlock();
}

}  // namespace nadreg::sim
