/// \file
/// Persistent counterexample traces for the schedule explorer.
///
/// A *schedule* is the sequence of adversary decisions the explorer made
/// at successive quiescent points of a run: which pending base-register
/// operation to deliver, which to drop, which register to crash. A
/// violating schedule serialized to this line-oriented text format is a
/// one-command local repro of a CI-found interleaving
/// (`bench/explore_schedules --replay <file>`).
///
/// Format — one decision per line, `#` starts a comment, an optional
/// `scenario <name>` line names the scenario registry entry the trace
/// belongs to:
///
///     # nadreg schedule trace v1
///     scenario mwsr-as-atomic
///     deliver p1 write 0:7
///     crash-register 1:7
///     drop p2 write 2:7
///     deliver p99 read 0:7
///
/// Deliveries and drops name the target operation by its stable replay
/// key (process, direction, register) — not by op id, which depends on
/// issue timing — and always resolve to the OLDEST pending match, so a
/// parsed trace replays the same interleaving the explorer executed.
/// The `<disk>:<block>` register token is shared with
/// faults::FaultPlan.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace nadreg::sim {

/// One adversary decision at a quiescent point of an exploration.
struct Decision {
  enum class Kind : std::uint8_t {
    kDeliver = 0,  ///< deliver the oldest pending op matching (p, dir, r)
    kDrop = 1,     ///< drop it instead: the op never responds
    kCrash = 2     ///< crash register r (drops all its pending ops too)
  };
  Kind kind = Kind::kDeliver;
  ProcessId p = kNoProcess;  // kDeliver / kDrop only
  RegisterId r;
  bool is_write = false;  // kDeliver / kDrop only

  friend auto operator<=>(const Decision&, const Decision&) = default;
};

/// True for decisions that consume the fault budget (drop / crash).
inline bool IsFaultDecision(const Decision& d) {
  return d.kind != Decision::Kind::kDeliver;
}

/// Renders one decision as its trace line (no newline).
std::string FormatDecision(const Decision& d);

/// A schedule plus the name of the scenario it drives.
struct ScheduleTrace {
  std::string scenario;  ///< registry key; empty when the caller knows
  std::vector<Decision> decisions;
};

/// Renders a trace as spec text (round-trips through ParseTrace).
std::string FormatTrace(const ScheduleTrace& trace);

/// Parses trace text. Returns kInvalid with a line-numbered message on
/// the first malformed line.
[[nodiscard]] Expected<ScheduleTrace> ParseTrace(std::string_view text);

/// Reads and parses a trace file (kUnavailable if unreadable).
[[nodiscard]] Expected<ScheduleTrace> LoadTraceFile(const std::string& path);

/// Writes a trace file (kUnavailable on I/O failure).
Status SaveTraceFile(const ScheduleTrace& trace, const std::string& path);

}  // namespace nadreg::sim
