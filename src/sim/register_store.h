// In-memory state of a farm of network-attached disks: lazily materialized
// register values plus crash bookkeeping. Shared by the randomized and
// deterministic simulation backends. Not thread safe by itself; backends
// guard it with their own lock.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "common/types.h"

namespace nadreg::sim {

/// Values and crash state for an unbounded address space of registers
/// grouped into disks. Every register starts holding the empty Value
/// ("infinitely many registers per disk", Section 6).
class RegisterStore {
 public:
  /// Current value of a register (initial value if never written).
  const Value& Get(const RegisterId& r) const {
    auto it = values_.find(r);
    return it == values_.end() ? kInitial : it->second;
  }

  /// Applies a write (the register's linearization point).
  void Apply(const RegisterId& r, Value v) { values_[r] = std::move(v); }

  /// Crashes one register: it stops responding to all operations
  /// (the paper's single-register crash; makes its disk "faulty").
  void CrashRegister(const RegisterId& r) { crashed_registers_.insert(r); }

  /// Full disk crash: every register of the disk — including the
  /// infinitely many never yet touched — stops responding.
  void CrashDisk(DiskId d) { crashed_disks_.insert(d); }

  bool IsCrashed(const RegisterId& r) const {
    return crashed_disks_.contains(r.disk) || crashed_registers_.contains(r);
  }

  bool IsDiskCrashed(DiskId d) const { return crashed_disks_.contains(d); }

  /// Number of registers that have ever been written (for introspection).
  std::size_t MaterializedCount() const { return values_.size(); }

  /// All materialized registers (checkpointing, introspection).
  const std::unordered_map<RegisterId, Value>& Values() const {
    return values_;
  }

 private:
  inline static const Value kInitial{};
  std::unordered_map<RegisterId, Value> values_;
  std::unordered_set<RegisterId> crashed_registers_;
  std::unordered_set<DiskId> crashed_disks_;
};

}  // namespace nadreg::sim
