/// \file
/// In-memory state of a farm of network-attached disks: lazily materialized
/// register values plus crash bookkeeping. Shared by the randomized and
/// deterministic simulation backends. Not thread safe by itself; backends
/// guard it with their own lock.
///
/// ShardedRegisterStore adds striped per-register locking on top: the NAD
/// daemon serves many connections concurrently, and a single global lock
/// around every Get/Apply serializes the whole farm. Stripes make accesses
/// to distinct registers (the common case: each emulation register lives
/// on its own block) contend only on their stripe.
#pragma once

#include <array>
#include <cassert>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/coded_cell.h"
#include "common/sync.h"
#include "common/types.h"

namespace nadreg::sim {

/// Values and crash state for an unbounded address space of registers
/// grouped into disks. Every register starts holding the empty Value
/// ("infinitely many registers per disk", Section 6).
class RegisterStore {
 public:
  /// Current value of a register (initial value if never written).
  const Value& Get(const RegisterId& r) const {
    auto it = values_.find(r);
    return it == values_.end() ? kInitial : it->second;
  }

  /// Applies a write (the register's linearization point).
  void Apply(const RegisterId& r, Value v) { values_[r] = std::move(v); }

  /// Applies a write from borrowed bytes, reusing the register's existing
  /// string capacity — the steady-state write path (same-size rewrites)
  /// performs no allocation, unlike Apply's fresh-Value handoff.
  void Assign(const RegisterId& r, std::string_view v) {
    values_[r].assign(v.data(), v.size());
  }

  /// Crashes one register: it stops responding to all operations
  /// (the paper's single-register crash; makes its disk "faulty").
  void CrashRegister(const RegisterId& r) { crashed_registers_.insert(r); }

  /// Full disk crash: every register of the disk — including the
  /// infinitely many never yet touched — stops responding.
  void CrashDisk(DiskId d) { crashed_disks_.insert(d); }

  bool IsCrashed(const RegisterId& r) const {
    return crashed_disks_.contains(r.disk) || crashed_registers_.contains(r);
  }

  bool IsDiskCrashed(DiskId d) const { return crashed_disks_.contains(d); }

  /// Number of registers that have ever been written (for introspection).
  std::size_t MaterializedCount() const { return values_.size(); }

  /// All materialized registers (checkpointing, introspection).
  const std::unordered_map<RegisterId, Value>& Values() const {
    return values_;
  }

 private:
  inline static const Value kInitial{};
  std::unordered_map<RegisterId, Value> values_;
  std::unordered_set<RegisterId> crashed_registers_;
  std::unordered_set<DiskId> crashed_disks_;
};

/// Thread-safe register store with striped per-register locking.
///
/// Values and per-register crash state shard across kStripes independent
/// RegisterStores, each behind its own mutex; whole-disk crash state is a
/// small separate set (checked lock-free-cheap on every access, mutated
/// only by fault injection).
///
/// LOCK ORDER (machine-checked where the analysis can see it, asserted in
/// QuiesceGuard where it cannot): stripe locks are only ever taken in
/// ascending stripe-index order — single-register operations take exactly
/// one, the checkpoint quiesce takes all of them ascending — and any
/// caller-owned lock (the server's journal mutex, inside ApplyOrdered's
/// write_ahead callback and after QuiesceGuard) nests strictly inside /
/// after the stripes. A batch apply (stripe i) can therefore never
/// deadlock against a checkpoint quiesce (stripes 0..k ascending): both
/// sides acquire stripes in the same global order.
class ShardedRegisterStore {
 public:
  static constexpr std::size_t kStripes = 16;

  /// RAII quiesce: holds every stripe lock, acquired in ascending stripe
  /// order (asserted), released in descending order. While alive, no
  /// write or apply can run anywhere in the store — the checkpoint path
  /// constructs one of these FIRST, then takes the journal mutex,
  /// matching the writer's stripe→journal order. The loop over stripes is
  /// beyond the static analysis, hence the NO_THREAD_SAFETY_ANALYSIS
  /// escape with this comment as the proof obligation.
  class QuiesceGuard {
   public:
    explicit QuiesceGuard(const ShardedRegisterStore& store)
        NO_THREAD_SAFETY_ANALYSIS : store_(store) {
      const Mutex* prev = nullptr;
      for (const Stripe& s : store_.stripes_) {
        // Ascending-order invariant: array iteration is address-ascending;
        // the assert turns the documented order into an executable check.
        assert(prev == nullptr || prev < &s.mu);
        s.mu.Lock();
        prev = &s.mu;
      }
    }
    ~QuiesceGuard() NO_THREAD_SAFETY_ANALYSIS {
      for (auto it = store_.stripes_.rbegin(); it != store_.stripes_.rend();
           ++it) {
        it->mu.Unlock();
      }
    }
    QuiesceGuard(const QuiesceGuard&) = delete;
    QuiesceGuard& operator=(const QuiesceGuard&) = delete;

    /// Merged copy of all materialized values — consistent across
    /// registers precisely because this guard is alive.
    RegisterStore Snapshot() const NO_THREAD_SAFETY_ANALYSIS {
      RegisterStore out;
      for (const Stripe& s : store_.stripes_) {
        for (const auto& [reg, value] : s.store.Values()) {
          out.Apply(reg, value);
        }
      }
      return out;
    }

   private:
    const ShardedRegisterStore& store_;
  };

  /// Current value of a register (copied out under the stripe lock).
  Value Get(const RegisterId& r) const {
    const Stripe& s = StripeFor(r);
    MutexLock lock(s.mu);
    return s.store.Get(r);
  }

  /// Runs `f(const Value&)` under the register's stripe lock — the
  /// zero-allocation read path: the caller copies the bytes wherever it
  /// needs them (e.g. a response arena) instead of receiving a fresh
  /// Value. `f` must not call back into the store (stripe lock held).
  template <typename F>
  void View(const RegisterId& r, F&& f) const {
    const Stripe& s = StripeFor(r);
    MutexLock lock(s.mu);
    f(s.store.Get(r));
  }

  /// Applies a write (the register's linearization point).
  void Apply(const RegisterId& r, Value v) {
    Stripe& s = StripeFor(r);
    MutexLock lock(s.mu);
    s.store.Apply(r, std::move(v));
  }

  /// Write-ahead variant: runs `write_ahead(value)` (e.g. a journal
  /// append) and then applies, both under the register's stripe lock, so
  /// per-register journal order always matches per-register apply order.
  /// The write is dropped when `write_ahead` returns false.
  template <typename Fn>
  bool ApplyOrdered(const RegisterId& r, Value v, Fn&& write_ahead) {
    Stripe& s = StripeFor(r);
    MutexLock lock(s.mu);
    if (!write_ahead(static_cast<const Value&>(v))) return false;
    s.store.Apply(r, std::move(v));
    return true;
  }

  /// ApplyOrdered from borrowed bytes (the zero-copy decode path): same
  /// ordering contract, but the value arrives as a view into the
  /// caller's receive buffer and is applied via RegisterStore::Assign,
  /// reusing the register's string capacity. `write_ahead` receives the
  /// same view.
  template <typename Fn>
  bool ApplyOrderedView(const RegisterId& r, std::string_view v,
                        Fn&& write_ahead) {
    Stripe& s = StripeFor(r);
    MutexLock lock(s.mu);
    if (!write_ahead(v)) return false;
    s.store.Assign(r, v);
    return true;
  }

  /// Coded-cell merge with the same write-ahead ordering contract as
  /// ApplyOrderedView: computes MergeCodedCell(current, delta) under the
  /// register's stripe lock, journals the *post-merge* cell (so replay is
  /// a plain Apply, independent of journal truncation points), then
  /// applies it. The delta arrives as a view into the caller's receive
  /// buffer; the merge is dropped when `write_ahead` returns false.
  template <typename Fn>
  bool MergeOrderedView(const RegisterId& r, std::string_view delta,
                        Fn&& write_ahead) {
    Stripe& s = StripeFor(r);
    MutexLock lock(s.mu);
    Value merged = MergeCodedCell(s.store.Get(r), delta);
    if (!write_ahead(std::string_view(merged))) return false;
    s.store.Apply(r, std::move(merged));
    return true;
  }

  void CrashRegister(const RegisterId& r) {
    Stripe& s = StripeFor(r);
    MutexLock lock(s.mu);
    s.store.CrashRegister(r);
  }

  void CrashDisk(DiskId d) {
    MutexLock lock(disk_mu_);
    crashed_disks_.insert(d);
  }

  bool IsCrashed(const RegisterId& r) const {
    {
      MutexLock lock(disk_mu_);
      if (crashed_disks_.contains(r.disk)) return true;
    }
    const Stripe& s = StripeFor(r);
    MutexLock lock(s.mu);
    return s.store.IsCrashed(r);
  }

  std::size_t MaterializedCount() const {
    std::size_t n = 0;
    for (const Stripe& s : stripes_) {
      MutexLock lock(s.mu);
      n += s.store.MaterializedCount();
    }
    return n;
  }

  /// Bulk-loads recovered state (start-up, before any concurrent access).
  void Load(const RegisterStore& from) {
    for (const auto& [reg, value] : from.Values()) Apply(reg, value);
  }

  /// Acquires every stripe lock (ascending order, see QuiesceGuard).
  [[nodiscard]] QuiesceGuard LockAll() const { return QuiesceGuard(*this); }

 private:
  struct Stripe {
    mutable Mutex mu;
    RegisterStore store GUARDED_BY(mu);
  };

  Stripe& StripeFor(const RegisterId& r) {
    return stripes_[std::hash<RegisterId>{}(r) % kStripes];
  }
  const Stripe& StripeFor(const RegisterId& r) const {
    return stripes_[std::hash<RegisterId>{}(r) % kStripes];
  }

  // The array itself is never resized or reseated; each element guards
  // its own contents via Stripe::mu (§12 rank 3).
  // lint-allow(tsa-coverage): elements self-guarded
  std::array<Stripe, kStripes> stripes_;
  mutable Mutex disk_mu_;
  std::unordered_set<DiskId> crashed_disks_ GUARDED_BY(disk_mu_);
};

}  // namespace nadreg::sim
