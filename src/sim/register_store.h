// In-memory state of a farm of network-attached disks: lazily materialized
// register values plus crash bookkeeping. Shared by the randomized and
// deterministic simulation backends. Not thread safe by itself; backends
// guard it with their own lock.
//
// ShardedRegisterStore adds striped per-register locking on top: the NAD
// daemon serves many connections concurrently, and a single global lock
// around every Get/Apply serializes the whole farm. Stripes make accesses
// to distinct registers (the common case: each emulation register lives
// on its own block) contend only on their stripe.
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/types.h"

namespace nadreg::sim {

/// Values and crash state for an unbounded address space of registers
/// grouped into disks. Every register starts holding the empty Value
/// ("infinitely many registers per disk", Section 6).
class RegisterStore {
 public:
  /// Current value of a register (initial value if never written).
  const Value& Get(const RegisterId& r) const {
    auto it = values_.find(r);
    return it == values_.end() ? kInitial : it->second;
  }

  /// Applies a write (the register's linearization point).
  void Apply(const RegisterId& r, Value v) { values_[r] = std::move(v); }

  /// Crashes one register: it stops responding to all operations
  /// (the paper's single-register crash; makes its disk "faulty").
  void CrashRegister(const RegisterId& r) { crashed_registers_.insert(r); }

  /// Full disk crash: every register of the disk — including the
  /// infinitely many never yet touched — stops responding.
  void CrashDisk(DiskId d) { crashed_disks_.insert(d); }

  bool IsCrashed(const RegisterId& r) const {
    return crashed_disks_.contains(r.disk) || crashed_registers_.contains(r);
  }

  bool IsDiskCrashed(DiskId d) const { return crashed_disks_.contains(d); }

  /// Number of registers that have ever been written (for introspection).
  std::size_t MaterializedCount() const { return values_.size(); }

  /// All materialized registers (checkpointing, introspection).
  const std::unordered_map<RegisterId, Value>& Values() const {
    return values_;
  }

 private:
  inline static const Value kInitial{};
  std::unordered_map<RegisterId, Value> values_;
  std::unordered_set<RegisterId> crashed_registers_;
  std::unordered_set<DiskId> crashed_disks_;
};

/// Thread-safe register store with striped per-register locking.
///
/// Values and per-register crash state shard across kStripes independent
/// RegisterStores, each behind its own mutex; whole-disk crash state is a
/// small separate set (checked lock-free-cheap on every access, mutated
/// only by fault injection). Lock order, where nesting is needed at all:
/// stripes ascending, then any caller-owned lock (e.g. a journal mutex
/// inside ApplyOrdered's write_ahead callback).
class ShardedRegisterStore {
 public:
  static constexpr std::size_t kStripes = 16;

  /// Current value of a register (copied out under the stripe lock).
  Value Get(const RegisterId& r) const {
    const Stripe& s = StripeFor(r);
    std::lock_guard lock(s.mu);
    return s.store.Get(r);
  }

  /// Applies a write (the register's linearization point).
  void Apply(const RegisterId& r, Value v) {
    Stripe& s = StripeFor(r);
    std::lock_guard lock(s.mu);
    s.store.Apply(r, std::move(v));
  }

  /// Write-ahead variant: runs `write_ahead(value)` (e.g. a journal
  /// append) and then applies, both under the register's stripe lock, so
  /// per-register journal order always matches per-register apply order.
  /// The write is dropped when `write_ahead` returns false.
  template <typename Fn>
  bool ApplyOrdered(const RegisterId& r, Value v, Fn&& write_ahead) {
    Stripe& s = StripeFor(r);
    std::lock_guard lock(s.mu);
    if (!write_ahead(static_cast<const Value&>(v))) return false;
    s.store.Apply(r, std::move(v));
    return true;
  }

  void CrashRegister(const RegisterId& r) {
    Stripe& s = StripeFor(r);
    std::lock_guard lock(s.mu);
    s.store.CrashRegister(r);
  }

  void CrashDisk(DiskId d) {
    std::lock_guard lock(disk_mu_);
    crashed_disks_.insert(d);
  }

  bool IsCrashed(const RegisterId& r) const {
    {
      std::lock_guard lock(disk_mu_);
      if (crashed_disks_.contains(r.disk)) return true;
    }
    const Stripe& s = StripeFor(r);
    std::lock_guard lock(s.mu);
    return s.store.IsCrashed(r);
  }

  std::size_t MaterializedCount() const {
    std::size_t n = 0;
    for (const Stripe& s : stripes_) {
      std::lock_guard lock(s.mu);
      n += s.store.MaterializedCount();
    }
    return n;
  }

  /// Bulk-loads recovered state (start-up, before any concurrent access).
  void Load(const RegisterStore& from) {
    for (const auto& [reg, value] : from.Values()) Apply(reg, value);
  }

  /// Acquires every stripe lock (ascending order). Holding the returned
  /// guards quiesces all writes — the checkpoint path takes these first,
  /// then the journal mutex, matching the writer's stripe→journal order.
  [[nodiscard]] std::vector<std::unique_lock<std::mutex>> LockAll() const {
    std::vector<std::unique_lock<std::mutex>> guards;
    guards.reserve(kStripes);
    for (const Stripe& s : stripes_) guards.emplace_back(s.mu);
    return guards;
  }

  /// Merged copy of all materialized values. Only consistent across
  /// registers while the caller holds LockAll().
  RegisterStore SnapshotLocked() const {
    RegisterStore out;
    for (const Stripe& s : stripes_) {
      for (const auto& [reg, value] : s.store.Values()) out.Apply(reg, value);
    }
    return out;
  }

 private:
  struct Stripe {
    mutable std::mutex mu;
    RegisterStore store;
  };

  Stripe& StripeFor(const RegisterId& r) {
    return stripes_[std::hash<RegisterId>{}(r) % kStripes];
  }
  const Stripe& StripeFor(const RegisterId& r) const {
    return stripes_[std::hash<RegisterId>{}(r) % kStripes];
  }

  std::array<Stripe, kStripes> stripes_;
  mutable std::mutex disk_mu_;
  std::unordered_set<DiskId> crashed_disks_;
};

}  // namespace nadreg::sim
