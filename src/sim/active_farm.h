/// \file
/// Simulated farm of ACTIVE disks (Acharya et al.; Riedel et al.) — disks
/// that can execute small programs against a block, i.e. atomic
/// read-modify-write, unlike the plain NADs of the paper's main model.
///
/// This substrate exists for the related-work baseline (Chockler & Malkhi,
/// "Active Disk Paxos with infinitely many processes", PODC 2002, cited as
/// [22]): a *ranked register* is implementable from fail-prone RMW blocks
/// — but not from plain read/write blocks — and yields uniform consensus
/// for unboundedly many processes. Keeping RMW in a separate farm type
/// keeps the model boundary visible in the type system: nothing in core/
/// can touch an RMW block.
///
/// Note the related-work subtlety the code mirrors: one cannot implement a
/// *reliable* RMW object from fail-prone ones (Jayanti–Chandra–Toueg), so
/// apps::RankedRegister does not try — it implements the weaker ranked-
/// register abstraction from 2t+1 fail-prone RMW blocks directly.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "common/base_register.h"
#include "common/sync.h"
#include "common/rng.h"
#include "common/types.h"
#include "faults/fault_sink.h"
#include "sim/register_store.h"
#include "sim/rmw_client.h"

namespace nadreg::sim {

/// Asynchronous access to fail-prone active-disk blocks with real-time
/// randomized delivery delays (the RMW analogue of SimFarm).
class ActiveDiskFarm : public ActiveDiskClient, public faults::FaultSink {
 public:
  struct Options {
    std::uint64_t seed = 0x5eed;
    std::uint64_t min_delay_us = 0;
    std::uint64_t max_delay_us = 300;
  };

  ActiveDiskFarm() : ActiveDiskFarm(Options{}) {}
  explicit ActiveDiskFarm(Options opts);
  ~ActiveDiskFarm() override;

  ActiveDiskFarm(const ActiveDiskFarm&) = delete;
  ActiveDiskFarm& operator=(const ActiveDiskFarm&) = delete;

  // Plain NAD operations (BaseRegisterClient).
  void IssueRead(ProcessId p, RegisterId r, ReadHandler done) override;
  void IssueWrite(ProcessId p, RegisterId r, Value v,
                  WriteHandler done) override;

  void IssueRmw(ProcessId p, RegisterId r, RmwFunction fn,
                RmwHandler done) override;

  void CrashRegister(const RegisterId& r) override;
  void CrashDisk(DiskId d) override;

  OpStats stats() const;
  std::uint64_t RmwIssued() const;
  Value Peek(const RegisterId& r) const;

 private:
  struct Event {
    std::chrono::steady_clock::time_point due;
    std::uint64_t seq = 0;
    ProcessId p = kNoProcess;
    RegisterId r;
    enum class Kind { kRead, kWrite, kRmw } kind = Kind::kRead;
    Value value;
    RmwFunction rmw;
    ReadHandler on_read;
    WriteHandler on_write;
    RmwHandler on_rmw;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.due != b.due) return a.due > b.due;
      return a.seq > b.seq;
    }
  };

  void Enqueue(Event ev);
  void ServiceLoop(std::stop_token stop);

  mutable Mutex mu_;
  CondVar cv_;
  std::priority_queue<Event, std::vector<Event>, EventLater> queue_
      GUARDED_BY(mu_);
  RegisterStore store_ GUARDED_BY(mu_);
  Rng rng_ GUARDED_BY(mu_);
  // lint-allow(tsa-coverage): immutable after construction
  Options opts_;
  std::uint64_t next_seq_ GUARDED_BY(mu_) = 0;
  OpStats stats_ GUARDED_BY(mu_);
  std::uint64_t rmw_issued_ GUARDED_BY(mu_) = 0;
  std::uint64_t rmw_completed_ GUARDED_BY(mu_) = 0;
  // last member: joins before the rest is destroyed
  // lint-allow(tsa-coverage): set in the ctor, joined in the dtor
  std::jthread service_;
};

}  // namespace nadreg::sim
