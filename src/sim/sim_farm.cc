#include "sim/sim_farm.h"

#include <utility>

#include "common/coded_cell.h"

namespace nadreg::sim {

SimFarm::SimFarm(Options opts)
    : rng_(opts.seed),
      opts_(opts),
      service_([this](std::stop_token st) { ServiceLoop(st); }) {}

SimFarm::~SimFarm() {
  {
    // The stop flag participates in the service thread's CV predicates;
    // setting it under the lock ensures the thread either sees it before
    // sleeping or is woken by the notify below (no lost wakeup).
    MutexLock lock(mu_);
    service_.request_stop();
  }
  cv_.NotifyAll();
}

void SimFarm::Enqueue(Event ev) {
  {
    MutexLock lock(mu_);
    if (store_.IsCrashed(ev.r)) {
      // Unresponsive register: the operation is accepted but will never be
      // serviced. It still counts as issued.
      if (ev.is_write) {
        ++stats_.writes_issued;
      } else {
        ++stats_.reads_issued;
      }
      return;
    }
    if (auto it = drop_permille_.find(ev.r.disk);
        it != drop_permille_.end() && rng_.Chance(it->second, 1000)) {
      // Lossy link: the operation is swallowed like a crash would swallow
      // it — issued, never serviced. Unlike a crash this heals.
      if (ev.is_write) {
        ++stats_.writes_issued;
      } else {
        ++stats_.reads_issued;
      }
      return;
    }
    std::uint64_t min_us = opts_.min_delay_us;
    std::uint64_t max_us = opts_.max_delay_us;
    if (auto it = delay_override_.find(ev.r.disk);
        it != delay_override_.end()) {
      min_us = it->second.first;
      max_us = it->second.second;
    }
    const auto delay = std::chrono::microseconds(rng_.Between(min_us, max_us));
    ev.due = std::chrono::steady_clock::now() + delay;
    ev.seq = next_seq_++;
    if (ev.is_write) {
      ++stats_.writes_issued;
    } else {
      ++stats_.reads_issued;
    }
    ++in_flight_;
    queue_.push(std::move(ev));
  }
  cv_.NotifyAll();
}

void SimFarm::IssueRead(ProcessId p, RegisterId r, ReadHandler done) {
  Event ev;
  ev.p = p;
  ev.r = r;
  ev.is_write = false;
  ev.on_read = std::move(done);
  Enqueue(std::move(ev));
}

void SimFarm::IssueWrite(ProcessId p, RegisterId r, Value v,
                         WriteHandler done) {
  Event ev;
  ev.p = p;
  ev.r = r;
  ev.is_write = true;
  ev.value = std::move(v);
  ev.on_write = std::move(done);
  Enqueue(std::move(ev));
}

void SimFarm::IssueMerge(ProcessId p, RegisterId r, Value delta,
                         WriteHandler done) {
  Event ev;
  ev.p = p;
  ev.r = r;
  ev.is_write = true;
  ev.is_merge = true;
  ev.value = std::move(delta);
  ev.on_write = std::move(done);
  Enqueue(std::move(ev));
}

void SimFarm::CrashRegister(const RegisterId& r) {
  MutexLock lock(mu_);
  store_.CrashRegister(r);
}

void SimFarm::CrashDisk(DiskId d) {
  MutexLock lock(mu_);
  store_.CrashDisk(d);
}

void SimFarm::DelayDisk(DiskId d, std::uint64_t min_us, std::uint64_t max_us) {
  MutexLock lock(mu_);
  delay_override_[d] = {min_us, max_us};
}

void SimFarm::DropRequests(DiskId d, std::uint32_t permille) {
  MutexLock lock(mu_);
  if (permille == 0) {
    drop_permille_.erase(d);
  } else {
    drop_permille_[d] = permille;
  }
}

void SimFarm::Heal(DiskId d) {
  MutexLock lock(mu_);
  delay_override_.erase(d);
  drop_permille_.erase(d);
}

OpStats SimFarm::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

std::size_t SimFarm::InFlight() const {
  MutexLock lock(mu_);
  return in_flight_;
}

Value SimFarm::Peek(const RegisterId& r) const {
  MutexLock lock(mu_);
  return store_.Get(r);
}

void SimFarm::ServiceLoop(std::stop_token stop) {
  mu_.Lock();
  while (!stop.stop_requested()) {
    if (queue_.empty()) {
      cv_.Wait(mu_, [&] {
        mu_.AssertHeld();  // CondVar::Wait runs predicates under the lock
        return stop.stop_requested() || !queue_.empty();
      });
      continue;
    }
    const auto now = std::chrono::steady_clock::now();
    // Copy the deadline: wait_until holds its time_point argument by
    // reference and re-reads it after every wake-up, while concurrent
    // Enqueue() calls may reallocate the queue's storage underneath it.
    const auto deadline = queue_.top().due;
    if (deadline > now) {
      cv_.WaitUntil(mu_, deadline, [&] {
        mu_.AssertHeld();
        return stop.stop_requested() ||
               (!queue_.empty() &&
                queue_.top().due <= std::chrono::steady_clock::now());
      });
      continue;
    }
    Event ev = queue_.top();
    queue_.pop();
    --in_flight_;
    if (store_.IsCrashed(ev.r)) {
      // Crashed while queued: the operation never responds. Its effect is
      // lost together with the register.
      continue;
    }
    Value read_result;
    if (ev.is_merge) {
      // Coded-cell linearization point: join the delta into the cell.
      store_.Apply(ev.r, MergeCodedCell(store_.Get(ev.r), ev.value));
      ++stats_.writes_completed;
    } else if (ev.is_write) {
      store_.Apply(ev.r, std::move(ev.value));  // linearization point
      ++stats_.writes_completed;
    } else {
      read_result = store_.Get(ev.r);  // linearization point
      ++stats_.reads_completed;
    }
    // Run the handler without holding the lock: it may issue further
    // base-register operations (e.g. the reader write-back in Section 6).
    mu_.Unlock();
    if (ev.is_write) {
      if (ev.on_write) ev.on_write();
    } else {
      if (ev.on_read) ev.on_read(std::move(read_result));
    }
    mu_.Lock();
  }
  mu_.Unlock();
}

}  // namespace nadreg::sim
