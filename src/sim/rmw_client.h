/// \file
/// Active-disk client interface: fail-prone blocks supporting atomic
/// read-modify-write in addition to the plain read/write operations of
/// BaseRegisterClient.
///
/// The paper's main model (plain NADs) cannot express RMW — that is the
/// point of keeping this a *separate* interface: nothing in core/ can
/// touch an RMW block, so the model boundary stays visible in the type
/// system. Two implementations exist: sim::ActiveDiskFarm (real time,
/// randomized delivery delays) and sim::DetFarm (deterministic,
/// adversary/explorer-controlled), so the Active Disk Paxos baseline can
/// be model-checked with the same explorer as the main emulations.
#pragma once

#include <functional>
#include <utility>

#include "common/base_register.h"
#include "common/coded_cell.h"
#include "common/types.h"

namespace nadreg::sim {

/// Handler for a read-modify-write: receives the block's value *before*
/// the modification.
using RmwHandler = std::function<void(Value previous)>;

/// The atomic modification a disk applies: maps old contents to new.
/// Must be a pure value transform — backends may run it while holding
/// internal locks.
using RmwFunction = std::function<Value(const Value& current)>;

/// Asynchronous access to fail-prone active-disk blocks.
class ActiveDiskClient : public BaseRegisterClient {
 public:
  /// Issues an atomic read-modify-write: at the operation's linearization
  /// point the disk computes fn(current), stores it, and responds with
  /// the previous value. Crashed blocks never respond.
  virtual void IssueRmw(ProcessId p, RegisterId r, RmwFunction fn,
                        RmwHandler done) = 0;

  /// An RMW block trivially subsumes the coded-cell join (a fixed,
  /// order-independent fn), so every active-disk substrate supports merge
  /// for free — DetFarm inherits this path, which keeps merges visible to
  /// the explorer as ordinary pending (RMW) write ops.
  bool SupportsMerge() const override { return true; }
  void IssueMerge(ProcessId p, RegisterId r, Value delta,
                  WriteHandler done) override {
    IssueRmw(
        p, r,
        [delta = std::move(delta)](const Value& current) {
          return MergeCodedCell(current, delta);
        },
        [done = std::move(done)](Value /*previous*/) {
          if (done) done();
        });
  }
};

}  // namespace nadreg::sim
