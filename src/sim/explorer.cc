#include "sim/explorer.h"

#include <algorithm>
#include <sstream>
#include <thread>

#include "common/rng.h"

namespace nadreg::sim {

namespace {

bool Matches(const DetFarm::PendingOp& op, const ScheduleExplorer::OpKey& key) {
  return op.p == key.p && op.r == key.r && op.is_write == key.is_write;
}

}  // namespace

bool ScheduleExplorer::WaitAndDeliver(DetFarm& farm, const OpKey& key,
                                      const Options& opts) const {
  const auto deadline = std::chrono::steady_clock::now() + opts.replay_timeout;
  for (;;) {
    auto candidates = farm.PendingWhere(
        [&](const DetFarm::PendingOp& op) { return Matches(op, key); });
    if (!candidates.empty()) {
      return farm.Deliver(candidates.front().id);
    }
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::yield();
  }
}

void ScheduleExplorer::Settle(DetFarm& farm, const ExplorationRun& run,
                              const Options& opts) const {
  // Wait until the scenario stops issuing: the issued-op counter and the
  // pending set must be stable across settle_stable_polls polls. Also
  // wait out the start-up window where nothing has been issued yet.
  int stable = 0;
  std::uint64_t last_issued = ~0ULL;
  std::size_t last_pending = ~std::size_t{0};
  for (;;) {
    const auto stats = farm.stats();
    const std::uint64_t issued = stats.TotalIssued();
    const std::size_t pending = farm.Pending().size();
    const bool anything = issued > 0 || run.Done();
    if (anything && issued == last_issued && pending == last_pending) {
      if (++stable >= opts.settle_stable_polls) return;
    } else {
      stable = 0;
    }
    last_issued = issued;
    last_pending = pending;
    // Settle() polls real worker threads from the driver side; it never
    // runs inside the simulated schedule. lint-allow(no-sleep): driver only
    std::this_thread::sleep_for(opts.settle_poll);
  }
}

void ScheduleExplorer::Drain(DetFarm& farm, const ExplorationRun& run) const {
  // Deliver everything (including chained re-issues) until every scenario
  // thread has finished. Used both to complete a leaf and to abandon an
  // inner node so its threads can be joined.
  while (!run.Done()) {
    if (farm.DeliverAll() == 0) {
      // Driver-side backoff while scenario threads catch up; delivery
      // order stays deterministic. lint-allow(no-sleep): driver only
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }
  // A finished thread may still have background ops outstanding.
  farm.DeliverAll();
}

std::vector<ScheduleExplorer::OpKey> ScheduleExplorer::PendingKeys(
    DetFarm& farm) const {
  std::vector<OpKey> keys;
  for (const auto& op : farm.Pending()) {
    keys.push_back(OpKey{op.p, op.r, op.is_write});
  }
  std::sort(keys.begin(), keys.end());
  // The Section 2 discipline (one outstanding op per process/register)
  // makes keys unique; duplicates would break replay, so drop them and
  // let the first occurrence stand for the pair (conservative).
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  return keys;
}

ScheduleExplorer::Outcome ScheduleExplorer::Explore(const RunFactory& factory,
                                                    const Options& opts) {
  Outcome outcome;
  std::vector<std::vector<OpKey>> work{{}};

  while (!work.empty()) {
    if (opts.max_schedules != 0 && outcome.schedules >= opts.max_schedules) {
      outcome.truncated = true;
      break;
    }
    if (opts.stop_at_first_violation && outcome.violations > 0) break;

    std::vector<OpKey> prefix = std::move(work.back());
    work.pop_back();
    ++outcome.nodes;

    DetFarm farm;
    auto run = factory(farm);

    bool replay_ok = true;
    for (const OpKey& key : prefix) {
      if (!WaitAndDeliver(farm, key, opts)) {
        replay_ok = false;
        break;
      }
    }
    if (!replay_ok) {
      ++outcome.replay_divergences;
      Drain(farm, *run);
      continue;
    }

    Settle(farm, *run, opts);
    const std::vector<OpKey> choices = PendingKeys(farm);

    if (choices.empty()) {
      // Leaf: a complete schedule. Finish the run and validate.
      Drain(farm, *run);
      ++outcome.schedules;
      if (auto violation = run->Validate()) {
        ++outcome.violations;
        if (outcome.first_violation.empty()) {
          outcome.first_violation =
              *violation + "\nschedule:\n" + FormatSchedule(prefix);
        }
      }
    } else {
      // Branch on every deliverable operation. Push in reverse so the
      // lexicographically first choice is explored first.
      for (auto it = choices.rbegin(); it != choices.rend(); ++it) {
        std::vector<OpKey> child = prefix;
        child.push_back(*it);
        work.push_back(std::move(child));
      }
      Drain(farm, *run);  // abandon this node's run cleanly
    }
  }
  return outcome;
}

ScheduleExplorer::Outcome ScheduleExplorer::ExploreRandom(
    const RunFactory& factory, std::size_t playouts, std::uint64_t seed,
    const Options& opts) {
  Outcome outcome;
  Rng rng(seed);
  for (std::size_t playout = 0; playout < playouts; ++playout) {
    if (opts.stop_at_first_violation && outcome.violations > 0) break;
    ++outcome.nodes;
    DetFarm farm;
    auto run = factory(farm);
    std::vector<OpKey> schedule;
    for (;;) {
      Settle(farm, *run, opts);
      auto pending = farm.Pending();
      if (pending.empty()) break;
      const auto& pick = pending[rng.Below(pending.size())];
      schedule.push_back(OpKey{pick.p, pick.r, pick.is_write});
      farm.Deliver(pick.id);
    }
    Drain(farm, *run);
    ++outcome.schedules;
    if (auto violation = run->Validate()) {
      ++outcome.violations;
      if (outcome.first_violation.empty()) {
        outcome.first_violation =
            *violation + "\nschedule (playout " + std::to_string(playout) +
            "):\n" + FormatSchedule(schedule);
      }
    }
  }
  return outcome;
}

std::string FormatSchedule(const std::vector<ScheduleExplorer::OpKey>& keys) {
  std::ostringstream os;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    os << "  " << i + 1 << ". deliver " << (keys[i].is_write ? "write" : "read")
       << " by p" << keys[i].p << " on disk " << keys[i].r.disk << " block "
       << keys[i].r.block << "\n";
  }
  return os.str();
}

}  // namespace nadreg::sim
