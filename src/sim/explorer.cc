#include "sim/explorer.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <sstream>
#include <tuple>
#include <utility>

#include "common/rng.h"

namespace nadreg::sim {

namespace {

bool Matches(const DetFarm::PendingOp& op, const Decision& d) {
  return op.p == d.p && op.r == d.r && op.is_write == d.is_write;
}

std::size_t CountFaults(const std::vector<Decision>& schedule) {
  std::size_t n = 0;
  for (const Decision& d : schedule) {
    if (IsFaultDecision(d)) ++n;
  }
  return n;
}

// Distinct disks touched by the schedule's fault decisions — the number
// of base objects the adversary has made faulty (paper's t accounting:
// a crashed or silently-dropping register makes its disk faulty).
std::size_t CountFaultyDisks(const std::vector<Decision>& schedule) {
  std::set<DiskId> disks;
  for (const Decision& d : schedule) {
    if (IsFaultDecision(d)) disks.insert(d.r.disk);
  }
  return disks.size();
}

// Applies one decision against the farm at a quiescent point. Deliveries
// and drops resolve to the OLDEST pending match of the replay key (the
// same rule the trace format documents). Returns false when nothing
// matches — a replay divergence.
bool ApplyDecision(DetFarm& farm, const Decision& d) {
  if (d.kind == Decision::Kind::kCrash) {
    farm.CrashRegister(d.r);
    return true;
  }
  auto candidates = farm.PendingWhere(
      [&](const DetFarm::PendingOp& op) { return Matches(op, d); });
  if (candidates.empty()) return false;
  return d.kind == Decision::Kind::kDeliver ? farm.Deliver(candidates[0].id)
                                            : farm.Drop(candidates[0].id);
}

// One branchable decision plus the POR facts about it at this node.
struct Enabled {
  Decision d;
  // Delivering this op cannot complete its issuer's current quorum wait
  // (the waiter reported remaining >= 2 at quiescence). Only wake-free
  // deliveries may commute — a wake changes which OPERATION ends next and
  // therefore the recorded real-time order.
  bool wake_free = false;
};

// Everything the adversary may do at this quiescent point, deliveries
// first in sorted key order, then (within budget) drops and register
// crashes. Sorted order is what makes exploration deterministic.
std::vector<Enabled> EnabledDecisions(const DetFarm::Quiescence& q,
                                      std::size_t faults_used,
                                      const ScheduleExplorer::Options& opts) {
  std::vector<Decision> keys;
  keys.reserve(q.pending.size());
  for (const DetFarm::PendingOp& op : q.pending) {
    keys.push_back(Decision{Decision::Kind::kDeliver, op.p, op.r, op.is_write});
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());

  std::vector<Enabled> out;
  for (const Decision& k : keys) {
    Enabled e;
    e.d = k;
    // Absent entry = the issuer is not currently in a tracked quorum wait
    // (e.g. parked at a covering gate): conservatively not wake-free.
    auto it = q.blocked_need.find(k.p);
    e.wake_free = it != q.blocked_need.end() && it->second > 1;
    out.push_back(e);
  }
  if (faults_used < opts.crash_budget) {
    for (const Decision& k : keys) {
      Enabled e;
      e.d = Decision{Decision::Kind::kDrop, k.p, k.r, k.is_write};
      out.push_back(e);
    }
    std::vector<RegisterId> regs;
    for (const Decision& k : keys) regs.push_back(k.r);
    std::sort(regs.begin(), regs.end());
    regs.erase(std::unique(regs.begin(), regs.end()), regs.end());
    for (const RegisterId& r : regs) {
      Enabled e;
      e.d = Decision{Decision::Kind::kCrash, kNoProcess, r, false};
      out.push_back(e);
    }
  }
  return out;
}

// The POR independence relation (see the file comment in explorer.h):
// two decisions commute iff both are wake-free deliveries that cannot
// race on a register's contents. Fault decisions never commute — a crash
// or drop changes which ops exist downstream.
bool Independent(const Enabled& a, const Enabled& b) {
  if (a.d.kind != Decision::Kind::kDeliver ||
      b.d.kind != Decision::Kind::kDeliver) {
    return false;
  }
  if (!a.wake_free || !b.wake_free) return false;
  return a.d.r != b.d.r || (!a.d.is_write && !b.d.is_write);
}

}  // namespace

std::string ScheduleExplorer::Outcome::FirstViolation() const {
  if (counterexamples.empty()) return {};
  const Violation& v = counterexamples.front();
  return v.description + "\nschedule:\n" + FormatSchedule(v.schedule);
}

namespace {

// Finishes an exploration run so its threads can be joined: deliver
// whatever is deliverable (in issue order), and poison the farm when the
// surviving threads are blocked forever. Every path out of a node goes
// through here — a leaked blocked thread would deadlock the jthread join
// in ~ThreadedScenario.
void AbortRun(DetFarm& farm, const ExplorationRun& run,
              const ScheduleExplorer::Options& opts) {
  int hopeless_rounds = 0;
  for (;;) {
    auto q = farm.WaitQuiescent(opts.quiesce_timeout);
    if (q.timed_out) {
      // A thread is blocked outside the scheduler-hook protocol. Poison
      // and retry; if that never helps, joining would hang anyway — fail
      // loudly instead.
      farm.Abandon();
      if (++hopeless_rounds >= 3) {
        std::fprintf(stderr,
                     "explorer: scenario thread stuck outside the "
                     "scheduler-hook protocol; cannot abort run\n");
        std::abort();
      }
      continue;
    }
    if (q.all_done) {
      farm.DeliverAll();  // trailing base ops of finished threads
      if (run.Done()) return;
      continue;  // Done() lags EndScenarioThread by a moment at most
    }
    if (!q.pending.empty()) {
      farm.DeliverAll();
      continue;
    }
    farm.Abandon();  // blocked forever: wake waiters to fail fast
  }
}

void RecordSchedule(ScheduleExplorer::Outcome& out,
                    const std::vector<Decision>& schedule,
                    std::optional<std::string> violation,
                    const ScheduleExplorer::Options& opts) {
  ++out.schedules;
  if (!violation) return;
  ++out.violations;
  if (out.counterexamples.size() < opts.max_counterexamples) {
    out.counterexamples.push_back(
        ScheduleExplorer::Violation{std::move(*violation), schedule});
  }
}

// A stuck leaf: quiescent, nothing pending, surviving threads blocked
// forever. Classify against the fault budget, then abandon and validate
// the partial history (safety must hold regardless).
void HandleStuck(ScheduleExplorer::Outcome& out,
                 const std::vector<Decision>& schedule, DetFarm& farm,
                 ExplorationRun& run, const ScheduleExplorer::Options& opts) {
  ++out.stuck;
  const std::size_t faulty = CountFaultyDisks(schedule);
  const bool within_budget = faulty <= opts.tolerated_crashed_disks;
  if (!within_budget) ++out.over_budget;
  AbortRun(farm, run, opts);
  std::optional<std::string> violation = run.Validate();
  if (!violation && within_budget) {
    violation = "wait-freedom violated: all threads blocked with only " +
                std::to_string(faulty) +
                " faulty disk(s), within the tolerated " +
                std::to_string(opts.tolerated_crashed_disks);
  }
  RecordSchedule(out, schedule, std::move(violation), opts);
}

}  // namespace

ScheduleExplorer::Outcome ScheduleExplorer::Explore(const RunFactory& factory,
                                                    const Options& opts) {
  Outcome outcome;
  struct WorkItem {
    std::vector<Decision> prefix;
    std::vector<Decision> sleep;  // POR sleep set inherited from the parent
  };
  std::vector<WorkItem> work{{}};

  while (!work.empty()) {
    if (opts.max_schedules != 0 && outcome.schedules >= opts.max_schedules) {
      outcome.truncated = true;
      break;
    }
    if (opts.max_nodes != 0 && outcome.nodes >= opts.max_nodes) {
      outcome.truncated = true;
      break;
    }
    if (opts.stop_at_first_violation && outcome.violations > 0) break;

    WorkItem item = std::move(work.back());
    work.pop_back();
    ++outcome.nodes;

    DetFarm farm;
    auto run = factory(farm);

    // Stateless re-execution: replay the prefix decision by decision,
    // each at its quiescent point.
    bool replay_ok = true;
    for (const Decision& d : item.prefix) {
      auto q = farm.WaitQuiescent(opts.quiesce_timeout);
      if (q.timed_out || !ApplyDecision(farm, d)) {
        replay_ok = false;
        break;
      }
    }
    if (!replay_ok) {
      ++outcome.replay_divergences;
      AbortRun(farm, *run, opts);
      continue;
    }

    auto q = farm.WaitQuiescent(opts.quiesce_timeout);
    if (q.timed_out) {
      ++outcome.replay_divergences;
      AbortRun(farm, *run, opts);
      continue;
    }

    if (run->Done()) {
      // Leaf. Only trailing base ops of finished OPERATIONs remain (Fig. 1
      // pending writes); no thread will observe them, so their order
      // cannot change the history — deliver in issue order and validate.
      farm.DeliverAll();
      RecordSchedule(outcome, item.prefix, run->Validate(), opts);
      continue;
    }

    if (q.pending.empty()) {
      HandleStuck(outcome, item.prefix, farm, *run, opts);
      continue;
    }

    if (opts.max_depth != 0 && item.prefix.size() >= opts.max_depth) {
      // Depth cutoff (retry-loop scenarios have infinite paths): the
      // subtree is unexplored, so the sweep is no longer exhaustive.
      outcome.truncated = true;
      AbortRun(farm, *run, opts);
      continue;
    }

    auto enabled = EnabledDecisions(q, CountFaults(item.prefix), opts);

    // Sleep-set filter: decisions explored by an already-visited sibling
    // subtree whose reorderings this subtree would only repeat.
    std::vector<Enabled> sleeping;
    std::vector<Enabled> branch;
    for (const Enabled& e : enabled) {
      const bool asleep =
          opts.partial_order_reduction &&
          std::find(item.sleep.begin(), item.sleep.end(), e.d) !=
              item.sleep.end();
      if (asleep) {
        sleeping.push_back(e);
        ++outcome.pruned;
      } else {
        branch.push_back(e);
      }
    }

    // Push children in reverse so the first decision is explored first
    // (depth-first). Child i sleeps on every earlier sibling j < i (and
    // every inherited sleeper) that is independent of decision i — those
    // interleavings are covered by the earlier subtree.
    for (std::size_t i = branch.size(); i-- > 0;) {
      WorkItem child;
      child.prefix = item.prefix;
      child.prefix.push_back(branch[i].d);
      if (opts.partial_order_reduction) {
        for (const Enabled& s : sleeping) {
          if (Independent(s, branch[i])) child.sleep.push_back(s.d);
        }
        for (std::size_t j = 0; j < i; ++j) {
          if (Independent(branch[j], branch[i])) {
            child.sleep.push_back(branch[j].d);
          }
        }
      }
      work.push_back(std::move(child));
    }

    AbortRun(farm, *run, opts);
  }
  return outcome;
}

ScheduleExplorer::Outcome ScheduleExplorer::ExploreRandom(
    const RunFactory& factory, std::size_t playouts, std::uint64_t seed,
    const Options& opts) {
  Outcome outcome;
  Rng rng(seed);
  for (std::size_t playout = 0; playout < playouts; ++playout) {
    if (opts.stop_at_first_violation && outcome.violations > 0) break;
    ++outcome.nodes;
    DetFarm farm;
    auto run = factory(farm);
    std::vector<Decision> schedule;
    bool diverged = false;
    bool cut = false;
    bool stuck = false;
    for (;;) {
      auto q = farm.WaitQuiescent(opts.quiesce_timeout);
      if (q.timed_out) {
        diverged = true;
        break;
      }
      if (run->Done()) break;
      if (q.pending.empty()) {
        stuck = true;
        break;
      }
      if (opts.max_depth != 0 && schedule.size() >= opts.max_depth) {
        cut = true;  // playout cut off: don't validate a partial run
        outcome.truncated = true;
        break;
      }
      auto enabled = EnabledDecisions(q, CountFaults(schedule), opts);
      const Enabled& pick = enabled[rng.Below(enabled.size())];
      schedule.push_back(pick.d);
      ApplyDecision(farm, pick.d);
    }
    if (diverged) {
      ++outcome.replay_divergences;
      AbortRun(farm, *run, opts);
      continue;
    }
    if (cut) {
      AbortRun(farm, *run, opts);
      continue;
    }
    if (stuck) {
      HandleStuck(outcome, schedule, farm, *run, opts);
      continue;
    }
    farm.DeliverAll();
    RecordSchedule(outcome, schedule, run->Validate(), opts);
  }
  return outcome;
}

ScheduleExplorer::ReplayResult ScheduleExplorer::ReplaySchedule(
    const RunFactory& factory, const std::vector<Decision>& schedule,
    const Options& opts) {
  ReplayResult result;
  DetFarm farm;
  auto run = factory(farm);

  for (const Decision& d : schedule) {
    auto q = farm.WaitQuiescent(opts.quiesce_timeout);
    if (q.timed_out || !ApplyDecision(farm, d)) {
      result.diverged = true;
      break;
    }
    ++result.applied;
  }
  if (result.diverged) {
    AbortRun(farm, *run, opts);
    return result;
  }

  // Drain the rest deterministically. For a shortened (minimized) schedule
  // this completes the run without further branching; for a full recorded
  // schedule only finished operations' trailing deliveries remain. The
  // drain delivers ONE op per quiescent round, picked by (process,
  // register, kind) rather than issue id: ids follow the arrival order of
  // concurrent threads' first ops, which varies run to run, so an
  // id-ordered DeliverAll with live threads would replay the same schedule
  // into different histories.
  for (;;) {
    auto q = farm.WaitQuiescent(opts.quiesce_timeout);
    if (q.timed_out) {
      result.diverged = true;
      AbortRun(farm, *run, opts);
      return result;
    }
    if (run->Done()) {
      farm.DeliverAll();  // trailing ops of finished operations only
      break;
    }
    if (q.pending.empty()) {
      result.stuck = true;
      AbortRun(farm, *run, opts);
      break;
    }
    const DetFarm::PendingOp* next = &q.pending.front();
    for (const DetFarm::PendingOp& op : q.pending) {
      if (std::tie(op.p, op.r, op.is_write, op.id) <
          std::tie(next->p, next->r, next->is_write, next->id)) {
        next = &op;
      }
    }
    farm.Deliver(next->id);
  }

  result.violation = run->Validate();
  if (!result.violation && result.stuck &&
      CountFaultyDisks(schedule) <= opts.tolerated_crashed_disks) {
    result.violation =
        "wait-freedom violated: all threads blocked within the fault budget";
  }
  return result;
}

std::vector<Decision> ScheduleExplorer::MinimizeSchedule(
    const RunFactory& factory, const std::vector<Decision>& schedule,
    const Options& opts) {
  std::vector<Decision> current = schedule;
  auto base = ReplaySchedule(factory, current, opts);
  if (base.diverged || !base.violation) return current;

  bool shrunk = true;
  while (shrunk) {
    shrunk = false;
    for (std::size_t i = 0; i < current.size();) {
      std::vector<Decision> candidate = current;
      candidate.erase(candidate.begin() + static_cast<std::ptrdiff_t>(i));
      auto r = ReplaySchedule(factory, candidate, opts);
      if (!r.diverged && r.violation) {
        current = std::move(candidate);
        shrunk = true;
      } else {
        ++i;
      }
    }
  }
  return current;
}

std::string FormatSchedule(const std::vector<Decision>& schedule) {
  std::ostringstream os;
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    os << "  " << i + 1 << ". " << FormatDecision(schedule[i]) << "\n";
  }
  return os.str();
}

}  // namespace nadreg::sim
