// TCP NAD client: implements the asynchronous fail-prone base-register
// interface (BaseRegisterClient) against real network-attached disk
// servers, so every emulation in core/ runs unchanged over the network.
//
// Each disk id maps to one server endpoint; the client keeps one
// connection per disk with a reader thread that dispatches responses to
// the completion handlers by request id, and a sender thread that drains
// a per-connection outgoing queue. Issue* therefore never touches the
// socket: it enqueues and returns — truly nonblocking even when the peer
// stops draining (the Fig. 1 model requires issue to return immediately;
// a blocking send would stall the whole process on one slow disk).
//
// Each sender drain pass coalesces every queued read/write bound for its
// disk into one kBatchReq frame (split at kMaxFrameBytes), so a quorum
// phase issued via IssueReads/IssueWrites costs one frame and one syscall
// per disk instead of one per register. A dead connection or a silently
// swallowed request simply means the handler never runs — precisely the
// crashed-register semantics the emulations are built to tolerate.
//
// Observability: every RPC's issue→response latency feeds the global
// metrics registry ("nad.client.read_us" / "nad.client.write_us"), the
// outstanding-operation depth is tracked as a gauge with high-watermark
// ("nad.client.in_flight"), the per-frame coalescing depth is recorded as
// "nad.client.batch_size", and each completed RPC emits a trace span when
// a capture is active (see obs/trace.h).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/base_register.h"
#include "common/status.h"
#include "common/sync.h"
#include "nad/protocol.h"
#include "nad/socket.h"
#include "obs/metrics.h"

namespace nadreg::nad {

class NadClient : public BaseRegisterClient {
 public:
  /// Back-compat alias: the endpoint type now lives in the protocol
  /// header, shared with the server CLI and demos.
  using Endpoint = nad::Endpoint;

  struct Options {
    /// When false, every operation is sent as its own per-op frame (the
    /// pre-batch opcodes) — the interop / ablation mode. The sender
    /// thread still makes issue nonblocking either way.
    bool enable_batching = true;
  };

  /// Connects to every endpoint. Fails (kUnavailable) if any connection
  /// cannot be established — a disk that is down at start-up should be
  /// mapped anyway and will simply appear crashed.
  static Expected<std::unique_ptr<NadClient>> Connect(
      std::map<DiskId, Endpoint> endpoints) {
    return Connect(std::move(endpoints), Options{});
  }
  static Expected<std::unique_ptr<NadClient>> Connect(
      std::map<DiskId, Endpoint> endpoints, Options options);

  ~NadClient() override;
  NadClient(const NadClient&) = delete;
  NadClient& operator=(const NadClient&) = delete;

  void IssueRead(ProcessId p, RegisterId r, ReadHandler done) override;
  void IssueWrite(ProcessId p, RegisterId r, Value v,
                  WriteHandler done) override;

  /// Vectored issue: all ops for the same disk are enqueued atomically,
  /// so one sender drain pass coalesces them into one batch frame.
  void IssueReads(ProcessId p, std::vector<ReadOp> ops) override;
  void IssueWrites(ProcessId p, std::vector<WriteOp> ops) override;

  /// Fetches the server-side metrics dump (STATS opcode) from one disk.
  /// Blocks up to `timeout`; kTimeout if the disk does not answer (a
  /// crashed disk swallows STATS like any other request), kUnavailable if
  /// the disk is unmapped or its connection is dead.
  Expected<std::string> QueryStats(DiskId d, std::chrono::milliseconds timeout);

  /// Number of operations whose response is still outstanding.
  std::size_t InFlight() const;

 private:
  struct PendingRead {
    ReadHandler handler;
    std::chrono::steady_clock::time_point start;
  };
  struct PendingWrite {
    WriteHandler handler;
    std::chrono::steady_clock::time_point start;
  };
  struct StatsWaiter {
    Mutex mu;
    CondVar cv;
    bool done GUARDED_BY(mu) = false;
    std::string text GUARDED_BY(mu);
  };
  // Lock order within a Conn: send_mu and pending_mu are never nested.
  struct Conn {
    Socket sock;
    Mutex send_mu;
    CondVar send_cv;
    std::deque<Message> outgoing GUARDED_BY(send_mu);
    // Send failed or client shutting down.
    bool closed GUARDED_BY(send_mu) = false;
    Mutex pending_mu;
    std::unordered_map<std::uint64_t, PendingRead> pending_reads
        GUARDED_BY(pending_mu);
    std::unordered_map<std::uint64_t, PendingWrite> pending_writes
        GUARDED_BY(pending_mu);
    std::unordered_map<std::uint64_t, std::shared_ptr<StatsWaiter>>
        pending_stats GUARDED_BY(pending_mu);
    std::jthread sender;
    std::jthread reader;
  };

  explicit NadClient(Options options);
  void ReaderLoop(Conn* conn);
  void SenderLoop(Conn* conn);
  /// Flushes a run of coalesced request messages into `wire` as one
  /// batch frame (or a per-op frame for a singleton / batching-off run).
  void FlushRun(std::vector<Message>* run, std::string* wire);
  void DispatchResponse(Conn* conn, Message msg);
  /// Enqueues one request on `conn` (caller must hold nothing). Returns
  /// false when the connection is closed — the op will never be sent.
  bool Enqueue(Conn* conn, Message msg);
  Conn* ConnFor(DiskId d);
  /// Drops an op whose value can never fit a frame: logs, counts, and
  /// leaves the handler unrun (fail-fast — nothing touches the wire).
  void RejectOversized(const RegisterId& r, std::size_t value_bytes);

  Options options_;
  std::atomic<std::uint64_t> next_request_id_{1};
  std::map<DiskId, std::unique_ptr<Conn>> conns_;

  // Resolved once; recording is lock-free (see obs/metrics.h).
  obs::Histogram* read_us_;
  obs::Histogram* write_us_;
  obs::Histogram* batch_size_;
  obs::Gauge* in_flight_;
  obs::Counter* rejected_oversized_;
};

}  // namespace nadreg::nad
