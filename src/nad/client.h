// TCP NAD client: implements the asynchronous fail-prone base-register
// interface (BaseRegisterClient) against real network-attached disk
// servers, so every emulation in core/ runs unchanged over the network.
//
// Each disk id maps to one server endpoint; the client keeps one
// connection per disk with a reader thread that dispatches responses to
// the completion handlers by request id. A dead connection or a silently
// swallowed request simply means the handler never runs — precisely the
// crashed-register semantics the emulations are built to tolerate.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/base_register.h"
#include "common/status.h"
#include "nad/protocol.h"
#include "nad/socket.h"

namespace nadreg::nad {

class NadClient : public BaseRegisterClient {
 public:
  struct Endpoint {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
  };

  /// Connects to every endpoint. Fails (kUnavailable) if any connection
  /// cannot be established — a disk that is down at start-up should be
  /// mapped anyway and will simply appear crashed.
  static Expected<std::unique_ptr<NadClient>> Connect(
      std::map<DiskId, Endpoint> endpoints);

  ~NadClient() override;
  NadClient(const NadClient&) = delete;
  NadClient& operator=(const NadClient&) = delete;

  void IssueRead(ProcessId p, RegisterId r, ReadHandler done) override;
  void IssueWrite(ProcessId p, RegisterId r, Value v,
                  WriteHandler done) override;

  /// Number of operations whose response is still outstanding.
  std::size_t InFlight() const;

 private:
  struct Conn {
    Socket sock;
    std::mutex send_mu;
    std::mutex pending_mu;
    std::unordered_map<std::uint64_t, ReadHandler> pending_reads;
    std::unordered_map<std::uint64_t, WriteHandler> pending_writes;
    std::jthread reader;
  };

  NadClient() = default;
  void ReaderLoop(Conn* conn);
  Conn* ConnFor(DiskId d);

  std::atomic<std::uint64_t> next_request_id_{1};
  std::map<DiskId, std::unique_ptr<Conn>> conns_;
};

}  // namespace nadreg::nad
