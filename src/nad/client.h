/// \file
/// TCP NAD client: implements the asynchronous fail-prone base-register
/// interface (BaseRegisterClient) against real network-attached disk
/// servers, so every emulation in core/ runs unchanged over the network.
///
/// The transport is an event-loop core (the Aerospike async-path shape,
/// ROADMAP item 1): N single-threaded epoll loops (Options::
/// num_event_loops, default = hardware concurrency), each owning a
/// disjoint pool of non-blocking connections with gather-write (writev)
/// framing, edge-triggered readiness, and a per-loop timer wheel that
/// absorbs what used to be a janitor thread (expiry sweeps) and the
/// reconnect CondVar waits (backoff redial timers). Completion handlers
/// run on the owning loop.
///
/// The client-facing API is one entry point: Submit(process, ops,
/// options) takes a vector of Op variants — reads, writes, coded-cell
/// merges, and STATS probes — each carrying its own completion;
/// OpOptions supplies a
/// per-submission deadline overriding Options::op_timeout. Submit never
/// touches a socket: it validates, counts the ops in flight, and posts
/// them to their owning loops — truly nonblocking even when a peer stops
/// draining (the Fig. 1 model requires issue to return immediately). The
/// classic IssueRead/IssueWrite/IssueReads/IssueWrites and QueryStats are
/// thin shims over Submit, so core::RegisterSet, quorum_wait.h, and all
/// emulations run unchanged.
///
/// Each admission pass coalesces every staged read/write bound for a disk
/// into one kBatchReq frame (split at kMaxFrameBytes), so a quorum phase
/// issued via IssueReads/IssueWrites costs one frame per disk instead of
/// one per register.
///
/// Failure handling (the chaos-tolerant transport under the paper's
/// fail-prone model):
///
///  * Reconnect — when a connection dies (send or recv failure), its loop
///    clears the wire buffers, schedules a redial on the timer wheel with
///    capped exponential backoff + jitter (nad/retry.h), performs a
///    non-blocking connect, and retransmits every still-pending request
///    on the new socket. Retransmission can apply a write twice; that is
///    harmless under the emulations' discipline — every base register has
///    at most one writer process with at most one outstanding write
///    (core::RegisterSet), so a duplicate is an idempotent replay of the
///    still-pending write, squarely within the Fig. 1 pending-write
///    semantics. STATS probes die with the link (kUnavailable) — both
///    the in-flight ones and any admitted before the link is back up.
///  * Expiry — every pending op with a finite deadline (Options::
///    op_timeout or an OpOptions deadline) is swept by a wheel timer
///    armed at the earliest expiry: read/write handlers simply never run
///    (crashed-register semantics; an expired-but-sent write is a
///    textbook pending write and the checkers treat it as such), STATS
///    handlers complete with kTimeout.
///  * Circuit breaking — reconnect failures or expiry sweeps open a
///    per-disk breaker (nad/retry.h). While open, IsSuspectedCrashed
///    (disk) returns true, so core::RegisterSet stops issuing doomed
///    operations to that disk instead of letting a phase hang on it;
///    after a cooldown the breaker half-opens and traffic probes again.
///
/// Ownership contract (DESIGN.md §12): all connection state — socket,
/// staged/wire queues, the pending-op table, breaker, backoff, timers —
/// is owned by the connection's loop and touched only on the loop thread
/// (the single-writer rule). The old send_mu → pending_mu nesting is
/// gone; the only client mutexes left are each loop's task inbox and the
/// QueryStats shim's private waiter. Cross-thread reads (InFlight, the
/// in-flight gauge, IsSuspectedCrashed) go through dedicated atomics
/// updated by the loops.
///
/// Hot-path memory discipline (DESIGN.md §14): in-flight state lives in
/// one PendingTable per connection (stable slab entries, no per-op node
/// allocations) instead of three unordered_maps; frames are built by
/// protocol.h's FrameWriter as WireChunks — headers bump-allocated from
/// a per-connection tx arena, write values referenced IN PLACE from
/// their pending-table entries — and gather-written straight to writev,
/// so a batched write's value bytes are copied exactly zero times
/// between Submit and the kernel (values small enough to be SSO are the
/// exception: they are copied into the arena so no chunk ever aliases a
/// string's inline buffer — see kSmallValueCopyBytes). Responses are
/// decoded as views (DecodeMessageView over the rx buffer + a per-frame
/// rx arena); the only hot-path copy left is materializing a read's
/// Value for its handler. The tx arena resets when the wire drains; the
/// rx arena resets after each frame dispatch. Heap-backed write values
/// whose ops expire while their bytes are still queued move to a
/// per-connection zombie list that dies when the wire drains — the
/// gather queue never dangles. Under sustained send backpressure the
/// queue is periodically compacted (CompactWire): the sent prefix,
/// its arena headers, and the zombies reclaim without a full drain.
///
/// Observability: per-RPC latency ("nad.client.read_us"/"write_us"),
/// outstanding depth ("nad.client.in_flight"), coalescing depth
/// ("nad.client.batch_size"), plus the fault-path series:
/// "nad.client.retries" (requests retransmitted after a reconnect),
/// "nad.client.reconnects" (successful reconnects),
/// "nad.client.reconnect_failures", "nad.client.expired" (operations
/// expired past their deadline) and "nad.client.breaker_open"
/// (closed/half-open → open transitions). Completed RPCs emit trace
/// spans (obs/trace.h). InFlight() and the in-flight gauge share one
/// atomic counter, so they agree at every instant — including across
/// expiry sweeps.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/base_register.h"
#include "common/op_options.h"
#include "common/status.h"
#include "nad/event_loop.h"
#include "nad/protocol.h"
#include "nad/retry.h"
#include "obs/metrics.h"

namespace nadreg::nad {

/// Tuning knobs for NadClient, passed to NadClient::Connect. Namespace
/// scope (aliased as NadClient::Options) so Connect can default it — a
/// nested class's member initializers are not usable in a default
/// argument of its own enclosing class.
struct ClientOptions {
  /// When false, every operation is sent as its own per-op frame (the
  /// pre-batch opcodes) — the interop / ablation mode. Admission stays
  /// nonblocking either way.
  bool enable_batching = true;
  /// When false, a dead connection stays dead (the pre-fault-injection
  /// behaviour: the disk appears crashed forever).
  bool enable_reconnect = true;
  /// Per-operation expiry budget. Zero = never expire (an unanswered
  /// op stays pending forever, exactly the paper's unresponsive mode).
  /// An OpOptions deadline passed to Submit overrides this per call.
  std::chrono::milliseconds op_timeout{0};
  /// Backoff and circuit-breaker tuning for the reconnect path.
  RetryPolicy retry;
  /// Event loops hosting the connections. 0 = one per hardware thread.
  /// Clamped to the connection count (a connection has exactly one
  /// owning loop); values above NadClient::kMaxEventLoops fail Connect
  /// with kInvalid.
  std::size_t num_event_loops = 0;
};

class NadClient : public BaseRegisterClient {
 public:
  /// Back-compat alias: the endpoint type now lives in the protocol
  /// header, shared with the server CLI and demos.
  using Endpoint = nad::Endpoint;

  /// Completion for a STATS op: the server's metrics dump on success,
  /// kTimeout when the deadline expired first, kUnavailable when the
  /// disk is unmapped or the connection died before an answer.
  using StatsHandler = std::function<void(Expected<std::string>)>;

  /// Sanity ceiling for Options::num_event_loops, validated at Connect.
  static constexpr std::size_t kMaxEventLoops = 256;

  using Options = ClientOptions;

  /// Connects to every endpoint. Fails (kUnavailable) if any connection
  /// cannot be established — a disk that is down at start-up should be
  /// mapped anyway and will simply appear crashed. kInvalid if
  /// `options.num_event_loops` exceeds kMaxEventLoops.
  static Expected<std::unique_ptr<NadClient>> Connect(
      std::map<DiskId, Endpoint> endpoints, Options options = {});

  ~NadClient() override;
  NadClient(const NadClient&) = delete;
  NadClient& operator=(const NadClient&) = delete;

  /// One operation of a Submit batch. Reads, writes, coded-cell merges,
  /// and STATS probes are variants of the same op shape, each with its
  /// own completion handler (run on the owning connection's loop thread —
  /// handlers must not block).
  struct Op {
    enum class Kind : std::uint8_t { kRead, kWrite, kMerge, kStats };

    Kind kind = Kind::kRead;
    /// Target register for reads/writes/merges; STATS uses only reg.disk.
    RegisterId reg{};
    Value value{};  // write payload or merge delta; unused otherwise
    ReadHandler on_read;
    WriteHandler on_write;  // completes writes AND merges
    StatsHandler on_stats;

    static Op Read(RegisterId r, ReadHandler done);
    static Op Write(RegisterId r, Value v, WriteHandler done);
    /// Coded-cell merge (common/coded_cell.h): the server joins `delta`
    /// into the register under its stripe lock. Rides the write path
    /// end to end — framing, batching, expiry, and retransmit after a
    /// reconnect (the join is idempotent, so a replay is harmless by
    /// construction, not just by the single-writer discipline).
    static Op Merge(RegisterId r, Value delta, WriteHandler done);
    static Op Stats(DiskId d, StatsHandler done);
  };

  /// The single issue path: validates each op, counts it in flight, and
  /// hands it to its disk's owning loop. Never blocks. Ops for the same
  /// disk submitted in one call are admitted atomically, so one
  /// admission pass coalesces them into one batch frame. Ops on an
  /// unmapped or closed-forever disk behave as crashed (the handler
  /// never runs), except STATS which completes with kUnavailable;
  /// oversized writes are dropped fail-fast (see RejectOversized).
  /// `opts.deadline`, when set, overrides Options::op_timeout for every
  /// op in this call.
  void Submit(ProcessId p, std::vector<Op> ops, const OpOptions& opts = {});

  // ---- Thin shims over Submit (the pre-redesign surface) ----
  void IssueRead(ProcessId p, RegisterId r, ReadHandler done) override;
  void IssueWrite(ProcessId p, RegisterId r, Value v,
                  WriteHandler done) override;
  void IssueReads(ProcessId p, std::vector<ReadOp> ops) override;
  void IssueWrites(ProcessId p, std::vector<WriteOp> ops) override;
  bool SupportsMerge() const override { return true; }
  void IssueMerge(ProcessId p, RegisterId r, Value delta,
                  WriteHandler done) override;
  void IssueMerges(ProcessId p, std::vector<WriteOp> ops) override;

  /// True while the disk's circuit breaker is open (or the disk is
  /// unmapped / shut down). See the class comment; consumed by
  /// core::RegisterSet to fail phases fast instead of hanging them.
  bool IsSuspectedCrashed(DiskId d) const override;

  /// Fetches the server-side metrics dump (STATS opcode) from one disk.
  /// A blocking shim over a Submit STATS op with an OpOptions deadline:
  /// kTimeout if the disk does not answer in time (a crashed disk
  /// swallows STATS like any other request), kUnavailable if the disk is
  /// unmapped or its connection is dead.
  Expected<std::string> QueryStats(DiskId d, std::chrono::milliseconds timeout);

  /// Number of operations whose response is still outstanding (reads,
  /// writes, and STATS probes). Always equals the nad.client.in_flight
  /// gauge: both read the same atomic counter.
  std::size_t InFlight() const;

  /// Event loops actually running (after defaulting and clamping).
  std::size_t NumEventLoops() const { return loops_.size(); }

 private:
  struct Conn;         // all state loop-owned; defined in client.cc
  struct SubmitEntry;  // one admitted op en route to its loop

  explicit NadClient(Options options);

  Conn* ConnFor(DiskId d) const;
  /// Expiry deadline for an op issued now.
  std::chrono::steady_clock::time_point ExpiryFrom(
      std::chrono::steady_clock::time_point now) const;
  /// Drops an op whose value can never fit a frame: logs, counts, and
  /// leaves the handler unrun (fail-fast — nothing touches the wire).
  void RejectOversized(const RegisterId& r, std::size_t value_bytes);
  /// Single-writer update of the shared in-flight count + gauge.
  void AddInFlight(std::int64_t delta);

  // ---- Loop-thread-only internals (see client.cc) ----
  void RegisterConn(Conn* conn);
  void Admit(std::vector<SubmitEntry> entries);
  void OnIoReady(Conn* conn, std::uint32_t events);
  bool DrainReads(Conn* conn);
  bool ParseFrames(Conn* conn);
  void HandleFrame(Conn* conn, std::string_view payload);
  void DispatchResponse(Conn* conn, const MessageView& msg);
  void FrameStaged(Conn* conn);
  void FlushRun(Conn* conn);
  void FlushWire(Conn* conn);
  /// Backpressure escape hatch: rewrites a partially-sent wire queue as
  /// one arena-backed chunk (protocol.h's CompactWire) so the sent chunk
  /// prefix, its arena headers, and the zombie values reclaim without
  /// waiting for a full drain.
  void CompactWireQueue(Conn* conn);
  void OnLinkBroken(Conn* conn);
  /// Fatal-handler body for a loop that died of an epoll failure: marks
  /// its connections dead-for-good (suspected forever) and resolves
  /// their pending ops — read/write handlers destroyed unrun, STATS
  /// failed kUnavailable — since no sweep or redial will ever run there.
  void OnLoopDead(EventLoop* loop);
  void ScheduleRedial(Conn* conn);
  void StartRedial(Conn* conn);
  void OnRedialFailed(Conn* conn);
  void OnRedialConnected(Conn* conn);
  void MaybeArmSweep(Conn* conn, std::chrono::steady_clock::time_point at);
  void Sweep(Conn* conn);
  void RecordBreakerFailure(Conn* conn,
                            std::chrono::steady_clock::time_point now);
  void PublishSuspicion(Conn* conn,
                        std::chrono::steady_clock::time_point now);

  Options options_;
  std::vector<std::unique_ptr<EventLoop>> loops_;
  std::map<DiskId, std::unique_ptr<Conn>> conns_;

  /// Source of truth for InFlight() and the in-flight gauge (the two can
  /// never disagree: every admit/complete/expire/drop updates both
  /// through AddInFlight).
  std::atomic<std::int64_t> in_flight_count_{0};

  // Resolved once; recording is lock-free (see obs/metrics.h).
  obs::Histogram* read_us_;
  obs::Histogram* write_us_;
  obs::Histogram* batch_size_;
  obs::Gauge* in_flight_;
  obs::Counter* rejected_oversized_;
  obs::Counter* retries_;
  obs::Counter* reconnects_;
  obs::Counter* reconnect_failures_;
  obs::Counter* expired_;
  obs::Counter* breaker_open_;
};

}  // namespace nadreg::nad
