/// \file
/// TCP NAD client: implements the asynchronous fail-prone base-register
/// interface (BaseRegisterClient) against real network-attached disk
/// servers, so every emulation in core/ runs unchanged over the network.
///
/// Each disk id maps to one server endpoint; the client keeps one
/// connection per disk with a reader thread that dispatches responses to
/// the completion handlers by request id, and a sender thread that drains
/// a per-connection outgoing queue. Issue* therefore never touches the
/// socket: it enqueues and returns — truly nonblocking even when the peer
/// stops draining (the Fig. 1 model requires issue to return immediately;
/// a blocking send would stall the whole process on one slow disk).
///
/// Each sender drain pass coalesces every queued read/write bound for its
/// disk into one kBatchReq frame (split at kMaxFrameBytes), so a quorum
/// phase issued via IssueReads/IssueWrites costs one frame and one syscall
/// per disk instead of one per register.
///
/// Failure handling (the chaos-tolerant transport under the paper's
/// fail-prone model):
///
///  * Reconnect — when a connection dies (send or recv failure), the
///    reader parks, the sender re-establishes the connection with capped
///    exponential backoff + jitter (nad/retry.h; CondVar waits, never raw
///    sleeps, so shutdown interrupts instantly), then retransmits every
///    still-pending request on the new socket. Retransmission can apply a
///    write twice; that is harmless under the emulations' discipline —
///    every base register has at most one writer process with at most one
///    outstanding write (core::RegisterSet), so a duplicate is an
///    idempotent replay of the still-pending write, squarely within the
///    Fig. 1 pending-write semantics.
///  * Expiry — with Options::op_timeout set, a janitor thread expires
///    pending operations past their deadline: the handler simply never
///    runs (crashed-register semantics; an expired-but-sent write is a
///    textbook pending write and the checkers treat it as such).
///  * Circuit breaking — consecutive reconnect failures or expiry sweeps
///    open a per-disk breaker (nad/retry.h). While open,
///    IsSuspectedCrashed(disk) returns true, so core::RegisterSet stops
///    issuing doomed operations to that disk instead of letting a phase
///    hang on it; after a cooldown the breaker half-opens and traffic
///    probes the disk again.
///
/// Lock/ownership contract (DESIGN.md §12): each Conn has send_mu
/// (socket/outgoing/lifecycle state) and pending_mu (pending-op maps).
/// Nesting order is send_mu → pending_mu (the reconnect rebuild walks the
/// pending maps while holding send_mu); no path takes them in the other
/// order. The sender thread is the only writer of Conn::sock, and only
/// while the reader is parked, so the loops use the socket without locks.
///
/// Observability: per-RPC latency ("nad.client.read_us"/"write_us"),
/// outstanding depth ("nad.client.in_flight"), coalescing depth
/// ("nad.client.batch_size"), plus the fault-path series:
/// "nad.client.retries" (requests retransmitted after a reconnect),
/// "nad.client.reconnects" (successful reconnects),
/// "nad.client.reconnect_failures", "nad.client.expired" (operations
/// expired by the janitor) and "nad.client.breaker_open" (closed/half-open
/// → open transitions). Completed RPCs emit trace spans (obs/trace.h).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/base_register.h"
#include "common/status.h"
#include "common/sync.h"
#include "nad/protocol.h"
#include "nad/retry.h"
#include "nad/socket.h"
#include "obs/metrics.h"

namespace nadreg::nad {

class NadClient : public BaseRegisterClient {
 public:
  /// Back-compat alias: the endpoint type now lives in the protocol
  /// header, shared with the server CLI and demos.
  using Endpoint = nad::Endpoint;

  struct Options {
    /// When false, every operation is sent as its own per-op frame (the
    /// pre-batch opcodes) — the interop / ablation mode. The sender
    /// thread still makes issue nonblocking either way.
    bool enable_batching = true;
    /// When false, a dead connection stays dead (the pre-fault-injection
    /// behaviour: the disk appears crashed forever).
    bool enable_reconnect = true;
    /// Per-operation expiry budget. Zero = never expire (an unanswered
    /// op stays pending forever, exactly the paper's unresponsive mode).
    std::chrono::milliseconds op_timeout{0};
    /// Backoff and circuit-breaker tuning for the reconnect path.
    RetryPolicy retry;
  };

  /// Connects to every endpoint. Fails (kUnavailable) if any connection
  /// cannot be established — a disk that is down at start-up should be
  /// mapped anyway and will simply appear crashed.
  static Expected<std::unique_ptr<NadClient>> Connect(
      std::map<DiskId, Endpoint> endpoints) {
    return Connect(std::move(endpoints), Options{});
  }
  static Expected<std::unique_ptr<NadClient>> Connect(
      std::map<DiskId, Endpoint> endpoints, Options options);

  ~NadClient() override;
  NadClient(const NadClient&) = delete;
  NadClient& operator=(const NadClient&) = delete;

  void IssueRead(ProcessId p, RegisterId r, ReadHandler done) override;
  void IssueWrite(ProcessId p, RegisterId r, Value v,
                  WriteHandler done) override;

  /// Vectored issue: all ops for the same disk are enqueued atomically,
  /// so one sender drain pass coalesces them into one batch frame.
  void IssueReads(ProcessId p, std::vector<ReadOp> ops) override;
  void IssueWrites(ProcessId p, std::vector<WriteOp> ops) override;

  /// True while the disk's circuit breaker is open (or the disk is
  /// unmapped / shut down). See the class comment; consumed by
  /// core::RegisterSet to fail phases fast instead of hanging them.
  bool IsSuspectedCrashed(DiskId d) const override;

  /// Fetches the server-side metrics dump (STATS opcode) from one disk.
  /// Blocks up to `timeout`; kTimeout if the disk does not answer (a
  /// crashed disk swallows STATS like any other request), kUnavailable if
  /// the disk is unmapped or its connection is dead.
  Expected<std::string> QueryStats(DiskId d, std::chrono::milliseconds timeout);

  /// Number of operations whose response is still outstanding.
  std::size_t InFlight() const;

 private:
  struct PendingRead {
    ReadHandler handler;
    std::chrono::steady_clock::time_point start;
    RegisterId reg;  // for retransmission after a reconnect
    std::chrono::steady_clock::time_point expires;
  };
  struct PendingWrite {
    WriteHandler handler;
    std::chrono::steady_clock::time_point start;
    RegisterId reg;   // for retransmission after a reconnect
    Value value;      // ditto
    std::chrono::steady_clock::time_point expires;
  };
  struct StatsWaiter {
    Mutex mu;
    CondVar cv;
    bool done GUARDED_BY(mu) = false;
    std::string text GUARDED_BY(mu);
  };
  // Lock order within a Conn: send_mu → pending_mu (reconnect rebuilds
  // the outgoing queue from the pending maps); never the reverse.
  struct Conn {
    DiskId disk = 0;
    Endpoint endpoint;  // immutable; reconnect target
    // Written only by the sender thread, and only while the reader is
    // parked (see reader_parked) — so both loops use it lock-free.
    Socket sock;
    Mutex send_mu;
    CondVar send_cv;
    std::deque<Message> outgoing GUARDED_BY(send_mu);
    /// Current socket known dead; sender owns re-establishing it.
    bool broken GUARDED_BY(send_mu) = false;
    /// Client shutting down (or reconnect disabled and the socket died).
    bool closed GUARDED_BY(send_mu) = false;
    /// Reader is waiting for a fresh socket (generation bump) or closed.
    bool reader_parked GUARDED_BY(send_mu) = false;
    /// Bumped per successful reconnect; the parked reader waits on it.
    std::uint64_t generation GUARDED_BY(send_mu) = 1;
    CircuitBreaker breaker GUARDED_BY(send_mu);
    Mutex pending_mu;
    std::unordered_map<std::uint64_t, PendingRead> pending_reads
        GUARDED_BY(pending_mu);
    std::unordered_map<std::uint64_t, PendingWrite> pending_writes
        GUARDED_BY(pending_mu);
    std::unordered_map<std::uint64_t, std::shared_ptr<StatsWaiter>>
        pending_stats GUARDED_BY(pending_mu);
    std::jthread sender;
    std::jthread reader;

    explicit Conn(const RetryPolicy& policy) : breaker(policy) {}
  };

  explicit NadClient(Options options);
  void ReaderLoop(Conn* conn);
  void SenderLoop(Conn* conn);
  /// Expires pending ops past their deadline (only runs with op_timeout).
  void JanitorLoop(std::stop_token stop);
  /// One janitor pass over one connection; returns ops expired.
  std::size_t SweepExpired(Conn* conn,
                           std::chrono::steady_clock::time_point now);
  /// Sender-side reconnect: waits for the reader to park, backs off,
  /// redials, and retransmits pending ops. Entered and left with send_mu
  /// held; returns false when the connection is closed for good.
  bool ReconnectLocked(Conn* conn, BackoffState* backoff, Rng* rng)
      REQUIRES(conn->send_mu);
  /// Flushes a run of coalesced request messages into `wire` as one
  /// batch frame (or a per-op frame for a singleton / batching-off run).
  void FlushRun(std::vector<Message>* run, std::string* wire);
  void DispatchResponse(Conn* conn, Message msg);
  /// Enqueues one request on `conn` (caller must hold nothing). Returns
  /// false when the connection is closed — the op will never be sent.
  bool Enqueue(Conn* conn, Message msg);
  Conn* ConnFor(DiskId d) const;
  /// Expiry deadline for an op issued now.
  std::chrono::steady_clock::time_point ExpiryFrom(
      std::chrono::steady_clock::time_point now) const;
  /// Drops an op whose value can never fit a frame: logs, counts, and
  /// leaves the handler unrun (fail-fast — nothing touches the wire).
  void RejectOversized(const RegisterId& r, std::size_t value_bytes);

  Options options_;
  std::atomic<std::uint64_t> next_request_id_{1};
  std::map<DiskId, std::unique_ptr<Conn>> conns_;

  Mutex janitor_mu_;
  CondVar janitor_cv_;
  bool janitor_stop_ GUARDED_BY(janitor_mu_) = false;
  std::jthread janitor_;

  // Resolved once; recording is lock-free (see obs/metrics.h).
  obs::Histogram* read_us_;
  obs::Histogram* write_us_;
  obs::Histogram* batch_size_;
  obs::Gauge* in_flight_;
  obs::Counter* rejected_oversized_;
  obs::Counter* retries_;
  obs::Counter* reconnects_;
  obs::Counter* reconnect_failures_;
  obs::Counter* expired_;
  obs::Counter* breaker_open_;
};

}  // namespace nadreg::nad
