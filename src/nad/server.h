/// \file
/// TCP network-attached disk daemon.
///
/// Serves read-block / write-block requests for any number of disks over
/// TCP, one frame-oriented connection per client. Matches the paper's NAD
/// model: per-connection requests are served in FIFO order (a disk queue);
/// an optional artificial service delay models a slow disk; a crashed
/// register or disk silently stops answering (unresponsive mode) — the
/// request is swallowed, never errored.
///
/// Fault injection: the daemon is a faults::FaultSink, so a FaultInjector
/// can drive it like a simulated farm. The crash faults delegate to the
/// store (permanent, the paper's model); the transport faults are a
/// *fault filter* applied per request frame before ServeOp — a stalled
/// daemon holds requests until the stall elapses, a lossy daemon drops
/// each frame with the configured probability, DisconnectDisk severs all
/// established connections (the daemon keeps listening, so reconnecting
/// clients recover), and Heal clears every recoverable fault. One daemon
/// is one fault domain: the DiskId arguments of the transport faults are
/// ignored.
///
/// Concurrency: register state lives in a sim::ShardedRegisterStore with
/// striped per-register locking, so connections serving distinct registers
/// never contend on a global lock. The kBatchReq opcode is served
/// vectored: every sub-operation of the batch is executed in order and the
/// surviving sub-responses come back in one kBatchResp frame — a crashed
/// register's sub-response is silently omitted, preserving per-register
/// unresponsiveness inside a batch. Lock order (DESIGN.md §12): stripe
/// locks before journal_mu_; mu_ (connection bookkeeping, stall state)
/// nests with neither.
///
/// Memory discipline (DESIGN.md §14): the serve loop is zero-copy end to
/// end. Frames are read through a FrameReader (one buffer per connection,
/// many frames per recv), decoded into MessageViews over that buffer, and
/// answered through a FrameWriter into a per-connection arena gathered out
/// with one sendmsg — write values are journaled and applied straight from
/// the receive buffer; a read's value is copied exactly once, out of the
/// store into the response arena under the stripe lock. The arena and the
/// chunk list reset per request frame. Because a batch's crashed registers
/// omit their sub-responses, the survivor count is backpatched into the
/// response frame after serving (PutSlotU32/Patch32).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/sync.h"
#include "common/types.h"
#include "faults/fault_sink.h"
#include "nad/persistence.h"
#include "nad/protocol.h"
#include "nad/socket.h"
#include "obs/metrics.h"
#include "sim/register_store.h"

namespace nadreg::nad {

class NadServer : public faults::FaultSink {
 public:
  struct Options {
    std::uint16_t port = 0;  // 0: ephemeral, see port()
    std::string host = "127.0.0.1";  // bind address ("0.0.0.0" for all)
    std::uint64_t seed = 0x5eed;
    /// Artificial per-request service delay range (microseconds). A batch
    /// frame counts as one request — it is one vectored disk operation.
    std::uint64_t min_delay_us = 0;
    std::uint64_t max_delay_us = 0;
    /// Durability: when non-empty, applied writes are journaled to
    /// <data_path>.log (write-ahead of the response) and recovered on
    /// Start; Checkpoint() compacts into <data_path>.snap.
    std::string data_path;
  };

  /// Binds and starts serving. Returns kUnavailable if the port is taken
  /// or (with data_path set) the state cannot be recovered/journaled.
  static Expected<std::unique_ptr<NadServer>> Start(Options opts);

  ~NadServer() override;
  NadServer(const NadServer&) = delete;
  NadServer& operator=(const NadServer&) = delete;

  std::uint16_t port() const { return port_; }

  // --- faults::FaultSink (see the file comment) ---------------------------

  /// Crash faults: same semantics as the simulated farm (permanent).
  void CrashRegister(const RegisterId& r) override;
  void CrashDisk(DiskId d) override;
  /// Runtime per-request service-delay override (replaces Options' range).
  void DelayDisk(DiskId d, std::uint64_t min_us, std::uint64_t max_us) override;
  /// Drops each incoming request frame with probability permille/1000.
  void DropRequests(DiskId d, std::uint32_t permille) override;
  /// Severs every established connection; keeps listening (recoverable).
  void DisconnectDisk(DiskId d) override;
  /// Holds every request until `dur` from now elapses, then serves them.
  void StallDisk(DiskId d, std::chrono::milliseconds dur) override;
  /// Clears delay override, drop rate, and stall (crashes persist).
  void Heal(DiskId d) override;

  /// Requests served (responses actually sent); a batch counts each of
  /// its sub-operations.
  std::uint64_t ServedCount() const;

  /// This server's metrics (request counts, per-opcode service latency).
  /// Per-instance — many servers in one process don't share it — and the
  /// same data the STATS opcode returns over the wire as plain text.
  const obs::Registry& metrics() const { return metrics_; }

  /// Number of records replayed at start-up (0 for a fresh/volatile disk).
  std::size_t RecoveredCount() const { return recovered_; }

  /// Compacts durable state: snapshot, then truncate the journal.
  /// No-op (Ok) for a volatile server.
  Status Checkpoint();

  /// Stops accepting and closes all connections (also done by the dtor).
  void Stop();

 private:
  explicit NadServer(Options opts);

  void AcceptLoop();
  void Serve(Socket conn, Rng rng);
  /// Serves one read/write sub-operation against the sharded store,
  /// appending the response payload to `w` (prefixed with its u32
  /// sub-length when `in_batch`). Returns false when the request is
  /// swallowed (crashed register or journal failure) — nothing appended.
  bool ServeOpView(const MessageView& msg, FrameWriter* w, bool in_batch);

  // All three are written in Start() before any server thread exists and
  // are read-only afterwards (Listener::Shutdown on a live fd is the one
  // documented cross-thread call and is fd-level safe).
  // lint-allow(tsa-coverage): set before threads start
  Options opts_;
  // lint-allow(tsa-coverage): set before threads start
  std::uint16_t port_ = 0;
  // lint-allow(tsa-coverage): set before threads start
  std::unique_ptr<Listener> listener_;

  // Hot path: striped locking inside the store; everything else atomic.
  // lint-allow(tsa-coverage): internally striped (§12 rank 3)
  sim::ShardedRegisterStore store_;
  std::atomic<std::uint64_t> served_{0};
  // lint-allow(tsa-coverage): written once in Start, then read-only
  std::size_t recovered_ = 0;

  // Fault filter state (see the file comment). The delay override and
  // drop rate are read per request frame, so they are lock-free atomics;
  // kNoDelayOverride means "use Options' range".
  static constexpr std::uint64_t kNoDelayOverride = ~0ULL;
  std::atomic<std::uint64_t> delay_min_override_{kNoDelayOverride};
  std::atomic<std::uint64_t> delay_max_override_{kNoDelayOverride};
  std::atomic<std::uint32_t> drop_permille_{0};

  // Cold path: connection bookkeeping and the write-ahead journal.
  mutable Mutex mu_;
  // Requests are held (not dropped) while now < stall_until_; served
  // threads wait on fault_cv_, which Stop() interrupts.
  CondVar fault_cv_;
  std::chrono::steady_clock::time_point stall_until_ GUARDED_BY(mu_){};
  // Journal file I/O order; taken after a stripe lock (write path) or
  // after the full-store quiesce (checkpoint path) — never before either.
  Mutex journal_mu_;
  Journal journal_ GUARDED_BY(journal_mu_);
  bool stopping_ GUARDED_BY(mu_) = false;
  // For Stop() to shut down.
  std::vector<Socket*> live_conns_ GUARDED_BY(mu_);
  Rng rng_ GUARDED_BY(mu_);

  // Per-instance observability (see metrics()). The Registry locks
  // itself (§12 rank 5); the pointers are hot-path handles resolved once
  // in the constructor and read-only afterwards.
  // lint-allow(tsa-coverage): internally locked (§12 rank 5)
  obs::Registry metrics_;
  // lint-allow(tsa-coverage): resolved once in the ctor
  obs::Counter* reads_served_;
  // lint-allow(tsa-coverage): resolved once in the ctor
  obs::Counter* writes_served_;
  // lint-allow(tsa-coverage): resolved once in the ctor
  obs::Counter* merges_served_;
  // lint-allow(tsa-coverage): resolved once in the ctor
  obs::Counter* dropped_crashed_;
  // lint-allow(tsa-coverage): resolved once in the ctor
  obs::Counter* dropped_faulted_;
  // lint-allow(tsa-coverage): resolved once in the ctor
  obs::Histogram* read_serve_us_;
  // lint-allow(tsa-coverage): resolved once in the ctor
  obs::Histogram* write_serve_us_;
  // lint-allow(tsa-coverage): resolved once in the ctor
  obs::Histogram* batch_size_;

  // Grown only by the accept thread; cleared (joined) by Stop() after the
  // accept thread itself is joined, so access is lifecycle-serialized.
  // lint-allow(tsa-coverage): accept-thread confined
  std::vector<std::jthread> conn_threads_;
  // lint-allow(tsa-coverage): set in Start, joined in Stop/dtor
  std::jthread accept_thread_;
};

}  // namespace nadreg::nad
