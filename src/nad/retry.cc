#include "nad/retry.h"

#include <algorithm>

namespace nadreg::nad {

std::chrono::microseconds BackoffState::Next(Rng& rng) {
  // min(initial * 2^failures, max) without overflow: stop doubling once
  // past the cap.
  std::int64_t base_us = policy_.initial_backoff.count();
  const std::int64_t cap_us = std::max<std::int64_t>(
      policy_.max_backoff.count(), policy_.initial_backoff.count());
  for (std::uint32_t i = 0; i < failures_ && base_us < cap_us; ++i) {
    base_us *= 2;
  }
  base_us = std::min(base_us, cap_us);
  if (failures_ < ~0u) ++failures_;
  std::int64_t jitter_us = 0;
  if (policy_.jitter_permille > 0 && base_us > 0) {
    const std::uint64_t span =
        static_cast<std::uint64_t>(base_us) * policy_.jitter_permille / 1000;
    if (span > 0) jitter_us = static_cast<std::int64_t>(rng.Below(span + 1));
  }
  return std::chrono::microseconds(base_us + jitter_us);
}

bool CircuitBreaker::AllowRequest(std::chrono::steady_clock::time_point now) {
  switch (state_) {
    case State::kClosed:
    case State::kHalfOpen:
      return true;
    case State::kOpen:
      if (now - opened_at_ >= policy_.breaker_cooldown) {
        state_ = State::kHalfOpen;
        return true;
      }
      return false;
  }
  return true;
}

void CircuitBreaker::RecordSuccess() {
  state_ = State::kClosed;
  failures_ = 0;
}

bool CircuitBreaker::RecordFailure(std::chrono::steady_clock::time_point now) {
  if (failures_ < ~0u) ++failures_;
  const bool open_now = state_ == State::kHalfOpen ||
                        (state_ == State::kClosed &&
                         failures_ >= policy_.breaker_threshold);
  if (open_now) {
    const bool was_open = state_ == State::kOpen;
    state_ = State::kOpen;
    opened_at_ = now;
    return !was_open;
  }
  if (state_ == State::kOpen) opened_at_ = now;  // still cooling down
  return false;
}

}  // namespace nadreg::nad
