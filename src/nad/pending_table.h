/// \file
/// Sharded pending-operation table for the NAD client's in-flight state.
///
/// Sharding is structural, not locked: the client keeps one PendingTable
/// per connection, and each connection is owned by exactly one event loop
/// (the single-writer rule, DESIGN.md §12) — so every table has exactly
/// one writer and needs no mutex. What this type replaces is the trio of
/// std::unordered_map<id, Pending*> node-based maps the old client kept
/// per connection: every insert there heap-allocated a node, every erase
/// freed one, and entry addresses were only stable by accident of the
/// node allocator.
///
/// Design:
///  * Entries live in chunked slabs (kSlabSlots per slab, never moved,
///    never shrunk), so a pointer returned by Insert()/Find() stays valid
///    until that entry is erased — the zero-copy wire path references
///    pending write values IN PLACE from the gather queue, which is only
///    sound because of this stability guarantee.
///  * A separate open-addressing index maps request id → slot. Rehashing
///    moves only (id, slot) pairs, never entries. Erase uses backward-
///    shift deletion, so probes stay short without tombstones.
///  * Freed slots go on a free list and are recycled by later inserts;
///    steady state allocates nothing.
///
/// Request ids come from a per-connection monotone counter, so they are
/// unique by construction; id 2^64-1 is reserved as the index's empty
/// marker.
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

namespace nadreg::nad {

template <typename T>
class PendingTable {
 public:
  /// Reserved as the open-addressing empty marker; never use as an id.
  static constexpr std::uint64_t kReservedId = ~0ULL;

  PendingTable() = default;
  PendingTable(const PendingTable&) = delete;
  PendingTable& operator=(const PendingTable&) = delete;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Inserts a default-constructed entry for `id` (must not be present)
  /// and returns it. The pointer stays valid until the entry is erased —
  /// across other inserts, erases, and index rehashes.
  T* Insert(std::uint64_t id) {
    assert(id != kReservedId);
    MaybeGrowIndex();
    std::uint32_t slot;
    if (!free_.empty()) {
      slot = free_.back();
      free_.pop_back();
    } else {
      if (slot_count_ == slabs_.size() * kSlabSlots) {
        slabs_.push_back(std::make_unique<Cell[]>(kSlabSlots));
      }
      slot = static_cast<std::uint32_t>(slot_count_++);
    }
    Cell& cell = CellAt(slot);
    cell.id = id;
    cell.value.emplace();
    IndexPut(id, slot);
    ++size_;
    return &*cell.value;
  }

  /// Entry for `id`, or nullptr.
  T* Find(std::uint64_t id) {
    const std::size_t pos = IndexFind(id);
    if (pos == kNotFound) return nullptr;
    return &*CellAt(index_[pos].slot).value;
  }

  /// Moves the entry for `id` into `*out` and erases it. False if absent.
  bool Take(std::uint64_t id, T* out) {
    const std::size_t pos = IndexFind(id);
    if (pos == kNotFound) return false;
    const std::uint32_t slot = index_[pos].slot;
    Cell& cell = CellAt(slot);
    *out = std::move(*cell.value);
    ReleaseCell(cell, slot, pos);
    return true;
  }

  /// Erases the entry for `id`, destroying it in place. False if absent.
  bool Erase(std::uint64_t id) {
    const std::size_t pos = IndexFind(id);
    if (pos == kNotFound) return false;
    const std::uint32_t slot = index_[pos].slot;
    ReleaseCell(CellAt(slot), slot, pos);
    return true;
  }

  /// Visits every live entry as f(id, T&). Must not insert or erase.
  template <typename F>
  void ForEach(F&& f) {
    for (std::size_t slot = 0; slot < slot_count_; ++slot) {
      Cell& cell = CellAt(static_cast<std::uint32_t>(slot));
      if (cell.value.has_value()) f(cell.id, *cell.value);
    }
  }

  /// Visits every live entry as f(id, T&) -> bool; entries for which f
  /// returns true are erased (after f had its chance to move state out).
  template <typename F>
  void EraseIf(F&& f) {
    for (std::size_t slot = 0; slot < slot_count_; ++slot) {
      Cell& cell = CellAt(static_cast<std::uint32_t>(slot));
      if (!cell.value.has_value()) continue;
      if (f(cell.id, *cell.value)) {
        const std::size_t pos = IndexFind(cell.id);
        assert(pos != kNotFound);
        ReleaseCell(cell, static_cast<std::uint32_t>(slot), pos);
      }
    }
  }

  /// Destroys every entry. Slabs, free list, and index capacity are
  /// retained for reuse.
  void Clear() {
    for (std::size_t slot = 0; slot < slot_count_; ++slot) {
      CellAt(static_cast<std::uint32_t>(slot)).value.reset();
    }
    free_.clear();
    slot_count_ = 0;
    for (IndexEntry& e : index_) e.id = kReservedId;
    size_ = 0;
  }

 private:
  static constexpr std::size_t kSlabSlots = 256;
  static constexpr std::size_t kNotFound = ~std::size_t{0};

  struct Cell {
    std::uint64_t id = kReservedId;
    std::optional<T> value;
  };
  struct IndexEntry {
    std::uint64_t id = kReservedId;
    std::uint32_t slot = 0;
  };

  Cell& CellAt(std::uint32_t slot) {
    return slabs_[slot / kSlabSlots][slot % kSlabSlots];
  }

  static std::size_t Hash(std::uint64_t id) {
    // Fibonacci mix; ids are a dense monotone counter, so spreading the
    // low bits is all that matters.
    return static_cast<std::size_t>(id * 0x9e3779b97f4a7c15ULL >> 32);
  }

  std::size_t IndexFind(std::uint64_t id) const {
    if (index_.empty()) return kNotFound;
    const std::size_t mask = index_.size() - 1;
    for (std::size_t i = Hash(id) & mask;; i = (i + 1) & mask) {
      if (index_[i].id == id) return i;
      if (index_[i].id == kReservedId) return kNotFound;
    }
  }

  void IndexPut(std::uint64_t id, std::uint32_t slot) {
    const std::size_t mask = index_.size() - 1;
    for (std::size_t i = Hash(id) & mask;; i = (i + 1) & mask) {
      if (index_[i].id == kReservedId) {
        index_[i] = IndexEntry{id, slot};
        return;
      }
      assert(index_[i].id != id && "duplicate request id");
    }
  }

  /// Backward-shift deletion at index position `pos`: later entries of
  /// the same probe chain slide into the hole, so lookups never need
  /// tombstones.
  void IndexRemoveAt(std::size_t pos) {
    const std::size_t mask = index_.size() - 1;
    std::size_t hole = pos;
    for (std::size_t i = (hole + 1) & mask;; i = (i + 1) & mask) {
      if (index_[i].id == kReservedId) break;
      const std::size_t home = Hash(index_[i].id) & mask;
      // Entry i may move into the hole iff the hole lies on its probe
      // path, i.e. cyclically between home and i.
      if (((i - home) & mask) >= ((i - hole) & mask)) {
        index_[hole] = index_[i];
        hole = i;
      }
    }
    index_[hole].id = kReservedId;
  }

  void ReleaseCell(Cell& cell, std::uint32_t slot, std::size_t index_pos) {
    cell.value.reset();
    cell.id = kReservedId;
    free_.push_back(slot);
    IndexRemoveAt(index_pos);
    --size_;
  }

  void MaybeGrowIndex() {
    if (index_.empty()) {
      index_.assign(64, IndexEntry{});
      return;
    }
    if ((size_ + 1) * 4 < index_.size() * 3) return;  // load factor < 3/4
    std::vector<IndexEntry> old = std::move(index_);
    index_.assign(old.size() * 2, IndexEntry{});
    for (const IndexEntry& e : old) {
      if (e.id != kReservedId) IndexPut(e.id, e.slot);
    }
  }

  std::vector<std::unique_ptr<Cell[]>> slabs_;
  std::size_t slot_count_ = 0;  // slots ever handed out (high-water)
  std::vector<std::uint32_t> free_;
  std::vector<IndexEntry> index_;  // power-of-two open addressing
  std::size_t size_ = 0;
};

}  // namespace nadreg::nad
