/// \file
/// Single-threaded epoll event loop hosting the client's connections.
///
/// Each NadClient owns N loops (Options::num_event_loops); each loop owns
/// a disjoint subset of the connections and is the *only* thread that
/// touches their sockets, queues, pending-op maps, timers, and breakers —
/// the single-writer rule that replaced the old send_mu → pending_mu
/// nesting (DESIGN.md §12). The sole cross-thread entry point is Post():
/// an eventfd-woken FIFO inbox guarded by the loop's only mutex.
///
/// Sockets register edge-triggered (EPOLLET), so watchers must drain
/// reads to EAGAIN and write until EAGAIN before relying on the next
/// readiness edge. Timers live on a per-loop TimerWheel advanced every
/// iteration; the epoll_wait timeout is bounded by the wheel's earliest
/// deadline (and is infinite when both the wheel and inbox are idle).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/sync.h"
#include "nad/timer_wheel.h"

namespace nadreg::nad {

class EventLoop {
 public:
  /// Readiness bits passed to IoWatcher::OnIoReady — a deliberately tiny
  /// abstraction over the epoll event mask so connection code does not
  /// include <sys/epoll.h>.
  static constexpr std::uint32_t kReadable = 1u << 0;
  static constexpr std::uint32_t kWritable = 1u << 1;
  /// Error/hangup on the fd; the watcher should tear the link down.
  static constexpr std::uint32_t kError = 1u << 2;

  /// A registered fd's owner. OnIoReady always runs on the loop thread.
  class IoWatcher {
   public:
    virtual ~IoWatcher() = default;
    virtual void OnIoReady(std::uint32_t events) = 0;
  };

  using Task = std::function<void()>;

  /// kUnavailable if the epoll or wakeup fd cannot be created.
  static Expected<std::unique_ptr<EventLoop>> Create();

  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Spawns the loop thread. Call exactly once.
  void Start();
  /// Signals the loop to exit after the current iteration (idempotent).
  void Stop();
  /// Joins the loop thread. Call after Stop; no tasks run afterwards.
  void Join();

  /// Enqueues `task` to run on the loop thread, FIFO. Thread-safe; the
  /// only cross-thread entry point. Tasks posted after Stop may never
  /// run. A Post from the loop thread itself skips the eventfd wake
  /// entirely (the loop re-checks its inbox before sleeping), so
  /// handler-driven re-submission costs no syscalls.
  void Post(Task task);

  /// Installs a handler that runs on the loop thread if the loop dies of
  /// an unrecoverable error (a non-EINTR epoll_wait failure). It fires
  /// after dead() starts returning true and before one final inbox
  /// drain, so the owner can mark its connections dead and already-
  /// posted tasks land on that marked state instead of hanging. Call
  /// before Start; at most once.
  void SetFatalHandler(Task handler);

  /// True once the loop has died of an unrecoverable error. Tasks posted
  /// to a dead loop never run; check before Post when a silent drop
  /// would leak state. Never set by a normal Stop.
  bool dead() const { return dead_.load(std::memory_order_acquire); }

  /// Registers `fd` edge-triggered for read+write readiness. Loop-thread
  /// only (Post a task to get there).
  Status Watch(int fd, IoWatcher* watcher);
  /// Unregisters `fd`. Loop-thread only; safe to call for an fd that is
  /// about to close.
  void Unwatch(int fd);

  /// The loop's timer wheel. Loop-thread only.
  TimerWheel& timers() { return wheel_; }

  bool OnLoopThread() const {
    return std::this_thread::get_id() == loop_tid_.load();
  }

 private:
  EventLoop(int epoll_fd, int wake_fd);
  void Run(std::stop_token stop);
  void WakeUp();
  /// Unrecoverable loop failure: publishes dead(), runs the fatal
  /// handler, then drains the inbox one last time (`tasks` is scratch).
  void Die(std::vector<Task>* tasks);

  // Both fds are opened before the loop thread starts and closed in the
  // destructor after it joins; in between they are read-only values.
  // lint-allow(tsa-coverage): set before the loop thread starts
  int epoll_fd_ = -1;
  // lint-allow(tsa-coverage): set before the loop thread starts
  int wake_fd_ = -1;
  std::atomic<bool> stop_{false};
  std::atomic<bool> dead_{false};
  // SetFatalHandler documents "call before Start; at most once".
  // lint-allow(tsa-coverage): set before Start per the API contract
  Task fatal_handler_;
  std::atomic<std::thread::id> loop_tid_{};

  Mutex inbox_mu_;
  std::vector<Task> inbox_ GUARDED_BY(inbox_mu_);

  // timers() contract: loop-thread only.
  // lint-allow(tsa-coverage): loop-thread confined
  TimerWheel wheel_;
  // last member: joins before the rest tears down
  // lint-allow(tsa-coverage): set in Start, joined in the dtor
  std::jthread thread_;
};

}  // namespace nadreg::nad
