#include "nad/client.h"

#include <algorithm>

#include "common/log.h"
#include "obs/trace.h"

namespace nadreg::nad {

NadClient::NadClient(Options options)
    : options_(options),
      read_us_(&obs::Registry::Global().GetHistogram("nad.client.read_us")),
      write_us_(&obs::Registry::Global().GetHistogram("nad.client.write_us")),
      batch_size_(
          &obs::Registry::Global().GetHistogram("nad.client.batch_size")),
      in_flight_(&obs::Registry::Global().GetGauge("nad.client.in_flight")),
      rejected_oversized_(&obs::Registry::Global().GetCounter(
          "nad.client.rejected_oversized")),
      retries_(&obs::Registry::Global().GetCounter("nad.client.retries")),
      reconnects_(
          &obs::Registry::Global().GetCounter("nad.client.reconnects")),
      reconnect_failures_(&obs::Registry::Global().GetCounter(
          "nad.client.reconnect_failures")),
      expired_(&obs::Registry::Global().GetCounter("nad.client.expired")),
      breaker_open_(
          &obs::Registry::Global().GetCounter("nad.client.breaker_open")) {}

Expected<std::unique_ptr<NadClient>> NadClient::Connect(
    std::map<DiskId, Endpoint> endpoints, Options options) {
  std::unique_ptr<NadClient> client(new NadClient(options));
  for (const auto& [disk, ep] : endpoints) {
    auto sock = nad::Connect(ep.host, ep.port);
    if (!sock) return sock.status();
    auto conn = std::make_unique<Conn>(options.retry);
    conn->disk = disk;
    conn->endpoint = ep;
    conn->sock = std::move(*sock);
    client->conns_.emplace(disk, std::move(conn));
  }
  for (auto& [disk, conn] : client->conns_) {
    conn->reader = std::jthread([c = client.get(), cp = conn.get()] {
      c->ReaderLoop(cp);
    });
    conn->sender = std::jthread([c = client.get(), cp = conn.get()] {
      c->SenderLoop(cp);
    });
  }
  if (options.op_timeout.count() > 0) {
    client->janitor_ = std::jthread(
        [c = client.get()](std::stop_token st) { c->JanitorLoop(st); });
  }
  return client;
}

NadClient::~NadClient() {
  {
    MutexLock lock(janitor_mu_);
    janitor_stop_ = true;
  }
  janitor_cv_.NotifyAll();
  if (janitor_.joinable()) janitor_.join();
  for (auto& [disk, conn] : conns_) {
    {
      MutexLock lock(conn->send_mu);
      conn->closed = true;
      // Under send_mu: the sender may be installing a fresh socket right
      // now (reconnect). Shutdown unblocks the reader (in recv) and a
      // sender stuck in send on a peer that stopped draining.
      conn->sock.Shutdown();
    }
    conn->send_cv.NotifyAll();
  }
  for (auto& [disk, conn] : conns_) {
    if (conn->sender.joinable()) conn->sender.join();
    if (conn->reader.joinable()) conn->reader.join();
  }
}

NadClient::Conn* NadClient::ConnFor(DiskId d) const {
  auto it = conns_.find(d);
  return it == conns_.end() ? nullptr : it->second.get();
}

std::chrono::steady_clock::time_point NadClient::ExpiryFrom(
    std::chrono::steady_clock::time_point now) const {
  if (options_.op_timeout.count() <= 0) {
    return std::chrono::steady_clock::time_point::max();
  }
  return now + options_.op_timeout;
}

bool NadClient::IsSuspectedCrashed(DiskId d) const {
  Conn* conn = ConnFor(d);
  if (conn == nullptr) return true;  // unmapped disk behaves as crashed
  MutexLock lock(conn->send_mu);
  if (conn->closed) return true;
  // AllowRequest transitions open → half-open after the cooldown, so
  // suspicion clears exactly when probes should start flowing again.
  return !conn->breaker.AllowRequest(std::chrono::steady_clock::now());
}

bool NadClient::Enqueue(Conn* conn, Message msg) {
  {
    MutexLock lock(conn->send_mu);
    if (conn->closed) return false;
    conn->outgoing.push_back(std::move(msg));
  }
  conn->send_cv.NotifyOne();
  return true;
}

void NadClient::RejectOversized(const RegisterId& r, std::size_t value_bytes) {
  rejected_oversized_->Inc();
  LOG_WARN << "nad-client: dropping write of " << value_bytes
           << " bytes to disk " << r.disk << " block " << r.block
           << ": value cannot fit a " << kMaxFrameBytes
           << "-byte frame (handler will never run)";
}

void NadClient::IssueRead(ProcessId /*p*/, RegisterId r, ReadHandler done) {
  Conn* conn = ConnFor(r.disk);
  if (conn == nullptr) return;  // unmapped disk behaves as crashed
  Message req;
  req.type = MsgType::kReadReq;
  req.request_id = next_request_id_.fetch_add(1, std::memory_order_relaxed);
  req.reg = r;
  const auto now = std::chrono::steady_clock::now();
  {
    MutexLock lock(conn->pending_mu);
    conn->pending_reads.emplace(
        req.request_id, PendingRead{std::move(done), now, r, ExpiryFrom(now)});
  }
  in_flight_->Add(1);
  if (!Enqueue(conn, std::move(req))) {
    // Connection dead: the disk is unreachable — handler never runs,
    // exactly like a crashed register. Clean up the stashed handler.
    MutexLock plock(conn->pending_mu);
    if (conn->pending_reads.erase(req.request_id) > 0) in_flight_->Add(-1);
  }
}

void NadClient::IssueWrite(ProcessId /*p*/, RegisterId r, Value v,
                           WriteHandler done) {
  Conn* conn = ConnFor(r.disk);
  if (conn == nullptr) return;
  if (v.size() > kMaxFrameBytes - kWriteReqOverhead) {
    RejectOversized(r, v.size());
    return;
  }
  Message req;
  req.type = MsgType::kWriteReq;
  req.request_id = next_request_id_.fetch_add(1, std::memory_order_relaxed);
  req.reg = r;
  req.value = v;  // the original moves into the pending entry (retransmit)
  const auto now = std::chrono::steady_clock::now();
  {
    MutexLock lock(conn->pending_mu);
    conn->pending_writes.emplace(
        req.request_id,
        PendingWrite{std::move(done), now, r, std::move(v), ExpiryFrom(now)});
  }
  in_flight_->Add(1);
  if (!Enqueue(conn, std::move(req))) {
    MutexLock plock(conn->pending_mu);
    if (conn->pending_writes.erase(req.request_id) > 0) in_flight_->Add(-1);
  }
}

void NadClient::IssueReads(ProcessId /*p*/, std::vector<ReadOp> ops) {
  // Group per connection so each disk's ops land in its outgoing queue
  // atomically — one sender drain pass then coalesces them into one
  // batch frame rather than racing the first op onto the wire alone.
  std::map<Conn*, std::vector<Message>> per_conn;
  const auto now = std::chrono::steady_clock::now();
  for (ReadOp& op : ops) {
    Conn* conn = ConnFor(op.reg.disk);
    if (conn == nullptr) continue;
    Message req;
    req.type = MsgType::kReadReq;
    req.request_id = next_request_id_.fetch_add(1, std::memory_order_relaxed);
    req.reg = op.reg;
    {
      MutexLock lock(conn->pending_mu);
      conn->pending_reads.emplace(
          req.request_id,
          PendingRead{std::move(op.done), now, op.reg, ExpiryFrom(now)});
    }
    in_flight_->Add(1);
    per_conn[conn].push_back(std::move(req));
  }
  for (auto& [conn, msgs] : per_conn) {
    bool accepted = false;
    {
      MutexLock lock(conn->send_mu);
      if (!conn->closed) {
        for (Message& m : msgs) conn->outgoing.push_back(std::move(m));
        accepted = true;
      }
    }
    if (accepted) {
      conn->send_cv.NotifyOne();
    } else {
      MutexLock plock(conn->pending_mu);
      for (const Message& m : msgs) {
        if (conn->pending_reads.erase(m.request_id) > 0) in_flight_->Add(-1);
      }
    }
  }
}

void NadClient::IssueWrites(ProcessId /*p*/, std::vector<WriteOp> ops) {
  std::map<Conn*, std::vector<Message>> per_conn;
  const auto now = std::chrono::steady_clock::now();
  for (WriteOp& op : ops) {
    Conn* conn = ConnFor(op.reg.disk);
    if (conn == nullptr) continue;
    if (op.value.size() > kMaxFrameBytes - kWriteReqOverhead) {
      RejectOversized(op.reg, op.value.size());
      continue;
    }
    Message req;
    req.type = MsgType::kWriteReq;
    req.request_id = next_request_id_.fetch_add(1, std::memory_order_relaxed);
    req.reg = op.reg;
    req.value = op.value;  // original moves into the pending entry
    {
      MutexLock lock(conn->pending_mu);
      conn->pending_writes.emplace(
          req.request_id,
          PendingWrite{std::move(op.done), now, op.reg, std::move(op.value),
                       ExpiryFrom(now)});
    }
    in_flight_->Add(1);
    per_conn[conn].push_back(std::move(req));
  }
  for (auto& [conn, msgs] : per_conn) {
    bool accepted = false;
    {
      MutexLock lock(conn->send_mu);
      if (!conn->closed) {
        for (Message& m : msgs) conn->outgoing.push_back(std::move(m));
        accepted = true;
      }
    }
    if (accepted) {
      conn->send_cv.NotifyOne();
    } else {
      MutexLock plock(conn->pending_mu);
      for (const Message& m : msgs) {
        if (conn->pending_writes.erase(m.request_id) > 0) in_flight_->Add(-1);
      }
    }
  }
}

Expected<std::string> NadClient::QueryStats(DiskId d,
                                            std::chrono::milliseconds timeout) {
  Conn* conn = ConnFor(d);
  if (conn == nullptr) return Status::Unavailable("stats: unmapped disk");
  Message req;
  req.type = MsgType::kStatsReq;
  req.request_id = next_request_id_.fetch_add(1, std::memory_order_relaxed);
  auto waiter = std::make_shared<StatsWaiter>();
  {
    MutexLock lock(conn->pending_mu);
    conn->pending_stats.emplace(req.request_id, waiter);
  }
  if (!Enqueue(conn, std::move(req))) {
    MutexLock plock(conn->pending_mu);
    conn->pending_stats.erase(req.request_id);
    return Status::Unavailable("stats: connection dead");
  }
  bool answered;
  {
    MutexLock lock(waiter->mu);
    answered = waiter->cv.WaitFor(waiter->mu, timeout, [&] {
      waiter->mu.AssertHeld();  // predicates run under the lock
      return waiter->done;
    });
  }
  if (!answered) {
    MutexLock plock(conn->pending_mu);
    conn->pending_stats.erase(req.request_id);
    return Status::Timeout("stats: no response before deadline");
  }
  MutexLock lock(waiter->mu);
  return waiter->text;
}

std::size_t NadClient::InFlight() const {
  std::size_t n = 0;
  for (const auto& [disk, conn] : conns_) {
    MutexLock lock(conn->pending_mu);
    n += conn->pending_reads.size() + conn->pending_writes.size();
  }
  return n;
}

void NadClient::JanitorLoop(std::stop_token stop) {
  // Sweep well inside the expiry budget so an op overshoots its deadline
  // by at most ~a quarter of it.
  const auto interval = std::chrono::milliseconds(
      std::max<std::int64_t>(1, options_.op_timeout.count() / 4));
  janitor_mu_.Lock();
  while (!janitor_stop_ && !stop.stop_requested()) {
    janitor_cv_.WaitFor(janitor_mu_, interval, [&] {
      janitor_mu_.AssertHeld();  // predicates run under the lock
      return janitor_stop_;
    });
    if (janitor_stop_) break;
    janitor_mu_.Unlock();
    const auto now = std::chrono::steady_clock::now();
    for (auto& [disk, conn] : conns_) {
      if (SweepExpired(conn.get(), now) > 0) {
        // Expiries are failure evidence: the disk accepted a connection
        // but did not answer in time (stalled / dropping / crashed).
        MutexLock lock(conn->send_mu);
        if (conn->breaker.RecordFailure(now)) breaker_open_->Inc();
      }
    }
    janitor_mu_.Lock();
  }
  janitor_mu_.Unlock();
}

std::size_t NadClient::SweepExpired(Conn* conn,
                                    std::chrono::steady_clock::time_point now) {
  // Handlers are collected and destroyed outside the lock: dropping one
  // can release ticket state whose destructor is free to lock elsewhere.
  std::vector<ReadHandler> dead_reads;
  std::vector<WriteHandler> dead_writes;
  {
    MutexLock lock(conn->pending_mu);
    for (auto it = conn->pending_reads.begin();
         it != conn->pending_reads.end();) {
      if (it->second.expires <= now) {
        dead_reads.push_back(std::move(it->second.handler));
        it = conn->pending_reads.erase(it);
      } else {
        ++it;
      }
    }
    for (auto it = conn->pending_writes.begin();
         it != conn->pending_writes.end();) {
      if (it->second.expires <= now) {
        dead_writes.push_back(std::move(it->second.handler));
        it = conn->pending_writes.erase(it);
      } else {
        ++it;
      }
    }
  }
  const std::size_t n = dead_reads.size() + dead_writes.size();
  if (n > 0) {
    in_flight_->Add(-static_cast<std::int64_t>(n));
    expired_->Inc(n);
  }
  return n;
}

void NadClient::FlushRun(std::vector<Message>* run, std::string* wire) {
  if (run->empty()) return;
  if (run->size() == 1) {
    // A lone op costs less as a plain per-op frame — and keeps the
    // pre-batch opcodes exercised against every server.
    batch_size_->Observe(1);
    AppendFrame(wire, EncodeMessage(run->front()));
    run->clear();
    return;
  }
  Message batch;
  batch.type = MsgType::kBatchReq;
  batch.subs = std::move(*run);
  batch_size_->Observe(batch.subs.size());
  AppendFrame(wire, EncodeMessage(batch));
  run->clear();
}

bool NadClient::ReconnectLocked(Conn* conn, BackoffState* backoff, Rng* rng) {
  if (!options_.enable_reconnect) {
    // Pre-fault-injection behaviour: a dead connection stays dead and the
    // disk appears crashed forever.
    conn->closed = true;
    conn->outgoing.clear();
    conn->send_cv.NotifyAll();  // release a parked reader into its exit
    return false;
  }
  // The reader may still be inside recv on the old socket; wait for it to
  // park so the socket can be replaced under it.
  conn->send_cv.Wait(conn->send_mu, [&] {
    conn->send_mu.AssertHeld();  // predicates run under the lock
    return conn->closed || conn->reader_parked;
  });
  if (conn->closed) return false;
  // Interruptible capped-exponential backoff with jitter — a CondVar
  // deadline wait, never a raw sleep, so shutdown cuts it short.
  conn->send_cv.WaitFor(conn->send_mu, backoff->Next(*rng), [&] {
    conn->send_mu.AssertHeld();
    return conn->closed;
  });
  if (conn->closed) return false;
  conn->send_mu.Unlock();
  auto sock = nad::Connect(conn->endpoint.host, conn->endpoint.port);
  conn->send_mu.Lock();
  if (conn->closed) return false;
  const auto now = std::chrono::steady_clock::now();
  if (!sock) {
    reconnect_failures_->Inc();
    if (conn->breaker.RecordFailure(now)) breaker_open_->Inc();
    return true;  // still broken; the loop retries with a longer delay
  }
  conn->sock = std::move(*sock);
  conn->broken = false;
  ++conn->generation;
  backoff->Reset();
  conn->breaker.RecordSuccess();
  reconnects_->Inc();
  // Retransmit everything still pending, oldest first. Requests that were
  // served but whose response was lost get applied again — an idempotent
  // replay of a still-pending op (see the class comment). Queued frames
  // are rebuilt from the pending maps, so the stale outgoing queue is
  // dropped (in-flight STATS probes die with it; QueryStats times out).
  std::size_t resent = 0;
  {
    MutexLock plock(conn->pending_mu);  // send_mu → pending_mu (§12)
    conn->outgoing.clear();
    std::vector<Message> msgs;
    msgs.reserve(conn->pending_reads.size() + conn->pending_writes.size());
    for (const auto& [id, pr] : conn->pending_reads) {
      Message m;
      m.type = MsgType::kReadReq;
      m.request_id = id;
      m.reg = pr.reg;
      msgs.push_back(std::move(m));
    }
    for (const auto& [id, pw] : conn->pending_writes) {
      Message m;
      m.type = MsgType::kWriteReq;
      m.request_id = id;
      m.reg = pw.reg;
      m.value = pw.value;
      msgs.push_back(std::move(m));
    }
    std::sort(msgs.begin(), msgs.end(),
              [](const Message& a, const Message& b) {
                return a.request_id < b.request_id;
              });
    resent = msgs.size();
    for (Message& m : msgs) conn->outgoing.push_back(std::move(m));
  }
  if (resent > 0) retries_->Inc(resent);
  conn->send_cv.NotifyAll();  // wake the parked reader onto the new socket
  return true;
}

void NadClient::SenderLoop(Conn* conn) {
  // Batch payload = type + request id + count + per-sub length prefixes.
  constexpr std::size_t kBatchHeader = 1 + 8 + 4;
  // Deterministic per-disk jitter stream (decorrelates the reconnect
  // storms of many clients hitting one recovered disk).
  Rng rng(0x9e3779b97f4a7c15ULL ^
          (static_cast<std::uint64_t>(conn->disk) << 17));
  BackoffState backoff(options_.retry);
  conn->send_mu.Lock();
  for (;;) {
    if (conn->closed) break;
    if (conn->broken) {
      if (!ReconnectLocked(conn, &backoff, &rng)) break;
      continue;
    }
    if (conn->outgoing.empty()) {
      conn->send_cv.Wait(conn->send_mu, [&] {
        conn->send_mu.AssertHeld();  // predicates run under the lock
        return conn->closed || conn->broken || !conn->outgoing.empty();
      });
      continue;
    }
    std::deque<Message> drained;
    drained.swap(conn->outgoing);
    conn->send_mu.Unlock();
    // Coalesce the drain pass into as few frames as possible, preserving
    // FIFO order: consecutive reads/writes form one batch (split at the
    // frame cap); STATS stays a standalone out-of-band frame.
    std::string wire;
    std::vector<Message> run;
    std::size_t run_bytes = kBatchHeader;
    for (Message& msg : drained) {
      if (!options_.enable_batching || msg.type == MsgType::kStatsReq) {
        FlushRun(&run, &wire);
        run_bytes = kBatchHeader;
        if (msg.type != MsgType::kStatsReq) batch_size_->Observe(1);
        AppendFrame(&wire, EncodeMessage(msg));
        continue;
      }
      const std::size_t sub_bytes =
          kBatchSubOverhead + (1 + 8 + 4 + 8) +
          (msg.type == MsgType::kWriteReq ? 4 + msg.value.size() : 0);
      if (!run.empty() && run_bytes + sub_bytes > kMaxFrameBytes) {
        FlushRun(&run, &wire);
        run_bytes = kBatchHeader;
      }
      run_bytes += sub_bytes;
      run.push_back(std::move(msg));
    }
    FlushRun(&run, &wire);
    const bool sent = SendAll(conn->sock, wire).ok();
    conn->send_mu.Lock();
    if (!sent && !conn->closed && !conn->broken) {
      // Dead socket: hand off to the reconnect path. The dropped frames
      // stay stashed in the pending maps and will be retransmitted.
      conn->broken = true;
      conn->sock.Shutdown();  // unblock the reader so it can park
      conn->send_cv.NotifyAll();
    }
  }
  conn->send_mu.Unlock();
}

void NadClient::DispatchResponse(Conn* conn, Message msg) {
  const auto now = std::chrono::steady_clock::now();
  if (msg.type == MsgType::kReadResp) {
    PendingRead pending;
    {
      MutexLock lock(conn->pending_mu);
      auto it = conn->pending_reads.find(msg.request_id);
      if (it == conn->pending_reads.end()) return;
      pending = std::move(it->second);
      conn->pending_reads.erase(it);
    }
    in_flight_->Add(-1);
    read_us_->ObserveSince(pending.start);
    obs::EmitSpan("nad", "read", pending.start, now);
    if (pending.handler) pending.handler(std::move(msg.value));
  } else if (msg.type == MsgType::kWriteResp) {
    PendingWrite pending;
    {
      MutexLock lock(conn->pending_mu);
      auto it = conn->pending_writes.find(msg.request_id);
      if (it == conn->pending_writes.end()) return;
      pending = std::move(it->second);
      conn->pending_writes.erase(it);
    }
    in_flight_->Add(-1);
    write_us_->ObserveSince(pending.start);
    obs::EmitSpan("nad", "write", pending.start, now);
    if (pending.handler) pending.handler();
  } else if (msg.type == MsgType::kStatsResp) {
    std::shared_ptr<StatsWaiter> waiter;
    {
      MutexLock lock(conn->pending_mu);
      auto it = conn->pending_stats.find(msg.request_id);
      if (it == conn->pending_stats.end()) return;
      waiter = std::move(it->second);
      conn->pending_stats.erase(it);
    }
    MutexLock wlock(waiter->mu);
    waiter->text = std::move(msg.value);
    waiter->done = true;
    waiter->cv.NotifyAll();
  }
}

void NadClient::ReaderLoop(Conn* conn) {
  for (;;) {
    auto payload = RecvFrame(conn->sock, kMaxFrameBytes);
    if (!payload) {
      // Connection lost (or shutting down): park until the sender installs
      // a fresh socket (generation bump) or the client closes for good.
      conn->send_mu.Lock();
      if (!conn->closed && !conn->broken) {
        conn->broken = true;
        conn->sock.Shutdown();  // unblock a sender stuck mid-send
      }
      conn->reader_parked = true;
      conn->send_cv.NotifyAll();
      const std::uint64_t gen = conn->generation;
      conn->send_cv.Wait(conn->send_mu, [&] {
        conn->send_mu.AssertHeld();  // predicates run under the lock
        return conn->closed || conn->generation != gen;
      });
      conn->reader_parked = false;
      const bool done = conn->closed;
      conn->send_mu.Unlock();
      if (done) return;
      continue;  // resume on the fresh socket
    }
    auto msg = DecodeMessage(*payload);
    if (!msg) {
      LOG_WARN << "nad-client: malformed response: " << msg.status().ToString();
      continue;
    }
    {
      // Any successfully received frame is proof of life: close the
      // breaker so suspicion clears as soon as the disk answers again.
      MutexLock lock(conn->send_mu);
      conn->breaker.RecordSuccess();
    }
    if (msg->type == MsgType::kBatchResp) {
      for (Message& sub : msg->subs) DispatchResponse(conn, std::move(sub));
    } else {
      DispatchResponse(conn, std::move(*msg));
    }
  }
}

}  // namespace nadreg::nad
