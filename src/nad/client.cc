#include "nad/client.h"

#include "common/log.h"
#include "obs/trace.h"

namespace nadreg::nad {

NadClient::NadClient()
    : read_us_(&obs::Registry::Global().GetHistogram("nad.client.read_us")),
      write_us_(&obs::Registry::Global().GetHistogram("nad.client.write_us")),
      in_flight_(&obs::Registry::Global().GetGauge("nad.client.in_flight")) {}

Expected<std::unique_ptr<NadClient>> NadClient::Connect(
    std::map<DiskId, Endpoint> endpoints) {
  std::unique_ptr<NadClient> client(new NadClient());
  for (const auto& [disk, ep] : endpoints) {
    auto sock = nad::Connect(ep.host, ep.port);
    if (!sock) return sock.status();
    auto conn = std::make_unique<Conn>();
    conn->sock = std::move(*sock);
    client->conns_.emplace(disk, std::move(conn));
  }
  for (auto& [disk, conn] : client->conns_) {
    conn->reader = std::jthread([c = client.get(), cp = conn.get()] {
      c->ReaderLoop(cp);
    });
  }
  return client;
}

NadClient::~NadClient() {
  for (auto& [disk, conn] : conns_) conn->sock.Shutdown();
  for (auto& [disk, conn] : conns_) {
    if (conn->reader.joinable()) conn->reader.join();
  }
}

NadClient::Conn* NadClient::ConnFor(DiskId d) {
  auto it = conns_.find(d);
  return it == conns_.end() ? nullptr : it->second.get();
}

void NadClient::IssueRead(ProcessId /*p*/, RegisterId r, ReadHandler done) {
  Conn* conn = ConnFor(r.disk);
  if (conn == nullptr) return;  // unmapped disk behaves as crashed
  Message req;
  req.type = MsgType::kReadReq;
  req.request_id = next_request_id_.fetch_add(1, std::memory_order_relaxed);
  req.reg = r;
  {
    std::lock_guard lock(conn->pending_mu);
    conn->pending_reads.emplace(
        req.request_id,
        PendingRead{std::move(done), std::chrono::steady_clock::now()});
  }
  in_flight_->Add(1);
  std::lock_guard lock(conn->send_mu);
  if (!SendFrame(conn->sock, EncodeMessage(req)).ok()) {
    // Connection dead: the disk is unreachable — handler never runs,
    // exactly like a crashed register. Clean up the stashed handler.
    std::lock_guard plock(conn->pending_mu);
    if (conn->pending_reads.erase(req.request_id) > 0) in_flight_->Add(-1);
  }
}

void NadClient::IssueWrite(ProcessId /*p*/, RegisterId r, Value v,
                           WriteHandler done) {
  Conn* conn = ConnFor(r.disk);
  if (conn == nullptr) return;
  Message req;
  req.type = MsgType::kWriteReq;
  req.request_id = next_request_id_.fetch_add(1, std::memory_order_relaxed);
  req.reg = r;
  req.value = std::move(v);
  {
    std::lock_guard lock(conn->pending_mu);
    conn->pending_writes.emplace(
        req.request_id,
        PendingWrite{std::move(done), std::chrono::steady_clock::now()});
  }
  in_flight_->Add(1);
  std::lock_guard lock(conn->send_mu);
  if (!SendFrame(conn->sock, EncodeMessage(req)).ok()) {
    std::lock_guard plock(conn->pending_mu);
    if (conn->pending_writes.erase(req.request_id) > 0) in_flight_->Add(-1);
  }
}

Expected<std::string> NadClient::QueryStats(DiskId d,
                                            std::chrono::milliseconds timeout) {
  Conn* conn = ConnFor(d);
  if (conn == nullptr) return Status::Unavailable("stats: unmapped disk");
  Message req;
  req.type = MsgType::kStatsReq;
  req.request_id = next_request_id_.fetch_add(1, std::memory_order_relaxed);
  auto waiter = std::make_shared<StatsWaiter>();
  {
    std::lock_guard lock(conn->pending_mu);
    conn->pending_stats.emplace(req.request_id, waiter);
  }
  {
    std::lock_guard lock(conn->send_mu);
    if (!SendFrame(conn->sock, EncodeMessage(req)).ok()) {
      std::lock_guard plock(conn->pending_mu);
      conn->pending_stats.erase(req.request_id);
      return Status::Unavailable("stats: connection dead");
    }
  }
  std::unique_lock lock(waiter->mu);
  if (!waiter->cv.wait_for(lock, timeout, [&] { return waiter->done; })) {
    std::lock_guard plock(conn->pending_mu);
    conn->pending_stats.erase(req.request_id);
    return Status::Timeout("stats: no response before deadline");
  }
  return waiter->text;
}

std::size_t NadClient::InFlight() const {
  std::size_t n = 0;
  for (const auto& [disk, conn] : conns_) {
    std::lock_guard lock(conn->pending_mu);
    n += conn->pending_reads.size() + conn->pending_writes.size();
  }
  return n;
}

void NadClient::ReaderLoop(Conn* conn) {
  for (;;) {
    auto payload = RecvFrame(conn->sock, kMaxFrameBytes);
    if (!payload) return;  // connection closed: pending handlers never run
    auto msg = DecodeMessage(*payload);
    if (!msg) {
      LOG_WARN << "nad-client: malformed response: " << msg.status().ToString();
      continue;
    }
    const auto now = std::chrono::steady_clock::now();
    if (msg->type == MsgType::kReadResp) {
      PendingRead pending;
      {
        std::lock_guard lock(conn->pending_mu);
        auto it = conn->pending_reads.find(msg->request_id);
        if (it == conn->pending_reads.end()) continue;
        pending = std::move(it->second);
        conn->pending_reads.erase(it);
      }
      in_flight_->Add(-1);
      read_us_->ObserveSince(pending.start);
      obs::EmitSpan("nad", "read", pending.start, now);
      if (pending.handler) pending.handler(std::move(msg->value));
    } else if (msg->type == MsgType::kWriteResp) {
      PendingWrite pending;
      {
        std::lock_guard lock(conn->pending_mu);
        auto it = conn->pending_writes.find(msg->request_id);
        if (it == conn->pending_writes.end()) continue;
        pending = std::move(it->second);
        conn->pending_writes.erase(it);
      }
      in_flight_->Add(-1);
      write_us_->ObserveSince(pending.start);
      obs::EmitSpan("nad", "write", pending.start, now);
      if (pending.handler) pending.handler();
    } else if (msg->type == MsgType::kStatsResp) {
      std::shared_ptr<StatsWaiter> waiter;
      {
        std::lock_guard lock(conn->pending_mu);
        auto it = conn->pending_stats.find(msg->request_id);
        if (it == conn->pending_stats.end()) continue;
        waiter = std::move(it->second);
        conn->pending_stats.erase(it);
      }
      std::lock_guard wlock(waiter->mu);
      waiter->text = std::move(msg->value);
      waiter->done = true;
      waiter->cv.notify_all();
    }
  }
}

}  // namespace nadreg::nad
