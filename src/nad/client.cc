#include "nad/client.h"

#include "common/log.h"
#include "obs/trace.h"

namespace nadreg::nad {

NadClient::NadClient(Options options)
    : options_(options),
      read_us_(&obs::Registry::Global().GetHistogram("nad.client.read_us")),
      write_us_(&obs::Registry::Global().GetHistogram("nad.client.write_us")),
      batch_size_(
          &obs::Registry::Global().GetHistogram("nad.client.batch_size")),
      in_flight_(&obs::Registry::Global().GetGauge("nad.client.in_flight")),
      rejected_oversized_(&obs::Registry::Global().GetCounter(
          "nad.client.rejected_oversized")) {}

Expected<std::unique_ptr<NadClient>> NadClient::Connect(
    std::map<DiskId, Endpoint> endpoints, Options options) {
  std::unique_ptr<NadClient> client(new NadClient(options));
  for (const auto& [disk, ep] : endpoints) {
    auto sock = nad::Connect(ep.host, ep.port);
    if (!sock) return sock.status();
    auto conn = std::make_unique<Conn>();
    conn->sock = std::move(*sock);
    client->conns_.emplace(disk, std::move(conn));
  }
  for (auto& [disk, conn] : client->conns_) {
    conn->reader = std::jthread([c = client.get(), cp = conn.get()] {
      c->ReaderLoop(cp);
    });
    conn->sender = std::jthread([c = client.get(), cp = conn.get()] {
      c->SenderLoop(cp);
    });
  }
  return client;
}

NadClient::~NadClient() {
  for (auto& [disk, conn] : conns_) {
    {
      MutexLock lock(conn->send_mu);
      conn->closed = true;
    }
    conn->send_cv.NotifyAll();
    // Unblocks the reader (in recv) and a sender stuck in send on a
    // peer that stopped draining.
    conn->sock.Shutdown();
  }
  for (auto& [disk, conn] : conns_) {
    if (conn->sender.joinable()) conn->sender.join();
    if (conn->reader.joinable()) conn->reader.join();
  }
}

NadClient::Conn* NadClient::ConnFor(DiskId d) {
  auto it = conns_.find(d);
  return it == conns_.end() ? nullptr : it->second.get();
}

bool NadClient::Enqueue(Conn* conn, Message msg) {
  {
    MutexLock lock(conn->send_mu);
    if (conn->closed) return false;
    conn->outgoing.push_back(std::move(msg));
  }
  conn->send_cv.NotifyOne();
  return true;
}

void NadClient::RejectOversized(const RegisterId& r, std::size_t value_bytes) {
  rejected_oversized_->Inc();
  LOG_WARN << "nad-client: dropping write of " << value_bytes
           << " bytes to disk " << r.disk << " block " << r.block
           << ": value cannot fit a " << kMaxFrameBytes
           << "-byte frame (handler will never run)";
}

void NadClient::IssueRead(ProcessId /*p*/, RegisterId r, ReadHandler done) {
  Conn* conn = ConnFor(r.disk);
  if (conn == nullptr) return;  // unmapped disk behaves as crashed
  Message req;
  req.type = MsgType::kReadReq;
  req.request_id = next_request_id_.fetch_add(1, std::memory_order_relaxed);
  req.reg = r;
  {
    MutexLock lock(conn->pending_mu);
    conn->pending_reads.emplace(
        req.request_id,
        PendingRead{std::move(done), std::chrono::steady_clock::now()});
  }
  in_flight_->Add(1);
  if (!Enqueue(conn, std::move(req))) {
    // Connection dead: the disk is unreachable — handler never runs,
    // exactly like a crashed register. Clean up the stashed handler.
    MutexLock plock(conn->pending_mu);
    if (conn->pending_reads.erase(req.request_id) > 0) in_flight_->Add(-1);
  }
}

void NadClient::IssueWrite(ProcessId /*p*/, RegisterId r, Value v,
                           WriteHandler done) {
  Conn* conn = ConnFor(r.disk);
  if (conn == nullptr) return;
  if (v.size() > kMaxFrameBytes - kWriteReqOverhead) {
    RejectOversized(r, v.size());
    return;
  }
  Message req;
  req.type = MsgType::kWriteReq;
  req.request_id = next_request_id_.fetch_add(1, std::memory_order_relaxed);
  req.reg = r;
  req.value = std::move(v);
  {
    MutexLock lock(conn->pending_mu);
    conn->pending_writes.emplace(
        req.request_id,
        PendingWrite{std::move(done), std::chrono::steady_clock::now()});
  }
  in_flight_->Add(1);
  if (!Enqueue(conn, std::move(req))) {
    MutexLock plock(conn->pending_mu);
    if (conn->pending_writes.erase(req.request_id) > 0) in_flight_->Add(-1);
  }
}

void NadClient::IssueReads(ProcessId /*p*/, std::vector<ReadOp> ops) {
  // Group per connection so each disk's ops land in its outgoing queue
  // atomically — one sender drain pass then coalesces them into one
  // batch frame rather than racing the first op onto the wire alone.
  std::map<Conn*, std::vector<Message>> per_conn;
  const auto now = std::chrono::steady_clock::now();
  for (ReadOp& op : ops) {
    Conn* conn = ConnFor(op.reg.disk);
    if (conn == nullptr) continue;
    Message req;
    req.type = MsgType::kReadReq;
    req.request_id = next_request_id_.fetch_add(1, std::memory_order_relaxed);
    req.reg = op.reg;
    {
      MutexLock lock(conn->pending_mu);
      conn->pending_reads.emplace(req.request_id,
                                  PendingRead{std::move(op.done), now});
    }
    in_flight_->Add(1);
    per_conn[conn].push_back(std::move(req));
  }
  for (auto& [conn, msgs] : per_conn) {
    bool accepted = false;
    {
      MutexLock lock(conn->send_mu);
      if (!conn->closed) {
        for (Message& m : msgs) conn->outgoing.push_back(std::move(m));
        accepted = true;
      }
    }
    if (accepted) {
      conn->send_cv.NotifyOne();
    } else {
      MutexLock plock(conn->pending_mu);
      for (const Message& m : msgs) {
        if (conn->pending_reads.erase(m.request_id) > 0) in_flight_->Add(-1);
      }
    }
  }
}

void NadClient::IssueWrites(ProcessId /*p*/, std::vector<WriteOp> ops) {
  std::map<Conn*, std::vector<Message>> per_conn;
  const auto now = std::chrono::steady_clock::now();
  for (WriteOp& op : ops) {
    Conn* conn = ConnFor(op.reg.disk);
    if (conn == nullptr) continue;
    if (op.value.size() > kMaxFrameBytes - kWriteReqOverhead) {
      RejectOversized(op.reg, op.value.size());
      continue;
    }
    Message req;
    req.type = MsgType::kWriteReq;
    req.request_id = next_request_id_.fetch_add(1, std::memory_order_relaxed);
    req.reg = op.reg;
    req.value = std::move(op.value);
    {
      MutexLock lock(conn->pending_mu);
      conn->pending_writes.emplace(req.request_id,
                                   PendingWrite{std::move(op.done), now});
    }
    in_flight_->Add(1);
    per_conn[conn].push_back(std::move(req));
  }
  for (auto& [conn, msgs] : per_conn) {
    bool accepted = false;
    {
      MutexLock lock(conn->send_mu);
      if (!conn->closed) {
        for (Message& m : msgs) conn->outgoing.push_back(std::move(m));
        accepted = true;
      }
    }
    if (accepted) {
      conn->send_cv.NotifyOne();
    } else {
      MutexLock plock(conn->pending_mu);
      for (const Message& m : msgs) {
        if (conn->pending_writes.erase(m.request_id) > 0) in_flight_->Add(-1);
      }
    }
  }
}

Expected<std::string> NadClient::QueryStats(DiskId d,
                                            std::chrono::milliseconds timeout) {
  Conn* conn = ConnFor(d);
  if (conn == nullptr) return Status::Unavailable("stats: unmapped disk");
  Message req;
  req.type = MsgType::kStatsReq;
  req.request_id = next_request_id_.fetch_add(1, std::memory_order_relaxed);
  auto waiter = std::make_shared<StatsWaiter>();
  {
    MutexLock lock(conn->pending_mu);
    conn->pending_stats.emplace(req.request_id, waiter);
  }
  if (!Enqueue(conn, std::move(req))) {
    MutexLock plock(conn->pending_mu);
    conn->pending_stats.erase(req.request_id);
    return Status::Unavailable("stats: connection dead");
  }
  bool answered;
  {
    MutexLock lock(waiter->mu);
    answered = waiter->cv.WaitFor(waiter->mu, timeout, [&] {
      waiter->mu.AssertHeld();  // predicates run under the lock
      return waiter->done;
    });
  }
  if (!answered) {
    MutexLock plock(conn->pending_mu);
    conn->pending_stats.erase(req.request_id);
    return Status::Timeout("stats: no response before deadline");
  }
  MutexLock lock(waiter->mu);
  return waiter->text;
}

std::size_t NadClient::InFlight() const {
  std::size_t n = 0;
  for (const auto& [disk, conn] : conns_) {
    MutexLock lock(conn->pending_mu);
    n += conn->pending_reads.size() + conn->pending_writes.size();
  }
  return n;
}

void NadClient::FlushRun(std::vector<Message>* run, std::string* wire) {
  if (run->empty()) return;
  if (run->size() == 1) {
    // A lone op costs less as a plain per-op frame — and keeps the
    // pre-batch opcodes exercised against every server.
    batch_size_->Observe(1);
    AppendFrame(wire, EncodeMessage(run->front()));
    run->clear();
    return;
  }
  Message batch;
  batch.type = MsgType::kBatchReq;
  batch.subs = std::move(*run);
  batch_size_->Observe(batch.subs.size());
  AppendFrame(wire, EncodeMessage(batch));
  run->clear();
}

void NadClient::SenderLoop(Conn* conn) {
  // Batch payload = type + request id + count + per-sub length prefixes.
  constexpr std::size_t kBatchHeader = 1 + 8 + 4;
  for (;;) {
    std::deque<Message> drained;
    {
      MutexLock lock(conn->send_mu);
      conn->send_cv.Wait(conn->send_mu, [&] {
        conn->send_mu.AssertHeld();
        return conn->closed || !conn->outgoing.empty();
      });
      if (conn->closed) return;
      drained.swap(conn->outgoing);
    }
    // Coalesce the drain pass into as few frames as possible, preserving
    // FIFO order: consecutive reads/writes form one batch (split at the
    // frame cap); STATS stays a standalone out-of-band frame.
    std::string wire;
    std::vector<Message> run;
    std::size_t run_bytes = kBatchHeader;
    for (Message& msg : drained) {
      if (!options_.enable_batching || msg.type == MsgType::kStatsReq) {
        FlushRun(&run, &wire);
        run_bytes = kBatchHeader;
        if (msg.type != MsgType::kStatsReq) batch_size_->Observe(1);
        AppendFrame(&wire, EncodeMessage(msg));
        continue;
      }
      const std::size_t sub_bytes =
          kBatchSubOverhead + (1 + 8 + 4 + 8) +
          (msg.type == MsgType::kWriteReq ? 4 + msg.value.size() : 0);
      if (!run.empty() && run_bytes + sub_bytes > kMaxFrameBytes) {
        FlushRun(&run, &wire);
        run_bytes = kBatchHeader;
      }
      run_bytes += sub_bytes;
      run.push_back(std::move(msg));
    }
    FlushRun(&run, &wire);
    if (!SendAll(conn->sock, wire).ok()) {
      // Connection dead: everything queued or already pending on this
      // disk will simply never complete — crashed-disk semantics.
      MutexLock lock(conn->send_mu);
      conn->closed = true;
      conn->outgoing.clear();
      return;
    }
  }
}

void NadClient::DispatchResponse(Conn* conn, Message msg) {
  const auto now = std::chrono::steady_clock::now();
  if (msg.type == MsgType::kReadResp) {
    PendingRead pending;
    {
      MutexLock lock(conn->pending_mu);
      auto it = conn->pending_reads.find(msg.request_id);
      if (it == conn->pending_reads.end()) return;
      pending = std::move(it->second);
      conn->pending_reads.erase(it);
    }
    in_flight_->Add(-1);
    read_us_->ObserveSince(pending.start);
    obs::EmitSpan("nad", "read", pending.start, now);
    if (pending.handler) pending.handler(std::move(msg.value));
  } else if (msg.type == MsgType::kWriteResp) {
    PendingWrite pending;
    {
      MutexLock lock(conn->pending_mu);
      auto it = conn->pending_writes.find(msg.request_id);
      if (it == conn->pending_writes.end()) return;
      pending = std::move(it->second);
      conn->pending_writes.erase(it);
    }
    in_flight_->Add(-1);
    write_us_->ObserveSince(pending.start);
    obs::EmitSpan("nad", "write", pending.start, now);
    if (pending.handler) pending.handler();
  } else if (msg.type == MsgType::kStatsResp) {
    std::shared_ptr<StatsWaiter> waiter;
    {
      MutexLock lock(conn->pending_mu);
      auto it = conn->pending_stats.find(msg.request_id);
      if (it == conn->pending_stats.end()) return;
      waiter = std::move(it->second);
      conn->pending_stats.erase(it);
    }
    MutexLock wlock(waiter->mu);
    waiter->text = std::move(msg.value);
    waiter->done = true;
    waiter->cv.NotifyAll();
  }
}

void NadClient::ReaderLoop(Conn* conn) {
  for (;;) {
    auto payload = RecvFrame(conn->sock, kMaxFrameBytes);
    if (!payload) return;  // connection closed: pending handlers never run
    auto msg = DecodeMessage(*payload);
    if (!msg) {
      LOG_WARN << "nad-client: malformed response: " << msg.status().ToString();
      continue;
    }
    if (msg->type == MsgType::kBatchResp) {
      for (Message& sub : msg->subs) DispatchResponse(conn, std::move(sub));
    } else {
      DispatchResponse(conn, std::move(*msg));
    }
  }
}

}  // namespace nadreg::nad
