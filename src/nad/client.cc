#include "nad/client.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <limits>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "common/arena.h"
#include "common/hotpath_stats.h"
#include "common/log.h"
#include "common/rng.h"
#include "common/sync.h"
#include "nad/pending_table.h"
#include "nad/socket.h"
#include "obs/trace.h"

namespace nadreg::nad {
namespace {

using Clock = std::chrono::steady_clock;

/// suspected_until_us sentinel: suspected forever (dead-for-good link).
constexpr std::int64_t kSuspectForever = std::numeric_limits<std::int64_t>::max();

std::int64_t ToUs(Clock::time_point t) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             t.time_since_epoch())
      .count();
}

/// Most iovec slots one FlushWire gather pass hands the kernel. Chunks
/// are finer-grained than the old whole-frame units (headers and values
/// are separate spans), so the cap is correspondingly larger; IOV_MAX is
/// 1024 on Linux.
constexpr std::size_t kMaxIov = 256;

/// Batch frame prologue: type + request id + count.
constexpr std::size_t kBatchHeaderBytes = 1 + 8 + 4;

/// Sent-chunk count past which a backpressured wire queue is compacted
/// (CompactWire): under sustained partial sends to a slow peer the sent
/// prefix, its arena headers, and any parked zombie values would
/// otherwise be reclaimed only when the queue fully drains — which may
/// be never while admissions keep coming.
constexpr std::size_t kCompactWireChunks = 64;

/// One in-flight operation. Lives in the connection's PendingTable, whose
/// slots never move — the zero-copy wire path references `value` IN PLACE
/// from the gather queue, which is sound only because of that stability
/// (and because a response for the op proves its frame already left; see
/// DispatchResponse for the byzantine-server case).
struct PendingOp {
  MsgType req_type = MsgType::kReadReq;  // kReadReq / kWriteReq / kStatsReq
  RegisterId reg;
  Clock::time_point start{};
  Clock::time_point expires{};
  Value value;  // writes only: owned here until completion or expiry
  ReadHandler on_read;
  WriteHandler on_write;
  NadClient::StatsHandler on_stats;
};

}  // namespace

/// One admitted op en route from Submit (any thread) to Admit (the
/// owning loop). Deadlines are resolved at Submit time so queueing delay
/// counts against the budget.
struct NadClient::SubmitEntry {
  Op op;
  Conn* conn = nullptr;
  Clock::time_point start;
  Clock::time_point expires;
};

/// Per-disk connection. Everything below `loop` is owned by that loop
/// and touched only on its thread (the single-writer rule, DESIGN.md
/// §12) — no mutexes. The two atomics at the bottom are the published
/// cross-thread view.
struct NadClient::Conn final : EventLoop::IoWatcher {
  NadClient* client;
  const DiskId disk;
  const Endpoint endpoint;  // immutable; reconnect target
  EventLoop* loop = nullptr;
  std::size_t loop_index = 0;

  /// kUp: socket healthy. kConnecting: non-blocking redial in flight.
  /// kBackoff: waiting on the wheel for the next redial. kDown: dead for
  /// good (reconnect disabled).
  enum class Link { kUp, kConnecting, kBackoff, kDown };
  Link link = Link::kUp;
  Socket sock;
  std::uint64_t next_request_id = 1;
  /// EAGAIN hit mid-flush: waiting for the next EPOLLOUT edge.
  bool want_write = false;
  /// Set while an Admit pass has queued this conn for its flush step.
  bool admit_queued = false;

  /// Admitted request ids not yet framed (the coalescing unit). Ids, not
  /// entry pointers: an op staged while the link is down can expire
  /// before framing, so FrameStaged re-resolves against the table.
  std::vector<std::uint64_t> staged;
  /// The gather queue: spans into tx_arena (frame headers) and into
  /// pending-table write values (zero-copy). wire[wire_head] is the next
  /// unsent chunk; wire_off bytes of it are already in the kernel.
  std::vector<WireChunk> wire;
  std::size_t wire_head = 0;
  std::size_t wire_off = 0;
  RxBuffer rx;  // unparsed inbound bytes; recv lands directly here

  /// Frame headers of queued chunks; reset whenever the wire drains.
  Arena tx_arena;
  /// Decode state (batch sub arrays); reset after each frame dispatch.
  Arena rx_arena;
  /// All in-flight ops, one table per connection (the structural shard).
  PendingTable<PendingOp> pending;
  /// Write values whose ops completed or expired while the wire still
  /// holds unsent bytes that may reference them; freed when the wire
  /// drains, is compacted, or the link breaks. Empty in steady state.
  /// Only heap-backed values (larger than kSmallValueCopyBytes) are ever
  /// parked: the wire never references smaller ones (PutBytesRef copies
  /// them into the arena), and moving a heap-backed string here keeps
  /// the buffer the chunk points at alive and at the same address.
  std::vector<Value> zombies;
  /// CompactWire's bounce buffer (capacity reused across compactions).
  std::string compact_scratch;
  /// FrameStaged's run scratch (capacity reused across admission passes).
  std::vector<std::pair<std::uint64_t, PendingOp*>> run_scratch;
  std::size_t run_bytes = kBatchHeaderBytes;

  BackoffState backoff;
  CircuitBreaker breaker;
  /// Deterministic per-disk jitter stream (decorrelates the reconnect
  /// storms of many clients hitting one recovered disk).
  Rng rng;
  std::uint64_t sweep_timer = 0;  // wheel id; 0 = unarmed
  Clock::time_point sweep_deadline{};
  std::uint64_t redial_timer = 0;  // wheel id; 0 = unarmed

  /// Published view of IsSuspectedCrashed: 0 = not suspected, a steady-
  /// clock microsecond stamp = suspected until then, kSuspectForever =
  /// dead for good. Written by the owning loop, read from any thread.
  std::atomic<std::int64_t> suspected_until_us{0};

  Conn(NadClient* c, DiskId d, Endpoint ep, const RetryPolicy& policy)
      : client(c),
        disk(d),
        endpoint(std::move(ep)),
        backoff(policy),
        breaker(policy),
        rng(0x9e3779b97f4a7c15ULL ^ (static_cast<std::uint64_t>(d) << 17)) {}

  void OnIoReady(std::uint32_t events) override {
    client->OnIoReady(this, events);
  }

  /// Tears down the tx side: queued frames, their header arena, and the
  /// zombie values they may reference die together.
  void DropWire() {
    wire.clear();
    wire_head = 0;
    wire_off = 0;
    tx_arena.Reset();
    zombies.clear();
  }
};

NadClient::NadClient(Options options)
    : options_(options),
      read_us_(&obs::Registry::Global().GetHistogram("nad.client.read_us")),
      write_us_(&obs::Registry::Global().GetHistogram("nad.client.write_us")),
      batch_size_(
          &obs::Registry::Global().GetHistogram("nad.client.batch_size")),
      in_flight_(&obs::Registry::Global().GetGauge("nad.client.in_flight")),
      rejected_oversized_(&obs::Registry::Global().GetCounter(
          "nad.client.rejected_oversized")),
      retries_(&obs::Registry::Global().GetCounter("nad.client.retries")),
      reconnects_(
          &obs::Registry::Global().GetCounter("nad.client.reconnects")),
      reconnect_failures_(&obs::Registry::Global().GetCounter(
          "nad.client.reconnect_failures")),
      expired_(&obs::Registry::Global().GetCounter("nad.client.expired")),
      breaker_open_(
          &obs::Registry::Global().GetCounter("nad.client.breaker_open")) {}

Expected<std::unique_ptr<NadClient>> NadClient::Connect(
    std::map<DiskId, Endpoint> endpoints, Options options) {
  if (options.num_event_loops > kMaxEventLoops) {
    return Status::Invalid("num_event_loops " +
                           std::to_string(options.num_event_loops) +
                           " exceeds the limit of " +
                           std::to_string(kMaxEventLoops));
  }
  std::unique_ptr<NadClient> client(new NadClient(options));
  for (const auto& [disk, ep] : endpoints) {
    auto sock = nad::Connect(ep.host, ep.port);
    if (!sock) return sock.status();
    if (Status st = SetNonBlocking(*sock); !st.ok()) return st;
    auto conn = std::make_unique<Conn>(client.get(), disk, ep, options.retry);
    conn->sock = std::move(*sock);
    client->conns_.emplace(disk, std::move(conn));
  }
  std::size_t n = options.num_event_loops;
  if (n == 0) n = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  n = std::min(n, std::max<std::size_t>(1, client->conns_.size()));
  for (std::size_t i = 0; i < n; ++i) {
    auto loop = EventLoop::Create();
    if (!loop) return loop.status();
    client->loops_.push_back(std::move(*loop));
  }
  std::size_t idx = 0;
  for (auto& [disk, conn] : client->conns_) {
    conn->loop = client->loops_[idx % n].get();
    conn->loop_index = idx % n;
    ++idx;
  }
  // If a loop dies of an epoll failure, its share of the connections
  // must fail over (suspected forever, pending ops resolved) instead of
  // silently hanging every op posted to the dead loop.
  for (auto& loop : client->loops_) {
    EventLoop* lp = loop.get();
    lp->SetFatalHandler([c = client.get(), lp] { c->OnLoopDead(lp); });
  }
  for (auto& loop : client->loops_) loop->Start();
  // Register each socket on its owning loop. The inbox is FIFO, so this
  // runs before any Submit admission posted afterwards can flush.
  for (auto& [disk, conn] : client->conns_) {
    Conn* cp = conn.get();
    cp->loop->Post([c = client.get(), cp] { c->RegisterConn(cp); });
  }
  return client;
}

NadClient::~NadClient() {
  // Stop all loops, then join: once no loop thread runs, the connection
  // state has no writer left and tears down without synchronization.
  // Pending handlers are destroyed unrun — crashed-register semantics to
  // the very end, exactly like the old reader/sender shutdown.
  for (auto& loop : loops_) loop->Stop();
  for (auto& loop : loops_) loop->Join();
}

NadClient::Conn* NadClient::ConnFor(DiskId d) const {
  auto it = conns_.find(d);
  return it == conns_.end() ? nullptr : it->second.get();
}

std::chrono::steady_clock::time_point NadClient::ExpiryFrom(
    std::chrono::steady_clock::time_point now) const {
  if (options_.op_timeout.count() <= 0) {
    return std::chrono::steady_clock::time_point::max();
  }
  return now + options_.op_timeout;
}

bool NadClient::IsSuspectedCrashed(DiskId d) const {
  Conn* conn = ConnFor(d);
  if (conn == nullptr) return true;  // unmapped disk behaves as crashed
  const std::int64_t until =
      conn->suspected_until_us.load(std::memory_order_relaxed);
  if (until == 0) return false;
  if (until == kSuspectForever) return true;
  // The loop stamps open-breaker suspicion as opened_at + cooldown, so
  // suspicion clears exactly when the breaker would half-open and probes
  // should start flowing again.
  return ToUs(Clock::now()) < until;
}

void NadClient::AddInFlight(std::int64_t delta) {
  in_flight_count_.fetch_add(delta, std::memory_order_relaxed);
  in_flight_->Add(delta);
}

std::size_t NadClient::InFlight() const {
  const std::int64_t v = in_flight_count_.load(std::memory_order_relaxed);
  return v > 0 ? static_cast<std::size_t>(v) : 0;
}

void NadClient::RejectOversized(const RegisterId& r, std::size_t value_bytes) {
  rejected_oversized_->Inc();
  LOG_WARN << "nad-client: dropping write of " << value_bytes
           << " bytes to disk " << r.disk << " block " << r.block
           << ": value cannot fit a " << kMaxFrameBytes
           << "-byte frame (handler will never run)";
}

NadClient::Op NadClient::Op::Read(RegisterId r, ReadHandler done) {
  Op op;
  op.kind = Kind::kRead;
  op.reg = r;
  op.on_read = std::move(done);
  return op;
}

NadClient::Op NadClient::Op::Write(RegisterId r, Value v, WriteHandler done) {
  Op op;
  op.kind = Kind::kWrite;
  op.reg = r;
  op.value = std::move(v);
  op.on_write = std::move(done);
  return op;
}

NadClient::Op NadClient::Op::Merge(RegisterId r, Value delta,
                                   WriteHandler done) {
  Op op;
  op.kind = Kind::kMerge;
  op.reg = r;
  op.value = std::move(delta);
  op.on_write = std::move(done);
  return op;
}

NadClient::Op NadClient::Op::Stats(DiskId d, StatsHandler done) {
  Op op;
  op.kind = Kind::kStats;
  op.reg.disk = d;
  op.on_stats = std::move(done);
  return op;
}

void NadClient::Submit(ProcessId /*p*/, std::vector<Op> ops,
                       const OpOptions& opts) {
  const auto now = Clock::now();
  const auto expires =
      opts.deadline.has_value() ? now + *opts.deadline : ExpiryFrom(now);
  // Group per owning loop so one Post hands each loop its whole share of
  // the batch atomically — the admission pass then coalesces everything
  // bound for one disk into one batch frame (and each loop wakes once).
  std::vector<std::vector<SubmitEntry>> per_loop(loops_.size());
  for (Op& op : ops) {
    Conn* conn = ConnFor(op.reg.disk);
    if (conn == nullptr || conn->loop->dead()) {
      // Unmapped disk — or one whose owning loop died of an epoll
      // failure, where a Post would land in a queue no thread serves —
      // behaves as crashed: the handler never runs, except STATS, which
      // is observability, not a model op, and fails fast.
      if (op.kind == Op::Kind::kStats && op.on_stats) {
        op.on_stats(Status::Unavailable(
            conn == nullptr ? "stats: unmapped disk" : "stats: loop dead"));
      }
      continue;
    }
    if ((op.kind == Op::Kind::kWrite || op.kind == Op::Kind::kMerge) &&
        op.value.size() > kMaxFrameBytes - kWriteReqOverhead) {
      RejectOversized(op.reg, op.value.size());
      continue;
    }
    AddInFlight(1);
    std::vector<SubmitEntry>& share = per_loop[conn->loop_index];
    if (share.empty()) share.reserve(ops.size());
    share.push_back(SubmitEntry{std::move(op), conn, now, expires});
  }
  for (std::size_t i = 0; i < per_loop.size(); ++i) {
    if (per_loop[i].empty()) continue;
    // shared_ptr capture: std::function requires copyable callables and
    // C++20 has no move_only_function to carry the vector by value.
    auto batch =
        std::make_shared<std::vector<SubmitEntry>>(std::move(per_loop[i]));
    loops_[i]->Post([this, batch] { Admit(std::move(*batch)); });
  }
}

void NadClient::IssueRead(ProcessId p, RegisterId r, ReadHandler done) {
  std::vector<Op> ops;
  ops.push_back(Op::Read(r, std::move(done)));
  Submit(p, std::move(ops));
}

void NadClient::IssueWrite(ProcessId p, RegisterId r, Value v,
                           WriteHandler done) {
  std::vector<Op> ops;
  ops.push_back(Op::Write(r, std::move(v), std::move(done)));
  Submit(p, std::move(ops));
}

void NadClient::IssueReads(ProcessId p, std::vector<ReadOp> ops) {
  std::vector<Op> batch;
  batch.reserve(ops.size());
  for (ReadOp& op : ops) batch.push_back(Op::Read(op.reg, std::move(op.done)));
  Submit(p, std::move(batch));
}

void NadClient::IssueWrites(ProcessId p, std::vector<WriteOp> ops) {
  std::vector<Op> batch;
  batch.reserve(ops.size());
  for (WriteOp& op : ops) {
    batch.push_back(Op::Write(op.reg, std::move(op.value), std::move(op.done)));
  }
  Submit(p, std::move(batch));
}

void NadClient::IssueMerge(ProcessId p, RegisterId r, Value delta,
                           WriteHandler done) {
  std::vector<Op> ops;
  ops.push_back(Op::Merge(r, std::move(delta), std::move(done)));
  Submit(p, std::move(ops));
}

void NadClient::IssueMerges(ProcessId p, std::vector<WriteOp> ops) {
  std::vector<Op> batch;
  batch.reserve(ops.size());
  for (WriteOp& op : ops) {
    batch.push_back(Op::Merge(op.reg, std::move(op.value), std::move(op.done)));
  }
  Submit(p, std::move(batch));
}

Expected<std::string> NadClient::QueryStats(DiskId d,
                                            std::chrono::milliseconds timeout) {
  // Blocking shim over a Submit STATS op: the op rides the same pending
  // table and expiry sweep as reads/writes (no bespoke waiter plumbing in
  // the transport), and this function just parks on the completion.
  struct Waiter {
    Mutex mu;
    CondVar cv;
    bool done GUARDED_BY(mu) = false;
    Expected<std::string> result GUARDED_BY(mu) =
        Status::Timeout("stats: no response before deadline");
  };
  auto waiter = std::make_shared<Waiter>();
  std::vector<Op> ops;
  ops.push_back(Op::Stats(d, [waiter](Expected<std::string> r) {
    MutexLock lock(waiter->mu);
    waiter->result = std::move(r);
    waiter->done = true;
    waiter->cv.NotifyAll();
  }));
  Submit(0, std::move(ops), OpOptions::WithDeadline(timeout));
  // Slack past the deadline: the expiry sweep itself answers kTimeout,
  // one wheel tick late at worst; the extra wait just covers scheduling.
  MutexLock lock(waiter->mu);
  waiter->cv.WaitFor(waiter->mu, timeout + std::chrono::milliseconds(100),
                     [&] {
                       waiter->mu.AssertHeld();  // predicates run locked
                       return waiter->done;
                     });
  return waiter->result;
}

// ---------------------------------------------------------------------------
// Loop-thread internals. Everything below runs on a connection's owning
// loop; connection state needs no locks (single-writer, DESIGN.md §12).
// ---------------------------------------------------------------------------

void NadClient::RegisterConn(Conn* conn) {
  if (Status st = conn->loop->Watch(conn->sock.fd(), conn); !st.ok()) {
    LOG_WARN << "nad-client: cannot watch disk " << conn->disk << ": "
             << st.ToString();
    OnLinkBroken(conn);
  }
}

void NadClient::Admit(std::vector<SubmitEntry> entries) {
  std::vector<Conn*> touched;
  for (SubmitEntry& e : entries) {
    Conn* c = e.conn;
    const bool stats_on_broken_link =
        e.op.kind == Op::Kind::kStats && c->link != Conn::Link::kUp;
    if (c->link == Conn::Link::kDown || stats_on_broken_link) {
      // Dead for good: the op can never be sent. Handler never runs
      // (crashed-register semantics); STATS fails fast instead — also
      // while the link is merely reconnecting, because the redial
      // rebuild retransmits only reads/writes (STATS probes die with
      // the link, per the header contract) and a stats op parked here
      // with no deadline would otherwise stay in flight forever.
      AddInFlight(-1);
      if (e.op.kind == Op::Kind::kStats && e.op.on_stats) {
        e.op.on_stats(Status::Unavailable("stats: connection down"));
      }
      continue;
    }
    // hot-path-begin(client-admit): staging must not copy the op's value
    // — it MOVES into a stable pending-table slot the wire references.
    const std::uint64_t id = c->next_request_id++;
    PendingOp* p = c->pending.Insert(id);
    p->start = e.start;
    p->expires = e.expires;
    p->reg = e.op.reg;
    if (e.op.kind == Op::Kind::kRead) {
      p->req_type = MsgType::kReadReq;
      p->on_read = std::move(e.op.on_read);
    } else if (e.op.kind == Op::Kind::kWrite ||
               e.op.kind == Op::Kind::kMerge) {
      p->req_type = e.op.kind == Op::Kind::kWrite ? MsgType::kWriteReq
                                                  : MsgType::kMergeReq;
      p->value = std::move(e.op.value);
      p->on_write = std::move(e.op.on_write);
    } else {
      p->req_type = MsgType::kStatsReq;
      p->on_stats = std::move(e.op.on_stats);
    }
    c->staged.push_back(id);
    // hot-path-end
    MaybeArmSweep(c, e.expires);
    if (!c->admit_queued) {
      c->admit_queued = true;
      touched.push_back(c);
    }
  }
  for (Conn* c : touched) {
    c->admit_queued = false;
    // Reads/writes staged while the link is down wait in the pending
    // table; the reconnect rebuild retransmits them (STATS never gets
    // here on a broken link — it failed kUnavailable above).
    if (c->link == Conn::Link::kUp) {
      FrameStaged(c);
      FlushWire(c);
    }
  }
}

void NadClient::FrameStaged(Conn* conn) {
  if (conn->staged.empty()) return;
  // Coalesce the admission pass into as few frames as possible,
  // preserving FIFO order: consecutive reads/writes form one batch
  // (split at the frame cap); STATS stays a standalone out-of-band
  // frame. Frames are built as WireChunks — headers in tx_arena, write
  // values referenced from their pending entries — never materialized.
  // hot-path-begin(client-framing)
  auto& run = conn->run_scratch;
  run.clear();
  conn->run_bytes = kBatchHeaderBytes;
  for (const std::uint64_t id : conn->staged) {
    PendingOp* p = conn->pending.Find(id);
    if (p == nullptr) continue;  // expired while the link was down
    if (!options_.enable_batching || p->req_type == MsgType::kStatsReq) {
      FlushRun(conn);
      if (p->req_type != MsgType::kStatsReq) batch_size_->Observe(1);
      FrameWriter w(&conn->tx_arena, &conn->wire);
      w.BeginFrame();
      AppendPayload(w, p->req_type, id, p->reg, p->value);
      w.EndFrame();
      continue;
    }
    const std::size_t sub_bytes =
        kBatchSubOverhead + PayloadSize(p->req_type, p->value.size());
    if (!run.empty() && conn->run_bytes + sub_bytes > kMaxFrameBytes) {
      FlushRun(conn);
    }
    conn->run_bytes += sub_bytes;
    run.emplace_back(id, p);
  }
  FlushRun(conn);
  conn->staged.clear();
  // hot-path-end
}

void NadClient::FlushRun(Conn* conn) {
  auto& run = conn->run_scratch;
  conn->run_bytes = kBatchHeaderBytes;
  if (run.empty()) return;
  // hot-path-begin(client-flush-run)
  FrameWriter w(&conn->tx_arena, &conn->wire);
  w.BeginFrame();
  if (run.size() == 1) {
    // A lone op costs less as a plain per-op frame — and keeps the
    // pre-batch opcodes exercised against every server.
    batch_size_->Observe(1);
    const auto& [id, p] = run.front();
    AppendPayload(w, p->req_type, id, p->reg, p->value);
  } else {
    batch_size_->Observe(run.size());
    w.PutU8(static_cast<std::uint8_t>(MsgType::kBatchReq));
    w.PutU64(0);
    w.PutU32(static_cast<std::uint32_t>(run.size()));
    for (const auto& [id, p] : run) {
      w.PutU32(static_cast<std::uint32_t>(
          PayloadSize(p->req_type, p->value.size())));
      AppendPayload(w, p->req_type, id, p->reg, p->value);
    }
  }
  w.EndFrame();
  run.clear();
  // hot-path-end
}

void NadClient::FlushWire(Conn* conn) {
  if (conn->link != Conn::Link::kUp) return;
  // hot-path-begin(client-flush-wire)
  while (conn->wire_head < conn->wire.size()) {
    // Gather up to kMaxIov chunk spans, the front chunk adjusted for the
    // bytes a previous partial write consumed.
    std::array<iovec, kMaxIov> iov;
    std::size_t iov_count = 0;
    std::size_t skip = conn->wire_off;
    for (std::size_t i = conn->wire_head;
         i < conn->wire.size() && iov_count < iov.size(); ++i) {
      const WireChunk& c = conn->wire[i];
      iov[iov_count].iov_base = const_cast<char*>(c.data) + skip;
      iov[iov_count].iov_len = c.len - skip;
      ++iov_count;
      skip = 0;
    }
    std::size_t sent = 0;
    if (Status st = SendSome(conn->sock, iov.data(), iov_count, &sent);
        !st.ok()) {
      // Dead socket: hand off to the reconnect path. The dropped frames
      // stay stashed in the pending table and will be retransmitted.
      OnLinkBroken(conn);
      return;
    }
    if (sent == 0) {
      // Kernel buffer full: resume on the next EPOLLOUT edge. If a lot
      // of sent state piled up (slow peer, repeated short sends while
      // admissions keep queueing), reclaim it now rather than waiting
      // for a full drain that may never come.
      conn->want_write = true;
      if (conn->wire_head >= kCompactWireChunks) CompactWireQueue(conn);
      return;
    }
    while (sent > 0) {
      const WireChunk& front = conn->wire[conn->wire_head];
      const std::size_t remaining = front.len - conn->wire_off;
      if (sent >= remaining) {
        sent -= remaining;
        ++conn->wire_head;
        conn->wire_off = 0;
      } else {
        conn->wire_off += sent;
        sent = 0;
      }
    }
  }
  // Fully drained: every queued span is in the kernel, so nothing
  // references the header arena or the zombie values anymore — recycle
  // them for the next admission pass.
  conn->DropWire();
  conn->want_write = false;
  // hot-path-end
}

void NadClient::CompactWireQueue(Conn* conn) {
  // Rewrites the queue as one arena-backed chunk of the unsent bytes:
  // the sent chunk prefix, its header arena bytes, and the zombie list
  // all reclaim without waiting for a full drain — and afterwards no
  // chunk references pending-table values, so the zombies (kept alive
  // only for the wire's sake) can go too.
  CompactWire(&conn->wire, &conn->wire_head, &conn->wire_off,
              &conn->tx_arena, &conn->compact_scratch);
  conn->zombies.clear();
}

void NadClient::OnIoReady(Conn* conn, std::uint32_t events) {
  if (conn->link == Conn::Link::kConnecting) {
    if (events & EventLoop::kError) {
      conn->loop->Unwatch(conn->sock.fd());
      conn->sock.Close();
      OnRedialFailed(conn);
      return;
    }
    if (events & EventLoop::kWritable) {
      if (Status st = FinishConnect(conn->sock); !st.ok()) {
        conn->loop->Unwatch(conn->sock.fd());
        conn->sock.Close();
        OnRedialFailed(conn);
        return;
      }
      OnRedialConnected(conn);
    }
    return;
  }
  // A stale edge for an fd closed earlier in this epoll batch lands here
  // with the link already down; ignore it.
  if (conn->link != Conn::Link::kUp) return;
  if (events & EventLoop::kError) {
    OnLinkBroken(conn);
    return;
  }
  if (events & EventLoop::kReadable) {
    if (!DrainReads(conn)) return;  // link broke mid-drain
  }
  if ((events & EventLoop::kWritable) && conn->want_write) FlushWire(conn);
}

bool NadClient::DrainReads(Conn* conn) {
  // Edge-triggered: drain to EAGAIN or the next edge never comes. recv
  // lands directly in the rx buffer — no bounce buffer, no append copy.
  // hot-path-begin(client-drain)
  for (;;) {
    conn->rx.EnsureTail(64 * 1024);
    std::size_t got = 0;
    if (Status st = RecvSome(conn->sock, conn->rx.Tail(),
                             conn->rx.TailCapacity(), &got);
        !st.ok()) {
      OnLinkBroken(conn);
      return false;
    }
    if (got == 0) return true;  // drained (would block)
    conn->rx.Commit(got);
    if (!ParseFrames(conn)) return false;
  }
  // hot-path-end
}

bool NadClient::ParseFrames(Conn* conn) {
  // hot-path-begin(client-parse)
  RxBuffer& rx = conn->rx;
  while (rx.Size() >= 4) {
    std::uint32_t len = 0;
    std::memcpy(&len, rx.Head(), 4);
    if (len > kMaxFrameBytes) {
      LOG_WARN << "nad-client: disk " << conn->disk
               << " sent an oversized frame (" << len
               << " bytes); dropping the connection";
      OnLinkBroken(conn);
      return false;
    }
    if (rx.Size() - 4 < len) break;
    HandleFrame(conn, std::string_view(rx.Head() + 4, len));
    // The frame is dispatched; the decode views into the buffer and the
    // rx arena are dead, so both can recycle.
    conn->rx_arena.Reset();
    rx.Consume(4 + len);
  }
  return true;
  // hot-path-end
}

void NadClient::HandleFrame(Conn* conn, std::string_view payload) {
  auto msg = DecodeMessageView(payload, &conn->rx_arena);
  if (!msg) {
    LOG_WARN << "nad-client: malformed response: " << msg.status().ToString();
    return;
  }
  // Any successfully received frame is proof of life: close the breaker
  // so suspicion clears as soon as the disk answers again.
  conn->breaker.RecordSuccess();
  conn->suspected_until_us.store(0, std::memory_order_relaxed);
  if (msg->type == MsgType::kBatchResp) {
    for (std::uint32_t i = 0; i < msg->num_subs; ++i) {
      DispatchResponse(conn, msg->subs[i]);
    }
  } else {
    DispatchResponse(conn, *msg);
  }
}

void NadClient::DispatchResponse(Conn* conn, const MessageView& msg) {
  const auto now = Clock::now();
  MsgType expect;
  switch (msg.type) {
    case MsgType::kReadResp:
      expect = MsgType::kReadReq;
      break;
    case MsgType::kWriteResp:
      expect = MsgType::kWriteReq;
      break;
    case MsgType::kMergeResp:
      expect = MsgType::kMergeReq;
      break;
    case MsgType::kStatsResp:
      expect = MsgType::kStatsReq;
      break;
    case MsgType::kReadReq:
    case MsgType::kWriteReq:
    case MsgType::kMergeReq:
    case MsgType::kStatsReq:
    case MsgType::kBatchReq:
    case MsgType::kBatchResp:
      return;  // not a per-op response opcode; ignore
  }
  // hot-path-begin(client-dispatch)
  PendingOp* entry = conn->pending.Find(msg.request_id);
  if (entry == nullptr || entry->req_type != expect) return;
  PendingOp op;
  conn->pending.Take(msg.request_id, &op);
  if ((op.req_type == MsgType::kWriteReq ||
       op.req_type == MsgType::kMergeReq) &&
      op.value.size() > kSmallValueCopyBytes &&
      conn->wire_head < conn->wire.size()) {
    // A response for a write whose bytes are still queued can only come
    // from a confused or hostile server (an honest response proves the
    // frame was fully sent) — but the wire must never dangle: park the
    // value until the queue drains. Only heap-backed values need this
    // (the wire never references smaller, possibly-SSO ones — see
    // kSmallValueCopyBytes); the move preserves their buffer address.
    conn->zombies.push_back(std::move(op.value));
  }
  AddInFlight(-1);
  if (msg.type == MsgType::kReadResp) {
    hotpath::CountCopy(msg.value.size());
    read_us_->ObserveSince(op.start);
    obs::EmitSpan("nad", "read", op.start, now);
    if (op.on_read) {
      // THE one hot-path copy: materializing the read's Value for its
      // handler, which owns it beyond this frame dispatch.
      op.on_read(Value(msg.value));  // lint-allow(hot-alloc): handler owns it
    }
  } else if (msg.type == MsgType::kWriteResp ||
             msg.type == MsgType::kMergeResp) {
    write_us_->ObserveSince(op.start);
    obs::EmitSpan("nad", msg.type == MsgType::kWriteResp ? "write" : "merge",
                  op.start, now);
    if (op.on_write) op.on_write();
  } else {
    if (op.on_stats) {
      // lint-allow(hot-alloc): STATS is out-of-band observability.
      op.on_stats(std::string(msg.value));
    }
  }
  // hot-path-end
}

void NadClient::OnLinkBroken(Conn* conn) {
  if (conn->link != Conn::Link::kUp) return;
  if (conn->sock.valid()) {
    conn->loop->Unwatch(conn->sock.fd());
    conn->sock.Close();
  }
  conn->want_write = false;
  conn->staged.clear();
  conn->DropWire();
  conn->rx.Clear();
  conn->rx_arena.Reset();
  // STATS probes die with the link: observability reads have no
  // pending-write semantics to preserve, so they fail fast instead of
  // being retransmitted. Handlers are collected first and run after the
  // table is consistent (they may re-enter Submit).
  std::vector<StatsHandler> dead_stats;
  conn->pending.EraseIf([&](std::uint64_t, PendingOp& p) {
    if (p.req_type != MsgType::kStatsReq) return false;
    dead_stats.push_back(std::move(p.on_stats));
    return true;
  });
  if (!dead_stats.empty()) {
    AddInFlight(-static_cast<std::int64_t>(dead_stats.size()));
  }
  for (StatsHandler& handler : dead_stats) {
    if (handler) handler(Status::Unavailable("stats: connection lost"));
  }
  if (!options_.enable_reconnect) {
    // Pre-fault-injection behaviour: a dead connection stays dead and
    // the disk appears crashed forever. Armed sweeps keep expiring what
    // remains pending.
    conn->link = Conn::Link::kDown;
    conn->suspected_until_us.store(kSuspectForever, std::memory_order_relaxed);
    return;
  }
  conn->link = Conn::Link::kBackoff;
  ScheduleRedial(conn);
}

void NadClient::OnLoopDead(EventLoop* loop) {
  // Runs on the dying loop thread (its last act), so the single-writer
  // rule still holds. Nothing will ever run on this loop again — no io,
  // no sweeps, no redials — so unlike OnLinkBroken the pending
  // reads/writes cannot be parked for retransmission or expiry: their
  // handlers are destroyed unrun (crashed-register semantics) and the
  // in-flight count drops with them so the gauge stays truthful.
  for (auto& [disk, owned] : conns_) {
    Conn* conn = owned.get();
    if (conn->loop != loop) continue;
    if (conn->sock.valid()) {
      loop->Unwatch(conn->sock.fd());
      conn->sock.Close();
    }
    conn->link = Conn::Link::kDown;
    conn->suspected_until_us.store(kSuspectForever, std::memory_order_relaxed);
    conn->want_write = false;
    conn->staged.clear();
    conn->DropWire();
    conn->rx.Clear();
    conn->rx_arena.Reset();
    const std::size_t n = conn->pending.size();
    std::vector<StatsHandler> dead_stats;
    conn->pending.ForEach([&](std::uint64_t, PendingOp& p) {
      if (p.req_type == MsgType::kStatsReq) {
        dead_stats.push_back(std::move(p.on_stats));
      }
    });
    conn->pending.Clear();
    if (n > 0) AddInFlight(-static_cast<std::int64_t>(n));
    for (StatsHandler& handler : dead_stats) {
      if (handler) handler(Status::Unavailable("stats: event loop died"));
    }
  }
}

void NadClient::ScheduleRedial(Conn* conn) {
  // Capped exponential backoff with jitter, as a wheel timer — the
  // loop stays responsive for its other connections while this one
  // waits (the old code parked a dedicated sender thread in a CondVar).
  const auto delay = conn->backoff.Next(conn->rng);
  conn->redial_timer =
      conn->loop->timers().Schedule(Clock::now() + delay, [this, conn] {
        conn->redial_timer = 0;
        StartRedial(conn);
      });
}

void NadClient::StartRedial(Conn* conn) {
  if (conn->link != Conn::Link::kBackoff) return;
  bool connected = false;
  auto sock = StartConnect(conn->endpoint.host, conn->endpoint.port,
                           &connected);
  if (!sock) {
    OnRedialFailed(conn);
    return;
  }
  conn->sock = std::move(*sock);
  if (Status st = conn->loop->Watch(conn->sock.fd(), conn); !st.ok()) {
    LOG_WARN << "nad-client: cannot watch disk " << conn->disk << ": "
             << st.ToString();
    conn->sock.Close();
    OnRedialFailed(conn);
    return;
  }
  conn->link = Conn::Link::kConnecting;
  if (connected) OnRedialConnected(conn);
  // Otherwise the handshake resolves on the next EPOLLOUT/EPOLLERR edge.
}

void NadClient::OnRedialFailed(Conn* conn) {
  reconnect_failures_->Inc();
  RecordBreakerFailure(conn, Clock::now());
  conn->link = Conn::Link::kBackoff;
  ScheduleRedial(conn);  // still broken; retry with a longer delay
}

void NadClient::OnRedialConnected(Conn* conn) {
  conn->link = Conn::Link::kUp;
  conn->backoff.Reset();
  conn->breaker.RecordSuccess();
  conn->suspected_until_us.store(0, std::memory_order_relaxed);
  reconnects_->Inc();
  // Retransmit everything still pending, oldest first (ids are monotone,
  // so sorting ids restores issue order). Requests that were served but
  // whose response was lost get applied again — an idempotent replay of
  // a still-pending op (see the class comment). Frames are rebuilt from
  // the pending table, so anything staged or framed before the break
  // (already covered by the table) is dropped first rather than sent
  // twice. Only reads/writes can be pending here: STATS died with the
  // link and Admit fails new ones fast until the link is back up.
  conn->staged.clear();
  conn->DropWire();
  conn->staged.reserve(conn->pending.size());
  conn->pending.ForEach([&](std::uint64_t id, PendingOp&) {
    conn->staged.push_back(id);
  });
  std::sort(conn->staged.begin(), conn->staged.end());
  if (!conn->staged.empty()) {
    retries_->Inc(conn->staged.size());
  }
  FrameStaged(conn);
  FlushWire(conn);
}

void NadClient::MaybeArmSweep(Conn* conn,
                              std::chrono::steady_clock::time_point at) {
  if (at == Clock::time_point::max()) return;
  if (conn->sweep_timer != 0) {
    if (conn->sweep_deadline <= at) return;  // an earlier sweep covers it
    conn->loop->timers().Cancel(conn->sweep_timer);
  }
  conn->sweep_deadline = at;
  conn->sweep_timer = conn->loop->timers().Schedule(at, [this, conn] {
    conn->sweep_timer = 0;
    Sweep(conn);
  });
}

void NadClient::Sweep(Conn* conn) {
  const auto now = Clock::now();
  // Handlers are collected first and invoked/destroyed after the table
  // is consistent: dropping one can release ticket state whose
  // destructor may re-enter Submit.
  std::vector<ReadHandler> dead_reads;
  std::vector<WriteHandler> dead_writes;
  std::vector<StatsHandler> timed_out_stats;
  auto next = Clock::time_point::max();
  // An expired write's bytes may still sit unsent in the wire queue
  // (zero-copy: the chunks reference the entry's value — heap-backed
  // values only; smaller, possibly-SSO ones were copied into the arena
  // at framing, see kSmallValueCopyBytes). Parking the value on the
  // zombie list keeps the queue sound until it drains: the move
  // preserves a heap buffer's address, so the chunk stays valid even
  // though the table slot is recycled.
  const bool wire_busy = conn->wire_head < conn->wire.size();
  conn->pending.EraseIf([&](std::uint64_t, PendingOp& p) {
    if (p.expires > now) {
      next = std::min(next, p.expires);
      return false;
    }
    switch (p.req_type) {
      case MsgType::kReadReq:
        dead_reads.push_back(std::move(p.on_read));
        break;
      case MsgType::kWriteReq:
      case MsgType::kMergeReq:
        dead_writes.push_back(std::move(p.on_write));
        if (wire_busy && p.value.size() > kSmallValueCopyBytes) {
          conn->zombies.push_back(std::move(p.value));
        }
        break;
      case MsgType::kStatsReq:
      case MsgType::kReadResp:
      case MsgType::kWriteResp:
      case MsgType::kMergeResp:
      case MsgType::kStatsResp:
      case MsgType::kBatchReq:
      case MsgType::kBatchResp:
        // Only the four request opcodes are ever pending; the rest are
        // unreachable, named for the exhaustiveness lint.
        timed_out_stats.push_back(std::move(p.on_stats));
        break;
    }
    return true;
  });
  const std::size_t n =
      dead_reads.size() + dead_writes.size() + timed_out_stats.size();
  if (n > 0) {
    AddInFlight(-static_cast<std::int64_t>(n));
    expired_->Inc(n);
    // Expiries are failure evidence: the disk accepted a connection but
    // did not answer in time (stalled / dropping / crashed).
    RecordBreakerFailure(conn, now);
  }
  MaybeArmSweep(conn, next);
  for (StatsHandler& handler : timed_out_stats) {
    if (handler) handler(Status::Timeout("stats: no response before deadline"));
  }
  // Expired read/write handlers are destroyed unrun here —
  // crashed-register semantics (an expired-but-sent write is a textbook
  // pending write).
}

void NadClient::RecordBreakerFailure(Conn* conn,
                                     std::chrono::steady_clock::time_point now) {
  // Let an elapsed cooldown half-open the breaker first (the old code
  // relied on IsSuspectedCrashed callers to drive that transition), then
  // record the failure and publish the resulting suspicion window.
  (void)conn->breaker.AllowRequest(now);
  if (conn->breaker.RecordFailure(now)) breaker_open_->Inc();
  PublishSuspicion(conn, now);
}

void NadClient::PublishSuspicion(Conn* conn,
                                 std::chrono::steady_clock::time_point now) {
  if (conn->link == Conn::Link::kDown) {
    conn->suspected_until_us.store(kSuspectForever, std::memory_order_relaxed);
    return;
  }
  if (conn->breaker.state() == CircuitBreaker::State::kOpen) {
    // RecordFailure stamps opened_at_ = now while open, so the window is
    // exactly one cooldown from the latest failure.
    conn->suspected_until_us.store(ToUs(now + options_.retry.breaker_cooldown),
                                   std::memory_order_relaxed);
  } else {
    conn->suspected_until_us.store(0, std::memory_order_relaxed);
  }
}

}  // namespace nadreg::nad
