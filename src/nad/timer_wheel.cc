#include "nad/timer_wheel.h"

#include <algorithm>
#include <utility>

namespace nadreg::nad {

TimerWheel::TimerWheel(Clock::time_point origin, std::chrono::microseconds tick,
                       std::size_t slots)
    : origin_(origin), tick_(tick), slots_(std::max<std::size_t>(1, slots)) {}

std::uint64_t TimerWheel::TickFloor(Clock::time_point t) const {
  if (t <= origin_) return 0;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(t - origin_)
          .count() /
      tick_.count());
}

std::uint64_t TimerWheel::TickCeil(Clock::time_point t) const {
  if (t <= origin_) return 0;
  const auto us =
      std::chrono::duration_cast<std::chrono::microseconds>(t - origin_)
          .count();
  return static_cast<std::uint64_t>((us + tick_.count() - 1) / tick_.count());
}

std::uint64_t TimerWheel::Schedule(Clock::time_point deadline, Callback cb) {
  // Clamp into the unfired range: a past deadline (or one scheduled from a
  // callback firing right now) lands on the next unfired tick.
  const std::uint64_t due = std::max(TickCeil(deadline), cursor_);
  const std::uint64_t id = next_id_++;
  slots_[due % slots_.size()].push_back(Entry{id, due, std::move(cb)});
  due_index_.insert(due);
  ids_.emplace(id, due);
  ++live_;
  return id;
}

bool TimerWheel::Cancel(std::uint64_t id) {
  const auto it = ids_.find(id);
  if (it == ids_.end()) return false;
  const std::uint64_t due = it->second;
  ids_.erase(it);
  auto& slot = slots_[due % slots_.size()];
  for (std::size_t i = 0; i < slot.size(); ++i) {
    if (slot[i].id != id) continue;
    slot.erase(slot.begin() + static_cast<std::ptrdiff_t>(i));
    break;
  }
  due_index_.erase(due_index_.find(due));
  --live_;
  return true;
}

std::size_t TimerWheel::Advance(Clock::time_point now) {
  const std::uint64_t target = TickFloor(now);
  std::size_t fired = 0;
  std::vector<Entry> due_now;
  while (cursor_ <= target) {
    if (live_ == 0) {
      // Nothing can be due: fast-forward instead of spinning the ring.
      cursor_ = target + 1;
      break;
    }
    auto& slot = slots_[cursor_ % slots_.size()];
    // Extract this tick's entries in insertion order before firing:
    // callbacks may Schedule into this very slot (for a future
    // revolution) or Cancel peers, so the slot must be consistent first.
    due_now.clear();
    for (std::size_t i = 0; i < slot.size();) {
      if (slot[i].due != cursor_) {
        ++i;
        continue;
      }
      due_now.push_back(std::move(slot[i]));
      slot.erase(slot.begin() + static_cast<std::ptrdiff_t>(i));
    }
    for (const Entry& e : due_now) {
      ids_.erase(e.id);
      due_index_.erase(due_index_.find(e.due));
      --live_;
    }
    ++cursor_;  // before firing: reschedules clamp past this tick
    for (Entry& e : due_now) {
      ++fired;
      e.cb();
    }
  }
  return fired;
}

TimerWheel::Clock::time_point TimerWheel::NextDeadline() const {
  if (due_index_.empty()) return Clock::time_point::max();
  return origin_ + *due_index_.begin() * tick_;
}

}  // namespace nadreg::nad
