/// \file
/// Durability for the NAD daemon: an append-only journal of applied block
/// writes plus a compact checkpoint, replayed on restart. A network-
/// attached disk is, after all, a disk — stopping the daemon must not lose
/// acknowledged writes.
///
/// On-disk layout (both files share the record format):
///   record := u32 disk, u64 block, bytes value   (little-endian, codec.h)
///
///   <path>.snap — checkpoint: one record per materialized block
///   <path>.log  — journal: one record per applied write since checkpoint
///
/// Recovery loads the checkpoint then replays the journal; a torn tail
/// record (crash mid-append) is detected and discarded. Checkpoint() writes
/// a fresh snapshot to a temp file, renames it into place, then truncates
/// the journal — crash-safe in either order of observation.
#pragma once

#include <cstdio>
#include <string>
#include <string_view>

#include "common/status.h"
#include "common/types.h"
#include "sim/register_store.h"

namespace nadreg::nad {

/// Append-only journal of block writes.
class Journal {
 public:
  Journal() = default;
  ~Journal();
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Opens (creating if absent) the journal file for appending.
  Status Open(const std::string& path);

  /// Appends one applied write; flushed to the OS before returning.
  /// Takes a view so the server's zero-copy decode path can journal
  /// straight from its receive buffer.
  Status Append(const RegisterId& r, std::string_view v);

  /// Truncates the journal (after a successful checkpoint).
  Status Reset();

  bool IsOpen() const { return file_ != nullptr; }

 private:
  std::string path_;
  std::FILE* file_ = nullptr;
};

/// Loads checkpoint + journal into `store`. Missing files are fine (fresh
/// disk). Returns the number of records applied; a torn journal tail is
/// silently discarded (it was never acknowledged).
Expected<std::size_t> RecoverState(const std::string& base_path,
                                   sim::RegisterStore* store);

/// Writes a checkpoint of `store` to <base_path>.snap (atomically via a
/// temp file + rename).
Status WriteCheckpoint(const std::string& base_path,
                       const sim::RegisterStore& store);

}  // namespace nadreg::nad
