/// \file
/// Hashed timer wheel for the client event loops (DESIGN.md §12).
///
/// Each event loop owns one wheel and is its only caller — the wheel has
/// no locks by design (single-writer loop ownership). It absorbs what the
/// old per-client janitor thread and the reconnect CondVar waits did:
/// per-connection expiry sweeps and backoff redial timers are just wheel
/// entries fired from the loop's epoll_wait cadence.
///
/// Deadlines hash into a fixed ring of tick-wide slots (classic hashed
/// wheel: entries due in a later revolution share a slot and are skipped
/// until their tick comes around). `Advance(now)` walks the cursor up to
/// `now`, firing every entry whose tick has been reached, in deadline
/// order across ticks and insertion order within one. Deadlines round
/// *up* to a tick boundary, so a callback never fires before its
/// deadline; it can fire up to one tick (default 1ms) late, which is well
/// inside the expiry/backoff granularity the client needs.
///
/// Callbacks may Schedule and Cancel freely (a same-instant reschedule
/// lands on the next tick); they must not re-enter Advance.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <set>
#include <unordered_map>
#include <vector>

namespace nadreg::nad {

class TimerWheel {
 public:
  using Clock = std::chrono::steady_clock;
  using Callback = std::function<void()>;

  explicit TimerWheel(Clock::time_point origin,
                      std::chrono::microseconds tick =
                          std::chrono::microseconds(1000),
                      std::size_t slots = 256);

  TimerWheel(const TimerWheel&) = delete;
  TimerWheel& operator=(const TimerWheel&) = delete;

  /// Arms `cb` to fire at the first Advance(now) with now >= deadline.
  /// Returns a nonzero id usable with Cancel.
  std::uint64_t Schedule(Clock::time_point deadline, Callback cb);

  /// Disarms a pending timer. False if it already fired or was cancelled.
  bool Cancel(std::uint64_t id);

  /// Fires everything due at or before `now`; returns how many fired.
  std::size_t Advance(Clock::time_point now);

  bool empty() const { return live_ == 0; }
  std::size_t size() const { return live_; }

  /// Earliest instant any pending timer can fire (the epoll_wait timeout
  /// bound); Clock::time_point::max() when the wheel is empty.
  Clock::time_point NextDeadline() const;

 private:
  struct Entry {
    std::uint64_t id = 0;
    std::uint64_t due = 0;  // absolute tick index
    Callback cb;
  };

  std::uint64_t TickFloor(Clock::time_point t) const;
  std::uint64_t TickCeil(Clock::time_point t) const;

  const Clock::time_point origin_;
  const std::chrono::microseconds tick_;
  std::vector<std::vector<Entry>> slots_;
  /// Due tick of every live entry — O(log n) earliest-deadline queries
  /// for the loop's wait timeout. Multiset because ticks collide.
  std::multiset<std::uint64_t> due_index_;
  /// id -> due tick, so Cancel can find the slot without a full scan.
  std::unordered_map<std::uint64_t, std::uint64_t> ids_;
  std::uint64_t cursor_ = 0;  // first tick not yet fired
  std::uint64_t next_id_ = 1;
  std::size_t live_ = 0;
};

}  // namespace nadreg::nad
