// Wire protocol of the TCP network-attached disk.
//
// A NAD is "a simple device that just executes requests to read and write
// blocks of data" (Section 1). The protocol is correspondingly small:
// length-prefixed frames carrying one of four messages. Requests carry a
// client-chosen id echoed in the response so a client can multiplex many
// outstanding nonblocking operations over one connection — the model's
// concurrent pending requests (Fig. 1).
//
//   frame    := u32 payload_length, payload
//   payload  := u8 type, u64 request_id, body
//   ReadReq  := u32 disk, u64 block
//   WriteReq := u32 disk, u64 block, bytes value
//   ReadResp := bytes value
//   WriteResp:= (empty)
//   StatsReq := (empty)
//   StatsResp:= bytes text
//
// STATS is an out-of-band observability opcode (it does not exist in the
// paper's model and takes no part in any emulation): the server answers
// with a plain-text dump of its metrics registry — request counts,
// per-opcode service latency, journal/recovery counters.
//
// A crashed register/disk simply never answers — there is no error
// response for it, exactly like the unresponsive failure mode.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/codec.h"
#include "common/status.h"
#include "common/types.h"

namespace nadreg::nad {

enum class MsgType : std::uint8_t {
  kReadReq = 1,
  kWriteReq = 2,
  kReadResp = 3,
  kWriteResp = 4,
  kStatsReq = 5,
  kStatsResp = 6,
};

struct Message {
  MsgType type = MsgType::kReadReq;
  std::uint64_t request_id = 0;
  RegisterId reg;     // requests only
  std::string value;  // WriteReq and ReadResp

  friend bool operator==(const Message&, const Message&) = default;
};

/// Serializes a message payload (without the frame length prefix).
std::string EncodeMessage(const Message& m);

/// Parses a message payload. Total: never trusts lengths or enum values.
Expected<Message> DecodeMessage(std::string_view payload);

/// Maximum accepted frame payload (guards server memory against a
/// malformed or hostile length prefix).
inline constexpr std::uint32_t kMaxFrameBytes = 1u << 20;

/// Where a NAD server listens / a client connects. Shared by every binary
/// that names a disk on the network (client library, CLIs, demos).
struct Endpoint {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;

  friend bool operator==(const Endpoint&, const Endpoint&) = default;
};

/// Parses "host:port" or bare "port" (host defaults to 127.0.0.1).
/// Rejects empty hosts, non-numeric or out-of-range ports.
Expected<Endpoint> ParseEndpoint(std::string_view s);

}  // namespace nadreg::nad
