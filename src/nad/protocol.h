/// \file
/// Wire protocol of the TCP network-attached disk.
///
/// A NAD is "a simple device that just executes requests to read and write
/// blocks of data" (Section 1). The protocol is correspondingly small:
/// length-prefixed frames carrying one of four messages. Requests carry a
/// client-chosen id echoed in the response so a client can multiplex many
/// outstanding nonblocking operations over one connection — the model's
/// concurrent pending requests (Fig. 1).
///
///   frame    := u32 payload_length, payload
///   payload  := u8 type, u64 request_id, body
///   ReadReq  := u32 disk, u64 block
///   WriteReq := u32 disk, u64 block, bytes value
///   ReadResp := bytes value
///   WriteResp:= (empty)
///   StatsReq := (empty)
///   StatsResp:= bytes text
///   BatchReq := u32 count, count * bytes(sub-request payload)
///   BatchResp:= u32 count, count * bytes(sub-response payload)
///
/// STATS is an out-of-band observability opcode (it does not exist in the
/// paper's model and takes no part in any emulation): the server answers
/// with a plain-text dump of its metrics registry — request counts,
/// per-opcode service latency, journal/recovery counters.
///
/// BATCH is the vectored opcode: one frame carries N independent
/// sub-operations, each a complete ReadReq/WriteReq payload with its own
/// request id (responses: ReadResp/WriteResp). Sub-operations are served
/// in order; their responses come back in one BatchResp. A crashed
/// register silently *omits* its sub-response from the batch — exactly
/// the per-register unresponsive failure mode, vectored. Batches never
/// nest and never carry STATS.
///
/// A crashed register/disk simply never answers — there is no error
/// response for it, exactly like the unresponsive failure mode.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/codec.h"
#include "common/status.h"
#include "common/types.h"

namespace nadreg::nad {

enum class MsgType : std::uint8_t {
  kReadReq = 1,
  kWriteReq = 2,
  kReadResp = 3,
  kWriteResp = 4,
  kStatsReq = 5,
  kStatsResp = 6,
  kBatchReq = 7,
  kBatchResp = 8,
};

/// True for the opcodes a batch frame may carry as sub-operations.
inline constexpr bool IsBatchableRequest(MsgType t) {
  return t == MsgType::kReadReq || t == MsgType::kWriteReq;
}
inline constexpr bool IsBatchableResponse(MsgType t) {
  return t == MsgType::kReadResp || t == MsgType::kWriteResp;
}

struct Message {
  MsgType type = MsgType::kReadReq;
  std::uint64_t request_id = 0;  // unused (0) for batch frames
  RegisterId reg;     // requests only
  std::string value;  // WriteReq and ReadResp
  /// Sub-operations of a kBatchReq/kBatchResp frame, in service order.
  std::vector<Message> subs;

  friend bool operator==(const Message&, const Message&) = default;
};

/// Serializes a message payload (without the frame length prefix).
std::string EncodeMessage(const Message& m);

/// Parses a message payload. Total: never trusts lengths or enum values.
[[nodiscard]] Expected<Message> DecodeMessage(std::string_view payload);

/// Maximum accepted frame payload (guards server memory against a
/// malformed or hostile length prefix).
inline constexpr std::uint32_t kMaxFrameBytes = 1u << 20;

/// Serializes a message, enforcing kMaxFrameBytes on the *encode* path:
/// an oversized payload (e.g. a write value near the frame cap) fails
/// fast with kInvalid instead of hitting the wire and desynchronizing or
/// killing the connection at the peer's decode guard.
[[nodiscard]] Expected<std::string> EncodeMessageChecked(const Message& m);

/// Frame-payload overhead of one encoded WriteReq around its value
/// (type + request id + disk + block + value length prefix). A write
/// value of more than kMaxFrameBytes - kWriteReqOverhead bytes can never
/// be framed, batched or not.
inline constexpr std::size_t kWriteReqOverhead = 1 + 8 + 4 + 8 + 4;
/// Per-sub-operation overhead inside a batch frame (u32 length prefix).
inline constexpr std::size_t kBatchSubOverhead = 4;

/// Where a NAD server listens / a client connects. Shared by every binary
/// that names a disk on the network (client library, CLIs, demos).
struct Endpoint {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;

  friend bool operator==(const Endpoint&, const Endpoint&) = default;
};

/// Parses "host:port" or bare "port" (host defaults to 127.0.0.1).
/// Rejects empty hosts, non-numeric or out-of-range ports.
[[nodiscard]] Expected<Endpoint> ParseEndpoint(std::string_view s);

}  // namespace nadreg::nad
