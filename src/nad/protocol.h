/// \file
/// Wire protocol of the TCP network-attached disk.
///
/// A NAD is "a simple device that just executes requests to read and write
/// blocks of data" (Section 1). The protocol is correspondingly small:
/// length-prefixed frames carrying one of four messages. Requests carry a
/// client-chosen id echoed in the response so a client can multiplex many
/// outstanding nonblocking operations over one connection — the model's
/// concurrent pending requests (Fig. 1).
///
///   frame    := u32 payload_length, payload
///   payload  := u8 type, u64 request_id, body
///   ReadReq  := u32 disk, u64 block
///   WriteReq := u32 disk, u64 block, bytes value
///   ReadResp := bytes value
///   WriteResp:= (empty)
///   StatsReq := (empty)
///   StatsResp:= bytes text
///   BatchReq := u32 count, count * bytes(sub-request payload)
///   BatchResp:= u32 count, count * bytes(sub-response payload)
///   MergeReq := u32 disk, u64 block, bytes delta
///   MergeResp:= (empty)
///
/// MERGE is the coded-storage opcode: instead of overwriting the register,
/// the server applies MergeCodedCell(current, delta) at the linearization
/// point — the join of the erasure-coded cell semilattice (fragments +
/// committed tag, common/coded_cell.h). The join is idempotent and
/// commutative, so the client retransmits merges across reconnects exactly
/// like writes. Wire shape is identical to WriteReq/WriteResp and merges
/// batch like writes.
///
/// STATS is an out-of-band observability opcode (it does not exist in the
/// paper's model and takes no part in any emulation): the server answers
/// with a plain-text dump of its metrics registry — request counts,
/// per-opcode service latency, journal/recovery counters.
///
/// BATCH is the vectored opcode: one frame carries N independent
/// sub-operations, each a complete ReadReq/WriteReq payload with its own
/// request id (responses: ReadResp/WriteResp). Sub-operations are served
/// in order; their responses come back in one BatchResp. A crashed
/// register silently *omits* its sub-response from the batch — exactly
/// the per-register unresponsive failure mode, vectored. Batches never
/// nest and never carry STATS.
///
/// A crashed register/disk simply never answers — there is no error
/// response for it, exactly like the unresponsive failure mode.
///
/// Two encode/decode surfaces share this format:
///  * Message + EncodeMessage/DecodeMessage — the owning, materializing
///    pair. Simple and self-contained; used by cold paths (STATS, CLIs,
///    tests) and as the golden reference the zero-copy pair is tested
///    byte-for-byte against.
///  * FrameWriter + MessageView/DecodeMessageView — the hot-path pair.
///    FrameWriter builds [u32 length][payload] frames directly as a list
///    of WireChunks: header bytes are bump-allocated from an Arena and
///    merged into contiguous runs, value bytes are REFERENCED in place
///    (zero-copy) and scatter-gathered into writev by the caller.
///    DecodeMessageView parses a frame into views over the receive
///    buffer, allocating only the batch sub-array — from an Arena.
///    Ownership rules are documented on each type (and DESIGN.md §14).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/arena.h"
#include "common/codec.h"
#include "common/status.h"
#include "common/types.h"

namespace nadreg::nad {

enum class MsgType : std::uint8_t {
  kReadReq = 1,
  kWriteReq = 2,
  kReadResp = 3,
  kWriteResp = 4,
  kStatsReq = 5,
  kStatsResp = 6,
  kBatchReq = 7,
  kBatchResp = 8,
  kMergeReq = 9,
  kMergeResp = 10,
};

/// True for the opcodes a batch frame may carry as sub-operations.
inline constexpr bool IsBatchableRequest(MsgType t) {
  return t == MsgType::kReadReq || t == MsgType::kWriteReq ||
         t == MsgType::kMergeReq;
}
inline constexpr bool IsBatchableResponse(MsgType t) {
  return t == MsgType::kReadResp || t == MsgType::kWriteResp ||
         t == MsgType::kMergeResp;
}

struct Message {
  MsgType type = MsgType::kReadReq;
  std::uint64_t request_id = 0;  // unused (0) for batch frames
  RegisterId reg;     // requests only
  std::string value;  // WriteReq/MergeReq and ReadResp
  /// Sub-operations of a kBatchReq/kBatchResp frame, in service order.
  std::vector<Message> subs;

  friend bool operator==(const Message&, const Message&) = default;
};

/// Serializes a message payload (without the frame length prefix).
std::string EncodeMessage(const Message& m);

/// Parses a message payload. Total: never trusts lengths or enum values.
[[nodiscard]] Expected<Message> DecodeMessage(std::string_view payload);

/// Maximum accepted frame payload (guards server memory against a
/// malformed or hostile length prefix).
inline constexpr std::uint32_t kMaxFrameBytes = 1u << 20;

/// Exact encoded payload size of `m` (without the frame length prefix),
/// computed without materializing anything.
std::size_t EncodedMessageSize(const Message& m);

/// Serializes a message, enforcing kMaxFrameBytes on the *encode* path:
/// an oversized payload (e.g. a write value near the frame cap) fails
/// fast with kInvalid instead of hitting the wire and desynchronizing or
/// killing the connection at the peer's decode guard. The size check runs
/// BEFORE encoding, so an oversized message costs a size computation, not
/// a multi-megabyte materialization that is then thrown away.
[[nodiscard]] Expected<std::string> EncodeMessageChecked(const Message& m);

/// One contiguous span of outbound bytes — the unit of the zero-copy
/// gather path. Chunks either point into an Arena (frame headers, copied
/// values) or into caller-owned value storage; see FrameWriter.
struct WireChunk {
  const char* data = nullptr;
  std::size_t len = 0;
};

/// Values at or below this size are COPIED into the arena by PutBytesRef
/// instead of referenced. Two reasons, one of them load-bearing:
///  * Correctness: a std::string this small may store its bytes inline
///    (SSO; libstdc++ caps at 15, libc++ at 22, MSVC at 15). An inline
///    buffer lives inside the string object, so moving the string — as
///    the client does when it parks a completed-but-unsent write value on
///    its zombie list — mutates or relocates the referenced bytes and the
///    queued chunk transmits garbage. Above this threshold every
///    mainstream implementation heap-allocates, and moving the string
///    preserves the buffer address.
///  * Efficiency: a dedicated iovec entry costs more than memcpy'ing a
///    handful of bytes into the open header run.
inline constexpr std::size_t kSmallValueCopyBytes = 22;

/// Builds [u32 length][payload] frames directly as WireChunks, replacing
/// the EncodeMessage-into-a-string + frame-copy pipeline on the hot path.
///
/// Header bytes (type, ids, lengths) are bump-allocated from the arena
/// and merged into as few chunks as possible; PutBytesRef emits the
/// caller's value bytes as their own chunk WITHOUT copying (except small
/// values, which it copies — see kSmallValueCopyBytes). The frame
/// length prefix is reserved by BeginFrame and backpatched by EndFrame.
///
/// Ownership rules (DESIGN.md §14):
///  * Chunks alias the arena and the PutBytesRef sources. Both must stay
///    alive and unmodified until the kernel has accepted every chunk —
///    the client parks write values in its pending table (stable slots)
///    precisely so the wire may reference them. Chunks never alias a
///    string's inline (SSO) buffer: sources that small are copied, so a
///    referenced source can safely be MOVED elsewhere (its heap buffer
///    address survives the move) as long as it is not destroyed.
///  * The writer holds a raw pointer into `out`'s last element between
///    calls, so `out` must not be mutated externally mid-frame.
class FrameWriter {
 public:
  /// Both pointers are borrowed; chunks are appended to `*out`.
  FrameWriter(Arena* arena, std::vector<WireChunk>* out)
      : arena_(arena), out_(out) {}

  /// Starts a frame: reserves the 4-byte length prefix for EndFrame.
  void BeginFrame();
  /// Backpatches the length prefix and flushes the open header run.
  /// Returns the frame's payload length (what the prefix now says).
  std::size_t EndFrame();

  void PutU8(std::uint8_t v);
  void PutU32(std::uint32_t v);
  void PutU64(std::uint64_t v);
  /// u32 length prefix + the bytes by REFERENCE (zero-copy): `v` must
  /// outlive the chunks (see the ownership rules above). Values of
  /// kSmallValueCopyBytes or fewer are copied into the arena instead, so
  /// chunks never alias a possibly-inline (SSO) string buffer.
  void PutBytesRef(std::string_view v);
  /// u32 length prefix + a copy of the bytes into the arena. For sources
  /// that die before the send (e.g. values read out under a lock).
  void PutBytesCopy(std::string_view v);
  /// Reserves a 4-byte in-frame slot (counted as payload) for a value
  /// known only later — e.g. a batch's surviving-sub count. Patch with
  /// Patch32 before sending.
  char* PutSlotU32();
  static void Patch32(char* slot, std::uint32_t v);

  Arena* arena() { return arena_; }

 private:
  /// `n` arena header bytes, extending the open chunk when contiguous.
  char* HeaderBytes(std::size_t n);
  void CloseOpenChunk();

  Arena* arena_;
  std::vector<WireChunk>* out_;
  char* len_slot_ = nullptr;  // frame length prefix, patched by EndFrame
  std::size_t payload_bytes_ = 0;
  char* open_base_ = nullptr;  // current header run, not yet in *out_
  char* open_end_ = nullptr;
};

/// Serialized payload size of one NON-batch message (what PutU32 needs
/// for a batch sub-operation's length prefix, known before writing it).
std::size_t PayloadSize(MsgType t, std::size_t value_size);

/// Appends one non-batch message payload to `w` (no frame bookkeeping,
/// no sub length prefix). `value` is referenced zero-copy (PutBytesRef)
/// for the value-carrying types; byte-identical to EncodeMessage of the
/// equivalent Message.
void AppendPayload(FrameWriter& w, MsgType t, std::uint64_t request_id,
                   const RegisterId& reg, std::string_view value);

/// Zero-copy decode result: `value` views the decoded buffer, `subs` is
/// arena-allocated. Valid only while BOTH the decoded buffer and the
/// arena live unmodified — i.e. within one frame-dispatch cycle; copy
/// anything that must survive (the client copies a read value exactly
/// once, into the handler's Value).
struct MessageView {
  MsgType type = MsgType::kReadReq;
  std::uint64_t request_id = 0;  // unused (0) for batch frames
  RegisterId reg;          // requests only
  std::string_view value;  // WriteReq / MergeReq / ReadResp / StatsResp
  const MessageView* subs = nullptr;  // kBatchReq/kBatchResp children
  std::uint32_t num_subs = 0;
};

/// Parses a message payload into views (see MessageView for validity).
/// Total, exactly like DecodeMessage: never trusts lengths, enum values,
/// or counts; rejects nested batches and trailing bytes.
[[nodiscard]] Expected<MessageView> DecodeMessageView(std::string_view payload,
                                                      Arena* arena);

/// Frame-payload overhead of one encoded WriteReq around its value
/// (type + request id + disk + block + value length prefix). A write
/// value of more than kMaxFrameBytes - kWriteReqOverhead bytes can never
/// be framed, batched or not.
inline constexpr std::size_t kWriteReqOverhead = 1 + 8 + 4 + 8 + 4;
/// Per-sub-operation overhead inside a batch frame (u32 length prefix).
inline constexpr std::size_t kBatchSubOverhead = 4;
/// Smallest legal sub payload inside a batch, per direction: a request
/// batch carries nothing smaller than a ReadReq (type + request id +
/// disk + block), a response batch nothing smaller than a WriteResp
/// (type + request id). The decoders bound a frame's claimed sub count
/// by Remaining / (kBatchSubOverhead + this), so a hostile count cannot
/// make them reserve far beyond what the payload could ever hold.
inline constexpr std::size_t kMinBatchSubRequestBytes = 1 + 8 + 4 + 8;
inline constexpr std::size_t kMinBatchSubResponseBytes = 1 + 8;

/// Compacts a partially-sent gather queue in place: drops the fully-sent
/// chunk prefix (`*head` chunks plus `*off` bytes of the next one) and
/// copies every remaining unsent byte into `arena`, which is Reset first
/// and therefore must own nothing but this queue's header bytes. On
/// return the queue is at most one chunk (aliasing only the arena —
/// external value storage the old chunks referenced may be freed),
/// *head == 0 and *off == 0. `scratch` is the bounce buffer; its
/// capacity is retained across calls.
///
/// This is the slow-peer escape hatch: under sustained partial sends the
/// sent prefix, its arena headers, and any parked values would otherwise
/// be reclaimed only when the queue fully drains.
void CompactWire(std::vector<WireChunk>* wire, std::size_t* head,
                 std::size_t* off, Arena* arena, std::string* scratch);

/// Where a NAD server listens / a client connects. Shared by every binary
/// that names a disk on the network (client library, CLIs, demos).
struct Endpoint {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;

  friend bool operator==(const Endpoint&, const Endpoint&) = default;
};

/// Parses "host:port" or bare "port" (host defaults to 127.0.0.1).
/// Rejects empty hosts, non-numeric or out-of-range ports.
[[nodiscard]] Expected<Endpoint> ParseEndpoint(std::string_view s);

}  // namespace nadreg::nad
