/// \file
/// Retry policy, capped exponential backoff, and a per-disk circuit
/// breaker for the TCP NAD client.
///
/// The paper's model makes a crashed base register *unresponsive* — a
/// client cannot distinguish it from a slow one, so the emulations never
/// wait for more than a quorum. The transport below that model still has
/// to behave sanely when a disk daemon dies: the client reconnects with
/// capped exponential backoff + jitter (BackoffState), and a per-disk
/// CircuitBreaker turns repeated failures into a *suspicion* the quorum
/// layer can consult (BaseRegisterClient::IsSuspectedCrashed) so a phase
/// stops issuing doomed operations instead of hanging on them.
///
/// All three types are pure state machines: no threads, no sleeps, no
/// clock reads. Time enters only as explicit time_point / duration
/// arguments, so tests drive transitions deterministically (ManualClock)
/// and the no-sleep lint rule (scripts/lint_invariants.py) holds trivially.
///
/// Ownership/threading: externally synchronized. NadClient keeps one
/// BackoffState + CircuitBreaker per connection, owned by the
/// connection's event loop and touched only on the loop thread (the
/// DESIGN.md §12 single-writer rule); tests use them single-threaded.
#pragma once

#include <chrono>
#include <cstdint>

#include "common/rng.h"

namespace nadreg::nad {

/// Tunables for reconnect backoff, operation expiry, and circuit breaking.
struct RetryPolicy {
  /// First reconnect delay; doubles per consecutive failure.
  std::chrono::microseconds initial_backoff{std::chrono::milliseconds(1)};
  /// Backoff ceiling.
  std::chrono::microseconds max_backoff{std::chrono::milliseconds(200)};
  /// Random jitter applied to each delay, in permille of the delay
  /// (300 = up to +30%). Jitter decorrelates clients reconnecting to the
  /// same recovered disk.
  std::uint32_t jitter_permille = 300;
  /// Consecutive failures (reconnect failures or operation expiries)
  /// that open the breaker.
  std::uint32_t breaker_threshold = 4;
  /// How long an open breaker rejects before allowing half-open probes.
  std::chrono::microseconds breaker_cooldown{std::chrono::milliseconds(250)};
};

/// Capped exponential backoff with multiplicative jitter.
class BackoffState {
 public:
  explicit BackoffState(const RetryPolicy& policy) : policy_(policy) {}

  /// Delay before the next attempt: min(initial * 2^failures, max),
  /// stretched by up to jitter_permille. Advances the schedule.
  std::chrono::microseconds Next(Rng& rng);

  /// Back to the initial delay (call after a success).
  void Reset() { failures_ = 0; }

  /// Consecutive failures recorded so far.
  std::uint32_t failures() const { return failures_; }

 private:
  RetryPolicy policy_;
  std::uint32_t failures_ = 0;
};

/// Per-disk circuit breaker: closed → open after `breaker_threshold`
/// consecutive failures; open → half-open after `breaker_cooldown`;
/// half-open closes on the first success and re-opens on a failure.
class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  explicit CircuitBreaker(const RetryPolicy& policy) : policy_(policy) {}

  /// May a request be attempted at `now`? Open: false until the cooldown
  /// elapses, then transitions to half-open and admits probes.
  bool AllowRequest(std::chrono::steady_clock::time_point now);

  /// A request succeeded: closes the breaker and clears the failure run.
  void RecordSuccess();

  /// A request failed (reconnect failure / operation expiry) at `now`.
  /// Returns true when this failure *opens* the breaker (closed/half-open
  /// → open), so the caller can count open transitions.
  bool RecordFailure(std::chrono::steady_clock::time_point now);

  State state() const { return state_; }
  std::uint32_t consecutive_failures() const { return failures_; }

 private:
  RetryPolicy policy_;
  State state_ = State::kClosed;
  std::uint32_t failures_ = 0;
  std::chrono::steady_clock::time_point opened_at_{};
};

}  // namespace nadreg::nad
